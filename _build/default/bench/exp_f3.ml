(* F3 — sensitivity of losses to the mapping TTL.  Pull control planes
   re-pay the resolution (and its drops) each time a cached mapping
   expires; the PCE re-installs entries only on DNS resolutions, so its
   loss behaviour couples to the DNS TTL instead — both the raw coupling
   and the deployment fix (aligning the DNS record TTL) are shown. *)

open Core

let id = "f3"
let title = "F3: drops vs mapping TTL"

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 16; provider_count = 4;
    borders_per_domain = 2; hosts_per_domain = 4 }

let spec_for ?(dns_ttl = 3600.0) cp ttl =
  let cp =
    match cp with
    | Scenario.Cp_pce options ->
        Scenario.Cp_pce { options with Pce_control.flow_ttl = ttl }
    | Scenario.Cp_pull_drop | Scenario.Cp_pull_queue _ | Scenario.Cp_pull_smr _
    | Scenario.Cp_pull_detour | Scenario.Cp_nerd | Scenario.Cp_cons
    | Scenario.Cp_msmr ->
        cp
  in
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random topology_params; seed = 5;
      mapping_ttl = ttl; dns_record_ttl = dns_ttl }
  in
  { (Harness.default_spec config) with
    Harness.flows = 1500; rate = 25.0 (* 60 s of traffic *);
    zipf_alpha = 0.9; data_packets = `Fixed 6 }

let ttls = [ 1.0; 10.0; 60.0; 300.0; 1800.0 ]

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "ttl (s)"; "drops"; "drops/flow"; "failed"; "cache-hit";
          "map-req" ]
  in
  let row label r ttl =
    Metrics.Table.add_row table
      [ label; Metrics.Table.cell_float ~decimals:0 ttl;
        Metrics.Table.cell_int (Harness.drops r);
        Metrics.Table.cell_float (Harness.drops_per_flow r);
        Metrics.Table.cell_int r.Harness.failed;
        Metrics.Table.cell_pct (Harness.cache_hit_ratio r);
        Metrics.Table.cell_int
          (Harness.cp_stats r).Mapsys.Cp_stats.map_requests ]
  in
  List.iter
    (fun (label, cp) ->
      List.iter
        (fun ttl ->
          let r = Harness.run ~label (spec_for cp ttl) in
          row label r ttl)
        ttls)
    [ ("pull-drop", Scenario.Cp_pull_drop);
      ("pull-queue", Scenario.Cp_pull_queue 32);
      ("pce", Scenario.Cp_pce Pce_control.default_options) ];
  (* Deployment fix for the PCE's DNS-TTL coupling: align both TTLs so
     every entry expiry forces a fresh resolution (and push). *)
  List.iter
    (fun ttl ->
      let r =
        Harness.run ~label:"pce(dns-aligned)"
          (spec_for ~dns_ttl:ttl
             (Scenario.Cp_pce Pce_control.default_options)
             ttl)
      in
      row "pce(dns-aligned)" r ttl)
    ttls;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
