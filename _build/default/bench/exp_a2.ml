(* A2 — ablation of the ETR reverse-mapping multicast.  With the paper's
   multicast, any border can carry the reverse direction of a flow; when
   the reverse mapping stays only at the ETR that saw the first packet,
   every IRC egress decision that diverges from it black-holes the
   reverse direction.  Bidirectional traffic with load-driven egress
   selection surfaces the difference. *)

open Core

let id = "a2"
let title = "A2 ablation: reverse-mapping multicast vs receiving-ETR-only"

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 6; provider_count = 4;
    borders_per_domain = 3; hosts_per_domain = 4;
    access_capacity_bps = 20e6 }

let spec_for reverse_scope =
  let options = { Pce_control.default_options with Pce_control.reverse_scope } in
  let config =
    { Scenario.default_config with
      Scenario.cp = Scenario.Cp_pce options; topology = `Random topology_params;
      seed = 14 }
  in
  { (Harness.default_spec config) with
    Harness.flows = 600; rate = 30.0; zipf_alpha = 0.5 (* diffuse, bidirectional *);
    data_packets = `Pareto 40.0; data_bytes = 1400; monitor = true;
    rebalance = true }

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "reverse scope"; "drops"; "drops(no-mapping)"; "failed conns";
          "established"; "push msgs" ]
  in
  List.iter
    (fun (label, scope) ->
      let r = Harness.run ~label (spec_for scope) in
      let no_mapping_drops =
        List.fold_left
          (fun acc cause ->
            acc
            + Option.value ~default:0
                (List.assoc_opt cause (Harness.drop_causes r)))
          0
          [ "pce-no-mapping-forward"; "pce-no-mapping-reverse" ]
      in
      Metrics.Table.add_row table
        [ label; Metrics.Table.cell_int (Harness.drops r);
          Metrics.Table.cell_int no_mapping_drops;
          Metrics.Table.cell_int r.Harness.failed;
          Metrics.Table.cell_pct
            (float_of_int r.Harness.established
            /. float_of_int (Stdlib.max 1 r.Harness.opened));
          Metrics.Table.cell_int
            (Harness.cp_stats r).Mapsys.Cp_stats.push_messages ])
    [ ("multicast to all ETRs (paper)", Pce_control.Reverse_multicast);
      ("receiving ETR only", Pce_control.Reverse_receiving_only) ];
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
