(* F7 — where the latency crossovers fall as the network grows slower.
   The Figure-1 topology with every wire latency scaled: the drop-based
   pull control plane is RTO-bound, so its relative penalty *shrinks* as
   the real OWD grows toward the RTO, while queue-based pull stays one
   mapping-resolution behind and the PCE tracks the no-LISP baseline at
   every scale. *)

open Core

let id = "f7"
let title = "F7: setup-time ratio vs one-way delay (Figure-1 scaled)"

let trials = 6

let measure cp scale =
  let setups = Netsim.Stats.Samples.create () in
  for seed = 1 to trials do
    let scenario =
      Scenario.build
        { Scenario.default_config with
          Scenario.cp; topology = `Figure1_scaled scale; seed }
    in
    let internet = Scenario.internet scenario in
    let flow =
      Nettypes.Flow.create
        ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
        ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
        ~src_port:(42000 + seed) ()
    in
    let c = Scenario.open_connection scenario ~flow ~data_packets:2 () in
    Scenario.run scenario;
    match Scenario.total_setup_time c with
    | Some t -> Netsim.Stats.Samples.add setups t
    | None -> ()
  done;
  Harness.mean setups

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "owd scale"; "approx owd (ms)"; "pce"; "pull-queue"; "pull-drop";
          "(vs nerd ideal)" ]
  in
  List.iter
    (fun scale ->
      let ideal = measure Scenario.Cp_nerd scale in
      let ratio cp = Printf.sprintf "%.2fx" (measure cp scale /. ideal) in
      let owd =
        let internet = Topology.Builder.figure1 ~scale () in
        Topology.Builder.latency internet
          internet.Topology.Builder.domains.(0).Topology.Domain.hosts.(0)
          internet.Topology.Builder.domains.(1).Topology.Domain.hosts.(0)
      in
      Metrics.Table.add_row table
        [ Printf.sprintf "%.2fx" scale; Metrics.Table.cell_ms owd;
          ratio (Scenario.Cp_pce Pce_control.default_options);
          ratio (Scenario.Cp_pull_queue 32); ratio Scenario.Cp_pull_drop;
          "1.00x" ])
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ];
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
