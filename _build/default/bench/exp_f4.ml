(* F4 — TE gain versus multihoming degree: the inbound-balance advantage
   of PCE-chosen ingress locators grows with the number of provider
   uplinks the victim can spread load over; with a single border there is
   nothing to engineer and the control planes tie. *)

open Core

let id = "f4"
let title = "F4: inbound balance vs number of victim borders"

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "borders"; "cp"; "max uplink util"; "jain index"; "gain vs static" ]
  in
  List.iter
    (fun borders ->
      let measure cp =
        let _, max_util, jain = Exp_t4.measure cp ~borders ~seed:17 in
        (max_util, jain)
      in
      let static_max, static_jain = measure Scenario.Cp_nerd in
      let pce_max, pce_jain =
        measure (Scenario.Cp_pce Pce_control.default_options)
      in
      Metrics.Table.add_row table
        [ Metrics.Table.cell_int borders; "nerd-push (static)";
          Metrics.Table.cell_pct static_max;
          Metrics.Table.cell_float static_jain; "1.00x" ];
      Metrics.Table.add_row table
        [ Metrics.Table.cell_int borders; "pce (min-load)";
          Metrics.Table.cell_pct pce_max; Metrics.Table.cell_float pce_jain;
          Printf.sprintf "%.2fx" (static_max /. Float.max 1e-9 pce_max) ])
    [ 1; 2; 4; 6 ];
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
