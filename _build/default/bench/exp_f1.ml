(* F1 — Figure 1 walkthrough: one flow through the two-domain scenario
   under the PCE control plane, with the step 1-8 event trace and the
   headline quantities of all three claims. *)

open Core

let id = "f1"
let title = "F1: architecture walkthrough of Figure 1 (steps 1-8)"

let run () =
  let scenario =
    Scenario.build
      { Scenario.default_config with
        Scenario.cp = Scenario.Cp_pce Pce_control.default_options }
  in
  Netsim.Trace.set_enabled (Scenario.trace scenario) true;
  let internet = Scenario.internet scenario in
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let flow =
    Nettypes.Flow.create
      ~src:(Topology.Domain.host_eid as_s 0)
      ~dst:(Topology.Domain.host_eid as_d 0)
      ~src_port:40000 ()
  in
  let connection = Scenario.open_connection scenario ~flow ~data_packets:3 () in
  Scenario.run scenario;
  (scenario, connection)

let tables () =
  let scenario, connection = run () in
  let counters = Lispdp.Dataplane.counters (Scenario.dataplane scenario) in
  let table =
    Metrics.Table.create ~title ~columns:[ "quantity"; "value" ]
  in
  let dns = Option.value ~default:nan connection.Scenario.dns_time in
  let handshake =
    Option.value ~default:nan
      (Option.bind connection.Scenario.tcp Workload.Tcp.handshake_time)
  in
  let setup = Option.value ~default:nan (Scenario.total_setup_time connection) in
  Metrics.Table.add_rows table
    [ [ "T_DNS (ms, cold)"; Metrics.Table.cell_ms dns ];
      [ "TCP handshake (ms)"; Metrics.Table.cell_ms handshake ];
      [ "total setup (ms)"; Metrics.Table.cell_ms setup ];
      [ "T_map beyond T_DNS (ms)"; Metrics.Table.cell_ms (setup -. dns -. handshake) ];
      [ "packets dropped"; Metrics.Table.cell_int counters.Lispdp.Dataplane.dropped ];
      [ "SYN transmissions";
        (match connection.Scenario.tcp with
        | Some c -> Metrics.Table.cell_int c.Workload.Tcp.syn_transmissions
        | None -> "-") ];
      [ "control messages";
        Metrics.Table.cell_int
          (Mapsys.Cp_stats.message_total (Scenario.cp_stats scenario)) ] ];
  (table, Scenario.trace scenario)

let print () =
  let table, trace = tables () in
  Format.printf "--- event trace (steps 1-8 of the paper's Figure 1) ---@.";
  Format.printf "%a@." Netsim.Trace.pp trace;
  Metrics.Table.print table
