(* V1 — simulator validation: closed-form vs simulated timings.

   Every latency in the simulator is a sum of shortest-path legs and
   fixed processing delays, so the headline quantities have closed
   forms on the deterministic Figure-1 topology.  This experiment
   recomputes them analytically and checks the discrete-event results
   against them to the microsecond — the self-check that the measured
   tables rest on correct event mechanics. *)

open Core

let id = "v1"
let title = "V1: validation — analytic vs simulated timings (Figure 1)"

let server_processing = 0.0005

(* Closed-form cold T_DNS: client->resolver, three iterative legs
   (query + processing + response), resolver->client. *)
let analytic_t_dns internet =
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let lat = Topology.Builder.latency internet in
  let client = as_s.Topology.Domain.hosts.(0) in
  let resolver = as_s.Topology.Domain.dns in
  let leg server = (2.0 *. lat resolver server) +. server_processing in
  lat client resolver
  +. leg internet.Topology.Builder.root_dns
  +. leg internet.Topology.Builder.tld_dns
  +. leg as_d.Topology.Domain.dns
  +. lat resolver client

(* The PCE detour replaces the authoritative response leg: the answer
   travels DNS_D -> (ipc) -> PCE_D -> DNS_S wire -> (ipc at PCE_S,
   which also pushes) -> DNS_S. *)
let analytic_t_dns_pce internet options =
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let lat = Topology.Builder.latency internet in
  let resolver = as_s.Topology.Domain.dns in
  let direct_response = lat as_d.Topology.Domain.dns resolver in
  let via_pces =
    options.Pce_control.ipc_latency
    +. lat as_d.Topology.Domain.pce resolver
    +. options.Pce_control.ipc_latency
  in
  analytic_t_dns internet -. direct_response +. via_pces

(* Handshake under an always-mapped control plane: SYN out and SYN/ACK
   back over the LISP tunnels chosen by the data plane.  The borders
   are selected by flow hash (NERD) — recomputed here the same way. *)
let analytic_handshake internet flow =
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let lat = Topology.Builder.latency internet in
  let host_s = as_s.Topology.Domain.hosts.(0) in
  let host_d = as_d.Topology.Domain.hosts.(0) in
  let border domain f =
    domain.Topology.Domain.borders.(Nettypes.Flow.hash f
                                    mod Array.length domain.Topology.Domain.borders)
  in
  let registry_rloc domain f =
    (* select_rloc over the advertised mapping, as the ITR does *)
    let mapping = Topology.Domain.advertised_mapping domain ~ttl:60.0 in
    (Nettypes.Mapping.select_rloc mapping ~hash:(Nettypes.Flow.hash f))
      .Nettypes.Mapping.rloc_addr
  in
  let router_of internet rloc =
    match Topology.Builder.border_of_rloc internet rloc with
    | Some (_, b) -> b.Topology.Domain.router
    | None -> assert false
  in
  let fwd_itr = (border as_s flow).Topology.Domain.router in
  let fwd_etr = router_of internet (registry_rloc as_d flow) in
  let reverse = Nettypes.Flow.reverse flow in
  (* The reverse direction gleans: it exits AS_D through the ETR that
     received the SYN and tunnels back to the forward ITR. *)
  let syn = lat host_s fwd_itr +. lat fwd_itr fwd_etr +. lat fwd_etr host_d in
  ignore reverse;
  let syn_ack = lat host_d fwd_etr +. lat fwd_etr fwd_itr +. lat fwd_itr host_s in
  syn +. syn_ack

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:[ "quantity"; "analytic (ms)"; "simulated (ms)"; "delta (us)" ]
  in
  let row label analytic simulated =
    Metrics.Table.add_row table
      [ label; Metrics.Table.cell_ms analytic; Metrics.Table.cell_ms simulated;
        Printf.sprintf "%.2f" ((simulated -. analytic) *. 1e6) ]
  in
  (* NERD run: T_DNS untouched, handshake over hash-chosen tunnels. *)
  let scenario =
    Scenario.build { Scenario.default_config with Scenario.cp = Scenario.Cp_nerd }
  in
  let internet = Scenario.internet scenario in
  let flow =
    Nettypes.Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~src_port:46000 ()
  in
  let c = Scenario.open_connection scenario ~flow ~data_packets:1 () in
  Scenario.run scenario;
  row "T_DNS, cold (plain DNS)" (analytic_t_dns internet)
    (Option.value ~default:nan c.Scenario.dns_time);
  row "TCP handshake (always-mapped)" (analytic_handshake internet flow)
    (Option.value ~default:nan
       (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time));
  (* PCE run: the detoured T_DNS. *)
  let options = Pce_control.default_options in
  let scenario2 =
    Scenario.build
      { Scenario.default_config with Scenario.cp = Scenario.Cp_pce options }
  in
  let internet2 = Scenario.internet scenario2 in
  let flow2 =
    Nettypes.Flow.create
      ~src:(Topology.Domain.host_eid internet2.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet2.Topology.Builder.domains.(1) 0)
      ~src_port:46001 ()
  in
  let c2 = Scenario.open_connection scenario2 ~flow:flow2 ~data_packets:1 () in
  Scenario.run scenario2;
  row "T_DNS, cold (via both PCEs)"
    (analytic_t_dns_pce internet2 options)
    (Option.value ~default:nan c2.Scenario.dns_time);
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
