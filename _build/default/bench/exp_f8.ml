(* F8 — robustness of the latency claim to the core topology.  The other
   experiments use a full-mesh provider core; real transit is
   hierarchical, which stretches paths and raises T_DNS and OWD alike.
   If claim (ii) is topology-robust, the PCE's extra-vs-ideal stays at
   zero on a two-tier core too, while the pull planes' penalties grow
   with the longer underlay paths feeding the mapping RTT. *)

open Core

let id = "f8"
let title = "F8: claim (ii) on a hierarchical (two-tier) provider core"

let params shape =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 24; provider_count = 9;
    borders_per_domain = 2; hosts_per_domain = 2; core_shape = shape }

let spec_for cp shape =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random (params shape); seed = 23 }
  in
  { (Harness.default_spec config) with
    Harness.flows = 500; rate = 40.0; zipf_alpha = 0.9;
    data_packets = `Fixed 4 }

let shapes =
  [ ("full mesh", Topology.Builder.Full_mesh);
    ("two-tier (3 tier-1)", Topology.Builder.Two_tier 3) ]

let cps =
  [ ("pull-drop", Scenario.Cp_pull_drop);
    ("pull-queue", Scenario.Cp_pull_queue 32);
    ("msmr", Scenario.Cp_msmr);
    ("pce", Scenario.Cp_pce Pce_control.default_options) ]

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "core"; "cp"; "mean T_DNS (ms)"; "mean setup (ms)";
          "extra vs ideal (ms)"; "drops" ]
  in
  List.iter
    (fun (shape_label, shape) ->
      let ideal = Harness.run ~label:"nerd" (spec_for Scenario.Cp_nerd shape) in
      let ideal_mean = Harness.mean ideal.Harness.setups in
      List.iter
        (fun (label, cp) ->
          let r = Harness.run ~label (spec_for cp shape) in
          Metrics.Table.add_row table
            [ shape_label; label;
              Metrics.Table.cell_ms (Harness.mean r.Harness.dns_times);
              Metrics.Table.cell_ms (Harness.mean r.Harness.setups);
              Metrics.Table.cell_ms (Harness.mean r.Harness.setups -. ideal_mean);
              Metrics.Table.cell_int (Harness.drops r) ])
        cps)
    shapes;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
