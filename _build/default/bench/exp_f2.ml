(* F2 — CDF of first-packet delivery delay (time from the client's first
   SYN emission until a SYN first reaches the responder), per control
   plane.  The drop-based control planes push the whole distribution out
   past the retransmission timeout. *)

open Core

let id = "f2"
let title = "F2: first-packet delivery delay CDF (ms at percentiles)"

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 16; provider_count = 4;
    borders_per_domain = 2; hosts_per_domain = 4 }

let spec_for cp =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random topology_params; seed = 33 }
  in
  { (Harness.default_spec config) with
    Harness.flows = 700; rate = 50.0; zipf_alpha = 0.8;
    data_packets = `Fixed 4 }

let percentiles = [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0 ]

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        ("cp"
        :: List.map (fun p -> Printf.sprintf "p%.0f" p) percentiles
        @ [ "delivered" ])
  in
  List.iter
    (fun (label, cp) ->
      let r = Harness.run ~label (spec_for cp) in
      let samples = r.Harness.first_packet_delays in
      let cells =
        List.map
          (fun p -> Metrics.Table.cell_ms (Harness.percentile_or_zero samples p))
          percentiles
      in
      Metrics.Table.add_row table
        ((label :: cells)
        @ [ Metrics.Table.cell_pct
              (float_of_int (Netsim.Stats.Samples.count samples)
              /. float_of_int (Stdlib.max 1 r.Harness.opened)) ]))
    Harness.standard_cps;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
