(* T3 — claim C2 at scale: the mapping-resolution penalty each control
   plane adds on top of the always-mapped ideal (NERD), absolute and
   relative to T_DNS, as the internet grows.  Identical seeds give every
   control plane the exact same flow sequence. *)

open Core

let id = "t3"
let title = "T3: added setup latency vs internet size (T_map / T_DNS)"

let params n =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = n; provider_count = 6;
    borders_per_domain = 2; hosts_per_domain = 2 }

let spec_for cp n =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random (params n); seed = 7 }
  in
  { (Harness.default_spec config) with
    Harness.flows = 600; rate = 40.0; zipf_alpha = 0.9;
    data_packets = `Fixed 4 }

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "domains"; "cp"; "mean setup (ms)"; "extra vs ideal (ms)";
          "extra / T_DNS"; "p95 setup (ms)" ]
  in
  List.iter
    (fun n ->
      let ideal = Harness.run ~label:"nerd" (spec_for Scenario.Cp_nerd n) in
      let ideal_mean = Harness.mean ideal.Harness.setups in
      List.iter
        (fun (label, cp) ->
          let r =
            if label = "nerd-push" then ideal else Harness.run ~label (spec_for cp n)
          in
          let setup_mean = Harness.mean r.Harness.setups in
          let extra = setup_mean -. ideal_mean in
          let dns_mean = Harness.mean r.Harness.dns_times in
          Metrics.Table.add_row table
            [ Metrics.Table.cell_int n; label;
              Metrics.Table.cell_ms setup_mean; Metrics.Table.cell_ms extra;
              Metrics.Table.cell_float (extra /. Float.max 1e-9 dns_mean);
              Metrics.Table.cell_ms
                (Harness.percentile_or_zero r.Harness.setups 95.0) ])
        Harness.standard_cps)
    [ 8; 32; 64 ];
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
