(* A3 — ablation of the IRC objective.  The paper delegates locator
   selection to "the algorithms used today by Intelligent Route Control"
   without picking one; this table shows what the choice buys.  The same
   hotspot workload (with background load on one victim uplink) runs
   under each policy; latency-blind policies balance better, load-blind
   policies find shorter paths, and the blended objective sits between. *)

open Core

let id = "a3"
let title = "A3 ablation: IRC policy (latency vs load vs blends)"

let policies =
  [ ("min-load", Irc.Policy.Min_load);
    ("min-latency", Irc.Policy.Min_latency);
    ("weighted(.5,.5)",
     Irc.Policy.Weighted { latency_weight = 0.5; load_weight = 0.5 });
    ("round-robin", Irc.Policy.Round_robin);
    ("flow-hash", Irc.Policy.Flow_hash) ]

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "policy"; "max uplink util"; "jain index"; "mean handshake (ms)";
          "p95 handshake (ms)"; "te reroutes" ]
  in
  List.iter
    (fun (label, policy) ->
      let cp =
        Scenario.Cp_pce { Pce_control.default_options with Pce_control.policy }
      in
      let r, max_util, jain = Exp_t4.measure cp ~borders:4 ~seed:19 in
      Metrics.Table.add_row table
        [ label; Metrics.Table.cell_pct max_util;
          Metrics.Table.cell_float jain;
          Metrics.Table.cell_ms (Harness.mean r.Harness.handshakes);
          Metrics.Table.cell_ms
            (Harness.percentile_or_zero r.Harness.handshakes 95.0);
          Metrics.Table.cell_int
            (match Scenario.pce r.Harness.scenario with
            | Some pce -> Pce_control.reroutes pce
            | None -> 0) ])
    policies;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
