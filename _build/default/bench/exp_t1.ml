(* T1 — claim C1: data packets lost or delayed at ITRs during mapping
   resolution, per control plane, as destination popularity (and hence
   map-cache friendliness) varies. *)

open Core

let id = "t1"
let title = "T1: packets dropped during mapping resolution (Zipf sweep)"

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 16; provider_count = 4;
    borders_per_domain = 2; hosts_per_domain = 4 }

let spec_for cp alpha =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random topology_params; seed = 42;
      mapping_ttl = 60.0 }
  in
  { (Harness.default_spec config) with
    Harness.flows = 1500; rate = 50.0; zipf_alpha = alpha;
    data_packets = `Fixed 8 }

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "zipf-alpha"; "flows"; "drops"; "drops/flow"; "syn-retx";
          "failed"; "established"; "cache-hit" ]
  in
  List.iter
    (fun (label, cp) ->
      List.iter
        (fun alpha ->
          let r = Harness.run ~label (spec_for cp alpha) in
          Metrics.Table.add_row table
            [ label; Metrics.Table.cell_float ~decimals:1 alpha;
              Metrics.Table.cell_int r.Harness.opened;
              Metrics.Table.cell_int (Harness.drops r);
              Metrics.Table.cell_float (Harness.drops_per_flow r);
              Metrics.Table.cell_int r.Harness.syn_retransmissions;
              Metrics.Table.cell_int r.Harness.failed;
              Metrics.Table.cell_pct
                (float_of_int r.Harness.established
                /. float_of_int (Stdlib.max 1 r.Harness.opened));
              Metrics.Table.cell_pct (Harness.cache_hit_ratio r) ])
        [ 0.7; 0.9; 1.1 ])
    Harness.standard_cps;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
