(* F5 — extension experiment: RLOC failure recovery.  One of the victim
   domain's access links dies mid-run while long transfers are aimed at
   it.  Every control plane keeps serving traffic hashed to the live
   locators; the question is how long packets addressed to the dead
   locator keep black-holing:

   - pull control planes recover when the poisoned map-cache entries
     expire (bounded by the mapping TTL) and are re-fetched;
   - NERD recovers after the database update propagates;
   - the PCE detects the failure in its monitoring loop and repairs both
     directions with direct PCE-to-PCE updates — the "dynamic management
     of the mappings" the paper's abstract promises. *)

open Core

let id = "f5"
let title = "F5: blackout after an RLOC failure (mapping TTL 10s)"

let victim = 0
(* Deliberately between monitoring ticks so the PCE pays a realistic
   detection delay. *)
let fail_at = 8.13

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 8; provider_count = 4;
    borders_per_domain = 3; hosts_per_domain = 4 }

type timeline = {
  mutable drops_before : int;
  mutable drops_after : int;
  mutable last_drop : float;
}

let spec_for cp timeline =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random topology_params; seed = 27;
      mapping_ttl = 10.0; nerd_propagation = 5.0 }
  in
  let inject scenario =
    Lispdp.Dataplane.set_drop_observer (Scenario.dataplane scenario)
      (Some
         (fun ~cause:_ ~now ->
           if now < fail_at then
             timeline.drops_before <- timeline.drops_before + 1
           else begin
             timeline.drops_after <- timeline.drops_after + 1;
             timeline.last_drop <- now
           end));
    ignore
      (Netsim.Engine.schedule (Scenario.engine scenario) ~delay:fail_at
         (fun () -> Scenario.fail_uplink scenario ~domain:victim ~border:0))
  in
  { (Harness.default_spec config) with
    Harness.flows = 300; rate = 20.0; hotspots = Some [ (victim, 1.0) ];
    sources = Some [ 1; 2; 3; 4; 5; 6; 7 ]; data_packets = `Fixed 600;
    data_bytes = 1400; monitor = true; rebalance = false;
    monitor_interval = 0.5; pre_run = Some inject }

let cps =
  [ ("pull-drop", Scenario.Cp_pull_drop);
    ("pull-queue", Scenario.Cp_pull_queue 64);
    ("pull-smr", Scenario.Cp_pull_smr 64);
    ("nerd-push", Scenario.Cp_nerd);
    ("pce", Scenario.Cp_pce Pce_control.default_options) ]

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "recovery mechanism"; "drops after failure";
          "blackout (s)"; "failed conns"; "failovers" ]
  in
  List.iter
    (fun (label, cp) ->
      let timeline = { drops_before = 0; drops_after = 0; last_drop = fail_at } in
      let r = Harness.run ~label (spec_for cp timeline) in
      let mechanism =
        match cp with
        | Scenario.Cp_pull_drop | Scenario.Cp_pull_queue _
        | Scenario.Cp_pull_detour | Scenario.Cp_cons | Scenario.Cp_msmr ->
            "map-cache TTL expiry"
        | Scenario.Cp_pull_smr _ -> "SMR-driven eviction"
        | Scenario.Cp_nerd -> "database re-push (5s)"
        | Scenario.Cp_pce _ -> "monitor + PCE-to-PCE update"
      in
      let failovers =
        match Scenario.pce r.Harness.scenario with
        | Some pce -> Pce_control.failovers pce
        | None -> 0
      in
      Metrics.Table.add_row table
        [ label; mechanism;
          Metrics.Table.cell_int timeline.drops_after;
          Metrics.Table.cell_float ~decimals:2 (timeline.last_drop -. fail_at);
          Metrics.Table.cell_int r.Harness.failed;
          Metrics.Table.cell_int failovers ])
    cps;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
