(* The experiment harness: regenerates every table and figure of
   EXPERIMENTS.md.  Run all with `dune exec bench/main.exe`, or a subset
   with experiment ids as arguments, e.g.
   `dune exec bench/main.exe -- t1 t4 micro`. *)

let experiments : (string * string * (unit -> unit)) list =
  List.map
    (fun e ->
      (e.Experiments.Exp_index.exp_id, e.Experiments.Exp_index.exp_title,
       e.Experiments.Exp_index.print))
    Experiments.Exp_index.all

let usage () =
  print_endline "usage: main.exe [experiment-id ...]";
  print_endline "available experiments:";
  List.iter (fun (id, title, _) -> Printf.printf "  %-6s %s\n" id title) experiments

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: args when List.mem "--help" args || List.mem "-h" args ->
        usage ();
        exit 0
    | _ :: args -> args
    | [] -> []
  in
  let selected =
    if requested = [] then experiments
    else
      List.map
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some e -> e
          | None ->
              Printf.eprintf "unknown experiment id: %s\n" id;
              usage ();
              exit 1)
        requested
  in
  Printf.printf
    "LISP PCE control-plane reproduction - experiment harness (%d experiments)\n\n"
    (List.length selected);
  List.iter
    (fun (id, title, print) ->
      Printf.printf ">>> [%s] %s\n%!" id title;
      let t0 = Unix.gettimeofday () in
      print ();
      Printf.printf "    (generated in %.1fs)\n\n%!" (Unix.gettimeofday () -. t0))
    selected
