(* F9 — map-cache capacity pressure.  The pull control planes' map-cache
   state is bounded per router; once the working set of destinations
   exceeds the capacity, LRU eviction turns previously-warm destinations
   cold again and the drop-based planes re-pay the resolution (and its
   losses) continuously.  The PCE's per-flow tables are sized by active
   flows rather than destination working set, so it is shown as the
   reference.  (The paper's NERD critique is the mirror image: NERD
   needs capacity for the whole internet.) *)

open Core

let id = "f9"
let title = "F9: drops vs map-cache capacity (working set 63 domains)"

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 64; provider_count = 8;
    borders_per_domain = 2; hosts_per_domain = 2 }

let spec_for cp capacity =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random topology_params; seed = 29;
      cache_capacity = capacity; mapping_ttl = 600.0 (* evictions, not expiry *) }
  in
  { (Harness.default_spec config) with
    Harness.flows = 2000; rate = 100.0; zipf_alpha = 0.6 (* broad working set *);
    data_packets = `Fixed 4 }

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "cache capacity"; "drops/flow"; "cache-hit"; "evictions";
          "map-req" ]
  in
  List.iter
    (fun (label, cp) ->
      List.iter
        (fun capacity ->
          let r = Harness.run ~label (spec_for cp capacity) in
          let cache =
            Lispdp.Dataplane.cache_stats_totals
              (Scenario.dataplane r.Harness.scenario)
          in
          Metrics.Table.add_row table
            [ label; Metrics.Table.cell_int capacity;
              Metrics.Table.cell_float (Harness.drops_per_flow r);
              Metrics.Table.cell_pct (Harness.cache_hit_ratio r);
              Metrics.Table.cell_int cache.Lispdp.Map_cache.evictions;
              Metrics.Table.cell_int
                (Harness.cp_stats r).Mapsys.Cp_stats.map_requests ])
        [ 4; 8; 16; 32; 64 ])
    [ ("pull-drop", Scenario.Cp_pull_drop);
      ("pull-queue", Scenario.Cp_pull_queue 32) ];
  (* PCE reference: no map-cache at all; state is per active flow. *)
  let r =
    Harness.run ~label:"pce" (spec_for (Scenario.Cp_pce Pce_control.default_options) 4)
  in
  Metrics.Table.add_row table
    [ "pce (reference)"; "n/a";
      Metrics.Table.cell_float (Harness.drops_per_flow r); "n/a"; "0";
      Metrics.Table.cell_int (Harness.cp_stats r).Mapsys.Cp_stats.map_requests ];
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
