(* F6 — sizing the queueing palliative.  Pull-with-queueing avoids the
   drops of claim (i) only while its per-resolution buffer is deep
   enough for the packets that arrive during one resolution; this sweep
   shows where the buffer stops helping and what it costs in held
   packets.  A burst-heavy workload (many packets in flight per new
   destination) stresses the limit. *)

open Core

let id = "f6"
let title = "F6: pull-queue buffer sizing (drops vs queue limit)"

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 16; provider_count = 4;
    borders_per_domain = 2; hosts_per_domain = 4 }

let spec_for limit =
  let config =
    { Scenario.default_config with
      Scenario.cp = Scenario.Cp_pull_queue limit;
      topology = `Random topology_params; seed = 13;
      (* Fast senders: data packets every 0.5 ms, so a whole burst can
         arrive within one ALT resolution. *)
      data_gap = 0.0005 }
  in
  { (Harness.default_spec config) with
    Harness.flows = 800; rate = 60.0; zipf_alpha = 0.6 (* many cold misses *);
    data_packets = `Fixed 24 }

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "queue limit"; "drops"; "drops/flow"; "overflow drops"; "held";
          "established" ]
  in
  List.iter
    (fun limit ->
      let r = Harness.run ~label:(Printf.sprintf "queue-%d" limit) (spec_for limit) in
      let overflow =
        Option.value ~default:0
          (List.assoc_opt "resolution-queue-overflow" (Harness.drop_causes r))
      in
      Metrics.Table.add_row table
        [ Metrics.Table.cell_int limit;
          Metrics.Table.cell_int (Harness.drops r);
          Metrics.Table.cell_float (Harness.drops_per_flow r);
          Metrics.Table.cell_int overflow;
          Metrics.Table.cell_int (Harness.dataplane_counters r).Lispdp.Dataplane.held;
          Metrics.Table.cell_pct
            (float_of_int r.Harness.established
            /. float_of_int (Stdlib.max 1 r.Harness.opened)) ])
    [ 1; 2; 4; 8; 16; 64 ];
  (* Reference rows: the two extremes the queue interpolates between. *)
  let drop_ref =
    Harness.run ~label:"pull-drop"
      { (spec_for 1) with
        Harness.config =
          { (spec_for 1).Harness.config with Scenario.cp = Scenario.Cp_pull_drop } }
  in
  Metrics.Table.add_row table
    [ "0 (pull-drop)"; Metrics.Table.cell_int (Harness.drops drop_ref);
      Metrics.Table.cell_float (Harness.drops_per_flow drop_ref); "-"; "0";
      Metrics.Table.cell_pct
        (float_of_int drop_ref.Harness.established
        /. float_of_int (Stdlib.max 1 drop_ref.Harness.opened)) ];
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
