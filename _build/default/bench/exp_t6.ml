(* T6 — mapping churn: TE policy compliance over time.

   The paper's future work is "to explore the TE opportunities of this
   CP ... through the dynamic management of the mappings".  This
   experiment quantifies the staleness problem that dynamic management
   must beat: a destination domain re-registers its preferred ingress
   locator every few seconds (a TE policy change, not a failure — the
   old locator keeps working), and we measure how much inbound traffic
   still arrives through non-preferred uplinks under each update
   mechanism:

   - plain pull: senders comply only when their cached mapping (or
     gleaned host route) expires;
   - pull + SMR: the re-registration solicits every holder immediately;
   - NERD: compliance follows the database propagation delay;
   - PCE: the preference *is* the PCE's IRC objective — the domain's
     ingress choice is applied at every resolution and re-advertised on
     demand, so there is no external registry preference to violate.
     Shown as the native-control reference.

   Compliance is sampled per second: the fraction of victim inbound
   bytes arriving on the currently-preferred uplink. *)

open Core

let id = "t6"
let title = "T6: TE policy compliance under mapping churn"

let victim = 0
let churn_interval = 5.0
let horizon = 30.0

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 8; provider_count = 4;
    borders_per_domain = 2; hosts_per_domain = 4 }

type probe = {
  mutable preferred : int;  (** victim border index currently preferred *)
  mutable compliant_bytes : int;
  mutable total_bytes : int;
  mutable last_inbound : int array;
}

(* Re-register the victim's mapping with a single (preferred) locator
   every [churn_interval]; sample per-uplink inbound deltas every
   second. *)
let inject probe scenario =
  let internet = Scenario.internet scenario in
  let domain = internet.Topology.Builder.domains.(victim) in
  let inbound () =
    Array.map
      (fun b ->
        Topology.Link.bytes_from b.Topology.Domain.uplink
          (Topology.Link.other_end b.Topology.Domain.uplink
             b.Topology.Domain.router))
      domain.Topology.Domain.borders
  in
  probe.last_inbound <- inbound ();
  let register_preference index =
    let border = domain.Topology.Domain.borders.(index) in
    let mapping =
      Nettypes.Mapping.create ~eid_prefix:domain.Topology.Domain.eid_prefix
        ~rlocs:[ Nettypes.Mapping.rloc border.Topology.Domain.rloc ]
        ~ttl:(Scenario.config scenario).Scenario.mapping_ttl
    in
    Scenario.reregister scenario ~domain:victim mapping
  in
  let rec churn index =
    if Netsim.Engine.now (Scenario.engine scenario) < horizon then begin
      probe.preferred <- index;
      register_preference index;
      ignore
        (Netsim.Engine.schedule (Scenario.engine scenario)
           ~delay:churn_interval (fun () ->
             churn ((index + 1) mod Array.length domain.Topology.Domain.borders)))
    end
  in
  ignore
    (Netsim.Engine.schedule (Scenario.engine scenario) ~delay:2.0 (fun () ->
         churn 1));
  let rec sample () =
    if Netsim.Engine.now (Scenario.engine scenario) < horizon then begin
      let now_inbound = inbound () in
      Array.iteri
        (fun i v ->
          let delta = v - probe.last_inbound.(i) in
          probe.total_bytes <- probe.total_bytes + delta;
          if i = probe.preferred then
            probe.compliant_bytes <- probe.compliant_bytes + delta)
        now_inbound;
      probe.last_inbound <- now_inbound;
      ignore (Netsim.Engine.schedule (Scenario.engine scenario) ~delay:1.0 sample)
    end
  in
  ignore (Netsim.Engine.schedule (Scenario.engine scenario) ~delay:2.5 sample)

let spec_for cp probe =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random topology_params; seed = 41;
      mapping_ttl = 20.0 (* staleness horizon for plain pull *);
      nerd_propagation = 3.0 }
  in
  { (Harness.default_spec config) with
    Harness.flows = 600; rate = 25.0 (* 24 s of arrivals *);
    hotspots = Some [ (victim, 1.0) ];
    sources = Some [ 1; 2; 3; 4; 5; 6; 7 ]; data_packets = `Fixed 100;
    data_bytes = 1400; monitor = true; rebalance = false;
    pre_run = Some (inject probe) }

let cps =
  [ ("pull-queue", Scenario.Cp_pull_queue 64);
    ("pull-smr", Scenario.Cp_pull_smr 64);
    ("nerd-push", Scenario.Cp_nerd);
    ("pce (native)", Scenario.Cp_pce Pce_control.default_options) ]

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "update mechanism"; "compliant bytes"; "drops";
          "top drop cause"; "extra ctl msgs" ]
  in
  List.iter
    (fun (label, cp) ->
      let probe =
        { preferred = 0; compliant_bytes = 0; total_bytes = 0;
          last_inbound = [||] }
      in
      let r = Harness.run ~label (spec_for cp probe) in
      let compliance =
        if probe.total_bytes = 0 then 0.0
        else float_of_int probe.compliant_bytes /. float_of_int probe.total_bytes
      in
      let mechanism =
        match cp with
        | Scenario.Cp_pull_queue _ -> "cache TTL (20 s)"
        | Scenario.Cp_pull_smr _ -> "SMR on re-register"
        | Scenario.Cp_nerd -> "DB push (3 s)"
        | Scenario.Cp_pce _ -> "IRC owns the choice"
        | Scenario.Cp_pull_drop | Scenario.Cp_pull_detour | Scenario.Cp_cons
        | Scenario.Cp_msmr ->
            "-"
      in
      let top_cause =
        match Harness.drop_causes r with
        | (cause, n) :: _ -> Printf.sprintf "%s (%d)" cause n
        | [] -> "-"
      in
      Metrics.Table.add_row table
        [ label; mechanism;
          (if label = "pce (native)" then "n/a (self-directed)"
           else Metrics.Table.cell_pct compliance);
          Metrics.Table.cell_int (Harness.drops r); top_cause;
          Metrics.Table.cell_int
            (Mapsys.Cp_stats.message_total (Harness.cp_stats r)) ])
    cps;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
