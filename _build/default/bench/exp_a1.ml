(* A1 — ablation of step 7b's "push the mapping to ALL ITRs", crossed
   with the reverse-mapping multicast (A2's knob), because the two
   mechanisms back each other up: the reverse multicast re-installs the
   forward tuple at every ITR once the handshake completes, so it can
   mask a narrow push scope.  The 2x2 shows the full picture — with the
   paper's design (top row) nothing drops; removing either redundancy
   leaks losses in its direction; removing both is catastrophic under TE
   churn.  Drop causes are split by tunnel direction. *)

open Core

let id = "a1"
let title = "A1 ablation: push scope x reverse scope under TE churn"

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 8; provider_count = 4;
    borders_per_domain = 3; hosts_per_domain = 4;
    access_capacity_bps = 20e6 }

let spec_for push_scope reverse_scope =
  let options =
    { Pce_control.default_options with Pce_control.push_scope; reverse_scope }
  in
  let config =
    { Scenario.default_config with
      Scenario.cp = Scenario.Cp_pce options; topology = `Random topology_params;
      seed = 9 }
  in
  { (Harness.default_spec config) with
    Harness.flows = 600; rate = 30.0; zipf_alpha = 0.7;
    data_packets = `Pareto 120.0 (* long transfers so reroutes hit mid-flight *);
    data_bytes = 1400; monitor = true; rebalance = true;
    monitor_interval = 1.0 }

let scope_name = function
  | Pce_control.Push_all_itrs -> "all ITRs"
  | Pce_control.Push_egress_only -> "egress only"

let reverse_name = function
  | Pce_control.Reverse_multicast -> "multicast"
  | Pce_control.Reverse_receiving_only -> "receiving only"

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "push scope (7b)"; "reverse scope"; "te reroutes";
          "fwd drops"; "rev drops"; "failed conns"; "push msgs" ]
  in
  List.iter
    (fun (push, reverse) ->
      let r = Harness.run (spec_for push reverse) in
      let cause c =
        Option.value ~default:0 (List.assoc_opt c (Harness.drop_causes r))
      in
      let reroutes =
        match Scenario.pce r.Harness.scenario with
        | Some pce -> Pce_control.reroutes pce
        | None -> 0
      in
      Metrics.Table.add_row table
        [ scope_name push; reverse_name reverse;
          Metrics.Table.cell_int reroutes;
          Metrics.Table.cell_int (cause "pce-no-mapping-forward");
          Metrics.Table.cell_int (cause "pce-no-mapping-reverse");
          Metrics.Table.cell_int r.Harness.failed;
          Metrics.Table.cell_int
            (Harness.cp_stats r).Mapsys.Cp_stats.push_messages ])
    [ (Pce_control.Push_all_itrs, Pce_control.Reverse_multicast);
      (Pce_control.Push_egress_only, Pce_control.Reverse_multicast);
      (Pce_control.Push_all_itrs, Pce_control.Reverse_receiving_only);
      (Pce_control.Push_egress_only, Pce_control.Reverse_receiving_only) ];
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
