(* T2 — claim C2: cold-start TCP connection-establishment time on the
   Figure-1 topology, decomposed into the paper's formula
   T_DNS + T_map + handshake, against the analytic no-LISP baseline. *)

open Core

let id = "t2"
let title = "T2: connection setup latency, Figure-1 scenario (cold start)"

let trials = 10

(* One cold connection per fresh scenario, averaged over seeds. *)
let measure cp =
  let dns = Netsim.Stats.Samples.create () in
  let handshake = Netsim.Stats.Samples.create () in
  let setup = Netsim.Stats.Samples.create () in
  let failed = ref 0 in
  for seed = 1 to trials do
    let scenario =
      Scenario.build { Scenario.default_config with Scenario.cp; seed }
    in
    let internet = Scenario.internet scenario in
    let as_s = internet.Topology.Builder.domains.(0) in
    let as_d = internet.Topology.Builder.domains.(1) in
    let flow =
      Nettypes.Flow.create
        ~src:(Topology.Domain.host_eid as_s 0)
        ~dst:(Topology.Domain.host_eid as_d 0)
        ~src_port:(41000 + seed) ()
    in
    let c = Scenario.open_connection scenario ~flow ~data_packets:2 () in
    Scenario.run scenario;
    (match c.Scenario.dns_time with
    | Some t -> Netsim.Stats.Samples.add dns t
    | None -> ());
    match
      ( Option.bind c.Scenario.tcp Workload.Tcp.handshake_time,
        Scenario.total_setup_time c )
    with
    | Some h, Some s ->
        Netsim.Stats.Samples.add handshake h;
        Netsim.Stats.Samples.add setup s
    | _, _ -> incr failed
  done;
  (dns, handshake, setup, !failed)

(* The paper's no-LISP reference: T_DNS + 2 OWD(S,D); mapping plays no
   part.  OWD measured host-to-host on the same topology. *)
let analytic_baseline dns_mean =
  let internet = Topology.Builder.figure1 () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let owd =
    Topology.Builder.latency internet as_s.Topology.Domain.hosts.(0)
      as_d.Topology.Domain.hosts.(0)
  in
  (owd, dns_mean +. (2.0 *. owd))

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "T_DNS (ms)"; "handshake (ms)"; "total setup (ms)";
          "vs no-LISP"; "failed" ]
  in
  let reference_dns = ref 0.0 in
  let rows =
    List.map
      (fun (label, cp) ->
        let dns, handshake, setup, failed = measure cp in
        if label = "pull-drop" then reference_dns := Harness.mean dns;
        (label, dns, handshake, setup, failed))
      Harness.standard_cps
  in
  let owd, baseline = analytic_baseline !reference_dns in
  Metrics.Table.add_row table
    [ "no-LISP (analytic)"; Metrics.Table.cell_ms !reference_dns;
      Metrics.Table.cell_ms (2.0 *. owd); Metrics.Table.cell_ms baseline;
      "1.00x"; "0" ];
  List.iter
    (fun (label, dns, handshake, setup, failed) ->
      let total = Harness.mean setup in
      Metrics.Table.add_row table
        [ label; Metrics.Table.cell_ms (Harness.mean dns);
          Metrics.Table.cell_ms (Harness.mean handshake);
          Metrics.Table.cell_ms total;
          Printf.sprintf "%.2fx" (total /. baseline);
          Metrics.Table.cell_int failed ])
    rows;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
