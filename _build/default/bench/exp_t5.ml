(* T5 — control-plane overhead: messages, bytes and per-router mapping
   state of each control plane on the same workload. *)

open Core

let id = "t5"
let title = "T5: control-plane overhead (messages / bytes / state)"

let topology_params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 32; provider_count = 8;
    borders_per_domain = 2; hosts_per_domain = 4 }

let spec_for cp =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random topology_params; seed = 21 }
  in
  { (Harness.default_spec config) with
    Harness.flows = 2000; rate = 100.0; zipf_alpha = 0.9;
    data_packets = `Fixed 6 }

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "map-req"; "map-rep"; "pushes"; "ctl bytes"; "bytes/flow";
          "detoured"; "state total"; "state peak/router" ]
  in
  List.iter
    (fun (label, cp) ->
      let r = Harness.run ~label (spec_for cp) in
      let s = Harness.cp_stats r in
      let state_total, state_peak, _routers = Harness.router_state_entries r in
      Metrics.Table.add_row table
        [ label;
          Metrics.Table.cell_int s.Mapsys.Cp_stats.map_requests;
          Metrics.Table.cell_int s.Mapsys.Cp_stats.map_replies;
          Metrics.Table.cell_int s.Mapsys.Cp_stats.push_messages;
          Metrics.Table.cell_bytes s.Mapsys.Cp_stats.control_bytes;
          Metrics.Table.cell_float ~decimals:1
            (float_of_int s.Mapsys.Cp_stats.control_bytes
            /. float_of_int (Stdlib.max 1 r.Harness.opened));
          Metrics.Table.cell_int s.Mapsys.Cp_stats.detoured_packets;
          Metrics.Table.cell_int state_total;
          Metrics.Table.cell_int state_peak ])
    Harness.standard_cps;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
