(* T4 — claim C3: inbound load balance of a multihomed victim domain.
   Every other domain aims heavy-tailed flows at the victim while one of
   the victim's uplinks carries unrelated background traffic.  The
   baselines pick the victim's ingress from the static advertised
   mapping (weights cannot see the background load); the PCE's IRC
   engine measures it and steers DNS-driven pairs away — the "dynamic
   management of the mappings" of the paper's abstract. *)

open Core

let id = "t4"
let title = "T4: inbound TE balance at a multihomed victim domain"

let victim = 0

let params ~borders =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 12; provider_count = 6;
    borders_per_domain = borders; hosts_per_domain = 6;
    access_capacity_bps = 20e6 (* make utilisation visible *) }

let warmup = 3.0
let workload_window = 20.0

(* Unrelated traffic entering the victim through its first uplink:
   10 Mbit/s (half the access capacity), invisible to the static
   mapping weights but visible to the PCE's load monitors.  It starts
   during the warm-up so the IRC estimates already reflect it when the
   first DNS queries arrive.  A byte snapshot at the end of the warm-up
   lets the table report utilisation over the workload window only. *)
let snapshots : (int, int array) Hashtbl.t = Hashtbl.create 8

let background_load scenario =
  let internet = Scenario.internet scenario in
  let domain = internet.Topology.Builder.domains.(victim) in
  let border = domain.Topology.Domain.borders.(0) in
  let link = border.Topology.Domain.uplink in
  let core = Topology.Link.other_end link border.Topology.Domain.router in
  let engine = Scenario.engine scenario in
  let tick_interval = 0.05 in
  let bytes_per_tick = int_of_float (10e6 *. tick_interval /. 8.0) in
  let rec tick () =
    if Netsim.Engine.now engine < warmup +. workload_window +. 2.0 then begin
      Topology.Link.account link ~src:core ~bytes:bytes_per_tick;
      ignore (Netsim.Engine.schedule engine ~delay:tick_interval tick)
    end
  in
  ignore (Netsim.Engine.schedule engine ~delay:0.0 tick);
  ignore
    (Netsim.Engine.schedule engine ~delay:warmup (fun () ->
         let inbound =
           Array.map
             (fun b ->
               Topology.Link.bytes_from b.Topology.Domain.uplink
                 (Topology.Link.other_end b.Topology.Domain.uplink
                    b.Topology.Domain.router))
             domain.Topology.Domain.borders
         in
         Hashtbl.replace snapshots (Hashtbl.hash scenario) inbound))

let spec_for cp ~borders ~seed =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random (params ~borders); seed }
  in
  { (Harness.default_spec config) with
    Harness.flows = 800; rate = 40.0; hotspots = Some [ (victim, 1.0) ];
    sources = Some [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ];
    data_packets = `Pareto 60.0; data_bytes = 1400; monitor = true;
    rebalance = true; arrival_delay = warmup; pre_run = Some background_load }

let victim_inbound r =
  let internet = Scenario.internet r.Harness.scenario in
  let domain = internet.Topology.Builder.domains.(victim) in
  let baseline =
    match Hashtbl.find_opt snapshots (Hashtbl.hash r.Harness.scenario) with
    | Some a -> a
    | None -> Array.map (fun _ -> 0) domain.Topology.Domain.borders
  in
  (* Bytes accumulated since the warm-up snapshot, normalised by the
     arrival window, which is identical across control planes. *)
  Array.mapi
    (fun i b ->
      let total =
        Topology.Link.bytes_from b.Topology.Domain.uplink
          (Topology.Link.other_end b.Topology.Domain.uplink
             b.Topology.Domain.router)
      in
      float_of_int (total - baseline.(i))
      *. 8.0
      /. (Topology.Link.capacity_bps b.Topology.Domain.uplink
         *. r.Harness.workload_seconds))
    domain.Topology.Domain.borders

let measure cp ~borders ~seed =
  let r = Harness.run (spec_for cp ~borders ~seed) in
  let utilisation = victim_inbound r in
  let max_util = Array.fold_left Float.max 0.0 utilisation in
  let jain = Netsim.Stats.jain_index utilisation in
  (r, max_util, jain)

let cps =
  [ ("pull-queue", Scenario.Cp_pull_queue 64); ("nerd-push", Scenario.Cp_nerd);
    ("pce", Scenario.Cp_pce Pce_control.default_options) ]

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "ingress chosen by"; "max uplink util"; "(sd)"; "jain index";
          "(sd)"; "te reroutes"; "drops" ]
  in
  List.iter
    (fun (label, cp) ->
      (* Mean and standard deviation of the balance metrics over three
         seeds. *)
      let max_stats = Netsim.Stats.Summary.create () in
      let jain_stats = Netsim.Stats.Summary.create () in
      let reroutes = ref 0 and drops = ref 0 in
      List.iter
        (fun seed ->
          let r, max_util, jain = measure cp ~borders:4 ~seed in
          Netsim.Stats.Summary.add max_stats max_util;
          Netsim.Stats.Summary.add jain_stats jain;
          drops := !drops + Harness.drops r;
          match Scenario.pce r.Harness.scenario with
          | Some pce -> reroutes := !reroutes + Pce_control.reroutes pce
          | None -> ())
        [ 11; 12; 13 ];
      Metrics.Table.add_row table
        [ label;
          (if label = "pce" then "victim's PCE (min-load)"
           else "senders (static hash)");
          Metrics.Table.cell_pct (Netsim.Stats.Summary.mean max_stats);
          Metrics.Table.cell_pct (Netsim.Stats.Summary.stddev max_stats);
          Metrics.Table.cell_float (Netsim.Stats.Summary.mean jain_stats);
          Metrics.Table.cell_float (Netsim.Stats.Summary.stddev jain_stats);
          Metrics.Table.cell_int !reroutes; Metrics.Table.cell_int !drops ])
    cps;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
