bench/exp_t6.ml: Array Core Harness List Mapsys Metrics Netsim Nettypes Pce_control Printf Scenario Topology
