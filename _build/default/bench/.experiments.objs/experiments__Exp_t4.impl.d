bench/exp_t4.ml: Array Core Float Harness Hashtbl List Metrics Netsim Pce_control Scenario Topology
