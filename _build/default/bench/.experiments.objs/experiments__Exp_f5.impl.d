bench/exp_f5.ml: Core Harness Lispdp List Metrics Netsim Pce_control Scenario Topology
