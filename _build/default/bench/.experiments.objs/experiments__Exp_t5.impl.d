bench/exp_t5.ml: Core Harness List Mapsys Metrics Scenario Stdlib Topology
