bench/exp_f9.ml: Core Harness Lispdp List Mapsys Metrics Pce_control Scenario Topology
