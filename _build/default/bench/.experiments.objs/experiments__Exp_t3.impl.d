bench/exp_t3.ml: Core Float Harness List Metrics Scenario Topology
