bench/exp_f7.ml: Array Core Harness List Metrics Netsim Nettypes Pce_control Printf Scenario Topology
