bench/exp_f6.ml: Core Harness Lispdp List Metrics Option Printf Scenario Stdlib Topology
