bench/exp_f2.ml: Core Harness List Metrics Netsim Printf Scenario Stdlib Topology
