bench/exp_v1.ml: Array Core List Metrics Nettypes Option Pce_control Printf Scenario Topology Workload
