bench/bench_micro.ml: Analyze Array Bechamel Benchmark Core Hashtbl Instance Lispdp List Measure Metrics Netsim Nettypes Printf Staged Test Time Toolkit Topology Wire
