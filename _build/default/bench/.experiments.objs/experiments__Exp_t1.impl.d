bench/exp_t1.ml: Core Harness List Metrics Scenario Stdlib Topology
