bench/exp_t2.ml: Array Core Harness List Metrics Netsim Nettypes Option Printf Scenario Topology Workload
