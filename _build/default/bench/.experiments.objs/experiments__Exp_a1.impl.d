bench/exp_a1.ml: Core Harness List Mapsys Metrics Option Pce_control Scenario Topology
