bench/exp_a3.ml: Core Exp_t4 Harness Irc List Metrics Pce_control Scenario
