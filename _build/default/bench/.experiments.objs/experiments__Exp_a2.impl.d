bench/exp_a2.ml: Core Harness List Mapsys Metrics Option Pce_control Scenario Stdlib Topology
