bench/exp_f1.ml: Array Core Format Lispdp Mapsys Metrics Netsim Nettypes Option Pce_control Scenario Topology Workload
