bench/exp_f3.ml: Core Harness List Mapsys Metrics Pce_control Scenario Topology
