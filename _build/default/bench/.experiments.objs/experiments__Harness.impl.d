bench/harness.ml: Array Core Lispdp List Netsim Pce_control Scenario Stdlib Topology Workload
