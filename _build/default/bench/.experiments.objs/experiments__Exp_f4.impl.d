bench/exp_f4.ml: Core Exp_t4 Float List Metrics Pce_control Printf Scenario
