bench/exp_f8.ml: Core Harness List Metrics Pce_control Scenario Topology
