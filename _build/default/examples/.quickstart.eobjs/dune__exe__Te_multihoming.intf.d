examples/te_multihoming.mli:
