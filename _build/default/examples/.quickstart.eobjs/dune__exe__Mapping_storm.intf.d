examples/mapping_storm.mli:
