examples/mapping_storm.ml: Array Core Float Format Lispdp Metrics Netsim Pce_control Scenario Stdlib String Topology Workload
