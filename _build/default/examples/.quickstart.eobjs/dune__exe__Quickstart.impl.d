examples/quickstart.ml: Array Core Format Lispdp Mapsys Netsim Nettypes Option Scenario Topology Workload
