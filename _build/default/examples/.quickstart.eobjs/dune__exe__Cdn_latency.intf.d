examples/cdn_latency.mli:
