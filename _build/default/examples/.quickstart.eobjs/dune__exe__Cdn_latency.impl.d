examples/cdn_latency.ml: Core Format Lispdp List Metrics Netsim Pce_control Scenario Topology Workload
