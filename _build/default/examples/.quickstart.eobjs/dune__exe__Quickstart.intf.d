examples/quickstart.mli:
