examples/te_multihoming.ml: Array Core Float Format Netsim Pce_control Scenario Stdlib String Topology Workload
