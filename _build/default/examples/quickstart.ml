(* Quickstart: the paper's Figure 1, step by step.

   Builds the two-domain scenario (AS_S multihomed to providers A and B,
   AS_D to X and Y), runs one DNS-then-TCP connection under the
   PCE-based control plane, and prints the full event trace: the client
   query (step 1), the iterative resolution (steps 2-5), PCE_D's
   interception and encapsulation of the final answer (step 6), PCE_S's
   decapsulation and ITR configuration (steps 7a/7b), the answer
   reaching the client (step 8), and finally the TCP handshake flowing
   through tunnels that were ready before the first SYN left the host.

   Run with:  dune exec examples/quickstart.exe *)

open Core

let () =
  let scenario = Scenario.build Scenario.default_config in
  Netsim.Trace.set_enabled (Scenario.trace scenario) true;

  let internet = Scenario.internet scenario in
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  Format.printf "Topology (the paper's Figure 1):@.";
  Array.iter
    (fun d ->
      Format.printf "  %a@." Topology.Domain.pp d;
      Array.iter
        (fun b ->
          let p = internet.Topology.Builder.providers.(b.Topology.Domain.provider) in
          Format.printf "    border %a via provider %s (%a)@."
            Nettypes.Ipv4.pp_addr b.Topology.Domain.rloc
            p.Topology.Builder.provider_name Nettypes.Ipv4.pp_prefix
            p.Topology.Builder.prefix)
        d.Topology.Domain.borders)
    internet.Topology.Builder.domains;
  Format.printf "@.";

  (* The client behaviour of the paper: resolve h0.as1.net., then
     connect. *)
  let flow =
    Nettypes.Flow.create
      ~src:(Topology.Domain.host_eid as_s 0)
      ~dst:(Topology.Domain.host_eid as_d 0)
      ~src_port:40000 ()
  in
  Format.printf "Opening %a (resolves %s first)@.@." Nettypes.Flow.pp flow
    (Topology.Domain.host_name as_d 0);
  let connection = Scenario.open_connection scenario ~flow ~data_packets:3 () in
  Scenario.run scenario;

  Format.printf "Event trace:@.%a@." Netsim.Trace.pp (Scenario.trace scenario);

  let counters = Lispdp.Dataplane.counters (Scenario.dataplane scenario) in
  let dns = Option.value ~default:nan connection.Scenario.dns_time in
  let handshake =
    Option.value ~default:nan
      (Option.bind connection.Scenario.tcp Workload.Tcp.handshake_time)
  in
  Format.printf "Results:@.";
  Format.printf "  T_DNS (cold)         : %.1f ms@." (dns *. 1e3);
  Format.printf "  TCP handshake        : %.1f ms@." (handshake *. 1e3);
  Format.printf "  total setup          : %.1f ms@."
    ((Option.value ~default:nan (Scenario.total_setup_time connection)) *. 1e3);
  Format.printf "  packets dropped      : %d  <- claim (i): none@."
    counters.Lispdp.Dataplane.dropped;
  Format.printf "  mapping overhead     : %.2f ms beyond T_DNS  <- claim (ii)@."
    (((Option.value ~default:nan (Scenario.total_setup_time connection))
     -. dns -. handshake)
    *. 1e3);
  Format.printf
    "  control messages     : %d (1 encapsulated answer + ITR pushes)@."
    (Mapsys.Cp_stats.message_total (Scenario.cp_stats scenario))
