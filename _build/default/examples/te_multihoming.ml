(* Traffic engineering for a multihomed site — the paper's claim (iii).

   A content domain with four provider uplinks receives heavy-tailed
   transfers from eleven client domains while one of its uplinks also
   carries 10 Mbit/s of unrelated background traffic.  The example runs
   the same workload twice:

   - under NERD-style static mappings, the *senders* pick the victim's
     ingress locator by hashing over advertised weights, blind to the
     background load;
   - under the PCE control plane, the victim's own IRC engine measures
     each uplink and steers every (EID, peer) pair to the least-loaded
     one — the "dynamic management of the mappings".

   Run with:  dune exec examples/te_multihoming.exe *)

open Core

let victim = 0
let warmup = 3.0
let window = 20.0

let params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 12; provider_count = 6;
    borders_per_domain = 4; hosts_per_domain = 6;
    access_capacity_bps = 20e6 }

(* 10 Mbit/s of unrelated inbound traffic on uplink 0 of the victim. *)
let background scenario =
  let internet = Scenario.internet scenario in
  let domain = internet.Topology.Builder.domains.(victim) in
  let border = domain.Topology.Domain.borders.(0) in
  let link = border.Topology.Domain.uplink in
  let core = Topology.Link.other_end link border.Topology.Domain.router in
  let engine = Scenario.engine scenario in
  let rec tick () =
    if Netsim.Engine.now engine < warmup +. window then begin
      Topology.Link.account link ~src:core ~bytes:62_500;
      ignore (Netsim.Engine.schedule engine ~delay:0.05 tick)
    end
  in
  ignore (Netsim.Engine.schedule engine ~delay:0.0 tick)

let run_workload cp =
  let scenario =
    Scenario.build
      { Scenario.default_config with Scenario.cp; topology = `Random params;
        seed = 11 }
  in
  background scenario;
  (match Scenario.pce scenario with
  | Some pce ->
      Pce_control.run_monitoring pce ~interval:1.0 ~until:(warmup +. window)
        ~rebalance:true
  | None -> ());
  let traffic =
    Workload.Traffic.create
      ~rng:(Netsim.Rng.split (Scenario.rng scenario))
      ~internet:(Scenario.internet scenario)
      ~hotspots:[ (victim, 1.0) ] ()
  in
  let size_rng = Netsim.Rng.split (Scenario.rng scenario) in
  let src_rng = Netsim.Rng.split (Scenario.rng scenario) in
  (* Snapshot inbound byte counters at the end of the warm-up. *)
  let domain = (Scenario.internet scenario).Topology.Builder.domains.(victim) in
  let inbound_bytes () =
    Array.map
      (fun b ->
        Topology.Link.bytes_from b.Topology.Domain.uplink
          (Topology.Link.other_end b.Topology.Domain.uplink
             b.Topology.Domain.router))
      domain.Topology.Domain.borders
  in
  let baseline = ref [||] in
  ignore
    (Netsim.Engine.schedule (Scenario.engine scenario) ~delay:warmup (fun () ->
         baseline := inbound_bytes ()));
  ignore
    (Netsim.Engine.schedule (Scenario.engine scenario) ~delay:warmup (fun () ->
         ignore
           (Workload.Arrivals.poisson ~engine:(Scenario.engine scenario)
              ~rng:(Netsim.Rng.split (Scenario.rng scenario))
              ~rate:40.0 ~duration:window
              ~f:(fun _ ->
                let src_domain = 1 + Netsim.Rng.int src_rng 11 in
                let flow = Workload.Traffic.random_flow traffic ~src_domain () in
                let data_packets =
                  Stdlib.max 1
                    (int_of_float
                       (Netsim.Rng.pareto size_rng ~shape:1.3 ~scale:14.0))
                in
                ignore
                  (Scenario.open_connection scenario ~flow ~data_packets
                     ~data_bytes:1400 ())))));
  Scenario.run scenario;
  let final = inbound_bytes () in
  let utilisation =
    Array.mapi
      (fun i b ->
        float_of_int (final.(i) - !baseline.(i))
        *. 8.0
        /. (Topology.Link.capacity_bps b.Topology.Domain.uplink *. window))
      domain.Topology.Domain.borders
  in
  (scenario, utilisation)

let describe label utilisation =
  Format.printf "%s:@." label;
  Array.iteri
    (fun i u ->
      let bar = String.make (int_of_float (u *. 40.0)) '#' in
      Format.printf "  uplink %d %s %5.1f%% %s@." i
        (if i = 0 then "(bg)" else "    ")
        (u *. 100.0) bar)
    utilisation;
  Format.printf "  max %.1f%%   Jain %.3f@.@."
    (Array.fold_left Float.max 0.0 utilisation *. 100.0)
    (Netsim.Stats.jain_index utilisation)

let () =
  Format.printf
    "Inbound balance of a 4-homed content domain (uplink 0 carries@.";
  Format.printf "10 Mbit/s of background traffic the mappings cannot see).@.@.";
  let _, static_util = run_workload Scenario.Cp_nerd in
  describe "NERD (static weights, sender-chosen ingress)" static_util;
  let scenario, pce_util =
    run_workload (Scenario.Cp_pce Pce_control.default_options)
  in
  describe "PCE (victim-chosen ingress, min-load IRC)" pce_util;
  match Scenario.pce scenario with
  | Some pce ->
      Format.printf "PCE made %d TE re-assignments during the run.@."
        (Pce_control.reroutes pce)
  | None -> ()
