(* A mapping storm: flash crowd toward fresh destinations plus an RLOC
   failure in the middle of it.

   At t = 0 a burst of clients connects to destinations nobody has
   cached (a flash crowd, e.g. a news event); at t = 6 s one of the
   content domain's uplinks fails.  The example compares how the base
   LISP control plane and the PCE control plane ride out both events,
   printing a per-second timeline of delivered and dropped packets.

   Run with:  dune exec examples/mapping_storm.exe *)

open Core

let content_domain = 0
let fail_at = 6.13
let horizon = 18.0

let params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 10; provider_count = 5;
    borders_per_domain = 3; hosts_per_domain = 8 }

let run cp =
  let scenario =
    Scenario.build
      { Scenario.default_config with Scenario.cp; topology = `Random params;
        seed = 77; mapping_ttl = 30.0; nerd_propagation = 5.0 }
  in
  let drops = Metrics.Timeseries.create ~bucket:1.0 ~horizon in
  let delivered = Metrics.Timeseries.create ~bucket:1.0 ~horizon in
  Lispdp.Dataplane.set_drop_observer (Scenario.dataplane scenario)
    (Some (fun ~cause:_ ~now -> Metrics.Timeseries.add drops ~at:now ()));
  (* Sample delivery counters once per second. *)
  let last_delivered = ref 0 in
  let rec sample i =
    if i < Metrics.Timeseries.bucket_count delivered then
      ignore
        (Netsim.Engine.schedule (Scenario.engine scenario)
           ~delay:1.0 (fun () ->
             let d =
               (Lispdp.Dataplane.counters (Scenario.dataplane scenario))
                 .Lispdp.Dataplane.delivered
             in
             Metrics.Timeseries.add delivered
               ~at:(Metrics.Timeseries.bucket_start delivered i)
               ~value:(float_of_int (d - !last_delivered))
               ();
             last_delivered := d;
             sample (i + 1)))
  in
  sample 0;
  (match Scenario.pce scenario with
  | Some pce ->
      Pce_control.run_monitoring pce ~interval:0.5 ~until:horizon
        ~rebalance:false
  | None -> ());
  ignore
    (Netsim.Engine.schedule (Scenario.engine scenario) ~delay:fail_at
       (fun () -> Scenario.fail_uplink scenario ~domain:content_domain ~border:0));
  let traffic =
    Workload.Traffic.create
      ~rng:(Netsim.Rng.split (Scenario.rng scenario))
      ~internet:(Scenario.internet scenario)
      ~hotspots:[ (content_domain, 1.0) ] ()
  in
  (* The storm: 300 long transfers arriving over ten seconds, so plenty
     are still active when the uplink dies. *)
  ignore
    (Workload.Arrivals.poisson ~engine:(Scenario.engine scenario)
       ~rng:(Netsim.Rng.split (Scenario.rng scenario))
       ~rate:30.0 ~duration:10.0
       ~f:(fun _ ->
         let src_domain =
           1 + Netsim.Rng.int (Scenario.rng scenario) (params.Topology.Builder.domain_count - 1)
         in
         let flow = Workload.Traffic.random_flow traffic ~src_domain () in
         ignore
           (Scenario.open_connection scenario ~flow ~data_packets:2500
              ~data_bytes:1400 ())));
  Scenario.run ~until:horizon scenario;
  (scenario, delivered, drops)

let timeline label delivered drops =
  Format.printf "%s@." label;
  Format.printf "  t(s)   delivered  dropped@.";
  Array.iteri
    (fun i d ->
      let dr = int_of_float (Metrics.Timeseries.value drops i) in
      Format.printf "  %2d%s %9d %8d %s@." i
        (if float_of_int i <= fail_at && fail_at < float_of_int (i + 1) then "*"
         else " ")
        (int_of_float d) dr
        (String.make (Stdlib.min 40 (dr / 25)) '!'))
    (Metrics.Timeseries.values delivered);
  (match Metrics.Timeseries.last_active_after drops (Float.floor fail_at) with
  | Some t -> Format.printf "  last drop bucket after the failure: t=%.0fs@." t
  | None -> Format.printf "  no drops after the failure@.");
  Format.printf "  (* = RLOC failure)@.@."

let () =
  Format.printf
    "Flash crowd toward a cold content domain, with an uplink failure at t=%.1fs@.@."
    fail_at;
  let _, pull_delivered, pull_drops = run Scenario.Cp_pull_drop in
  timeline "pull-drop (base LISP control plane):" pull_delivered pull_drops;
  let scenario, pce_delivered, pce_drops =
    run (Scenario.Cp_pce Pce_control.default_options)
  in
  timeline "pce (this paper):" pce_delivered pce_drops;
  (match Scenario.pce scenario with
  | Some p ->
      Format.printf "PCE handled %d uplink failover(s).@." (Pce_control.failovers p)
  | None -> ());
  Format.printf
    "@.The pull control plane drops the storm's first packets (cold caches)@.";
  Format.printf
    "and black-holes flows pinned to the dead locator until their cached@.";
  Format.printf
    "mappings expire; the PCE loses nothing at startup and repairs the@.";
  Format.printf "failure within its monitoring interval.@."
