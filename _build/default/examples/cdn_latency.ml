(* Content-delivery latency under each control plane.

   A popular content domain serves many client domains; each client
   performs the full DNS-then-TCP dance and we record the time until the
   first payload byte arrives (time-to-first-byte).  The map-cache
   behaviour differs sharply across control planes the moment a client
   domain's caches are cold — exactly the situation a CDN's long-tail
   audience creates continuously.

   Run with:  dune exec examples/cdn_latency.exe *)

open Core

let params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 20; provider_count = 6;
    borders_per_domain = 2; hosts_per_domain = 4 }

let content_domain = 0

let run cp =
  let scenario =
    Scenario.build
      { Scenario.default_config with Scenario.cp; topology = `Random params;
        seed = 31 }
  in
  let traffic =
    Workload.Traffic.create
      ~rng:(Netsim.Rng.split (Scenario.rng scenario))
      ~internet:(Scenario.internet scenario)
      ~hotspots:[ (content_domain, 1.0) ] ()
  in
  let ttfb = Netsim.Stats.Samples.create () in
  ignore
    (Workload.Arrivals.poisson ~engine:(Scenario.engine scenario)
       ~rng:(Netsim.Rng.split (Scenario.rng scenario))
       ~rate:30.0 ~duration:20.0
       ~f:(fun _ ->
         let src_domain =
           1 + Netsim.Rng.int (Scenario.rng scenario) (params.Topology.Builder.domain_count - 1)
         in
         let flow = Workload.Traffic.random_flow traffic ~src_domain () in
         let opened_at = Netsim.Engine.now (Scenario.engine scenario) in
         ignore
           (Scenario.open_connection scenario ~flow ~data_packets:4
              ~on_complete:(fun _ ->
                Netsim.Stats.Samples.add ttfb
                  (Netsim.Engine.now (Scenario.engine scenario) -. opened_at))
              ())));
  Scenario.run scenario;
  (scenario, ttfb)

let () =
  Format.printf
    "Time to complete a 4-segment fetch from a popular content domain@.";
  Format.printf "(DNS + handshake + transfer), 600 requests from 19 client domains:@.@.";
  let table =
    Metrics.Table.create ~title:"time-to-last-byte (ms)"
      ~columns:[ "control plane"; "p50"; "p90"; "p99"; "completed"; "drops" ]
  in
  List.iter
    (fun (label, cp) ->
      let scenario, ttfb = run cp in
      let pct p =
        if Netsim.Stats.Samples.count ttfb = 0 then "-"
        else Metrics.Table.cell_ms (Netsim.Stats.Samples.percentile ttfb p)
      in
      Metrics.Table.add_row table
        [ label; pct 50.0; pct 90.0; pct 99.0;
          Metrics.Table.cell_int (Netsim.Stats.Samples.count ttfb);
          Metrics.Table.cell_int
            (Lispdp.Dataplane.counters (Scenario.dataplane scenario))
              .Lispdp.Dataplane.dropped ])
    [ ("pull-drop (base LISP+ALT)", Scenario.Cp_pull_drop);
      ("pull-queue", Scenario.Cp_pull_queue 32);
      ("pull-detour", Scenario.Cp_pull_detour);
      ("cons", Scenario.Cp_cons);
      ("nerd-push", Scenario.Cp_nerd);
      ("pce (this paper)", Scenario.Cp_pce Pce_control.default_options) ];
  Metrics.Table.print table;
  Format.printf
    "The pull-based control planes push the p90/p99 out by a full TCP@.";
  Format.printf
    "retransmission timeout whenever a client domain's cache is cold;@.";
  Format.printf "the PCE matches the always-mapped NERD ideal without the@.";
  Format.printf "full-database state.@."
