(* Tests for the topology substrate: graph shortest paths, link
   accounting, domain construction and the Figure-1 / random internet
   builders. *)

open Topology

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let diamond () =
  (* a - b - d and a - c - d with a shortcut a - d. *)
  let g = Graph.create () in
  let a = Graph.add_node g ~kind:Node.Host ~label:"a" in
  let b = Graph.add_node g ~kind:Node.Hub ~label:"b" in
  let c = Graph.add_node g ~kind:Node.Hub ~label:"c" in
  let d = Graph.add_node g ~kind:Node.Host ~label:"d" in
  ignore (Graph.connect g a b ~latency:1.0 ());
  ignore (Graph.connect g b d ~latency:1.0 ());
  ignore (Graph.connect g a c ~latency:0.5 ());
  ignore (Graph.connect g c d ~latency:0.4 ());
  ignore (Graph.connect g a d ~latency:5.0 ());
  (g, a, b, c, d)

let test_graph_shortest_path () =
  let g, a, _, c, d = diamond () in
  check_float "a->d via c" 0.9 (Graph.latency_between g a d);
  Alcotest.(check (list int)) "path nodes" [ a; c; d ] (Graph.path_between g a d);
  check_float "self" 0.0 (Graph.latency_between g a a)

let test_graph_symmetry () =
  let g, a, b, _, d = diamond () in
  check_float "symmetric" (Graph.latency_between g a d) (Graph.latency_between g d a);
  check_float "a->b direct" 1.0 (Graph.latency_between g a b)

let test_graph_disconnected () =
  let g = Graph.create () in
  let a = Graph.add_node g ~kind:Node.Host ~label:"a" in
  let b = Graph.add_node g ~kind:Node.Host ~label:"b" in
  Alcotest.check_raises "disconnected" Not_found (fun () ->
      ignore (Graph.latency_between g a b))

let test_graph_duplicate_link_rejected () =
  let g = Graph.create () in
  let a = Graph.add_node g ~kind:Node.Host ~label:"a" in
  let b = Graph.add_node g ~kind:Node.Host ~label:"b" in
  ignore (Graph.connect g a b ~latency:1.0 ());
  (match Graph.connect g b a ~latency:2.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate link accepted");
  match Graph.connect g a a ~latency:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self loop accepted"

let test_graph_cache_invalidation () =
  let g = Graph.create () in
  let a = Graph.add_node g ~kind:Node.Host ~label:"a" in
  let b = Graph.add_node g ~kind:Node.Host ~label:"b" in
  let c = Graph.add_node g ~kind:Node.Host ~label:"c" in
  ignore (Graph.connect g a b ~latency:10.0 ());
  ignore (Graph.connect g b c ~latency:10.0 ());
  check_float "long way" 20.0 (Graph.latency_between g a c);
  ignore (Graph.connect g a c ~latency:1.0 ());
  check_float "shortcut after new link" 1.0 (Graph.latency_between g a c)

let test_graph_account_path () =
  let g, a, _, c, d = diamond () in
  Graph.account_path g ~src:a ~dst:d ~bytes:1000;
  let link_ac = Option.get (Graph.link_between g a c) in
  let link_cd = Option.get (Graph.link_between g c d) in
  let link_ad = Option.get (Graph.link_between g a d) in
  Alcotest.(check int) "a->c charged" 1000 (Link.bytes_from link_ac a);
  Alcotest.(check int) "c->d charged" 1000 (Link.bytes_from link_cd c);
  Alcotest.(check int) "reverse direction empty" 0 (Link.bytes_from link_ac c);
  Alcotest.(check int) "direct link unused" 0 (Link.bytes_from link_ad a)

(* ------------------------------------------------------------------ *)
(* Link                                                                *)
(* ------------------------------------------------------------------ *)

let test_link_accounting () =
  let l = Link.create ~a:0 ~b:1 ~latency:0.01 ~capacity_bps:1e6 () in
  Link.account l ~src:0 ~bytes:500;
  Link.account l ~src:0 ~bytes:500;
  Link.account l ~src:1 ~bytes:100;
  Alcotest.(check int) "0->1" 1000 (Link.bytes_from l 0);
  Alcotest.(check int) "1->0" 100 (Link.bytes_from l 1);
  (* 1000 bytes = 8000 bits over 1 s at 1 Mbit/s = 0.008. *)
  check_float "utilisation" 0.008 (Link.utilisation_from l 0 ~duration:1.0);
  Link.reset_counters l;
  Alcotest.(check int) "reset" 0 (Link.bytes_from l 0)

let test_link_other_end () =
  let l = Link.create ~a:3 ~b:9 ~latency:0.01 () in
  Alcotest.(check int) "other of a" 9 (Link.other_end l 3);
  Alcotest.(check int) "other of b" 3 (Link.other_end l 9);
  Alcotest.check_raises "stranger" (Invalid_argument "Link.other_end: node is not an endpoint")
    (fun () -> ignore (Link.other_end l 4))

(* ------------------------------------------------------------------ *)
(* Figure 1 internet                                                   *)
(* ------------------------------------------------------------------ *)

let test_figure1_shape () =
  let net = Builder.figure1 () in
  Alcotest.(check int) "two domains" 2 (Array.length net.Builder.domains);
  Alcotest.(check int) "four providers" 4 (Array.length net.Builder.providers);
  Array.iter
    (fun d ->
      Alcotest.(check int) "two borders" 2 (Array.length d.Domain.borders);
      Alcotest.(check int) "two hosts" 2 (Array.length d.Domain.hosts))
    net.Builder.domains;
  let as_s = net.Builder.domains.(0) and as_d = net.Builder.domains.(1) in
  (* AS_S homes to providers A (10/8) and B (11/8); AS_D to X and Y. *)
  let provider_prefix_of b =
    Nettypes.Ipv4.prefix_to_string
      net.Builder.providers.(b.Domain.provider).Builder.prefix
  in
  Alcotest.(check (list string)) "AS_S providers" [ "10.0.0.0/8"; "11.0.0.0/8" ]
    (List.map provider_prefix_of (Array.to_list as_s.Domain.borders));
  Alcotest.(check (list string)) "AS_D providers" [ "12.0.0.0/8"; "13.0.0.0/8" ]
    (List.map provider_prefix_of (Array.to_list as_d.Domain.borders))

let test_figure1_rlocs_in_provider_space () =
  let net = Builder.figure1 () in
  Array.iter
    (fun d ->
      Array.iter
        (fun b ->
          let p = net.Builder.providers.(b.Domain.provider) in
          Alcotest.(check bool) "rloc inside provider prefix" true
            (Nettypes.Ipv4.prefix_mem p.Builder.prefix b.Domain.rloc))
        d.Domain.borders)
    net.Builder.domains

let test_figure1_connectivity () =
  let net = Builder.figure1 () in
  let as_s = net.Builder.domains.(0) and as_d = net.Builder.domains.(1) in
  let h_s = as_s.Domain.hosts.(0) and h_d = as_d.Domain.hosts.(0) in
  let owd = Builder.latency net h_s h_d in
  Alcotest.(check bool) "host to host reachable and plausible" true
    (owd > 0.01 && owd < 0.2);
  (* DNS of S reaches the root. *)
  let dns_latency = Builder.latency net as_s.Domain.dns net.Builder.root_dns in
  Alcotest.(check bool) "dns to root" true (dns_latency > 0.0 && dns_latency < 0.2)

let test_figure1_eid_lookup () =
  let net = Builder.figure1 () in
  let as_s = net.Builder.domains.(0) in
  let eid = Domain.host_eid as_s 1 in
  (match Builder.domain_of_eid net eid with
  | Some d -> Alcotest.(check int) "domain found" 0 d.Domain.id
  | None -> Alcotest.fail "eid not found");
  Alcotest.(check (option int)) "host index roundtrip" (Some 1)
    (Domain.host_of_eid as_s eid);
  Alcotest.(check bool) "foreign eid rejected" true
    (Domain.host_of_eid as_s (Nettypes.Ipv4.addr_of_string "100.0.1.1") = None)

let test_figure1_border_of_rloc () =
  let net = Builder.figure1 () in
  let as_d = net.Builder.domains.(1) in
  let b0 = as_d.Domain.borders.(0) in
  match Builder.border_of_rloc net b0.Domain.rloc with
  | Some (d, b) ->
      Alcotest.(check int) "domain" 1 d.Domain.id;
      Alcotest.(check int) "router" b0.Domain.router b.Domain.router
  | None -> Alcotest.fail "rloc not resolved"

let test_domain_names () =
  let net = Builder.figure1 () in
  let as_s = net.Builder.domains.(0) in
  Alcotest.(check string) "fqdn" "as0.net." (Domain.fqdn as_s);
  Alcotest.(check string) "host name" "h1.as0.net." (Domain.host_name as_s 1);
  (match Builder.domain_of_name net "as1" with
  | Some d -> Alcotest.(check int) "by label" 1 d.Domain.id
  | None -> Alcotest.fail "label lookup failed");
  match Builder.domain_of_name net "as1.net." with
  | Some d -> Alcotest.(check int) "by fqdn" 1 d.Domain.id
  | None -> Alcotest.fail "fqdn lookup failed"

let test_advertised_mapping () =
  let net = Builder.figure1 () in
  let as_d = net.Builder.domains.(1) in
  let m = Domain.advertised_mapping as_d ~ttl:60.0 in
  Alcotest.(check int) "one rloc per border" 2
    (List.length m.Nettypes.Mapping.rlocs);
  Alcotest.(check bool) "covers its hosts" true
    (Nettypes.Mapping.covers m (Domain.host_eid as_d 0))

(* ------------------------------------------------------------------ *)
(* Random internet                                                     *)
(* ------------------------------------------------------------------ *)

let test_generate_deterministic () =
  let build () =
    Builder.generate (Netsim.Rng.create 11)
      { Builder.default_params with domain_count = 6; provider_count = 5 }
  in
  let n1 = build () and n2 = build () in
  let rlocs net =
    Array.to_list net.Builder.domains
    |> List.concat_map (fun d ->
           List.map Nettypes.Ipv4.addr_to_string (Domain.rlocs d))
  in
  Alcotest.(check (list string)) "same seed, same internet" (rlocs n1) (rlocs n2)

let test_generate_all_connected () =
  let net =
    Builder.generate (Netsim.Rng.create 3)
      { Builder.default_params with domain_count = 8; provider_count = 4 }
  in
  let d0 = net.Builder.domains.(0) in
  Array.iter
    (fun d ->
      let l = Builder.latency net d0.Domain.hosts.(0) d.Domain.hosts.(0) in
      Alcotest.(check bool) "reachable" true (l >= 0.0))
    net.Builder.domains

let test_generate_distinct_providers_per_domain () =
  let net =
    Builder.generate (Netsim.Rng.create 5)
      { Builder.default_params with domain_count = 10; provider_count = 6;
        borders_per_domain = 3 }
  in
  Array.iter
    (fun d ->
      let providers =
        Array.to_list (Array.map (fun b -> b.Domain.provider) d.Domain.borders)
      in
      Alcotest.(check int) "three distinct providers" 3
        (List.length (List.sort_uniq compare providers)))
    net.Builder.domains

let test_generate_unique_rlocs () =
  let net =
    Builder.generate (Netsim.Rng.create 7)
      { Builder.default_params with domain_count = 20; provider_count = 4;
        borders_per_domain = 2 }
  in
  let all =
    Array.to_list net.Builder.domains
    |> List.concat_map (fun d -> List.map Nettypes.Ipv4.addr_to_int (Domain.rlocs d))
  in
  Alcotest.(check int) "no duplicate rlocs" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_generate_unique_eid_prefixes () =
  let net =
    Builder.generate (Netsim.Rng.create 7)
      { Builder.default_params with domain_count = 30 }
  in
  let prefixes =
    Array.to_list net.Builder.domains
    |> List.map (fun d -> Nettypes.Ipv4.prefix_to_string d.Domain.eid_prefix)
  in
  Alcotest.(check int) "distinct eid prefixes" (List.length prefixes)
    (List.length (List.sort_uniq compare prefixes))

let test_generate_two_tier_core () =
  let params =
    { Builder.default_params with domain_count = 8; provider_count = 7;
      core_shape = Builder.Two_tier 3 }
  in
  let net = Builder.generate (Netsim.Rng.create 6) params in
  let graph = net.Builder.graph in
  (* Tier-1 cores form a triangle; tier-2 cores have exactly two core
     neighbours, both tier-1. *)
  let core_neighbours i =
    List.filter
      (fun (n, _) ->
        (Graph.node graph n).Node.kind = Node.Provider_core)
      (Graph.neighbours graph net.Builder.providers.(i).Builder.core)
  in
  (* Tier-1 cores peer with both other tier-1s (plus their tier-2
     children). *)
  for i = 0 to 2 do
    let neighbours = List.map fst (core_neighbours i) in
    List.iter
      (fun j ->
        if j <> i then
          Alcotest.(check bool) "tier-1 mesh edge present" true
            (List.mem net.Builder.providers.(j).Builder.core neighbours))
      [ 0; 1; 2 ]
  done;
  for i = 3 to 6 do
    let neighbours = core_neighbours i in
    Alcotest.(check int) "tier-2 dual-homed" 2 (List.length neighbours);
    List.iter
      (fun (n, _) ->
        let tier1 =
          List.exists
            (fun j -> net.Builder.providers.(j).Builder.core = n)
            [ 0; 1; 2 ]
        in
        Alcotest.(check bool) "parents are tier-1" true tier1)
      neighbours
  done;
  (* Everything still reachable. *)
  let d0 = net.Builder.domains.(0) in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "connected" true
        (Builder.latency net d0.Domain.hosts.(0) d.Domain.hosts.(0) < infinity))
    net.Builder.domains

let test_generate_two_tier_validation () =
  List.iter
    (fun shape ->
      let params =
        { Builder.default_params with provider_count = 5; core_shape = shape }
      in
      match Builder.generate (Netsim.Rng.create 1) params with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad tier-1 size accepted")
    [ Builder.Two_tier 0; Builder.Two_tier 6; Builder.Two_tier 1 ]

let test_generate_bad_params_rejected () =
  List.iter
    (fun params ->
      match Builder.generate (Netsim.Rng.create 1) params with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad params accepted")
    [ { Builder.default_params with domain_count = 0 };
      { Builder.default_params with provider_count = 0 };
      { Builder.default_params with provider_count = 101 };
      { Builder.default_params with hosts_per_domain = 0 };
      { Builder.default_params with hosts_per_domain = 255 } ]

let prop_generated_rloc_resolves =
  QCheck.Test.make ~name:"every generated rloc resolves to its border" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let net =
        Builder.generate (Netsim.Rng.create seed)
          { Builder.default_params with domain_count = 5; provider_count = 3 }
      in
      Array.for_all
        (fun d ->
          Array.for_all
            (fun b ->
              match Builder.border_of_rloc net b.Domain.rloc with
              | Some (d', b') -> d'.Domain.id = d.Domain.id && b'.Domain.router = b.Domain.router
              | None -> false)
            d.Domain.borders)
        net.Builder.domains)

let () =
  Alcotest.run "topology"
    [
      ( "graph",
        [
          Alcotest.test_case "shortest path" `Quick test_graph_shortest_path;
          Alcotest.test_case "symmetry" `Quick test_graph_symmetry;
          Alcotest.test_case "disconnected" `Quick test_graph_disconnected;
          Alcotest.test_case "duplicate rejected" `Quick test_graph_duplicate_link_rejected;
          Alcotest.test_case "cache invalidation" `Quick test_graph_cache_invalidation;
          Alcotest.test_case "account path" `Quick test_graph_account_path;
        ] );
      ( "link",
        [
          Alcotest.test_case "accounting" `Quick test_link_accounting;
          Alcotest.test_case "other end" `Quick test_link_other_end;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "shape" `Quick test_figure1_shape;
          Alcotest.test_case "rloc spaces" `Quick test_figure1_rlocs_in_provider_space;
          Alcotest.test_case "connectivity" `Quick test_figure1_connectivity;
          Alcotest.test_case "eid lookup" `Quick test_figure1_eid_lookup;
          Alcotest.test_case "border of rloc" `Quick test_figure1_border_of_rloc;
          Alcotest.test_case "names" `Quick test_domain_names;
          Alcotest.test_case "advertised mapping" `Quick test_advertised_mapping;
        ] );
      ( "generate",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "connected" `Quick test_generate_all_connected;
          Alcotest.test_case "distinct providers" `Quick test_generate_distinct_providers_per_domain;
          Alcotest.test_case "unique rlocs" `Quick test_generate_unique_rlocs;
          Alcotest.test_case "unique eid prefixes" `Quick test_generate_unique_eid_prefixes;
          Alcotest.test_case "two-tier core" `Quick test_generate_two_tier_core;
          Alcotest.test_case "two-tier validation" `Quick test_generate_two_tier_validation;
          Alcotest.test_case "bad params" `Quick test_generate_bad_params_rejected;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_generated_rloc_resolves ] );
    ]
