(* Tests for the wire codecs: writer/reader primitives, round-trips for
   every message type (unit + property), size accounting, and decoding
   of malformed inputs. *)

open Nettypes
open Wire

let addr = Ipv4.addr_of_string

(* ------------------------------------------------------------------ *)
(* Buf                                                                 *)
(* ------------------------------------------------------------------ *)

let test_writer_reader_roundtrip () =
  let w = Buf.Writer.create ~capacity:1 () in
  Buf.Writer.u8 w 0xAB;
  Buf.Writer.u16 w 0xCDEF;
  Buf.Writer.u32 w 0xDEADBEEF;
  Buf.Writer.addr w (addr "10.1.2.3");
  Buf.Writer.string w "hello";
  let r = Buf.Reader.of_bytes (Buf.Writer.contents w) in
  Alcotest.(check int) "u8" 0xAB (Buf.Reader.u8 r);
  Alcotest.(check int) "u16" 0xCDEF (Buf.Reader.u16 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Buf.Reader.u32 r);
  Alcotest.(check string) "addr" "10.1.2.3"
    (Ipv4.addr_to_string (Buf.Reader.addr r));
  Alcotest.(check string) "string" "hello" (Buf.Reader.string r);
  Alcotest.(check bool) "drained" true (Buf.Reader.at_end r)

let test_writer_bounds () =
  let w = Buf.Writer.create () in
  List.iter
    (fun f -> match f () with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "out-of-range accepted")
    [ (fun () -> Buf.Writer.u8 w 256);
      (fun () -> Buf.Writer.u8 w (-1));
      (fun () -> Buf.Writer.u16 w 65536);
      (fun () -> Buf.Writer.u32 w (-5)) ]

let test_reader_truncation () =
  let r = Buf.Reader.of_bytes (Bytes.of_string "\x01") in
  ignore (Buf.Reader.u8 r);
  (match Buf.Reader.u8 r with
  | exception Buf.Reader.Truncated -> ()
  | _ -> Alcotest.fail "read past end");
  (* A length prefix promising more bytes than remain. *)
  let r2 = Buf.Reader.of_bytes (Bytes.of_string "\x00\x09ab") in
  match Buf.Reader.string r2 with
  | exception Buf.Reader.Truncated -> ()
  | _ -> Alcotest.fail "string over-read"

let test_big_endian_layout () =
  let w = Buf.Writer.create () in
  Buf.Writer.u16 w 0x0102;
  Alcotest.(check string) "network byte order" "\x01\x02"
    (Bytes.to_string (Buf.Writer.contents w))

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let sample_mapping =
  Mapping.create
    ~eid_prefix:(Ipv4.prefix_of_string "100.0.3.0/24")
    ~rlocs:
      [ Mapping.rloc ~priority:1 ~weight:60 (addr "10.0.0.1");
        Mapping.rloc ~priority:1 ~weight:40 (addr "11.0.0.1");
        Mapping.rloc ~priority:2 ~weight:100 (addr "12.0.0.1") ]
    ~ttl:60.0

let sample_entry =
  { Mapping.src_eid = addr "100.0.0.1"; dst_eid = addr "100.0.3.9";
    src_rloc = addr "10.0.0.1"; dst_rloc = addr "12.0.0.2" }

let samples =
  [ Codec.Map_request
      { nonce = 0xCAFE; source_rloc = addr "10.0.0.1"; eid = addr "100.0.3.9" };
    Codec.Map_reply { nonce = 7; mapping = sample_mapping };
    Codec.Encapsulated_answer
      { qname = "h0.as3.net."; eid = addr "100.0.3.1"; rloc = addr "12.0.0.1";
        pce = addr "0.0.0.42" };
    Codec.Itr_config { entry = sample_entry };
    Codec.Reverse_push { entry = sample_entry };
    Codec.Failover_update
      { qname = "h0.as3.net."; eid = addr "100.0.3.1"; rloc = addr "11.0.0.1" };
    Codec.Database_push { mappings = [ sample_mapping; sample_mapping ] };
    Codec.Database_push { mappings = [] } ]

let test_roundtrip_all_messages () =
  List.iter
    (fun message ->
      match Codec.decode (Codec.encode message) with
      | Ok decoded ->
          if not (Codec.equal message decoded) then
            Alcotest.failf "round-trip mismatch: %a vs %a" Codec.pp message
              Codec.pp decoded
      | Error e -> Alcotest.failf "decode failed: %a" Codec.pp_error e)
    samples

let test_size_matches_encoding () =
  List.iter
    (fun message ->
      Alcotest.(check int)
        (Format.asprintf "%a" Codec.pp message)
        (Bytes.length (Codec.encode message))
        (Codec.size message))
    samples

let test_ttl_millisecond_resolution () =
  let mapping =
    Mapping.create
      ~eid_prefix:(Ipv4.prefix_of_string "100.0.1.0/24")
      ~rlocs:[ Mapping.rloc (addr "10.0.0.1") ]
      ~ttl:1.2345
  in
  match Codec.decode (Codec.encode (Codec.Map_reply { nonce = 1; mapping })) with
  | Ok (Codec.Map_reply { mapping = decoded; _ }) ->
      Alcotest.(check (float 1e-9)) "ttl rounded to ms" 1.234
        decoded.Mapping.ttl
  | Ok _ | Error _ -> Alcotest.fail "decode failed"

(* ------------------------------------------------------------------ *)
(* Malformed inputs                                                    *)
(* ------------------------------------------------------------------ *)

let test_decode_bad_tag () =
  match Codec.decode (Bytes.of_string "\xFFrest") with
  | Error (Codec.Bad_tag 255) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "bad tag accepted"

let test_decode_truncated () =
  List.iter
    (fun message ->
      let full = Codec.encode message in
      for cut = 0 to Bytes.length full - 1 do
        match Codec.decode (Bytes.sub full 0 cut) with
        | Error (Codec.Truncated | Codec.Bad_tag _ | Codec.Malformed _) -> ()
        | Error (Codec.Trailing_bytes _) ->
            (* A shorter prefix can still parse as a smaller message of
               the same kind only for list payloads; that needs the
               count field to change, which a pure truncation cannot. *)
            Alcotest.fail "truncation reported trailing bytes"
        | Ok _ ->
            (* Prefixes of Database_push [] (3 bytes) are the only legal
               sub-messages; anything else must fail. *)
            if not (cut = 0 && Bytes.length full = 0) then
              Alcotest.failf "truncated prefix (%d of %d) decoded" cut
                (Bytes.length full)
      done)
    [ Codec.Map_request
        { nonce = 1; source_rloc = addr "10.0.0.1"; eid = addr "100.0.3.9" };
      Codec.Itr_config { entry = sample_entry };
      Codec.Map_reply { nonce = 7; mapping = sample_mapping } ]

let test_decode_trailing_bytes () =
  let full = Codec.encode (Codec.Itr_config { entry = sample_entry }) in
  let padded = Bytes.cat full (Bytes.of_string "xx") in
  match Codec.decode padded with
  | Error (Codec.Trailing_bytes 2) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "trailing bytes accepted"

let test_decode_empty_rlocs_rejected () =
  (* Hand-craft a map-reply whose mapping has zero RLOCs. *)
  let w = Buf.Writer.create () in
  Buf.Writer.u8 w 2;
  Buf.Writer.u32 w 1;
  Buf.Writer.addr w (addr "100.0.3.0");
  Buf.Writer.u8 w 24;
  Buf.Writer.u32 w 60000;
  Buf.Writer.u8 w 0;
  match Codec.decode (Buf.Writer.contents w) with
  | Error (Codec.Malformed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "empty RLOC list accepted"

let test_decode_bad_prefix_length_rejected () =
  let w = Buf.Writer.create () in
  Buf.Writer.u8 w 2;
  Buf.Writer.u32 w 1;
  Buf.Writer.addr w (addr "100.0.3.0");
  Buf.Writer.u8 w 64 (* > 32 *);
  Buf.Writer.u32 w 60000;
  Buf.Writer.u8 w 1;
  Buf.Writer.addr w (addr "10.0.0.1");
  Buf.Writer.u8 w 1;
  Buf.Writer.u8 w 100;
  match Codec.decode (Buf.Writer.contents w) with
  | Error (Codec.Malformed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "prefix length 64 accepted"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_addr = QCheck.Gen.map Ipv4.addr_of_int (QCheck.Gen.int_bound 0xFFFFFF)

let gen_rloc =
  QCheck.Gen.map3
    (fun a p w -> Mapping.rloc ~priority:p ~weight:w a)
    gen_addr (QCheck.Gen.int_range 0 255) (QCheck.Gen.int_range 0 255)

let gen_mapping =
  QCheck.Gen.(
    map3
      (fun network len rlocs ->
        Mapping.create
          ~eid_prefix:(Ipv4.prefix (Ipv4.addr_of_int network) len)
          ~rlocs
          ~ttl:60.0)
      (int_bound 0xFFFFFF) (int_range 0 32)
      (list_size (1 -- 8) gen_rloc))

let gen_entry =
  QCheck.Gen.map
    (fun ((a, b), (c, d)) ->
      { Mapping.src_eid = a; dst_eid = b; src_rloc = c; dst_rloc = d })
    QCheck.Gen.(pair (pair gen_addr gen_addr) (pair gen_addr gen_addr))

let gen_qname =
  QCheck.Gen.(
    map
      (fun labels -> String.concat "." labels ^ ".")
      (list_size (1 -- 4) (string_size ~gen:(char_range 'a' 'z') (1 -- 10))))

let gen_message =
  QCheck.Gen.(
    oneof
      [ map3
          (fun nonce a b -> Codec.Map_request { nonce; source_rloc = a; eid = b })
          (int_bound 0xFFFFFFF) gen_addr gen_addr;
        map2 (fun nonce mapping -> Codec.Map_reply { nonce; mapping })
          (int_bound 0xFFFFFFF) gen_mapping;
        map3
          (fun qname (a, b) c ->
            Codec.Encapsulated_answer { qname; eid = a; rloc = b; pce = c })
          gen_qname (pair gen_addr gen_addr) gen_addr;
        map (fun entry -> Codec.Itr_config { entry }) gen_entry;
        map (fun entry -> Codec.Reverse_push { entry }) gen_entry;
        map3
          (fun qname eid rloc -> Codec.Failover_update { qname; eid; rloc })
          gen_qname gen_addr gen_addr;
        map (fun mappings -> Codec.Database_push { mappings })
          (list_size (0 -- 5) gen_mapping) ])

let arbitrary_message =
  QCheck.make gen_message ~print:(Format.asprintf "%a" Codec.pp)

let prop_roundtrip =
  QCheck.Test.make ~name:"decode . encode = Ok (up to ttl ms)" ~count:500
    arbitrary_message (fun message ->
      match Codec.decode (Codec.encode message) with
      | Ok decoded -> Codec.equal message decoded
      | Error _ -> false)

let prop_size =
  QCheck.Test.make ~name:"size = length of encoding" ~count:500
    arbitrary_message (fun message ->
      Codec.size message = Bytes.length (Codec.encode message))

let prop_mutated_encodings_never_raise =
  (* Flip one byte of a valid encoding: decode must return (anything)
     without raising, and if it still decodes, to a structurally valid
     message (pp does not blow up). *)
  QCheck.Test.make ~name:"single-byte mutations never raise" ~count:500
    QCheck.(triple arbitrary_message small_nat (int_bound 255))
    (fun (message, pos, byte) ->
      let encoded = Codec.encode message in
      if Bytes.length encoded = 0 then true
      else begin
        let mutated = Bytes.copy encoded in
        let i = pos mod Bytes.length mutated in
        Bytes.set mutated i (Char.chr byte);
        match Codec.decode mutated with
        | Ok m -> String.length (Format.asprintf "%a" Codec.pp m) >= 0
        | Error _ -> true
      end)

let prop_decode_never_raises =
  QCheck.Test.make ~name:"decode of random junk never raises" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun junk ->
      match Codec.decode (Bytes.of_string junk) with
      | Ok _ | Error _ -> true)

let () =
  Alcotest.run "wire"
    [
      ( "buf",
        [
          Alcotest.test_case "roundtrip" `Quick test_writer_reader_roundtrip;
          Alcotest.test_case "writer bounds" `Quick test_writer_bounds;
          Alcotest.test_case "reader truncation" `Quick test_reader_truncation;
          Alcotest.test_case "big endian" `Quick test_big_endian_layout;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip all" `Quick test_roundtrip_all_messages;
          Alcotest.test_case "size accounting" `Quick test_size_matches_encoding;
          Alcotest.test_case "ttl resolution" `Quick test_ttl_millisecond_resolution;
        ] );
      ( "malformed",
        [
          Alcotest.test_case "bad tag" `Quick test_decode_bad_tag;
          Alcotest.test_case "truncated" `Quick test_decode_truncated;
          Alcotest.test_case "trailing" `Quick test_decode_trailing_bytes;
          Alcotest.test_case "empty rlocs" `Quick test_decode_empty_rlocs_rejected;
          Alcotest.test_case "bad prefix length" `Quick test_decode_bad_prefix_length_rejected;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_size; prop_decode_never_raises;
            prop_mutated_encodings_never_raise ] );
    ]
