test/test_dnssim.ml: Alcotest Array Dnssim List Name Netsim Nettypes Option Printf String System Topology Zone
