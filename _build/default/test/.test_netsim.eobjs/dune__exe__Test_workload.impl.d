test/test_workload.ml: Alcotest Array Flow Fun Ipv4 Lispdp List Mapping Mapsys Netsim Nettypes Option Packet QCheck QCheck_alcotest String Topology Workload
