test/test_dnssim.mli:
