test/test_failover.ml: Alcotest Array Core Flow Ipv4 Irc Lispdp List Mapping Mapsys Netsim Nettypes Option Pce_control Scenario Topology Workload
