test/test_wire.ml: Alcotest Buf Bytes Char Codec Format Gen Ipv4 List Mapping Nettypes QCheck QCheck_alcotest String Wire
