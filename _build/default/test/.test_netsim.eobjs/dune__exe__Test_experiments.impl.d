test/test_experiments.ml: Alcotest Core Exp_f1 Exp_index Exp_v1 Experiments Harness Lispdp List Metrics Netsim Nettypes Option Printf String Topology Workload
