test/test_nettypes.mli:
