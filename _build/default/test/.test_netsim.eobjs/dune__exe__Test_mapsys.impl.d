test/test_mapsys.ml: Alcotest Array Bytes Flow Format Ipv4 Lispdp List Mapping Mapsys Netsim Nettypes Packet String Topology Wire
