test/test_lispdp.ml: Alcotest Array Dataplane Flow Flow_table Gen Ipv4 Lispdp List Map_cache Mapping Netsim Nettypes Packet Printf QCheck QCheck_alcotest Topology
