test/test_lispdp.mli:
