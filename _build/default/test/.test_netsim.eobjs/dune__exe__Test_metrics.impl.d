test/test_metrics.ml: Alcotest Format Metrics String Table Timeseries
