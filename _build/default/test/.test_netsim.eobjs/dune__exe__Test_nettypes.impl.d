test/test_nettypes.ml: Alcotest Float Flow Format Ipv4 List Mapping Nettypes Packet Prefix_table QCheck QCheck_alcotest String
