test/test_irc.mli:
