test/test_topology.ml: Alcotest Array Builder Domain Graph Link List Netsim Nettypes Node Option QCheck QCheck_alcotest Topology
