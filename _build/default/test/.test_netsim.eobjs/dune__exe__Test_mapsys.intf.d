test/test_mapsys.mli:
