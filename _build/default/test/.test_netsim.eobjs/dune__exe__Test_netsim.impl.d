test/test_netsim.ml: Alcotest Array Engine Float Gen List Netsim QCheck QCheck_alcotest Rng Stats Trace
