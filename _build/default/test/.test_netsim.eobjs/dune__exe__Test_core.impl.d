test/test_core.ml: Alcotest Array Core Dnssim Float Flow Ipv4 Irc Lispdp List Mapping Netsim Nettypes Option Pce Pce_control QCheck QCheck_alcotest Scenario Scenario_file String Topology Workload
