test/test_irc.ml: Alcotest Array Hashtbl Irc List Nettypes Option Policy QCheck QCheck_alcotest Selector Topology
