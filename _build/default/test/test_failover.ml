(* Failure-injection tests: link state and valley-free routing, the
   failure-aware IRC selector, data-plane drop causes, registry
   re-registration, and the PCE's failover protocol. *)

open Core
open Nettypes

(* ------------------------------------------------------------------ *)
(* Topology under link failure                                         *)
(* ------------------------------------------------------------------ *)

let test_link_down_changes_routing () =
  let net = Topology.Builder.figure1 () in
  let as_s = net.Topology.Builder.domains.(0) in
  let as_d = net.Topology.Builder.domains.(1) in
  let h_s = as_s.Topology.Domain.hosts.(0) in
  let h_d = as_d.Topology.Domain.hosts.(0) in
  let before = Topology.Builder.latency net h_s h_d in
  (* Kill the uplink the shortest path uses; hosts stay reachable via
     the sibling border but the path gets longer or equal. *)
  let b0 = as_s.Topology.Domain.borders.(0) in
  Topology.Graph.set_link_up net.Topology.Builder.graph
    b0.Topology.Domain.uplink false;
  let after = Topology.Builder.latency net h_s h_d in
  Alcotest.(check bool) "still reachable" true (after < infinity);
  Alcotest.(check bool) "path did not get shorter" true (after >= before);
  (* Restore brings the old latency back. *)
  Topology.Graph.set_link_up net.Topology.Builder.graph
    b0.Topology.Domain.uplink true;
  Alcotest.(check (float 1e-9)) "restored" before
    (Topology.Builder.latency net h_s h_d)

let test_border_unreachable_when_uplink_down () =
  let net = Topology.Builder.figure1 () in
  let as_s = net.Topology.Builder.domains.(0) in
  let as_d = net.Topology.Builder.domains.(1) in
  let b_d0 = as_d.Topology.Domain.borders.(0) in
  Topology.Graph.set_link_up net.Topology.Builder.graph
    b_d0.Topology.Domain.uplink false;
  (* From outside, the border with the dead uplink has no route (it may
     not be entered through a sibling border). *)
  (match
     Topology.Graph.latency_between net.Topology.Builder.graph
       as_s.Topology.Domain.borders.(0).Topology.Domain.router
       b_d0.Topology.Domain.router
   with
  | exception Not_found -> ()
  | l -> Alcotest.failf "dead border reachable from outside (%.3f)" l);
  (* From inside its own domain it is still reachable (IGP). *)
  Alcotest.(check bool) "reachable internally" true
    (Topology.Graph.latency_between net.Topology.Builder.graph
       as_d.Topology.Domain.hosts.(0) b_d0.Topology.Domain.router
    < infinity)

let test_no_transit_through_domains () =
  (* The shortest path between two provider cores never dips through a
     domain's internal wiring. *)
  let net =
    Topology.Builder.generate (Netsim.Rng.create 4)
      { Topology.Builder.default_params with domain_count = 6; provider_count = 4 }
  in
  let graph = net.Topology.Builder.graph in
  Array.iter
    (fun (pi : Topology.Builder.provider) ->
      Array.iter
        (fun (pj : Topology.Builder.provider) ->
          if pi.Topology.Builder.core < pj.Topology.Builder.core then begin
            let path =
              Topology.Graph.path_between graph pi.Topology.Builder.core
                pj.Topology.Builder.core
            in
            List.iter
              (fun node ->
                match (Topology.Graph.node graph node).Topology.Node.kind with
                | Topology.Node.Hub | Topology.Node.Host ->
                    Alcotest.fail "core-to-core path transits a domain"
                | Topology.Node.Provider_core | Topology.Node.Border_router
                | Topology.Node.Dns_server | Topology.Node.Pce ->
                    ())
              path
          end)
        net.Topology.Builder.providers)
    net.Topology.Builder.providers

let test_advertised_mapping_drops_dead_rloc () =
  let net = Topology.Builder.figure1 () in
  let as_d = net.Topology.Builder.domains.(1) in
  let full = Topology.Domain.advertised_mapping as_d ~ttl:60.0 in
  Alcotest.(check int) "two rlocs" 2 (List.length full.Mapping.rlocs);
  Topology.Graph.set_link_up net.Topology.Builder.graph
    as_d.Topology.Domain.borders.(0).Topology.Domain.uplink false;
  let reduced = Topology.Domain.advertised_mapping as_d ~ttl:60.0 in
  Alcotest.(check int) "one live rloc" 1 (List.length reduced.Mapping.rlocs);
  Alcotest.(check string) "the live one"
    (Ipv4.addr_to_string as_d.Topology.Domain.borders.(1).Topology.Domain.rloc)
    (Ipv4.addr_to_string
       (List.hd reduced.Mapping.rlocs).Mapping.rloc_addr)

(* ------------------------------------------------------------------ *)
(* Selector avoids dead uplinks                                        *)
(* ------------------------------------------------------------------ *)

let test_selector_avoids_dead_uplink () =
  let net = Topology.Builder.figure1 () in
  let as_s = net.Topology.Builder.domains.(0) in
  let sel =
    Irc.Selector.create ~domain:as_s ~graph:net.Topology.Builder.graph
      ~policy:Irc.Policy.Min_load ()
  in
  let b0 = as_s.Topology.Domain.borders.(0) in
  Topology.Graph.set_link_up net.Topology.Builder.graph
    b0.Topology.Domain.uplink false;
  for port = 1 to 10 do
    let flow =
      Flow.create
        ~src:(Topology.Domain.host_eid as_s 0)
        ~dst:(Ipv4.addr_of_string "100.0.9.1") ~src_port:port ()
    in
    let chosen = Irc.Selector.choose_egress sel ~flow () in
    Alcotest.(check int) "never the dead border"
      as_s.Topology.Domain.borders.(1).Topology.Domain.router
      chosen.Topology.Domain.router
  done

let test_selector_sticky_voided_by_failure () =
  let net = Topology.Builder.figure1 () in
  let as_s = net.Topology.Builder.domains.(0) in
  let sel =
    Irc.Selector.create ~domain:as_s ~graph:net.Topology.Builder.graph
      ~policy:Irc.Policy.Flow_hash ()
  in
  let flow =
    Flow.create
      ~src:(Topology.Domain.host_eid as_s 0)
      ~dst:(Ipv4.addr_of_string "100.0.9.1") ~src_port:3 ()
  in
  let first = Irc.Selector.choose_egress sel ~flow () in
  (* Kill whatever it picked; the sticky assignment must be replaced. *)
  let border =
    match Topology.Domain.border_of_router as_s first.Topology.Domain.router with
    | Some b -> b
    | None -> Alcotest.fail "selector returned a foreign border"
  in
  Topology.Graph.set_link_up net.Topology.Builder.graph
    border.Topology.Domain.uplink false;
  let second = Irc.Selector.choose_egress sel ~flow () in
  Alcotest.(check bool) "moved off the dead uplink" true
    (second.Topology.Domain.router <> first.Topology.Domain.router)

(* ------------------------------------------------------------------ *)
(* Data plane drop causes                                              *)
(* ------------------------------------------------------------------ *)

let test_tunnel_to_dead_rloc_drops () =
  let s =
    Scenario.build { Scenario.default_config with Scenario.cp = Scenario.Cp_nerd }
  in
  let internet = Scenario.internet s in
  let as_d = internet.Topology.Builder.domains.(1) in
  (* NERD has pushed the full database; kill one of AS_D's uplinks
     without telling anyone (no re-registration). *)
  Topology.Graph.set_link_up internet.Topology.Builder.graph
    as_d.Topology.Domain.borders.(0).Topology.Domain.uplink false;
  (* Open enough connections that some hash onto the dead locator. *)
  for port = 6300 to 6315 do
    let flow =
      Flow.create
        ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
        ~dst:(Topology.Domain.host_eid as_d (port mod 2))
        ~src_port:port ()
    in
    ignore (Scenario.open_connection s ~flow ~data_packets:1 ())
  done;
  Scenario.run s;
  let causes = Lispdp.Dataplane.drop_causes (Scenario.dataplane s) in
  Alcotest.(check bool) "rloc-unreachable drops recorded" true
    (List.mem_assoc "rloc-unreachable" causes)

let test_drop_observer_fires () =
  let s =
    Scenario.build { Scenario.default_config with Scenario.cp = Scenario.Cp_pull_drop }
  in
  let observed = ref [] in
  Lispdp.Dataplane.set_drop_observer (Scenario.dataplane s)
    (Some (fun ~cause ~now -> observed := (cause, now) :: !observed));
  let internet = Scenario.internet s in
  let flow =
    Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~src_port:6320 ()
  in
  ignore (Scenario.open_connection s ~flow ~data_packets:1 ());
  Scenario.run s;
  match !observed with
  | (cause, now) :: _ ->
      Alcotest.(check string) "cause" "mapping-resolution-drop" cause;
      Alcotest.(check bool) "timestamped" true (now > 0.0)
  | [] -> Alcotest.fail "observer never fired"

(* ------------------------------------------------------------------ *)
(* PCE failover                                                        *)
(* ------------------------------------------------------------------ *)

(* One established connection toward AS_D, then AS_D's serving uplink
   dies.  The monitoring loop must detect it and repair the mappings so
   a follow-up transfer (same hosts, cache-served DNS) flows again. *)
let test_pce_failover_repairs_mappings () =
  let s = Scenario.build Scenario.default_config in
  (match Scenario.pce s with
  | Some pce ->
      Pce_control.run_monitoring pce ~interval:0.5 ~until:30.0 ~rebalance:false
  | None -> Alcotest.fail "expected a PCE scenario");
  let internet = Scenario.internet s in
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let flow1 =
    Flow.create
      ~src:(Topology.Domain.host_eid as_s 0)
      ~dst:(Topology.Domain.host_eid as_d 0)
      ~src_port:6400 ()
  in
  let c1 = Scenario.open_connection s ~flow:flow1 ~data_packets:2 () in
  (* At t = 2 s: find which AS_D uplink carries the flow and fail it. *)
  ignore
    (Netsim.Engine.schedule (Scenario.engine s) ~delay:2.0 (fun () ->
         let serving =
           let rec scan i =
             if i >= Array.length as_d.Topology.Domain.borders then 0
             else
               let b = as_d.Topology.Domain.borders.(i) in
               let inbound =
                 Topology.Link.bytes_from b.Topology.Domain.uplink
                   (Topology.Link.other_end b.Topology.Domain.uplink
                      b.Topology.Domain.router)
               in
               if inbound > 0 then i else scan (i + 1)
           in
           scan 0
         in
         Scenario.fail_uplink s ~domain:1 ~border:serving));
  (* At t = 5 s (detection done): a second connection between the same
     hosts; its DNS answer is cache-served, so it relies entirely on the
     repaired PCE databases. *)
  let c2 = ref None in
  ignore
    (Netsim.Engine.schedule (Scenario.engine s) ~delay:5.0 (fun () ->
         c2 :=
           Some
             (Scenario.open_connection s
                ~flow:{ flow1 with Flow.src_port = 6401 }
                ~data_packets:2 ())));
  Scenario.run s;
  Alcotest.(check bool) "first connection established" true
    (Option.bind c1.Scenario.tcp Workload.Tcp.handshake_time <> None);
  (match Scenario.pce s with
  | Some pce -> Alcotest.(check int) "one failover handled" 1 (Pce_control.failovers pce)
  | None -> ());
  match !c2 with
  | Some c ->
      Alcotest.(check bool) "post-failure connection established" true
        (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None);
      (match c.Scenario.tcp with
      | Some conn ->
          Alcotest.(check int) "without retransmission" 1
            conn.Workload.Tcp.syn_transmissions;
          Alcotest.(check int) "all data flowed" 2 conn.Workload.Tcp.data_delivered
      | None -> ())
  | None -> Alcotest.fail "second connection never opened"

let test_pce_failover_without_monitoring_blackholes () =
  (* Same scenario but no monitoring loop: nothing detects the failure,
     so the cache-served second connection black-holes. *)
  let s = Scenario.build Scenario.default_config in
  let internet = Scenario.internet s in
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let flow1 =
    Flow.create
      ~src:(Topology.Domain.host_eid as_s 0)
      ~dst:(Topology.Domain.host_eid as_d 0)
      ~src_port:6402 ()
  in
  ignore (Scenario.open_connection s ~flow:flow1 ~data_packets:2 ());
  ignore
    (Netsim.Engine.schedule (Scenario.engine s) ~delay:2.0 (fun () ->
         (* Fail every uplink that saw traffic (the serving one). *)
         Array.iteri
           (fun i b ->
             let inbound =
               Topology.Link.bytes_from b.Topology.Domain.uplink
                 (Topology.Link.other_end b.Topology.Domain.uplink
                    b.Topology.Domain.router)
             in
             if inbound > 0 then Scenario.fail_uplink s ~domain:1 ~border:i)
           as_d.Topology.Domain.borders));
  let c2 = ref None in
  ignore
    (Netsim.Engine.schedule (Scenario.engine s) ~delay:5.0 (fun () ->
         c2 :=
           Some
             (Scenario.open_connection s
                ~flow:{ flow1 with Flow.src_port = 6403 }
                ~data_packets:2 ())));
  Scenario.run s;
  match !c2 with
  | Some c -> (
      match c.Scenario.tcp with
      | Some conn ->
          Alcotest.(check bool) "stale mapping black-holes the SYN" true
            (conn.Workload.Tcp.syn_transmissions > 1 || conn.Workload.Tcp.failed)
      | None -> Alcotest.fail "tcp never started")
  | None -> Alcotest.fail "second connection never opened"

(* SMR: after a mapping change, soliciting evicts the stale (and
   gleaned) entries at remote ITRs, so an in-flight transfer recovers in
   about one round trip instead of waiting for cache expiry. *)
let smr_recovery cp =
  let s =
    Scenario.build
      { Scenario.default_config with
        Scenario.cp;
        topology =
          `Random
            { Topology.Builder.default_params with
              Topology.Builder.domain_count = 4; borders_per_domain = 2 };
        mapping_ttl = 1000.0 (* expiry cannot rescue anyone *) }
  in
  let internet = Scenario.internet s in
  let victim = internet.Topology.Builder.domains.(0) in
  let flow =
    Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~dst:(Topology.Domain.host_eid victim 0)
      ~src_port:6500 ()
  in
  let c = Scenario.open_connection s ~flow ~data_packets:3000 () in
  ignore
    (Netsim.Engine.schedule (Scenario.engine s) ~delay:2.0 (fun () ->
         (* Fail the single victim uplink carrying the most inbound. *)
         let best = ref 0 and best_bytes = ref (-1) in
         Array.iteri
           (fun i b ->
             let inbound =
               Topology.Link.bytes_from b.Topology.Domain.uplink
                 (Topology.Link.other_end b.Topology.Domain.uplink
                    b.Topology.Domain.router)
             in
             if inbound > !best_bytes then begin
               best := i;
               best_bytes := inbound
             end)
           victim.Topology.Domain.borders;
         Scenario.fail_uplink s ~domain:0 ~border:!best));
  Scenario.run s;
  match c.Scenario.tcp with
  | Some conn ->
      ( conn.Workload.Tcp.data_delivered,
        (Lispdp.Dataplane.counters (Scenario.dataplane s)).Lispdp.Dataplane.dropped )
  | None -> Alcotest.fail "connection never started"

let test_smr_restores_inflight_transfer () =
  let delivered_queue, drops_queue = smr_recovery (Scenario.Cp_pull_queue 64) in
  let delivered_smr, drops_smr = smr_recovery (Scenario.Cp_pull_smr 64) in
  Alcotest.(check bool) "plain queue black-holes most of the transfer" true
    (drops_queue > 1000);
  Alcotest.(check bool) "smr drops two orders less" true
    (drops_smr * 20 < drops_queue);
  Alcotest.(check bool) "smr delivers almost everything" true
    (delivered_smr > delivered_queue + 1000)

let test_scenario_restore_uplink () =
  let s = Scenario.build Scenario.default_config in
  Scenario.fail_uplink s ~domain:1 ~border:0;
  (match Mapsys.Registry.mapping_for_eid (Scenario.registry s)
           (Topology.Domain.host_eid
              (Scenario.internet s).Topology.Builder.domains.(1)
              0)
   with
  | Some m -> Alcotest.(check int) "registry shrunk" 1 (List.length m.Mapping.rlocs)
  | None -> Alcotest.fail "mapping lost");
  Scenario.restore_uplink s ~domain:1 ~border:0;
  match Mapsys.Registry.mapping_for_eid (Scenario.registry s)
          (Topology.Domain.host_eid
             (Scenario.internet s).Topology.Builder.domains.(1)
             0)
  with
  | Some m -> Alcotest.(check int) "registry restored" 2 (List.length m.Mapping.rlocs)
  | None -> Alcotest.fail "mapping lost after restore"

let () =
  Alcotest.run "failover"
    [
      ( "topology",
        [
          Alcotest.test_case "link down reroutes" `Quick test_link_down_changes_routing;
          Alcotest.test_case "dead border unreachable" `Quick test_border_unreachable_when_uplink_down;
          Alcotest.test_case "no transit through domains" `Quick test_no_transit_through_domains;
          Alcotest.test_case "advertised mapping shrinks" `Quick test_advertised_mapping_drops_dead_rloc;
        ] );
      ( "selector",
        [
          Alcotest.test_case "avoids dead uplink" `Quick test_selector_avoids_dead_uplink;
          Alcotest.test_case "sticky voided" `Quick test_selector_sticky_voided_by_failure;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "dead rloc drops" `Quick test_tunnel_to_dead_rloc_drops;
          Alcotest.test_case "drop observer" `Quick test_drop_observer_fires;
        ] );
      ( "pce",
        [
          Alcotest.test_case "failover repairs" `Quick test_pce_failover_repairs_mappings;
          Alcotest.test_case "no monitoring blackholes" `Quick test_pce_failover_without_monitoring_blackholes;
          Alcotest.test_case "smr recovery" `Quick test_smr_restores_inflight_transfer;
          Alcotest.test_case "restore uplink" `Quick test_scenario_restore_uplink;
        ] );
    ]
