(* Tests for the Intelligent Route Control engine: policies, EWMA load
   monitoring, sticky assignment, hysteresis and rebalancing. *)

open Irc

let fig1 () = Topology.Builder.figure1 ()

let selector ?(policy = Policy.Min_load) ?hysteresis net domain_index =
  let domain = net.Topology.Builder.domains.(domain_index) in
  ( domain,
    Selector.create ~domain ~graph:net.Topology.Builder.graph ~policy
      ?hysteresis () )

let flow_for domain i =
  Nettypes.Flow.create
    ~src:(Topology.Domain.host_eid domain 0)
    ~dst:(Nettypes.Ipv4.addr_of_string "100.0.99.1")
    ~src_port:i ()

(* Send [bytes] outbound on a border's uplink. *)
let load_uplink border ~bytes =
  Topology.Link.account border.Topology.Domain.uplink
    ~src:border.Topology.Domain.router ~bytes

let load_uplink_inbound border ~bytes =
  let link = border.Topology.Domain.uplink in
  let core = Topology.Link.other_end link border.Topology.Domain.router in
  Topology.Link.account link ~src:core ~bytes

(* ------------------------------------------------------------------ *)
(* Policy scoring                                                      *)
(* ------------------------------------------------------------------ *)

let test_policy_scores () =
  let latency = 0.02 and load = 0.5 and latency_scale = 0.04 in
  Alcotest.(check (float 1e-9)) "min latency normalises" 0.5
    (Policy.score Policy.Min_latency ~latency ~load ~latency_scale);
  Alcotest.(check (float 1e-9)) "min load is the load" 0.5
    (Policy.score Policy.Min_load ~latency ~load ~latency_scale);
  Alcotest.(check (float 1e-9)) "weighted blends" 0.5
    (Policy.score
       (Policy.Weighted { latency_weight = 0.5; load_weight = 0.5 })
       ~latency ~load ~latency_scale);
  Alcotest.(check (float 1e-9)) "round robin scoreless" 0.0
    (Policy.score Policy.Round_robin ~latency ~load ~latency_scale)

let test_policy_names () =
  List.iter
    (fun (p, s) -> Alcotest.(check string) s s (Policy.to_string p))
    [ (Policy.Min_latency, "min-latency"); (Policy.Min_load, "min-load");
      (Policy.Round_robin, "round-robin"); (Policy.Flow_hash, "flow-hash") ]

(* ------------------------------------------------------------------ *)
(* Observation / load estimates                                        *)
(* ------------------------------------------------------------------ *)

let test_observe_builds_estimate () =
  let net = fig1 () in
  let domain, sel = selector net 0 in
  let b0 = domain.Topology.Domain.borders.(0) in
  Selector.observe sel ~now:0.0;
  Alcotest.(check (float 1e-9)) "no estimate yet" 0.0
    (Selector.load_estimate sel Selector.Outbound b0);
  (* 1 Gbit/s link; 12.5 MB over 1 s = 10% utilisation. *)
  load_uplink b0 ~bytes:12_500_000;
  Selector.observe sel ~now:1.0;
  let estimate = Selector.load_estimate sel Selector.Outbound b0 in
  Alcotest.(check (float 1e-6)) "ewma of a 10% sample (alpha 0.3)" 0.03 estimate;
  (* Direction separation: inbound stays zero. *)
  Alcotest.(check (float 1e-9)) "inbound untouched" 0.0
    (Selector.load_estimate sel Selector.Inbound b0)

let test_observe_inbound_direction () =
  let net = fig1 () in
  let domain, sel = selector net 0 in
  let b1 = domain.Topology.Domain.borders.(1) in
  Selector.observe sel ~now:0.0;
  load_uplink_inbound b1 ~bytes:12_500_000;
  Selector.observe sel ~now:1.0;
  Alcotest.(check bool) "inbound estimate grew" true
    (Selector.load_estimate sel Selector.Inbound b1 > 0.0);
  Alcotest.(check (float 1e-9)) "outbound untouched" 0.0
    (Selector.load_estimate sel Selector.Outbound b1)

(* ------------------------------------------------------------------ *)
(* Selection                                                           *)
(* ------------------------------------------------------------------ *)

let test_min_load_avoids_hot_uplink () =
  let net = fig1 () in
  let domain, sel = selector net 0 in
  let b0 = domain.Topology.Domain.borders.(0) in
  Selector.observe sel ~now:0.0;
  load_uplink b0 ~bytes:50_000_000;
  Selector.observe sel ~now:1.0;
  let chosen = Selector.choose_egress sel ~flow:(flow_for domain 1) () in
  Alcotest.(check int) "picks the idle border"
    domain.Topology.Domain.borders.(1).Topology.Domain.router
    chosen.Topology.Domain.router

let test_selection_sticky () =
  let net = fig1 () in
  let domain, sel = selector net 0 in
  let flow = flow_for domain 7 in
  let first = Selector.choose_egress sel ~flow () in
  (* Heat up the chosen uplink; without rebalance the flow must stay. *)
  Selector.observe sel ~now:0.0;
  load_uplink first ~bytes:50_000_000;
  Selector.observe sel ~now:1.0;
  let second = Selector.choose_egress sel ~flow () in
  Alcotest.(check int) "sticky despite load" first.Topology.Domain.router
    second.Topology.Domain.router;
  match Selector.assignment sel Selector.Outbound flow with
  | Some b -> Alcotest.(check int) "assignment recorded" first.Topology.Domain.router b.Topology.Domain.router
  | None -> Alcotest.fail "no assignment"

let test_round_robin_cycles () =
  let net = fig1 () in
  let domain, sel = selector ~policy:Policy.Round_robin net 0 in
  let picks =
    List.init 4 (fun i ->
        (Selector.choose_egress sel ~flow:(flow_for domain i) ()).Topology.Domain.router)
  in
  let distinct = List.sort_uniq compare picks in
  Alcotest.(check int) "uses both borders" 2 (List.length distinct)

let test_flow_hash_deterministic () =
  let net = fig1 () in
  let domain, sel = selector ~policy:Policy.Flow_hash net 0 in
  let flow = flow_for domain 3 in
  let a = Selector.choose_egress sel ~flow () in
  Selector.forget_flow sel flow;
  let b = Selector.choose_egress sel ~flow () in
  Alcotest.(check int) "same hash, same border" a.Topology.Domain.router
    b.Topology.Domain.router

let test_ingress_vs_egress_independent () =
  let net = fig1 () in
  let domain, sel = selector net 0 in
  Selector.observe sel ~now:0.0;
  (* Outbound hot on border 0, inbound hot on border 1: egress should
     avoid 0, ingress should avoid 1. *)
  load_uplink domain.Topology.Domain.borders.(0) ~bytes:50_000_000;
  load_uplink_inbound domain.Topology.Domain.borders.(1) ~bytes:50_000_000;
  Selector.observe sel ~now:1.0;
  let flow = flow_for domain 1 in
  let egress = Selector.choose_egress sel ~flow () in
  let ingress = Selector.choose_ingress sel ~flow () in
  Alcotest.(check int) "egress avoids hot outbound"
    domain.Topology.Domain.borders.(1).Topology.Domain.router
    egress.Topology.Domain.router;
  Alcotest.(check int) "ingress avoids hot inbound"
    domain.Topology.Domain.borders.(0).Topology.Domain.router
    ingress.Topology.Domain.router

let test_min_latency_prefers_short_path () =
  let net = fig1 () in
  let domain, sel = selector ~policy:Policy.Min_latency net 0 in
  let as_d = net.Topology.Builder.domains.(1) in
  let remote = as_d.Topology.Domain.borders.(0).Topology.Domain.router in
  let chosen = Selector.choose_egress sel ~flow:(flow_for domain 1) ~remote () in
  (* Verify against brute force. *)
  let best =
    Array.to_list domain.Topology.Domain.borders
    |> List.map (fun b ->
           ( Topology.Graph.latency_between net.Topology.Builder.graph
               b.Topology.Domain.router remote,
             b ))
    |> List.sort compare |> List.hd |> snd
  in
  Alcotest.(check int) "matches brute force" best.Topology.Domain.router
    chosen.Topology.Domain.router

let test_burst_spreads_over_uplinks () =
  (* Ten assignments inside one observation window: the per-assignment
     penalty must spread them over both uplinks instead of herding onto
     the first. *)
  let net = fig1 () in
  let domain, sel = selector net 0 in
  let counts = Hashtbl.create 4 in
  for port = 1 to 10 do
    let b = Selector.choose_egress sel ~flow:(flow_for domain port) () in
    Hashtbl.replace counts b.Topology.Domain.router
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts b.Topology.Domain.router))
  done;
  Alcotest.(check int) "both uplinks used" 2 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ n ->
      Alcotest.(check bool) "roughly even split" true (n >= 3 && n <= 7))
    counts

let test_noise_requires_rng () =
  let net = fig1 () in
  let domain = net.Topology.Builder.domains.(0) in
  match
    Selector.create ~domain ~graph:net.Topology.Builder.graph
      ~policy:Policy.Min_load ~noise:0.1 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "noise without rng accepted"

let test_load_estimate_foreign_border_rejected () =
  let net = fig1 () in
  let _, sel = selector net 0 in
  let foreign = net.Topology.Builder.domains.(1).Topology.Domain.borders.(0) in
  match Selector.load_estimate sel Selector.Outbound foreign with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign border accepted"

(* ------------------------------------------------------------------ *)
(* Rebalance                                                           *)
(* ------------------------------------------------------------------ *)

let test_rebalance_moves_flow () =
  let net = fig1 () in
  let domain, sel = selector ~hysteresis:0.01 net 0 in
  let flow = flow_for domain 1 in
  let first = Selector.choose_egress sel ~flow () in
  Selector.observe sel ~now:0.0;
  load_uplink first ~bytes:100_000_000;
  Selector.observe sel ~now:1.0;
  Alcotest.(check int) "nothing moved yet" 0 (Selector.moved_flows sel);
  Selector.rebalance sel;
  Alcotest.(check int) "one move" 1 (Selector.moved_flows sel);
  let second = Selector.choose_egress sel ~flow () in
  Alcotest.(check bool) "flow moved away" true
    (second.Topology.Domain.router <> first.Topology.Domain.router)

let test_rebalance_respects_hysteresis () =
  let net = fig1 () in
  let domain, sel = selector ~hysteresis:0.9 net 0 in
  let flow = flow_for domain 1 in
  let first = Selector.choose_egress sel ~flow () in
  Selector.observe sel ~now:0.0;
  load_uplink first ~bytes:100_000_000;
  Selector.observe sel ~now:1.0;
  Selector.rebalance sel;
  Alcotest.(check int) "hysteresis blocks the move" 0 (Selector.moved_flows sel)

let test_forget_flow () =
  let net = fig1 () in
  let domain, sel = selector net 0 in
  let flow = flow_for domain 1 in
  ignore (Selector.choose_egress sel ~flow ());
  Selector.forget_flow sel flow;
  Alcotest.(check bool) "assignment cleared" true
    (Selector.assignment sel Selector.Outbound flow = None)

let prop_selection_always_a_domain_border =
  QCheck.Test.make ~name:"selection returns a border of the domain" ~count:100
    QCheck.(pair (int_range 0 1) (int_range 1 10_000))
    (fun (domain_index, port) ->
      let net = fig1 () in
      let domain, sel = selector net domain_index in
      let flow = flow_for domain port in
      let egress = Selector.choose_egress sel ~flow () in
      Array.exists
        (fun b -> b.Topology.Domain.router = egress.Topology.Domain.router)
        domain.Topology.Domain.borders)

let () =
  Alcotest.run "irc"
    [
      ( "policy",
        [
          Alcotest.test_case "scores" `Quick test_policy_scores;
          Alcotest.test_case "names" `Quick test_policy_names;
        ] );
      ( "observe",
        [
          Alcotest.test_case "builds estimate" `Quick test_observe_builds_estimate;
          Alcotest.test_case "inbound direction" `Quick test_observe_inbound_direction;
        ] );
      ( "selection",
        [
          Alcotest.test_case "min load avoids hot" `Quick test_min_load_avoids_hot_uplink;
          Alcotest.test_case "sticky" `Quick test_selection_sticky;
          Alcotest.test_case "round robin" `Quick test_round_robin_cycles;
          Alcotest.test_case "flow hash deterministic" `Quick test_flow_hash_deterministic;
          Alcotest.test_case "ingress/egress independent" `Quick test_ingress_vs_egress_independent;
          Alcotest.test_case "min latency" `Quick test_min_latency_prefers_short_path;
          Alcotest.test_case "burst spreads" `Quick test_burst_spreads_over_uplinks;
          Alcotest.test_case "noise needs rng" `Quick test_noise_requires_rng;
          Alcotest.test_case "foreign border" `Quick test_load_estimate_foreign_border_rejected;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "moves flow" `Quick test_rebalance_moves_flow;
          Alcotest.test_case "hysteresis" `Quick test_rebalance_respects_hysteresis;
          Alcotest.test_case "forget flow" `Quick test_forget_flow;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_selection_always_a_domain_border ] );
    ]
