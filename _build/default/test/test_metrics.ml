(* Tests for the metrics library (result tables). *)

open Metrics

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_table_rendering () =
  let t = Table.create ~title:"demo" ~columns:[ "cp"; "drops"; "latency" ] in
  Table.add_row t [ "pce"; "0"; "98.00" ];
  Table.add_row t [ "pull-drop"; "1"; "1092.00" ];
  Alcotest.(check int) "row count" 2 (Table.row_count t);
  let rendered = Format.asprintf "%a" Table.pp t in
  Alcotest.(check bool) "title present" true (contains rendered "== demo ==");
  Alcotest.(check bool) "rows present" true (contains rendered "pull-drop")

let test_table_alignment () =
  let t = Table.create ~title:"align" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "xxxxxxxx"; "1" ];
  let rendered = Format.asprintf "%a" Table.pp t in
  Alcotest.(check bool) "column padded to widest cell" true
    (contains rendered "a         b");
  Alcotest.(check bool) "rule matches width" true (contains rendered "--------")

let test_table_cell_count_checked () =
  let t = Table.create ~title:"bad" ~columns:[ "a"; "b" ] in
  match Table.add_row t [ "only-one" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong arity accepted"

let test_table_csv () =
  let t = Table.create ~title:"csv" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "with,comma"; "quote\"inside" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "header" true (contains csv "name,value");
  Alcotest.(check bool) "comma quoted" true (contains csv "\"with,comma\"");
  Alcotest.(check bool) "quote doubled" true (contains csv "\"quote\"\"inside\"")

let test_cells () =
  Alcotest.(check string) "ms" "82.51" (Table.cell_ms 0.08251);
  Alcotest.(check string) "float" "3.142" (Table.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1" (Table.cell_float ~decimals:1 3.14159);
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "pct" "12.5%" (Table.cell_pct 0.125);
  Alcotest.(check string) "bytes small" "512B" (Table.cell_bytes 512);
  Alcotest.(check string) "bytes kib" "1.5KiB" (Table.cell_bytes 1536);
  Alcotest.(check string) "bytes mib" "2.00MiB" (Table.cell_bytes (2 * 1024 * 1024))

let test_empty_columns_rejected () =
  match Table.create ~title:"x" ~columns:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty columns accepted"

(* ------------------------------------------------------------------ *)
(* Timeseries                                                          *)
(* ------------------------------------------------------------------ *)

let test_ts_bucketing () =
  let ts = Timeseries.create ~bucket:0.5 ~horizon:2.0 in
  Alcotest.(check int) "bucket count" 4 (Timeseries.bucket_count ts);
  Timeseries.add ts ~at:0.0 ();
  Timeseries.add ts ~at:0.49 ();
  Timeseries.add ts ~at:0.5 ();
  Timeseries.add ts ~at:1.99 ~value:3.0 ();
  Alcotest.(check (float 1e-9)) "first bucket" 2.0 (Timeseries.value ts 0);
  Alcotest.(check (float 1e-9)) "second bucket" 1.0 (Timeseries.value ts 1);
  Alcotest.(check (float 1e-9)) "last bucket" 3.0 (Timeseries.value ts 3);
  Alcotest.(check (float 1e-9)) "total" 6.0 (Timeseries.total ts)

let test_ts_out_of_range () =
  let ts = Timeseries.create ~bucket:1.0 ~horizon:2.0 in
  Timeseries.add ts ~at:(-0.1) ();
  Timeseries.add ts ~at:2.0 ();
  Timeseries.add ts ~at:1.0 ();
  Alcotest.(check int) "two rejected" 2 (Timeseries.out_of_range ts);
  Alcotest.(check (float 1e-9)) "one counted" 1.0 (Timeseries.total ts)

let test_ts_peak_and_active () =
  let ts = Timeseries.create ~bucket:1.0 ~horizon:5.0 in
  Alcotest.(check bool) "no peak when empty" true (Timeseries.peak ts = None);
  Alcotest.(check bool) "no last-active when empty" true
    (Timeseries.last_active ts = None);
  Timeseries.add ts ~at:1.5 ~value:2.0 ();
  Timeseries.add ts ~at:3.5 ~value:5.0 ();
  (match Timeseries.peak ts with
  | Some (start, v) ->
      Alcotest.(check (float 1e-9)) "peak start" 3.0 start;
      Alcotest.(check (float 1e-9)) "peak value" 5.0 v
  | None -> Alcotest.fail "expected a peak");
  Alcotest.(check (option (float 1e-9))) "last active" (Some 3.0)
    (Timeseries.last_active ts);
  Alcotest.(check (option (float 1e-9))) "first active after 2" (Some 3.0)
    (Timeseries.first_active_after ts 2.0);
  Alcotest.(check (option (float 1e-9))) "first active after 0" (Some 1.0)
    (Timeseries.first_active_after ts 0.0);
  Alcotest.(check (option (float 1e-9))) "last active after 4" None
    (Timeseries.last_active_after ts 4.0)

let test_ts_rows_and_validation () =
  let ts = Timeseries.create ~bucket:2.0 ~horizon:4.0 in
  Timeseries.add ts ~at:2.5 ();
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "rows"
    [ (0.0, 0.0); (2.0, 1.0) ] (Timeseries.to_rows ts);
  (match Timeseries.create ~bucket:0.0 ~horizon:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bucket accepted");
  match Timeseries.value ts 9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad index accepted"

let () =
  Alcotest.run "metrics"
    [
      ( "table",
        [
          Alcotest.test_case "rendering" `Quick test_table_rendering;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "cell arity" `Quick test_table_cell_count_checked;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "cells" `Quick test_cells;
          Alcotest.test_case "empty columns" `Quick test_empty_columns_rejected;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "bucketing" `Quick test_ts_bucketing;
          Alcotest.test_case "out of range" `Quick test_ts_out_of_range;
          Alcotest.test_case "peak and active" `Quick test_ts_peak_and_active;
          Alcotest.test_case "rows and validation" `Quick test_ts_rows_and_validation;
        ] );
    ]
