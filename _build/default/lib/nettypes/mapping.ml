type rloc = { rloc_addr : Ipv4.addr; priority : int; weight : int }

let rloc ?(priority = 1) ?(weight = 100) rloc_addr = { rloc_addr; priority; weight }

let pp_rloc ppf r =
  Format.fprintf ppf "%a(p%d/w%d)" Ipv4.pp_addr r.rloc_addr r.priority r.weight

type t = { eid_prefix : Ipv4.prefix; rlocs : rloc list; ttl : float }

let create ~eid_prefix ~rlocs ~ttl =
  if rlocs = [] then invalid_arg "Mapping.create: empty RLOC list";
  if ttl <= 0.0 then invalid_arg "Mapping.create: non-positive TTL";
  { eid_prefix; rlocs; ttl }

let pp ppf m =
  Format.fprintf ppf "%a -> [%a] ttl=%gs" Ipv4.pp_prefix m.eid_prefix
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_rloc)
    m.rlocs m.ttl

let covers m addr = Ipv4.prefix_mem m.eid_prefix addr

let best_rlocs m =
  let best_priority =
    List.fold_left (fun acc r -> Stdlib.min acc r.priority) max_int m.rlocs
  in
  List.filter (fun r -> r.priority = best_priority) m.rlocs

let select_rloc m ~hash =
  let candidates = best_rlocs m in
  let total = List.fold_left (fun acc r -> acc + Stdlib.max 1 r.weight) 0 candidates in
  let target = (hash land max_int) mod total in
  let rec pick acc = function
    | [] -> assert false
    | [ last ] -> ignore acc; last
    | r :: rest ->
        let acc = acc + Stdlib.max 1 r.weight in
        if target < acc then r else pick acc rest
  in
  pick 0 candidates

let wire_size m = 12 + (12 * List.length m.rlocs)

type flow_entry = {
  src_eid : Ipv4.addr;
  dst_eid : Ipv4.addr;
  src_rloc : Ipv4.addr;
  dst_rloc : Ipv4.addr;
}

let pp_flow_entry ppf e =
  Format.fprintf ppf "(%a -> %a via %a => %a)" Ipv4.pp_addr e.src_eid
    Ipv4.pp_addr e.dst_eid Ipv4.pp_addr e.src_rloc Ipv4.pp_addr e.dst_rloc

let flow_entry_wire_size = 16
