(** Flow identities.

    A flow is one transport connection between two end-hosts, identified
    by the classic five-tuple.  [hash] gives the stable value used for
    deterministic RLOC load-sharing and round-robin tie-breaking. *)

type proto = Tcp | Udp

val pp_proto : Format.formatter -> proto -> unit

type t = {
  src : Ipv4.addr;  (** source EID *)
  dst : Ipv4.addr;  (** destination EID *)
  src_port : int;
  dst_port : int;
  proto : proto;
}

val create :
  src:Ipv4.addr -> dst:Ipv4.addr -> ?src_port:int -> ?dst_port:int ->
  ?proto:proto -> unit -> t
(** Defaults: [src_port = 0], [dst_port = 80], [proto = Tcp]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val reverse : t -> t
(** The same connection seen from the responder's side. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
