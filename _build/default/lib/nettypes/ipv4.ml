type addr = int

let max_addr = 0xFFFFFFFF

let addr_of_int i =
  if i < 0 || i > max_addr then invalid_arg "Ipv4.addr_of_int: out of range";
  i

let addr_to_int a = a

let addr_of_string s =
  let fail () = invalid_arg ("Ipv4.addr_of_string: malformed " ^ s) in
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> v
        | Some _ | None -> fail ()
      in
      (octet a lsl 24) lor (octet b lsl 16) lor (octet c lsl 8) lor octet d
  | _ -> fail ()

let addr_to_string a =
  Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF) (a land 0xFF)

let addr_equal = Int.equal
let addr_compare = Int.compare
let pp_addr ppf a = Format.pp_print_string ppf (addr_to_string a)

let addr_succ a =
  if a >= max_addr then invalid_arg "Ipv4.addr_succ: address space exhausted";
  a + 1

let addr_offset a k =
  let v = a + k in
  if v < 0 || v > max_addr then invalid_arg "Ipv4.addr_offset: out of range";
  v

type prefix = { network : int; length : int }

let mask_of_length len = if len = 0 then 0 else max_addr lsl (32 - len) land max_addr

let prefix a len =
  if len < 0 || len > 32 then invalid_arg "Ipv4.prefix: length out of [0, 32]";
  { network = a land mask_of_length len; length = len }

let prefix_of_string s =
  match String.split_on_char '/' s with
  | [ a; l ] -> (
      match int_of_string_opt l with
      | Some len -> prefix (addr_of_string a) len
      | None -> invalid_arg ("Ipv4.prefix_of_string: malformed " ^ s))
  | _ -> invalid_arg ("Ipv4.prefix_of_string: malformed " ^ s)

let prefix_to_string p =
  Printf.sprintf "%s/%d" (addr_to_string p.network) p.length

let pp_prefix ppf p = Format.pp_print_string ppf (prefix_to_string p)
let prefix_equal p q = p.network = q.network && p.length = q.length

let prefix_compare p q =
  match Int.compare p.network q.network with
  | 0 -> Int.compare p.length q.length
  | c -> c

let prefix_network p = p.network
let prefix_length p = p.length
let prefix_mem p a = a land mask_of_length p.length = p.network

let prefix_subsumes outer inner =
  outer.length <= inner.length && prefix_mem outer inner.network

let prefix_size p = 1 lsl (32 - p.length)

let prefix_nth p k =
  if k < 0 || k >= prefix_size p then
    invalid_arg "Ipv4.prefix_nth: index outside prefix";
  p.network + k
