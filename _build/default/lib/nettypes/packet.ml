type segment = Syn | Syn_ack | Ack | Data of int | Fin

let pp_segment ppf = function
  | Syn -> Format.pp_print_string ppf "SYN"
  | Syn_ack -> Format.pp_print_string ppf "SYN/ACK"
  | Ack -> Format.pp_print_string ppf "ACK"
  | Data n -> Format.fprintf ppf "DATA(%dB)" n
  | Fin -> Format.pp_print_string ppf "FIN"

let segment_bytes = function
  | Syn | Syn_ack | Ack | Fin -> 0
  | Data n -> n

type encap = { outer_src : Ipv4.addr; outer_dst : Ipv4.addr }

type t = {
  id : int;
  flow : Flow.t;
  segment : segment;
  sent_at : float;
  encap : encap option;
}

let next_id = ref 0

let make ~flow ~segment ~sent_at =
  incr next_id;
  { id = !next_id; flow; segment; sent_at; encap = None }

let encapsulate t ~outer_src ~outer_dst =
  match t.encap with
  | Some _ -> invalid_arg "Packet.encapsulate: already encapsulated"
  | None -> { t with encap = Some { outer_src; outer_dst } }

let decapsulate t =
  match t.encap with
  | None -> invalid_arg "Packet.decapsulate: not encapsulated"
  | Some _ -> { t with encap = None }

let is_encapsulated t = t.encap <> None

let inner_header_bytes = 40 (* IP + TCP *)
let outer_header_bytes = 36 (* outer IP (20) + UDP (8) + LISP header (8) *)

let size t =
  inner_header_bytes + segment_bytes t.segment
  + match t.encap with Some _ -> outer_header_bytes | None -> 0

let pp ppf t =
  (match t.encap with
  | Some e ->
      Format.fprintf ppf "[%a => %a | " Ipv4.pp_addr e.outer_src Ipv4.pp_addr
        e.outer_dst
  | None -> Format.pp_print_string ppf "[");
  Format.fprintf ppf "#%d %a %a]" t.id Flow.pp t.flow pp_segment t.segment
