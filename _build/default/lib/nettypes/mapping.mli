(** EID-to-RLOC mappings.

    A mapping binds an EID prefix to the set of RLOCs (border-router
    locators) through which the prefix is reachable, with LISP's
    priority/weight selection semantics and a time-to-live.  The
    PCE control plane additionally installs {!flow_entry} records — the
    per-flow tuple [(E_S, E_D, RLOC_S, RLOC_D)] of the paper's step 7b,
    which supports two independent one-way tunnels. *)

type rloc = {
  rloc_addr : Ipv4.addr;  (** globally routable locator *)
  priority : int;  (** lower is preferred, per draft-farinacci-lisp *)
  weight : int;  (** load-share among equal-priority RLOCs *)
}

val rloc : ?priority:int -> ?weight:int -> Ipv4.addr -> rloc
(** Defaults: [priority = 1], [weight = 100]. *)

val pp_rloc : Format.formatter -> rloc -> unit

type t = {
  eid_prefix : Ipv4.prefix;  (** the EIDs this record covers *)
  rlocs : rloc list;  (** candidate locators, never empty *)
  ttl : float;  (** seconds of validity once cached *)
}

val create : eid_prefix:Ipv4.prefix -> rlocs:rloc list -> ttl:float -> t
(** Raises [Invalid_argument] on an empty RLOC list or non-positive
    TTL. *)

val pp : Format.formatter -> t -> unit

val covers : t -> Ipv4.addr -> bool
(** Does the mapping's EID prefix contain the address? *)

val best_rlocs : t -> rloc list
(** The RLOCs of minimal priority (the LISP selection set). *)

val select_rloc : t -> hash:int -> rloc
(** Deterministic weighted choice among {!best_rlocs}, keyed by a flow
    hash so a given flow always picks the same locator. *)

val wire_size : t -> int
(** Bytes of a map-reply record carrying this mapping (approximation of
    the LISP record format: 12-byte header + 12 bytes per RLOC). *)

type flow_entry = {
  src_eid : Ipv4.addr;  (** E_S *)
  dst_eid : Ipv4.addr;  (** E_D *)
  src_rloc : Ipv4.addr;  (** RLOC_S chosen by the local IRC for *inbound* traffic *)
  dst_rloc : Ipv4.addr;  (** RLOC_D toward the destination domain *)
}
(** The paper's per-flow mapping tuple: an ITR encapsulating for this
    flow uses [src_rloc] as the outer source even when that differs from
    its own address, directing the reverse tunnel through a different
    border router. *)

val pp_flow_entry : Format.formatter -> flow_entry -> unit
val flow_entry_wire_size : int
