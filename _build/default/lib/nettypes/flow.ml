type proto = Tcp | Udp

let pp_proto ppf = function
  | Tcp -> Format.pp_print_string ppf "tcp"
  | Udp -> Format.pp_print_string ppf "udp"

module T = struct
  type t = {
    src : Ipv4.addr;
    dst : Ipv4.addr;
    src_port : int;
    dst_port : int;
    proto : proto;
  }

  let compare a b =
    let c = Ipv4.addr_compare a.src b.src in
    if c <> 0 then c
    else
      let c = Ipv4.addr_compare a.dst b.dst in
      if c <> 0 then c
      else
        let c = Int.compare a.src_port b.src_port in
        if c <> 0 then c
        else
          let c = Int.compare a.dst_port b.dst_port in
          if c <> 0 then c else Stdlib.compare a.proto b.proto
end

include T

let create ~src ~dst ?(src_port = 0) ?(dst_port = 80) ?(proto = Tcp) () =
  { src; dst; src_port; dst_port; proto }

let equal a b = compare a b = 0

let hash t =
  let mix acc x = (acc * 0x01000193) lxor x land max_int in
  List.fold_left mix 0x811C9DC5
    [ Ipv4.addr_to_int t.src; Ipv4.addr_to_int t.dst; t.src_port; t.dst_port;
      (match t.proto with Tcp -> 6 | Udp -> 17) ]

let reverse t =
  { src = t.dst; dst = t.src; src_port = t.dst_port; dst_port = t.src_port;
    proto = t.proto }

let pp ppf t =
  Format.fprintf ppf "%a:%d -> %a:%d/%a" Ipv4.pp_addr t.src t.src_port
    Ipv4.pp_addr t.dst t.dst_port pp_proto t.proto

module Map = Map.Make (T)
module Set = Set.Make (T)
