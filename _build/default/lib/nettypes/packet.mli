(** Data-plane packets.

    A packet carries a TCP-model segment between two EIDs.  A LISP ITR
    wraps it in an outer locator header ({!encapsulate}); the ETR strips
    it ({!decapsulate}).  Sizes follow the usual header accounting so the
    byte counters feeding link utilisation are realistic. *)

type segment =
  | Syn
  | Syn_ack
  | Ack
  | Data of int  (** payload bytes *)
  | Fin

val pp_segment : Format.formatter -> segment -> unit
val segment_bytes : segment -> int
(** Payload bytes carried by the segment (0 except for [Data]). *)

type encap = { outer_src : Ipv4.addr; outer_dst : Ipv4.addr }
(** LISP outer header: RLOC-to-RLOC. *)

type t = {
  id : int;  (** unique per {!make} call, for tracing *)
  flow : Flow.t;
  segment : segment;
  sent_at : float;  (** emission time at the source host *)
  encap : encap option;  (** present between ITR and ETR *)
}

val make : flow:Flow.t -> segment:segment -> sent_at:float -> t
(** Fresh packet with a globally unique id and no encapsulation. *)

val encapsulate : t -> outer_src:Ipv4.addr -> outer_dst:Ipv4.addr -> t
(** Raises [Invalid_argument] if the packet is already encapsulated. *)

val decapsulate : t -> t
(** Raises [Invalid_argument] if the packet is not encapsulated. *)

val is_encapsulated : t -> bool

val size : t -> int
(** On-wire bytes: 20 (IP) + 20 (TCP) + payload, plus 36 bytes of
    IP + UDP + LISP outer headers when encapsulated. *)

val pp : Format.formatter -> t -> unit
