lib/nettypes/flow.ml: Format Int Ipv4 List Map Set Stdlib
