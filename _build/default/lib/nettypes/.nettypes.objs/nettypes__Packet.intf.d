lib/nettypes/packet.mli: Flow Format Ipv4
