lib/nettypes/mapping.mli: Format Ipv4
