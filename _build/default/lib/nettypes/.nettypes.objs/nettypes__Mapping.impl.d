lib/nettypes/mapping.ml: Format Ipv4 List Stdlib
