lib/nettypes/ipv4.ml: Format Int Printf String
