lib/nettypes/flow.mli: Format Ipv4 Map Set
