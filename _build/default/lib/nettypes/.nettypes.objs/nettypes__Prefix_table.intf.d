lib/nettypes/prefix_table.mli: Ipv4
