lib/nettypes/ipv4.mli: Format
