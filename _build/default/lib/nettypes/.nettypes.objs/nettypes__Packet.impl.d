lib/nettypes/packet.ml: Flow Format Ipv4
