lib/nettypes/prefix_table.ml: Ipv4 List Option
