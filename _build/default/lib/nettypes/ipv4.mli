(** IPv4 addresses and CIDR prefixes.

    Addresses are stored as non-negative [int]s (32-bit value space), so
    they are cheap to hash, compare and use as map keys.  LISP reuses the
    IPv4 space for both EIDs and RLOCs; the distinction is carried by the
    wrapper types in {!Mapping}. *)

type addr = private int
(** An IPv4 address.  The [private] row keeps construction behind the
    smart constructors below so invalid values cannot appear. *)

val addr_of_int : int -> addr
(** Raises [Invalid_argument] outside [\[0, 2^32)]. *)

val addr_to_int : addr -> int

val addr_of_string : string -> addr
(** Dotted quad, e.g. ["10.1.2.3"].  Raises [Invalid_argument] on
    malformed input. *)

val addr_to_string : addr -> string
val addr_equal : addr -> addr -> bool
val addr_compare : addr -> addr -> int
val pp_addr : Format.formatter -> addr -> unit

val addr_succ : addr -> addr
(** Next address; raises [Invalid_argument] at the top of the space. *)

val addr_offset : addr -> int -> addr
(** [addr_offset a k] is [a + k]; bounds-checked. *)

type prefix
(** A CIDR prefix: network address plus mask length, canonicalised so the
    host bits are zero. *)

val prefix : addr -> int -> prefix
(** [prefix a len] with [len] in [\[0, 32\]]; host bits of [a] are
    masked off. *)

val prefix_of_string : string -> prefix
(** ["10.0.0.0/8"] syntax. *)

val prefix_to_string : prefix -> string
val pp_prefix : Format.formatter -> prefix -> unit
val prefix_equal : prefix -> prefix -> bool
val prefix_compare : prefix -> prefix -> int

val prefix_network : prefix -> addr
val prefix_length : prefix -> int

val prefix_mem : prefix -> addr -> bool
(** Does the address fall inside the prefix? *)

val prefix_subsumes : prefix -> prefix -> bool
(** [prefix_subsumes outer inner]: is every address of [inner] inside
    [outer]? *)

val prefix_nth : prefix -> int -> addr
(** [prefix_nth p k] is the [k]-th address of the prefix; bounds-checked
    against the prefix size. *)

val prefix_size : prefix -> int
(** Number of addresses covered (capped at [max_int] for /0 on 32-bit —
    not a concern on 64-bit hosts). *)
