(** Model of the LISP-ALT overlay.

    ALT routes map-requests over a GRE/BGP overlay organised as an
    aggregation hierarchy of the EID space.  We model the hierarchy as a
    complete [fanout]-ary tree with one leaf per domain: a request
    climbs from the source leaf to the lowest common ancestor and
    descends to the destination leaf, paying a per-hop overlay latency
    (each overlay hop is itself a tunnel across the internet, so the
    default 20 ms per hop is conservative).  The map-reply returns
    directly over the underlay, as the ALT draft specifies. *)

type t

val create : domains:int -> ?fanout:int -> ?hop_latency:float -> unit -> t
(** [fanout] defaults to 2, [hop_latency] to 20 ms.  [domains] must be
    positive. *)

val depth : t -> int
(** Leaf depth of the aggregation tree. *)

val fanout : t -> int
val hop_latency : t -> float

val request_hops : t -> src:int -> dst:int -> int
(** Overlay hops from the leaf of domain [src] to the leaf of domain
    [dst] (0 when [src = dst]). *)

val request_latency : t -> src:int -> dst:int -> float
(** Hops times per-hop latency. *)

val mean_request_latency : t -> float
(** Average over all ordered distinct leaf pairs — used for reporting
    expected resolution cost. *)

type usage = { mutable requests : int; mutable hops_total : int }

val usage : t -> usage
val note_request : t -> src:int -> dst:int -> unit
(** Record a request for the usage counters. *)
