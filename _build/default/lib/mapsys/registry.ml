open Nettypes

type t = {
  by_prefix : (int * Mapping.t) Prefix_table.t; (* domain id with mapping *)
  by_domain : Mapping.t array;
}

let create ~internet ~ttl =
  let domains = internet.Topology.Builder.domains in
  let by_prefix = Prefix_table.create () in
  let by_domain =
    Array.map (fun d -> Topology.Domain.advertised_mapping d ~ttl) domains
  in
  Array.iteri
    (fun i m -> Prefix_table.add by_prefix m.Mapping.eid_prefix (i, m))
    by_domain;
  { by_prefix; by_domain }

let mapping_for_eid t eid = Option.map snd (Prefix_table.lookup_value t.by_prefix eid)

let mapping_of_domain t id =
  if id < 0 || id >= Array.length t.by_domain then
    invalid_arg "Registry.mapping_of_domain: unknown domain";
  t.by_domain.(id)

let update_mapping t id mapping =
  if id < 0 || id >= Array.length t.by_domain then
    invalid_arg "Registry.update_mapping: unknown domain";
  Prefix_table.remove t.by_prefix t.by_domain.(id).Mapping.eid_prefix;
  t.by_domain.(id) <- mapping;
  Prefix_table.add t.by_prefix mapping.Mapping.eid_prefix (id, mapping)

let authoritative_rloc mapping =
  match Mapping.best_rlocs mapping with
  | r :: _ -> r.Mapping.rloc_addr
  | [] -> assert false

let size t = Array.length t.by_domain

let total_wire_bytes t =
  Wire.Codec.size
    (Wire.Codec.Database_push { mappings = Array.to_list t.by_domain })

let iter t ~f = Array.iteri f t.by_domain
