(** The authoritative EID-to-RLOC database.

    Every domain registers its advertised mapping here; the mapping
    systems differ only in {e how} this ground truth reaches the ITRs
    (pulled over ALT, pushed NERD-style, piggybacked by the PCE), so one
    shared registry keeps the comparison honest. *)

type t

val create : internet:Topology.Builder.t -> ttl:float -> t
(** Registers the advertised mapping of every domain in the internet
    with the given mapping TTL. *)

val mapping_for_eid : t -> Nettypes.Ipv4.addr -> Nettypes.Mapping.t option
(** Longest-prefix match over registered EID prefixes. *)

val mapping_of_domain : t -> int -> Nettypes.Mapping.t
(** By domain id; raises [Invalid_argument] for an unknown id. *)

val update_mapping : t -> int -> Nettypes.Mapping.t -> unit
(** Replace a domain's registration (mapping churn experiments). *)

val authoritative_rloc : Nettypes.Mapping.t -> Nettypes.Ipv4.addr
(** The locator of the map-server-like ETR that answers map-requests for
    a mapping (its best RLOC, deterministically the first). *)

val size : t -> int
(** Number of registered mappings. *)

val total_wire_bytes : t -> int
(** Encoded size of a {!Wire.Codec.Database_push} carrying the full
    database — the cost of a NERD-style full push to one router. *)

val iter : t -> f:(int -> Nettypes.Mapping.t -> unit) -> unit
(** Visit registrations in ascending domain-id order. *)
