(** Symmetric-return bookkeeping (LISP gleaning).

    Plain LISP reuses a flow's forward ETR as the reverse-direction ITR
    to avoid a second mapping resolution — the inbound-TE limitation the
    paper attacks.  This table records, per domain, which border received
    traffic from a remote EID, so the baseline control planes can route
    the reverse flow out through that same border. *)

type t

val create : unit -> t

val note :
  t -> domain:int -> remote_eid:Nettypes.Ipv4.addr -> border:Topology.Domain.border -> unit
(** Remember that [domain] last heard from [remote_eid] through
    [border]. *)

val lookup :
  t -> domain:int -> remote_eid:Nettypes.Ipv4.addr -> Topology.Domain.border option

val entries : t -> int
val clear : t -> unit
