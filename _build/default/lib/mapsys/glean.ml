type t = (int * int, Topology.Domain.border) Hashtbl.t

let create () = Hashtbl.create 256

let note t ~domain ~remote_eid ~border =
  Hashtbl.replace t (domain, Nettypes.Ipv4.addr_to_int remote_eid) border

let lookup t ~domain ~remote_eid =
  Hashtbl.find_opt t (domain, Nettypes.Ipv4.addr_to_int remote_eid)

let entries = Hashtbl.length
let clear = Hashtbl.reset
