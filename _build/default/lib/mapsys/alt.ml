type usage = { mutable requests : int; mutable hops_total : int }

type t = {
  domains : int;
  fanout : int;
  hop_latency : float;
  depth : int;
  usage : usage;
}

let create ~domains ?(fanout = 2) ?(hop_latency = 0.020) () =
  if domains <= 0 then invalid_arg "Alt.create: domains must be positive";
  if fanout < 2 then invalid_arg "Alt.create: fanout must be at least 2";
  if hop_latency <= 0.0 then invalid_arg "Alt.create: non-positive hop latency";
  let rec depth_for capacity d = if capacity >= domains then d else depth_for (capacity * fanout) (d + 1) in
  let depth = depth_for 1 0 in
  { domains; fanout; hop_latency; depth; usage = { requests = 0; hops_total = 0 } }

let depth t = t.depth
let fanout t = t.fanout
let hop_latency t = t.hop_latency
let usage t = t.usage

let check_leaf t i name =
  if i < 0 || i >= t.domains then
    invalid_arg (Printf.sprintf "Alt.%s: leaf %d out of range" name i)

(* Hops = 2 * (depth - depth of lowest common ancestor).  The LCA depth
   is the length of the common prefix of the two leaves' base-[fanout]
   digit strings, most significant digit first. *)
let request_hops t ~src ~dst =
  check_leaf t src "request_hops";
  check_leaf t dst "request_hops";
  if src = dst then 0
  else begin
    let digits leaf =
      let d = Array.make t.depth 0 in
      let rec fill i v =
        if i >= 0 then begin
          d.(i) <- v mod t.fanout;
          fill (i - 1) (v / t.fanout)
        end
      in
      fill (t.depth - 1) leaf;
      d
    in
    let a = digits src and b = digits dst in
    let rec common i = if i < t.depth && a.(i) = b.(i) then common (i + 1) else i in
    2 * (t.depth - common 0)
  end

let request_latency t ~src ~dst =
  float_of_int (request_hops t ~src ~dst) *. t.hop_latency

let mean_request_latency t =
  if t.domains < 2 then 0.0
  else begin
    let total = ref 0 in
    let pairs = ref 0 in
    for i = 0 to t.domains - 1 do
      for j = 0 to t.domains - 1 do
        if i <> j then begin
          total := !total + request_hops t ~src:i ~dst:j;
          incr pairs
        end
      done
    done;
    float_of_int !total /. float_of_int !pairs *. t.hop_latency
  end

let note_request t ~src ~dst =
  t.usage.requests <- t.usage.requests + 1;
  t.usage.hops_total <- t.usage.hops_total + request_hops t ~src ~dst
