lib/mapsys/glean.ml: Hashtbl Nettypes Topology
