lib/mapsys/alt.ml: Array Printf
