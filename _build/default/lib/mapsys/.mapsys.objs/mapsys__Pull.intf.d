lib/mapsys/pull.mli: Alt Cp_stats Lispdp Netsim Registry Topology
