lib/mapsys/msmr.ml: Alt Array Cp_stats Lispdp Pull Registry Topology Wire
