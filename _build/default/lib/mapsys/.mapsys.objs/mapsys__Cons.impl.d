lib/mapsys/cons.ml: Alt Hashtbl Pull
