lib/mapsys/cp_stats.ml: Format
