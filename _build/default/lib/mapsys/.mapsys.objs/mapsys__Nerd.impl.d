lib/mapsys/nerd.ml: Array Cp_stats Flow Lispdp Mapping Netsim Nettypes Registry Topology Wire
