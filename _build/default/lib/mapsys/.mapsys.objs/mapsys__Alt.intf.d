lib/mapsys/alt.mli:
