lib/mapsys/nerd.mli: Cp_stats Lispdp Netsim Nettypes Registry Topology
