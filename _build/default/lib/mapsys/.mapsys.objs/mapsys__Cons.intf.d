lib/mapsys/cons.mli: Alt Cp_stats Lispdp Netsim Registry Topology
