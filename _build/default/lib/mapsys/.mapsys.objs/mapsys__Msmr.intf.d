lib/mapsys/msmr.mli: Alt Cp_stats Lispdp Netsim Pull Registry Topology
