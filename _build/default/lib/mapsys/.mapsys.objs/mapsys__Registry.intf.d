lib/mapsys/registry.mli: Nettypes Topology
