lib/mapsys/cp_stats.mli: Format
