lib/mapsys/glean.mli: Nettypes Topology
