lib/mapsys/registry.ml: Array Mapping Nettypes Option Prefix_table Topology Wire
