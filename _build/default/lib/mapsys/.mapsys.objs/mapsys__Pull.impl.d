lib/mapsys/pull.ml: Alt Array Cp_stats Float Flow Glean Hashtbl Ipv4 Lispdp List Mapping Netsim Nettypes Option Packet Registry Topology Wire
