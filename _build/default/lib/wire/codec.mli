(** Wire formats of every control-plane message in the system.

    The LISP-style messages (map-request / map-reply) follow the shape of
    draft-farinacci-lisp-08's record format; the PCE messages are the
    UDP payloads of the paper's steps 6, 7b and the reverse multicast,
    plus the failover update of the extension.  The byte accounting in
    the control planes uses {!size}, so experiment T5 reports real
    encoded sizes rather than guesses.

    Encodings are self-describing (1-byte tag) and round-trip exactly:
    [decode (encode m) = Ok m]. *)

type message =
  | Map_request of {
      nonce : int;  (** 32-bit request/reply correlator *)
      source_rloc : Nettypes.Ipv4.addr;  (** the requesting ITR *)
      eid : Nettypes.Ipv4.addr;  (** destination being resolved *)
    }
  | Map_reply of { nonce : int; mapping : Nettypes.Mapping.t }
  | Encapsulated_answer of {
      qname : string;  (** the DNS question, FQDN *)
      eid : Nettypes.Ipv4.addr;  (** E_D carried in the answer *)
      rloc : Nettypes.Ipv4.addr;  (** RLOC_D chosen by PCE_D *)
      pce : Nettypes.Ipv4.addr;  (** PCE_D's own address (learned by PCE_S) *)
    }  (** the paper's step 6: the answer forwarded on port P *)
  | Itr_config of { entry : Nettypes.Mapping.flow_entry }
      (** step 7b: one tuple pushed to one ITR *)
  | Reverse_push of { entry : Nettypes.Mapping.flow_entry }
      (** the ETR multicast completing the two-way resolution *)
  | Failover_update of {
      qname : string;
      eid : Nettypes.Ipv4.addr;
      rloc : Nettypes.Ipv4.addr;  (** replacement ingress locator *)
    }  (** PCE-to-PCE repair after an uplink failure *)
  | Database_push of { mappings : Nettypes.Mapping.t list }
      (** a NERD-style (partial) database transfer *)

val equal : message -> message -> bool
(** Structural equality with float TTLs compared at the codec's
    millisecond resolution. *)

val pp : Format.formatter -> message -> unit

val encode : message -> bytes

type error =
  | Truncated  (** input ended mid-field *)
  | Bad_tag of int  (** unknown message type *)
  | Trailing_bytes of int  (** well-formed message followed by junk *)
  | Malformed of string  (** semantic violation, e.g. empty RLOC list *)

val pp_error : Format.formatter -> error -> unit

val decode : bytes -> (message, error) result

val size : message -> int
(** [size m = Bytes.length (encode m)], computed without allocating the
    encoding. *)
