lib/wire/codec.ml: Buf Format Ipv4 List Mapping Nettypes Printf String
