lib/wire/buf.ml: Bytes Char Nettypes Stdlib String
