lib/wire/codec.mli: Format Nettypes
