lib/wire/buf.mli: Nettypes
