(** Bounds-checked binary readers and writers.

    The control-plane codecs ({!Codec}) are built on these cursors.
    Network byte order (big-endian) throughout. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Growable buffer, initial [capacity] 64 bytes. *)

  val length : t -> int
  val contents : t -> bytes

  val u8 : t -> int -> unit
  (** Raises [Invalid_argument] outside [\[0, 255\]]. *)

  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  (** Raises [Invalid_argument] outside [\[0, 2^32)]. *)

  val addr : t -> Nettypes.Ipv4.addr -> unit
  (** Four bytes. *)

  val string : t -> string -> unit
  (** u16 length prefix + bytes; the string must be under 65 536 bytes. *)
end

module Reader : sig
  type t

  exception Truncated
  (** Raised by every reading operation that would run past the end. *)

  val of_bytes : bytes -> t
  val remaining : t -> int
  val at_end : t -> bool

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val addr : t -> Nettypes.Ipv4.addr
  val string : t -> string
end
