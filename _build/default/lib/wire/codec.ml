open Nettypes

type message =
  | Map_request of { nonce : int; source_rloc : Ipv4.addr; eid : Ipv4.addr }
  | Map_reply of { nonce : int; mapping : Mapping.t }
  | Encapsulated_answer of {
      qname : string;
      eid : Ipv4.addr;
      rloc : Ipv4.addr;
      pce : Ipv4.addr;
    }
  | Itr_config of { entry : Mapping.flow_entry }
  | Reverse_push of { entry : Mapping.flow_entry }
  | Failover_update of { qname : string; eid : Ipv4.addr; rloc : Ipv4.addr }
  | Database_push of { mappings : Mapping.t list }

(* TTLs travel as u32 milliseconds. *)
let ttl_to_wire ttl =
  let ms = ttl *. 1000.0 in
  if ms < 0.0 then 0
  else if ms > 4294967295.0 then 0xFFFFFFFF
  else int_of_float ms

let ttl_of_wire ms = float_of_int ms /. 1000.0

let tag_of = function
  | Map_request _ -> 1
  | Map_reply _ -> 2
  | Encapsulated_answer _ -> 3
  | Itr_config _ -> 4
  | Reverse_push _ -> 5
  | Failover_update _ -> 6
  | Database_push _ -> 7

let equal a b =
  let norm = function
    | Map_reply { nonce; mapping } ->
        Map_reply
          { nonce;
            mapping = { mapping with Mapping.ttl = ttl_of_wire (ttl_to_wire mapping.Mapping.ttl) } }
    | Database_push { mappings } ->
        Database_push
          { mappings =
              List.map
                (fun m -> { m with Mapping.ttl = ttl_of_wire (ttl_to_wire m.Mapping.ttl) })
                mappings }
    | ( Map_request _ | Encapsulated_answer _ | Itr_config _ | Reverse_push _
      | Failover_update _ ) as m ->
        m
  in
  norm a = norm b

let pp ppf = function
  | Map_request { nonce; source_rloc; eid } ->
      Format.fprintf ppf "map-request{nonce=%d; from=%a; eid=%a}" nonce
        Ipv4.pp_addr source_rloc Ipv4.pp_addr eid
  | Map_reply { nonce; mapping } ->
      Format.fprintf ppf "map-reply{nonce=%d; %a}" nonce Mapping.pp mapping
  | Encapsulated_answer { qname; eid; rloc; pce } ->
      Format.fprintf ppf "encap-answer{%s; %a -> %a; pce=%a}" qname Ipv4.pp_addr
        eid Ipv4.pp_addr rloc Ipv4.pp_addr pce
  | Itr_config { entry } ->
      Format.fprintf ppf "itr-config{%a}" Mapping.pp_flow_entry entry
  | Reverse_push { entry } ->
      Format.fprintf ppf "reverse-push{%a}" Mapping.pp_flow_entry entry
  | Failover_update { qname; eid; rloc } ->
      Format.fprintf ppf "failover{%s; %a -> %a}" qname Ipv4.pp_addr eid
        Ipv4.pp_addr rloc
  | Database_push { mappings } ->
      Format.fprintf ppf "db-push{%d mappings}" (List.length mappings)

let write_rloc w (r : Mapping.rloc) =
  Buf.Writer.addr w r.Mapping.rloc_addr;
  Buf.Writer.u8 w r.Mapping.priority;
  Buf.Writer.u8 w r.Mapping.weight

let write_mapping w (m : Mapping.t) =
  Buf.Writer.addr w (Ipv4.prefix_network m.Mapping.eid_prefix);
  Buf.Writer.u8 w (Ipv4.prefix_length m.Mapping.eid_prefix);
  Buf.Writer.u32 w (ttl_to_wire m.Mapping.ttl);
  Buf.Writer.u8 w (List.length m.Mapping.rlocs);
  List.iter (write_rloc w) m.Mapping.rlocs

let write_entry w (e : Mapping.flow_entry) =
  Buf.Writer.addr w e.Mapping.src_eid;
  Buf.Writer.addr w e.Mapping.dst_eid;
  Buf.Writer.addr w e.Mapping.src_rloc;
  Buf.Writer.addr w e.Mapping.dst_rloc

let encode message =
  let w = Buf.Writer.create () in
  Buf.Writer.u8 w (tag_of message);
  (match message with
  | Map_request { nonce; source_rloc; eid } ->
      Buf.Writer.u32 w nonce;
      Buf.Writer.addr w source_rloc;
      Buf.Writer.addr w eid
  | Map_reply { nonce; mapping } ->
      Buf.Writer.u32 w nonce;
      write_mapping w mapping
  | Encapsulated_answer { qname; eid; rloc; pce } ->
      Buf.Writer.string w qname;
      Buf.Writer.addr w eid;
      Buf.Writer.addr w rloc;
      Buf.Writer.addr w pce
  | Itr_config { entry } | Reverse_push { entry } -> write_entry w entry
  | Failover_update { qname; eid; rloc } ->
      Buf.Writer.string w qname;
      Buf.Writer.addr w eid;
      Buf.Writer.addr w rloc
  | Database_push { mappings } ->
      Buf.Writer.u16 w (List.length mappings);
      List.iter (write_mapping w) mappings);
  Buf.Writer.contents w

type error =
  | Truncated
  | Bad_tag of int
  | Trailing_bytes of int
  | Malformed of string

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated message"
  | Bad_tag t -> Format.fprintf ppf "unknown message tag %d" t
  | Trailing_bytes n -> Format.fprintf ppf "%d trailing bytes" n
  | Malformed reason -> Format.fprintf ppf "malformed message: %s" reason

exception Bad of string

let read_rloc r =
  let rloc_addr = Buf.Reader.addr r in
  let priority = Buf.Reader.u8 r in
  let weight = Buf.Reader.u8 r in
  { Mapping.rloc_addr; priority; weight }

let read_mapping r =
  let network = Buf.Reader.addr r in
  let length = Buf.Reader.u8 r in
  if length > 32 then raise (Bad "prefix length above 32");
  let ttl = ttl_of_wire (Buf.Reader.u32 r) in
  let count = Buf.Reader.u8 r in
  if count = 0 then raise (Bad "mapping with no RLOCs");
  let rlocs = List.init count (fun _ -> read_rloc r) in
  if ttl <= 0.0 then raise (Bad "mapping with zero TTL");
  Mapping.create ~eid_prefix:(Ipv4.prefix network length) ~rlocs ~ttl

let read_entry r =
  let src_eid = Buf.Reader.addr r in
  let dst_eid = Buf.Reader.addr r in
  let src_rloc = Buf.Reader.addr r in
  let dst_rloc = Buf.Reader.addr r in
  { Mapping.src_eid; dst_eid; src_rloc; dst_rloc }

let decode data =
  let r = Buf.Reader.of_bytes data in
  match
    let tag = Buf.Reader.u8 r in
    let message =
      match tag with
      | 1 ->
          let nonce = Buf.Reader.u32 r in
          let source_rloc = Buf.Reader.addr r in
          let eid = Buf.Reader.addr r in
          Map_request { nonce; source_rloc; eid }
      | 2 ->
          let nonce = Buf.Reader.u32 r in
          Map_reply { nonce; mapping = read_mapping r }
      | 3 ->
          let qname = Buf.Reader.string r in
          let eid = Buf.Reader.addr r in
          let rloc = Buf.Reader.addr r in
          let pce = Buf.Reader.addr r in
          Encapsulated_answer { qname; eid; rloc; pce }
      | 4 -> Itr_config { entry = read_entry r }
      | 5 -> Reverse_push { entry = read_entry r }
      | 6 ->
          let qname = Buf.Reader.string r in
          let eid = Buf.Reader.addr r in
          let rloc = Buf.Reader.addr r in
          Failover_update { qname; eid; rloc }
      | 7 ->
          let count = Buf.Reader.u16 r in
          Database_push { mappings = List.init count (fun _ -> read_mapping r) }
      | t -> raise (Bad (Printf.sprintf "tag:%d" t))
    in
    if Buf.Reader.at_end r then Ok message
    else Error (Trailing_bytes (Buf.Reader.remaining r))
  with
  | result -> result
  | exception Buf.Reader.Truncated -> Error Truncated
  | exception Bad reason ->
      if String.length reason > 4 && String.sub reason 0 4 = "tag:" then
        Error (Bad_tag (int_of_string (String.sub reason 4 (String.length reason - 4))))
      else Error (Malformed reason)

let mapping_size m = 4 + 1 + 4 + 1 + (6 * List.length m.Mapping.rlocs)

let size = function
  | Map_request _ -> 1 + 4 + 4 + 4
  | Map_reply { mapping; _ } -> 1 + 4 + mapping_size mapping
  | Encapsulated_answer { qname; _ } -> 1 + 2 + String.length qname + 12
  | Itr_config _ | Reverse_push _ -> 1 + 16
  | Failover_update { qname; _ } -> 1 + 2 + String.length qname + 8
  | Database_push { mappings } ->
      1 + 2 + List.fold_left (fun acc m -> acc + mapping_size m) 0 mappings
