module Writer = struct
  type t = { mutable data : bytes; mutable len : int }

  let create ?(capacity = 64) () =
    { data = Bytes.create (Stdlib.max 1 capacity); len = 0 }

  let length t = t.len
  let contents t = Bytes.sub t.data 0 t.len

  let ensure t extra =
    let needed = t.len + extra in
    if needed > Bytes.length t.data then begin
      let capacity = ref (Bytes.length t.data) in
      while !capacity < needed do
        capacity := !capacity * 2
      done;
      let bigger = Bytes.create !capacity in
      Bytes.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end

  let u8 t v =
    if v < 0 || v > 0xFF then invalid_arg "Wire.Writer.u8: out of range";
    ensure t 1;
    Bytes.unsafe_set t.data t.len (Char.unsafe_chr v);
    t.len <- t.len + 1

  let u16 t v =
    if v < 0 || v > 0xFFFF then invalid_arg "Wire.Writer.u16: out of range";
    u8 t (v lsr 8);
    u8 t (v land 0xFF)

  let u32 t v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.Writer.u32: out of range";
    u16 t (v lsr 16);
    u16 t (v land 0xFFFF)

  let addr t a = u32 t (Nettypes.Ipv4.addr_to_int a)

  let string t s =
    if String.length s > 0xFFFF then invalid_arg "Wire.Writer.string: too long";
    u16 t (String.length s);
    ensure t (String.length s);
    Bytes.blit_string s 0 t.data t.len (String.length s);
    t.len <- t.len + String.length s
end

module Reader = struct
  type t = { data : bytes; mutable pos : int }

  exception Truncated

  let of_bytes data = { data; pos = 0 }
  let remaining t = Bytes.length t.data - t.pos
  let at_end t = remaining t = 0

  let u8 t =
    if remaining t < 1 then raise Truncated;
    let v = Char.code (Bytes.unsafe_get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let hi = u8 t in
    let lo = u8 t in
    (hi lsl 8) lor lo

  let u32 t =
    let hi = u16 t in
    let lo = u16 t in
    (hi lsl 16) lor lo

  let addr t = Nettypes.Ipv4.addr_of_int (u32 t)

  let string t =
    let len = u16 t in
    if remaining t < len then raise Truncated;
    let s = Bytes.sub_string t.data t.pos len in
    t.pos <- t.pos + len;
    s
end
