open Nettypes

type border = {
  router : Node.id;
  rloc : Ipv4.addr;
  provider : int;
  uplink : Link.t;
}

type t = {
  id : int;
  name : string;
  eid_prefix : Ipv4.prefix;
  hosts : Node.id array;
  borders : border array;
  hub : Node.id;
  dns : Node.id;
  pce : Node.id;
}

let pp ppf t =
  Format.fprintf ppf "%s eid=%a hosts=%d borders=%d" t.name Ipv4.pp_prefix
    t.eid_prefix (Array.length t.hosts) (Array.length t.borders)

let host_eid t i =
  if i < 0 || i >= Array.length t.hosts then
    invalid_arg "Domain.host_eid: no such host";
  Ipv4.prefix_nth t.eid_prefix (i + 1)

let owns_eid t addr = Ipv4.prefix_mem t.eid_prefix addr

let host_of_eid t addr =
  if not (owns_eid t addr) then None
  else begin
    let offset =
      Ipv4.addr_to_int addr - Ipv4.addr_to_int (Ipv4.prefix_network t.eid_prefix)
    in
    let i = offset - 1 in
    if i >= 0 && i < Array.length t.hosts then Some i else None
  end

let border_of_rloc t rloc =
  Array.find_opt (fun b -> Ipv4.addr_equal b.rloc rloc) t.borders

let border_of_router t router = Array.find_opt (fun b -> b.router = router) t.borders
let rlocs t = Array.to_list (Array.map (fun b -> b.rloc) t.borders)

let advertised_mapping t ~ttl =
  (* A domain only registers locators whose access link is alive; after
     an uplink failure, re-registration drops the dead RLOC. *)
  let live =
    List.filter (fun b -> Link.is_up b.uplink) (Array.to_list t.borders)
  in
  let live = if live = [] then Array.to_list t.borders else live in
  let total_capacity =
    List.fold_left (fun acc b -> acc +. Link.capacity_bps b.uplink) 0.0 live
  in
  let rloc_records =
    List.map
      (fun b ->
        let weight =
          int_of_float (100.0 *. Link.capacity_bps b.uplink /. total_capacity)
        in
        Mapping.rloc ~priority:1 ~weight:(Stdlib.max 1 weight) b.rloc)
      live
  in
  Mapping.create ~eid_prefix:t.eid_prefix ~rlocs:rloc_records ~ttl

let fqdn t = t.name ^ ".net."
let host_name t i = Printf.sprintf "h%d.%s" i (fqdn t)
