type id = int

type kind = Host | Border_router | Dns_server | Pce | Provider_core | Hub

let pp_kind ppf = function
  | Host -> Format.pp_print_string ppf "host"
  | Border_router -> Format.pp_print_string ppf "border"
  | Dns_server -> Format.pp_print_string ppf "dns"
  | Pce -> Format.pp_print_string ppf "pce"
  | Provider_core -> Format.pp_print_string ppf "core"
  | Hub -> Format.pp_print_string ppf "hub"

type t = { id : id; kind : kind; label : string }

let pp ppf t = Format.fprintf ppf "%s#%d(%a)" t.label t.id pp_kind t.kind
