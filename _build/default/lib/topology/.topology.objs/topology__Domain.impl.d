lib/topology/domain.ml: Array Format Ipv4 Link List Mapping Nettypes Node Printf Stdlib
