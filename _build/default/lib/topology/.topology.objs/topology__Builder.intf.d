lib/topology/builder.mli: Domain Graph Netsim Nettypes Node
