lib/topology/graph.ml: Array Hashtbl Link List Node Printf
