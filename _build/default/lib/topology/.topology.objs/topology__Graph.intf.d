lib/topology/graph.mli: Link Node
