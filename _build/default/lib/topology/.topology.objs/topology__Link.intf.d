lib/topology/link.mli: Format Node
