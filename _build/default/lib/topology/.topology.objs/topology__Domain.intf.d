lib/topology/domain.mli: Format Link Nettypes Node
