lib/topology/link.ml: Format Node
