lib/topology/node.ml: Format
