lib/topology/builder.ml: Array Char Domain Graph Ipv4 Link Netsim Nettypes Node Printf Stdlib
