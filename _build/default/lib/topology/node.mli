(** Topology nodes.

    Every simulated device — end-host, border router, DNS server, PCE,
    provider core — is a node with a dense integer id, so adjacency and
    distance tables can be plain arrays. *)

type id = int

type kind =
  | Host  (** an end-system sourcing/receiving flows *)
  | Border_router  (** LISP ITR/ETR at the edge of a domain *)
  | Dns_server  (** authoritative or recursive DNS server *)
  | Pce  (** path computation element of a domain *)
  | Provider_core  (** transit provider point of presence *)
  | Hub  (** intra-domain aggregation switch joining hosts and borders *)

val pp_kind : Format.formatter -> kind -> unit

type t = { id : id; kind : kind; label : string }

val pp : Format.formatter -> t -> unit
