(** Internet builders.

    An {!t} is a complete simulated internetwork: transit providers in a
    core mesh, multihomed LISP domains hanging off them, and the shared
    DNS infrastructure (root and TLD server nodes).  {!figure1} rebuilds
    the exact two-domain scenario of the paper's Figure 1; {!generate}
    grows parameterised random internets for the scaling experiments. *)

type provider = {
  core : Node.id;  (** the provider's point of presence *)
  prefix : Nettypes.Ipv4.prefix;  (** RLOC space, e.g. 10.0.0.0/8 *)
  provider_name : string;
}

type t = {
  graph : Graph.t;
  providers : provider array;
  domains : Domain.t array;
  root_dns : Node.id;  (** DNS root server *)
  tld_dns : Node.id;  (** server authoritative for [net.] *)
}

type core_shape =
  | Full_mesh  (** every provider core peers with every other *)
  | Two_tier of int
      (** the first [n] providers form a full-mesh tier 1; every other
          provider (tier 2) buys transit from two tier-1 providers and
          has no lateral links — hierarchical paths like the real
          transit market *)

type params = {
  domain_count : int;
  provider_count : int;  (** at most 100 *)
  borders_per_domain : int;  (** clamped to [provider_count] *)
  hosts_per_domain : int;  (** at most 254 *)
  core_shape : core_shape;
  core_latency : float * float;  (** uniform range, seconds *)
  access_latency : float * float;
  internal_latency : float;
  access_capacity_bps : float;
  core_capacity_bps : float;
}

val default_params : params
(** 10 domains, 4 providers (full-mesh core), 2 borders and 4 hosts per
    domain, core latencies U[15 ms, 40 ms], access U[2 ms, 8 ms],
    internal 1 ms, 1 Gbit/s access, 100 Gbit/s core. *)

val generate : Netsim.Rng.t -> params -> t
(** Random internet: providers in a full mesh; each domain attaches its
    borders to distinct random providers. *)

val figure1 : ?scale:float -> unit -> t
(** The paper's Figure 1: AS_S multihomed to providers A (10/8) and
    B (11/8) through two border routers; AS_D multihomed to X (12/8) and
    Y (13/8); two hosts on each side; deterministic latencies.  [scale]
    (default 1.0) multiplies every core and access latency — the OWD
    sweep of experiment F7. *)

val domain_of_eid : t -> Nettypes.Ipv4.addr -> Domain.t option
val domain_of_name : t -> string -> Domain.t option
(** Lookup by DNS label (e.g. ["as3"]) or FQDN (["as3.net."]). *)

val provider_of_rloc : t -> Nettypes.Ipv4.addr -> provider option

val border_of_rloc : t -> Nettypes.Ipv4.addr -> (Domain.t * Domain.border) option
(** Resolve any RLOC in the internet to its border router. *)

val latency : t -> Node.id -> Node.id -> float
(** Shortest-path latency between any two nodes. *)
