open Nettypes

type provider = {
  core : Node.id;
  prefix : Ipv4.prefix;
  provider_name : string;
}

type t = {
  graph : Graph.t;
  providers : provider array;
  domains : Domain.t array;
  root_dns : Node.id;
  tld_dns : Node.id;
}

type core_shape = Full_mesh | Two_tier of int

type params = {
  domain_count : int;
  provider_count : int;
  borders_per_domain : int;
  hosts_per_domain : int;
  core_shape : core_shape;
  core_latency : float * float;
  access_latency : float * float;
  internal_latency : float;
  access_capacity_bps : float;
  core_capacity_bps : float;
}

let default_params =
  { domain_count = 10; provider_count = 4; borders_per_domain = 2;
    hosts_per_domain = 4; core_shape = Full_mesh;
    core_latency = (0.015, 0.040); access_latency = (0.002, 0.008);
    internal_latency = 0.001; access_capacity_bps = 1e9;
    core_capacity_bps = 100e9 }

let provider_prefix index = Ipv4.prefix_of_string (Printf.sprintf "%d.0.0.0/8" (10 + index))

let domain_eid_prefix index =
  Ipv4.prefix_of_string (Printf.sprintf "100.%d.%d.0/24" (index / 256) (index mod 256))

(* Mutable RLOC allocation cursor per provider, used only while building. *)
type alloc = { mutable next : int }

let make_domain graph ~params ~index ~provider_choices ~providers ~allocs
    ~access_latency_of =
  let name = Printf.sprintf "as%d" index in
  let hub = Graph.add_node graph ~kind:Node.Hub ~label:(name ^ "-hub") in
  let dns = Graph.add_node graph ~kind:Node.Dns_server ~label:(name ^ "-dns") in
  let pce = Graph.add_node graph ~kind:Node.Pce ~label:(name ^ "-pce") in
  ignore
    (Graph.connect graph dns hub ~latency:params.internal_latency
       ~capacity_bps:params.core_capacity_bps ~kind:Link.Internal ());
  (* The PCE sits on the DNS server's wire (IPC distance, step 1 of the
     paper), hence the very short link. *)
  ignore
    (Graph.connect graph pce dns ~latency:0.0001
       ~capacity_bps:params.core_capacity_bps ~kind:Link.Internal ());
  let hosts =
    Array.init params.hosts_per_domain (fun i ->
        let h =
          Graph.add_node graph ~kind:Node.Host
            ~label:(Printf.sprintf "%s-h%d" name i)
        in
        ignore
          (Graph.connect graph h hub ~latency:params.internal_latency
             ~capacity_bps:params.core_capacity_bps ~kind:Link.Internal ());
        h)
  in
  let borders =
    Array.mapi
      (fun i provider_index ->
        let router =
          Graph.add_node graph ~kind:Node.Border_router
            ~label:(Printf.sprintf "%s-br%d" name i)
        in
        ignore
          (Graph.connect graph router hub ~latency:params.internal_latency
             ~capacity_bps:params.core_capacity_bps ~kind:Link.Internal ());
        let p : provider = providers.(provider_index) in
        let alloc = allocs.(provider_index) in
        alloc.next <- alloc.next + 1;
        let rloc = Ipv4.prefix_nth p.prefix alloc.next in
        let uplink =
          Graph.connect graph router p.core
            ~latency:(access_latency_of ())
            ~capacity_bps:params.access_capacity_bps ()
        in
        { Domain.router; rloc; provider = provider_index; uplink })
      provider_choices
  in
  { Domain.id = index; name; eid_prefix = domain_eid_prefix index; hosts;
    borders; hub; dns; pce }

let build ~params ~core_latency_of ~access_latency_of ~choose_providers =
  if params.provider_count <= 0 || params.provider_count > 100 then
    invalid_arg "Builder: provider_count out of [1, 100]";
  if params.hosts_per_domain <= 0 || params.hosts_per_domain > 254 then
    invalid_arg "Builder: hosts_per_domain out of [1, 254]";
  if params.domain_count <= 0 then invalid_arg "Builder: no domains";
  let graph = Graph.create () in
  let providers =
    Array.init params.provider_count (fun i ->
        let provider_name = Printf.sprintf "P%c" (Char.chr (Char.code 'A' + (i mod 26))) in
        let core =
          Graph.add_node graph ~kind:Node.Provider_core
            ~label:(Printf.sprintf "%s-core" provider_name)
        in
        { core; prefix = provider_prefix i; provider_name })
  in
  (* Core wiring: either a full mesh, or a two-tier transit hierarchy
     (tier-1 full mesh; each tier-2 provider homed to two tier-1s). *)
  (match params.core_shape with
  | Full_mesh ->
      Array.iteri
        (fun i pi ->
          Array.iteri
            (fun j pj ->
              if i < j then
                ignore
                  (Graph.connect graph pi.core pj.core
                     ~latency:(core_latency_of ())
                     ~capacity_bps:params.core_capacity_bps ()))
            providers)
        providers
  | Two_tier tier1 ->
      if tier1 < 1 || tier1 > params.provider_count then
        invalid_arg "Builder: tier-1 size out of range";
      if tier1 < 2 && params.provider_count > tier1 then
        invalid_arg "Builder: two-tier needs at least two tier-1 providers";
      for i = 0 to tier1 - 1 do
        for j = i + 1 to tier1 - 1 do
          ignore
            (Graph.connect graph providers.(i).core providers.(j).core
               ~latency:(core_latency_of ())
               ~capacity_bps:params.core_capacity_bps ())
        done
      done;
      for i = tier1 to params.provider_count - 1 do
        (* Deterministic dual homing: two distinct tier-1 parents. *)
        let first = (i - tier1) mod tier1 in
        let second = (first + 1) mod tier1 in
        ignore
          (Graph.connect graph providers.(i).core providers.(first).core
             ~latency:(core_latency_of ())
             ~capacity_bps:params.core_capacity_bps ());
        ignore
          (Graph.connect graph providers.(i).core providers.(second).core
             ~latency:(core_latency_of ())
             ~capacity_bps:params.core_capacity_bps ())
      done);
  let root_dns = Graph.add_node graph ~kind:Node.Dns_server ~label:"root-dns" in
  let tld_dns = Graph.add_node graph ~kind:Node.Dns_server ~label:"tld-dns" in
  ignore
    (Graph.connect graph root_dns providers.(0).core ~latency:0.005
       ~capacity_bps:params.core_capacity_bps ());
  ignore
    (Graph.connect graph tld_dns
       providers.(Array.length providers - 1).core
       ~latency:0.005 ~capacity_bps:params.core_capacity_bps ());
  let allocs = Array.init params.provider_count (fun _ -> { next = 0 }) in
  let domains =
    Array.init params.domain_count (fun index ->
        make_domain graph ~params ~index
          ~provider_choices:(choose_providers index)
          ~providers ~allocs ~access_latency_of)
  in
  { graph; providers; domains; root_dns; tld_dns }

let generate rng params =
  let borders = Stdlib.max 1 (Stdlib.min params.borders_per_domain params.provider_count) in
  let lat_rng = Netsim.Rng.split rng in
  let pick_rng = Netsim.Rng.split rng in
  let core_latency_of () =
    let lo, hi = params.core_latency in
    Netsim.Rng.uniform lat_rng ~lo ~hi
  in
  let access_latency_of () =
    let lo, hi = params.access_latency in
    Netsim.Rng.uniform lat_rng ~lo ~hi
  in
  let choose_providers _index =
    let pool = Array.init params.provider_count (fun i -> i) in
    Netsim.Rng.shuffle pick_rng pool;
    Array.sub pool 0 borders
  in
  build ~params ~core_latency_of ~access_latency_of ~choose_providers

let figure1 ?(scale = 1.0) () =
  if scale <= 0.0 then invalid_arg "Builder.figure1: scale must be positive";
  let params =
    { default_params with domain_count = 2; provider_count = 4;
      borders_per_domain = 2; hosts_per_domain = 2 }
  in
  (* Deterministic latencies: the core mesh links come out in the order
     (A,B) (A,X) (A,Y) (B,X) (B,Y) (X,Y). *)
  let core_latencies = ref [ 0.020; 0.035; 0.040; 0.038; 0.032; 0.018 ] in
  let core_latency_of () =
    match !core_latencies with
    | l :: rest ->
        core_latencies := rest;
        l *. scale
    | [] -> 0.030 *. scale
  in
  let access_latency_of () = 0.005 *. scale in
  (* AS_S (domain 0) homes to providers A and B; AS_D (domain 1) to X
     and Y, as in the paper's figure. *)
  let choose_providers = function
    | 0 -> [| 0; 1 |]
    | 1 -> [| 2; 3 |]
    | _ -> assert false
  in
  build ~params ~core_latency_of ~access_latency_of ~choose_providers

let domain_of_eid t addr =
  Array.find_opt (fun d -> Domain.owns_eid d addr) t.domains

let domain_of_name t name =
  Array.find_opt (fun d -> d.Domain.name = name || Domain.fqdn d = name) t.domains

let provider_of_rloc t rloc =
  Array.find_opt (fun p -> Ipv4.prefix_mem p.prefix rloc) t.providers

let border_of_rloc t rloc =
  let rec scan i =
    if i >= Array.length t.domains then None
    else
      match Domain.border_of_rloc t.domains.(i) rloc with
      | Some border -> Some (t.domains.(i), border)
      | None -> scan (i + 1)
  in
  scan 0

let latency t a b = Graph.latency_between t.graph a b
