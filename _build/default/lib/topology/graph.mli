(** The topology graph.

    Nodes are added first, then links; shortest-path latencies (Dijkstra
    on link latency) are computed on demand and cached per source.  All
    message and packet delays in the simulator derive from
    {!latency_between}.

    Routing is {e valley-free}: every path decomposes into an internal
    prefix (leaving the source domain over {!Link.Internal} links), an
    external middle (access and core links), and an internal suffix
    (entering the destination domain).  A domain's internal wiring can
    therefore never act as transit between two providers.  In addition,
    a border router is only reachable from outside through its own
    access link — traffic addressed to an RLOC enters via that RLOC's
    provider, as inter-domain routing would deliver it. *)

type t

val create : unit -> t

val add_node : t -> kind:Node.kind -> label:string -> Node.id
(** Allocates the next dense id. *)

val node : t -> Node.id -> Node.t
(** Raises [Invalid_argument] on an unknown id. *)

val node_count : t -> int

val connect :
  t -> Node.id -> Node.id -> latency:float -> ?capacity_bps:float ->
  ?kind:Link.kind -> unit ->
  Link.t
(** Add a bidirectional link.  Raises [Invalid_argument] on unknown
    endpoints, a self-loop, or a duplicate link. *)

val link_between : t -> Node.id -> Node.id -> Link.t option
val links : t -> Link.t list
val neighbours : t -> Node.id -> (Node.id * Link.t) list

val latency_between : t -> Node.id -> Node.id -> float
(** Shortest-path latency in seconds.  0 for a node to itself.  Raises
    [Not_found] if the nodes are disconnected. *)

val path_between : t -> Node.id -> Node.id -> Node.id list
(** Shortest path as a node sequence including both endpoints.  Raises
    [Not_found] if disconnected. *)

val account_path : t -> src:Node.id -> dst:Node.id -> bytes:int -> unit
(** Charge [bytes] to every link along the shortest path from [src] to
    [dst] in the forward direction — how data-plane transmissions feed
    the utilisation counters. *)

val set_link_up : t -> Link.t -> bool -> unit
(** Fail or restore a link.  Down links are invisible to shortest-path
    computation; routing caches are invalidated. *)

val invalidate_cache : t -> unit
(** Must be called if links are added after latency queries (builders do
    this automatically via [connect]). *)
