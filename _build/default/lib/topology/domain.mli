(** A LISP-capable domain (autonomous system).

    A domain owns an EID prefix (not globally routable), a set of hosts,
    a local recursive DNS server, a PCE node, and one or more border
    routers.  Each border router attaches to a transit provider and
    carries an RLOC from that provider's address space — the multihoming
    that makes the paper's TE claim meaningful. *)

type border = {
  router : Node.id;  (** the ITR/ETR node *)
  rloc : Nettypes.Ipv4.addr;  (** globally routable locator *)
  provider : int;  (** index of the provider it attaches to *)
  uplink : Link.t;  (** access link whose load TE balances *)
}

type t = {
  id : int;
  name : string;  (** DNS label, e.g. ["as3"]; FQDN is [as3.net.] *)
  eid_prefix : Nettypes.Ipv4.prefix;
  hosts : Node.id array;
  borders : border array;  (** never empty *)
  hub : Node.id;  (** internal switch joining hosts, borders, DNS *)
  dns : Node.id;  (** local recursive resolver *)
  pce : Node.id;  (** PCE co-located with the DNS path *)
}

val pp : Format.formatter -> t -> unit

val host_eid : t -> int -> Nettypes.Ipv4.addr
(** EID of the [i]-th host (offset [i + 1] inside the EID prefix, leaving
    the network address unused). *)

val host_of_eid : t -> Nettypes.Ipv4.addr -> int option
(** Inverse of {!host_eid} for addresses inside this domain. *)

val owns_eid : t -> Nettypes.Ipv4.addr -> bool

val border_of_rloc : t -> Nettypes.Ipv4.addr -> border option
val border_of_router : t -> Node.id -> border option

val rlocs : t -> Nettypes.Ipv4.addr list
(** All border RLOCs, in border order. *)

val advertised_mapping : t -> ttl:float -> Nettypes.Mapping.t
(** The EID-to-RLOC mapping this domain registers in a mapping system:
    its EID prefix bound to the RLOCs of every border whose uplink is
    alive, at equal priority, weights proportional to uplink capacity.
    (All borders are included if every uplink is down, so the mapping
    stays well-formed.) *)

val fqdn : t -> string
(** Fully qualified DNS zone name, e.g. ["as3.net."]. *)

val host_name : t -> int -> string
(** ["h<i>.as<d>.net."] — the name end-systems resolve. *)
