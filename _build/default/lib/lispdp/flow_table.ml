open Nettypes

type key = int * int (* src EID, dst EID as raw ints *)

type slot = { mutable entry : Mapping.flow_entry; mutable expires_at : float }

type t = { ttl : float; table : (key, slot) Hashtbl.t }

let create ?(ttl = 300.0) () =
  if ttl <= 0.0 then invalid_arg "Flow_table.create: non-positive TTL";
  { ttl; table = Hashtbl.create 64 }

let key_of ~src_eid ~dst_eid = (Ipv4.addr_to_int src_eid, Ipv4.addr_to_int dst_eid)

let install t ~now entry =
  let key =
    key_of ~src_eid:entry.Mapping.src_eid ~dst_eid:entry.Mapping.dst_eid
  in
  match Hashtbl.find_opt t.table key with
  | Some slot ->
      slot.entry <- entry;
      slot.expires_at <- now +. t.ttl
  | None -> Hashtbl.replace t.table key { entry; expires_at = now +. t.ttl }

let lookup t ~now ~src_eid ~dst_eid =
  let key = key_of ~src_eid ~dst_eid in
  match Hashtbl.find_opt t.table key with
  | Some slot when slot.expires_at > now -> Some slot.entry
  | Some _ ->
      Hashtbl.remove t.table key;
      None
  | None -> None

let remove t ~src_eid ~dst_eid = Hashtbl.remove t.table (key_of ~src_eid ~dst_eid)
let length t = Hashtbl.length t.table
let clear t = Hashtbl.reset t.table

let update_src_rloc t ~now ~src_eid ~dst_eid ~rloc =
  let key = key_of ~src_eid ~dst_eid in
  match Hashtbl.find_opt t.table key with
  | Some slot when slot.expires_at > now ->
      slot.entry <- { slot.entry with Mapping.src_rloc = rloc };
      true
  | Some _ | None -> false

let iter t ~now ~f =
  Hashtbl.iter (fun _ slot -> if slot.expires_at > now then f slot.entry) t.table
