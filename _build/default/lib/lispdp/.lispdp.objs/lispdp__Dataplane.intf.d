lib/lispdp/dataplane.mli: Flow_table Map_cache Netsim Nettypes Topology
