lib/lispdp/map_cache.mli: Nettypes
