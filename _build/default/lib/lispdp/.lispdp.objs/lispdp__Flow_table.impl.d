lib/lispdp/flow_table.ml: Hashtbl Ipv4 Mapping Nettypes
