lib/lispdp/map_cache.ml: Ipv4 List Mapping Nettypes Prefix_table
