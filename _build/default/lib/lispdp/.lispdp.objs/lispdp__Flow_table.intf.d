lib/lispdp/flow_table.mli: Nettypes
