lib/lispdp/dataplane.ml: Array Flow Flow_table Format Hashtbl Int Ipv4 List Map_cache Mapping Netsim Nettypes Option Packet Topology
