lib/workload/traffic.mli: Netsim Nettypes Topology
