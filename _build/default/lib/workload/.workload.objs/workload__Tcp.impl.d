lib/workload/tcp.ml: Array Flow Hashtbl Lispdp List Netsim Nettypes Option Packet Topology
