lib/workload/tcp.mli: Lispdp Netsim Nettypes
