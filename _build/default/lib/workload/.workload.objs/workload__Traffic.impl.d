lib/workload/traffic.ml: Array Flow List Netsim Nettypes Stdlib Topology
