lib/workload/arrivals.ml: List Netsim Stdlib
