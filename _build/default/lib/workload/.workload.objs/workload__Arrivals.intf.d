lib/workload/arrivals.mli: Netsim
