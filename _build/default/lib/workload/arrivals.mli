(** Arrival processes.

    Schedule flow-start events on the engine.  All generators draw every
    arrival time up front from the provided RNG, so the schedule is
    reproducible regardless of what the started flows themselves draw. *)

val poisson :
  engine:Netsim.Engine.t ->
  rng:Netsim.Rng.t ->
  rate:float ->
  duration:float ->
  f:(int -> unit) ->
  int
(** Poisson arrivals at [rate] per second over [duration] seconds
    starting now; [f] receives the arrival index.  Returns the number of
    arrivals scheduled. *)

val uniform_spread :
  engine:Netsim.Engine.t -> count:int -> duration:float -> f:(int -> unit) -> int
(** [count] arrivals evenly spaced over [duration] (deterministic). *)

val burst : engine:Netsim.Engine.t -> count:int -> f:(int -> unit) -> int
(** All arrivals at the current instant (back-to-back events). *)
