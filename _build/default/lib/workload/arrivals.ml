let poisson ~engine ~rng ~rate ~duration ~f =
  if rate <= 0.0 then invalid_arg "Arrivals.poisson: rate must be positive";
  if duration <= 0.0 then invalid_arg "Arrivals.poisson: duration must be positive";
  let rec generate acc elapsed =
    let elapsed = elapsed +. Netsim.Rng.exponential rng ~mean:(1.0 /. rate) in
    if elapsed >= duration then List.rev acc else generate (elapsed :: acc) elapsed
  in
  let times = generate [] 0.0 in
  List.iteri
    (fun i delay -> ignore (Netsim.Engine.schedule engine ~delay (fun () -> f i)))
    times;
  List.length times

let uniform_spread ~engine ~count ~duration ~f =
  if count < 0 then invalid_arg "Arrivals.uniform_spread: negative count";
  for i = 0 to count - 1 do
    let delay = duration *. float_of_int i /. float_of_int (Stdlib.max 1 count) in
    ignore (Netsim.Engine.schedule engine ~delay (fun () -> f i))
  done;
  count

let burst ~engine ~count ~f =
  if count < 0 then invalid_arg "Arrivals.burst: negative count";
  for i = 0 to count - 1 do
    ignore (Netsim.Engine.schedule engine ~delay:0.0 (fun () -> f i))
  done;
  count
