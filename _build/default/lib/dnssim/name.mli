(** DNS domain names.

    A name is a sequence of labels; ["h0.as3.net."] has labels
    [["h0"; "as3"; "net"]].  The root name has no labels.  Comparison is
    case-sensitive (the simulator never mixes cases). *)

type t

val root : t

val of_string : string -> t
(** Accepts with or without the trailing dot; [""] and ["."] give
    {!root}.  Raises [Invalid_argument] on empty labels (["a..b"]). *)

val to_string : t -> string
(** Always fully qualified (trailing dot). *)

val labels : t -> string list
(** Leftmost (most specific) label first. *)

val label_count : t -> int

val parent : t -> t option
(** Drop the leftmost label; [None] for the root. *)

val in_zone : t -> zone:t -> bool
(** Is [t] equal to or below the zone apex?  Every name is in the root
    zone. *)

val suffix : t -> int -> t
(** [suffix t k] keeps the [k] rightmost labels.  Raises
    [Invalid_argument] if [k] exceeds the label count. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val wire_size : t -> int
(** Encoded size in bytes (labels + length bytes + terminator). *)
