(** Authoritative DNS zones.

    A zone lives on one server node and holds A records plus delegations
    to child zones.  {!answer} implements the authoritative lookup an
    iterative resolver drives: final answer, referral toward a child
    zone, or name error. *)

type t

val create : apex:Name.t -> server:Topology.Node.id -> ttl:float -> t
(** [ttl] (seconds) applies to every record served from the zone. *)

val apex : t -> Name.t
val server : t -> Topology.Node.id
val ttl : t -> float

val add_a : t -> Name.t -> Nettypes.Ipv4.addr -> unit
(** Bind an A record.  The name must be inside the zone.  Re-adding
    replaces. *)

val delegate : t -> child_apex:Name.t -> child_server:Topology.Node.id -> unit
(** Delegate a child zone.  The child apex must be strictly below this
    zone's apex. *)

val record_count : t -> int

type answer =
  | Address of Nettypes.Ipv4.addr  (** authoritative A answer *)
  | Referral of Name.t * Topology.Node.id  (** ask the child zone's server *)
  | Name_error  (** no such name in this zone *)

val pp_answer : Format.formatter -> answer -> unit

val answer : t -> Name.t -> answer
(** Authoritative response for a query name.  Names outside the zone get
    [Name_error] (the simulator never misdirects queries, but the case
    must be total). *)

val answer_wire_size : Name.t -> answer -> int
(** Approximate response message size in bytes. *)
