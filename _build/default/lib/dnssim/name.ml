type t = string list (* most specific label first; [] is the root *)

let root = []

let of_string s =
  if s = "" || s = "." then []
  else begin
    let s =
      if String.length s > 0 && s.[String.length s - 1] = '.' then
        String.sub s 0 (String.length s - 1)
      else s
    in
    let labels = String.split_on_char '.' s in
    List.iter
      (fun l -> if l = "" then invalid_arg ("Name.of_string: empty label in " ^ s))
      labels;
    labels
  end

let to_string = function
  | [] -> "."
  | labels -> String.concat "." labels ^ "."

let labels t = t
let label_count = List.length

let parent = function [] -> None | _ :: rest -> Some rest

let rec is_suffix ~suffix name =
  if List.length suffix > List.length name then false
  else if List.length suffix = List.length name then suffix = name
  else match name with [] -> false | _ :: rest -> is_suffix ~suffix rest

let in_zone t ~zone = is_suffix ~suffix:zone t

let suffix t k =
  let n = List.length t in
  if k < 0 || k > n then invalid_arg "Name.suffix: label count exceeded";
  let rec drop i l = if i = 0 then l else drop (i - 1) (List.tl l) in
  drop (n - k) t

let equal a b = a = b
let compare = Stdlib.compare
let hash t = Hashtbl.hash t
let pp ppf t = Format.pp_print_string ppf (to_string t)

let wire_size t =
  1 + List.fold_left (fun acc l -> acc + 1 + String.length l) 0 t
