type t = {
  apex : Name.t;
  server : Topology.Node.id;
  ttl : float;
  records : (Name.t, Nettypes.Ipv4.addr) Hashtbl.t;
  mutable delegations : (Name.t * Topology.Node.id) list;
}

let create ~apex ~server ~ttl =
  if ttl <= 0.0 then invalid_arg "Zone.create: non-positive TTL";
  { apex; server; ttl; records = Hashtbl.create 16; delegations = [] }

let apex t = t.apex
let server t = t.server
let ttl t = t.ttl

let add_a t name addr =
  if not (Name.in_zone name ~zone:t.apex) then
    invalid_arg
      (Printf.sprintf "Zone.add_a: %s outside zone %s" (Name.to_string name)
         (Name.to_string t.apex));
  Hashtbl.replace t.records name addr

let delegate t ~child_apex ~child_server =
  if
    (not (Name.in_zone child_apex ~zone:t.apex))
    || Name.equal child_apex t.apex
  then
    invalid_arg
      (Printf.sprintf "Zone.delegate: %s not below %s"
         (Name.to_string child_apex) (Name.to_string t.apex));
  t.delegations <- (child_apex, child_server) :: t.delegations

let record_count t = Hashtbl.length t.records

type answer =
  | Address of Nettypes.Ipv4.addr
  | Referral of Name.t * Topology.Node.id
  | Name_error

let pp_answer ppf = function
  | Address a -> Format.fprintf ppf "A %a" Nettypes.Ipv4.pp_addr a
  | Referral (apex, server) ->
      Format.fprintf ppf "referral %a -> node %d" Name.pp apex server
  | Name_error -> Format.pp_print_string ppf "NXDOMAIN"

let answer t qname =
  if not (Name.in_zone qname ~zone:t.apex) then Name_error
  else
    match Hashtbl.find_opt t.records qname with
    | Some addr -> Address addr
    | None -> (
        (* Deepest delegation containing the query name wins. *)
        let best =
          List.fold_left
            (fun acc (child_apex, child_server) ->
              if Name.in_zone qname ~zone:child_apex then
                match acc with
                | Some (prev, _) when Name.label_count prev >= Name.label_count child_apex ->
                    acc
                | Some _ | None -> Some (child_apex, child_server)
              else acc)
            None t.delegations
        in
        match best with
        | Some (child_apex, child_server) -> Referral (child_apex, child_server)
        | None -> Name_error)

let answer_wire_size qname = function
  | Address _ -> 12 + Name.wire_size qname + 16
  | Referral (child, _) -> 12 + Name.wire_size qname + Name.wire_size child + 20
  | Name_error -> 12 + Name.wire_size qname
