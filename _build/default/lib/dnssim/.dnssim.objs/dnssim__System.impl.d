lib/dnssim/system.ml: Array Format Hashtbl Ipv4 Name Netsim Nettypes Printf Topology Zone
