lib/dnssim/name.ml: Format Hashtbl List Stdlib String
