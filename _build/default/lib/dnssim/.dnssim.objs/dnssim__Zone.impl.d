lib/dnssim/zone.ml: Format Hashtbl List Name Nettypes Printf Topology
