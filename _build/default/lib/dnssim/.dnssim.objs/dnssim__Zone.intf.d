lib/dnssim/zone.mli: Format Name Nettypes Topology
