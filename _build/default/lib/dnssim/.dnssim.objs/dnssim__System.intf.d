lib/dnssim/system.mli: Name Netsim Nettypes Topology
