lib/dnssim/name.mli: Format
