lib/netsim/stats.ml: Array Float List Stdlib
