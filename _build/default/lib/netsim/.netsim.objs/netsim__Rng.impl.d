lib/netsim/rng.ml: Array Float Int64
