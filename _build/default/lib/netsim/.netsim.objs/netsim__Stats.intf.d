lib/netsim/stats.mli:
