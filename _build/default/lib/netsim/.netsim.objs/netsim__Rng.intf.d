lib/netsim/rng.mli:
