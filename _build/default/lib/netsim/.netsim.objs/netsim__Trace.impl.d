lib/netsim/trace.ml: Format List Stdlib String
