lib/netsim/trace.mli: Format
