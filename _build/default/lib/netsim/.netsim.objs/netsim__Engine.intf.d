lib/netsim/engine.mli:
