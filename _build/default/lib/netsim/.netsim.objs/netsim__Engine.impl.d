lib/netsim/engine.ml: Array Printf
