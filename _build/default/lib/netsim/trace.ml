type entry = { time : float; actor : string; event : string }

type t = { mutable entries_rev : entry list; mutable count : int; mutable on : bool }

let create () = { entries_rev = []; count = 0; on = true }
let enabled t = t.on
let set_enabled t on = t.on <- on

let record t ~time ~actor event =
  if t.on then begin
    t.entries_rev <- { time; actor; event } :: t.entries_rev;
    t.count <- t.count + 1
  end

let recordf t ~time ~actor fmt =
  Format.kasprintf (fun event -> record t ~time ~actor event) fmt

let entries t = List.rev t.entries_rev
let length t = t.count

let clear t =
  t.entries_rev <- [];
  t.count <- 0

let pp ppf t =
  let actor_width =
    List.fold_left
      (fun acc e -> Stdlib.max acc (String.length e.actor))
      0 t.entries_rev
  in
  List.iter
    (fun e ->
      Format.fprintf ppf "t=%10.6fs  %-*s  %s@." e.time actor_width e.actor
        e.event)
    (entries t)

let find t ~f = List.find_opt f (entries t)
