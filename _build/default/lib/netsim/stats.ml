module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity;
      total = 0.0 }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total
end

module Samples = struct
  type t = {
    mutable data : float array;
    mutable size : int;
    mutable sorted : float array option; (* cache invalidated by [add] *)
  }

  let create () = { data = Array.make 16 0.0; size = 0; sorted = None }

  let add t x =
    if t.size = Array.length t.data then begin
      let bigger = Array.make (2 * Array.length t.data) 0.0 in
      Array.blit t.data 0 bigger 0 t.size;
      t.data <- bigger
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    t.sorted <- None

  let count t = t.size

  let mean t =
    if t.size = 0 then 0.0
    else begin
      let acc = ref 0.0 in
      for i = 0 to t.size - 1 do
        acc := !acc +. t.data.(i)
      done;
      !acc /. float_of_int t.size
    end

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Array.sub t.data 0 t.size in
        Array.sort compare a;
        t.sorted <- Some a;
        a

  let percentile t p =
    if t.size = 0 then invalid_arg "Stats.Samples.percentile: empty";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Samples.percentile: p out of [0, 100]";
    let a = sorted t in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

  let median t = percentile t 50.0

  let cdf ?(points = 50) t =
    if t.size = 0 then []
    else begin
      let a = sorted t in
      let n = Array.length a in
      let steps = Stdlib.min points n in
      List.init steps (fun i ->
          let idx = (i + 1) * n / steps - 1 in
          (a.(idx), float_of_int (idx + 1) /. float_of_int n))
    end

  let to_list t = Array.to_list (Array.sub t.data 0 t.size)
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    bins : int array;
    mutable count : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Stats.Histogram.create: bins must be > 0";
    if not (hi > lo) then invalid_arg "Stats.Histogram.create: hi must be > lo";
    { lo; hi; width = (hi -. lo) /. float_of_int bins; bins = Array.make bins 0;
      count = 0 }

  let add t x =
    let raw = int_of_float ((x -. t.lo) /. t.width) in
    let idx = Stdlib.max 0 (Stdlib.min (Array.length t.bins - 1) raw) in
    t.bins.(idx) <- t.bins.(idx) + 1;
    t.count <- t.count + 1

  let count t = t.count
  let bin_count t = Array.length t.bins

  let bin t i =
    let lower = t.lo +. (float_of_int i *. t.width) in
    (lower, lower +. t.width, t.bins.(i))

  let fraction_below t value =
    if t.count = 0 then 0.0
    else begin
      let acc = ref 0 in
      for i = 0 to Array.length t.bins - 1 do
        let _, upper, n = bin t i in
        if upper <= value then acc := !acc + n
      done;
      float_of_int !acc /. float_of_int t.count
    end
end

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sum_sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    if sum_sq = 0.0 then 1.0
    else sum *. sum /. (float_of_int n *. sum_sq)
  end
