(** Online statistics for simulation measurements.

    Three collectors cover the experiments' needs: {!Summary} for
    streaming mean/variance, {!Samples} for exact quantiles and CDF
    export over a bounded number of observations, and {!Histogram} for
    fixed-bin densities.  {!jain_index} computes the fairness metric used
    by the traffic-engineering experiments. *)

module Summary : sig
  (** Welford's streaming mean and variance. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; 0 with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val total : t -> float
end

module Samples : sig
  (** Exact quantiles over stored observations. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [\[0, 100\]], linear interpolation
      between order statistics.  Raises [Invalid_argument] when empty or
      [p] out of range. *)

  val median : t -> float

  val cdf : ?points:int -> t -> (float * float) list
  (** [(value, fraction <= value)] pairs suitable for plotting; [points]
      (default 50) evenly spaced in rank.  Empty list when empty. *)

  val to_list : t -> float list
  (** All observations in insertion order. *)
end

module Histogram : sig
  (** Fixed-width bins over [\[lo, hi)]; out-of-range values are clamped
      into the edge bins so nothing is silently dropped. *)

  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val bin_count : t -> int

  val bin : t -> int -> float * float * int
  (** [bin t i] is [(lower_edge, upper_edge, occupancy)]. *)

  val fraction_below : t -> float -> float
  (** Fraction of observations in bins entirely below the given value. *)
end

val jain_index : float array -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)]: 1 when perfectly balanced,
    [1/n] when one element carries everything.  Defined as 1.0 for empty
    or all-zero input. *)
