(** Timeline recording for simulation walkthroughs.

    A trace is an append-only log of [(time, actor, event)] entries.  The
    F1 experiment uses it to print the step-by-step control-plane
    walkthrough of the paper's Figure 1; tests use it to assert event
    ordering. *)

type t

type entry = { time : float; actor : string; event : string }

val create : unit -> t

val enabled : t -> bool
(** Recording can be switched off so that hot benchmark loops skip the
    formatting cost of building entries. *)

val set_enabled : t -> bool -> unit

val record : t -> time:float -> actor:string -> string -> unit
(** Append an entry (no-op when disabled). *)

val recordf :
  t -> time:float -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!record} with printf formatting of the event text. *)

val entries : t -> entry list
(** Entries in chronological (= insertion) order. *)

val length : t -> int
val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** Render as an aligned [t=...s  actor  event] listing. *)

val find : t -> f:(entry -> bool) -> entry option
(** First matching entry, if any. *)
