lib/core/pce_control.ml: Array Bytes Dnssim Flow Format Hashtbl Ipv4 Irc Lispdp List Mapping Mapsys Netsim Nettypes Option Packet Pce Topology Wire
