lib/core/pce.mli: Dnssim Irc Netsim Nettypes Topology
