lib/core/pce_control.mli: Dnssim Irc Lispdp Mapsys Netsim Pce Topology
