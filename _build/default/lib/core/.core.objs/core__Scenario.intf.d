lib/core/scenario.mli: Dnssim Lispdp Mapsys Netsim Nettypes Pce_control Topology Workload
