lib/core/scenario.ml: Array Dnssim Flow Lispdp List Mapsys Netsim Nettypes Option Pce_control Printf Topology Workload
