lib/core/scenario_file.mli: Scenario
