lib/core/pce.ml: Dnssim Flow Hashtbl Ipv4 Irc List Mapping Nettypes Option Topology
