lib/core/scenario_file.ml: In_channel List Pce_control Printf Scenario String Topology
