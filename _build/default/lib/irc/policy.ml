type t =
  | Min_latency
  | Min_load
  | Weighted of { latency_weight : float; load_weight : float }
  | Round_robin
  | Flow_hash

let to_string = function
  | Min_latency -> "min-latency"
  | Min_load -> "min-load"
  | Weighted { latency_weight; load_weight } ->
      Printf.sprintf "weighted(%.2f,%.2f)" latency_weight load_weight
  | Round_robin -> "round-robin"
  | Flow_hash -> "flow-hash"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let score t ~latency ~load ~latency_scale =
  let norm_latency = if latency_scale > 0.0 then latency /. latency_scale else 0.0 in
  match t with
  | Min_latency -> norm_latency
  | Min_load -> load
  | Weighted { latency_weight; load_weight } ->
      (latency_weight *. norm_latency) +. (load_weight *. load)
  | Round_robin | Flow_hash -> 0.0
