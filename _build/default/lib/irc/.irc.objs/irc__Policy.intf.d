lib/irc/policy.mli: Format
