lib/irc/selector.ml: Array Float Flow Netsim Nettypes Option Policy Topology
