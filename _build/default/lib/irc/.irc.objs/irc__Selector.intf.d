lib/irc/selector.mli: Netsim Nettypes Policy Topology
