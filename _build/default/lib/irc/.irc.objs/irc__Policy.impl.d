lib/irc/policy.ml: Format Printf
