(** The per-domain Intelligent Route Control engine.

    One selector runs inside each domain's PCE (the "online IRC engine
    running in background" of the paper's step 6).  It keeps an EWMA
    estimate of each provider uplink's utilisation in both directions,
    refreshed by {!observe}, and answers two questions:

    - {!choose_egress}: through which border should this outbound flow
      leave (the ITR and outbound uplink)?
    - {!choose_ingress}: through which border should the {e reverse}
      traffic of this flow come back in (the RLOC_S of step 1)?

    Selections are sticky per flow: once a flow is assigned a border it
    keeps it unless {!rebalance} moves it, so load estimates are not
    churned by per-packet flapping. *)

type t

type direction = Outbound | Inbound

val create :
  domain:Topology.Domain.t ->
  graph:Topology.Graph.t ->
  policy:Policy.t ->
  ?ewma_alpha:float ->
  ?hysteresis:float ->
  ?assign_penalty:float ->
  ?noise:float ->
  ?rng:Netsim.Rng.t ->
  unit ->
  t
(** [ewma_alpha] (default 0.3) is the smoothing factor of the load
    estimate; [hysteresis] (default 0.05) is the score improvement a
    candidate must offer before an existing assignment is moved by
    {!rebalance}; [assign_penalty] (default 0.02) is the score added per
    assignment made since the last observation, preventing bursts from
    herding onto one uplink while the load estimate is stale; [noise]
    (default 0) adds multiplicative measurement noise (requires
    [rng]). *)

val domain : t -> Topology.Domain.t
val policy : t -> Policy.t

val observe : t -> now:float -> unit
(** Sample the uplink byte counters and fold the interval utilisation
    into the EWMA estimates.  Call periodically (the PCE's background
    monitoring loop). *)

val load_estimate : t -> direction -> Topology.Domain.border -> float
(** Current EWMA utilisation estimate of a border's uplink in the given
    direction (0 before any observation). *)

val choose_egress :
  t -> flow:Nettypes.Flow.t -> ?remote:Topology.Node.id -> unit ->
  Topology.Domain.border
(** Border for the flow's outbound packets.  [remote] (the far-end
    router node, when already known) lets latency-aware policies measure
    the actual remote path; otherwise latency is taken to the border's
    provider core. *)

val choose_ingress :
  t -> flow:Nettypes.Flow.t -> ?remote:Topology.Node.id -> unit ->
  Topology.Domain.border
(** Border whose RLOC the reverse mapping should carry (inbound TE).
    [remote] is the far-end node the traffic will come from, when
    known. *)

val assignment : t -> direction -> Nettypes.Flow.t -> Topology.Domain.border option
(** The sticky assignment of a flow, if one was made. *)

val rebalance : t -> unit
(** Re-evaluate sticky assignments against current load estimates and
    move those whose score improves by more than the hysteresis.  The
    PCE triggers this as its TE optimisation step; with the paper's
    push-to-all-ITRs it is safe because every ITR already has the flow
    entry. *)

val moved_flows : t -> int
(** Total assignments moved by {!rebalance} calls so far. *)

val forget_flow : t -> Nettypes.Flow.t -> unit
(** Drop the sticky assignments of a finished flow. *)
