(** Route-control policies.

    The paper delegates ingress/egress locator selection to "the
    algorithms used today by Intelligent Route Control"; these are the
    standard objectives such engines offer.  A policy scores the
    candidate border routers of a domain for a flow; the selector picks
    the best score (with stickiness and hysteresis applied on top). *)

type t =
  | Min_latency  (** lowest path latency toward the flow's remote end *)
  | Min_load  (** least-utilised provider uplink (EWMA) *)
  | Weighted of { latency_weight : float; load_weight : float }
      (** convex blend of normalised latency and load *)
  | Round_robin  (** cycle through the borders per selection *)
  | Flow_hash  (** static hash of the flow five-tuple (ECMP-style) *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val score :
  t ->
  latency:float ->
  load:float ->
  latency_scale:float ->
  float
(** [score p ~latency ~load ~latency_scale] is the cost of a candidate
    (lower is better) for the score-based policies.  [latency_scale]
    normalises latency into roughly [0, 1] (e.g. the max candidate
    latency).  [Round_robin] and [Flow_hash] are not score-based; they
    return 0 and are handled by the selector. *)
