lib/metrics/timeseries.mli: Format
