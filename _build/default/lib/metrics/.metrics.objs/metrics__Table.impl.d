lib/metrics/table.ml: Buffer Format List Printf Stdlib String
