lib/metrics/timeseries.ml: Array Float Format Stdlib String
