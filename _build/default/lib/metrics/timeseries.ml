type t = {
  bucket : float;
  buckets : float array;
  mutable out_of_range : int;
}

let create ~bucket ~horizon =
  if bucket <= 0.0 then invalid_arg "Timeseries.create: bucket must be positive";
  if horizon <= 0.0 then invalid_arg "Timeseries.create: horizon must be positive";
  let count = int_of_float (Float.ceil (horizon /. bucket)) in
  { bucket; buckets = Array.make (Stdlib.max 1 count) 0.0; out_of_range = 0 }

let bucket_width t = t.bucket
let bucket_count t = Array.length t.buckets

let add t ~at ?(value = 1.0) () =
  let i = int_of_float (Float.floor (at /. t.bucket)) in
  if at < 0.0 || i >= Array.length t.buckets then
    t.out_of_range <- t.out_of_range + 1
  else t.buckets.(i) <- t.buckets.(i) +. value

let total t = Array.fold_left ( +. ) 0.0 t.buckets
let out_of_range t = t.out_of_range

let value t i =
  if i < 0 || i >= Array.length t.buckets then
    invalid_arg "Timeseries.value: index out of range";
  t.buckets.(i)

let values t = Array.copy t.buckets
let bucket_start t i = float_of_int i *. t.bucket

let peak t =
  let best = ref None in
  Array.iteri
    (fun i v ->
      match !best with
      | Some (_, b) when b >= v -> ()
      | Some _ | None -> if v > 0.0 then best := Some (bucket_start t i, v))
    t.buckets;
  !best

let last_active t =
  let found = ref None in
  Array.iteri (fun i v -> if v > 0.0 then found := Some (bucket_start t i)) t.buckets;
  !found

let first_active_after t time =
  let n = Array.length t.buckets in
  let rec scan i =
    if i >= n then None
    else if t.buckets.(i) > 0.0 && bucket_start t i >= time then
      Some (bucket_start t i)
    else scan (i + 1)
  in
  scan 0

let last_active_after t time =
  let found = ref None in
  Array.iteri
    (fun i v ->
      if v > 0.0 && bucket_start t i >= time then found := Some (bucket_start t i))
    t.buckets;
  !found

let to_rows t =
  Array.to_list (Array.mapi (fun i v -> (bucket_start t i, v)) t.buckets)

let pp ppf t =
  let max_value = Array.fold_left Float.max 0.0 t.buckets in
  Array.iteri
    (fun i v ->
      let width =
        if max_value <= 0.0 then 0
        else int_of_float (40.0 *. v /. max_value)
      in
      Format.fprintf ppf "%8.1fs %10.0f %s@." (bucket_start t i) v
        (String.make width '#'))
    t.buckets
