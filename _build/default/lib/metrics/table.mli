(** ASCII result tables.

    Every experiment in the bench harness renders its rows through this
    module so tables are uniformly formatted in the terminal and
    exportable as CSV for plotting. *)

type t

val create : title:string -> columns:string list -> t
(** [columns] must be non-empty. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the cell count differs from the column
    count. *)

val add_rows : t -> string list list -> unit
val row_count : t -> int

val pp : Format.formatter -> t -> unit
(** Render with a title line, aligned columns and a separator rule. *)

val print : t -> unit
(** [pp] to stdout followed by a blank line. *)

val to_csv : t -> string
(** Comma-separated rendering (header + rows); cells containing commas
    or quotes are quoted. *)

(* Cell formatting helpers used across experiments. *)

val cell_ms : float -> string
(** Seconds rendered as milliseconds with 2 decimals, e.g. "82.51". *)

val cell_float : ?decimals:int -> float -> string
val cell_int : int -> string
val cell_pct : float -> string
(** Fraction rendered as a percentage with 1 decimal. *)

val cell_bytes : int -> string
(** Human-friendly byte count (B / KiB / MiB). *)
