(** Fixed-bucket time series.

    Counts (or sums) events into uniform time buckets over
    [\[0, horizon)] — drop timelines, per-second delivery rates, link
    load histories.  Out-of-range samples are counted separately rather
    than silently discarded. *)

type t

val create : bucket:float -> horizon:float -> t
(** [bucket] seconds per bin; both must be positive. *)

val bucket_width : t -> float
val bucket_count : t -> int

val add : t -> at:float -> ?value:float -> unit -> unit
(** Add [value] (default 1.0) to the bucket containing time [at]. *)

val total : t -> float
(** Sum over all buckets (excludes out-of-range samples). *)

val out_of_range : t -> int
(** Samples that fell outside [\[0, horizon)]. *)

val value : t -> int -> float
(** Raises [Invalid_argument] on a bad index. *)

val values : t -> float array
(** A copy of the bucket contents. *)

val bucket_start : t -> int -> float

val peak : t -> (float * float) option
(** [(bucket_start, value)] of the largest bucket; [None] when all
    buckets are zero. *)

val last_active : t -> float option
(** Start time of the last non-zero bucket. *)

val first_active_after : t -> float -> float option
(** Start time of the first non-zero bucket at or after the given
    time. *)

val last_active_after : t -> float -> float option
(** Start time of the last non-zero bucket at or after the given time —
    e.g. "when did drops cease after the failure". *)

val to_rows : t -> (float * float) list
(** [(bucket_start, value)] pairs for tables/CSV. *)

val pp : Format.formatter -> t -> unit
(** Sparkline-style rendering, one line per bucket with a bar. *)
