type t = {
  title : string;
  columns : string list;
  mutable rows_rev : string list list;
  mutable count : int;
}

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; rows_rev = []; count = 0 }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns"
         (List.length cells) (List.length t.columns));
  t.rows_rev <- cells :: t.rows_rev;
  t.count <- t.count + 1

let add_rows t rows = List.iter (add_row t) rows
let row_count t = t.count

let widths t =
  let rows = List.rev t.rows_rev in
  List.mapi
    (fun i column ->
      List.fold_left
        (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
        (String.length column) rows)
    t.columns

let pp ppf t =
  let widths = widths t in
  let print_cells cells =
    List.iteri
      (fun i cell ->
        let width = List.nth widths i in
        if i > 0 then Format.pp_print_string ppf "  ";
        Format.fprintf ppf "%-*s" width cell)
      cells;
    Format.pp_print_newline ppf ()
  in
  Format.fprintf ppf "== %s ==@." t.title;
  print_cells t.columns;
  let rule = List.map (fun w -> String.make w '-') widths in
  print_cells rule;
  List.iter print_cells (List.rev t.rows_rev)

let print t =
  pp Format.std_formatter t;
  Format.print_newline ()

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buffer = Buffer.create (String.length cell + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\""
        else Buffer.add_char buffer c)
      cell;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else cell

let to_csv t =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line t.columns :: List.map line (List.rev t.rows_rev))
  ^ "\n"

let cell_ms seconds = Printf.sprintf "%.2f" (seconds *. 1e3)
let cell_float ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v
let cell_int = string_of_int
let cell_pct fraction = Printf.sprintf "%.1f%%" (fraction *. 100.0)

let cell_bytes n =
  if n < 1024 then Printf.sprintf "%dB" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1fKiB" (float_of_int n /. 1024.0)
  else Printf.sprintf "%.2fMiB" (float_of_int n /. (1024.0 *. 1024.0))
