(* R2 — PCE availability: sweep the fraction of the run each domain's
   PCE spends crashed and measure how connection setup degrades.  The
   crash windows are staggered across domains so at most one PCE is
   down at a time; while a PCE_D is down its DNS server bypasses it
   after the watchdog, and ITR misses degrade to pull resolutions —
   the run completes, but pays the T_map_resol the PCE path was
   designed to remove. *)

open Core

let id = "r2"
let title = "R2: connection setup vs PCE availability"

let downtimes = [ 0.0; 0.1; 0.25; 0.5 ]
let domain_count = 8
let flow_count = 150
let rate = 50.0

let measure ~downtime =
  let duration = float_of_int flow_count /. rate in
  (* [None] at downtime 0 keeps the baseline row on the exact
     lifecycle-free code path every other experiment uses. *)
  let node_faults =
    if downtime > 0.0 then
      Some
        { Scenario.default_node_faults with
          Scenario.node_windows =
            List.init domain_count (fun d ->
                let from_ =
                  float_of_int d *. duration /. float_of_int domain_count
                in
                (Netsim.Lifecycle.Pce d, from_, from_ +. (downtime *. duration))) }
    else None
  in
  let config =
    { Scenario.default_config with
      Scenario.seed = 23;
      topology =
        `Random
          { Topology.Builder.default_params with
            Topology.Builder.domain_count };
      cp = Scenario.Cp_pce Pce_control.default_options; node_faults }
  in
  Harness.run { (Harness.default_spec config) with Harness.flows = flow_count; rate }

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "downtime"; "established"; "failed"; "bypasses"; "recoveries";
          "pull-resolved"; "mean setup"; "p95 setup" ]
  in
  List.iter
    (fun downtime ->
      let r = measure ~downtime in
      let stats = Harness.cp_stats r in
      let pull_resolved =
        match Scenario.fallback_pull r.Harness.scenario with
        | Some pull -> (Mapsys.Pull.stats pull).Mapsys.Cp_stats.resolutions
        | None -> 0
      in
      Metrics.Table.add_row table
        [ Metrics.Table.cell_pct downtime;
          Metrics.Table.cell_int r.Harness.established;
          Metrics.Table.cell_int r.Harness.failed;
          Metrics.Table.cell_int stats.Mapsys.Cp_stats.bypasses;
          Metrics.Table.cell_int stats.Mapsys.Cp_stats.recoveries;
          Metrics.Table.cell_int pull_resolved;
          Metrics.Table.cell_ms (Harness.mean r.Harness.setups);
          Metrics.Table.cell_ms
            (Harness.percentile_or_zero r.Harness.setups 95.0) ])
    downtimes;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
