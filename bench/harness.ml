(* Shared workload driver for the experiment harness.

   Every experiment runs the same loop: build a scenario around one
   control plane, generate flows (Poisson arrivals, Zipf or hotspot
   destinations, heavy-tailed sizes), open each as a DNS-then-TCP
   connection, drain the engine, and collect one [result] with every
   quantity the tables report. *)

open Core

let standard_cps : (string * Scenario.cp_kind) list =
  [ ("pull-drop", Scenario.Cp_pull_drop);
    ("pull-queue", Scenario.Cp_pull_queue 32);
    ("pull-smr", Scenario.Cp_pull_smr 32);
    ("pull-detour", Scenario.Cp_pull_detour);
    ("cons", Scenario.Cp_cons);
    ("msmr", Scenario.Cp_msmr);
    ("nerd-push", Scenario.Cp_nerd);
    ("pce", Scenario.Cp_pce Pce_control.default_options) ]

type spec = {
  config : Scenario.config;
  flows : int;
  rate : float;  (* Poisson arrival rate, flows per second *)
  zipf_alpha : float;
  hotspots : (int * float) list option;
  sources : int list option;  (* restrict source domains *)
  data_packets : [ `Fixed of int | `Pareto of float ];
  data_bytes : int;
  monitor : bool;  (* run the PCE background IRC loop *)
  rebalance : bool;
  monitor_interval : float;
  arrival_delay : float;
      (* shift the whole arrival window: lets the PCE's background IRC
         monitoring warm up on pre-existing traffic first *)
  pre_run : (Scenario.t -> unit) option;
      (* invoked after the scenario is built, before arrivals are
         scheduled: background-traffic injectors, fault scripts, ... *)
  sample_reservoir : int option;
      (* [Some k]: collect timing samples into a k-slot reservoir so
         collector memory stays O(k) — the scale experiments' mode.
         [None] (default) stores every sample exactly. *)
}

let default_spec config =
  { config; flows = 500; rate = 50.0; zipf_alpha = 0.9; hotspots = None;
    sources = None; data_packets = `Fixed 8; data_bytes = 1200;
    monitor = true; rebalance = false; monitor_interval = 1.0;
    arrival_delay = 0.0; pre_run = None; sample_reservoir = None }

type result = {
  label : string;
  spec : spec;
  scenario : Scenario.t;
  opened : int;
  established : int;
  failed : int;
  syn_retransmissions : int;
  dns_times : Netsim.Stats.Samples.t;
  handshakes : Netsim.Stats.Samples.t;
  setups : Netsim.Stats.Samples.t;
  first_packet_delays : Netsim.Stats.Samples.t;
  run_seconds : float;  (* simulated time at drain *)
  workload_seconds : float;  (* the arrival window; identical across CPs *)
}

let dataplane_counters r = Lispdp.Dataplane.counters (Scenario.dataplane r.scenario)
let drops r = (dataplane_counters r).Lispdp.Dataplane.dropped
let drop_causes r = Lispdp.Dataplane.drop_causes (Scenario.dataplane r.scenario)
let cp_stats r = Scenario.cp_stats r.scenario

let cache_hit_ratio r =
  let s = Lispdp.Dataplane.cache_stats_totals (Scenario.dataplane r.scenario) in
  let total = s.Lispdp.Map_cache.hits + s.Lispdp.Map_cache.misses in
  if total = 0 then 0.0
  else float_of_int s.Lispdp.Map_cache.hits /. float_of_int total

let drops_per_flow r =
  if r.opened = 0 then 0.0 else float_of_int (drops r) /. float_of_int r.opened

(* Total mapping state across all border routers at the end of the run:
   map-cache entries plus per-flow entries. *)
let router_state_entries r =
  let dp = Scenario.dataplane r.scenario in
  let internet = Scenario.internet r.scenario in
  let now = Netsim.Engine.now (Scenario.engine r.scenario) in
  let total = ref 0 in
  let routers = ref 0 in
  let peak = ref 0 in
  Array.iter
    (fun domain ->
      Array.iter
        (fun router ->
          let n =
            Lispdp.Map_cache.length router.Lispdp.Dataplane.cache
            + Lispdp.Flow_table.length router.Lispdp.Dataplane.flows ~now
          in
          incr routers;
          total := !total + n;
          if n > !peak then peak := n)
        (Lispdp.Dataplane.routers_of_domain dp domain))
    internet.Topology.Builder.domains;
  (!total, !peak, !routers)

let run ?(label = "") spec =
  let scenario = Scenario.build spec.config in
  let label = if label = "" then Scenario.cp_label spec.config.Scenario.cp else label in
  let traffic =
    Workload.Traffic.create
      ~rng:(Netsim.Rng.split (Scenario.rng scenario))
      ~internet:(Scenario.internet scenario) ~zipf_alpha:spec.zipf_alpha
      ?hotspots:spec.hotspots ()
  in
  let size_rng = Netsim.Rng.split (Scenario.rng scenario) in
  let source_rng = Netsim.Rng.split (Scenario.rng scenario) in
  let pick_source () =
    match spec.sources with
    | Some (_ :: _ as ids) ->
        Some (List.nth ids (Netsim.Rng.int source_rng (List.length ids)))
    | Some [] | None -> None
  in
  let duration = float_of_int spec.flows /. spec.rate in
  (match spec.pre_run with Some f -> f scenario | None -> ());
  (match (Scenario.pce scenario, spec.monitor) with
  | Some pce, true ->
      Pce_control.run_monitoring pce ~interval:spec.monitor_interval
        ~until:(spec.arrival_delay +. duration +. 10.0)
        ~rebalance:spec.rebalance
  | Some _, false | None, _ -> ());
  let opened = ref 0 in
  let arrivals_rng = Netsim.Rng.split (Scenario.rng scenario) in
  let start_arrivals () =
    (* The streaming generator keeps the engine heap O(1) in the window
       size, which is what lets the S1/S2 cells schedule 100k+ flows. *)
    Workload.Arrivals.poisson_stream ~engine:(Scenario.engine scenario)
      ~rng:arrivals_rng ~rate:spec.rate ~duration
      ~f:(fun _ ->
           let src_domain = pick_source () in
           let flow = Workload.Traffic.random_flow traffic ?src_domain () in
           let data_packets =
             match spec.data_packets with
             | `Fixed n -> n
             | `Pareto mean ->
                 Stdlib.max 1
                   (int_of_float
                      (Netsim.Rng.pareto size_rng ~shape:1.3
                         ~scale:(mean *. 0.3 /. 1.3)))
           in
           incr opened;
           ignore
             (Scenario.open_connection scenario ~flow ~data_packets
                ~data_bytes:spec.data_bytes ()))
  in
  ignore
    (Netsim.Engine.schedule (Scenario.engine scenario)
       ~delay:spec.arrival_delay start_arrivals);
  Scenario.run scenario;
  let samples () =
    match spec.sample_reservoir with
    | None -> Netsim.Stats.Samples.create ()
    | Some k ->
        Netsim.Stats.Samples.create ~mode:(Netsim.Stats.Samples.Reservoir k) ()
  in
  let dns_times = samples () in
  let handshakes = samples () in
  let setups = samples () in
  let first_packet_delays = samples () in
  let established = ref 0 in
  let failed = ref 0 in
  let syn_retx = ref 0 in
  List.iter
    (fun c ->
      (match c.Scenario.dns_time with
      | Some t -> Netsim.Stats.Samples.add dns_times t
      | None -> ());
      match c.Scenario.tcp with
      | None -> if c.Scenario.resolution_failed then incr failed
      | Some conn -> (
          syn_retx := !syn_retx + conn.Workload.Tcp.syn_transmissions - 1;
          if conn.Workload.Tcp.failed then incr failed;
          (match Workload.Tcp.handshake_time conn with
          | Some h ->
              incr established;
              Netsim.Stats.Samples.add handshakes h
          | None -> ());
          (match Scenario.total_setup_time c with
          | Some t -> Netsim.Stats.Samples.add setups t
          | None -> ());
          match conn.Workload.Tcp.first_syn_arrival with
          | Some at ->
              Netsim.Stats.Samples.add first_packet_delays
                (at -. conn.Workload.Tcp.started_at)
          | None -> ()))
    (Scenario.connections scenario);
  { label; spec; scenario; opened = !opened; established = !established;
    failed = !failed; syn_retransmissions = !syn_retx; dns_times; handshakes;
    setups; first_packet_delays;
    run_seconds = Netsim.Engine.now (Scenario.engine scenario);
    workload_seconds = duration }

(* Convenience: mean of a sample set, 0 when empty. *)
let mean samples =
  if Netsim.Stats.Samples.count samples = 0 then 0.0
  else Netsim.Stats.Samples.mean samples

let percentile_or_zero samples p =
  if Netsim.Stats.Samples.count samples = 0 then 0.0
  else Netsim.Stats.Samples.percentile samples p
