(* SEC1 — mapping-poisoning success under an off-path attacker: plain
   pull vs nonce+signature-armed pull vs PCE push.

   Every map-request of the pull cells is raced by a forged Map-Reply
   and a replayed stale reply (spoof and replay rates 1.0).  Without
   countermeasures every race is lost: the attacker's RLOC lands in the
   ITR's cache and the poisoning success rate is 1.  With the
   unpredictable-nonce echo and signature verification armed the blind
   off-path forgeries are all refused.  The PCE cell pushes mappings
   over its own channel — there is no pull resolution to race, so the
   attacker never even attempts, the structural advantage the paper's
   control-plane split buys.

   Two attack-free cells measure the price of the signature
   countermeasure: the per-reply verification cost must surface as a
   strictly larger mean connection setup (the T_map_resol tax — the
   per-cell [run_label]s also split the BENCH.json latency block so the
   t_map_resol delta is gated byte-for-byte against the baseline).

   Each cell records a {!Security_record} row; `bench --check` enforces
   every gate and the determinism of the measured rates. *)

open Core

let id = "sec1"
let title = "SEC1: mapping-poisoning success, pull vs authenticated pull vs PCE push"

let seed = 41
let params = Topology.Builder.default_params

(* The full map-plane attack: every resolution raced by a forged reply
   and a replayed stale reply.  (DNS poisoning is SEC-tested at the
   unit level; keeping it out of SEC1 keeps the cell a pure map-plane
   comparison — the PCE's piggybacked channel would otherwise mix the
   two planes' verdicts.) *)
let armed_attack =
  { Scenario.default_attack with Scenario.atk_spoof = 1.0; atk_replay = 1.0 }

let armed_auth =
  { Scenario.default_auth with Scenario.auth_nonce = true; auth_sig = true }

let sig_only_auth = { Scenario.default_auth with Scenario.auth_sig = true }

type cfg = {
  label : string;
  cp_label : string;
  cp : Scenario.cp_kind;
  attack : Scenario.attack_profile option;
  auth : Scenario.auth_profile option;
}

(* Pull cells run in queue mode (hold the first packet while the
   mapping resolves) so resolution latency — and therefore both the
   poisoning damage and the signature verification cost — lands
   directly in T_setup instead of hiding behind drop-mode's 1 s SYN
   retransmission. *)
let pull = Scenario.Cp_pull_queue 32

let cfgs =
  [ { label = "pull"; cp_label = "pull-queue"; cp = pull;
      attack = Some armed_attack; auth = None };
    { label = "pull-auth"; cp_label = "pull-queue"; cp = pull;
      attack = Some armed_attack; auth = Some armed_auth };
    { label = "pce"; cp_label = "pce";
      cp = Scenario.Cp_pce Pce_control.default_options;
      attack = Some armed_attack; auth = None };
    { label = "pull-clean"; cp_label = "pull-queue"; cp = pull;
      attack = None; auth = None };
    { label = "pull-sig"; cp_label = "pull-queue"; cp = pull;
      attack = None; auth = Some sig_only_auth } ]

type cell = {
  c_attempted : int;
  c_accepted : int;
  c_success : float;
  c_gleaned : int;
  c_glean_rejected : int;
  c_pollution : float;
  c_setup_mean : float;
}

let measure cfg =
  let config =
    { Scenario.default_config with
      Scenario.cp = cfg.cp; topology = `Random params; seed;
      attack = cfg.attack; auth = cfg.auth;
      run_label = Some (Printf.sprintf "sec1-%s" cfg.label) }
  in
  let spec =
    { (Harness.default_spec config) with Harness.flows = 400; rate = 50.0 }
  in
  let r = Harness.run ~label:cfg.label spec in
  let scenario = r.Harness.scenario in
  let cp = Harness.cp_stats r in
  let dnsc = Dnssim.System.counters (Scenario.dns scenario) in
  let attempted =
    match Scenario.adversary scenario with
    | Some adv ->
        Netsim.Adversary.forged_replies adv
        + Netsim.Adversary.replayed_replies adv
        + Netsim.Adversary.poisoned_answers adv
    | None -> 0
  in
  let accepted =
    cp.Mapsys.Cp_stats.spoofed_accepted
    + cp.Mapsys.Cp_stats.replayed_accepted
    + dnsc.Dnssim.System.poisoned_accepted
  in
  let dp = Scenario.dataplane scenario in
  let gleaned = Lispdp.Dataplane.gleaned_total dp in
  let entries = Lispdp.Dataplane.cache_entries_total dp in
  { c_attempted = attempted; c_accepted = accepted;
    c_success = Security_record.success_rate ~attempted ~accepted;
    c_gleaned = gleaned;
    c_glean_rejected =
      (Lispdp.Dataplane.cache_stats_totals dp).Lispdp.Map_cache.glean_rejections;
    c_pollution =
      (if entries = 0 then 0.0
       else float_of_int gleaned /. float_of_int entries);
    c_setup_mean = Harness.mean r.Harness.setups }

(* Gates.  The ordering claim — plain pull > armed pull >= PCE push —
   falls out of the per-cell bounds: the unarmed cell must lose at
   least 90% of the races it faces, while a blind forgery has no
   business beating a 2^32 nonce plus a signature (and the PCE faces
   no race at all), so both armed cells must sit at exactly zero. *)
let plain_floor = 0.9
let zero = 1e-12

let gate_of cells cfg (c : cell) =
  match cfg.label with
  | "pull" ->
      (Printf.sprintf "success >= %.2f" plain_floor, c.c_success >= plain_floor)
  | "pull-auth" | "pce" -> ("success = 0", c.c_success <= zero)
  | "pull-sig" -> (
      (* The signature tax: strictly slower than the identical
         attack-free run without verification. *)
      match List.assoc_opt "pull-clean" cells with
      | Some (clean : cell) ->
          ("setup > clean", c.c_setup_mean > clean.c_setup_mean)
      | None -> ("setup > clean", false))
  | _ -> ("-", true)

let tables () =
  let cells = List.map (fun cfg -> (cfg.label, measure cfg)) cfgs in
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cell"; "cp"; "attempts"; "accepted"; "success"; "T_setup mean";
          "gate" ]
  in
  List.iter2
    (fun cfg (_, c) ->
      let gate, ok = gate_of cells cfg c in
      Security_record.record
        { Security_record.r_run = Printf.sprintf "%s/s%d" cfg.label seed;
          r_cp = cfg.cp_label; r_attempted = c.c_attempted;
          r_accepted = c.c_accepted; r_success = c.c_success;
          r_gleaned = c.c_gleaned; r_glean_rejected = c.c_glean_rejected;
          r_pollution = c.c_pollution; r_setup_mean = c.c_setup_mean;
          r_gate = gate; r_ok = ok };
      Metrics.Table.add_row table
        [ cfg.label; cfg.cp_label; string_of_int c.c_attempted;
          string_of_int c.c_accepted;
          Metrics.Table.cell_float c.c_success;
          Metrics.Table.cell_ms c.c_setup_mean;
          (gate ^ if ok then "" else "  FAILED") ])
    cfgs cells;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
