(* M3 — eviction policies under TTL churn.

   The M1/M2 regime is pure capacity pressure; real map-caches also age
   entries out.  Here simulated time advances per reference and
   mappings carry a finite TTL, so entries die both ways, and the
   cache's expiration-vs-eviction attribution matters: an
   already-expired victim picked under capacity pressure must count as
   an expiration (the accounting this PR fixes), or the policy
   comparison below would overstate capacity pressure — LRU's victim
   tail is exactly where lapsed entries pool.  TTL-hybrid reaps the
   shortest-remaining-lifetime entry first, which with a uniform TTL
   means oldest-inserted regardless of popularity — so it trails LRU,
   whose recency order tracks the live working set.  No analytical
   gate: the Coras model excludes TTL; the rows land in BENCH.json
   ungated, determinism-only. *)

let id = "m3"
let title = "M3: policy face-off under TTL churn (1M EIDs, 60s TTL)"
let n = 1_000_000
let capacity = 16_384
let alpha = 0.9
let warmup = 1_000_000
let measure_refs = 2_000_000

(* 1000 references per simulated second; a 60s TTL caps an entry's life
   at 60k references.  At a ~0.6 miss rate that is ~36k insertions per
   TTL window pressing on a 16_384-entry cache, so expiry and capacity
   pressure are comparable forces (a larger cache never fills before
   its entries lapse and every policy degenerates to pure TTL). *)
let dt = 1e-3
let ttl = 60.0
let policies = [ Lispdp.Map_cache.Lru; Lispdp.Map_cache.Lfu; Lispdp.Map_cache.Ttl_hybrid ]
let universe_seed = 1019
let cell_seed = 4001

let cells () =
  let universe =
    Workload.Eid_universe.generate ~rng:(Netsim.Rng.create universe_seed) ~n
  in
  let dist = Netsim.Rng.Zipf.create ~n ~alpha in
  List.map
    (fun policy ->
      let label = Lispdp.Map_cache.policy_label policy in
      let r =
        Cache_lab.run_cell ~universe ~dist ~policy ~capacity ~warmup
          ~refs:measure_refs ~ttl ~dt ~seed:cell_seed ()
      in
      Cache_record.record
        { Cache_record.r_run = label; r_policy = label; r_n = n;
          r_alpha = alpha; r_capacity = capacity; r_refs = measure_refs;
          r_measured_miss = r.Cache_lab.measured_miss;
          r_predicted_miss = None; r_rel_err = None; r_tolerance = None;
          r_ok = true };
      (label, r))
    policies

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "policy"; "measured-miss"; "evictions"; "expirations";
          "expired-share" ]
  in
  List.iter
    (fun (label, r) ->
      let deaths = r.Cache_lab.evictions + r.Cache_lab.expirations in
      Metrics.Table.add_row table
        [ label; Printf.sprintf "%.5f" r.Cache_lab.measured_miss;
          Metrics.Table.cell_int r.Cache_lab.evictions;
          Metrics.Table.cell_int r.Cache_lab.expirations;
          Metrics.Table.cell_pct
            (float_of_int r.Cache_lab.expirations
            /. float_of_int (Stdlib.max 1 deaths)) ])
    (cells ());
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
