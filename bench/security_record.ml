(* Adversarial-robustness rows for BENCH.json.

   The SEC experiments record one [row] per attack cell here
   (process-global, like {!Cache_record} and {!Telemetry_record}); the
   bench runner ships the rows from the worker back to the parent,
   [Runner.bench_json] emits them as the experiment's "security" block,
   and `bench --check` gates on them: every row's [r_ok] is strict (the
   poisoning-success or pollution gate the experiment states), and the
   measured rates are deterministic against the committed baseline.

   All quantities are simulated — attack attempts, acceptance verdicts,
   cache pollution and setup percentiles cannot depend on worker count
   or wall-clock. *)

type row = {
  r_run : string;  (* cell label, unique within the experiment *)
  r_cp : string;  (* control-plane label *)
  r_attempted : int;  (* attacker-side attempts (forged+replayed+poisoned) *)
  r_accepted : int;  (* attempts that beat verification *)
  r_success : float;  (* accepted / attempted; 0 when nothing attempted *)
  r_gleaned : int;  (* live gleaned cache entries at end of run *)
  r_glean_rejected : int;  (* gleaned inserts refused by the admission cap *)
  r_pollution : float;  (* gleaned fraction of the victim's map-caches *)
  r_setup_mean : float;  (* mean T_setup, simulated seconds *)
  r_gate : string;  (* human-readable gate; "-" = ungated reference cell *)
  r_ok : bool;  (* the gate held (always true when ungated) *)
}

let current : row list ref = ref []
let record row = current := row :: !current
let rows () = List.rev !current
let reset () = current := []

let success_rate ~attempted ~accepted =
  if attempted = 0 then 0.0
  else float_of_int accepted /. float_of_int attempted

let json_of_row r =
  Obs.Json.Obj
    [ ("run", Obs.Json.String r.r_run);
      ("cp", Obs.Json.String r.r_cp);
      ("attempted", Obs.Json.Int r.r_attempted);
      ("accepted", Obs.Json.Int r.r_accepted);
      ("success", Obs.Json.Float r.r_success);
      ("gleaned", Obs.Json.Int r.r_gleaned);
      ("glean_rejected", Obs.Json.Int r.r_glean_rejected);
      ("pollution", Obs.Json.Float r.r_pollution);
      ("setup_mean", Obs.Json.Float r.r_setup_mean);
      ("gate", Obs.Json.String r.r_gate);
      ("ok", Obs.Json.Bool r.r_ok) ]

let json_of_rows rows = Obs.Json.List (List.map json_of_row rows)

let row_of_json json =
  let str name = Option.bind (Obs.Json.member name json) Obs.Json.to_string_opt in
  let int name = Option.bind (Obs.Json.member name json) Obs.Json.to_int_opt in
  let flt name = Option.bind (Obs.Json.member name json) Obs.Json.to_float_opt in
  match (str "run", str "cp", int "attempted", int "accepted", flt "success",
         int "gleaned", int "glean_rejected", flt "pollution",
         flt "setup_mean", str "gate",
         Option.bind (Obs.Json.member "ok" json) Obs.Json.to_bool_opt)
  with
  | ( Some r_run, Some r_cp, Some r_attempted, Some r_accepted,
      Some r_success, Some r_gleaned, Some r_glean_rejected,
      Some r_pollution, Some r_setup_mean, Some r_gate, Some r_ok ) ->
      Some
        { r_run; r_cp; r_attempted; r_accepted; r_success; r_gleaned;
          r_glean_rejected; r_pollution; r_setup_mean; r_gate; r_ok }
  | _ -> None

let rows_of_json = function
  | Obs.Json.List l -> Some (List.filter_map row_of_json l)
  | _ -> None
