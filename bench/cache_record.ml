(* Measured-vs-predicted cache rows for BENCH.json.

   The M-series experiments compare measured map-cache miss rates
   against the Coras analytical model.  Each cell records one [row]
   here (process-global, like the profiler); the bench runner ships the
   rows from the worker back to the parent, [Runner.bench_json] emits
   them as the experiment's "cache" block, and `bench --check` gates on
   them: every row's [r_ok] is strict (model agreement within the
   experiment's stated tolerance), and measured values are
   deterministic against the committed baseline.

   Policies without an analytical prediction (LFU, TTL-hybrid, TTL
   churn cells) leave the prediction fields [None]: the row is recorded
   for the curve but not model-gated. *)

type row = {
  r_run : string;  (* cell label, unique within the experiment *)
  r_policy : string;
  r_n : int;  (* EID universe size *)
  r_alpha : float;  (* Zipf skew *)
  r_capacity : int;  (* cache capacity *)
  r_refs : int;  (* references in the measurement window *)
  r_measured_miss : float;
  r_predicted_miss : float option;
  r_rel_err : float option;  (* |measured - predicted| / predicted *)
  r_tolerance : float option;  (* allowed relative error *)
  r_ok : bool;  (* within tolerance (always true when ungated) *)
}

let current : row list ref = ref []
let record row = current := row :: !current
let rows () = List.rev !current
let reset () = current := []

let json_of_row r =
  let opt name v rest =
    match v with Some f -> (name, Obs.Json.Float f) :: rest | None -> rest
  in
  Obs.Json.Obj
    ([ ("run", Obs.Json.String r.r_run);
       ("policy", Obs.Json.String r.r_policy);
       ("n", Obs.Json.Int r.r_n);
       ("alpha", Obs.Json.Float r.r_alpha);
       ("capacity", Obs.Json.Int r.r_capacity);
       ("refs", Obs.Json.Int r.r_refs);
       ("measured_miss", Obs.Json.Float r.r_measured_miss) ]
    @ opt "predicted_miss" r.r_predicted_miss
        (opt "rel_err" r.r_rel_err
           (opt "tolerance" r.r_tolerance
              [ ("ok", Obs.Json.Bool r.r_ok) ])))

let json_of_rows rows = Obs.Json.List (List.map json_of_row rows)

let row_of_json json =
  let str name = Option.bind (Obs.Json.member name json) Obs.Json.to_string_opt in
  let int name = Option.bind (Obs.Json.member name json) Obs.Json.to_int_opt in
  let flt name = Option.bind (Obs.Json.member name json) Obs.Json.to_float_opt in
  match (str "run", str "policy", int "n", flt "alpha", int "capacity",
         int "refs", flt "measured_miss",
         Option.bind (Obs.Json.member "ok" json) Obs.Json.to_bool_opt)
  with
  | ( Some r_run, Some r_policy, Some r_n, Some r_alpha, Some r_capacity,
      Some r_refs, Some r_measured_miss, Some r_ok ) ->
      Some
        { r_run; r_policy; r_n; r_alpha; r_capacity; r_refs; r_measured_miss;
          r_predicted_miss = flt "predicted_miss"; r_rel_err = flt "rel_err";
          r_tolerance = flt "tolerance"; r_ok }
  | _ -> None

let rows_of_json = function
  | Obs.Json.List l -> Some (List.filter_map row_of_json l)
  | _ -> None
