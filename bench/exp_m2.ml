(* M2 — eviction-policy face-off across popularity skew.

   Sweeps the Zipf exponent at a fixed cache size over all three
   eviction policies.  LRU cells are additionally validated against the
   Coras model (same gate as M1); LFU and TTL-hybrid have no analytical
   prediction — their rows land in BENCH.json ungated, as the measured
   curve the policy comparison rests on.  With a TTL far beyond the
   cell span, TTL-hybrid degenerates to FIFO (eviction order =
   insertion order), which is exactly the interesting contrast with
   recency (LRU) and frequency (LFU) under heavy vs light skew. *)

let id = "m2"
let title = "M2: policy face-off: miss rate vs Zipf skew (1M EIDs)"
let n = 1_000_000
let capacity = 65_536
let alphas = [ 0.6; 0.8; 1.0; 1.2 ]
let policies = [ Lispdp.Map_cache.Lru; Lispdp.Map_cache.Lfu; Lispdp.Map_cache.Ttl_hybrid ]
let warmup = 2_000_000
let measure_refs = 2_000_000
let tolerance = 0.10
let abs_floor = 0.005
let ttl = 1e9
let universe_seed = 1013
let cell_seed = 3001

let cells () =
  let universe =
    Workload.Eid_universe.generate ~rng:(Netsim.Rng.create universe_seed) ~n
  in
  List.map
    (fun alpha ->
      let dist = Netsim.Rng.Zipf.create ~n ~alpha in
      let masses = Cache_lab.masses_of dist in
      let prediction = Workload.Cache_model.predict ~masses ~capacity in
      let predicted = prediction.Workload.Cache_model.miss_rate in
      let per_policy =
        List.map
          (fun policy ->
            let label = Lispdp.Map_cache.policy_label policy in
            let r =
              Cache_lab.run_cell ~universe ~dist ~policy ~capacity ~warmup
                ~refs:measure_refs ~ttl ~dt:0.0
                ~seed:(cell_seed + int_of_float (alpha *. 100.0)) ()
            in
            let gated = policy = Lispdp.Map_cache.Lru in
            let rel_err =
              Float.abs (r.Cache_lab.measured_miss -. predicted)
              /. Float.max predicted 1e-12
            in
            let ok =
              (not gated)
              || rel_err <= tolerance
              || Float.abs (r.Cache_lab.measured_miss -. predicted)
                 <= abs_floor
            in
            Cache_record.record
              { Cache_record.r_run =
                  Printf.sprintf "%s/a=%.1f" label alpha;
                r_policy = label; r_n = n; r_alpha = alpha;
                r_capacity = capacity; r_refs = measure_refs;
                r_measured_miss = r.Cache_lab.measured_miss;
                r_predicted_miss = (if gated then Some predicted else None);
                r_rel_err = (if gated then Some rel_err else None);
                r_tolerance = (if gated then Some tolerance else None);
                r_ok = ok };
            (policy, r, ok))
          policies
      in
      (alpha, predicted, per_policy))
    alphas

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "alpha"; "model-miss (LRU)"; "lru-miss"; "lfu-miss";
          "ttl-hybrid-miss"; "model" ]
  in
  let all_ok = ref true in
  List.iter
    (fun (alpha, predicted, per_policy) ->
      let miss p =
        match List.find_opt (fun (q, _, _) -> q = p) per_policy with
        | Some (_, r, _) -> Printf.sprintf "%.5f" r.Cache_lab.measured_miss
        | None -> "-"
      in
      let row_ok = List.for_all (fun (_, _, ok) -> ok) per_policy in
      if not row_ok then all_ok := false;
      Metrics.Table.add_row table
        [ Printf.sprintf "%.1f" alpha; Printf.sprintf "%.5f" predicted;
          miss Lispdp.Map_cache.Lru; miss Lispdp.Map_cache.Lfu;
          miss Lispdp.Map_cache.Ttl_hybrid;
          (if row_ok then "OK" else "DIVERGED") ])
    (cells ());
  if not !all_ok then
    failwith
      (Printf.sprintf
         "M2: measured LRU miss rate diverged from the Coras model beyond \
          %.0f%% relative (abs floor %g)"
         (tolerance *. 100.0) abs_floor);
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
