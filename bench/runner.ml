(* Scale-out experiment runner.

   Forks one worker process per task, captures each worker's stdout in a
   temporary file, and replays the outputs on the parent's [emit] stream
   in task order — so the bytes emitted are identical whatever the
   worker count or completion order.  Per-task wall-clock, engine
   events/sec, peak RSS, latency and self-profile come back over a
   pipe as a marshalled summary; the parent drains all summary pipes
   concurrently while workers run, so no writer can block however
   large the summary grows. *)

type task = {
  task_id : string;
  task_title : string;
  task_run : unit -> unit;  (* prints its report to stdout *)
}

type outcome = {
  out_id : string;
  out_title : string;
  out_text : string;  (* captured stdout of the worker *)
  out_wall : float;  (* seconds of real time in the worker *)
  out_events : int;  (* engine events fired by the worker *)
  out_peak_rss_kb : int;  (* worker VmHWM; 0 when unavailable *)
  out_ok : bool;
  out_latency : (string * (string * float) list) list;
      (* per-run latency decomposition, attach order; derived from
         simulated time only, so identical whatever the job count *)
  out_prof : (Obs.Prof.report * (string * float) list) option;
      (* self-profile of the worker (per-phase breakdown + GC deltas);
         None when profiling was off or the worker died *)
  out_cache : Cache_record.row list;
      (* measured-vs-predicted cache cells the task recorded (M-series);
         simulated quantities only, so identical whatever the job count *)
  out_telemetry : Telemetry_record.row list;
      (* TE-balance telemetry cells (telemetry-enabled experiments);
         simulated quantities only, so identical whatever the job count *)
  out_security : Security_record.row list;
      (* adversarial-robustness cells (SEC experiments); simulated
         quantities only, so identical whatever the job count *)
}

(* Summary record marshalled from worker to parent: plain scalars,
   strings and data records only, so marshalling is closure-free and
   version-safe within one binary.  The parent drains every summary
   pipe concurrently (select) while workers run, so the payload may
   exceed the pipe buffer — a long sweep's latency block does — but
   truly bulk data (the self-profile intervals) still goes through
   temp files. *)
type summary = {
  s_wall : float;
  s_events : int;
  s_rss_kb : int;
  s_ok : bool;
  s_latency : (string * (string * float) list) list;
  s_prof : (Obs.Prof.report * (string * float) list) option;
  s_cache : Cache_record.row list;
  s_telemetry : Telemetry_record.row list;
  s_security : Security_record.row list;
}

let peak_rss_kb () =
  (* VmHWM from /proc/self/status, in kB; Linux-only by construction. *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let rest = String.sub line 6 (String.length line - 6) in
              try Scanf.sscanf rest " %d" (fun v -> v) with _ -> 0
            else scan ()
        | exception End_of_file -> 0
      in
      let v = scan () in
      close_in ic;
      v

let flush_std () =
  Format.pp_print_flush Format.std_formatter ();
  flush stdout;
  flush stderr

let header task = Printf.sprintf ">>> [%s] %s\n" task.task_id task.task_title

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type worker = {
  w_task : task;
  w_index : int;
  w_pid : int;
  w_pipe : Unix.file_descr;  (* read end of the summary pipe *)
  w_out_file : string;
  w_buf : Buffer.t;  (* summary bytes drained so far *)
}

(* Top-level profiler phase wrapped around the whole task: with it,
   every profiled nanosecond of the worker's run is inside some phase,
   so the breakdown's coverage is structurally ~100% and "experiment"
   self-time is exactly the task work no subsystem phase claims. *)
let ph_task = Obs.Prof.phase "experiment"

let spawn ~latency ~profile ~prof_file index task =
  let out_file = Filename.temp_file "bench-worker" ".out" in
  let pipe_r, pipe_w = Unix.pipe () in
  (* Anything buffered now would otherwise be flushed twice, once per
     process, corrupting the deterministic stream. *)
  flush_std ();
  match Unix.fork () with
  | 0 ->
      (* Worker: stdout goes to the capture file; stderr stays shared
         (progress/diagnostics are allowed to interleave). *)
      Unix.close pipe_r;
      let out_fd =
        Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      Unix.dup2 out_fd Unix.stdout;
      Unix.close out_fd;
      (* Latency decomposition rides on the Obs hub: install a runtime
         with no exporters so every scenario the task builds feeds a
         Latency analyzer.  Simulated time only — the numbers cannot
         depend on worker scheduling.  Skipped when a runtime is
         already active (the task owns the wiring then). *)
      let observe = latency && not (Obs.Runtime.active ()) in
      if observe then ignore (Obs.Runtime.install ~latency:true ());
      (* Rows must be this task's alone, whatever the parent had. *)
      Cache_record.reset ();
      Telemetry_record.reset ();
      Security_record.reset ();
      if profile then begin
        if prof_file <> None then Obs.Prof.set_record_intervals true;
        Obs.Prof.start ()
      end;
      let gc0 = if profile then Obs.Prof.gc_snapshot () else [] in
      let t0 = Unix.gettimeofday () in
      let events0 = Netsim.Engine.total_events_processed () in
      let ok =
        try
          if profile then Obs.Prof.with_phase ph_task task.task_run
          else task.task_run ();
          true
        with exn ->
          Printf.eprintf "[%s] worker failed: %s\n%!" task.task_id
            (Printexc.to_string exn);
          false
      in
      (* Stop the profiler the moment the task returns: the epilogue
         below (latency reports, runtime finalize) is runner overhead,
         not experiment time, and must not dilute coverage. *)
      let prof =
        if profile then begin
          Obs.Prof.stop ();
          Some (Obs.Prof.report (), Obs.Prof.gc_since gc0)
        end
        else None
      in
      let lat = if observe then Obs.Runtime.latency_reports () else [] in
      if observe then Obs.Runtime.finalize ();
      (* Chrome-trace fragments are written to a temp file, one event
         object per line — too big for the summary pipe. *)
      (match prof_file with
      | Some pf when profile ->
          let oc = open_out pf in
          List.iter
            (fun ev ->
              output_string oc (Obs.Json.to_string ev);
              output_char oc '\n')
            (Obs.Prof.chrome_events ~pid:(index + 1)
               ~process_name:(task.task_id ^ " " ^ task.task_title)
               (Obs.Prof.intervals ()));
          close_out oc
      | Some _ | None -> ());
      let summary =
        { s_wall = Unix.gettimeofday () -. t0;
          s_events = Netsim.Engine.total_events_processed () - events0;
          s_rss_kb = peak_rss_kb (); s_ok = ok; s_latency = lat;
          s_prof = prof; s_cache = Cache_record.rows ();
          s_telemetry = Telemetry_record.rows ();
          s_security = Security_record.rows () }
      in
      flush_std ();
      let blob = Marshal.to_bytes summary [] in
      let rec write_all off =
        if off < Bytes.length blob then
          let n = Unix.write pipe_w blob off (Bytes.length blob - off) in
          write_all (off + n)
      in
      (try write_all 0 with Unix.Unix_error _ -> ());
      (try Unix.close pipe_w with Unix.Unix_error _ -> ());
      (* _exit, not exit: at_exit handlers belong to the parent. *)
      Unix._exit (if ok then 0 else 1)
  | pid ->
      Unix.close pipe_w;
      { w_task = task; w_index = index; w_pid = pid; w_pipe = pipe_r;
        w_out_file = out_file; w_buf = Buffer.create 256 }

let collect w =
  let blob = Buffer.to_bytes w.w_buf in
  let summary =
    if Bytes.length blob = 0 then
      (* Worker died before reporting (segfault, kill): synthesise. *)
      { s_wall = 0.0; s_events = 0; s_rss_kb = 0; s_ok = false;
        s_latency = []; s_prof = None; s_cache = []; s_telemetry = [];
        s_security = [] }
    else (Marshal.from_bytes blob 0 : summary)
  in
  let text = try read_file w.w_out_file with Sys_error _ -> "" in
  (try Sys.remove w.w_out_file with Sys_error _ -> ());
  { out_id = w.w_task.task_id; out_title = w.w_task.task_title;
    out_text = text; out_wall = summary.s_wall; out_events = summary.s_events;
    out_peak_rss_kb = summary.s_rss_kb; out_ok = summary.s_ok;
    out_latency = summary.s_latency; out_prof = summary.s_prof;
    out_cache = summary.s_cache; out_telemetry = summary.s_telemetry;
    out_security = summary.s_security }

let log_line o =
  let rate =
    if o.out_wall > 0.0 then float_of_int o.out_events /. o.out_wall else 0.0
  in
  Printf.sprintf "    [%s] %.1fs wall, %d events (%.0f kev/s), peak RSS %d MB%s\n"
    o.out_id o.out_wall o.out_events (rate /. 1e3)
    (o.out_peak_rss_kb / 1024)
    (if o.out_ok then "" else " — FAILED")

(* Run every task, [jobs] workers at a time, emitting the deterministic
   stream (headers + captured outputs, task order) on [emit] and the
   timing lines on [log].  Returns the outcomes in task order.

   [profile] (default on) runs each worker under the self-profiler;
   the per-phase breakdown comes back in [out_prof].  [prof_trace]
   additionally records phase intervals in every worker and assembles
   them into one Chrome-trace file, one process per experiment. *)
let run ?(jobs = 1) ?(latency = true) ?(profile = true) ?prof_trace
    ?(emit = print_string) ?(log = prerr_string) tasks =
  if jobs < 1 then invalid_arg "Runner.run: jobs must be >= 1";
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let outcomes : outcome option array = Array.make n None in
  let prof_files : string option array = Array.make n None in
  let running = ref [] in
  let next = ref 0 in
  let emitted = ref 0 in
  let emit_ready () =
    while !emitted < n && outcomes.(!emitted) <> None do
      (match outcomes.(!emitted) with
      | Some o ->
          emit (header tasks.(!emitted));
          emit o.out_text;
          emit "\n";
          log (log_line o)
      | None -> assert false);
      incr emitted
    done
  in
  while !next < n || !running <> [] do
    (* Keep the worker pool full... *)
    while !next < n && List.length !running < jobs do
      let prof_file =
        if profile && prof_trace <> None then
          Some (Filename.temp_file "bench-prof" ".jsonl")
        else None
      in
      prof_files.(!next) <- prof_file;
      running :=
        spawn ~latency ~profile ~prof_file !next tasks.(!next) :: !running;
      incr next
    done;
    (* ...then drain whichever summary pipes have bytes.  Draining
       while workers run is what makes arbitrarily large summaries
       safe: a worker blocked writing past the pipe buffer unblocks as
       soon as we read, and EOF (the worker closed its end) is the
       completion signal — only then is the reap guaranteed not to
       wait on a still-writing worker. *)
    let fds = List.map (fun w -> w.w_pipe) !running in
    match Unix.select fds [] [] (-1.0) with
    | readable, _, _ ->
        let chunk = Bytes.create 65536 in
        List.iter
          (fun fd ->
            let w = List.find (fun w -> w.w_pipe = fd) !running in
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
                (* EOF: the worker is done (or died); reap it. *)
                Unix.close fd;
                (try ignore (Unix.waitpid [] w.w_pid)
                 with Unix.Unix_error _ -> ());
                running := List.filter (fun x -> x.w_pid <> w.w_pid) !running;
                outcomes.(w.w_index) <- Some (collect w);
                emit_ready ()
            | len -> Buffer.add_subbytes w.w_buf chunk 0 len
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  emit_ready ();
  (* Splice the per-worker Chrome-trace fragments (one JSON event per
     line) into a single trace, streaming so a large profile never
     lives in memory whole. *)
  (match prof_trace with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc "{\"traceEvents\":[";
      let first = ref true in
      Array.iter
        (function
          | None -> ()
          | Some pf ->
              (match open_in pf with
              | exception Sys_error _ -> ()
              | ic ->
                  (try
                     while true do
                       let line = input_line ic in
                       if String.length line > 0 then begin
                         if not !first then output_char oc ',';
                         first := false;
                         output_string oc line
                       end
                     done
                   with End_of_file -> ());
                  close_in ic);
              (try Sys.remove pf with Sys_error _ -> ()))
        prof_files;
      output_string oc "],\"displayTimeUnit\":\"ms\"}\n";
      close_out oc);
  Array.to_list (Array.map Option.get outcomes)

(* BENCH.json: the machine-readable perf record, one object per
   experiment plus run-level totals.  Schema documented in
   doc/performance.md. *)
let bench_json ?engine ~jobs ~total_wall outcomes =
  let latency_run (label, metrics) =
    (* A list of objects, not one object: run labels can repeat when an
       experiment replays the same scenario config. *)
    Obs.Json.Obj
      (("run", Obs.Json.String label)
      :: List.map (fun (k, v) -> (k, Obs.Json.Float v)) metrics)
  in
  let experiment o =
    Obs.Json.Obj
      ([ ("id", Obs.Json.String o.out_id);
        ("title", Obs.Json.String o.out_title);
        ("ok", Obs.Json.Bool o.out_ok);
        ("wall_s", Obs.Json.Float o.out_wall);
        ("events", Obs.Json.Int o.out_events);
        ( "events_per_sec",
          Obs.Json.Float
            (if o.out_wall > 0.0 then float_of_int o.out_events /. o.out_wall
             else 0.0) );
        ("peak_rss_kb", Obs.Json.Int o.out_peak_rss_kb);
        ("latency", Obs.Json.List (List.map latency_run o.out_latency));
        ( "prof",
          match o.out_prof with
          | Some (report, gc) -> Obs.Prof.json_of_report ~gc report
          | None -> Obs.Json.Null ) ]
      @
      (* Only experiments that measured cache, telemetry or security
         cells carry the block, so the schema of every other experiment
         object is unchanged. *)
      (match o.out_cache with
      | [] -> []
      | rows -> [ ("cache", Cache_record.json_of_rows rows) ])
      @
      (match o.out_telemetry with
      | [] -> []
      | rows -> [ ("telemetry", Telemetry_record.json_of_rows rows) ])
      @
      match o.out_security with
      | [] -> []
      | rows -> [ ("security", Security_record.json_of_rows rows) ])
  in
  Obs.Json.Obj
    ([ ("schema", Obs.Json.String "lisp-pce-bench/6");
       ("jobs", Obs.Json.Int jobs);
       ("total_wall_s", Obs.Json.Float total_wall);
       ( "total_events",
         Obs.Json.Int (List.fold_left (fun a o -> a + o.out_events) 0 outcomes)
       ) ]
    @ (match engine with
      | Some block -> [ ("engine", block) ]
      | None -> [])
    @ [ ("experiments", Obs.Json.List (List.map experiment outcomes)) ])

let write_bench_json ?engine ~path ~jobs ~total_wall outcomes =
  let oc = open_out path in
  output_string oc
    (Obs.Json.to_string (bench_json ?engine ~jobs ~total_wall outcomes));
  output_char oc '\n';
  close_out oc
