(* Scale-out experiment runner.

   Forks one worker process per task, captures each worker's stdout in a
   temporary file, and replays the outputs on the parent's [emit] stream
   in task order — so the bytes emitted are identical whatever the
   worker count or completion order.  Per-task wall-clock, engine
   events/sec and peak RSS come back over a pipe (a small marshalled
   summary; the bulk output never crosses the pipe, so no writer can
   block) and feed the BENCH.json perf trajectory. *)

type task = {
  task_id : string;
  task_title : string;
  task_run : unit -> unit;  (* prints its report to stdout *)
}

type outcome = {
  out_id : string;
  out_title : string;
  out_text : string;  (* captured stdout of the worker *)
  out_wall : float;  (* seconds of real time in the worker *)
  out_events : int;  (* engine events fired by the worker *)
  out_peak_rss_kb : int;  (* worker VmHWM; 0 when unavailable *)
  out_ok : bool;
  out_latency : (string * (string * float) list) list;
      (* per-run latency decomposition, attach order; derived from
         simulated time only, so identical whatever the job count *)
}

(* Summary record marshalled from worker to parent: plain scalars and
   strings only, so marshalling is closure-free and version-safe within
   one binary. *)
type summary = {
  s_wall : float;
  s_events : int;
  s_rss_kb : int;
  s_ok : bool;
  s_latency : (string * (string * float) list) list;
}

let peak_rss_kb () =
  (* VmHWM from /proc/self/status, in kB; Linux-only by construction. *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let rest = String.sub line 6 (String.length line - 6) in
              try Scanf.sscanf rest " %d" (fun v -> v) with _ -> 0
            else scan ()
        | exception End_of_file -> 0
      in
      let v = scan () in
      close_in ic;
      v

let flush_std () =
  Format.pp_print_flush Format.std_formatter ();
  flush stdout;
  flush stderr

let header task = Printf.sprintf ">>> [%s] %s\n" task.task_id task.task_title

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type worker = {
  w_task : task;
  w_index : int;
  w_pid : int;
  w_pipe : Unix.file_descr;  (* read end of the summary pipe *)
  w_out_file : string;
}

let spawn ~latency index task =
  let out_file = Filename.temp_file "bench-worker" ".out" in
  let pipe_r, pipe_w = Unix.pipe () in
  (* Anything buffered now would otherwise be flushed twice, once per
     process, corrupting the deterministic stream. *)
  flush_std ();
  match Unix.fork () with
  | 0 ->
      (* Worker: stdout goes to the capture file; stderr stays shared
         (progress/diagnostics are allowed to interleave). *)
      Unix.close pipe_r;
      let out_fd =
        Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      Unix.dup2 out_fd Unix.stdout;
      Unix.close out_fd;
      (* Latency decomposition rides on the Obs hub: install a runtime
         with no exporters so every scenario the task builds feeds a
         Latency analyzer.  Simulated time only — the numbers cannot
         depend on worker scheduling.  Skipped when a runtime is
         already active (the task owns the wiring then). *)
      let observe = latency && not (Obs.Runtime.active ()) in
      if observe then ignore (Obs.Runtime.install ~latency:true ());
      let t0 = Unix.gettimeofday () in
      let events0 = Netsim.Engine.total_events_processed () in
      let ok =
        try
          task.task_run ();
          true
        with exn ->
          Printf.eprintf "[%s] worker failed: %s\n%!" task.task_id
            (Printexc.to_string exn);
          false
      in
      let lat = if observe then Obs.Runtime.latency_reports () else [] in
      if observe then Obs.Runtime.finalize ();
      let summary =
        { s_wall = Unix.gettimeofday () -. t0;
          s_events = Netsim.Engine.total_events_processed () - events0;
          s_rss_kb = peak_rss_kb (); s_ok = ok; s_latency = lat }
      in
      flush_std ();
      let blob = Marshal.to_bytes summary [] in
      let rec write_all off =
        if off < Bytes.length blob then
          let n = Unix.write pipe_w blob off (Bytes.length blob - off) in
          write_all (off + n)
      in
      (try write_all 0 with Unix.Unix_error _ -> ());
      (try Unix.close pipe_w with Unix.Unix_error _ -> ());
      (* _exit, not exit: at_exit handlers belong to the parent. *)
      Unix._exit (if ok then 0 else 1)
  | pid ->
      Unix.close pipe_w;
      { w_task = task; w_index = index; w_pid = pid; w_pipe = pipe_r;
        w_out_file = out_file }

let drain_pipe fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ();
  Buffer.to_bytes buf

let collect w =
  let blob = drain_pipe w.w_pipe in
  Unix.close w.w_pipe;
  let summary =
    if Bytes.length blob = 0 then
      (* Worker died before reporting (segfault, kill): synthesise. *)
      { s_wall = 0.0; s_events = 0; s_rss_kb = 0; s_ok = false; s_latency = [] }
    else (Marshal.from_bytes blob 0 : summary)
  in
  let text = try read_file w.w_out_file with Sys_error _ -> "" in
  (try Sys.remove w.w_out_file with Sys_error _ -> ());
  { out_id = w.w_task.task_id; out_title = w.w_task.task_title;
    out_text = text; out_wall = summary.s_wall; out_events = summary.s_events;
    out_peak_rss_kb = summary.s_rss_kb; out_ok = summary.s_ok;
    out_latency = summary.s_latency }

let log_line o =
  let rate =
    if o.out_wall > 0.0 then float_of_int o.out_events /. o.out_wall else 0.0
  in
  Printf.sprintf "    [%s] %.1fs wall, %d events (%.0f kev/s), peak RSS %d MB%s\n"
    o.out_id o.out_wall o.out_events (rate /. 1e3)
    (o.out_peak_rss_kb / 1024)
    (if o.out_ok then "" else " — FAILED")

(* Run every task, [jobs] workers at a time, emitting the deterministic
   stream (headers + captured outputs, task order) on [emit] and the
   timing lines on [log].  Returns the outcomes in task order. *)
let run ?(jobs = 1) ?(latency = true) ?(emit = print_string)
    ?(log = prerr_string) tasks =
  if jobs < 1 then invalid_arg "Runner.run: jobs must be >= 1";
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let outcomes : outcome option array = Array.make n None in
  let running = ref [] in
  let next = ref 0 in
  let emitted = ref 0 in
  let emit_ready () =
    while !emitted < n && outcomes.(!emitted) <> None do
      (match outcomes.(!emitted) with
      | Some o ->
          emit (header tasks.(!emitted));
          emit o.out_text;
          emit "\n";
          log (log_line o)
      | None -> assert false);
      incr emitted
    done
  in
  while !next < n || !running <> [] do
    (* Keep the worker pool full... *)
    while !next < n && List.length !running < jobs do
      running := spawn ~latency !next tasks.(!next) :: !running;
      incr next
    done;
    (* ...then wait for any worker to finish and bank its outcome. *)
    match Unix.wait () with
    | pid, _status ->
        (match List.partition (fun w -> w.w_pid = pid) !running with
        | [ w ], rest ->
            running := rest;
            outcomes.(w.w_index) <- Some (collect w);
            emit_ready ()
        | _ -> (* not one of ours (shouldn't happen): ignore *) ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  emit_ready ();
  Array.to_list (Array.map Option.get outcomes)

(* BENCH.json: the machine-readable perf record, one object per
   experiment plus run-level totals.  Schema documented in
   doc/performance.md. *)
let bench_json ~jobs ~total_wall outcomes =
  let latency_run (label, metrics) =
    (* A list of objects, not one object: run labels can repeat when an
       experiment replays the same scenario config. *)
    Obs.Json.Obj
      (("run", Obs.Json.String label)
      :: List.map (fun (k, v) -> (k, Obs.Json.Float v)) metrics)
  in
  let experiment o =
    Obs.Json.Obj
      [ ("id", Obs.Json.String o.out_id);
        ("title", Obs.Json.String o.out_title);
        ("ok", Obs.Json.Bool o.out_ok);
        ("wall_s", Obs.Json.Float o.out_wall);
        ("events", Obs.Json.Int o.out_events);
        ( "events_per_sec",
          Obs.Json.Float
            (if o.out_wall > 0.0 then float_of_int o.out_events /. o.out_wall
             else 0.0) );
        ("peak_rss_kb", Obs.Json.Int o.out_peak_rss_kb);
        ("latency", Obs.Json.List (List.map latency_run o.out_latency)) ]
  in
  Obs.Json.Obj
    [ ("schema", Obs.Json.String "lisp-pce-bench/2");
      ("jobs", Obs.Json.Int jobs);
      ("total_wall_s", Obs.Json.Float total_wall);
      ( "total_events",
        Obs.Json.Int (List.fold_left (fun a o -> a + o.out_events) 0 outcomes)
      );
      ("experiments", Obs.Json.List (List.map experiment outcomes)) ]

let write_bench_json ~path ~jobs ~total_wall outcomes =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string (bench_json ~jobs ~total_wall outcomes));
  output_char oc '\n';
  close_out oc
