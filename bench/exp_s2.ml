(* S2 — scale-out: collector memory and flow-key uniqueness vs flow
   count.

   The 70k cell crosses the ephemeral-port boundary (64 512 distinct
   source ports): before the wraparound fix the generator either handed
   Wire an un-encodable port or silently collided flow keys.  Here every
   cell reports the number of distinct (src, dst, ports) tuples next to
   the number of flows opened — equal iff wraparound preserves
   uniqueness — and the reservoir collectors' kept/seen ratio shows the
   measurement memory staying O(1) as the flow count grows 5x. *)

open Core
open Nettypes

let id = "s2"
let title = "S2: scale-out: collector memory + flow uniqueness vs flow count"
let rate = 2000.0
let reservoir = 2048

let cps =
  [ ("pull-drop", Scenario.Cp_pull_drop);
    ("pce", Scenario.Cp_pce Pce_control.default_options) ]

let spec_for cp flows =
  let params =
    { Topology.Builder.default_params with
      Topology.Builder.domain_count = 16; provider_count = 6;
      borders_per_domain = 2; hosts_per_domain = 4 }
  in
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random params; seed = 42; mapping_ttl = 60.0 }
  in
  { (Harness.default_spec config) with
    Harness.flows; rate; zipf_alpha = 0.9; data_packets = `Fixed 2;
    sample_reservoir = Some reservoir }

let distinct_flows r =
  List.fold_left
    (fun set c -> Flow.Set.add c.Scenario.flow set)
    Flow.Set.empty
    (Scenario.connections r.Harness.scenario)
  |> Flow.Set.cardinal

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "flows"; "opened"; "unique-flows"; "established"; "failed";
          "samples-kept"; "state-total"; "state-peak"; "events" ]
  in
  List.iter
    (fun (label, cp) ->
      List.iter
        (fun flows ->
          let r = Harness.run ~label (spec_for cp flows) in
          let state_total, state_peak, _routers =
            Harness.router_state_entries r
          in
          Metrics.Table.add_row table
            [ label; Metrics.Table.cell_int flows;
              Metrics.Table.cell_int r.Harness.opened;
              Metrics.Table.cell_int (distinct_flows r);
              Metrics.Table.cell_pct
                (float_of_int r.Harness.established
                /. float_of_int (Stdlib.max 1 r.Harness.opened));
              Metrics.Table.cell_int r.Harness.failed;
              Printf.sprintf "%d/%d"
                (Netsim.Stats.Samples.retained r.Harness.setups)
                (Netsim.Stats.Samples.count r.Harness.setups);
              Metrics.Table.cell_int state_total;
              Metrics.Table.cell_int state_peak;
              Metrics.Table.cell_int
                (Netsim.Engine.events_processed
                   (Scenario.engine r.Harness.scenario)) ])
        [ 20_000; 70_000; 100_000 ])
    cps;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
