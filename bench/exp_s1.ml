(* S1 — scale-out: 100k-flow workloads as the internet grows.

   The crossover claims (i)–(iii) are only meaningful at cache-pressure
   regimes that need internet-scale destination sets (Coras et al. on
   LISP map-cache scalability); this experiment drives the same harness
   the T/F series uses, but at 100 000 flows per cell with
   reservoir-sampled collectors so memory stays bounded.  Simulated
   quantities printed here are deterministic; real wall-clock and
   events/sec for each run land in BENCH.json via the runner. *)

open Core

let id = "s1"
let title = "S1: scale-out: 100k flows vs internet size"
let flows = 100_000
let rate = 2000.0

let cps =
  [ ("pull-drop", Scenario.Cp_pull_drop);
    ("pce", Scenario.Cp_pce Pce_control.default_options) ]

let spec_for cp domains =
  let params =
    { Topology.Builder.default_params with
      Topology.Builder.domain_count = domains; provider_count = 8;
      borders_per_domain = 2; hosts_per_domain = 4 }
  in
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random params; seed = 42; mapping_ttl = 60.0 }
  in
  { (Harness.default_spec config) with
    Harness.flows; rate; zipf_alpha = 0.9; data_packets = `Fixed 2;
    sample_reservoir = Some 4096 }

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "domains"; "flows"; "established"; "failed"; "drops/flow";
          "cache-hit"; "median-setup"; "p99-setup"; "samples-kept"; "events" ]
  in
  List.iter
    (fun (label, cp) ->
      List.iter
        (fun domains ->
          let r = Harness.run ~label (spec_for cp domains) in
          Metrics.Table.add_row table
            [ label; Metrics.Table.cell_int domains;
              Metrics.Table.cell_int r.Harness.opened;
              Metrics.Table.cell_pct
                (float_of_int r.Harness.established
                /. float_of_int (Stdlib.max 1 r.Harness.opened));
              Metrics.Table.cell_int r.Harness.failed;
              Metrics.Table.cell_float (Harness.drops_per_flow r);
              Metrics.Table.cell_pct (Harness.cache_hit_ratio r);
              Metrics.Table.cell_ms
                (Harness.percentile_or_zero r.Harness.setups 50.0);
              Metrics.Table.cell_ms
                (Harness.percentile_or_zero r.Harness.setups 99.0);
              Printf.sprintf "%d/%d"
                (Netsim.Stats.Samples.retained r.Harness.setups)
                (Netsim.Stats.Samples.count r.Harness.setups);
              Metrics.Table.cell_int
                (Netsim.Engine.events_processed
                   (Scenario.engine r.Harness.scenario)) ])
        [ 16; 32; 64 ])
    cps;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
