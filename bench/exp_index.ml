(* Registry of every experiment the harness can regenerate: id, title, a
   table generator (for CSV export) and a full printer (tables plus any
   extra output such as the F1 trace). *)

type entry = {
  exp_id : string;
  exp_title : string;
  tables : unit -> Metrics.Table.t list;
  print : unit -> unit;
}

let f1_tables () =
  let table, _trace = Exp_f1.tables () in
  [ table ]

let all : entry list =
  [ { exp_id = Exp_f1.id; exp_title = Exp_f1.title; tables = f1_tables;
      print = Exp_f1.print };
    { exp_id = Exp_t1.id; exp_title = Exp_t1.title; tables = Exp_t1.tables;
      print = Exp_t1.print };
    { exp_id = Exp_t2.id; exp_title = Exp_t2.title; tables = Exp_t2.tables;
      print = Exp_t2.print };
    { exp_id = Exp_t3.id; exp_title = Exp_t3.title; tables = Exp_t3.tables;
      print = Exp_t3.print };
    { exp_id = Exp_t4.id; exp_title = Exp_t4.title; tables = Exp_t4.tables;
      print = Exp_t4.print };
    { exp_id = Exp_t5.id; exp_title = Exp_t5.title; tables = Exp_t5.tables;
      print = Exp_t5.print };
    { exp_id = Exp_t6.id; exp_title = Exp_t6.title; tables = Exp_t6.tables;
      print = Exp_t6.print };
    { exp_id = Exp_te1.id; exp_title = Exp_te1.title; tables = Exp_te1.tables;
      print = Exp_te1.print };
    { exp_id = Exp_f2.id; exp_title = Exp_f2.title; tables = Exp_f2.tables;
      print = Exp_f2.print };
    { exp_id = Exp_f3.id; exp_title = Exp_f3.title; tables = Exp_f3.tables;
      print = Exp_f3.print };
    { exp_id = Exp_f4.id; exp_title = Exp_f4.title; tables = Exp_f4.tables;
      print = Exp_f4.print };
    { exp_id = Exp_f5.id; exp_title = Exp_f5.title; tables = Exp_f5.tables;
      print = Exp_f5.print };
    { exp_id = Exp_f6.id; exp_title = Exp_f6.title; tables = Exp_f6.tables;
      print = Exp_f6.print };
    { exp_id = Exp_f7.id; exp_title = Exp_f7.title; tables = Exp_f7.tables;
      print = Exp_f7.print };
    { exp_id = Exp_f8.id; exp_title = Exp_f8.title; tables = Exp_f8.tables;
      print = Exp_f8.print };
    { exp_id = Exp_f9.id; exp_title = Exp_f9.title; tables = Exp_f9.tables;
      print = Exp_f9.print };
    { exp_id = Exp_a1.id; exp_title = Exp_a1.title; tables = Exp_a1.tables;
      print = Exp_a1.print };
    { exp_id = Exp_a2.id; exp_title = Exp_a2.title; tables = Exp_a2.tables;
      print = Exp_a2.print };
    { exp_id = Exp_a3.id; exp_title = Exp_a3.title; tables = Exp_a3.tables;
      print = Exp_a3.print };
    { exp_id = Exp_v1.id; exp_title = Exp_v1.title; tables = Exp_v1.tables;
      print = Exp_v1.print };
    { exp_id = Exp_r1.id; exp_title = Exp_r1.title; tables = Exp_r1.tables;
      print = Exp_r1.print };
    { exp_id = Exp_r2.id; exp_title = Exp_r2.title; tables = Exp_r2.tables;
      print = Exp_r2.print };
    { exp_id = Exp_s1.id; exp_title = Exp_s1.title; tables = Exp_s1.tables;
      print = Exp_s1.print };
    { exp_id = Exp_s2.id; exp_title = Exp_s2.title; tables = Exp_s2.tables;
      print = Exp_s2.print };
    { exp_id = Exp_m1.id; exp_title = Exp_m1.title; tables = Exp_m1.tables;
      print = Exp_m1.print };
    { exp_id = Exp_m2.id; exp_title = Exp_m2.title; tables = Exp_m2.tables;
      print = Exp_m2.print };
    { exp_id = Exp_m3.id; exp_title = Exp_m3.title; tables = Exp_m3.tables;
      print = Exp_m3.print };
    { exp_id = Exp_sec1.id; exp_title = Exp_sec1.title;
      tables = Exp_sec1.tables; print = Exp_sec1.print };
    { exp_id = Exp_sec2.id; exp_title = Exp_sec2.title;
      tables = Exp_sec2.tables; print = Exp_sec2.print };
    { exp_id = "micro"; exp_title = "Micro-benchmarks (Bechamel)";
      tables = (fun () -> []); print = Bench_micro.print } ]

(* 100k-flow (S) and multi-policy million-EID (M2/M3) cells: heavy.
   `main.exe` runs these only when they are named explicitly.  M1 stays
   in the default sweep — it is the model-validation gate, and its
   cache rows must be in BASELINE.json for `bench --check`. *)
let scale_ids = [ Exp_s1.id; Exp_s2.id; Exp_m2.id; Exp_m3.id ]

let find id = List.find_opt (fun e -> e.exp_id = id) all
