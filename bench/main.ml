(* The experiment harness: regenerates every table and figure of
   EXPERIMENTS.md.  Run all with `dune exec bench/main.exe`, a subset
   with experiment ids as arguments, and in parallel with `--jobs N`
   (one worker process per experiment; output is reassembled in
   deterministic order, byte-identical to a serial run).

   Per-experiment wall-clock, events/sec and peak RSS always land in
   BENCH.json (see doc/performance.md); timing chatter goes to stderr so
   stdout stays deterministic. *)

let experiments : (string * string * (unit -> unit)) list =
  List.map
    (fun e ->
      (e.Experiments.Exp_index.exp_id, e.Experiments.Exp_index.exp_title,
       e.Experiments.Exp_index.print))
    Experiments.Exp_index.all

let usage () =
  print_endline
    "usage: main.exe [--jobs N] [--bench-json FILE] [experiment-id ...]";
  print_endline "       main.exe --check [...]   (see --check --help)";
  print_endline "  --jobs N          run N experiment workers in parallel (default 1)";
  print_endline "  --bench-json FILE write the machine-readable perf record there";
  print_endline "                    (default BENCH.json)";
  print_endline "  --no-latency      skip the per-flow latency decomposition";
  print_endline "                    (drops the \"latency\" block from BENCH.json)";
  print_endline "  --no-prof         skip the self-profiler (drops the \"prof\" block)";
  print_endline "  --prof-trace FILE write a Chrome-trace self-profile there";
  print_endline "  --check           compare BENCH.json against the committed";
  print_endline "                    baseline and exit non-zero on regression";
  print_endline "available experiments:";
  List.iter
    (fun (id, title, _) ->
      Printf.printf "  %-6s %s%s\n" id title
        (if List.mem id Experiments.Exp_index.scale_ids then
           "  [scale: only runs when named]"
         else ""))
    experiments

let bad_usage fmt =
  Printf.ksprintf
    (fun message ->
      prerr_endline message;
      usage ();
      exit 1)
    fmt

let parse_args args =
  let jobs = ref 1 in
  let bench_json = ref "BENCH.json" in
  let latency = ref true in
  let profile = ref true in
  let prof_trace = ref None in
  let ids = ref [] in
  let rec loop = function
    | [] -> ()
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | Some _ | None -> bad_usage "--jobs expects a positive integer");
        loop rest
    | [ "--jobs" ] -> bad_usage "--jobs expects a value"
    | "--no-latency" :: rest ->
        latency := false;
        loop rest
    | "--no-prof" :: rest ->
        profile := false;
        loop rest
    | "--prof-trace" :: path :: rest ->
        prof_trace := Some path;
        loop rest
    | [ "--prof-trace" ] -> bad_usage "--prof-trace expects a value"
    | "--bench-json" :: path :: rest ->
        bench_json := path;
        loop rest
    | [ "--bench-json" ] -> bad_usage "--bench-json expects a value"
    | arg :: rest when String.length arg >= 7 && String.sub arg 0 7 = "--jobs=" ->
        loop ("--jobs" :: String.sub arg 7 (String.length arg - 7) :: rest)
    | arg :: rest
      when String.length arg >= 13 && String.sub arg 0 13 = "--bench-json=" ->
        loop
          ("--bench-json" :: String.sub arg 13 (String.length arg - 13) :: rest)
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        bad_usage "unknown option: %s" arg
    | id :: rest ->
        ids := id :: !ids;
        loop rest
  in
  loop args;
  (!jobs, !bench_json, !latency, !profile, !prof_trace, List.rev !ids)

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  (* Regression-gate mode: compare an existing BENCH.json against the
     committed baseline and exit with its verdict. *)
  (match argv with
  | "--check" :: rest -> exit (Experiments.Check.main rest)
  | _ -> ());
  let jobs, bench_json, latency, profile, prof_trace, requested =
    parse_args argv
  in
  let selected =
    if requested = [] then
      (* The scale experiments (S1/S2, 100k-flow cells) only run when
         named: the default sweep stays under a minute per core. *)
      List.filter
        (fun (id, _, _) -> not (List.mem id Experiments.Exp_index.scale_ids))
        experiments
    else
      List.map
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some e -> e
          | None -> bad_usage "unknown experiment id: %s" id)
        requested
  in
  Printf.printf
    "LISP PCE control-plane reproduction - experiment harness (%d experiments)\n\n%!"
    (List.length selected);
  let tasks =
    List.map
      (fun (id, title, print) ->
        { Experiments.Runner.task_id = id; task_title = title;
          task_run = print })
      selected
  in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Experiments.Runner.run ~jobs ~latency ~profile ?prof_trace tasks
  in
  let total_wall = Unix.gettimeofday () -. t0 in
  (* Raw engine dispatch throughput (single-domain + Domain-sharded),
     measured in-process after the experiments so the numbers land in
     BENCH.json's "engine" block for the --check throughput floors. *)
  let engine = Experiments.Bench_micro.engine_block () in
  Experiments.Runner.write_bench_json ~engine ~path:bench_json ~jobs
    ~total_wall outcomes;
  Printf.eprintf "    total %.1fs wall (%d jobs); perf record: %s\n%!"
    total_wall jobs bench_json;
  if List.exists (fun o -> not o.Experiments.Runner.out_ok) outcomes then
    exit 1
