(* SEC2 — graceful degradation under a cache-flooding EID scan.

   An off-path attacker sprays spoofed data packets over hundreds of
   forged source EIDs at the victim domain's border routers.  Each scan
   packet gleans a host route, and with bounded caches (LRU, 48 entries
   per router here) the scan churns the victim's map-caches: the
   attacker's forged EIDs crowd out genuine mappings.  Pollution is
   measured honestly — the fraction of the victim's live cache entries
   owned by the attacker (probing for the scan's {!Scenario.flood_eid}
   identities), not the gleaned share, since reverse-path gleaning
   legitimately fills these caches even in the clean cell.

   The countermeasure is the gleaned-entry admission cap: gleaned
   provenance may hold at most [glean_cap] live slots per cache, so the
   scan saturates its quota and bounces off (counted and telemetered as
   glean-admission-rejected), so the attacker can never hold more cache
   lines than the summed per-router quota.  The cap is not free:
   genuine reverse-path gleans beyond the quota are refused too,
   forcing the victim's ETRs to pull-resolve return mappings — the
   T_setup tax the capped cell must (and does) show over the clean
   reference.  Bounded state, paid for in latency: graceful degradation
   rather than open-ended pollution.

   Each cell records a {!Security_record} row; `bench --check` enforces
   the gates and determinism. *)

open Core

let id = "sec2"
let title = "SEC2: cache pollution and setup tax under an EID-scan flood"

let seed = 43
let victim = 0
let cache_capacity = 48
let glean_cap = 8
let flood_eids = 512
let params = Topology.Builder.default_params

let flood_attack =
  { Scenario.default_attack with
    Scenario.atk_flood_rate = 2000.0; atk_flood_eids = flood_eids;
    atk_flood_from = 0.5; atk_flood_until = 7.0; atk_flood_victim = victim }

let capped_auth =
  { Scenario.default_auth with Scenario.auth_glean_cap = Some glean_cap }

type cfg = {
  label : string;
  attack : Scenario.attack_profile option;
  auth : Scenario.auth_profile option;
}

let cfgs =
  [ { label = "clean"; attack = None; auth = None };
    { label = "flood"; attack = Some flood_attack; auth = None };
    { label = "flood-cap"; attack = Some flood_attack; auth = Some capped_auth } ]

type cell = {
  c_attempted : int;  (* scan packets the adversary sprayed *)
  c_gleaned : int;  (* live gleaned entries in the victim's caches *)
  c_glean_rejected : int;
  c_attacker : int;  (* live entries for the scan's forged EIDs *)
  c_pollution : float;  (* attacker-owned fraction of the victim's caches *)
  c_setup_mean : float;
}

(* Pollution is measured where the scan lands: the victim domain's
   border caches, not the whole internet's. *)
let victim_caches scenario =
  let dp = Scenario.dataplane scenario in
  let internet = Scenario.internet scenario in
  Array.map
    (fun r -> r.Lispdp.Dataplane.cache)
    (Lispdp.Dataplane.routers_of_domain dp
       internet.Topology.Builder.domains.(victim))

let attacker_entries ~now caches =
  let count = ref 0 in
  Array.iter
    (fun cache ->
      for idx = 0 to flood_eids - 1 do
        if Lispdp.Map_cache.contains cache ~now (Scenario.flood_eid idx) then
          incr count
      done)
    caches;
  !count

let measure cfg =
  let config =
    { Scenario.default_config with
      Scenario.cp = Scenario.Cp_pull_drop; topology = `Random params; seed;
      cache_capacity; attack = cfg.attack; auth = cfg.auth;
      run_label = Some (Printf.sprintf "sec2-%s" cfg.label) }
  in
  let spec =
    { (Harness.default_spec config) with
      Harness.flows = 300; rate = 50.0; hotspots = Some [ (victim, 1.0) ];
      sources = Some [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] }
  in
  let r = Harness.run ~label:cfg.label spec in
  let scenario = r.Harness.scenario in
  let now = Netsim.Engine.now (Scenario.engine scenario) in
  let caches = victim_caches scenario in
  let attacker = attacker_entries ~now caches in
  let gleaned =
    Array.fold_left (fun a c -> a + Lispdp.Map_cache.gleaned c) 0 caches
  in
  let entries =
    Array.fold_left (fun a c -> a + Lispdp.Map_cache.length c) 0 caches
  in
  let rejected =
    Array.fold_left
      (fun a c -> a + (Lispdp.Map_cache.stats c).Lispdp.Map_cache.glean_rejections)
      0 caches
  in
  { c_attempted =
      (match Scenario.adversary scenario with
      | Some adv -> Netsim.Adversary.flood_packets adv
      | None -> 0);
    c_gleaned = gleaned; c_glean_rejected = rejected; c_attacker = attacker;
    c_pollution =
      (if entries = 0 then 0.0
       else float_of_int attacker /. float_of_int entries);
    c_setup_mean = Harness.mean r.Harness.setups }

let pollution_floor = 0.5  (* the uncapped flood must dominate the caches *)

(* The cap's bound is absolute: at most [glean_cap] gleaned slots per
   victim border cache, so the attacker can never hold more lines than
   the summed quota — however long or fast the scan runs. *)
let cap_total = glean_cap * params.Topology.Builder.borders_per_domain

let gate_of cells cfg (c : cell) =
  let clean = List.assoc_opt "clean" cells in
  match cfg.label with
  | "flood" ->
      ( Printf.sprintf "pollution >= %.2f" pollution_floor,
        c.c_pollution >= pollution_floor )
  | "flood-cap" ->
      ( Printf.sprintf "attacker <= %d & rejects > 0 & setup > clean"
          cap_total,
        c.c_attacker <= cap_total
        && c.c_glean_rejected > 0
        && (match clean with
           | Some (cl : cell) -> c.c_setup_mean > cl.c_setup_mean
           | None -> false) )
  | _ -> ("-", true)

let tables () =
  let cells = List.map (fun cfg -> (cfg.label, measure cfg)) cfgs in
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "cell"; "scan pkts"; "gleaned"; "rejected"; "attacker";
          "pollution"; "T_setup mean"; "gate" ]
  in
  List.iter2
    (fun cfg (_, c) ->
      let gate, ok = gate_of cells cfg c in
      Security_record.record
        { Security_record.r_run = Printf.sprintf "%s/s%d" cfg.label seed;
          r_cp = "pull-drop"; r_attempted = c.c_attempted;
          (* "accepted" for a scan: forged identities that actually
             hold a victim cache line at the end of the run. *)
          r_accepted = c.c_attacker; r_success = 0.0; r_gleaned = c.c_gleaned;
          r_glean_rejected = c.c_glean_rejected;
          r_pollution = c.c_pollution; r_setup_mean = c.c_setup_mean;
          r_gate = gate; r_ok = ok };
      Metrics.Table.add_row table
        [ cfg.label; string_of_int c.c_attempted; string_of_int c.c_gleaned;
          string_of_int c.c_glean_rejected; string_of_int c.c_attacker;
          Metrics.Table.cell_float c.c_pollution;
          Metrics.Table.cell_ms c.c_setup_mean;
          (gate ^ if ok then "" else "  FAILED") ])
    cfgs cells;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
