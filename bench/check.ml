(* `bench --check`: the perf ratchet.

   Compares a freshly written BENCH.json against the committed
   bench/BASELINE.json, with thresholds auto-derived from the baseline
   (threshold = baseline scaled by the tolerance band), and exits
   non-zero with a human-readable diff table when the comparison
   fails.  Two classes of field:

   - Strict fields are properties of the *simulation*, independent of
     host speed: experiment success, simulated event counts, the
     latency decomposition (simulated seconds), and self-profile
     sanity (coverage, share ranges).  These always hard-fail — a
     drifted value means nondeterminism or a broken profiler, not a
     slow runner.

   - Perf fields (events/s, peak RSS) depend on the machine.  They
     fail outside the tolerance band; [--soft] downgrades them to
     warnings (GitHub annotation format) for shared CI runners while
     strict fields keep their teeth. *)

type failure_class = Strict | Perf

type finding = {
  f_exp : string;
  f_field : string;
  f_base : string;
  f_cur : string;
  f_threshold : string;
  f_class : failure_class;
  f_ok : bool;
  f_note : string;
}

(* Perf band: fail when throughput drops below 70% of baseline (or RSS
   grows past 130%).  Wide enough for same-machine run-to-run jitter;
   cross-machine noise is what [--soft] is for. *)
let default_tolerance = 0.3

(* Experiment events/s gets a wider band (1.5x the tolerance): it
   divides a deterministic event count by a small wall-clock, so on
   sub-second experiments scheduler noise alone moves it far more than
   the aggregate numbers the plain tolerance was sized for. *)
let events_per_sec_widening = 1.5

(* Absolute dispatch-throughput floors for the engine micro-bench
   (BENCH.json "engine" block): raw event dispatch must stay above
   2M events/s single-domain and 10M events/s Domain-sharded.  Perf
   class, so --soft downgrades a slow shared runner to a warning. *)
let engine_single_floor = 2e6
let engine_sharded_floor = 1e7

(* Latency metrics are simulated time but travel through the JSON
   float printer (%.12g), so equality is up to a relative epsilon. *)
let rel_eps = 1e-9

let approx_equal a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  Float.abs (a -. b) <= rel_eps *. Float.max scale 1.0

let read_json path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Obs.Json.of_string s

let member_or name json ~default =
  match Obs.Json.member name json with Some v -> v | None -> default

let experiments_of doc =
  match Obs.Json.member "experiments" doc with
  | Some (Obs.Json.List l) ->
      List.filter_map
        (fun e ->
          match
            Option.bind (Obs.Json.member "id" e) Obs.Json.to_string_opt
          with
          | Some id -> Some (id, e)
          | None -> None)
        l
  | _ -> []

let fnum json name =
  Option.bind (Obs.Json.member name json) Obs.Json.to_float_opt

let latency_runs json =
  match Obs.Json.member "latency" json with
  | Some (Obs.Json.List runs) ->
      Some
        (List.map
           (fun run ->
             let label =
               match
                 Option.bind (Obs.Json.member "run" run)
                   Obs.Json.to_string_opt
               with
               | Some l -> l
               | None -> "?"
             in
             let metrics =
               match run with
               | Obs.Json.Obj fields ->
                   List.filter_map
                     (fun (k, v) ->
                       if k = "run" then None
                       else
                         Option.map (fun f -> (k, f))
                           (Obs.Json.to_float_opt v))
                     fields
               | _ -> []
             in
             (label, metrics))
           runs)
  | _ -> None

let f3 v = Printf.sprintf "%.3g" v

(* ------------------------------------------------------------------ *)
(* Per-experiment comparisons                                          *)
(* ------------------------------------------------------------------ *)

let check_experiment ~tolerance ~id ~base ~cur =
  let findings = ref [] in
  let push f = findings := f :: !findings in
  (* Success flag: the experiment must still pass. *)
  let ok_cur =
    match Option.bind (Obs.Json.member "ok" cur) Obs.Json.to_bool_opt with
    | Some b -> b
    | None -> false
  in
  push
    { f_exp = id; f_field = "ok"; f_base = "true";
      f_cur = string_of_bool ok_cur; f_threshold = "= true";
      f_class = Strict; f_ok = ok_cur; f_note = "experiment success" };
  (* Simulated event count: exact determinism check. *)
  (match
     ( Option.bind (Obs.Json.member "events" base) Obs.Json.to_int_opt,
       Option.bind (Obs.Json.member "events" cur) Obs.Json.to_int_opt )
   with
  | Some be, Some ce ->
      push
        { f_exp = id; f_field = "events"; f_base = string_of_int be;
          f_cur = string_of_int ce; f_threshold = "exact";
          f_class = Strict; f_ok = be = ce;
          f_note = "simulated event count (deterministic)" }
  | _ -> ());
  (* Latency decomposition: simulated seconds, must match the baseline
     label-by-label and metric-by-metric. *)
  (match (latency_runs base, latency_runs cur) with
  | Some bruns, Some cruns when bruns <> [] ->
      let ok, note =
        if List.length bruns <> List.length cruns then
          (false,
           Printf.sprintf "run count %d -> %d" (List.length bruns)
             (List.length cruns))
        else
          List.fold_left2
            (fun (ok, note) (blabel, bm) (clabel, cm) ->
              if not ok then (ok, note)
              else if blabel <> clabel then
                (false, Printf.sprintf "run %S became %S" blabel clabel)
              else
                List.fold_left
                  (fun (ok, note) (k, bv) ->
                    if not ok then (ok, note)
                    else
                      match List.assoc_opt k cm with
                      | None ->
                          (false, Printf.sprintf "%s: %s missing" blabel k)
                      | Some cv when not (approx_equal bv cv) ->
                          ( false,
                            Printf.sprintf "%s: %s %.9g -> %.9g" blabel k
                              bv cv )
                      | Some _ -> (ok, note))
                  (ok, note) bm)
            (true, "") bruns cruns
      in
      push
        { f_exp = id; f_field = "latency"; f_base = "(simulated)";
          f_cur = (if ok then "(identical)" else "(drifted)");
          f_threshold = Printf.sprintf "rel %.0e" rel_eps;
          f_class = Strict; f_ok = ok;
          f_note =
            (if note = "" then "latency percentiles (simulated time)"
             else note) }
  | _ -> ());
  (* Self-profile sanity on the current run: phase accounting must
     cover >= 95% of wall time and shares must be well-formed. *)
  (match Obs.Json.member "prof" cur with
  | Some (Obs.Json.Obj _ as prof) -> (
      match Obs.Prof.report_of_json prof with
      | Error msg ->
          push
            { f_exp = id; f_field = "prof"; f_base = "-"; f_cur = "(bad)";
              f_threshold = "well-formed"; f_class = Strict; f_ok = false;
              f_note = msg }
      | Ok (_, _) ->
          let coverage =
            match fnum prof "coverage" with Some c -> c | None -> 0.0
          in
          push
            { f_exp = id; f_field = "prof.coverage"; f_base = "-";
              f_cur = f3 coverage; f_threshold = ">= 0.95";
              f_class = Strict; f_ok = coverage >= 0.95;
              f_note = "phase self-time coverage of wall time" };
          let shares_ok =
            match Obs.Json.member "phases" prof with
            | Some (Obs.Json.List phases) ->
                let sum = ref 0.0 and ok = ref true in
                List.iter
                  (fun p ->
                    match fnum p "share" with
                    | Some s ->
                        sum := !sum +. s;
                        if s < -.1e-9 || s > 1.0 +. 1e-9 then ok := false
                    | None -> ok := false)
                  phases;
                !ok && !sum <= 1.0 +. 1e-6
            | _ -> false
          in
          push
            { f_exp = id; f_field = "prof.shares"; f_base = "-";
              f_cur = (if shares_ok then "(sane)" else "(out of range)");
              f_threshold = "each in [0,1], sum <= 1"; f_class = Strict;
              f_ok = shares_ok; f_note = "per-phase share sanity" })
  | _ -> ());
  (* Throughput: floor derived from the baseline, on the widened
     band. *)
  (match (fnum base "events_per_sec", fnum cur "events_per_sec") with
  | Some bv, Some cv when bv > 0.0 ->
      let band = Float.min 0.95 (tolerance *. events_per_sec_widening) in
      let floor = bv *. (1.0 -. band) in
      push
        { f_exp = id; f_field = "events_per_sec"; f_base = f3 bv;
          f_cur = f3 cv; f_threshold = Printf.sprintf ">= %s" (f3 floor);
          f_class = Perf; f_ok = cv >= floor;
          f_note =
            Printf.sprintf "throughput (tolerance %.0f%%)" (band *. 100.0) }
  | _ -> ());
  (* Peak RSS: ceiling derived from the baseline. *)
  (match
     ( Option.bind (Obs.Json.member "peak_rss_kb" base) Obs.Json.to_int_opt,
       Option.bind (Obs.Json.member "peak_rss_kb" cur) Obs.Json.to_int_opt )
   with
  | Some bv, Some cv when bv > 0 && cv > 0 ->
      let ceiling = float_of_int bv *. (1.0 +. tolerance) in
      push
        { f_exp = id; f_field = "peak_rss_kb"; f_base = string_of_int bv;
          f_cur = string_of_int cv;
          f_threshold = Printf.sprintf "<= %.0f" ceiling; f_class = Perf;
          f_ok = float_of_int cv <= ceiling;
          f_note =
            Printf.sprintf "memory high-water (tolerance %.0f%%)"
              (tolerance *. 100.0) }
  | _ -> ());
  List.rev !findings

(* Cache model-validation rows (M-series "cache" block).  Two gates,
   both strict — they are properties of the simulation:

   - every current row's "ok" flag must be true (measured miss rate
     within the experiment's stated tolerance of the Coras prediction;
     ungated rows carry ok=true by construction);
   - when the baseline experiment also has a cache block, the row set
     must match label-for-label and the measured miss rates must be
     bit-identical up to the JSON float round-trip (determinism). *)
let cache_rows_of json =
  Option.bind (Obs.Json.member "cache" json) Cache_record.rows_of_json

let check_cache ~id ~base ~cur =
  let base_rows = Option.bind base cache_rows_of in
  match (cache_rows_of cur, base_rows) with
  | None, Some brs when brs <> [] ->
      [ { f_exp = id; f_field = "cache"; f_base =
            Printf.sprintf "%d row(s)" (List.length brs);
          f_cur = "missing"; f_threshold = "present"; f_class = Strict;
          f_ok = false;
          f_note = "cache model-validation block disappeared" } ]
  | None, _ -> []
  | Some crs, base_rows ->
      let ok_findings =
        List.map
          (fun (r : Cache_record.row) ->
            let gated = r.Cache_record.r_predicted_miss <> None in
            { f_exp = id;
              f_field = Printf.sprintf "cache[%s].ok" r.Cache_record.r_run;
              f_base = "true";
              f_cur = string_of_bool r.Cache_record.r_ok;
              f_threshold = "= true"; f_class = Strict;
              f_ok = r.Cache_record.r_ok;
              f_note =
                (if gated then
                   Printf.sprintf
                     "measured vs Coras model (rel err %s, tolerance %s)"
                     (match r.Cache_record.r_rel_err with
                      | Some e -> f3 e
                      | None -> "?")
                     (match r.Cache_record.r_tolerance with
                      | Some t -> f3 t
                      | None -> "?")
                 else "ungated cell (no analytical prediction)") })
          crs
      in
      let determinism =
        match base_rows with
        | None | Some [] -> []
        | Some brs ->
            let blabels =
              List.map (fun r -> r.Cache_record.r_run) brs
            and clabels =
              List.map (fun r -> r.Cache_record.r_run) crs
            in
            if blabels <> clabels then
              [ { f_exp = id; f_field = "cache.rows";
                  f_base = String.concat "," blabels;
                  f_cur = String.concat "," clabels;
                  f_threshold = "same cells"; f_class = Strict;
                  f_ok = false; f_note = "cache cell set changed" } ]
            else
              List.map2
                (fun (b : Cache_record.row) (c : Cache_record.row) ->
                  let bm = b.Cache_record.r_measured_miss
                  and cm = c.Cache_record.r_measured_miss in
                  { f_exp = id;
                    f_field =
                      Printf.sprintf "cache[%s].measured_miss"
                        b.Cache_record.r_run;
                    f_base = Printf.sprintf "%.9g" bm;
                    f_cur = Printf.sprintf "%.9g" cm;
                    f_threshold = Printf.sprintf "rel %.0e" rel_eps;
                    f_class = Strict; f_ok = approx_equal bm cm;
                    f_note = "measured miss rate (deterministic)" })
                brs crs
      in
      ok_findings @ determinism

(* TE-balance telemetry rows ("telemetry" block).  Same two strict
   gates as the cache block:

   - every current row's "ok" flag must be true (the experiment's
     stated fairness gate on the inbound Jain index; ungated rows
     carry ok=true by construction);
   - when the baseline experiment also has a telemetry block, the row
     set must match label-for-label and the Jain indexes and provider
     shares must be identical up to the JSON float round-trip
     (determinism: the quantities are simulated bytes only). *)
let telemetry_rows_of json =
  Option.bind (Obs.Json.member "telemetry" json) Telemetry_record.rows_of_json

let check_telemetry ~id ~base ~cur =
  let base_rows = Option.bind base telemetry_rows_of in
  match (telemetry_rows_of cur, base_rows) with
  | None, Some brs when brs <> [] ->
      [ { f_exp = id; f_field = "telemetry";
          f_base = Printf.sprintf "%d row(s)" (List.length brs);
          f_cur = "missing"; f_threshold = "present"; f_class = Strict;
          f_ok = false; f_note = "TE telemetry block disappeared" } ]
  | None, _ -> []
  | Some crs, base_rows ->
      let ok_findings =
        List.map
          (fun (r : Telemetry_record.row) ->
            let gated = r.Telemetry_record.r_threshold > 0.0 in
            { f_exp = id;
              f_field =
                Printf.sprintf "telemetry[%s].ok" r.Telemetry_record.r_run;
              f_base = "true";
              f_cur = string_of_bool r.Telemetry_record.r_ok;
              f_threshold = "= true"; f_class = Strict;
              f_ok = r.Telemetry_record.r_ok;
              f_note =
                (if gated then
                   Printf.sprintf "inbound Jain %s vs gate %s"
                     (f3 r.Telemetry_record.r_jain_in)
                     (f3 r.Telemetry_record.r_threshold)
                 else "ungated cell (reference point)") })
          crs
      in
      let determinism =
        match base_rows with
        | None | Some [] -> []
        | Some brs ->
            let blabels = List.map (fun r -> r.Telemetry_record.r_run) brs
            and clabels = List.map (fun r -> r.Telemetry_record.r_run) crs in
            if blabels <> clabels then
              [ { f_exp = id; f_field = "telemetry.rows";
                  f_base = String.concat "," blabels;
                  f_cur = String.concat "," clabels;
                  f_threshold = "same cells"; f_class = Strict;
                  f_ok = false; f_note = "telemetry cell set changed" } ]
            else
              List.concat
                (List.map2
                   (fun (b : Telemetry_record.row)
                        (c : Telemetry_record.row) ->
                     let pair field bv cv =
                       { f_exp = id;
                         f_field =
                           Printf.sprintf "telemetry[%s].%s"
                             b.Telemetry_record.r_run field;
                         f_base = Printf.sprintf "%.9g" bv;
                         f_cur = Printf.sprintf "%.9g" cv;
                         f_threshold = Printf.sprintf "rel %.0e" rel_eps;
                         f_class = Strict; f_ok = approx_equal bv cv;
                         f_note = field ^ " (deterministic)" }
                     in
                     let shares =
                       if
                         List.length b.Telemetry_record.r_in_share
                         <> List.length c.Telemetry_record.r_in_share
                       then
                         [ { f_exp = id;
                             f_field =
                               Printf.sprintf "telemetry[%s].in_share"
                                 b.Telemetry_record.r_run;
                             f_base =
                               string_of_int
                                 (List.length b.Telemetry_record.r_in_share);
                             f_cur =
                               string_of_int
                                 (List.length c.Telemetry_record.r_in_share);
                             f_threshold = "same provider count";
                             f_class = Strict; f_ok = false;
                             f_note = "provider count changed" } ]
                       else
                         List.mapi
                           (fun i bv ->
                             pair
                               (Printf.sprintf "in_share[%d]" i)
                               bv
                               (List.nth c.Telemetry_record.r_in_share i))
                           b.Telemetry_record.r_in_share
                     in
                     pair "jain_in" b.Telemetry_record.r_jain_in
                       c.Telemetry_record.r_jain_in
                     :: pair "jain_out" b.Telemetry_record.r_jain_out
                          c.Telemetry_record.r_jain_out
                     :: shares)
                   brs crs)
      in
      ok_findings @ determinism

(* Adversarial-robustness rows ("security" block, SEC experiments).
   Same two strict gates as the cache and telemetry blocks:

   - every current row's "ok" flag must be true (the poisoning-success
     or cache-pollution gate the experiment states; ungated reference
     cells carry ok=true by construction);
   - when the baseline experiment also has a security block, the cell
     set must match label-for-label and the measured counts and rates
     must be identical up to the JSON float round-trip (determinism:
     attack attempts, verdicts and setup times are simulated only). *)
let security_rows_of json =
  Option.bind (Obs.Json.member "security" json) Security_record.rows_of_json

let check_security ~id ~base ~cur =
  let base_rows = Option.bind base security_rows_of in
  match (security_rows_of cur, base_rows) with
  | None, Some brs when brs <> [] ->
      [ { f_exp = id; f_field = "security";
          f_base = Printf.sprintf "%d row(s)" (List.length brs);
          f_cur = "missing"; f_threshold = "present"; f_class = Strict;
          f_ok = false; f_note = "security block disappeared" } ]
  | None, _ -> []
  | Some crs, base_rows ->
      let ok_findings =
        List.map
          (fun (r : Security_record.row) ->
            let gated = r.Security_record.r_gate <> "-" in
            { f_exp = id;
              f_field =
                Printf.sprintf "security[%s].ok" r.Security_record.r_run;
              f_base = "true";
              f_cur = string_of_bool r.Security_record.r_ok;
              f_threshold = "= true"; f_class = Strict;
              f_ok = r.Security_record.r_ok;
              f_note =
                (if gated then
                   Printf.sprintf "attack gate %S (success %s, pollution %s)"
                     r.Security_record.r_gate
                     (f3 r.Security_record.r_success)
                     (f3 r.Security_record.r_pollution)
                 else "ungated cell (reference point)") })
          crs
      in
      let determinism =
        match base_rows with
        | None | Some [] -> []
        | Some brs ->
            let blabels = List.map (fun r -> r.Security_record.r_run) brs
            and clabels = List.map (fun r -> r.Security_record.r_run) crs in
            if blabels <> clabels then
              [ { f_exp = id; f_field = "security.rows";
                  f_base = String.concat "," blabels;
                  f_cur = String.concat "," clabels;
                  f_threshold = "same cells"; f_class = Strict;
                  f_ok = false; f_note = "security cell set changed" } ]
            else
              List.concat
                (List.map2
                   (fun (b : Security_record.row) (c : Security_record.row) ->
                     let fpair field bv cv =
                       { f_exp = id;
                         f_field =
                           Printf.sprintf "security[%s].%s"
                             b.Security_record.r_run field;
                         f_base = Printf.sprintf "%.9g" bv;
                         f_cur = Printf.sprintf "%.9g" cv;
                         f_threshold = Printf.sprintf "rel %.0e" rel_eps;
                         f_class = Strict; f_ok = approx_equal bv cv;
                         f_note = field ^ " (deterministic)" }
                     in
                     let ipair field bv cv =
                       { f_exp = id;
                         f_field =
                           Printf.sprintf "security[%s].%s"
                             b.Security_record.r_run field;
                         f_base = string_of_int bv;
                         f_cur = string_of_int cv; f_threshold = "exact";
                         f_class = Strict; f_ok = bv = cv;
                         f_note = field ^ " (deterministic)" }
                     in
                     [ ipair "attempted" b.Security_record.r_attempted
                         c.Security_record.r_attempted;
                       ipair "accepted" b.Security_record.r_accepted
                         c.Security_record.r_accepted;
                       ipair "gleaned" b.Security_record.r_gleaned
                         c.Security_record.r_gleaned;
                       fpair "success" b.Security_record.r_success
                         c.Security_record.r_success;
                       fpair "pollution" b.Security_record.r_pollution
                         c.Security_record.r_pollution;
                       fpair "setup_mean" b.Security_record.r_setup_mean
                         c.Security_record.r_setup_mean ])
                   brs crs)
      in
      ok_findings @ determinism

(* Engine dispatch floors: absolute thresholds on the current record's
   "engine" block (no baseline needed — the floor is the acceptance
   bar, not a ratchet).  Records without the block (pre-engine-block
   BENCH.json, or a run that skipped the micro measurement) produce no
   findings. *)
let check_engine cur =
  match Obs.Json.member "engine" cur with
  | Some (Obs.Json.Obj _ as eng) ->
      let floor_finding field floor note =
        match fnum eng field with
        | Some v ->
            [ { f_exp = "engine"; f_field = field; f_base = "-";
                f_cur = f3 v; f_threshold = Printf.sprintf ">= %s" (f3 floor);
                f_class = Perf; f_ok = v >= floor; f_note = note } ]
        | None ->
            [ { f_exp = "engine"; f_field = field; f_base = "-";
                f_cur = "missing"; f_threshold = "present"; f_class = Perf;
                f_ok = false; f_note = note ^ " (field missing)" } ]
      in
      floor_finding "single_events_per_sec" engine_single_floor
        "dispatch throughput floor, single domain"
      @ floor_finding "sharded_events_per_sec" engine_sharded_floor
          "dispatch throughput floor, Domain-sharded"
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe --check [--bench-json FILE] [--baseline FILE]";
  print_endline "                [--tolerance F] [--soft] [--update-baseline]";
  print_endline
    "  --bench-json FILE   current perf record (default BENCH.json)";
  print_endline
    "  --baseline FILE     committed reference (default bench/BASELINE.json)";
  print_endline
    "  --tolerance F       perf tolerance band as a fraction (default 0.3)";
  print_endline
    "  --soft              downgrade perf failures to warnings (shared";
  print_endline
    "                      runners); strict fields still hard-fail";
  print_endline
    "  --update-baseline   copy the current BENCH.json over the baseline"

let copy_file ~src ~dst =
  let ic = open_in_bin src in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc body;
  close_out oc

let main args =
  let bench_json = ref "BENCH.json" in
  let baseline = ref "bench/BASELINE.json" in
  let tolerance = ref default_tolerance in
  let soft = ref false in
  let update = ref false in
  let rec parse = function
    | [] -> ()
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | "--bench-json" :: path :: rest ->
        bench_json := path;
        parse rest
    | "--baseline" :: path :: rest ->
        baseline := path;
        parse rest
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0.0 -> tolerance := f
        | Some _ | None ->
            prerr_endline "--tolerance expects a non-negative fraction";
            exit 2);
        parse rest
    | "--soft" :: rest ->
        soft := true;
        parse rest
    | "--update-baseline" :: rest ->
        update := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown --check option: %s\n" arg;
        usage ();
        exit 2
  in
  parse args;
  if !update then begin
    (match read_json !bench_json with
    | Error msg ->
        Printf.eprintf "cannot read %s: %s\n" !bench_json msg;
        exit 2
    | Ok _ -> ());
    copy_file ~src:!bench_json ~dst:!baseline;
    Printf.printf "baseline refreshed: %s -> %s\n" !bench_json !baseline;
    exit 0
  end;
  let cur =
    match read_json !bench_json with
    | Ok doc -> doc
    | Error msg ->
        Printf.eprintf "cannot read current record %s: %s\n" !bench_json msg;
        exit 2
  in
  let base =
    match read_json !baseline with
    | Ok doc -> doc
    | Error msg ->
        Printf.eprintf
          "cannot read baseline %s: %s\n(generate one with: main.exe \
           --bench-json %s && main.exe --check --update-baseline)\n"
          !baseline msg !bench_json;
        exit 2
  in
  (match
     Option.bind (Obs.Json.member "schema" cur) Obs.Json.to_string_opt
   with
  | Some s
    when String.length s >= 14 && String.sub s 0 14 = "lisp-pce-bench" -> ()
  | Some s ->
      Printf.eprintf "unexpected schema in %s: %s\n" !bench_json s;
      exit 2
  | None ->
      Printf.eprintf "no schema tag in %s\n" !bench_json;
      exit 2);
  let base_exps = experiments_of base in
  let cur_exps = experiments_of cur in
  let findings =
    List.concat_map
      (fun (id, bexp) ->
        match List.assoc_opt id cur_exps with
        | None ->
            [ { f_exp = id; f_field = "present"; f_base = "yes";
                f_cur = "missing"; f_threshold = "present";
                f_class = Strict; f_ok = false;
                f_note = "experiment disappeared from the run" } ]
        | Some cexp ->
            check_experiment ~tolerance:!tolerance ~id ~base:bexp ~cur:cexp
            @ check_cache ~id ~base:(Some bexp) ~cur:cexp
            @ check_telemetry ~id ~base:(Some bexp) ~cur:cexp
            @ check_security ~id ~base:(Some bexp) ~cur:cexp)
      base_exps
    @ (* Cache model agreement and telemetry fairness gates apply even
         to experiments absent from the baseline (scale-only cells):
         the ok flag is an acceptance bar, not a ratchet. *)
    List.concat_map
      (fun (id, cexp) ->
        if List.assoc_opt id base_exps = None then
          check_cache ~id ~base:None ~cur:cexp
          @ check_telemetry ~id ~base:None ~cur:cexp
          @ check_security ~id ~base:None ~cur:cexp
        else [])
      cur_exps
    @ check_engine cur
  in
  let skipped =
    List.filter (fun (id, _) -> List.assoc_opt id base_exps = None) cur_exps
  in
  let table =
    Metrics.Table.create
      ~title:
        (Printf.sprintf "bench --check: %s vs %s" !bench_json !baseline)
      ~columns:[ "experiment"; "field"; "baseline"; "current"; "threshold";
                 "status" ]
  in
  let status f =
    if f.f_ok then "PASS"
    else
      match f.f_class with
      | Strict -> "FAIL"
      | Perf -> if !soft then "WARN" else "FAIL"
  in
  List.iter
    (fun f ->
      Metrics.Table.add_row table
        [ f.f_exp; f.f_field; f.f_base; f.f_cur; f.f_threshold; status f ])
    findings;
  List.iter
    (fun (id, _) ->
      Metrics.Table.add_row table
        [ id; "(new)"; "-"; "-"; "-"; "SKIP" ])
    skipped;
  Metrics.Table.print table;
  let failed = List.filter (fun f -> not f.f_ok) findings in
  let strict_failures =
    List.filter (fun f -> f.f_class = Strict) failed
  in
  let perf_failures = List.filter (fun f -> f.f_class = Perf) failed in
  List.iter
    (fun f ->
      Printf.eprintf "FAIL [%s] %s: %s (baseline %s, current %s, want %s)\n"
        f.f_exp f.f_field f.f_note f.f_base f.f_cur f.f_threshold)
    strict_failures;
  List.iter
    (fun f ->
      if !soft then
        (* GitHub annotation format: shows up on the workflow run
           without failing the job. *)
        Printf.eprintf
          "::warning title=bench perf::[%s] %s: %s (baseline %s, current \
           %s, want %s)\n"
          f.f_exp f.f_field f.f_note f.f_base f.f_cur f.f_threshold
      else
        Printf.eprintf "FAIL [%s] %s: %s (baseline %s, current %s, want %s)\n"
          f.f_exp f.f_field f.f_note f.f_base f.f_cur f.f_threshold)
    perf_failures;
  let hard_failed =
    strict_failures <> [] || ((not !soft) && perf_failures <> [])
  in
  if hard_failed then begin
    Printf.eprintf "bench --check: %d failing field(s)\n"
      (List.length strict_failures
      + if !soft then 0 else List.length perf_failures);
    1
  end
  else begin
    Printf.printf "bench --check: all %d field(s) within bounds%s\n"
      (List.length findings)
      (if !soft && perf_failures <> [] then
         Printf.sprintf " (%d perf warning(s))" (List.length perf_failures)
       else "");
    0
  end
