(* R1 — control-plane robustness: sweep the control-plane loss rate and
   compare how the pull, MS/MR and PCE planes degrade.  Pull planes pay
   for loss with retransmission delay and, past the retry budget,
   counted resolution-timeout drops; the PCE's pushes are acknowledged,
   so its setup path degrades more gracefully. *)

open Core

let id = "r1"
let title = "R1: connection setup under control-plane loss"

let loss_rates = [ 0.0; 0.05; 0.15; 0.3 ]

let cps =
  [ ("pull-queue", Scenario.Cp_pull_queue 32);
    ("msmr", Scenario.Cp_msmr);
    ("pce", Scenario.Cp_pce Pce_control.default_options) ]

let measure cp ~loss =
  let cp_faults =
    (* [None] at loss 0 keeps the baseline row on the exact lossless
       code path the other experiments use. *)
    if loss > 0.0 then
      Some { Scenario.default_cp_faults with Scenario.cp_loss = loss }
    else None
  in
  let config =
    { Scenario.default_config with
      Scenario.seed = 23;
      topology =
        `Random
          { Topology.Builder.default_params with
            Topology.Builder.domain_count = 8 };
      cp; cp_faults }
  in
  Harness.run { (Harness.default_spec config) with Harness.flows = 150 }

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "loss"; "cp"; "established"; "drops"; "retx"; "timeouts";
          "mean setup"; "p95 setup" ]
  in
  List.iter
    (fun loss ->
      List.iter
        (fun (label, cp) ->
          let r = measure cp ~loss in
          let stats = Harness.cp_stats r in
          Metrics.Table.add_row table
            [ Metrics.Table.cell_pct loss; label;
              Metrics.Table.cell_int r.Harness.established;
              Metrics.Table.cell_int (Harness.drops r);
              Metrics.Table.cell_int stats.Mapsys.Cp_stats.retransmissions;
              Metrics.Table.cell_int stats.Mapsys.Cp_stats.timeouts;
              Metrics.Table.cell_ms (Harness.mean r.Harness.setups);
              Metrics.Table.cell_ms
                (Harness.percentile_or_zero r.Harness.setups 95.0) ])
        cps)
    loss_rates;
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
