(* M1 — map-cache miss rate vs cache size: measured LRU against the
   Coras analytical model, at one million EID prefixes.

   The repo's first external-model validation: the Coras working-set
   model (Che's approximation under the independent reference model)
   predicts the steady-state LRU miss rate from the popularity masses
   and the cache capacity alone.  Each cell warms the cache for several
   characteristic times, measures two million references, and
   hard-fails the experiment when the measured miss rate diverges from
   the prediction beyond the stated tolerance — so the bench run (and
   `bench --check`, via the recorded cache rows) gates on the model
   staying true.  Everything is seeded and engine-free: the cell is
   exact across runs and job counts. *)

let id = "m1"
let title = "M1: LRU miss rate vs cache size — measured vs Coras model (1M EIDs)"
let n = 1_000_000
let alpha = 0.9
let capacities = [ 4_096; 16_384; 65_536; 262_144 ]
let measure_refs = 2_000_000

(* Tolerance stated for the gate: relative error of the measured miss
   rate against the prediction, with an absolute floor so cells with
   tiny miss rates aren't judged on noise. *)
let tolerance = 0.10
let abs_floor = 0.005

(* TTL far beyond any cell's span: the model assumes pure capacity
   pressure, no expiry. *)
let ttl = 1e9

let universe_seed = 1009
let cell_seed = 2003

let cells () =
  let universe =
    Workload.Eid_universe.generate ~rng:(Netsim.Rng.create universe_seed) ~n
  in
  let dist = Netsim.Rng.Zipf.create ~n ~alpha in
  let masses = Cache_lab.masses_of dist in
  List.map
    (fun capacity ->
      let prediction = Workload.Cache_model.predict ~masses ~capacity in
      (* Steady state is reached once the initial cold fill has been
         churned through a few characteristic times. *)
      let warmup =
        let tc = prediction.Workload.Cache_model.characteristic_time in
        if Float.is_finite tc then
          Stdlib.min 8_000_000 (Stdlib.max (2 * capacity) (int_of_float (3.0 *. tc)))
        else 2 * capacity
      in
      let r =
        Cache_lab.run_cell ~universe ~dist ~policy:Lispdp.Map_cache.Lru
          ~capacity ~warmup ~refs:measure_refs ~ttl ~dt:0.0
          ~seed:(cell_seed + capacity) ()
      in
      let predicted = prediction.Workload.Cache_model.miss_rate in
      let rel_err =
        Float.abs (r.Cache_lab.measured_miss -. predicted)
        /. Float.max predicted 1e-12
      in
      let ok =
        rel_err <= tolerance
        || Float.abs (r.Cache_lab.measured_miss -. predicted) <= abs_floor
      in
      Cache_record.record
        { Cache_record.r_run = Printf.sprintf "lru/c=%d" capacity;
          r_policy = "lru"; r_n = n; r_alpha = alpha; r_capacity = capacity;
          r_refs = measure_refs; r_measured_miss = r.Cache_lab.measured_miss;
          r_predicted_miss = Some predicted; r_rel_err = Some rel_err;
          r_tolerance = Some tolerance; r_ok = ok };
      (capacity, prediction, r, rel_err, ok))
    capacities

let tables () =
  let table =
    Metrics.Table.create ~title
      ~columns:
        [ "capacity"; "T_C (refs)"; "predicted-miss"; "measured-miss";
          "rel-err"; "evictions"; "model" ]
  in
  let all_ok = ref true in
  List.iter
    (fun (capacity, prediction, r, rel_err, ok) ->
      if not ok then all_ok := false;
      Metrics.Table.add_row table
        [ Metrics.Table.cell_int capacity;
          Printf.sprintf "%.3g"
            prediction.Workload.Cache_model.characteristic_time;
          Printf.sprintf "%.5f" prediction.Workload.Cache_model.miss_rate;
          Printf.sprintf "%.5f" r.Cache_lab.measured_miss;
          Metrics.Table.cell_pct rel_err;
          Metrics.Table.cell_int r.Cache_lab.evictions;
          (if ok then "OK" else "DIVERGED") ])
    (cells ());
  if not !all_ok then
    failwith
      (Printf.sprintf
         "M1: measured LRU miss rate diverged from the Coras model beyond \
          %.0f%% relative (abs floor %g)"
         (tolerance *. 100.0) abs_floor);
  [ table ]

let print () = List.iter Metrics.Table.print (tables ())
