(* TE1 — claim C3, measured by the telemetry plane: inbound fairness of
   a multihomed victim domain, PCE vs symmetric LISP ingress.

   Same adversarial setup as T4 (every other domain aims heavy-tailed
   flows at the victim while unrelated background traffic loads one
   uplink), but the quantities come from the {!Netsim.Telemetry} plane
   instead of ad-hoc link-byte snapshots: per-provider inbound byte
   shares, Jain's fairness index (cumulative over the workload window
   and sampled over time from the sliding window), and drop counts.
   Each (control plane, seed) cell records a {!Telemetry_record} row;
   the PCE rows are gated in `bench --check` on the inbound Jain index
   — the first direct, gated measurement of the paper's TE claim. *)

open Core

let id = "te1"
let title = "TE1: telemetry-measured inbound fairness, PCE vs symmetric ingress"

let victim = 0
let warmup = 3.0
let workload_window = 20.0
let sample_every = 2.0

let params =
  { Topology.Builder.default_params with
    Topology.Builder.domain_count = 12; provider_count = 6;
    borders_per_domain = 4; hosts_per_domain = 6;
    access_capacity_bps = 20e6 }

(* A short sliding window (last 4 simulated seconds) so the sampled
   fairness series reacts to the IRC engine's moves; cumulative totals
   are windowless and unaffected by the ring size. *)
let telemetry_config =
  { Netsim.Telemetry.window_s = 1.0; slots = 4; topk = 32 }

(* The telemetry direction index of a border's uplink that carries
   provider->customer traffic (the opposite of the egress direction
   Scenario registers). *)
let ingress_dir border =
  let link = border.Topology.Domain.uplink in
  if Topology.Link.a link = border.Topology.Domain.router then 1 else 0

let victim_borders scenario =
  let internet = Scenario.internet scenario in
  internet.Topology.Builder.domains.(victim).Topology.Domain.borders

let inbound_cum scenario =
  Array.map
    (fun b ->
      (Netsim.Telemetry.link_stat
         ~link:(Topology.Link.id b.Topology.Domain.uplink)
         ~dir:(ingress_dir b))
        .Netsim.Telemetry.st_bytes)
    (victim_borders scenario)

let outbound_cum scenario =
  Array.map
    (fun b ->
      (Netsim.Telemetry.link_stat
         ~link:(Topology.Link.id b.Topology.Domain.uplink)
         ~dir:(1 - ingress_dir b))
        .Netsim.Telemetry.st_bytes)
    (victim_borders scenario)

(* Per-run capture, reset by [pre_run]: harness runs are sequential
   within a worker, so plain refs are safe (same pattern as T4's
   snapshot table). *)
let warm_in : int array ref = ref [||]
let warm_out : int array ref = ref [||]
let jain_samples : (float * float) list ref = ref []

(* Unrelated 10 Mbit/s entering through the victim's first uplink —
   half the access capacity, invisible to static mapping weights,
   visible to the PCE's load monitors (and to the telemetry plane,
   since Link.account feeds both). *)
let background_load scenario =
  let border = (victim_borders scenario).(0) in
  let link = border.Topology.Domain.uplink in
  let core = Topology.Link.other_end link border.Topology.Domain.router in
  let engine = Scenario.engine scenario in
  let tick_interval = 0.05 in
  let bytes_per_tick = int_of_float (10e6 *. tick_interval /. 8.0) in
  let rec tick () =
    if Netsim.Engine.now engine < warmup +. workload_window +. 2.0 then begin
      Topology.Link.account link ~src:core ~bytes:bytes_per_tick;
      ignore (Netsim.Engine.schedule engine ~delay:tick_interval tick)
    end
  in
  ignore (Netsim.Engine.schedule engine ~delay:0.0 tick)

let pre_run scenario =
  warm_in := [||];
  warm_out := [||];
  jain_samples := [];
  background_load scenario;
  let engine = Scenario.engine scenario in
  ignore
    (Netsim.Engine.schedule engine ~delay:warmup (fun () ->
         warm_in := inbound_cum scenario;
         warm_out := outbound_cum scenario));
  (* Fairness-over-time: every [sample_every] seconds of the workload,
     the Jain index of the victim's per-uplink inbound bytes over the
     telemetry sliding window. *)
  let samples = int_of_float (workload_window /. sample_every) in
  for k = 1 to samples do
    let at = warmup +. (float_of_int k *. sample_every) in
    ignore
      (Netsim.Engine.schedule engine ~delay:at (fun () ->
           Netsim.Telemetry.touch ~now:(Netsim.Engine.now engine);
           let win =
             Array.map
               (fun b ->
                 float_of_int
                   (Netsim.Telemetry.link_stat
                      ~link:(Topology.Link.id b.Topology.Domain.uplink)
                      ~dir:(ingress_dir b))
                     .Netsim.Telemetry.st_win_bytes)
               (victim_borders scenario)
           in
           jain_samples :=
             (at, Netsim.Stats.jain_index win) :: !jain_samples))
  done

let spec_for cp ~seed =
  let config =
    { Scenario.default_config with
      Scenario.cp; topology = `Random params; seed;
      telemetry = Some telemetry_config }
  in
  { (Harness.default_spec config) with
    Harness.flows = 800; rate = 40.0; hotspots = Some [ (victim, 1.0) ];
    sources = Some [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ];
    data_packets = `Pareto 60.0; data_bytes = 1400; monitor = true;
    rebalance = true; arrival_delay = warmup; pre_run = Some pre_run }

type cell = {
  c_shares : float array;  (* inbound byte share per victim uplink *)
  c_jain_in : float;
  c_jain_out : float;
  c_ratio_in : float option;
  c_drops : int;
  c_samples : (float * float) list;  (* (t, sliding-window Jain) *)
}

let workload_delta cum warm =
  Array.mapi
    (fun i total ->
      let base = if Array.length warm > i then warm.(i) else 0 in
      float_of_int (total - base))
    cum

let measure cp ~seed =
  let r = Harness.run (spec_for cp ~seed) in
  let scenario = r.Harness.scenario in
  let in_bytes = workload_delta (inbound_cum scenario) !warm_in in
  let out_bytes = workload_delta (outbound_cum scenario) !warm_out in
  let total = Array.fold_left ( +. ) 0.0 in_bytes in
  let shares =
    Array.map (fun b -> if total > 0.0 then b /. total else 0.0) in_bytes
  in
  let ratio =
    let mx = Array.fold_left Float.max 0.0 in_bytes in
    let mn = Array.fold_left Float.min infinity in_bytes in
    if mn > 0.0 then Some (mx /. mn) else None
  in
  let cell =
    { c_shares = shares;
      c_jain_in = Netsim.Stats.jain_index in_bytes;
      c_jain_out = Netsim.Stats.jain_index out_bytes;
      c_ratio_in = ratio; c_drops = Harness.drops r;
      c_samples = List.rev !jain_samples }
  in
  (* The plane is process-global; leave it off for whatever runs next
     in this process. *)
  Netsim.Telemetry.stop ();
  cell

let cps = [ ("symmetric", Scenario.Cp_nerd);
            ("pce", Scenario.Cp_pce Pce_control.default_options) ]

let seeds = [ 21; 22 ]

(* Acceptance gate on the PCE rows: with a 50%-capacity background load
   on one of four uplinks, static symmetric ingress lands well below
   this, the IRC-balanced PCE well above. *)
let pce_jain_gate = 0.8

let pct_list shares =
  String.concat "/"
    (Array.to_list
       (Array.map (fun s -> Printf.sprintf "%.0f" (s *. 100.0)) shares))

let tables () =
  let cells =
    List.map
      (fun (label, cp) ->
        (label, List.map (fun seed -> (seed, measure cp ~seed)) seeds))
      cps
  in
  let summary =
    Metrics.Table.create ~title
      ~columns:
        [ "cp"; "seed"; "in shares (%)"; "jain in"; "jain out";
          "max/min in"; "drops"; "gate" ]
  in
  List.iter
    (fun (label, runs) ->
      List.iter
        (fun (seed, c) ->
          let gated = label = "pce" in
          let ok = (not gated) || c.c_jain_in >= pce_jain_gate in
          Telemetry_record.record
            { Telemetry_record.r_run = Printf.sprintf "%s/s%d" label seed;
              r_cp = label; r_providers = Array.length c.c_shares;
              r_in_share = Array.to_list c.c_shares;
              r_jain_in = c.c_jain_in; r_jain_out = c.c_jain_out;
              r_ratio_in = c.c_ratio_in; r_drops = c.c_drops;
              r_threshold = (if gated then pce_jain_gate else 0.0);
              r_ok = ok };
          Metrics.Table.add_row summary
            [ label; string_of_int seed; pct_list c.c_shares;
              Metrics.Table.cell_float c.c_jain_in;
              Metrics.Table.cell_float c.c_jain_out;
              (match c.c_ratio_in with
              | Some ratio -> Metrics.Table.cell_float ratio
              | None -> "inf");
              Metrics.Table.cell_int c.c_drops;
              (if gated then Printf.sprintf ">= %.2f" pce_jain_gate
               else "-") ])
        runs)
    cells;
  (* Inbound fairness over time, sliding-window Jain index averaged
     over seeds: the static ingress stays pinned by the background
     load; the PCE recovers as its monitors converge. *)
  let over_time =
    Metrics.Table.create ~title:"TE1: sliding-window inbound Jain over time"
      ~columns:("t (s)" :: List.map fst cells)
  in
  let times =
    match cells with
    | (_, (_, first) :: _) :: _ -> List.map fst first.c_samples
    | _ -> []
  in
  List.iter
    (fun t ->
      Metrics.Table.add_row over_time
        (Printf.sprintf "%.0f" t
        :: List.map
             (fun (_, runs) ->
               let vals =
                 List.filter_map
                   (fun (_, c) -> List.assoc_opt t c.c_samples)
                   runs
               in
               match vals with
               | [] -> "-"
               | _ ->
                   Metrics.Table.cell_float
                     (List.fold_left ( +. ) 0.0 vals
                     /. float_of_int (List.length vals)))
             cells))
    times;
  [ summary; over_time ]

let print () = List.iter Metrics.Table.print (tables ())
