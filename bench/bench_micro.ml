(* Micro-benchmarks of the simulator's hot paths (Bechamel): event-queue
   throughput, map-cache operations, longest-prefix matching, shortest
   paths, and a complete PCE connection end-to-end. *)

open Bechamel
open Toolkit

let test_engine =
  Test.make ~name:"engine: 10k events"
    (Staged.stage (fun () ->
         let e = Netsim.Engine.create () in
         for i = 1 to 10_000 do
           ignore (Netsim.Engine.schedule e ~delay:(float_of_int i *. 1e-4) ignore)
         done;
         Netsim.Engine.run e))

let cache_for_bench =
  let cache = Lispdp.Map_cache.create () in
  for i = 0 to 199 do
    let prefix =
      Nettypes.Ipv4.prefix_of_string
        (Printf.sprintf "100.%d.%d.0/24" (i / 200) (i mod 200))
    in
    Lispdp.Map_cache.insert cache ~now:0.0
      (Nettypes.Mapping.create ~eid_prefix:prefix
         ~rlocs:[ Nettypes.Mapping.rloc (Nettypes.Ipv4.addr_of_string "10.0.0.1") ]
         ~ttl:1e9)
  done;
  cache

let test_map_cache =
  Test.make ~name:"map-cache: 1k lookups"
    (Staged.stage (fun () ->
         for i = 0 to 999 do
           ignore
             (Lispdp.Map_cache.lookup cache_for_bench ~now:1.0
                (Nettypes.Ipv4.addr_of_int
                   ((100 lsl 24) lor ((i mod 200) lsl 8) lor 7)))
         done))

let trie_for_bench =
  let t = Nettypes.Prefix_table.create () in
  for i = 0 to 999 do
    Nettypes.Prefix_table.add t
      (Nettypes.Ipv4.prefix
         (Nettypes.Ipv4.addr_of_int ((i * 7919) land 0xFFFFFF00))
         (8 + (i mod 17)))
      i
  done;
  t

let test_trie =
  Test.make ~name:"prefix-trie: 1k LPM lookups"
    (Staged.stage (fun () ->
         for i = 0 to 999 do
           ignore
             (Nettypes.Prefix_table.lookup trie_for_bench
                (Nettypes.Ipv4.addr_of_int ((i * 104729) land 0xFFFFFFFF)))
         done))

let internet_for_bench =
  Topology.Builder.generate (Netsim.Rng.create 2)
    { Topology.Builder.default_params with
      Topology.Builder.domain_count = 20; provider_count = 8 }

let test_dijkstra =
  Test.make ~name:"dijkstra: cold all-dist from one source"
    (Staged.stage (fun () ->
         let graph = internet_for_bench.Topology.Builder.graph in
         Topology.Graph.invalidate_cache graph;
         ignore
           (Topology.Graph.latency_between graph
              internet_for_bench.Topology.Builder.domains.(0).Topology.Domain.hub
              internet_for_bench.Topology.Builder.domains.(19).Topology.Domain.hub)))

let test_pce_connection =
  Test.make ~name:"end-to-end: 1 PCE connection (build+run)"
    (Staged.stage (fun () ->
         let s =
           Core.Scenario.build
             { Core.Scenario.default_config with
               Core.Scenario.cp = Core.Scenario.Cp_pce Core.Pce_control.default_options }
         in
         let internet = Core.Scenario.internet s in
         let flow =
           Nettypes.Flow.create
             ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
             ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
             ~src_port:1 ()
         in
         ignore (Core.Scenario.open_connection s ~flow ~data_packets:2 ());
         Core.Scenario.run s))

let wire_message =
  Wire.Codec.Map_reply
    { nonce = 42;
      mapping =
        Nettypes.Mapping.create
          ~eid_prefix:(Nettypes.Ipv4.prefix_of_string "100.0.3.0/24")
          ~rlocs:
            [ Nettypes.Mapping.rloc (Nettypes.Ipv4.addr_of_string "10.0.0.1");
              Nettypes.Mapping.rloc (Nettypes.Ipv4.addr_of_string "11.0.0.1") ]
          ~ttl:60.0 }

let wire_encoded = Wire.Codec.encode wire_message

let test_wire_encode =
  Test.make ~name:"wire: encode 1k map-replies"
    (Staged.stage (fun () ->
         for _ = 1 to 1000 do
           ignore (Wire.Codec.encode wire_message)
         done))

let test_wire_decode =
  Test.make ~name:"wire: decode 1k map-replies"
    (Staged.stage (fun () ->
         for _ = 1 to 1000 do
           ignore (Wire.Codec.decode wire_encoded)
         done))

(* The observability layer's disabled paths: recording into a disabled
   trace must not pay the kasprintf formatting cost, and emitting into a
   disabled hub must not allocate the event. *)

let disabled_trace =
  let t = Netsim.Trace.create () in
  Netsim.Trace.set_enabled t false;
  t

let test_trace_disabled =
  Test.make ~name:"trace: 10k recordf (disabled)"
    (Staged.stage (fun () ->
         for i = 1 to 10_000 do
           Netsim.Trace.recordf disabled_trace ~time:(float_of_int i)
             ~actor:"bench" "event %d of %s run" i "benchmark"
         done))

(* The workload generator's hot paths: one Zipf draw per flow (Walker
   alias, O(1)) and one collector add per measured quantity. *)

let zipf_for_bench = Netsim.Rng.Zipf.create ~n:100_000 ~alpha:0.9

let test_zipf =
  Test.make ~name:"rng: 10k zipf draws (n=100k)"
    (Staged.stage (fun () ->
         let rng = Netsim.Rng.create 7 in
         for _ = 1 to 10_000 do
           ignore (Netsim.Rng.Zipf.sample zipf_for_bench rng)
         done))

let test_samples_exact =
  Test.make ~name:"stats: 10k adds + p99 (exact)"
    (Staged.stage (fun () ->
         let s = Netsim.Stats.Samples.create () in
         let rng = Netsim.Rng.create 8 in
         for _ = 1 to 10_000 do
           Netsim.Stats.Samples.add s (Netsim.Rng.float rng)
         done;
         ignore (Netsim.Stats.Samples.percentile s 99.0)))

let test_samples_reservoir =
  Test.make ~name:"stats: 10k adds + p99 (reservoir 1k)"
    (Staged.stage (fun () ->
         let s =
           Netsim.Stats.Samples.create
             ~mode:(Netsim.Stats.Samples.Reservoir 1024) ()
         in
         let rng = Netsim.Rng.create 8 in
         for _ = 1 to 10_000 do
           Netsim.Stats.Samples.add s (Netsim.Rng.float rng)
         done;
         ignore (Netsim.Stats.Samples.percentile s 99.0)))

let test_p2 =
  Test.make ~name:"stats: 10k adds + p99 (P2)"
    (Staged.stage (fun () ->
         let s = Netsim.Stats.P2.create ~p:99.0 in
         let rng = Netsim.Rng.create 8 in
         for _ = 1 to 10_000 do
           Netsim.Stats.P2.add s (Netsim.Rng.float rng)
         done;
         ignore (Netsim.Stats.P2.quantile s)))

let disabled_hub = Obs.Hub.create ()

let test_hub_disabled =
  Test.make ~name:"obs: 10k emit (disabled)"
    (Staged.stage (fun () ->
         for i = 1 to 10_000 do
           if Obs.Hub.enabled disabled_hub then
             Obs.Hub.emit disabled_hub ~time:(float_of_int i) ~actor:"bench"
               (Obs.Event.Mapping_push { targets = i })
         done))

(* The span-source events (connection/handshake lifecycle) sit on the
   TCP fast path, so their guarded emit sites must also collapse to one
   boolean test when the hub is off. *)
let test_spans_disabled =
  Test.make ~name:"obs: 10k span-event emit (disabled)"
    (Staged.stage (fun () ->
         for i = 1 to 10_000 do
           if Obs.Hub.enabled disabled_hub then begin
             Obs.Hub.emit disabled_hub ~time:(float_of_int i) ~actor:"bench"
               ~flow:i
               (Obs.Event.Syn_sent { attempt = 1 });
             Obs.Hub.emit disabled_hub ~time:(float_of_int i) ~actor:"bench"
               ~flow:i Obs.Event.Conn_established
           end
         done))

(* The self-profiler's disabled path: every instrumentation site in the
   engine, DNS, map-resolution, PCE and dataplane hot paths pays this
   when profiling is off, so it must collapse to a flag test — same
   contract as the disabled trace/hub above.  print () pauses the
   profiler around the whole suite, so these run with it genuinely
   off even under `bench` (which profiles the experiments). *)

let ph_bench = Netsim.Prof.phase "micro-disabled"
let ctr_bench = Netsim.Prof.counter "micro-disabled"

let test_prof_disabled =
  Test.make ~name:"prof: 10k enter/leave + incr (disabled)"
    (Staged.stage (fun () ->
         for _ = 1 to 10_000 do
           Netsim.Prof.enter ph_bench;
           Netsim.Prof.incr ctr_bench;
           Netsim.Prof.leave ph_bench
         done))

let test_prof_wrap_disabled =
  Test.make ~name:"prof: 10k wrap (disabled)"
    (Staged.stage (fun () ->
         for _ = 1 to 10_000 do
           (Netsim.Prof.wrap ph_bench ignore) ()
         done))

(* The telemetry plane's disabled path: the dataplane/topology/IRC hot
   paths call these on every packet movement, so — same contract as the
   profiler above — each must collapse to one flag test.  Telemetry is
   never started in this process while the suite runs. *)

let test_telemetry_disabled =
  Test.make ~name:"telemetry: 10k link+node+flow+drop hooks (disabled)"
    (Staged.stage (fun () ->
         for i = 1 to 10_000 do
           Netsim.Telemetry.touch ~now:(float_of_int i);
           Netsim.Telemetry.on_link ~link:3 ~dir:0 ~bytes:1400;
           Netsim.Telemetry.on_node_tx ~node:7 ~bytes:1400;
           Netsim.Telemetry.on_flow_packet ~eid:i ~flow:i;
           Netsim.Telemetry.on_drop ~node:7 Netsim.Telemetry.No_route;
           Netsim.Telemetry.on_select ~provider:2 ~inbound:true
         done))

(* Direct allocation proof, reported alongside the timing rows: a
   Gc.minor_words delta across 100k disabled enter/leave+incr cycles.
   Zero words means the disabled path never touches the heap. *)
let prof_disabled_alloc_words () =
  for _ = 1 to 1_000 do
    Netsim.Prof.enter ph_bench;
    Netsim.Prof.incr ctr_bench;
    Netsim.Prof.leave ph_bench
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Netsim.Prof.enter ph_bench;
    Netsim.Prof.incr ctr_bench;
    Netsim.Prof.leave ph_bench
  done;
  Gc.minor_words () -. w0

(* Same proof for the telemetry hooks: zero minor words across 100k
   disabled full-hook cycles. *)
let telemetry_disabled_alloc_words () =
  (* Constant [now]: boxing a fresh float per iteration would charge the
     test loop's allocation to the hooks. *)
  let cycle i =
    Netsim.Telemetry.touch ~now:42.0;
    Netsim.Telemetry.on_link ~link:3 ~dir:0 ~bytes:1400;
    Netsim.Telemetry.on_node_tx ~node:7 ~bytes:1400;
    Netsim.Telemetry.on_flow_packet ~eid:i ~flow:i;
    Netsim.Telemetry.on_drop ~node:7 Netsim.Telemetry.No_route;
    Netsim.Telemetry.on_select ~provider:2 ~inbound:true
  in
  for i = 1 to 1_000 do cycle i done;
  let w0 = Gc.minor_words () in
  for i = 1 to 100_000 do cycle i done;
  Gc.minor_words () -. w0

let tests =
  [ test_engine; test_map_cache; test_trie; test_dijkstra; test_pce_connection;
    test_wire_encode; test_wire_decode; test_zipf; test_samples_exact;
    test_samples_reservoir; test_p2; test_trace_disabled; test_hub_disabled;
    test_spans_disabled; test_prof_disabled; test_prof_wrap_disabled;
    test_telemetry_disabled ]

(* Run [f] with the profiler paused: measured loops must not pay
   profiler overhead, and the "(disabled)" benches must be honest even
   under `bench`, which enables the profiler around every
   experiment. *)
let unprofiled f =
  Obs.Prof.pause ();
  Fun.protect ~finally:Obs.Prof.resume f

(* ------------------------------------------------------------------ *)
(* Engine dispatch throughput                                          *)
(* ------------------------------------------------------------------ *)

(* Events/s of the raw dispatch loop under the steady-state shape of
   simulator timer traffic: [streams] concurrent self-rescheduling
   timers per engine, each firing and re-arming until the event budget
   runs out.  The sharded variant models independent source-domain
   event streams — one engine per shard, a handful of outstanding
   timers each — dispatched by [Engine.Shards.run] on one Domain per
   shard.  These feed the BENCH.json "engine" block and the
   `bench --check` throughput floors. *)

let feed_streams e ~streams ~events =
  let remaining = ref events in
  let rec tick () =
    if !remaining > 0 then begin
      decr remaining;
      ignore (Netsim.Engine.schedule e ~delay:1.0 tick)
    end
  in
  for _ = 1 to streams do
    ignore (Netsim.Engine.schedule e ~delay:0.5 tick)
  done

let engine_dispatch_single ?(streams = 64) ?(events = 2_000_000) () =
  unprofiled (fun () ->
      let e = Netsim.Engine.create () in
      feed_streams e ~streams ~events;
      let t0 = Netsim.Prof.now_s () in
      Netsim.Engine.run e;
      let dt = Netsim.Prof.now_s () -. t0 in
      if dt <= 0.0 then 0.0
      else float_of_int (Netsim.Engine.events_processed e) /. dt)

let engine_dispatch_sharded ?(shards = 4) ?(streams = 8) ?(events = 2_000_000)
    () =
  unprofiled (fun () ->
      let pool = Netsim.Engine.Shards.create shards in
      for s = 0 to shards - 1 do
        feed_streams
          (Netsim.Engine.Shards.get pool s)
          ~streams ~events:(events / shards)
      done;
      let t0 = Netsim.Prof.now_s () in
      Netsim.Engine.Shards.run pool;
      let dt = Netsim.Prof.now_s () -. t0 in
      if dt <= 0.0 then 0.0
      else float_of_int (Netsim.Engine.Shards.events_processed pool) /. dt)

let default_shards = 4

(* The BENCH.json "engine" block: measured dispatch throughput plus
   the configuration that produced it. *)
let engine_block () =
  let single = engine_dispatch_single () in
  let sharded = engine_dispatch_sharded ~shards:default_shards () in
  Obs.Json.Obj
    [ ("single_events_per_sec", Obs.Json.Float single);
      ("sharded_events_per_sec", Obs.Json.Float sharded);
      ("shards", Obs.Json.Int default_shards) ]

let print () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw =
    unprofiled (fun () ->
        Benchmark.all cfg [ instance ]
          (Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests))
  in
  let results = Analyze.all ols instance raw in
  let table =
    Metrics.Table.create ~title:"Micro-benchmarks (simulator hot paths)"
      ~columns:[ "benchmark"; "time per run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] ->
          let cell =
            if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          rows := (name, cell) :: !rows
      | Some _ | None -> rows := (name, "n/a") :: !rows)
    results;
  List.iter
    (fun (name, cell) -> Metrics.Table.add_row table [ name; cell ])
    (List.sort compare !rows);
  Metrics.Table.add_row table
    [ "prof: minor words / 100k disabled cycles";
      Printf.sprintf "%.0f words" (unprofiled prof_disabled_alloc_words) ];
  Metrics.Table.add_row table
    [ "telemetry: minor words / 100k disabled cycles";
      Printf.sprintf "%.0f words" (unprofiled telemetry_disabled_alloc_words)
    ];
  Metrics.Table.add_row table
    [ "engine: dispatch throughput (single domain)";
      Printf.sprintf "%.2fM events/s" (engine_dispatch_single () /. 1e6) ];
  Metrics.Table.add_row table
    [ Printf.sprintf "engine: dispatch throughput (%d shards)" default_shards;
      Printf.sprintf "%.2fM events/s"
        (engine_dispatch_sharded ~shards:default_shards () /. 1e6) ];
  Metrics.Table.print table
