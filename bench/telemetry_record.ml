(* TE-balance telemetry rows for BENCH.json.

   The TE experiments that run with the telemetry plane enabled record
   one [row] per (control plane, seed) cell here (process-global, like
   {!Cache_record}); the bench runner ships the rows from the worker
   back to the parent, [Runner.bench_json] emits them as the
   experiment's "telemetry" block, and `bench --check` gates on them:
   every row's [r_ok] is strict (the fairness gate the experiment
   states), and the measured shares/indexes are deterministic against
   the committed baseline.

   All quantities are simulated — provider byte shares, Jain indexes
   and drop counts cannot depend on worker count or wall-clock. *)

type row = {
  r_run : string;  (* cell label, unique within the experiment *)
  r_cp : string;  (* control-plane label *)
  r_providers : int;
  r_in_share : float list;  (* inbound byte share per provider, in order *)
  r_jain_in : float;  (* Jain fairness of the inbound shares *)
  r_jain_out : float;
  r_ratio_in : float option;  (* max/min inbound load; None when min = 0 *)
  r_drops : int;
  r_threshold : float;  (* Jain gate on [r_jain_in]; 0.0 = ungated *)
  r_ok : bool;  (* r_jain_in >= r_threshold (always true when ungated) *)
}

let current : row list ref = ref []
let record row = current := row :: !current
let rows () = List.rev !current
let reset () = current := []

let json_of_row r =
  Obs.Json.Obj
    ([ ("run", Obs.Json.String r.r_run);
       ("cp", Obs.Json.String r.r_cp);
       ("providers", Obs.Json.Int r.r_providers);
       ( "in_share",
         Obs.Json.List (List.map (fun s -> Obs.Json.Float s) r.r_in_share) );
       ("jain_in", Obs.Json.Float r.r_jain_in);
       ("jain_out", Obs.Json.Float r.r_jain_out) ]
    @ (match r.r_ratio_in with
      | Some f -> [ ("ratio_in", Obs.Json.Float f) ]
      | None -> [])
    @ [ ("drops", Obs.Json.Int r.r_drops);
        ("threshold", Obs.Json.Float r.r_threshold);
        ("ok", Obs.Json.Bool r.r_ok) ])

let json_of_rows rows = Obs.Json.List (List.map json_of_row rows)

let row_of_json json =
  let str name = Option.bind (Obs.Json.member name json) Obs.Json.to_string_opt in
  let int name = Option.bind (Obs.Json.member name json) Obs.Json.to_int_opt in
  let flt name = Option.bind (Obs.Json.member name json) Obs.Json.to_float_opt in
  let shares =
    match Obs.Json.member "in_share" json with
    | Some (Obs.Json.List l) ->
        let parsed = List.filter_map Obs.Json.to_float_opt l in
        if List.length parsed = List.length l then Some parsed else None
    | _ -> None
  in
  match (str "run", str "cp", int "providers", shares, flt "jain_in",
         flt "jain_out", int "drops", flt "threshold",
         Option.bind (Obs.Json.member "ok" json) Obs.Json.to_bool_opt)
  with
  | ( Some r_run, Some r_cp, Some r_providers, Some r_in_share,
      Some r_jain_in, Some r_jain_out, Some r_drops, Some r_threshold,
      Some r_ok ) ->
      Some
        { r_run; r_cp; r_providers; r_in_share; r_jain_in; r_jain_out;
          r_ratio_in = flt "ratio_in"; r_drops; r_threshold; r_ok }
  | _ -> None

let rows_of_json = function
  | Obs.Json.List l -> Some (List.filter_map row_of_json l)
  | _ -> None
