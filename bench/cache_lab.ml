(* Shared driver for the M-series cache experiments.

   Drives a Map_cache directly with a Zipf reference stream over an
   internet-scale EID prefix universe — no packets, no event engine:
   one reference is one ITR lookup (and, on a miss, the resulting
   mapping installation).  This is what lets the cells run at millions
   of prefixes and references in seconds; everything is seeded, so the
   measured quantities are exact across runs and job counts. *)

open Nettypes

type result = {
  measured_miss : float;  (* misses / refs over the measurement window *)
  hits : int;
  misses : int;
  evictions : int;  (* whole cell, warmup included *)
  expirations : int;
}

(* The sampler's exact masses, so predictions and measurements share
   one popularity distribution. *)
let masses_of dist =
  Array.init (Netsim.Rng.Zipf.support dist) (Netsim.Rng.Zipf.probability dist)

let rloc = Mapping.rloc (Ipv4.addr_of_int 0x0A000001)

(* Run one cell: [warmup] references to reach steady state (not
   counted), then [refs] measured references.  Simulated time advances
   [dt] seconds per reference, so [ttl] bounds an entry's life to
   [ttl /. dt] references; pass [dt = 0.0] for a TTL-free cell (the
   regime the analytical model describes). *)
let run_cell ~universe ~dist ~policy ~capacity ~warmup ~refs ~ttl ~dt ~seed ()
    =
  let cache = Lispdp.Map_cache.create ~policy ~capacity () in
  let rng = Netsim.Rng.create seed in
  let now = ref 0.0 in
  let reference () =
    let rank = Netsim.Rng.Zipf.sample dist rng in
    (match
       Lispdp.Map_cache.lookup cache ~now:!now
         (Workload.Eid_universe.network universe rank)
     with
    | Some _ -> ()
    | None ->
        Lispdp.Map_cache.insert cache ~now:!now
          (Mapping.create
             ~eid_prefix:(Workload.Eid_universe.prefix universe rank)
             ~rlocs:[ rloc ] ~ttl));
    now := !now +. dt
  in
  for _ = 1 to warmup do
    reference ()
  done;
  let stats = Lispdp.Map_cache.stats cache in
  let hits0 = stats.Lispdp.Map_cache.hits
  and misses0 = stats.Lispdp.Map_cache.misses in
  for _ = 1 to refs do
    reference ()
  done;
  let hits = stats.Lispdp.Map_cache.hits - hits0
  and misses = stats.Lispdp.Map_cache.misses - misses0 in
  { measured_miss = float_of_int misses /. float_of_int (Stdlib.max 1 refs);
    hits; misses; evictions = stats.Lispdp.Map_cache.evictions;
    expirations = stats.Lispdp.Map_cache.expirations }
