(* Integration tests for the PCE control plane: the paper's three claims
   (no drops, T_map within T_DNS, independent ingress/egress TE), the
   step 1-8 walkthrough, and the two ablations (push scope, reverse
   multicast). *)

open Core
open Nettypes

let pce_config ?(options = Pce_control.default_options) () =
  { Scenario.default_config with Scenario.cp = Scenario.Cp_pce options }

let figure1_flow s ~port =
  let internet = Scenario.internet s in
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  Flow.create
    ~src:(Topology.Domain.host_eid as_s 0)
    ~dst:(Topology.Domain.host_eid as_d 0)
    ~src_port:port ()

let run_one_connection config ~port =
  let s = Scenario.build config in
  let flow = figure1_flow s ~port in
  let c = Scenario.open_connection s ~flow ~data_packets:5 () in
  Scenario.run s;
  (s, c)

let dropped s = (Lispdp.Dataplane.counters (Scenario.dataplane s)).Lispdp.Dataplane.dropped

(* ------------------------------------------------------------------ *)
(* Claim C1: no packet loss during mapping resolution                  *)
(* ------------------------------------------------------------------ *)

let test_c1_pce_no_drops () =
  let s, c = run_one_connection (pce_config ()) ~port:6000 in
  Alcotest.(check int) "zero drops under PCE" 0 (dropped s);
  match c.Scenario.tcp with
  | Some conn ->
      Alcotest.(check int) "single SYN suffices" 1 conn.Workload.Tcp.syn_transmissions;
      Alcotest.(check int) "all data delivered" 5 conn.Workload.Tcp.data_delivered
  | None -> Alcotest.fail "connection never started"

let test_c1_pull_drop_loses_first_syn () =
  let s, c =
    run_one_connection
      { Scenario.default_config with Scenario.cp = Scenario.Cp_pull_drop }
      ~port:6001
  in
  Alcotest.(check bool) "at least one drop" true (dropped s >= 1);
  match c.Scenario.tcp with
  | Some conn ->
      Alcotest.(check bool) "SYN retransmitted" true
        (conn.Workload.Tcp.syn_transmissions >= 2);
      Alcotest.(check bool) "eventually established" true
        (conn.Workload.Tcp.established_at <> None)
  | None -> Alcotest.fail "connection never started"

let test_c1_queue_and_nerd_no_drops () =
  List.iter
    (fun cp ->
      let s, c =
        run_one_connection { Scenario.default_config with Scenario.cp } ~port:6002
      in
      Alcotest.(check int) (Scenario.cp_label cp ^ " drops") 0 (dropped s);
      match c.Scenario.tcp with
      | Some conn ->
          Alcotest.(check int)
            (Scenario.cp_label cp ^ " single SYN")
            1 conn.Workload.Tcp.syn_transmissions
      | None -> Alcotest.fail "connection never started")
    [ Scenario.Cp_pull_queue 32; Scenario.Cp_nerd; Scenario.Cp_pull_detour ]

(* ------------------------------------------------------------------ *)
(* Claim C2: T_DNS + T_map ~= T_DNS and setup time parity              *)
(* ------------------------------------------------------------------ *)

let test_c2_dns_time_barely_inflated () =
  (* The pull CPs leave DNS untouched: their dns_time is the baseline
     T_DNS.  The PCE detours the final answer through both PCEs, which
     must cost well under 1 ms extra. *)
  let _, c_pull =
    run_one_connection
      { Scenario.default_config with Scenario.cp = Scenario.Cp_pull_drop }
      ~port:6003
  in
  let _, c_pce = run_one_connection (pce_config ()) ~port:6003 in
  match (c_pull.Scenario.dns_time, c_pce.Scenario.dns_time) with
  | Some t_dns, Some t_dns_pce ->
      Alcotest.(check bool) "PCE adds < 1ms to DNS resolution" true
        (t_dns_pce -. t_dns < 0.001);
      Alcotest.(check bool) "ratio ~= 1" true (t_dns_pce /. t_dns < 1.01)
  | _ -> Alcotest.fail "missing dns measurements"

let test_c2_setup_time_matches_ideal () =
  (* NERD is the no-resolution ideal; the PCE must match it, while
     pull-drop pays at least one RTO. *)
  let setup cp port =
    let _, c = run_one_connection { Scenario.default_config with Scenario.cp } ~port in
    match Scenario.total_setup_time c with
    | Some t -> t
    | None -> Alcotest.fail (Scenario.cp_label cp ^ ": never established")
  in
  let t_nerd = setup Scenario.Cp_nerd 6004 in
  let t_pce = setup (Scenario.Cp_pce Pce_control.default_options) 6004 in
  let t_drop = setup Scenario.Cp_pull_drop 6004 in
  (* Border choices may differ between CPs, so allow a few ms of path
     asymmetry -- still two orders of magnitude below the RTO. *)
  Alcotest.(check bool) "pce within 30ms of ideal" true
    (Float.abs (t_pce -. t_nerd) < 0.030);
  Alcotest.(check bool) "pull-drop pays an RTO" true (t_drop > t_pce +. 0.9)

let test_c2_mapping_ready_before_first_packet () =
  let s, c = run_one_connection (pce_config ()) ~port:6005 in
  (match c.Scenario.tcp with
  | Some conn -> (
      match conn.Workload.Tcp.first_syn_arrival with
      | Some at ->
          (* First SYN arrived without any retransmission: the mapping
             was configured during DNS resolution. *)
          Alcotest.(check bool) "first SYN flew through" true
            (at -. conn.Workload.Tcp.started_at < 0.5)
      | None -> Alcotest.fail "first SYN never arrived")
  | None -> Alcotest.fail "connection never started");
  (* The flow entry is present in every ITR of AS_S (push to all). *)
  let internet = Scenario.internet s in
  let as_s = internet.Topology.Builder.domains.(0) in
  let dp = Scenario.dataplane s in
  Array.iter
    (fun router ->
      Alcotest.(check bool) "entry in ITR flow table" true
        (Lispdp.Flow_table.lookup router.Lispdp.Dataplane.flows
           ~now:(Netsim.Engine.now (Scenario.engine s))
           ~src_eid:c.Scenario.flow.Flow.src ~dst_eid:c.Scenario.flow.Flow.dst
        <> None))
    (Lispdp.Dataplane.routers_of_domain dp as_s)

(* ------------------------------------------------------------------ *)
(* Claim C3: independent ingress and egress selection                  *)
(* ------------------------------------------------------------------ *)

let heat_uplink border ~direction ~bytes =
  let link = border.Topology.Domain.uplink in
  let router = border.Topology.Domain.router in
  let src =
    match direction with
    | `Outbound -> router
    | `Inbound -> Topology.Link.other_end link router
  in
  Topology.Link.account link ~src ~bytes

let observe_pce s domain_id ~now =
  match Scenario.pce s with
  | Some pc ->
      let selector = Pce.selector (Pce_control.pce_of_domain pc domain_id) in
      Irc.Selector.observe selector ~now
  | None -> Alcotest.fail "not a PCE scenario"

let test_c3_asymmetric_tunnels () =
  let s = Scenario.build (pce_config ()) in
  let internet = Scenario.internet s in
  let as_s = internet.Topology.Builder.domains.(0) in
  let b0 = as_s.Topology.Domain.borders.(0) in
  let b1 = as_s.Topology.Domain.borders.(1) in
  (* Prime the IRC estimates: AS_S border 0 is hot inbound, so the PCE
     must choose border 1 as the flow's ingress (RLOC_S), while egress
     (all idle outbound) stays on border 0. *)
  observe_pce s 0 ~now:0.0;
  heat_uplink b0 ~direction:`Inbound ~bytes:100_000_000;
  observe_pce s 0 ~now:1.0;
  Topology.Link.reset_counters b0.Topology.Domain.uplink;
  Topology.Link.reset_counters b1.Topology.Domain.uplink;
  let flow = figure1_flow s ~port:6006 in
  let c = Scenario.open_connection s ~flow ~data_packets:5 () in
  Scenario.run s;
  Alcotest.(check bool) "established" true
    (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None);
  Alcotest.(check int) "no drops" 0 (dropped s);
  (* Structural check of the two independent one-way tunnels: the pushed
     entry carries border 1's locator as RLOC_S (inbound avoids the hot
     uplink) ... *)
  let dp = Scenario.dataplane s in
  let now = Netsim.Engine.now (Scenario.engine s) in
  let entry =
    match
      Lispdp.Flow_table.lookup
        (Lispdp.Dataplane.routers_of_domain dp as_s).(0).Lispdp.Dataplane.flows
        ~now ~src_eid:flow.Flow.src ~dst_eid:flow.Flow.dst
    with
    | Some e -> e
    | None -> Alcotest.fail "flow entry missing"
  in
  Alcotest.(check string) "RLOC_S is border 1 (idle inbound)"
    (Ipv4.addr_to_string b1.Topology.Domain.rloc)
    (Ipv4.addr_to_string entry.Mapping.src_rloc);
  (* ... while the data bytes left through border 0's uplink (egress was
     chosen independently).  DNS messages also cross the uplinks, so the
     comparison is on volume, not exact zero. *)
  let out_b0 = Topology.Link.bytes_from b0.Topology.Domain.uplink b0.Topology.Domain.router in
  let out_b1 = Topology.Link.bytes_from b1.Topology.Domain.uplink b1.Topology.Domain.router in
  Alcotest.(check bool) "bulk of outbound bytes left via border 0" true
    (out_b0 > out_b1 + 4000);
  (* And AS_D's reverse entry tunnels toward border 1 of AS_S. *)
  let as_d = internet.Topology.Builder.domains.(1) in
  let reverse_entry =
    match
      Lispdp.Flow_table.lookup
        (Lispdp.Dataplane.routers_of_domain dp as_d).(0).Lispdp.Dataplane.flows
        ~now ~src_eid:flow.Flow.dst ~dst_eid:flow.Flow.src
    with
    | Some e -> e
    | None -> Alcotest.fail "reverse entry missing"
  in
  Alcotest.(check string) "reverse tunnel targets RLOC_S"
    (Ipv4.addr_to_string b1.Topology.Domain.rloc)
    (Ipv4.addr_to_string reverse_entry.Mapping.dst_rloc)

let test_c3_baseline_is_symmetric () =
  (* Under pull-queue, gleaning forces the reverse flow through the
     forward ETR: whatever uplink carried the SYN out also carries the
     SYN/ACK in. *)
  let s =
    Scenario.build
      { Scenario.default_config with Scenario.cp = Scenario.Cp_pull_queue 32 }
  in
  let flow = figure1_flow s ~port:6007 in
  ignore (Scenario.open_connection s ~flow ~data_packets:2 ());
  Scenario.run s;
  let as_s = (Scenario.internet s).Topology.Builder.domains.(0) in
  Array.iter
    (fun b ->
      let out =
        Topology.Link.bytes_from b.Topology.Domain.uplink b.Topology.Domain.router
      in
      let inb =
        Topology.Link.bytes_from b.Topology.Domain.uplink
          (Topology.Link.other_end b.Topology.Domain.uplink b.Topology.Domain.router)
      in
      (* Symmetry: a border is used in both directions or not at all. *)
      Alcotest.(check bool) "symmetric usage" true ((out > 0) = (inb > 0)))
    as_s.Topology.Domain.borders

(* ------------------------------------------------------------------ *)
(* F1: the architecture walkthrough                                    *)
(* ------------------------------------------------------------------ *)

let test_f1_trace_contains_all_steps () =
  let s = Scenario.build (pce_config ()) in
  Netsim.Trace.set_enabled (Scenario.trace s) true;
  let flow = figure1_flow s ~port:6008 in
  ignore (Scenario.open_connection s ~flow ~data_packets:1 ());
  Scenario.run s;
  let entries = Netsim.Trace.entries (Scenario.trace s) in
  let has fragment =
    List.exists
      (fun e ->
        let ev = e.Netsim.Trace.event in
        let fl = String.length fragment and el = String.length ev in
        let rec scan i = i + fl <= el && (String.sub ev i fl = fragment || scan (i + 1)) in
        scan 0)
      entries
  in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("trace mentions: " ^ fragment) true (has fragment))
    [ "step 1"; "step 6"; "step 7"; "step 7b"; "step 8"; "reverse mapping" ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let rebalance_pce s domain_id =
  match Scenario.pce s with
  | Some pc ->
      Irc.Selector.rebalance (Pce.selector (Pce_control.pce_of_domain pc domain_id))
  | None -> Alcotest.fail "not a PCE scenario"

(* Shared scaffold: a long transfer is in flight when the IRC engine
   reroutes its egress to another border.  New connections are always
   healed by a fresh push from the PCE's name database, so only the
   mid-flight reroute distinguishes the push scopes. *)
let ablation_a1 ~push_scope =
  (* Reverse multicast would re-install the forward entry at every ITR
     when the SYN/ACK completes, masking the push-scope difference; pin
     it to receiving-only so the ablation isolates the 7b knob. *)
  let options =
    { Pce_control.default_options with
      Pce_control.push_scope;
      reverse_scope = Pce_control.Reverse_receiving_only }
  in
  let s = Scenario.build (pce_config ~options ()) in
  let flow = figure1_flow s ~port:6100 in
  (* ~1.2 s of data at the default 2 ms pacing. *)
  ignore (Scenario.open_connection s ~flow ~data_packets:600 ());
  let as_s = (Scenario.internet s).Topology.Builder.domains.(0) in
  (* Mid-transfer: make whatever uplink the flow uses look hot and let
     the PCE rebalance. *)
  ignore
    (Netsim.Engine.schedule (Scenario.engine s) ~delay:0.8 (fun () ->
         let egress =
           match
             Array.to_list as_s.Topology.Domain.borders
             |> List.find_opt (fun b ->
                    Topology.Link.bytes_from b.Topology.Domain.uplink
                      b.Topology.Domain.router
                    > 0)
           with
           | Some b -> b
           | None -> Alcotest.fail "no egress traffic found"
         in
         let t_now = Netsim.Engine.now (Scenario.engine s) in
         observe_pce s 0 ~now:t_now;
         heat_uplink egress ~direction:`Outbound ~bytes:200_000_000;
         observe_pce s 0 ~now:(t_now +. 1.0);
         rebalance_pce s 0));
  Scenario.run s;
  s

let test_a1_push_all_survives_reroute () =
  let s = ablation_a1 ~push_scope:Pce_control.Push_all_itrs in
  Alcotest.(check int) "no drops after TE reroute" 0 (dropped s)

let test_a1_push_egress_only_breaks_on_reroute () =
  let s = ablation_a1 ~push_scope:Pce_control.Push_egress_only in
  Alcotest.(check bool) "reroute without entries drops packets" true (dropped s > 0);
  Alcotest.(check bool) "drop cause is the missing forward mapping" true
    (List.mem_assoc "pce-no-mapping-forward"
       (Lispdp.Dataplane.drop_causes (Scenario.dataplane s)))

let ablation_a2 ~reverse_scope =
  let options = { Pce_control.default_options with Pce_control.reverse_scope } in
  let s = Scenario.build (pce_config ~options ()) in
  (* Make AS_D's outbound border 0 hot, so the reverse flow exits via
     border 1 while forward traffic arrives at border 0. *)
  let as_d = (Scenario.internet s).Topology.Builder.domains.(1) in
  observe_pce s 1 ~now:0.0;
  heat_uplink as_d.Topology.Domain.borders.(0) ~direction:`Outbound
    ~bytes:200_000_000;
  observe_pce s 1 ~now:1.0;
  let flow = figure1_flow s ~port:6102 in
  let c = Scenario.open_connection s ~flow () in
  Scenario.run s;
  (s, c)

let test_a2_multicast_enables_any_egress () =
  let s, c = ablation_a2 ~reverse_scope:Pce_control.Reverse_multicast in
  Alcotest.(check int) "no drops with multicast" 0 (dropped s);
  Alcotest.(check bool) "established" true
    (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None)

let test_a2_receiving_only_breaks_divergent_reverse () =
  let s, _ = ablation_a2 ~reverse_scope:Pce_control.Reverse_receiving_only in
  Alcotest.(check bool) "reverse path drops without multicast" true (dropped s > 0)

(* ------------------------------------------------------------------ *)
(* Scenario plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let test_scenario_deterministic () =
  let totals config =
    let s, c = run_one_connection config ~port:6200 in
    ( dropped s,
      (Lispdp.Dataplane.counters (Scenario.dataplane s)).Lispdp.Dataplane.delivered,
      Scenario.total_setup_time c )
  in
  let a = totals (pce_config ()) in
  let b = totals (pce_config ()) in
  Alcotest.(check bool) "same seed, same world" true (a = b)

let test_scenario_random_topology () =
  let config =
    { (pce_config ()) with
      Scenario.topology =
        `Random { Topology.Builder.default_params with domain_count = 6 } }
  in
  let s = Scenario.build config in
  let internet = Scenario.internet s in
  let d0 = internet.Topology.Builder.domains.(0) in
  let d5 = internet.Topology.Builder.domains.(5) in
  let flow =
    Flow.create
      ~src:(Topology.Domain.host_eid d0 0)
      ~dst:(Topology.Domain.host_eid d5 0)
      ~src_port:6201 ()
  in
  let c = Scenario.open_connection s ~flow () in
  Scenario.run s;
  Alcotest.(check bool) "established across random internet" true
    (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None);
  Alcotest.(check int) "no drops" 0 (dropped s)

let test_scenario_many_connections_all_cps () =
  List.iter
    (fun cp ->
      let s = Scenario.build { Scenario.default_config with Scenario.cp } in
      for port = 7000 to 7009 do
        ignore (Scenario.open_connection s ~flow:(figure1_flow s ~port) ~data_packets:2 ())
      done;
      Scenario.run s;
      let established =
        List.length
          (List.filter
             (fun c -> Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None)
             (Scenario.connections s))
      in
      Alcotest.(check int)
        (Scenario.cp_label cp ^ ": all connections succeed")
        10 established)
    [ Scenario.Cp_pull_drop; Scenario.Cp_pull_queue 32; Scenario.Cp_pull_detour;
      Scenario.Cp_nerd; Scenario.Cp_cons;
      Scenario.Cp_pce Pce_control.default_options ]

let test_scenario_uplink_utilisation_api () =
  let s, _ = run_one_connection (pce_config ()) ~port:6202 in
  let as_s = (Scenario.internet s).Topology.Builder.domains.(0) in
  let out = Scenario.uplink_utilisation s as_s ~direction:`Outbound ~duration:1.0 in
  Alcotest.(check int) "one value per border" 2 (Array.length out);
  Alcotest.(check bool) "some outbound load" true
    (Array.exists (fun u -> u > 0.0) out);
  Scenario.reset_uplink_counters s;
  let zeroed = Scenario.uplink_utilisation s as_s ~direction:`Outbound ~duration:1.0 in
  Alcotest.(check bool) "reset" true (Array.for_all (fun u -> u = 0.0) zeroed)

(* ------------------------------------------------------------------ *)
(* Pce module unit tests                                               *)
(* ------------------------------------------------------------------ *)

let make_pce () =
  let internet = Topology.Builder.figure1 () in
  ( internet,
    Pce.create
      ~domain:internet.Topology.Builder.domains.(0)
      ~graph:internet.Topology.Builder.graph ~policy:Irc.Policy.Min_load () )

let qname = Dnssim.Name.of_string "h0.as1.net."

let test_pce_pending_lifecycle () =
  let internet, pce = make_pce () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let e0 = Topology.Domain.host_eid as_s 0 in
  let e1 = Topology.Domain.host_eid as_s 1 in
  Alcotest.(check int) "starts empty" 0 (Pce.pending_count pce);
  Pce.note_client_query pce ~now:0.0 ~client_eid:e0 ~qname;
  Pce.note_client_query pce ~now:1.0 ~client_eid:e1 ~qname;
  Alcotest.(check int) "two pending" 2 (Pce.pending_count pce);
  (match Pce.take_pending pce ~qname with
  | [ p0; p1 ] ->
      Alcotest.(check bool) "oldest first" true
        (Ipv4.addr_equal p0.Pce.client_eid e0 && Ipv4.addr_equal p1.Pce.client_eid e1);
      Alcotest.(check bool) "ingress is a domain rloc" true
        (List.exists (Ipv4.addr_equal p0.Pce.ingress_rloc) (Topology.Domain.rlocs as_s))
  | l -> Alcotest.failf "expected two pendings, got %d" (List.length l));
  Alcotest.(check int) "consumed" 0 (Pce.pending_count pce);
  Alcotest.(check int) "second take is empty" 0
    (List.length (Pce.take_pending pce ~qname))

let test_pce_known_name_ttl () =
  let _, pce = make_pce () in
  let eid = Ipv4.addr_of_string "100.0.1.1" in
  let rloc = Ipv4.addr_of_string "12.0.0.1" in
  Pce.learn_name_mapping pce ~qname ~dst_eid:eid ~dst_rloc:rloc ~now:0.0 ~ttl:10.0;
  (match Pce.known_name pce ~qname ~now:5.0 with
  | Some (e, r) ->
      Alcotest.(check bool) "fresh entry" true
        (Ipv4.addr_equal e eid && Ipv4.addr_equal r rloc)
  | None -> Alcotest.fail "expected known name");
  Alcotest.(check bool) "expired entry gone" true
    (Pce.known_name pce ~qname ~now:11.0 = None);
  Alcotest.(check bool) "unknown name" true
    (Pce.known_name pce ~qname:(Dnssim.Name.of_string "x.as9.net.") ~now:0.0 = None)

let test_pce_entry_database () =
  let _, pce = make_pce () in
  let entry =
    { Mapping.src_eid = Ipv4.addr_of_string "100.0.0.1";
      dst_eid = Ipv4.addr_of_string "100.0.1.1";
      src_rloc = Ipv4.addr_of_string "10.0.0.1";
      dst_rloc = Ipv4.addr_of_string "12.0.0.1" }
  in
  Pce.remember_entry pce entry;
  Alcotest.(check int) "one entry" 1 (Pce.entry_count pce);
  (match
     Pce.find_entry pce ~src_eid:entry.Mapping.src_eid
       ~dst_eid:entry.Mapping.dst_eid
   with
  | Some e ->
      Alcotest.(check bool) "found" true
        (Ipv4.addr_equal e.Mapping.dst_rloc entry.Mapping.dst_rloc)
  | None -> Alcotest.fail "entry not found");
  Alcotest.(check int) "entries toward dst" 1
    (List.length (Pce.entries_toward pce ~dst_eid:entry.Mapping.dst_eid));
  Alcotest.(check int) "entries via src rloc" 1
    (List.length (Pce.entries_with_src_rloc pce ~rloc:entry.Mapping.src_rloc));
  (* Replacing the same pair does not grow the database. *)
  Pce.remember_entry pce { entry with Mapping.dst_rloc = Ipv4.addr_of_string "13.0.0.1" };
  Alcotest.(check int) "still one entry" 1 (Pce.entry_count pce)

let test_pce_advertisements () =
  let _, pce = make_pce () in
  let eid = Ipv4.addr_of_string "100.0.0.1" in
  let peer = Ipv4.addr_of_string "0.0.0.9" in
  let rloc = Ipv4.addr_of_string "10.0.0.1" in
  Pce.record_advertisement pce ~qname ~eid ~peer ~rloc;
  (match Pce.advertisements_via pce ~rloc with
  | [ adv ] ->
      Alcotest.(check bool) "fields" true
        (Ipv4.addr_equal adv.Pce.adv_eid eid && Ipv4.addr_equal adv.Pce.adv_peer peer)
  | l -> Alcotest.failf "expected one advertisement, got %d" (List.length l));
  (* Re-advertising with a new locator moves it between buckets. *)
  let rloc2 = Ipv4.addr_of_string "11.0.0.1" in
  Pce.record_advertisement pce ~qname ~eid ~peer ~rloc:rloc2;
  Alcotest.(check int) "old bucket empty" 0
    (List.length (Pce.advertisements_via pce ~rloc));
  Alcotest.(check int) "new bucket has it" 1
    (List.length (Pce.advertisements_via pce ~rloc:rloc2))

let test_pce_ingress_sticky_per_peer () =
  let _, pce = make_pce () in
  let eid = Ipv4.addr_of_string "100.0.0.1" in
  let peer_a = Ipv4.addr_of_string "0.0.0.7" in
  let first = Pce.ingress_rloc_for_eid pce ~eid ~peer:peer_a () in
  let again = Pce.ingress_rloc_for_eid pce ~eid ~peer:peer_a () in
  Alcotest.(check bool) "sticky per (eid, peer)" true (Ipv4.addr_equal first again)

(* ------------------------------------------------------------------ *)
(* Scenario files                                                      *)
(* ------------------------------------------------------------------ *)

let test_scenario_file_defaults () =
  match Scenario_file.parse "" with
  | Ok t ->
      Alcotest.(check string) "default cp" "pce"
        (Scenario.cp_label t.Scenario_file.config.Scenario.cp);
      Alcotest.(check int) "default flows" 500
        t.Scenario_file.workload.Scenario_file.flows
  | Error m -> Alcotest.fail m

let test_scenario_file_full () =
  let text =
    "# comment\nseed 7\ntopology random\ndomains 6\nproviders 3\n\
     borders 2\nhosts 3\ncp pull-queue\nmapping-ttl 45\nflows 10\n\
     rate 5\nzipf 1.1   # inline comment\ndata-packets 4\nhotspot 2\n"
  in
  match Scenario_file.parse text with
  | Ok t -> (
      Alcotest.(check int) "seed" 7 t.Scenario_file.config.Scenario.seed;
      Alcotest.(check string) "cp" "pull-queue(32)"
        (Scenario.cp_label t.Scenario_file.config.Scenario.cp);
      Alcotest.(check (float 1e-9)) "ttl" 45.0
        t.Scenario_file.config.Scenario.mapping_ttl;
      Alcotest.(check int) "flows" 10 t.Scenario_file.workload.Scenario_file.flows;
      Alcotest.(check (option int)) "hotspot" (Some 2)
        t.Scenario_file.workload.Scenario_file.hotspot;
      match t.Scenario_file.config.Scenario.topology with
      | `Random params ->
          Alcotest.(check int) "domains" 6 params.Topology.Builder.domain_count;
          Alcotest.(check int) "hosts" 3 params.Topology.Builder.hosts_per_domain
      | `Figure1 | `Figure1_scaled _ -> Alcotest.fail "expected random topology")
  | Error m -> Alcotest.fail m

let test_scenario_file_cp_faults () =
  let text =
    "cp pull-queue\ncp-loss 0.1\ncp-jitter 0.002\ncp-rto 0.25\n\
     cp-backoff 1.5\ncp-retries 5\ncp-flap 3 10 2.5\ncp-partition 0 1 5 8\n"
  in
  match Scenario_file.parse text with
  | Error m -> Alcotest.fail m
  | Ok t -> (
      match t.Scenario_file.config.Scenario.cp_faults with
      | None -> Alcotest.fail "expected a fault profile"
      | Some p ->
          Alcotest.(check (float 1e-9)) "loss" 0.1 p.Scenario.cp_loss;
          Alcotest.(check (float 1e-9)) "jitter" 0.002 p.Scenario.cp_jitter;
          Alcotest.(check (float 1e-9)) "rto" 0.25 p.Scenario.cp_rto;
          Alcotest.(check (float 1e-9)) "backoff" 1.5 p.Scenario.cp_backoff;
          Alcotest.(check int) "retries" 5 p.Scenario.cp_retries;
          Alcotest.(check int) "two scripts" 2
            (List.length p.Scenario.cp_scripts);
          (match p.Scenario.cp_scripts with
          | [ Scenario.Flap f; Scenario.Partition q ] ->
              Alcotest.(check int) "flap domain" 3 f.domain;
              Alcotest.(check (float 1e-9)) "flap at" 10.0 f.at;
              Alcotest.(check (float 1e-9)) "flap duration" 2.5 f.duration;
              Alcotest.(check int) "partition a" 0 q.a;
              Alcotest.(check (float 1e-9)) "partition until" 8.0 q.until
          | _ -> Alcotest.fail "script order/shape wrong"))

let test_scenario_file_node_faults () =
  let text =
    "topology figure1\npce-watchdog 0.4\npce-crash-at 1 2\n\
     pce-recover-at 1 9\npce-crash-at 0 12\n"
  in
  match Scenario_file.parse text with
  | Error m -> Alcotest.fail m
  | Ok t -> (
      match t.Scenario_file.config.Scenario.node_faults with
      | None -> Alcotest.fail "expected a node-fault profile"
      | Some p ->
          Alcotest.(check (float 1e-9)) "watchdog" 0.4 p.Scenario.pce_watchdog;
          (match p.Scenario.node_windows with
          | [ (Netsim.Lifecycle.Pce 1, from1, until1);
              (Netsim.Lifecycle.Pce 0, from0, until0) ] ->
              Alcotest.(check (float 1e-9)) "closed from" 2.0 from1;
              Alcotest.(check (float 1e-9)) "closed until" 9.0 until1;
              Alcotest.(check (float 1e-9)) "open from" 12.0 from0;
              Alcotest.(check bool) "unclosed crash never restarts" true
                (until0 = infinity)
          | _ -> Alcotest.fail "window list shape wrong"))

let test_scenario_file_errors () =
  List.iter
    (fun (text, fragment) ->
      match Scenario_file.parse text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error m ->
          let contains =
            let fl = String.length fragment and ml = String.length m in
            let rec scan i =
              i + fl <= ml && (String.sub m i fl = fragment || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) (fragment ^ " in error") true contains)
    [ ("bogus-key 3", "unknown key");
      ("cp teleport", "unknown control plane");
      ("cp-loss 1.5", "must be in [0, 1]");
      ("cp-flap 3 10", "cp-flap expects");
      ("cp-partition 0 1 8 5", "ends before it starts");
      ("domains many", "expects an integer");
      ("hosts 0", "out of");
      ("seed", "expected 'key value'");
      ("domains 4\nhotspot 9", "does not exist");
      ("topology pentagon", "unknown topology");
      ("pce-recover-at 1 5", "no pce-crash-at");
      ("pce-crash-at 1 8\npce-recover-at 1 3", "inverted window");
      ("pce-crash-at 1 2\npce-crash-at 1 4", "already has an open crash");
      ("topology figure1\npce-crash-at 5 2", "does not exist") ]

let test_scenario_file_runs () =
  match
    Scenario_file.parse "topology figure1\ncp nerd\nflows 3\nrate 10\n"
  with
  | Error m -> Alcotest.fail m
  | Ok t ->
      let s = Scenario.build t.Scenario_file.config in
      let flow = figure1_flow s ~port:6500 in
      ignore (Scenario.open_connection s ~flow ~data_packets:1 ());
      Scenario.run s;
      Alcotest.(check int) "no drops under nerd" 0 (dropped s)

(* ------------------------------------------------------------------ *)
(* Cross-control-plane properties                                      *)
(* ------------------------------------------------------------------ *)

(* Packet conservation: after the engine drains, every packet handed to
   the data plane was delivered, dropped, or handed to the control plane
   and abandoned there.  Holds for every control plane and seed. *)
let prop_packet_conservation =
  QCheck.Test.make ~name:"packet conservation across CPs" ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 0 5))
    (fun (seed, cp_index) ->
      let cp =
        List.nth
          [ Scenario.Cp_pull_drop; Scenario.Cp_pull_queue 8;
            Scenario.Cp_pull_detour; Scenario.Cp_nerd; Scenario.Cp_cons;
            Scenario.Cp_pce Pce_control.default_options ]
          cp_index
      in
      let s =
        Scenario.build
          { Scenario.default_config with
            Scenario.cp; seed;
            topology =
              `Random
                { Topology.Builder.default_params with
                  Topology.Builder.domain_count = 5 } }
      in
      let internet = Scenario.internet s in
      let traffic =
        Workload.Traffic.create ~rng:(Netsim.Rng.split (Scenario.rng s))
          ~internet ()
      in
      for _ = 1 to 30 do
        ignore
          (Scenario.open_connection s
             ~flow:(Workload.Traffic.random_flow traffic ())
             ~data_packets:3 ())
      done;
      Scenario.run s;
      let c = Lispdp.Dataplane.counters (Scenario.dataplane s) in
      let accounted = c.Lispdp.Dataplane.delivered + c.Lispdp.Dataplane.dropped in
      (* Held packets may be re-transmitted (and then delivered/dropped)
         or abandoned; everything else must be accounted exactly. *)
      accounted <= c.Lispdp.Dataplane.sent + c.Lispdp.Dataplane.held
      && accounted >= c.Lispdp.Dataplane.sent - c.Lispdp.Dataplane.held
      && Netsim.Engine.pending (Scenario.engine s) = 0)

(* The PCE's headline claim as a property: on any topology and seed,
   every DNS-then-TCP connection establishes with a single SYN and the
   data plane drops nothing. *)
let prop_pce_lossless =
  QCheck.Test.make ~name:"pce is lossless on any seed" ~count:10
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let s =
        Scenario.build
          { Scenario.default_config with
            Scenario.seed;
            topology =
              `Random
                { Topology.Builder.default_params with
                  Topology.Builder.domain_count = 6 } }
      in
      let traffic =
        Workload.Traffic.create ~rng:(Netsim.Rng.split (Scenario.rng s))
          ~internet:(Scenario.internet s) ()
      in
      for _ = 1 to 25 do
        ignore
          (Scenario.open_connection s
             ~flow:(Workload.Traffic.random_flow traffic ())
             ~data_packets:2 ())
      done;
      Scenario.run s;
      dropped s = 0
      && List.for_all
           (fun c ->
             match c.Scenario.tcp with
             | Some conn ->
                 conn.Workload.Tcp.syn_transmissions = 1
                 && Workload.Tcp.handshake_time conn <> None
             | None -> false)
           (Scenario.connections s))

let test_figure1_scale () =
  let base = Topology.Builder.figure1 () in
  let double = Topology.Builder.figure1 ~scale:2.0 () in
  let owd net =
    Topology.Builder.latency net
      net.Topology.Builder.domains.(0).Topology.Domain.hosts.(0)
      net.Topology.Builder.domains.(1).Topology.Domain.hosts.(0)
  in
  (* Internal latencies (two 1 ms hops at each end) are unscaled, so the
     host-to-host OWD grows by slightly less than 2x; the wire part
     doubles exactly. *)
  Alcotest.(check (float 1e-9)) "wire part doubles"
    (2.0 *. (owd base -. 0.004))
    (owd double -. 0.004);
  match Topology.Builder.figure1 ~scale:0.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero scale accepted"

let () =
  Alcotest.run "core"
    [
      ( "claim-1-no-drops",
        [
          Alcotest.test_case "pce zero drops" `Quick test_c1_pce_no_drops;
          Alcotest.test_case "pull-drop loses syn" `Quick test_c1_pull_drop_loses_first_syn;
          Alcotest.test_case "queue/nerd/detour lossless" `Quick test_c1_queue_and_nerd_no_drops;
        ] );
      ( "claim-2-latency",
        [
          Alcotest.test_case "dns barely inflated" `Quick test_c2_dns_time_barely_inflated;
          Alcotest.test_case "setup matches ideal" `Quick test_c2_setup_time_matches_ideal;
          Alcotest.test_case "mapping ready in time" `Quick test_c2_mapping_ready_before_first_packet;
        ] );
      ( "claim-3-te",
        [
          Alcotest.test_case "asymmetric tunnels" `Quick test_c3_asymmetric_tunnels;
          Alcotest.test_case "baseline symmetric" `Quick test_c3_baseline_is_symmetric;
        ] );
      ("figure-1", [ Alcotest.test_case "trace steps" `Quick test_f1_trace_contains_all_steps ]);
      ( "ablations",
        [
          Alcotest.test_case "a1 push-all survives" `Quick test_a1_push_all_survives_reroute;
          Alcotest.test_case "a1 egress-only breaks" `Quick test_a1_push_egress_only_breaks_on_reroute;
          Alcotest.test_case "a2 multicast works" `Quick test_a2_multicast_enables_any_egress;
          Alcotest.test_case "a2 receiving-only breaks" `Quick test_a2_receiving_only_breaks_divergent_reverse;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "random topology" `Quick test_scenario_random_topology;
          Alcotest.test_case "all cps run" `Quick test_scenario_many_connections_all_cps;
          Alcotest.test_case "utilisation api" `Quick test_scenario_uplink_utilisation_api;
          Alcotest.test_case "figure1 scale" `Quick test_figure1_scale;
        ] );
      ( "pce-unit",
        [
          Alcotest.test_case "pending lifecycle" `Quick test_pce_pending_lifecycle;
          Alcotest.test_case "known name ttl" `Quick test_pce_known_name_ttl;
          Alcotest.test_case "entry database" `Quick test_pce_entry_database;
          Alcotest.test_case "advertisements" `Quick test_pce_advertisements;
          Alcotest.test_case "ingress sticky" `Quick test_pce_ingress_sticky_per_peer;
        ] );
      ( "scenario-file",
        [
          Alcotest.test_case "defaults" `Quick test_scenario_file_defaults;
          Alcotest.test_case "full parse" `Quick test_scenario_file_full;
          Alcotest.test_case "cp faults" `Quick test_scenario_file_cp_faults;
          Alcotest.test_case "node faults" `Quick
            test_scenario_file_node_faults;
          Alcotest.test_case "errors" `Quick test_scenario_file_errors;
          Alcotest.test_case "runs" `Quick test_scenario_file_runs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_packet_conservation; prop_pce_lossless ] );
    ]
