(* Tests over the experiment harness itself: the registry of experiment
   ids, the shared workload driver, and — most importantly — the V1
   validation experiment run as an assertion: the simulator's timings
   must match their closed forms. *)

open Experiments

let test_index_ids_unique_and_findable () =
  let ids = List.map (fun e -> e.Exp_index.exp_id) Exp_index.all in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Exp_index.find id with
      | Some e -> Alcotest.(check string) "find returns the entry" id e.Exp_index.exp_id
      | None -> Alcotest.failf "id %s not findable" id)
    ids;
  Alcotest.(check bool) "unknown id" true (Exp_index.find "nope" = None);
  Alcotest.(check int) "thirty experiments" 30 (List.length ids)

(* V1 as a hard assertion: analytic and simulated timings agree to the
   microsecond. *)
let test_v1_validation_holds () =
  match Exp_v1.tables () with
  | [ table ] ->
      Alcotest.(check int) "three validated quantities" 3
        (Metrics.Table.row_count table);
      let csv = Metrics.Table.to_csv table in
      (* Every delta column entry must be 0.00 (microseconds). *)
      String.split_on_char '\n' csv
      |> List.iteri (fun i line ->
             if i > 0 && line <> "" then begin
               match List.rev (String.split_on_char ',' line) with
               | delta :: _ ->
                   (* "-0.00" is floating-point negative zero at the
                      printed precision; both spellings are sub-5ns. *)
                   Alcotest.(check bool)
                     (Printf.sprintf "row %d delta (%s)" i delta)
                     true
                     (delta = "0.00" || delta = "-0.00")
               | [] -> Alcotest.fail "empty row"
             end)
  | tables -> Alcotest.failf "expected one table, got %d" (List.length tables)

(* F1 re-run through the experiment module: the claims in numbers. *)
let test_f1_quantities () =
  let scenario, connection = Exp_f1.run () in
  let counters =
    Lispdp.Dataplane.counters (Core.Scenario.dataplane scenario)
  in
  Alcotest.(check int) "no drops" 0 counters.Lispdp.Dataplane.dropped;
  match
    ( connection.Core.Scenario.dns_time,
      Core.Scenario.total_setup_time connection )
  with
  | Some dns, Some setup ->
      let handshake =
        Option.value ~default:nan
          (Option.bind connection.Core.Scenario.tcp Workload.Tcp.handshake_time)
      in
      Alcotest.(check (float 1e-6)) "T_map beyond T_DNS is zero" 0.0
        (setup -. dns -. handshake)
  | _, _ -> Alcotest.fail "connection did not complete"

(* The shared driver on a tiny spec: counts line up. *)
let test_harness_run_smoke () =
  let config =
    { Core.Scenario.default_config with
      Core.Scenario.topology =
        `Random
          { Topology.Builder.default_params with
            Topology.Builder.domain_count = 4 } }
  in
  let spec =
    { (Harness.default_spec config) with
      Harness.flows = 40; rate = 40.0; data_packets = `Fixed 2 }
  in
  let r = Harness.run spec in
  Alcotest.(check bool) "poisson count near target" true
    (r.Harness.opened > 20 && r.Harness.opened < 60);
  Alcotest.(check int) "all established" r.Harness.opened r.Harness.established;
  Alcotest.(check int) "none failed" 0 r.Harness.failed;
  Alcotest.(check int) "lossless under pce" 0 (Harness.drops r);
  Alcotest.(check bool) "setups collected" true
    (Netsim.Stats.Samples.count r.Harness.setups = r.Harness.established);
  Alcotest.(check bool) "hit ratio in range" true
    (let h = Harness.cache_hit_ratio r in
     h >= 0.0 && h <= 1.0);
  let total, peak, routers = Harness.router_state_entries r in
  Alcotest.(check bool) "state accounting consistent" true
    (peak <= total && routers = 8)

let test_harness_hotspot_and_sources () =
  let config =
    { Core.Scenario.default_config with
      Core.Scenario.topology =
        `Random
          { Topology.Builder.default_params with
            Topology.Builder.domain_count = 5 } }
  in
  let spec =
    { (Harness.default_spec config) with
      Harness.flows = 30; rate = 30.0; hotspots = Some [ (0, 1.0) ];
      sources = Some [ 1; 2 ]; data_packets = `Fixed 1 }
  in
  let r = Harness.run spec in
  (* Every connection targets domain 0 and originates in domain 1 or 2. *)
  let internet = Core.Scenario.internet r.Harness.scenario in
  List.iter
    (fun c ->
      (match Topology.Builder.domain_of_eid internet c.Core.Scenario.flow.Nettypes.Flow.dst with
      | Some d -> Alcotest.(check int) "hotspot destination" 0 d.Topology.Domain.id
      | None -> Alcotest.fail "unknown dst");
      match Topology.Builder.domain_of_eid internet c.Core.Scenario.flow.Nettypes.Flow.src with
      | Some d ->
          Alcotest.(check bool) "restricted source" true
            (List.mem d.Topology.Domain.id [ 1; 2 ])
      | None -> Alcotest.fail "unknown src")
    (Core.Scenario.connections r.Harness.scenario)

let () =
  Alcotest.run "experiments"
    [
      ( "index",
        [ Alcotest.test_case "ids" `Quick test_index_ids_unique_and_findable ] );
      ( "validation",
        [
          Alcotest.test_case "v1 closed forms" `Quick test_v1_validation_holds;
          Alcotest.test_case "f1 quantities" `Quick test_f1_quantities;
        ] );
      ( "harness",
        [
          Alcotest.test_case "run smoke" `Quick test_harness_run_smoke;
          Alcotest.test_case "hotspot and sources" `Quick test_harness_hotspot_and_sources;
        ] );
    ]
