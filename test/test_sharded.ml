(* Determinism acceptance for issue 7: Domain-sharded dispatch must be
   a pure throughput optimisation — the merged trace of a parallel run
   is byte-identical to the same workload run sequentially.  Each
   shard's engine records into its own trace; [Trace.merge] orders
   records by (time, shard position, per-shard index), none of which
   depends on domain scheduling. *)

open Netsim

(* Per-shard workload: a self-rescheduling chain of timers plus a
   sprinkling of one-shot events and cancels, all derived from a
   deterministic per-shard seed so shards differ from each other but
   every run of the same shard is identical. *)
let load_shard ~shard ~events engine trace =
  let rng = ref (shard * 2654435761 + 12345) in
  let next_rng () =
    rng := (!rng * 1103515245 + 12345) land 0x3FFFFFFF;
    !rng
  in
  let actor = Printf.sprintf "shard-%d" shard in
  let remaining = ref events in
  let rec tick i () =
    if !remaining > 0 then begin
      decr remaining;
      Trace.record trace ~time:(Engine.now engine) ~actor
        (Printf.sprintf "tick-%d" i);
      let delay = 0.25 +. (float_of_int (next_rng () mod 16) /. 16.0) in
      ignore (Engine.schedule engine ~delay (tick (i + 1)));
      (* Occasionally schedule-and-cancel a decoy: cancels must not
         perturb the merged order either. *)
      if next_rng () mod 7 = 0 then begin
        let h = Engine.schedule engine ~delay:(delay +. 100.0) ignore in
        Engine.cancel engine h
      end
    end
  in
  ignore (Engine.schedule engine ~delay:0.1 (tick 0))

let run_pool ~parallel ~shards ~events_per_shard =
  let pool = Engine.Shards.create shards in
  let traces =
    Array.init shards (fun _ -> Trace.create ())
  in
  for s = 0 to shards - 1 do
    load_shard ~shard:s ~events:events_per_shard
      (Engine.Shards.get pool s) traces.(s)
  done;
  Engine.Shards.run ~parallel pool;
  let merged = Trace.merge (Array.to_list traces) in
  (Format.asprintf "%a" Trace.pp merged, Engine.Shards.events_processed pool)

let test_byte_identical_replay () =
  let shards = 4 and events_per_shard = 17_500 in
  let seq_out, seq_events =
    run_pool ~parallel:false ~shards ~events_per_shard
  in
  let par_out, par_events =
    run_pool ~parallel:true ~shards ~events_per_shard
  in
  Alcotest.(check bool) "workload is non-trivial" true
    (seq_events >= shards * events_per_shard);
  Alcotest.(check int) "same events processed" seq_events par_events;
  Alcotest.(check bool) "trace is non-empty" true
    (String.length seq_out > 0);
  Alcotest.(check string) "merged trace byte-identical" seq_out par_out

let test_merge_orders_across_shards () =
  let a = Trace.create () in
  let b = Trace.create () in
  Trace.record a ~time:1.0 ~actor:"a" "a1";
  Trace.record a ~time:3.0 ~actor:"a" "a3";
  Trace.record b ~time:1.0 ~actor:"b" "b1";
  Trace.record b ~time:2.0 ~actor:"b" "b2";
  let m = Trace.merge [ a; b ] in
  let got = List.map (fun (e : Trace.entry) -> e.event) (Trace.entries m) in
  (* Equal times order by shard position in the merge list. *)
  Alcotest.(check (list string)) "time-major, shard-minor order"
    [ "a1"; "b1"; "b2"; "a3" ] got

let () =
  Alcotest.run "sharded"
    [
      ( "replay",
        [
          Alcotest.test_case "70k-event byte-identical replay" `Quick
            test_byte_identical_replay;
          Alcotest.test_case "merge ordering" `Quick
            test_merge_orders_across_shards;
        ] );
    ]
