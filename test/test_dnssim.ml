(* Tests for the DNS simulation: names, zones, iterative resolution
   timing, caching, taps and observers. *)

open Dnssim

let name = Name.of_string

(* ------------------------------------------------------------------ *)
(* Name                                                                *)
(* ------------------------------------------------------------------ *)

let test_name_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Name.to_string (name s)))
    [ "."; "net."; "as3.net."; "h0.as3.net." ];
  Alcotest.(check string) "trailing dot added" "as3.net."
    (Name.to_string (name "as3.net"))

let test_name_malformed () =
  match name "a..b" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty label accepted"

let test_name_parent () =
  Alcotest.(check (option string)) "parent" (Some "as3.net.")
    (Option.map Name.to_string (Name.parent (name "h0.as3.net.")));
  Alcotest.(check (option string)) "parent of tld" (Some ".")
    (Option.map Name.to_string (Name.parent (name "net.")));
  Alcotest.(check bool) "root has no parent" true (Name.parent Name.root = None)

let test_name_in_zone () =
  Alcotest.(check bool) "host in domain zone" true
    (Name.in_zone (name "h0.as3.net.") ~zone:(name "as3.net."));
  Alcotest.(check bool) "apex in own zone" true
    (Name.in_zone (name "as3.net.") ~zone:(name "as3.net."));
  Alcotest.(check bool) "sibling not in zone" false
    (Name.in_zone (name "h0.as4.net.") ~zone:(name "as3.net."));
  Alcotest.(check bool) "all names in root" true
    (Name.in_zone (name "h0.as3.net.") ~zone:Name.root);
  (* Suffix match must be label-wise, not string-wise. *)
  Alcotest.(check bool) "xas3 is not in as3" false
    (Name.in_zone (name "h0.xas3.net.") ~zone:(name "as3.net."))

let test_name_suffix () =
  Alcotest.(check string) "keep 2" "as3.net."
    (Name.to_string (Name.suffix (name "h0.as3.net.") 2));
  Alcotest.(check string) "keep 0 is root" "."
    (Name.to_string (Name.suffix (name "h0.as3.net.") 0))

(* ------------------------------------------------------------------ *)
(* Zone                                                                *)
(* ------------------------------------------------------------------ *)

let test_zone_answers () =
  let z = Zone.create ~apex:(name "as3.net.") ~server:7 ~ttl:60.0 in
  Zone.add_a z (name "h0.as3.net.") (Nettypes.Ipv4.addr_of_string "100.0.3.1");
  (match Zone.answer z (name "h0.as3.net.") with
  | Zone.Address a ->
      Alcotest.(check string) "address" "100.0.3.1" (Nettypes.Ipv4.addr_to_string a)
  | _ -> Alcotest.fail "expected address");
  (match Zone.answer z (name "h9.as3.net.") with
  | Zone.Name_error -> ()
  | _ -> Alcotest.fail "expected NXDOMAIN");
  match Zone.answer z (name "h0.as4.net.") with
  | Zone.Name_error -> ()
  | _ -> Alcotest.fail "out-of-zone must be an error"

let test_zone_deepest_delegation () =
  let z = Zone.create ~apex:Name.root ~server:0 ~ttl:60.0 in
  Zone.delegate z ~child_apex:(name "net.") ~child_server:1;
  Zone.delegate z ~child_apex:(name "as3.net.") ~child_server:2;
  match Zone.answer z (name "h0.as3.net.") with
  | Zone.Referral (apex, server) ->
      Alcotest.(check string) "deepest apex" "as3.net." (Name.to_string apex);
      Alcotest.(check int) "server" 2 server
  | _ -> Alcotest.fail "expected referral"

let test_zone_validation () =
  let z = Zone.create ~apex:(name "as3.net.") ~server:7 ~ttl:60.0 in
  (match Zone.add_a z (name "h0.as4.net.") (Nettypes.Ipv4.addr_of_string "1.2.3.4") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-zone record accepted");
  match Zone.delegate z ~child_apex:(name "as3.net.") ~child_server:9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self-delegation accepted"

(* ------------------------------------------------------------------ *)
(* System: full resolutions on the Figure-1 internet                   *)
(* ------------------------------------------------------------------ *)

let make_system ?record_ttl ?trace () =
  let engine = Netsim.Engine.create () in
  let internet = Topology.Builder.figure1 () in
  let dns = System.create ~engine ~internet ?record_ttl ?trace () in
  (engine, internet, dns)

let resolve_once engine internet dns ~from_domain ~target =
  let d = internet.Topology.Builder.domains.(from_domain) in
  let client = d.Topology.Domain.hosts.(0) in
  let client_eid = Topology.Domain.host_eid d 0 in
  let result = ref None in
  let started = Netsim.Engine.now engine in
  System.resolve dns ~resolver:d.Topology.Domain.dns ~client ~client_eid
    (name target) ~callback:(fun r ->
      result := Some (r, Netsim.Engine.now engine -. started));
  Netsim.Engine.run engine;
  match !result with
  | Some (r, elapsed) -> (r, elapsed)
  | None -> Alcotest.fail "resolution never completed"

let test_resolution_succeeds () =
  let engine, internet, dns = make_system () in
  let r, elapsed =
    resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net."
  in
  (match r with
  | Some a ->
      let as_d = internet.Topology.Builder.domains.(1) in
      Alcotest.(check string) "resolved to h0 of AS_D"
        (Nettypes.Ipv4.addr_to_string (Topology.Domain.host_eid as_d 0))
        (Nettypes.Ipv4.addr_to_string a)
  | None -> Alcotest.fail "no answer");
  Alcotest.(check bool) "cold resolution takes multiple RTTs" true
    (elapsed > 0.05 && elapsed < 1.0)

let test_resolution_nxdomain () =
  let engine, internet, dns = make_system () in
  let r, _ = resolve_once engine internet dns ~from_domain:0 ~target:"h99.as1.net." in
  Alcotest.(check bool) "nxdomain" true (r = None);
  let r2, _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as9.net." in
  Alcotest.(check bool) "unknown domain" true (r2 = None)

let test_resolution_cache_hit_faster () =
  let engine, internet, dns = make_system () in
  let _, cold = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  let r, warm = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  Alcotest.(check bool) "warm answer present" true (r <> None);
  Alcotest.(check bool) "cache hit much faster" true (warm < cold /. 4.0);
  let c = System.counters dns in
  Alcotest.(check int) "one cache hit" 1 c.System.cache_hits

let test_resolution_referral_cache () =
  let engine, internet, dns = make_system () in
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  let before = (System.counters dns).System.iterative_queries in
  (* Different host in the same remote zone: referrals for net. and
     as1.net. are cached, so only the authoritative query remains. *)
  let r, _ = resolve_once engine internet dns ~from_domain:0 ~target:"h1.as1.net." in
  Alcotest.(check bool) "answer" true (r <> None);
  let after = (System.counters dns).System.iterative_queries in
  Alcotest.(check int) "single iterative query" 1 (after - before)

let test_resolution_ttl_expiry () =
  let engine, internet, dns = make_system ~record_ttl:10.0 () in
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  (* Advance time beyond the TTL with a dummy event. *)
  ignore (Netsim.Engine.schedule engine ~delay:30.0 ignore);
  Netsim.Engine.run engine;
  let misses_before = (System.counters dns).System.cache_misses in
  let r, _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  Alcotest.(check bool) "answer after expiry" true (r <> None);
  Alcotest.(check int) "expired entry causes a miss"
    (misses_before + 1)
    (System.counters dns).System.cache_misses

let test_flush_caches () =
  let engine, internet, dns = make_system () in
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  System.flush_caches dns;
  let hits_before = (System.counters dns).System.cache_hits in
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  Alcotest.(check int) "no hit after flush" hits_before
    (System.counters dns).System.cache_hits

let test_query_observer () =
  let engine, internet, dns = make_system () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let seen = ref [] in
  System.set_query_observer dns ~resolver:as_s.Topology.Domain.dns
    (Some
       (fun ~client_eid ~qname ->
         seen := (Nettypes.Ipv4.addr_to_string client_eid, Name.to_string qname) :: !seen));
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  (match !seen with
  | [ (eid, qname) ] ->
      Alcotest.(check string) "observer saw client EID"
        (Nettypes.Ipv4.addr_to_string (Topology.Domain.host_eid as_s 0))
        eid;
      Alcotest.(check string) "observer saw qname" "h0.as1.net." qname
  | l -> Alcotest.failf "observer fired %d times" (List.length l));
  (* Removing the observer silences it. *)
  System.set_query_observer dns ~resolver:as_s.Topology.Domain.dns None;
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h1.as1.net." in
  Alcotest.(check int) "still one observation" 1 (List.length !seen)

let test_response_tap_intercepts () =
  let engine, internet, dns = make_system () in
  let as_d = internet.Topology.Builder.domains.(1) in
  let tapped = ref 0 in
  System.set_response_tap dns ~server:as_d.Topology.Domain.dns
    (Some
       (fun ctx ->
         incr tapped;
         Alcotest.(check string) "tap sees qname" "h0.as1.net."
           (Name.to_string ctx.System.tap_qname);
         Alcotest.(check bool) "wire latency positive" true
           (ctx.System.tap_wire_latency > 0.0);
         (* Mimic normal delivery: wait the wire latency, then complete. *)
         ignore
           (Netsim.Engine.schedule engine ~delay:ctx.System.tap_wire_latency
              ctx.System.tap_complete)))
    ;
  let r, _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  Alcotest.(check bool) "answer delivered through tap" true (r <> None);
  Alcotest.(check int) "tap fired once" 1 !tapped;
  (* Cache hits at the resolver never reach the tap. *)
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  Alcotest.(check int) "tap not fired on cache hit" 1 !tapped

let test_tap_added_delay_visible () =
  let engine, internet, dns = make_system () in
  let as_d = internet.Topology.Builder.domains.(1) in
  let _, baseline = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  ignore baseline;
  System.flush_caches dns;
  let extra = 0.5 in
  System.set_response_tap dns ~server:as_d.Topology.Domain.dns
    (Some
       (fun ctx ->
         ignore
           (Netsim.Engine.schedule engine
              ~delay:(ctx.System.tap_wire_latency +. extra)
              ctx.System.tap_complete)));
  let _, slowed = resolve_once engine internet dns ~from_domain:0 ~target:"h1.as1.net." in
  Alcotest.(check bool) "tap delay reflected in resolution time" true
    (slowed > extra)

let test_trace_records_steps () =
  let trace = Netsim.Trace.create () in
  let engine, internet, dns = make_system ~trace () in
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  Alcotest.(check bool) "step 1 recorded" true
    (Netsim.Trace.find trace ~f:(fun e ->
         String.length e.Netsim.Trace.event >= 9
         && String.sub e.Netsim.Trace.event 0 9 = "DNS query")
    <> None);
  Alcotest.(check bool) "step 8 recorded" true
    (Netsim.Trace.find trace ~f:(fun e ->
         String.length e.Netsim.Trace.event >= 10
         && String.sub e.Netsim.Trace.event 0 10 = "DNS answer")
    <> None)

let test_concurrent_resolutions () =
  let engine, internet, dns = make_system () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let done_count = ref 0 in
  for i = 0 to 1 do
    let client = as_s.Topology.Domain.hosts.(i) in
    let client_eid = Topology.Domain.host_eid as_s i in
    System.resolve dns ~resolver:as_s.Topology.Domain.dns ~client ~client_eid
      (name (Printf.sprintf "h%d.as1.net." i))
      ~callback:(fun r -> if r <> None then incr done_count)
  done;
  Netsim.Engine.run engine;
  Alcotest.(check int) "both resolved" 2 !done_count

let test_wire_bytes_counted () =
  let engine, internet, dns = make_system () in
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  let c = System.counters dns in
  Alcotest.(check bool) "bytes counted" true (c.System.wire_bytes > 0);
  Alcotest.(check int) "one client query" 1 c.System.client_queries;
  Alcotest.(check int) "three iterative queries (root, tld, auth)" 3
    c.System.iterative_queries

let test_name_wire_size () =
  Alcotest.(check int) "root is one byte" 1 (Name.wire_size Name.root);
  (* h0.as3.net. : labels (2+1)+(3+1)+(3+1) + terminator = 12 *)
  Alcotest.(check int) "fqdn" 12 (Name.wire_size (name "h0.as3.net."))

let test_name_hash_equal () =
  Alcotest.(check bool) "equal names, equal hash" true
    (Name.hash (name "a.b.") = Name.hash (name "a.b."));
  Alcotest.(check int) "compare equal" 0 (Name.compare (name "a.b.") (name "a.b."))

let test_zone_record_count () =
  let z = Zone.create ~apex:(name "as3.net.") ~server:7 ~ttl:60.0 in
  Alcotest.(check int) "empty" 0 (Zone.record_count z);
  Zone.add_a z (name "h0.as3.net.") (Nettypes.Ipv4.addr_of_string "1.1.1.1");
  Zone.add_a z (name "h1.as3.net.") (Nettypes.Ipv4.addr_of_string "1.1.1.2");
  Zone.add_a z (name "h0.as3.net.") (Nettypes.Ipv4.addr_of_string "1.1.1.3");
  Alcotest.(check int) "re-add replaces" 2 (Zone.record_count z);
  Alcotest.(check (float 1e-9)) "ttl accessor" 60.0 (Zone.ttl z);
  Alcotest.(check int) "server accessor" 7 (Zone.server z)

let test_local_name_resolution () =
  (* Resolving a name in the client's own domain still works (the local
     server is both resolver and authoritative). *)
  let engine, internet, dns = make_system () in
  let r, elapsed = resolve_once engine internet dns ~from_domain:0 ~target:"h1.as0.net." in
  (match r with
  | Some a ->
      let as_s = internet.Topology.Builder.domains.(0) in
      Alcotest.(check string) "local answer"
        (Nettypes.Ipv4.addr_to_string (Topology.Domain.host_eid as_s 1))
        (Nettypes.Ipv4.addr_to_string a)
  | None -> Alcotest.fail "no answer");
  Alcotest.(check bool) "bounded" true (elapsed > 0.0 && elapsed < 1.0)

let test_resolution_timing_decomposition () =
  (* Cold resolution = client wire + 3 iterative (query+processing+
     response) legs + answer wire; warm resolution = client wire pair
     only.  Check the warm case analytically. *)
  let engine, internet, dns = make_system () in
  let _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  let _, warm = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  let as_s = internet.Topology.Builder.domains.(0) in
  let client_wire =
    Topology.Builder.latency internet as_s.Topology.Domain.hosts.(0)
      as_s.Topology.Domain.dns
  in
  Alcotest.(check (float 1e-9)) "warm = two client wires"
    (2.0 *. client_wire) warm

(* ------------------------------------------------------------------ *)
(* Poisoning: forged answers vs origin authentication                  *)
(* ------------------------------------------------------------------ *)

let forged = Nettypes.Ipv4.addr_of_string "66.6.6.6"

let test_poisoned_answer_accepted () =
  let engine, internet, dns = make_system () in
  System.set_poisoner dns (Some (fun ~qname:_ -> Some forged));
  let r, _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  (match r with
  | Some a ->
      Alcotest.(check string) "client got the forged address" "66.6.6.6"
        (Nettypes.Ipv4.addr_to_string a)
  | None -> Alcotest.fail "no answer");
  let c = System.counters dns in
  Alcotest.(check int) "accepted counted" 1 c.System.poisoned_accepted;
  Alcotest.(check int) "nothing rejected" 0 c.System.poisoned_rejected;
  (* The forgery is cached: a second client query serves the poison
     from the resolver cache without a fresh forgery. *)
  System.set_poisoner dns None;
  let r2, _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  (match r2 with
  | Some a ->
      Alcotest.(check string) "poison served from cache" "66.6.6.6"
        (Nettypes.Ipv4.addr_to_string a)
  | None -> Alcotest.fail "no cached answer");
  Alcotest.(check int) "no second forgery" 1
    (System.counters dns).System.poisoned_accepted

let test_poisoned_answer_rejected_when_authenticated () =
  let engine, internet, dns = make_system () in
  System.set_poisoner dns (Some (fun ~qname:_ -> Some forged));
  System.set_authenticated dns true;
  let r, _ = resolve_once engine internet dns ~from_domain:0 ~target:"h0.as1.net." in
  (match r with
  | Some a ->
      let as_d = internet.Topology.Builder.domains.(1) in
      Alcotest.(check string) "genuine record proceeds"
        (Nettypes.Ipv4.addr_to_string (Topology.Domain.host_eid as_d 0))
        (Nettypes.Ipv4.addr_to_string a)
  | None -> Alcotest.fail "no answer");
  let c = System.counters dns in
  Alcotest.(check int) "rejected counted" 1 c.System.poisoned_rejected;
  Alcotest.(check int) "nothing accepted" 0 c.System.poisoned_accepted

(* Name errors are never forged: the poisoner is not even a way to
   conjure records for names that do not exist. *)
let test_poisoner_never_forges_nxdomain () =
  let engine, internet, dns = make_system () in
  System.set_poisoner dns (Some (fun ~qname:_ -> Some forged));
  let r, _ = resolve_once engine internet dns ~from_domain:0 ~target:"h99.as1.net." in
  Alcotest.(check bool) "still nxdomain" true (r = None);
  Alcotest.(check int) "no forgery verdict" 0
    (System.counters dns).System.poisoned_accepted

let () =
  Alcotest.run "dnssim"
    [
      ( "name",
        [
          Alcotest.test_case "roundtrip" `Quick test_name_roundtrip;
          Alcotest.test_case "malformed" `Quick test_name_malformed;
          Alcotest.test_case "parent" `Quick test_name_parent;
          Alcotest.test_case "in zone" `Quick test_name_in_zone;
          Alcotest.test_case "suffix" `Quick test_name_suffix;
          Alcotest.test_case "wire size" `Quick test_name_wire_size;
          Alcotest.test_case "hash and compare" `Quick test_name_hash_equal;
        ] );
      ( "zone",
        [
          Alcotest.test_case "answers" `Quick test_zone_answers;
          Alcotest.test_case "deepest delegation" `Quick test_zone_deepest_delegation;
          Alcotest.test_case "validation" `Quick test_zone_validation;
          Alcotest.test_case "record count" `Quick test_zone_record_count;
        ] );
      ( "system",
        [
          Alcotest.test_case "resolution succeeds" `Quick test_resolution_succeeds;
          Alcotest.test_case "nxdomain" `Quick test_resolution_nxdomain;
          Alcotest.test_case "cache hit faster" `Quick test_resolution_cache_hit_faster;
          Alcotest.test_case "referral cache" `Quick test_resolution_referral_cache;
          Alcotest.test_case "ttl expiry" `Quick test_resolution_ttl_expiry;
          Alcotest.test_case "flush caches" `Quick test_flush_caches;
          Alcotest.test_case "query observer" `Quick test_query_observer;
          Alcotest.test_case "response tap" `Quick test_response_tap_intercepts;
          Alcotest.test_case "tap delay" `Quick test_tap_added_delay_visible;
          Alcotest.test_case "trace" `Quick test_trace_records_steps;
          Alcotest.test_case "concurrent" `Quick test_concurrent_resolutions;
          Alcotest.test_case "wire bytes" `Quick test_wire_bytes_counted;
          Alcotest.test_case "local name" `Quick test_local_name_resolution;
          Alcotest.test_case "warm timing" `Quick test_resolution_timing_decomposition;
        ] );
      ( "poisoning",
        [
          Alcotest.test_case "accepted without auth" `Quick
            test_poisoned_answer_accepted;
          Alcotest.test_case "rejected when authenticated" `Quick
            test_poisoned_answer_rejected_when_authenticated;
          Alcotest.test_case "nxdomain never forged" `Quick
            test_poisoner_never_forges_nxdomain;
        ] );
    ]
