(* Tests for the self-profiler: phase accounting under an injected
   clock (nesting, recursion, pause/resume), interval recording and its
   drop cap, the BENCH.json v3 round-trip, real-clock sanity, the
   allocation-free disabled path, and a qcheck property that enabling
   the profiler never changes simulation output. *)

let eps = 1e-9

let approx msg expected got =
  let ok =
    Float.abs (expected -. got)
    <= eps *. Float.max 1.0 (Float.max (Float.abs expected) (Float.abs got))
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.12g, got %.12g)" msg expected got)
    true ok

(* Run [f] under a fake clock driven by a ref, restoring the real clock
   and switching the profiler off however [f] exits. *)
let with_fake_clock f =
  let t = ref 0.0 in
  Obs.Prof.set_clock_for_testing (Some (fun () -> !t));
  Fun.protect
    ~finally:(fun () ->
      Obs.Prof.stop ();
      Obs.Prof.set_record_intervals false;
      Obs.Prof.set_clock_for_testing None)
    (fun () -> f t)

let find_phase r name =
  match
    List.find_opt (fun p -> p.Obs.Prof.ps_name = name) r.Obs.Prof.r_phases
  with
  | Some p -> p
  | None -> Alcotest.fail (Printf.sprintf "phase %s missing from report" name)

let test_nesting_accounting () =
  with_fake_clock @@ fun t ->
  Obs.Prof.start ();
  let a = Obs.Prof.phase "alpha" and b = Obs.Prof.phase "beta" in
  Obs.Prof.enter a;
  t := 1.0;
  Obs.Prof.enter b;
  t := 3.0;
  Obs.Prof.leave b;
  t := 3.5;
  Obs.Prof.leave a;
  let c = Obs.Prof.counter "widgets" in
  Obs.Prof.add c 7;
  t := 4.0;
  Obs.Prof.stop ();
  let r = Obs.Prof.report () in
  approx "wall" 4.0 r.Obs.Prof.r_wall_s;
  let pa = find_phase r "alpha" and pb = find_phase r "beta" in
  (* alpha holds the clock 0..1 and 3..3.5; beta holds 1..3. *)
  approx "alpha self" 1.5 pa.Obs.Prof.ps_self_s;
  approx "alpha total (inclusive)" 3.5 pa.Obs.Prof.ps_total_s;
  Alcotest.(check int) "alpha calls" 1 pa.Obs.Prof.ps_calls;
  approx "beta self" 2.0 pb.Obs.Prof.ps_self_s;
  approx "beta total" 2.0 pb.Obs.Prof.ps_total_s;
  (* self times partition the wall: 3.5 attributed, 0.5 outside any
     phase. *)
  approx "unattributed" 0.5 r.Obs.Prof.r_unattributed_s;
  approx "coverage" 0.875 (Obs.Prof.coverage r);
  Alcotest.(check (list (pair string int)))
    "counters" [ ("widgets", 7) ] r.Obs.Prof.r_counters

let test_recursion_counted_once () =
  with_fake_clock @@ fun t ->
  Obs.Prof.start ();
  let a = Obs.Prof.phase "alpha" in
  Obs.Prof.enter a;
  t := 1.0;
  Obs.Prof.enter a;
  t := 2.0;
  Obs.Prof.leave a;
  t := 3.0;
  Obs.Prof.leave a;
  Obs.Prof.stop ();
  let r = Obs.Prof.report () in
  let pa = find_phase r "alpha" in
  Alcotest.(check int) "two calls" 2 pa.Obs.Prof.ps_calls;
  approx "self covers the whole span" 3.0 pa.Obs.Prof.ps_self_s;
  (* The nested activation must not double-count the overlap. *)
  approx "total counted once" 3.0 pa.Obs.Prof.ps_total_s

let test_pause_resume () =
  with_fake_clock @@ fun t ->
  Obs.Prof.start ();
  let a = Obs.Prof.phase "alpha" in
  Obs.Prof.enter a;
  t := 1.0;
  Obs.Prof.pause ();
  t := 5.0;
  (* 4 s elapse while paused: invisible to every accumulator. *)
  Obs.Prof.resume ();
  t := 6.0;
  Obs.Prof.leave a;
  Obs.Prof.stop ();
  let r = Obs.Prof.report () in
  let pa = find_phase r "alpha" in
  approx "wall excludes the pause" 2.0 r.Obs.Prof.r_wall_s;
  approx "self excludes the pause" 2.0 pa.Obs.Prof.ps_self_s;
  approx "total excludes the pause" 2.0 pa.Obs.Prof.ps_total_s;
  approx "nothing unattributed" 0.0 r.Obs.Prof.r_unattributed_s

let test_exception_unwound () =
  with_fake_clock @@ fun t ->
  Obs.Prof.start ();
  let a = Obs.Prof.phase "alpha" in
  (try
     Obs.Prof.with_phase a (fun () ->
         t := 2.0;
         failwith "boom")
   with Failure _ -> ());
  t := 3.0;
  Obs.Prof.stop ();
  let r = Obs.Prof.report () in
  let pa = find_phase r "alpha" in
  (* with_phase closed the frame on the way out. *)
  approx "self charged up to the raise" 2.0 pa.Obs.Prof.ps_self_s;
  approx "wall" 3.0 r.Obs.Prof.r_wall_s

let test_intervals_and_cap () =
  with_fake_clock @@ fun t ->
  Obs.Prof.set_record_intervals ~cap:2 true;
  Obs.Prof.start ();
  let a = Obs.Prof.phase "alpha" in
  for _ = 1 to 3 do
    Obs.Prof.enter a;
    t := !t +. 1.0;
    Obs.Prof.leave a
  done;
  Obs.Prof.stop ();
  let ivs = Obs.Prof.intervals () in
  Alcotest.(check int) "capacity respected" 2 (List.length ivs);
  Alcotest.(check int) "overflow counted" 1 (Obs.Prof.intervals_dropped ());
  (match ivs with
  | { Obs.Prof.iv_name; iv_start_s; iv_dur_s; iv_depth } :: _ ->
      Alcotest.(check string) "interval phase" "alpha" iv_name;
      approx "interval start (relative to origin)" 0.0 iv_start_s;
      approx "interval duration" 1.0 iv_dur_s;
      Alcotest.(check int) "interval depth" 0 iv_depth
  | [] -> Alcotest.fail "no intervals recorded");
  Alcotest.(check int) "report carries the drop count" 1
    (Obs.Prof.report ()).Obs.Prof.r_intervals_dropped

let test_json_round_trip () =
  with_fake_clock @@ fun t ->
  Obs.Prof.start ();
  let a = Obs.Prof.phase "alpha" and b = Obs.Prof.phase "beta" in
  Obs.Prof.enter a;
  t := 0.125;
  Obs.Prof.enter b;
  t := 0.375;
  Obs.Prof.leave b;
  Obs.Prof.leave a;
  let c = Obs.Prof.counter "widgets" in
  Obs.Prof.add c 42;
  t := 0.5;
  Obs.Prof.stop ();
  let r = Obs.Prof.report () in
  let gc = [ ("minor_words", 12345.0); ("heap_words", 99.0) ] in
  let json = Obs.Prof.json_of_report ~gc r in
  let text = Obs.Json.to_string json in
  match Obs.Json.of_string text with
  | Error e -> Alcotest.fail ("re-parse failed: " ^ e)
  | Ok parsed -> (
      match Obs.Prof.report_of_json parsed with
      | Error e -> Alcotest.fail ("report_of_json failed: " ^ e)
      | Ok (r2, gc2) ->
          approx "wall round-trips" r.Obs.Prof.r_wall_s r2.Obs.Prof.r_wall_s;
          approx "unattributed round-trips" r.Obs.Prof.r_unattributed_s
            r2.Obs.Prof.r_unattributed_s;
          Alcotest.(check int) "same phase count"
            (List.length r.Obs.Prof.r_phases)
            (List.length r2.Obs.Prof.r_phases);
          List.iter2
            (fun p p2 ->
              Alcotest.(check string) "phase name" p.Obs.Prof.ps_name
                p2.Obs.Prof.ps_name;
              approx "phase self" p.Obs.Prof.ps_self_s p2.Obs.Prof.ps_self_s;
              approx "phase total" p.Obs.Prof.ps_total_s
                p2.Obs.Prof.ps_total_s;
              Alcotest.(check int) "phase calls" p.Obs.Prof.ps_calls
                p2.Obs.Prof.ps_calls)
            r.Obs.Prof.r_phases r2.Obs.Prof.r_phases;
          Alcotest.(check (list (pair string int)))
            "counters round-trip" r.Obs.Prof.r_counters
            r2.Obs.Prof.r_counters;
          List.iter2
            (fun (k, v) (k2, v2) ->
              Alcotest.(check string) "gc key" k k2;
              approx "gc value" v v2)
            gc gc2)

let test_monotonic_clock_sanity () =
  (* Real clock: time advances, and a profiled busy loop produces an
     internally consistent report. *)
  Obs.Prof.start ();
  Fun.protect ~finally:Obs.Prof.stop @@ fun () ->
  let t0 = Obs.Prof.now_s () in
  let a = Obs.Prof.phase "busy" in
  let acc = ref 0 in
  Obs.Prof.with_phase a (fun () ->
      for i = 1 to 100_000 do
        acc := !acc + i
      done);
  let t1 = Obs.Prof.now_s () in
  Alcotest.(check bool) "clock is monotonic" true (t1 >= t0);
  Obs.Prof.stop ();
  let r = Obs.Prof.report () in
  let pa = find_phase r "busy" in
  Alcotest.(check bool) "self is positive" true (pa.Obs.Prof.ps_self_s > 0.0);
  Alcotest.(check bool) "self bounded by wall" true
    (pa.Obs.Prof.ps_self_s <= r.Obs.Prof.r_wall_s +. eps);
  let cov = Obs.Prof.coverage r in
  Alcotest.(check bool) "coverage in [0,1]" true (cov >= 0.0 && cov <= 1.0)

let test_disabled_path_allocation_free () =
  Obs.Prof.set_enabled false;
  let a = Obs.Prof.phase "noop" and c = Obs.Prof.counter "noop" in
  (* Warm up so any lazy setup is behind us. *)
  for _ = 1 to 1_000 do
    Obs.Prof.enter a;
    Obs.Prof.incr c;
    Obs.Prof.leave a
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Obs.Prof.enter a;
    Obs.Prof.incr c;
    Obs.Prof.leave a
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "no allocation on the disabled path (%.0f words)" dw)
    true (dw = 0.0)

let test_wrap_disabled_is_identity () =
  Obs.Prof.set_enabled false;
  let a = Obs.Prof.phase "noop" in
  let k () = () in
  Alcotest.(check bool) "wrap returns the thunk unchanged when off" true
    (Obs.Prof.wrap a k == k)

(* Enabling the profiler must never change what the simulator does:
   it reads the wall clock but draws no randomness and schedules no
   events.  Fingerprint a full scenario run (trace, timings, dataplane
   counters) with the profiler off and on, and require equality. *)
let fingerprint ~seed ~profile =
  if profile then Obs.Prof.start () else Obs.Prof.set_enabled false;
  Fun.protect ~finally:(fun () -> if profile then Obs.Prof.stop ())
  @@ fun () ->
  let s =
    Core.Scenario.build
      { Core.Scenario.default_config with
        Core.Scenario.seed;
        Core.Scenario.cp = Core.Scenario.Cp_pce Core.Pce_control.default_options
      }
  in
  let internet = Core.Scenario.internet s in
  let flow =
    Nettypes.Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~src_port:1 ()
  in
  let c = Core.Scenario.open_connection s ~flow ~data_packets:2 () in
  Core.Scenario.run s;
  let counters = Lispdp.Dataplane.counters (Core.Scenario.dataplane s) in
  Printf.sprintf "%.12g %.12g %d %s"
    (Option.value ~default:(-1.0) c.Core.Scenario.dns_time)
    (Option.value ~default:(-1.0) (Core.Scenario.total_setup_time c))
    counters.Lispdp.Dataplane.dropped
    (Format.asprintf "%a" Netsim.Trace.pp (Core.Scenario.trace s))

let prop_profiling_preserves_output =
  QCheck.Test.make ~name:"profiler on/off: identical simulation output"
    ~count:8
    QCheck.(int_range 1 1_000)
    (fun seed ->
      String.equal
        (fingerprint ~seed ~profile:false)
        (fingerprint ~seed ~profile:true))

let () =
  Alcotest.run "prof"
    [
      ( "accounting",
        [
          Alcotest.test_case "nesting" `Quick test_nesting_accounting;
          Alcotest.test_case "recursion" `Quick test_recursion_counted_once;
          Alcotest.test_case "pause/resume" `Quick test_pause_resume;
          Alcotest.test_case "exception" `Quick test_exception_unwound;
          Alcotest.test_case "intervals + cap" `Quick test_intervals_and_cap;
        ] );
      ( "serialisation",
        [ Alcotest.test_case "BENCH.json v3 round-trip" `Quick
            test_json_round_trip ] );
      ( "runtime",
        [
          Alcotest.test_case "monotonic clock" `Quick
            test_monotonic_clock_sanity;
          Alcotest.test_case "disabled path allocation-free" `Quick
            test_disabled_path_allocation_free;
          Alcotest.test_case "wrap disabled = identity" `Quick
            test_wrap_disabled_is_identity;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_profiling_preserves_output ] );
    ]
