(* The observability layer: typed events and their ordering, flow-id
   correlation across DNS / map resolution / the data plane, the
   disabled-path no-op guarantee, the metrics registry, the sampler and
   the JSONL round-trip. *)

open Core
open Nettypes

let addr = Ipv4.addr_of_string

(* ------------------------------------------------------------------ *)
(* Hub basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_hub_disabled_is_noop () =
  let hub = Obs.Hub.create () in
  let sink, events = Obs.Hub.memory_sink () in
  Obs.Hub.add_sink hub sink;
  Obs.Hub.emit hub ~time:1.0 ~actor:"a" (Obs.Event.Note "dropped");
  Alcotest.(check int) "disabled hub records nothing" 0
    (List.length (events ()));
  Obs.Hub.set_enabled hub true;
  Obs.Hub.emit hub ~time:2.0 ~actor:"a" (Obs.Event.Note "kept");
  Obs.Hub.set_enabled hub false;
  Obs.Hub.emit hub ~time:3.0 ~actor:"a" (Obs.Event.Note "dropped again");
  Alcotest.(check int) "only the enabled emit lands" 1
    (List.length (events ()))

let test_hub_sink_order_and_event_order () =
  let hub = Obs.Hub.create ~enabled:true () in
  let seen = ref [] in
  Obs.Hub.add_sink hub (fun e -> seen := ("first", e.Obs.Event.time) :: !seen);
  Obs.Hub.add_sink hub (fun e -> seen := ("second", e.Obs.Event.time) :: !seen);
  Obs.Hub.emit hub ~time:1.0 ~actor:"a" (Obs.Event.Note "x");
  Obs.Hub.emit hub ~time:2.0 ~actor:"a" (Obs.Event.Note "y");
  Alcotest.(check (list (pair string (float 0.0))))
    "sinks run in registration order, events in emission order"
    [ ("first", 1.0); ("second", 1.0); ("first", 2.0); ("second", 2.0) ]
    (List.rev !seen)

let test_trace_sink_renders_strings () =
  let hub = Obs.Hub.create ~enabled:true () in
  let trace = Netsim.Trace.create () in
  Obs.Hub.add_sink hub (Obs.Hub.trace_sink trace);
  Obs.Hub.emit hub ~time:0.5 ~actor:"as0-itr"
    (Obs.Event.Cache_miss { eid = addr "100.0.1.1" });
  match Netsim.Trace.entries trace with
  | [ entry ] ->
      Alcotest.(check string) "actor" "as0-itr" entry.Netsim.Trace.actor;
      Alcotest.(check string) "rendered text" "map-cache miss 100.0.1.1"
        entry.Netsim.Trace.event
  | entries ->
      Alcotest.failf "expected 1 trace entry, got %d" (List.length entries)

(* ------------------------------------------------------------------ *)
(* Flow ids                                                            *)
(* ------------------------------------------------------------------ *)

let test_flow_id_direction_insensitive () =
  let flow =
    Flow.create ~src:(addr "100.0.0.1") ~dst:(addr "100.0.1.1")
      ~src_port:5000 ()
  in
  Alcotest.(check int) "forward and reverse share one id"
    (Obs.Event.flow_id flow)
    (Obs.Event.flow_id (Flow.reverse flow));
  let other =
    Flow.create ~src:(addr "100.0.0.1") ~dst:(addr "100.0.1.1")
      ~src_port:5001 ()
  in
  Alcotest.(check bool) "different connections get different ids" true
    (Obs.Event.flow_id flow <> Obs.Event.flow_id other)

(* The tentpole correlation property: one connection's DNS resolution,
   map-request/map-reply exchange and first tunneled packet all carry
   the same flow id. *)
let test_flow_correlation_across_layers () =
  let s =
    Scenario.build
      { Scenario.default_config with Scenario.cp = Scenario.Cp_pull_drop }
  in
  let hub = Scenario.obs s in
  Obs.Hub.set_enabled hub true;
  let sink, events = Obs.Hub.memory_sink () in
  Obs.Hub.add_sink hub sink;
  let internet = Scenario.internet s in
  let flow =
    Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~src_port:7100 ()
  in
  ignore (Scenario.open_connection s ~flow ~data_packets:2 ());
  Scenario.run s;
  let id = Obs.Event.flow_id flow in
  let with_kind p =
    List.filter
      (fun e -> p e.Obs.Event.kind && e.Obs.Event.flow = Some id)
      (events ())
  in
  let count name p =
    Alcotest.(check bool)
      (name ^ " events carry the connection's flow id")
      true
      (with_kind p <> [])
  in
  count "dns_query" (function Obs.Event.Dns_query _ -> true | _ -> false);
  count "dns_reply" (function Obs.Event.Dns_reply _ -> true | _ -> false);
  count "map_request" (function Obs.Event.Map_request _ -> true | _ -> false);
  count "map_reply" (function Obs.Event.Map_reply _ -> true | _ -> false);
  count "cache_miss" (function Obs.Event.Cache_miss _ -> true | _ -> false);
  count "encap" (function Obs.Event.Encap _ -> true | _ -> false);
  count "decap" (function Obs.Event.Decap _ -> true | _ -> false);
  (* And they appear in causal order: query before request before the
     first encap. *)
  let first p =
    match with_kind p with
    | e :: _ -> e.Obs.Event.time
    | [] -> Alcotest.fail "missing event"
  in
  let t_query =
    first (function Obs.Event.Dns_query _ -> true | _ -> false)
  in
  let t_request =
    first (function Obs.Event.Map_request _ -> true | _ -> false)
  in
  let t_encap = first (function Obs.Event.Encap _ -> true | _ -> false) in
  Alcotest.(check bool) "DNS query precedes map-request" true
    (t_query <= t_request);
  Alcotest.(check bool) "map-request precedes first encap" true
    (t_request <= t_encap)

let test_disabled_hub_emits_nothing_in_scenario () =
  let s = Scenario.build Scenario.default_config in
  let sink, events = Obs.Hub.memory_sink () in
  Obs.Hub.add_sink (Scenario.obs s) sink;
  let internet = Scenario.internet s in
  let flow =
    Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~src_port:7101 ()
  in
  ignore (Scenario.open_connection s ~flow ~data_packets:2 ());
  Scenario.run s;
  Alcotest.(check int) "hub disabled by default: no events" 0
    (List.length (events ()))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_snapshot () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "packets" in
  Obs.Registry.incr c;
  Obs.Registry.add c 4;
  Obs.Registry.register_gauge r "depth" (fun () -> 2.5);
  Obs.Registry.register_many r "drop" (fun () ->
      [ ("no-route", 3.0); ("ttl", 1.0) ]);
  let h = Obs.Registry.histogram r "latency" in
  Obs.Registry.observe h 0.1;
  Obs.Registry.observe h 0.3;
  let snapshot = Obs.Registry.snapshot r in
  Alcotest.(check (list string)) "sorted names"
    [ "depth"; "drop.no-route"; "drop.ttl"; "latency"; "packets" ]
    (List.map fst snapshot);
  (match List.assoc "packets" snapshot with
  | Obs.Registry.Counter n -> Alcotest.(check int) "counter value" 5 n
  | _ -> Alcotest.fail "packets should be a counter");
  (match List.assoc "latency" snapshot with
  | Obs.Registry.Histogram summary ->
      Alcotest.(check int) "histogram count" 2 summary.Obs.Registry.hist_count;
      Alcotest.(check (float 1e-9)) "histogram mean" 0.2
        summary.Obs.Registry.hist_mean
  | _ -> Alcotest.fail "latency should be a histogram");
  Alcotest.(check (float 1e-9)) "gauge sampled lazily" 2.5
    (List.assoc "depth" (Obs.Registry.sample r));
  Alcotest.(check bool) "same counter handle on re-request" true
    (Obs.Registry.count (Obs.Registry.counter r "packets") = 5);
  Alcotest.check_raises "duplicate gauge name rejected"
    (Invalid_argument "Obs.Registry: duplicate metric \"depth\"")
    (fun () -> Obs.Registry.register_gauge r "depth" (fun () -> 0.0))

let test_scenario_registry_tracks_run () =
  let s, _ =
    let s = Scenario.build Scenario.default_config in
    let internet = Scenario.internet s in
    let flow =
      Flow.create
        ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
        ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
        ~src_port:7102 ()
    in
    let c = Scenario.open_connection s ~flow ~data_packets:3 () in
    Scenario.run s;
    (s, c)
  in
  let sample = Obs.Registry.sample (Scenario.obs_registry s) in
  let value name =
    match List.assoc_opt name sample with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing from scenario registry" name
  in
  let counters = Lispdp.Dataplane.counters (Scenario.dataplane s) in
  Alcotest.(check (float 0.0)) "dp.delivered mirrors the live counter"
    (float_of_int counters.Lispdp.Dataplane.delivered)
    (value "dp.delivered");
  Alcotest.(check bool) "engine processed events" true
    (value "engine.events_processed" > 0.0);
  Alcotest.(check (float 0.0)) "engine drained" 0.0 (value "engine.pending");
  Alcotest.(check (float 0.0)) "one DNS resolution measured" 1.0
    (value "conn.dns_time");
  Alcotest.(check (float 0.0)) "one setup time measured" 1.0
    (value "conn.setup_time");
  Alcotest.(check (float 0.0)) "dns.client_queries" 1.0
    (value "dns.client_queries")

(* ------------------------------------------------------------------ *)
(* Sampler                                                             *)
(* ------------------------------------------------------------------ *)

let test_sampler_buckets_and_finalise () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "n" in
  let sampler = Obs.Sampler.create ~interval:1.0 ~registry:r () in
  Obs.Registry.add c 1;
  Obs.Sampler.tick sampler ~now:0.0;
  Obs.Registry.add c 10;
  Obs.Sampler.tick sampler ~now:2.5;
  Obs.Sampler.finalise sampler ~now:2.7;
  let series = Obs.Sampler.series sampler "n" in
  Alcotest.(check int) "rows at 0, 1, 2 and the closing sample" 4
    (List.length series);
  Alcotest.(check (list (float 0.0))) "sample times"
    [ 0.0; 1.0; 2.0; 2.7 ]
    (List.map fst series);
  (* Ticks at 1.0 and 2.0 both observe the state at tick time (the
     sampler fires catching-up buckets at once). *)
  Alcotest.(check (list (float 0.0))) "sampled values"
    [ 1.0; 11.0; 11.0; 11.0 ]
    (List.map snd series);
  Obs.Sampler.finalise sampler ~now:2.7;
  Alcotest.(check int) "finalise is idempotent at the same instant" 4
    (Obs.Sampler.row_count sampler)

(* Regression: boundaries are n * interval, not repeated addition.
   0.1 added 1000 times is 99.9999999999986, which used to shift every
   late sample one ulp-cluster early and desynchronise workers. *)
let test_sampler_no_interval_drift () =
  let r = Obs.Registry.create () in
  ignore (Obs.Registry.counter r "n");
  let sampler = Obs.Sampler.create ~interval:0.1 ~registry:r () in
  Obs.Sampler.tick sampler ~now:100.0;
  let times = List.map (fun row -> row.Obs.Sampler.at) (Obs.Sampler.rows sampler) in
  Alcotest.(check int) "1001 aligned rows" 1001 (List.length times);
  Alcotest.(check (float 0.0)) "row 1000 sits exactly on t=100" 100.0
    (List.nth times 1000);
  List.iteri
    (fun n at ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "row %d on the grid" n)
        (float_of_int n *. 0.1) at)
    times

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let sample_events =
  [ { Obs.Event.time = 0.1; actor = "as0-h0"; flow = Some 42;
      kind = Obs.Event.Dns_query { qname = "h0.as1.net." } };
    { Obs.Event.time = 0.2; actor = "as0-h0"; flow = Some 42;
      kind = Obs.Event.Dns_reply { qname = "h0.as1.net."; answered = true } };
    { Obs.Event.time = 0.3; actor = "as0-itr"; flow = None;
      kind = Obs.Event.Map_request { eid = addr "100.0.1.0" } };
    { Obs.Event.time = 0.4; actor = "as0-itr"; flow = None;
      kind = Obs.Event.Map_reply { eid = addr "100.0.1.0" } };
    { Obs.Event.time = 0.5; actor = "as0-itr"; flow = Some 42;
      kind = Obs.Event.Cache_hit { eid = addr "100.0.1.1" } };
    { Obs.Event.time = 0.6; actor = "as0-itr"; flow = Some 42;
      kind = Obs.Event.Cache_miss { eid = addr "100.0.1.1" } };
    { Obs.Event.time = 0.7; actor = "as0-itr"; flow = None;
      kind =
        Obs.Event.Cache_evict { prefix = Ipv4.prefix_of_string "100.0.1.0/24" } };
    { Obs.Event.time = 0.8; actor = "as1-pce"; flow = None;
      kind = Obs.Event.Mapping_push { targets = 2 } };
    { Obs.Event.time = 0.9; actor = "as0-itr"; flow = Some 42;
      kind = Obs.Event.Packet_drop { cause = "mapping-resolution-drop" } };
    { Obs.Event.time = 1.0; actor = "as0-itr"; flow = Some 42;
      kind =
        Obs.Event.Encap
          { outer_src = addr "10.0.0.1"; outer_dst = addr "12.0.0.1" } };
    { Obs.Event.time = 1.1; actor = "as1-etr"; flow = Some 42;
      kind = Obs.Event.Decap { outer_src = addr "10.0.0.1" } };
    { Obs.Event.time = 1.2; actor = "as0-pce"; flow = Some 42;
      kind = Obs.Event.Irc_decision { rloc = addr "10.0.0.1" } };
    { Obs.Event.time = 1.3; actor = "as0-border"; flow = None;
      kind = Obs.Event.Link_down { rloc = addr "10.0.0.1" } };
    { Obs.Event.time = 1.4; actor = "as0-border"; flow = None;
      kind = Obs.Event.Link_up { rloc = addr "10.0.0.1" } };
    { Obs.Event.time = 1.5; actor = "as0-itr"; flow = Some 42;
      kind = Obs.Event.Cp_loss { message = "map-request" } };
    { Obs.Event.time = 1.6; actor = "as0-itr"; flow = Some 42;
      kind =
        Obs.Event.Cp_retry
          { eid = addr "100.0.1.0"; attempt = 2; message = "map-request" } };
    { Obs.Event.time = 1.7; actor = "as0-itr"; flow = Some 42;
      kind =
        Obs.Event.Cp_timeout { eid = addr "100.0.1.0"; message = "map-request" } };
    { Obs.Event.time = 1.75; actor = "as1-pce"; flow = None;
      kind =
        Obs.Event.Cp_retry
          { eid = addr "100.0.1.0"; attempt = 1; message = "pce-push" } };
    { Obs.Event.time = 1.8; actor = "as0-h0"; flow = Some 42;
      kind = Obs.Event.Conn_open { dst = addr "100.0.1.1" } };
    { Obs.Event.time = 1.81; actor = "as0-h0"; flow = Some 42;
      kind = Obs.Event.Syn_sent { attempt = 1 } };
    { Obs.Event.time = 1.82; actor = "as1-h0"; flow = Some 42;
      kind = Obs.Event.Syn_received };
    { Obs.Event.time = 1.83; actor = "as0-h0"; flow = Some 42;
      kind = Obs.Event.Conn_established };
    { Obs.Event.time = 1.84; actor = "as0-h0"; flow = Some 43;
      kind = Obs.Event.Conn_failed { reason = "resolution-failed" } };
    { Obs.Event.time = 1.85; actor = "runtime"; flow = None;
      kind = Obs.Event.Run_start { label = "pull-drop" } };
    { Obs.Event.time = 1.9; actor = "narrator"; flow = None;
      kind = Obs.Event.Note "free-form text with \"quotes\" and \\ escapes" };
    { Obs.Event.time = 2.0; actor = "as1-pce"; flow = None;
      kind = Obs.Event.Node_crash { role = "pce(1)" } };
    { Obs.Event.time = 2.1; actor = "as1-pce"; flow = None;
      kind = Obs.Event.Node_restart { role = "pce(1)" } };
    { Obs.Event.time = 2.2; actor = "as1-dns"; flow = None;
      kind = Obs.Event.Pce_bypass { qname = "h0.as1.net." } };
    { Obs.Event.time = 2.3; actor = "as0-itr"; flow = Some 42;
      kind = Obs.Event.Degraded_to_pull { eid = addr "100.0.1.1" } } ]

let test_jsonl_round_trip () =
  List.iter
    (fun e ->
      let line = Obs.Export.event_line e in
      match Obs.Export.parse_event line with
      | Ok e' ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trip %s" (Obs.Event.kind_name e.Obs.Event.kind))
            true (e = e')
      | Error message ->
          Alcotest.failf "failed to parse %s: %s" line message)
    sample_events

(* Pre-span JSONL lines carry no "message" field on cp_retry/cp_timeout;
   they must keep parsing (defaulting to "map-request"). *)
let test_jsonl_old_cp_lines_still_parse () =
  let check_line line expected =
    match Obs.Export.parse_event line with
    | Ok e -> Alcotest.(check bool) ("compat: " ^ line) true (e.Obs.Event.kind = expected)
    | Error m -> Alcotest.failf "old line rejected (%s): %s" m line
  in
  check_line
    "{\"time\":1.0,\"actor\":\"a\",\"kind\":\"cp_retry\",\"eid\":\"100.0.1.0\",\"attempt\":2}"
    (Obs.Event.Cp_retry
       { eid = addr "100.0.1.0"; attempt = 2; message = "map-request" });
  check_line
    "{\"time\":1.0,\"actor\":\"a\",\"kind\":\"cp_timeout\",\"eid\":\"100.0.1.0\"}"
    (Obs.Event.Cp_timeout { eid = addr "100.0.1.0"; message = "map-request" })

let test_jsonl_rejects_garbage () =
  List.iter
    (fun line ->
      match Obs.Export.parse_event line with
      | Ok _ -> Alcotest.failf "accepted garbage: %s" line
      | Error _ -> ())
    [ "not json"; "{\"time\":1.0}"; "{}"; "[1,2,3]";
      "{\"time\":1.0,\"actor\":\"a\",\"kind\":\"no_such_kind\"}";
      "{\"time\":1.0,\"actor\":\"a\",\"kind\":\"encap\"}" ]

let test_jsonl_file_round_trip () =
  let file = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      let hub = Obs.Hub.create ~enabled:true () in
      Obs.Hub.add_sink hub (Obs.Export.jsonl_sink oc);
      List.iter
        (fun e ->
          Obs.Hub.emit hub ~time:e.Obs.Event.time ~actor:e.Obs.Event.actor
            ?flow:e.Obs.Event.flow e.Obs.Event.kind)
        sample_events;
      close_out oc;
      let events, errors = Obs.Export.read_jsonl file in
      Alcotest.(check int) "no parse errors" 0 (List.length errors);
      Alcotest.(check bool) "all events survive the file round-trip" true
        (events = sample_events))

let () =
  Alcotest.run "obs"
    [ ( "hub",
        [ Alcotest.test_case "disabled is a no-op" `Quick
            test_hub_disabled_is_noop;
          Alcotest.test_case "sink and event ordering" `Quick
            test_hub_sink_order_and_event_order;
          Alcotest.test_case "trace sink renders strings" `Quick
            test_trace_sink_renders_strings ] );
      ( "flow correlation",
        [ Alcotest.test_case "direction-insensitive flow id" `Quick
            test_flow_id_direction_insensitive;
          Alcotest.test_case "DNS -> map resolution -> first packet" `Quick
            test_flow_correlation_across_layers;
          Alcotest.test_case "scenario hub disabled by default" `Quick
            test_disabled_hub_emits_nothing_in_scenario ] );
      ( "registry",
        [ Alcotest.test_case "snapshot correctness" `Quick
            test_registry_snapshot;
          Alcotest.test_case "scenario registry tracks a run" `Quick
            test_scenario_registry_tracks_run ] );
      ( "sampler",
        [ Alcotest.test_case "buckets and finalise" `Quick
            test_sampler_buckets_and_finalise;
          Alcotest.test_case "no interval drift" `Quick
            test_sampler_no_interval_drift ] );
      ( "jsonl",
        [ Alcotest.test_case "event round-trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "old cp lines still parse" `Quick
            test_jsonl_old_cp_lines_still_parse;
          Alcotest.test_case "garbage rejected" `Quick
            test_jsonl_rejects_garbage;
          Alcotest.test_case "file round-trip" `Quick
            test_jsonl_file_round_trip ] ) ]
