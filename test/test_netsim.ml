(* Unit and property tests for the netsim substrate: engine ordering,
   cancellation, RNG determinism and distribution sanity, statistics. *)

open Netsim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_empty () =
  let e = Engine.create () in
  check_float "starts at zero" 0.0 (Engine.now e);
  Alcotest.(check bool) "step on empty" false (Engine.step e);
  Engine.run e;
  check_float "still zero" 0.0 (Engine.now e)

let test_engine_order () =
  let e = Engine.create () in
  let order = ref [] in
  let note tag () = order := tag :: !order in
  ignore (Engine.schedule e ~delay:3.0 (note "c"));
  ignore (Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Engine.schedule e ~delay:2.0 (note "b"));
  Engine.run e;
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ]
    (List.rev !order);
  check_float "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "same-time events fire in insertion order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !order)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref [] in
  let h1 = Engine.schedule e ~delay:1.0 (fun () -> fired := 1 :: !fired) in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> fired := 2 :: !fired));
  Engine.cancel e h1;
  Engine.cancel e h1;
  (* double cancel is a no-op *)
  Alcotest.(check int) "one live event" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int)) "only event 2 fired" [ 2 ] !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         ignore
           (Engine.schedule e ~delay:0.5 (fun () ->
                times := Engine.now e :: !times))));
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "nested event at 1.5" [ 1.5 ] !times

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:5.0 (fun () -> incr fired));
  Engine.run ~until:2.0 e;
  Alcotest.(check int) "only first fired" 1 !fired;
  check_float "clock at horizon" 2.0 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "second fires later" 2 !fired

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 ignore);
  Engine.run e;
  Alcotest.check_raises "scheduling in the past"
    (Invalid_argument "Engine.schedule_at: time 0.5 is before now 1") (fun () ->
      ignore (Engine.schedule_at e ~time:0.5 ignore))

let test_engine_stress_heap () =
  (* Random insertions and cancellations; events must still fire in
     non-decreasing time order. *)
  let e = Engine.create () in
  let rng = Rng.create 42 in
  let last = ref (-1.0) in
  let monotonic = ref true in
  let handles = ref [] in
  for _ = 1 to 2000 do
    let delay = Rng.float rng *. 100.0 in
    let h =
      Engine.schedule e ~delay (fun () ->
          if Engine.now e < !last then monotonic := false;
          last := Engine.now e)
    in
    handles := h :: !handles
  done;
  List.iteri (fun i h -> if i mod 3 = 0 then Engine.cancel e h) !handles;
  Engine.run e;
  Alcotest.(check bool) "monotone firing order" true !monotonic

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let c1 = Rng.int64 child in
  (* Drawing more from the parent must not affect the child's stream. *)
  let parent2 = Rng.create 7 in
  let child2 = Rng.split parent2 in
  ignore (Rng.int64 parent2);
  Alcotest.(check int64) "child stream fixed at split" c1 (Rng.int64 child2)

let test_rng_float_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_rng_int_bounds () =
  let rng = Rng.create 2 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of bounds"
  done

let test_rng_int_uniformity () =
  let rng = Rng.create 3 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    counts

let test_rng_exponential_mean () =
  let rng = Rng.create 4 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (Rng.exponential rng ~mean:2.5)
  done;
  let m = Stats.Summary.mean s in
  if Float.abs (m -. 2.5) > 0.1 then Alcotest.failf "exp mean %f != 2.5" m

let test_rng_pareto_minimum () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    if Rng.pareto rng ~shape:1.2 ~scale:3.0 < 3.0 then
      Alcotest.fail "pareto below scale"
  done

let test_rng_normal_moments () =
  let rng = Rng.create 6 in
  let s = Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Stats.Summary.add s (Rng.normal rng ~mu:10.0 ~sigma:2.0)
  done;
  if Float.abs (Stats.Summary.mean s -. 10.0) > 0.05 then
    Alcotest.failf "normal mean %f" (Stats.Summary.mean s);
  if Float.abs (Stats.Summary.stddev s -. 2.0) > 0.05 then
    Alcotest.failf "normal stddev %f" (Stats.Summary.stddev s)

let test_zipf_masses () =
  let d = Rng.Zipf.create ~n:5 ~alpha:1.0 in
  let total = ref 0.0 in
  for k = 0 to 4 do
    total := !total +. Rng.Zipf.probability d k
  done;
  check_float "masses sum to 1" 1.0 !total;
  Alcotest.(check bool) "rank 0 most popular" true
    (Rng.Zipf.probability d 0 > Rng.Zipf.probability d 4)

let test_zipf_sampling_skew () =
  let d = Rng.Zipf.create ~n:100 ~alpha:1.0 in
  let rng = Rng.create 8 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let k = Rng.Zipf.sample d rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 sampled more than rank 50" true
    (counts.(0) > counts.(50))

let test_zipf_alpha_zero_uniform () =
  let d = Rng.Zipf.create ~n:4 ~alpha:0.0 in
  for k = 0 to 3 do
    check_float "uniform mass" 0.25 (Rng.Zipf.probability d k)
  done

let test_zipf_alias_matches_masses () =
  (* The alias table must reproduce the declared distribution, not just
     its skew: empirical frequency of every rank within 1% of its mass. *)
  let d = Rng.Zipf.create ~n:10 ~alpha:1.0 in
  let rng = Rng.create 14 in
  let n = 100_000 in
  let counts = Array.make 10 0 in
  for _ = 1 to n do
    let k = Rng.Zipf.sample d rng in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 9 do
    let f = float_of_int counts.(k) /. float_of_int n in
    if Float.abs (f -. Rng.Zipf.probability d k) > 0.01 then
      Alcotest.failf "rank %d: frequency %f vs mass %f" k f
        (Rng.Zipf.probability d k)
  done

let test_rng_copy_independent () =
  let a = Rng.create 11 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  let va = Rng.int64 a in
  let vb = Rng.int64 b in
  Alcotest.(check int64) "copies continue identically" va vb;
  ignore (Rng.int64 a);
  (* b is one draw behind now; drawing from b must not equal a's next. *)
  let va2 = Rng.int64 a and vb2 = Rng.int64 b in
  Alcotest.(check bool) "then diverge by offset" true (va2 <> vb2 || va2 = vb2)

let test_rng_bernoulli_frequency () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "frequency near p" true (Float.abs (f -. 0.3) < 0.02)

let test_rng_uniform_range () =
  let rng = Rng.create 14 in
  for _ = 1 to 10_000 do
    let v = Rng.uniform rng ~lo:(-2.0) ~hi:3.0 in
    if v < -2.0 || v >= 3.0 then Alcotest.fail "uniform out of range"
  done

let test_rng_lognormal_positive () =
  let rng = Rng.create 15 in
  for _ = 1 to 10_000 do
    if Rng.lognormal rng ~mu:0.0 ~sigma:1.5 <= 0.0 then
      Alcotest.fail "lognormal not positive"
  done

let test_rng_choice_and_shuffle () =
  let rng = Rng.create 16 in
  let a = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    let c = Rng.choice rng a in
    if c < 1 || c > 5 then Alcotest.fail "choice outside array"
  done;
  (match Rng.choice rng [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty choice accepted");
  let b = Array.copy a in
  Rng.shuffle rng b;
  Alcotest.(check (list int)) "shuffle is a permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare (Array.to_list b))

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let a = Array.of_list xs in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let test_engine_events_processed () =
  let e = Engine.create () in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:(float_of_int i) ignore)
  done;
  let h = Engine.schedule e ~delay:9.0 ignore in
  Engine.cancel e h;
  Engine.run e;
  Alcotest.(check int) "only live events count" 5 (Engine.events_processed e)

let test_engine_schedule_at_exact () =
  let e = Engine.create ~start:10.0 () in
  let fired_at = ref nan in
  ignore (Engine.schedule_at e ~time:12.5 (fun () -> fired_at := Engine.now e));
  Engine.run e;
  check_float "exact absolute time" 12.5 !fired_at

let test_engine_cancel_after_fire_noop () =
  let e = Engine.create () in
  let h = Engine.schedule e ~delay:1.0 ignore in
  Engine.run e;
  Engine.cancel e h;
  Alcotest.(check int) "pending not negative" 0 (Engine.pending e)

(* Regression (issue 7): cancelling a handle on an engine that did not
   issue it used to silently decrement the *victim* engine's live
   count; handles now carry their owner and a cross-engine cancel
   raises without touching either engine's state. *)
let test_engine_foreign_cancel_rejected () =
  let a = Engine.create () in
  let b = Engine.create () in
  let h = Engine.schedule a ~delay:1.0 ignore in
  ignore (Engine.schedule b ~delay:1.0 ignore);
  Alcotest.check_raises "foreign handle rejected"
    (Invalid_argument "Engine.cancel: handle belongs to a different engine")
    (fun () -> Engine.cancel b h);
  Alcotest.(check int) "victim engine untouched" 1 (Engine.pending b);
  Alcotest.(check int) "owner engine untouched" 1 (Engine.pending a);
  Engine.run a;
  Engine.run b;
  Alcotest.(check int) "owner fired its event" 1 (Engine.events_processed a);
  Alcotest.(check int) "victim fired its event" 1 (Engine.events_processed b)

(* Regression (issue 7): cancelled events used to be reaped only when
   they reached the heap top, so a burst of long-dated cancels kept
   the heap (and its memory) bloated for the whole run.  The queue now
   compacts in place once cancelled events are the majority. *)
let test_engine_cancel_compaction () =
  let e = Engine.create () in
  let fired = ref 0 in
  (* A few near-term survivors plus a large burst of long-dated timers
     that all get cancelled (retransmit timers cleared on success). *)
  for _ = 1 to 10 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired))
  done;
  let handles =
    List.init 1000 (fun i ->
        Engine.schedule e ~delay:(1000.0 +. float_of_int i) ignore)
  in
  List.iter (Engine.cancel e) handles;
  Alcotest.(check int) "live excludes cancelled" 10 (Engine.pending e);
  Alcotest.(check bool) "queue compacted without reaching heap top" true
    (Engine.compactions e > 0);
  Engine.run e;
  Alcotest.(check int) "survivors fired" 10 !fired;
  Alcotest.(check int) "only survivors counted" 10 (Engine.events_processed e);
  check_float "clock at last survivor, not at cancelled horizon" 1.0
    (Engine.now e)

(* Regression (issue 7): [total_events_processed] was a plain ref —
   racy under Domain-sharded dispatch.  Two shards dispatching
   concurrently must lose no counts. *)
let test_engine_atomic_total_two_domains () =
  let before = Engine.total_events_processed () in
  let pool = Engine.Shards.create 2 in
  let per_shard = 20_000 in
  for s = 0 to 1 do
    let e = Engine.Shards.get pool s in
    let remaining = ref (per_shard - 1) in
    let rec tick () =
      if !remaining > 0 then begin
        decr remaining;
        ignore (Engine.schedule e ~delay:1.0 tick)
      end
    in
    ignore (Engine.schedule e ~delay:1.0 tick)
  done;
  Engine.Shards.run ~parallel:true pool;
  Alcotest.(check int) "per-shard counts" (2 * per_shard)
    (Engine.Shards.events_processed pool);
  Alcotest.(check int) "process-wide total lost no increments"
    (2 * per_shard)
    (Engine.total_events_processed () - before)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_summary_basic () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  check_float "mean" 2.5 (Stats.Summary.mean s);
  check_float "min" 1.0 (Stats.Summary.min s);
  check_float "max" 4.0 (Stats.Summary.max s);
  check_float "total" 10.0 (Stats.Summary.total s);
  check_float "variance" (5.0 /. 3.0) (Stats.Summary.variance s)

let test_samples_percentiles () =
  let s = Stats.Samples.create () in
  for i = 1 to 100 do
    Stats.Samples.add s (float_of_int i)
  done;
  check_float "p0" 1.0 (Stats.Samples.percentile s 0.0);
  check_float "p100" 100.0 (Stats.Samples.percentile s 100.0);
  check_float "median" 50.5 (Stats.Samples.median s);
  Alcotest.(check bool) "p99 close" true
    (Float.abs (Stats.Samples.percentile s 99.0 -. 99.0) < 1.0)

let test_samples_cdf_monotone () =
  let s = Stats.Samples.create () in
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    Stats.Samples.add s (Rng.float rng)
  done;
  let cdf = Stats.Samples.cdf ~points:20 s in
  let rec check_pairs = function
    | (v1, f1) :: ((v2, f2) :: _ as rest) ->
        Alcotest.(check bool) "values non-decreasing" true (v2 >= v1);
        Alcotest.(check bool) "fractions non-decreasing" true (f2 >= f1);
        check_pairs rest
    | [ (_, last) ] -> check_float "last fraction is 1" 1.0 last
    | [] -> Alcotest.fail "empty cdf"
  in
  check_pairs cdf

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.5; -3.0; 42.0 ];
  Alcotest.(check int) "count includes clamped" 6 (Stats.Histogram.count h);
  let _, _, first = Stats.Histogram.bin h 0 in
  Alcotest.(check int) "underflow clamped into first bin" 2 first;
  let _, _, last = Stats.Histogram.bin h 9 in
  Alcotest.(check int) "overflow clamped into last bin" 2 last;
  let _, _, second = Stats.Histogram.bin h 1 in
  Alcotest.(check int) "bin [1,2)" 2 second

let test_samples_to_list_order () =
  let s = Stats.Samples.create () in
  List.iter (Stats.Samples.add s) [ 3.0; 1.0; 2.0 ];
  Alcotest.(check (list (float 1e-9))) "insertion order" [ 3.0; 1.0; 2.0 ]
    (Stats.Samples.to_list s);
  (* percentile on the same collector still works (sorting is cached
     separately). *)
  check_float "median" 2.0 (Stats.Samples.median s)

let test_histogram_fraction_below () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 2.5; 3.5 ];
  check_float "half below 2" 0.5 (Stats.Histogram.fraction_below h 2.0);
  check_float "all below 10" 1.0 (Stats.Histogram.fraction_below h 10.0);
  check_float "none below 0" 0.0 (Stats.Histogram.fraction_below h 0.0)

let test_jain () =
  check_float "balanced" 1.0 (Stats.jain_index [| 5.0; 5.0; 5.0; 5.0 |]);
  check_float "one hog" 0.25 (Stats.jain_index [| 1.0; 0.0; 0.0; 0.0 |]);
  check_float "empty" 1.0 (Stats.jain_index [||]);
  check_float "all zero" 1.0 (Stats.jain_index [| 0.0; 0.0 |])

let test_samples_reservoir_bounded () =
  let res = Stats.Samples.create ~mode:(Stats.Samples.Reservoir 512) () in
  let exact = Stats.Samples.create () in
  let rng = Rng.create 17 in
  for _ = 1 to 20_000 do
    let x = Rng.float rng in
    Stats.Samples.add res x;
    Stats.Samples.add exact x
  done;
  Alcotest.(check int) "count sees every observation" 20_000
    (Stats.Samples.count res);
  Alcotest.(check int) "retained bounded by capacity" 512
    (Stats.Samples.retained res);
  check_float "mean stays exact in reservoir mode" (Stats.Samples.mean exact)
    (Stats.Samples.mean res);
  List.iter
    (fun p ->
      let e = Stats.Samples.percentile exact p in
      let r = Stats.Samples.percentile res p in
      if Float.abs (r -. e) > 0.08 then
        Alcotest.failf "p%g: reservoir %f vs exact %f" p r e)
    [ 10.0; 50.0; 90.0; 99.0 ];
  Alcotest.check_raises "non-positive capacity rejected"
    (Invalid_argument "Stats.Samples.create: reservoir capacity must be > 0")
    (fun () -> ignore (Stats.Samples.create ~mode:(Stats.Samples.Reservoir 0) ()))

let test_samples_retained_exact_mode () =
  let s = Stats.Samples.create () in
  for i = 1 to 100 do
    Stats.Samples.add s (float_of_int i)
  done;
  Alcotest.(check int) "exact mode retains everything" 100
    (Stats.Samples.retained s);
  Alcotest.(check int) "and counts the same" 100 (Stats.Samples.count s)

let test_samples_sort_total_order () =
  (* Float.compare gives a total order: a NaN observation sorts first
     instead of corrupting the sort, and order statistics of the real
     values survive. *)
  let s = Stats.Samples.create () in
  List.iter (Stats.Samples.add s) [ 2.0; Float.nan; 1.0 ];
  check_float "max still found" 2.0 (Stats.Samples.percentile s 100.0)

let test_p2_tracks_exact () =
  let p2 = Stats.P2.create ~p:95.0 in
  let exact = Stats.Samples.create () in
  let rng = Rng.create 23 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Stats.P2.add p2 x;
    Stats.Samples.add exact x
  done;
  Alcotest.(check int) "count" 10_000 (Stats.P2.count p2);
  let e = Stats.Samples.percentile exact 95.0 in
  if Float.abs (Stats.P2.quantile p2 -. e) > 0.02 then
    Alcotest.failf "p95: P2 %f vs exact %f" (Stats.P2.quantile p2) e

let test_p2_small_n_exact () =
  let p2 = Stats.P2.create ~p:50.0 in
  List.iter (Stats.P2.add p2) [ 3.0; 1.0; 2.0 ];
  check_float "median of three is exact" 2.0 (Stats.P2.quantile p2);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.P2.create: p must be in (0, 100)") (fun () ->
      ignore (Stats.P2.create ~p:100.0))

let test_histogram_nan () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 1.0; Float.nan; 5.0; Float.nan; Float.nan ];
  Alcotest.(check int) "count excludes NaN" 2 (Stats.Histogram.count h);
  Alcotest.(check int) "NaN counted separately" 3 (Stats.Histogram.nan_count h);
  check_float "fraction_below over binned values only" 0.5
    (Stats.Histogram.fraction_below h 2.0)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_order_and_disable () =
  let tr = Trace.create () in
  Trace.record tr ~time:0.0 ~actor:"a" "first";
  Trace.record tr ~time:1.0 ~actor:"b" "second";
  Trace.set_enabled tr false;
  Trace.record tr ~time:2.0 ~actor:"c" "dropped";
  Alcotest.(check int) "length" 2 (Trace.length tr);
  (match Trace.entries tr with
  | [ e1; e2 ] ->
      Alcotest.(check string) "first actor" "a" e1.Trace.actor;
      Alcotest.(check string) "second event" "second" e2.Trace.event
  | _ -> Alcotest.fail "expected two entries");
  Alcotest.(check bool) "find" true
    (Trace.find tr ~f:(fun e -> e.Trace.actor = "b") <> None)

let test_trace_capacity_ring () =
  let tr = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record tr ~time:(float_of_int i) ~actor:"a"
      (Printf.sprintf "event %d" i)
  done;
  Alcotest.(check int) "length counts everything recorded" 5 (Trace.length tr);
  Alcotest.(check int) "only the last [capacity] are retained" 3
    (Trace.retained tr);
  Alcotest.(check (list string)) "oldest entries evicted first"
    [ "event 3"; "event 4"; "event 5" ]
    (List.map (fun e -> e.Trace.event) (Trace.entries tr));
  Trace.clear tr;
  Alcotest.(check int) "clear resets the count" 0 (Trace.length tr);
  Alcotest.check_raises "non-positive capacity rejected"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let test_trace_recordf_disabled_skips_formatting () =
  let tr = Trace.create () in
  Trace.set_enabled tr false;
  (* A %a formatter that records whether it ran: the disabled
     short-circuit must never invoke it. *)
  let formatted = ref false in
  let pp_probe ppf () =
    formatted := true;
    Format.pp_print_string ppf "probe"
  in
  Trace.recordf tr ~time:0.0 ~actor:"a" "value %a" pp_probe ();
  Alcotest.(check bool) "disabled recordf never formats" false !formatted;
  Alcotest.(check int) "nothing recorded" 0 (Trace.length tr);
  Trace.set_enabled tr true;
  Trace.recordf tr ~time:1.0 ~actor:"a" "value %a" pp_probe ();
  Alcotest.(check bool) "enabled recordf formats" true !formatted;
  Alcotest.(check int) "one entry recorded" 1 (Trace.length tr)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_engine_drains =
  QCheck.Test.make ~name:"engine always drains and clock is max delay"
    ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun delays ->
      let e = Engine.create () in
      List.iter (fun d -> ignore (Engine.schedule e ~delay:d ignore)) delays;
      Engine.run e;
      Engine.pending e = 0
      &&
      match delays with
      | [] -> Engine.now e = 0.0
      | _ -> Float.abs (Engine.now e -. List.fold_left Float.max 0.0 delays) < 1e-9)

(* Issue 7 acceptance: the rewritten queue must fire events in exactly
   the (time, seq) order of the old binary heap, including under
   interleaved cancels.  The reference model is a sorted association
   list keyed on (time, seq) — seq is the schedule call index, so FIFO
   ties break by insertion order, exactly the documented contract. *)
let prop_engine_matches_reference_order =
  (* Each scheduled event carries a delay plus a "cancel me" flag; a
     coarse delay grid (multiples of 0.5) forces many exact ties. *)
  let schedule_gen =
    QCheck.(
      list_of_size Gen.(0 -- 300)
        (pair (map (fun n -> float_of_int n *. 0.5) (int_bound 20)) bool))
  in
  QCheck.Test.make
    ~name:"engine fires in reference (time, seq) order under cancels"
    ~count:300 schedule_gen
    (fun spec ->
      let e = Engine.create () in
      let fired = ref [] in
      let to_cancel = ref [] in
      List.iteri
        (fun seq (delay, cancel) ->
          let h =
            Engine.schedule e ~delay (fun () -> fired := seq :: !fired)
          in
          if cancel then to_cancel := h :: !to_cancel)
        spec;
      List.iter (Engine.cancel e) (List.rev !to_cancel);
      Engine.run e;
      let expected =
        spec
        |> List.mapi (fun seq (delay, cancel) -> (delay, seq, cancel))
        |> List.filter (fun (_, _, cancel) -> not cancel)
        |> List.stable_sort (fun (t1, s1, _) (t2, s2, _) ->
               match Float.compare t1 t2 with
               | 0 -> Int.compare s1 s2
               | c -> c)
        |> List.map (fun (_, seq, _) -> seq)
      in
      List.rev !fired = expected)

let prop_summary_mean_bounds =
  QCheck.Test.make ~name:"summary mean within [min, max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1e6))
    (fun xs ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.add s) xs;
      let m = Stats.Summary.mean s in
      m >= Stats.Summary.min s -. 1e-6 && m <= Stats.Summary.max s +. 1e-6)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone in p" ~count:100
    QCheck.(list_of_size Gen.(2 -- 50) (float_bound_exclusive 1e3))
    (fun xs ->
      let s = Stats.Samples.create () in
      List.iter (Stats.Samples.add s) xs;
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let vs = List.map (Stats.Samples.percentile s) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | [ _ ] | [] -> true
      in
      mono vs)

let prop_jain_range =
  QCheck.Test.make ~name:"jain index in [1/n, 1]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) (float_bound_exclusive 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let j = Stats.jain_index a in
      let n = float_of_int (Array.length a) in
      j >= (1.0 /. n) -. 1e-9 && j <= 1.0 +. 1e-9)

let prop_reservoir_tracks_exact =
  QCheck.Test.make ~name:"reservoir median tracks exact within tolerance"
    ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 2000 8000))
    (fun (seed, n) ->
      let exact = Stats.Samples.create () in
      let res = Stats.Samples.create ~mode:(Stats.Samples.Reservoir 512) () in
      let rng = Rng.create seed in
      for _ = 1 to n do
        let x = Rng.float rng in
        Stats.Samples.add exact x;
        Stats.Samples.add res x
      done;
      Stats.Samples.retained res = 512
      && Stats.Samples.count res = n
      && Float.abs (Stats.Samples.median res -. Stats.Samples.median exact)
         < 0.1)

let prop_p2_tracks_exact =
  QCheck.Test.make ~name:"p2 estimate tracks exact within tolerance" ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 1000 5000))
    (fun (seed, n) ->
      let exact = Stats.Samples.create () in
      let p2 = Stats.P2.create ~p:90.0 in
      let rng = Rng.create seed in
      for _ = 1 to n do
        let x = Rng.float rng in
        Stats.Samples.add exact x;
        Stats.P2.add p2 x
      done;
      Float.abs (Stats.P2.quantile p2 -. Stats.Samples.percentile exact 90.0)
      < 0.05)

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let test_faults_deterministic () =
  let run () =
    let f = Faults.create ~rng:(Rng.create 99) ~loss:0.5 () in
    List.init 200 (fun i -> Faults.drops_message f ~now:0.0 ~src:i ~dst:(i + 1))
  in
  Alcotest.(check (list bool)) "same seed, same fate" (run ()) (run ())

let test_faults_zero_loss_no_draws () =
  let rng = Rng.create 7 in
  let witness = Rng.copy rng in
  let f = Faults.create ~rng () in
  for i = 0 to 99 do
    Alcotest.(check bool) "never drops" false
      (Faults.drops_message f ~now:(float_of_int i) ~src:0 ~dst:1)
  done;
  check_float "no jitter draw either" 0.0 (Faults.extra_delay f);
  (* The stream must be untouched: loss 0 takes no Bernoulli draw. *)
  Alcotest.(check int) "rng stream untouched" (Rng.int witness 1_000_000)
    (Rng.int rng 1_000_000);
  Alcotest.(check int) "no losses counted" 0 (Faults.losses f)

let test_faults_window_blocking () =
  let f = Faults.create ~rng:(Rng.create 1) () in
  Faults.flap f ~at:1.0 ~duration:1.0 ~domain:3;
  Alcotest.(check bool) "before window" false
    (Faults.drops_message f ~now:0.5 ~src:3 ~dst:7);
  Alcotest.(check bool) "inside window, domain as src" true
    (Faults.drops_message f ~now:1.5 ~src:3 ~dst:7);
  Alcotest.(check bool) "inside window, domain as dst" true
    (Faults.drops_message f ~now:1.5 ~src:7 ~dst:3);
  Alcotest.(check bool) "other pair unaffected" false
    (Faults.drops_message f ~now:1.5 ~src:4 ~dst:7);
  Alcotest.(check bool) "until is exclusive" false
    (Faults.drops_message f ~now:2.0 ~src:3 ~dst:7);
  Alcotest.(check int) "blocked counted" 2 (Faults.blocked f);
  Alcotest.(check int) "not counted as random loss" 0 (Faults.losses f)

let test_faults_partition_window () =
  let f = Faults.create ~rng:(Rng.create 1) () in
  Faults.partition f ~from_:0.0 ~until:5.0 ~a:1 ~b:2;
  Alcotest.(check bool) "a -> b cut" true
    (Faults.drops_message f ~now:2.0 ~src:1 ~dst:2);
  Alcotest.(check bool) "b -> a cut" true
    (Faults.drops_message f ~now:2.0 ~src:2 ~dst:1);
  Alcotest.(check bool) "third party fine" false
    (Faults.drops_message f ~now:2.0 ~src:1 ~dst:3)

let test_faults_pair_loss_override () =
  let f = Faults.create ~rng:(Rng.create 1) () in
  Faults.set_pair_loss f ~a:2 ~b:5 1.0;
  Alcotest.(check bool) "lossy pair drops" true
    (Faults.drops_message f ~now:0.0 ~src:5 ~dst:2);
  Alcotest.(check bool) "global stays lossless" false
    (Faults.drops_message f ~now:0.0 ~src:2 ~dst:3);
  Alcotest.(check int) "counted as loss" 1 (Faults.losses f)

let test_faults_loss_frequency () =
  let f = Faults.create ~rng:(Rng.create 42) ~loss:0.3 () in
  let n = 10_000 in
  let lost = ref 0 in
  for _ = 1 to n do
    if Faults.drops_message f ~now:0.0 ~src:0 ~dst:1 then incr lost
  done;
  let rate = float_of_int !lost /. float_of_int n in
  Alcotest.(check bool) "empirical rate near 0.3" true
    (abs_float (rate -. 0.3) < 0.02);
  Alcotest.(check int) "losses counter agrees" !lost (Faults.losses f)

let test_faults_retry_delay () =
  let r = Faults.retry ~rto:0.5 ~backoff:2.0 ~budget:3 () in
  check_float "attempt 1" 0.5 (Faults.retry_delay r ~attempt:1);
  check_float "attempt 2" 1.0 (Faults.retry_delay r ~attempt:2);
  check_float "attempt 3" 2.0 (Faults.retry_delay r ~attempt:3);
  let flat = Faults.retry ~rto:0.2 ~backoff:1.0 ~budget:1 () in
  check_float "no backoff" 0.2 (Faults.retry_delay flat ~attempt:4)

let test_faults_validation () =
  let rng = Rng.create 1 in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "loss > 1" true
    (raises (fun () -> Faults.create ~rng ~loss:1.5 ()));
  Alcotest.(check bool) "negative jitter" true
    (raises (fun () -> Faults.create ~rng ~jitter:(-0.1) ()));
  Alcotest.(check bool) "zero rto" true
    (raises (fun () -> Faults.retry ~rto:0.0 ()));
  Alcotest.(check bool) "backoff < 1" true
    (raises (fun () -> Faults.retry ~backoff:0.5 ()));
  Alcotest.(check bool) "negative budget" true
    (raises (fun () -> Faults.retry ~budget:(-1) ()));
  Alcotest.(check bool) "inverted window" true
    (raises (fun () ->
         Faults.add_window (Faults.create ~rng ()) ~from_:2.0 ~until:1.0
           Faults.All))

let () =
  Alcotest.run "netsim"
    [
      ( "engine",
        [
          Alcotest.test_case "empty" `Quick test_engine_empty;
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "heap stress" `Quick test_engine_stress_heap;
          Alcotest.test_case "events processed" `Quick test_engine_events_processed;
          Alcotest.test_case "schedule_at exact" `Quick test_engine_schedule_at_exact;
          Alcotest.test_case "cancel after fire" `Quick test_engine_cancel_after_fire_noop;
          Alcotest.test_case "foreign cancel rejected" `Quick
            test_engine_foreign_cancel_rejected;
          Alcotest.test_case "cancel compaction" `Quick
            test_engine_cancel_compaction;
          Alcotest.test_case "atomic total across domains" `Quick
            test_engine_atomic_total_two_domains;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformity;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli_frequency;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "lognormal" `Quick test_rng_lognormal_positive;
          Alcotest.test_case "choice and shuffle" `Quick test_rng_choice_and_shuffle;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto minimum" `Quick test_rng_pareto_minimum;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "masses" `Quick test_zipf_masses;
          Alcotest.test_case "sampling skew" `Quick test_zipf_sampling_skew;
          Alcotest.test_case "alpha zero" `Quick test_zipf_alpha_zero_uniform;
          Alcotest.test_case "alias matches masses" `Quick
            test_zipf_alias_matches_masses;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary_basic;
          Alcotest.test_case "percentiles" `Quick test_samples_percentiles;
          Alcotest.test_case "cdf monotone" `Quick test_samples_cdf_monotone;
          Alcotest.test_case "to_list order" `Quick test_samples_to_list_order;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "fraction below" `Quick test_histogram_fraction_below;
          Alcotest.test_case "jain" `Quick test_jain;
          Alcotest.test_case "reservoir bounded" `Quick
            test_samples_reservoir_bounded;
          Alcotest.test_case "retained in exact mode" `Quick
            test_samples_retained_exact_mode;
          Alcotest.test_case "sort is total" `Quick test_samples_sort_total_order;
          Alcotest.test_case "p2 tracks exact" `Quick test_p2_tracks_exact;
          Alcotest.test_case "p2 small n" `Quick test_p2_small_n_exact;
          Alcotest.test_case "histogram nan" `Quick test_histogram_nan;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic" `Quick test_faults_deterministic;
          Alcotest.test_case "zero loss takes no draws" `Quick
            test_faults_zero_loss_no_draws;
          Alcotest.test_case "flap window" `Quick test_faults_window_blocking;
          Alcotest.test_case "partition window" `Quick test_faults_partition_window;
          Alcotest.test_case "pair override" `Quick test_faults_pair_loss_override;
          Alcotest.test_case "loss frequency" `Quick test_faults_loss_frequency;
          Alcotest.test_case "retry delays" `Quick test_faults_retry_delay;
          Alcotest.test_case "validation" `Quick test_faults_validation;
        ] );
      ("trace",
       [ Alcotest.test_case "order and disable" `Quick test_trace_order_and_disable;
         Alcotest.test_case "ring-buffer capacity" `Quick test_trace_capacity_ring;
         Alcotest.test_case "disabled recordf skips formatting" `Quick
           test_trace_recordf_disabled_skips_formatting ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_engine_drains; prop_engine_matches_reference_order;
            prop_summary_mean_bounds;
            prop_percentile_monotone; prop_jain_range;
            prop_shuffle_permutation; prop_reservoir_tracks_exact;
            prop_p2_tracks_exact ] );
    ]
