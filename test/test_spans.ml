(* Span assembly and latency decomposition: hand-written event
   sequences for the paper's interesting paths (retry, wait-drop,
   timeout, piggybacked-PCE), plus qcheck properties that arbitrary
   event streams produce trees where every event is attributed exactly
   once and spans nest without overlap. *)

open Nettypes

let addr = Ipv4.addr_of_string
let eid = addr "100.0.1.1"

let ev ?flow time kind = { Obs.Event.time; actor = "test"; flow; kind }
let fev time kind = ev ~flow:42 time kind

(* A pull-mode connection whose map-request needs one retransmission. *)
let retry_sequence =
  [ fev 0.0 (Obs.Event.Conn_open { dst = eid });
    fev 0.0 (Obs.Event.Dns_query { qname = "h0.as1.net." });
    fev 0.05 (Obs.Event.Dns_reply { qname = "h0.as1.net."; answered = true });
    fev 0.05 (Obs.Event.Syn_sent { attempt = 1 });
    fev 0.06 (Obs.Event.Cache_miss { eid });
    fev 0.06 (Obs.Event.Map_request { eid });
    fev 0.56 (Obs.Event.Cp_retry { eid; attempt = 1; message = "map-request" });
    fev 0.66 (Obs.Event.Map_reply { eid });
    fev 0.67 Obs.Event.Syn_received;
    fev 0.70 Obs.Event.Conn_established ]

let build events =
  let b = Obs.Span.create_builder () in
  List.iter (Obs.Span.feed b) events;
  Obs.Span.finish b ~now:10.0;
  b

let find_span root name =
  let found = ref None in
  Obs.Span.iter
    (fun s -> if s.Obs.Span.name = name && !found = None then found := Some s)
    root;
  !found

let get_span root name =
  match find_span root name with
  | Some s -> s
  | None -> Alcotest.failf "span %s missing" name

let the_root b =
  match Obs.Span.roots b with
  | [ r ] -> r
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let check_span root name ~t0 ~t1 ~outcome =
  let s = get_span root name in
  Alcotest.(check (float 1e-9)) (name ^ " t0") t0 s.Obs.Span.t0;
  Alcotest.(check (float 1e-9)) (name ^ " t1") t1 s.Obs.Span.t1;
  Alcotest.(check string) (name ^ " outcome")
    (Obs.Span.outcome_name outcome)
    (Obs.Span.outcome_name s.Obs.Span.outcome)

let test_retry_tree () =
  let b = build retry_sequence in
  let root = the_root b in
  check_span root "connection_setup" ~t0:0.0 ~t1:0.70 ~outcome:Obs.Span.Ok;
  check_span root "dns_resolution" ~t0:0.0 ~t1:0.05 ~outcome:Obs.Span.Ok;
  check_span root "handshake" ~t0:0.05 ~t1:0.70 ~outcome:Obs.Span.Ok;
  check_span root "map_resolution" ~t0:0.06 ~t1:0.66 ~outcome:Obs.Span.Ok;
  check_span root "first_packet_wait" ~t0:0.06 ~t1:0.66 ~outcome:Obs.Span.Ok;
  check_span root "attempt-1" ~t0:0.06 ~t1:0.56 ~outcome:Obs.Span.Lost;
  check_span root "attempt-2" ~t0:0.56 ~t1:0.66 ~outcome:Obs.Span.Ok;
  (* The wait hangs off the resolution, the attempts off the wait. *)
  let resolution = get_span root "map_resolution" in
  Alcotest.(check (list string)) "wait is the resolution's child"
    [ "first_packet_wait" ]
    (List.map (fun s -> s.Obs.Span.name) (Obs.Span.children resolution));
  let wait = get_span root "first_packet_wait" in
  Alcotest.(check (list string)) "attempts are the wait's children"
    [ "attempt-1"; "attempt-2" ]
    (List.map (fun s -> s.Obs.Span.name) (Obs.Span.children wait));
  Alcotest.(check int) "all events attributed"
    (List.length retry_sequence)
    (Obs.Span.assigned b);
  Alcotest.(check int) "nothing unattributed" 0 (Obs.Span.unattributed b)

(* Drop-while-pending: the first packet dies at the ITR, a later SYN
   finds the cache warm. *)
let test_wait_drop_tree () =
  let b =
    build
      [ fev 0.0 (Obs.Event.Conn_open { dst = eid });
        fev 0.0 (Obs.Event.Dns_query { qname = "h0.as1.net." });
        fev 0.05 (Obs.Event.Dns_reply { qname = "h0.as1.net."; answered = true });
        fev 0.05 (Obs.Event.Syn_sent { attempt = 1 });
        fev 0.06 (Obs.Event.Cache_miss { eid });
        fev 0.06 (Obs.Event.Map_request { eid });
        fev 0.06 (Obs.Event.Packet_drop { cause = "mapping-resolution-drop" });
        fev 0.16 (Obs.Event.Map_reply { eid });
        fev 1.05 (Obs.Event.Syn_sent { attempt = 2 });
        fev 1.06 (Obs.Event.Cache_hit { eid });
        fev 1.07 Obs.Event.Syn_received;
        fev 1.10 Obs.Event.Conn_established ]
  in
  let root = the_root b in
  check_span root "connection_setup" ~t0:0.0 ~t1:1.10 ~outcome:Obs.Span.Ok;
  check_span root "first_packet_wait" ~t0:0.06 ~t1:0.06 ~outcome:Obs.Span.Lost;
  (* The resolution outlives the dropped packet: drop mode still sends
     the map-request and the reply warms the cache, so the resolution
     span runs on until the map-reply. *)
  check_span root "map_resolution" ~t0:0.06 ~t1:0.16 ~outcome:Obs.Span.Ok;
  Alcotest.(check int) "nothing unattributed" 0 (Obs.Span.unattributed b)

let test_timeout_tree () =
  let b =
    build
      [ fev 0.0 (Obs.Event.Conn_open { dst = eid });
        fev 0.0 (Obs.Event.Dns_query { qname = "h0.as1.net." });
        fev 0.05 (Obs.Event.Dns_reply { qname = "h0.as1.net."; answered = true });
        fev 0.05 (Obs.Event.Syn_sent { attempt = 1 });
        fev 0.06 (Obs.Event.Cache_miss { eid });
        fev 0.06 (Obs.Event.Map_request { eid });
        fev 0.56 (Obs.Event.Cp_retry { eid; attempt = 1; message = "map-request" });
        fev 1.56 (Obs.Event.Cp_timeout { eid; message = "map-request" });
        fev 1.56 (Obs.Event.Packet_drop { cause = "resolution-timeout" });
        fev 63.0 (Obs.Event.Conn_failed { reason = "syn-retries-exhausted" }) ]
  in
  let root = the_root b in
  check_span root "connection_setup" ~t0:0.0 ~t1:63.0 ~outcome:Obs.Span.Failed;
  check_span root "map_resolution" ~t0:0.06 ~t1:1.56 ~outcome:Obs.Span.Timeout;
  check_span root "attempt-2" ~t0:0.56 ~t1:1.56 ~outcome:Obs.Span.Timeout;
  (* The held packet dies with the resolution: the cascade closes the
     wait as timed out, which the analyzer counts as a wait drop. *)
  check_span root "first_packet_wait" ~t0:0.06 ~t1:1.56
    ~outcome:Obs.Span.Timeout;
  Alcotest.(check int) "nothing unattributed" 0 (Obs.Span.unattributed b)

(* PCE: the mapping rode the DNS reply, so there is no resolution span
   at all — the paper's removed T_map_resol term. *)
let pce_sequence =
  [ fev 0.0 (Obs.Event.Conn_open { dst = eid });
    fev 0.0 (Obs.Event.Dns_query { qname = "h0.as1.net." });
    fev 0.05 (Obs.Event.Dns_reply { qname = "h0.as1.net."; answered = true });
    fev 0.05 (Obs.Event.Syn_sent { attempt = 1 });
    fev 0.06 (Obs.Event.Cache_hit { eid });
    fev 0.07 Obs.Event.Syn_received;
    fev 0.10 Obs.Event.Conn_established ]

let test_pce_fast_path_tree () =
  let b = build pce_sequence in
  let root = the_root b in
  check_span root "connection_setup" ~t0:0.0 ~t1:0.10 ~outcome:Obs.Span.Ok;
  Alcotest.(check bool) "no map_resolution span" true
    (find_span root "map_resolution" = None);
  Alcotest.(check bool) "no first_packet_wait span" true
    (find_span root "first_packet_wait" = None);
  Alcotest.(check int) "nothing unattributed" 0 (Obs.Span.unattributed b)

let test_unfinished_flush_and_instants () =
  let b = Obs.Span.create_builder () in
  List.iter (Obs.Span.feed b)
    [ fev 0.0 (Obs.Event.Conn_open { dst = eid });
      fev 0.0 (Obs.Event.Dns_query { qname = "h0.as1.net." });
      ev 0.5 (Obs.Event.Cp_retry { eid; attempt = 1; message = "pce-push" }) ];
  Obs.Span.finish b ~now:2.0;
  match Obs.Span.roots b with
  | [ instant; root ] ->
      Alcotest.(check string) "control-plane instant span" "cp_retry:pce-push"
        instant.Obs.Span.name;
      Alcotest.(check (float 0.0)) "instant has no duration" 0.0
        (Obs.Span.duration instant);
      check_span root "connection_setup" ~t0:0.0 ~t1:2.0
        ~outcome:Obs.Span.Unfinished;
      check_span root "dns_resolution" ~t0:0.0 ~t1:2.0
        ~outcome:Obs.Span.Unfinished
  | roots -> Alcotest.failf "expected 2 roots, got %d" (List.length roots)

(* ------------------------------------------------------------------ *)
(* Latency decomposition                                               *)
(* ------------------------------------------------------------------ *)

let summary_of events ~now =
  let lat = Obs.Latency.create () in
  List.iter (Obs.Latency.feed lat) events;
  Obs.Latency.close lat ~now;
  Obs.Latency.summary lat

let value summary name =
  match List.assoc_opt name summary with
  | Some v -> v
  | None -> Alcotest.failf "summary key %s missing" name

let test_latency_decomposition_retry () =
  let s = summary_of retry_sequence ~now:1.0 in
  Alcotest.(check (float 0.0)) "flows" 1.0 (value s "flows");
  Alcotest.(check (float 0.0)) "established" 1.0 (value s "established");
  Alcotest.(check (float 1e-9)) "t_dns mean" 0.05 (value s "t_dns_mean");
  Alcotest.(check (float 1e-9)) "t_map_resol mean" 0.60
    (value s "t_map_resol_mean");
  Alcotest.(check (float 1e-9)) "t_first_packet_wait mean" 0.60
    (value s "t_first_packet_wait_mean");
  Alcotest.(check (float 1e-9)) "t_handshake mean" 0.65
    (value s "t_handshake_mean");
  Alcotest.(check (float 1e-9)) "t_setup mean" 0.70 (value s "t_setup_mean");
  Alcotest.(check (float 0.0)) "one cp retry" 1.0 (value s "cp_retries");
  Alcotest.(check (float 0.0)) "no wait drops" 0.0 (value s "wait_drops")

let test_latency_decomposition_pce () =
  let s = summary_of pce_sequence ~now:1.0 in
  Alcotest.(check (float 0.0)) "established" 1.0 (value s "established");
  Alcotest.(check (float 0.0)) "PCE pays no map-resolution time" 0.0
    (value s "t_map_resol_mean");
  Alcotest.(check (float 1e-9)) "but still pays DNS" 0.05
    (value s "t_dns_mean")

(* ------------------------------------------------------------------ *)
(* qcheck: arbitrary streams                                           *)
(* ------------------------------------------------------------------ *)

(* Random flow-scoped event streams with monotone times over a handful
   of flows.  The builder must attribute every event exactly once and
   produce trees whose children are contained in their parents and
   whose siblings do not overlap, whatever the order of kinds. *)

let arbitrary_stream =
  let open QCheck in
  let kind_gen =
    Gen.oneof
      [ Gen.return (Obs.Event.Conn_open { dst = eid });
        Gen.return (Obs.Event.Dns_query { qname = "q." });
        Gen.map
          (fun answered -> Obs.Event.Dns_reply { qname = "q."; answered })
          Gen.bool;
        Gen.map (fun attempt -> Obs.Event.Syn_sent { attempt }) (Gen.int_range 1 4);
        Gen.return (Obs.Event.Cache_miss { eid });
        Gen.return (Obs.Event.Cache_hit { eid });
        Gen.return (Obs.Event.Map_request { eid });
        Gen.map
          (fun attempt ->
            Obs.Event.Cp_retry { eid; attempt; message = "map-request" })
          (Gen.int_range 1 4);
        Gen.return (Obs.Event.Map_reply { eid });
        Gen.return (Obs.Event.Cp_timeout { eid; message = "map-request" });
        Gen.oneofl
          [ Obs.Event.Packet_drop { cause = "mapping-resolution-drop" };
            Obs.Event.Packet_drop { cause = "no-route" } ];
        Gen.return Obs.Event.Syn_received;
        Gen.return Obs.Event.Conn_established;
        Gen.return (Obs.Event.Conn_failed { reason = "x" });
        Gen.return
          (Obs.Event.Encap
             { outer_src = addr "10.0.0.1"; outer_dst = addr "12.0.0.1" }) ]
  in
  let step_gen = Gen.triple (Gen.int_range 1 3) (Gen.float_range 0.0 0.5) kind_gen in
  let stream_gen =
    Gen.map
      (fun steps ->
        let now = ref 0.0 in
        List.map
          (fun (flow, dt, kind) ->
            now := !now +. dt;
            ev ~flow !now kind)
          steps)
      (Gen.list_size (Gen.int_range 0 120) step_gen)
  in
  make ~print:(Print.list (fun e -> Obs.Event.kind_name e.Obs.Event.kind))
    stream_gen

let rec well_nested s =
  let children = Obs.Span.children s in
  List.for_all
    (fun c ->
      c.Obs.Span.t0 >= s.Obs.Span.t0 && c.Obs.Span.t1 <= s.Obs.Span.t1)
    children
  && (let rec siblings_ordered = function
        | a :: (b :: _ as rest) ->
            a.Obs.Span.t1 <= b.Obs.Span.t0 && siblings_ordered rest
        | _ -> true
      in
      siblings_ordered children)
  && List.for_all well_nested children

let prop_every_event_in_exactly_one_span =
  QCheck.Test.make ~name:"every event attributed exactly once" ~count:300
    arbitrary_stream (fun events ->
      let b = Obs.Span.create_builder () in
      List.iter (Obs.Span.feed b) events;
      Obs.Span.finish b ~now:1e9;
      let spans = ref 0 in
      List.iter
        (Obs.Span.iter (fun s -> spans := !spans + s.Obs.Span.events))
        (Obs.Span.roots b);
      Obs.Span.fed b = List.length events
      && Obs.Span.fed b = Obs.Span.assigned b + Obs.Span.unattributed b
      && !spans = Obs.Span.assigned b)

let prop_spans_nest_without_overlap =
  QCheck.Test.make ~name:"spans nest without overlap" ~count:300
    arbitrary_stream (fun events ->
      let b = Obs.Span.create_builder () in
      List.iter (Obs.Span.feed b) events;
      Obs.Span.finish b ~now:1e9;
      List.for_all well_nested (Obs.Span.roots b))

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_well_formed () =
  let b = build retry_sequence in
  let file = Filename.temp_file "spans_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Obs.Span.write_chrome_trace ~file [ ("pull", Obs.Span.roots b) ];
      let ic = open_in file in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.of_string (String.trim body) with
      | Error m -> Alcotest.failf "trace is not valid JSON: %s" m
      | Ok json -> (
          match Obs.Json.member "traceEvents" json with
          | Some (Obs.Json.List evs) ->
              Alcotest.(check bool) "has events" true (List.length evs > 0);
              List.iter
                (fun e ->
                  let has k = Obs.Json.member k e <> None in
                  Alcotest.(check bool) "required trace fields" true
                    (has "name" && has "ph" && has "pid" && has "tid"
                   && has "ts"))
                evs
          | _ -> Alcotest.fail "traceEvents missing"))

let () =
  Alcotest.run "spans"
    [ ( "tree builder",
        [ Alcotest.test_case "retry attempts nest in resolution" `Quick
            test_retry_tree;
          Alcotest.test_case "wait-drop closes the wait as lost" `Quick
            test_wait_drop_tree;
          Alcotest.test_case "timeout closes resolution and attempts" `Quick
            test_timeout_tree;
          Alcotest.test_case "PCE fast path has no resolution span" `Quick
            test_pce_fast_path_tree;
          Alcotest.test_case "finish flushes; instants for non-flow cp" `Quick
            test_unfinished_flush_and_instants ] );
      ( "latency",
        [ Alcotest.test_case "retry decomposition" `Quick
            test_latency_decomposition_retry;
          Alcotest.test_case "PCE pays no T_map_resol" `Quick
            test_latency_decomposition_pce ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_every_event_in_exactly_one_span;
            prop_spans_nest_without_overlap ] );
      ( "export",
        [ Alcotest.test_case "chrome trace is well-formed JSON" `Quick
            test_chrome_trace_well_formed ] ) ]
