(* Tests for the scale-out experiment runner: forked workers must
   produce a byte-identical emitted stream whatever the worker count,
   outcomes must come back in task order with failures flagged, and the
   BENCH.json document must carry one record per experiment. *)

let task id body =
  { Experiments.Runner.task_id = id; task_title = "task " ^ id;
    task_run = body }

(* Workers print through both buffered stdout and Format.std_formatter
   (the Metrics.Table path), so the runner's capture must handle both. *)
let chatty id () =
  Printf.printf "report for %s\n" id;
  Format.printf "formatted line (%s)@." id

let run_to_string ~jobs tasks =
  let buf = Buffer.create 256 in
  let outcomes =
    Experiments.Runner.run ~jobs ~emit:(Buffer.add_string buf)
      ~log:(fun _ -> ()) tasks
  in
  (Buffer.contents buf, outcomes)

let ids = [ "a"; "b"; "c"; "d"; "e" ]
let tasks () = List.map (fun id -> task id (chatty id)) ids

let test_serial_parallel_identical () =
  let serial, _ = run_to_string ~jobs:1 (tasks ()) in
  let parallel, _ = run_to_string ~jobs:3 (tasks ()) in
  Alcotest.(check string) "byte-identical output" serial parallel

let test_output_in_task_order () =
  let out, outcomes = run_to_string ~jobs:2 (tasks ()) in
  Alcotest.(check (list string)) "outcomes in task order" ids
    (List.map (fun o -> o.Experiments.Runner.out_id) outcomes);
  let expected =
    String.concat ""
      (List.map
         (fun id ->
           Printf.sprintf ">>> [%s] task %s\nreport for %s\nformatted line (%s)\n\n"
             id id id id)
         ids)
  in
  Alcotest.(check string) "headers + captured output, task order" expected out

let test_failure_flagged () =
  let ts =
    [ task "fine" (chatty "fine"); task "boom" (fun () -> failwith "boom") ]
  in
  let _, outcomes = run_to_string ~jobs:2 ts in
  match outcomes with
  | [ a; b ] ->
      Alcotest.(check bool) "healthy task ok" true a.Experiments.Runner.out_ok;
      Alcotest.(check bool) "failing task flagged" false
        b.Experiments.Runner.out_ok
  | _ -> Alcotest.fail "expected two outcomes"

let test_jobs_validated () =
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Runner.run: jobs must be >= 1") (fun () ->
      ignore (Experiments.Runner.run ~jobs:0 []))

let test_bench_json_shape () =
  let _, outcomes = run_to_string ~jobs:1 (tasks ()) in
  match Experiments.Runner.bench_json ~jobs:1 ~total_wall:1.5 outcomes with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool) "schema tag" true
        (List.assoc "schema" fields = Obs.Json.String "lisp-pce-bench/6");
      Alcotest.(check bool) "jobs recorded" true
        (List.assoc "jobs" fields = Obs.Json.Int 1);
      (match List.assoc "experiments" fields with
      | Obs.Json.List l ->
          Alcotest.(check int) "one record per task" (List.length ids)
            (List.length l);
          List.iter2
            (fun id record ->
              match record with
              | Obs.Json.Obj fs ->
                  Alcotest.(check bool)
                    (Printf.sprintf "record %s carries its id" id)
                    true
                    (List.assoc "id" fs = Obs.Json.String id);
                  (* These tasks build no scenario, so the latency list
                     is present but empty. *)
                  Alcotest.(check bool)
                    (Printf.sprintf "record %s carries a latency list" id)
                    true
                    (match List.assoc_opt "latency" fs with
                    | Some (Obs.Json.List _) -> true
                    | _ -> false);
                  Alcotest.(check bool)
                    (Printf.sprintf "record %s carries a prof block" id)
                    true
                    (match List.assoc_opt "prof" fs with
                    | Some (Obs.Json.Obj _) -> true
                    | _ -> false)
              | _ -> Alcotest.fail "experiment record not an object")
            ids l
      | _ -> Alcotest.fail "experiments not a list")
  | _ -> Alcotest.fail "bench_json not an object"

(* A task that builds a real scenario must come back with the latency
   decomposition of every run it attached — measured in the forked
   worker via the Obs runtime, marshalled home in the summary — and
   nothing when the decomposition is switched off. *)
let scenario_task id =
  task id (fun () ->
      let s =
        Core.Scenario.build
          { Core.Scenario.default_config with
            Core.Scenario.cp = Core.Scenario.Cp_pce Core.Pce_control.default_options }
      in
      let internet = Core.Scenario.internet s in
      let flow =
        Nettypes.Flow.create
          ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
          ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
          ~src_port:1 ()
      in
      ignore (Core.Scenario.open_connection s ~flow ~data_packets:2 ());
      Core.Scenario.run s;
      print_endline "done")

let test_latency_block () =
  let _, outcomes = run_to_string ~jobs:1 [ scenario_task "pce1" ] in
  match outcomes with
  | [ o ] ->
      (match o.Experiments.Runner.out_latency with
      | [ (label, metrics) ] ->
          Alcotest.(check string) "labelled by control plane" "pce" label;
          let get k = List.assoc k metrics in
          Alcotest.(check (float 0.0)) "one flow" 1.0 (get "flows");
          Alcotest.(check (float 0.0)) "established" 1.0 (get "established");
          Alcotest.(check bool) "setup time measured" true
            (get "t_setup_mean" > 0.0);
          Alcotest.(check (float 0.0)) "pce pays no resolution" 0.0
            (get "t_map_resol_mean")
      | l ->
          Alcotest.fail
            (Printf.sprintf "expected one latency run, got %d" (List.length l)))
  | _ -> Alcotest.fail "expected one outcome"

let test_latency_disabled () =
  let outcomes =
    Experiments.Runner.run ~jobs:1 ~latency:false ~emit:ignore ~log:ignore
      [ scenario_task "pce1" ]
  in
  match outcomes with
  | [ o ] ->
      Alcotest.(check int) "no latency block" 0
        (List.length o.Experiments.Runner.out_latency)
  | _ -> Alcotest.fail "expected one outcome"

(* A long sweep's summary — one latency block per scenario built —
   can exceed the 64 KB pipe buffer.  The parent must drain the pipe
   while the worker writes (EOF, not wait(), is the completion
   signal), or writer and reaper deadlock; this pins a summary several
   buffers large. *)
let test_large_summary () =
  let n = 500 in
  let t =
    task "sweep" (fun () ->
        for _ = 1 to n do
          let s =
            Core.Scenario.build
              { Core.Scenario.default_config with
                Core.Scenario.cp =
                  Core.Scenario.Cp_pce Core.Pce_control.default_options }
          in
          Core.Scenario.run s
        done;
        print_endline "done")
  in
  let _, outcomes = run_to_string ~jobs:1 [ t ] in
  match outcomes with
  | [ o ] ->
      Alcotest.(check bool) "sweep ok" true o.Experiments.Runner.out_ok;
      Alcotest.(check int) "one latency entry per scenario" n
        (List.length o.Experiments.Runner.out_latency)
  | _ -> Alcotest.fail "expected one outcome"

(* Cache model-validation rows recorded inside a worker must come home
   in the summary and surface as the experiment's "cache" block; tasks
   that record none must not carry the block at all. *)
let test_cache_rows_ride_summary () =
  let row =
    { Experiments.Cache_record.r_run = "lru/c=8"; r_policy = "lru"; r_n = 64;
      r_alpha = 0.9; r_capacity = 8; r_refs = 1000; r_measured_miss = 0.25;
      r_predicted_miss = Some 0.24; r_rel_err = Some 0.042;
      r_tolerance = Some 0.1; r_ok = true }
  in
  let ts =
    [ task "cachy" (fun () -> Experiments.Cache_record.record row);
      task "plain" (chatty "plain") ]
  in
  let _, outcomes = run_to_string ~jobs:2 ts in
  (match outcomes with
  | [ cachy; plain ] ->
      Alcotest.(check int) "row marshalled home" 1
        (List.length cachy.Experiments.Runner.out_cache);
      Alcotest.(check string) "row label intact" "lru/c=8"
        (List.hd cachy.Experiments.Runner.out_cache)
          .Experiments.Cache_record.r_run;
      Alcotest.(check int) "no rows for a plain task" 0
        (List.length plain.Experiments.Runner.out_cache)
  | _ -> Alcotest.fail "expected two outcomes");
  match Experiments.Runner.bench_json ~jobs:2 ~total_wall:1.0 outcomes with
  | Obs.Json.Obj fields -> (
      match List.assoc "experiments" fields with
      | Obs.Json.List [ Obs.Json.Obj cachy; Obs.Json.Obj plain ] ->
          Alcotest.(check bool) "cache block emitted" true
            (match List.assoc_opt "cache" cachy with
            | Some (Obs.Json.List [ r ]) ->
                Experiments.Cache_record.row_of_json r = Some row
            | _ -> false);
          Alcotest.(check bool) "no cache block when no rows" true
            (List.assoc_opt "cache" plain = None)
      | _ -> Alcotest.fail "expected two experiment records")
  | _ -> Alcotest.fail "bench_json not an object"

let prop_output_independent_of_jobs =
  QCheck.Test.make ~name:"emitted bytes independent of job count" ~count:8
    QCheck.(pair (int_range 2 4) (int_range 1 6))
    (fun (jobs, n) ->
      let mk () =
        List.init n (fun i ->
            let id = Printf.sprintf "t%d" i in
            task id (chatty id))
      in
      let serial, _ = run_to_string ~jobs:1 (mk ()) in
      let multi, _ = run_to_string ~jobs (mk ()) in
      String.equal serial multi)

let () =
  Alcotest.run "runner"
    [
      ( "runner",
        [
          Alcotest.test_case "serial = parallel" `Quick
            test_serial_parallel_identical;
          Alcotest.test_case "task order" `Quick test_output_in_task_order;
          Alcotest.test_case "failure flagged" `Quick test_failure_flagged;
          Alcotest.test_case "jobs validated" `Quick test_jobs_validated;
          Alcotest.test_case "bench json" `Quick test_bench_json_shape;
          Alcotest.test_case "latency block" `Quick test_latency_block;
          Alcotest.test_case "latency disabled" `Quick test_latency_disabled;
          Alcotest.test_case "oversized summary" `Quick test_large_summary;
          Alcotest.test_case "cache rows ride summary" `Quick
            test_cache_rows_ride_summary;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_output_independent_of_jobs ]
      );
    ]
