(* Tests for the LISP data plane: map-cache TTL/LRU semantics, flow
   table, and packet forwarding through ITR/ETR with a scripted control
   plane. *)

open Nettypes
open Lispdp

let addr = Ipv4.addr_of_string
let pfx = Ipv4.prefix_of_string

let mapping ?(prefix = "100.0.1.0/24") ?(rloc_addr = "12.0.0.1") ?(ttl = 60.0) () =
  Mapping.create ~eid_prefix:(pfx prefix)
    ~rlocs:[ Mapping.rloc (addr rloc_addr) ]
    ~ttl

(* ------------------------------------------------------------------ *)
(* Map_cache                                                           *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_and_miss () =
  let c = Map_cache.create () in
  Map_cache.insert c ~now:0.0 (mapping ());
  Alcotest.(check bool) "hit inside prefix" true
    (Map_cache.lookup c ~now:1.0 (addr "100.0.1.55") <> None);
  Alcotest.(check bool) "miss outside" true
    (Map_cache.lookup c ~now:1.0 (addr "100.0.2.1") = None);
  let s = Map_cache.stats c in
  Alcotest.(check int) "hits" 1 s.Map_cache.hits;
  Alcotest.(check int) "misses" 1 s.Map_cache.misses;
  Alcotest.(check (float 1e-9)) "hit ratio" 0.5 (Map_cache.hit_ratio c)

let test_cache_ttl_expiry () =
  let c = Map_cache.create () in
  Map_cache.insert c ~now:0.0 (mapping ~ttl:10.0 ());
  Alcotest.(check bool) "live before ttl" true
    (Map_cache.lookup c ~now:9.9 (addr "100.0.1.1") <> None);
  Alcotest.(check bool) "dead after ttl" true
    (Map_cache.lookup c ~now:10.1 (addr "100.0.1.1") = None);
  Alcotest.(check int) "expiration counted" 1
    (Map_cache.stats c).Map_cache.expirations;
  Alcotest.(check int) "entry reaped" 0 (Map_cache.length c)

let test_cache_reinsert_refreshes () =
  let c = Map_cache.create () in
  Map_cache.insert c ~now:0.0 (mapping ~ttl:10.0 ());
  Map_cache.insert c ~now:8.0 (mapping ~ttl:10.0 ());
  Alcotest.(check int) "still one entry" 1 (Map_cache.length c);
  Alcotest.(check bool) "alive thanks to refresh" true
    (Map_cache.lookup c ~now:15.0 (addr "100.0.1.1") <> None)

let test_cache_lru_eviction () =
  let c = Map_cache.create ~capacity:2 () in
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.0/24" ());
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.2.0/24" ());
  (* Touch the first entry so the second becomes LRU. *)
  ignore (Map_cache.lookup c ~now:1.0 (addr "100.0.1.1"));
  Map_cache.insert c ~now:2.0 (mapping ~prefix:"100.0.3.0/24" ());
  Alcotest.(check int) "capacity respected" 2 (Map_cache.length c);
  Alcotest.(check bool) "recently used survives" true
    (Map_cache.contains c ~now:2.0 (addr "100.0.1.1"));
  Alcotest.(check bool) "LRU evicted" false
    (Map_cache.contains c ~now:2.0 (addr "100.0.2.1"));
  Alcotest.(check int) "eviction counted" 1
    (Map_cache.stats c).Map_cache.evictions

let test_cache_longest_prefix () =
  let c = Map_cache.create () in
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.0.0/16" ~rloc_addr:"10.0.0.1" ());
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.0/24" ~rloc_addr:"11.0.0.1" ());
  match Map_cache.lookup c ~now:1.0 (addr "100.0.1.9") with
  | Some m ->
      let r = List.hd m.Mapping.rlocs in
      Alcotest.(check string) "most specific wins" "11.0.0.1"
        (Ipv4.addr_to_string r.Mapping.rloc_addr)
  | None -> Alcotest.fail "expected hit"

let test_cache_remove_and_clear () =
  let c = Map_cache.create () in
  Map_cache.insert c ~now:0.0 (mapping ());
  Map_cache.remove c (pfx "100.0.1.0/24");
  Alcotest.(check int) "removed" 0 (Map_cache.length c);
  Map_cache.insert c ~now:0.0 (mapping ());
  Map_cache.clear c;
  Alcotest.(check int) "cleared" 0 (Map_cache.length c);
  Alcotest.(check bool) "lookup after clear" true
    (Map_cache.lookup c ~now:0.0 (addr "100.0.1.1") = None)

let test_cache_remove_covered () =
  let c = Map_cache.create () in
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.0/24" ());
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.7/32" ());
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.2.0/24" ());
  Alcotest.(check int) "two covered entries removed" 2
    (Map_cache.remove_covered c (pfx "100.0.1.0/24"));
  Alcotest.(check bool) "covered /32 gone" false
    (Map_cache.contains c ~now:0.0 (addr "100.0.1.7"));
  Alcotest.(check bool) "sibling untouched" true
    (Map_cache.contains c ~now:0.0 (addr "100.0.2.1"));
  Alcotest.(check int) "idempotent" 0
    (Map_cache.remove_covered c (pfx "100.0.1.0/24"))

let test_cache_invalidation_stats_and_hook () =
  let c = Map_cache.create () in
  let evicted = ref [] in
  Map_cache.set_evict_hook c
    (Some (fun m -> evicted := m.Mapping.eid_prefix :: !evicted));
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.0/24" ());
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.7/32" ());
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.2.0/24" ());
  Map_cache.remove c (pfx "100.0.2.0/24");
  Alcotest.(check int) "remove counted" 1
    (Map_cache.stats c).Map_cache.invalidations;
  ignore (Map_cache.remove_covered c (pfx "100.0.1.0/24"));
  let s = Map_cache.stats c in
  Alcotest.(check int) "remove_covered counted" 3 s.Map_cache.invalidations;
  Alcotest.(check int) "hook fired per victim" 3 (List.length !evicted);
  Alcotest.(check bool) "hook saw the removed prefix" true
    (List.mem (pfx "100.0.2.0/24") !evicted);
  (* A refresh is silent on both sides of the ledger. *)
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.3.0/24" ());
  let before = Map_cache.stats c in
  let insertions = before.Map_cache.insertions in
  Map_cache.insert c ~now:1.0 (mapping ~prefix:"100.0.3.0/24" ());
  let after = Map_cache.stats c in
  Alcotest.(check int) "refresh not an insertion" insertions
    after.Map_cache.insertions;
  Alcotest.(check int) "refresh not an invalidation" 3
    after.Map_cache.invalidations;
  Alcotest.(check int) "hook silent on refresh" 3 (List.length !evicted)

let test_cache_expire_hook () =
  let c = Map_cache.create () in
  let expired = ref [] in
  let evicted = ref [] in
  Map_cache.set_evict_hook c
    (Some (fun m -> evicted := m.Mapping.eid_prefix :: !evicted));
  Map_cache.set_expire_hook c
    (Some (fun m -> expired := m.Mapping.eid_prefix :: !expired));
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.0/24" ~ttl:10.0 ());
  (* A refresh extends the lease without a death on either hook. *)
  Map_cache.insert c ~now:5.0 (mapping ~prefix:"100.0.1.0/24" ~ttl:10.0 ());
  Alcotest.(check int) "refresh silent" 0 (List.length !expired);
  ignore (Map_cache.lookup c ~now:20.0 (addr "100.0.1.1"));
  Alcotest.(check int) "TTL reap fires expire hook" 1 (List.length !expired);
  Alcotest.(check int) "TTL reap skips evict hook" 0 (List.length !evicted);
  Alcotest.(check bool) "hook saw the reaped prefix" true
    (List.mem (pfx "100.0.1.0/24") !expired);
  Alcotest.(check int) "reap counted as expiration" 1
    (Map_cache.stats c).Map_cache.expirations;
  (* Explicit removal is the evict hook's business, not the expire hook's. *)
  Map_cache.insert c ~now:20.0 (mapping ~prefix:"100.0.2.0/24" ());
  Map_cache.remove c (pfx "100.0.2.0/24");
  Alcotest.(check int) "remove skips expire hook" 1 (List.length !expired);
  Alcotest.(check int) "remove fires evict hook" 1 (List.length !evicted)

let test_cache_clear_resets_stats () =
  let c = Map_cache.create ~capacity:1 () in
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.0/24" ~ttl:1.0 ());
  ignore (Map_cache.lookup c ~now:0.5 (addr "100.0.1.1"));
  ignore (Map_cache.lookup c ~now:2.0 (addr "100.0.1.1"));
  Map_cache.insert c ~now:2.0 (mapping ~prefix:"100.0.2.0/24" ());
  Map_cache.insert c ~now:2.0 (mapping ~prefix:"100.0.3.0/24" ());
  Map_cache.remove c (pfx "100.0.3.0/24");
  Map_cache.clear c;
  let s = Map_cache.stats c in
  Alcotest.(check int) "hits" 0 s.Map_cache.hits;
  Alcotest.(check int) "misses" 0 s.Map_cache.misses;
  Alcotest.(check int) "insertions" 0 s.Map_cache.insertions;
  Alcotest.(check int) "evictions" 0 s.Map_cache.evictions;
  Alcotest.(check int) "expirations" 0 s.Map_cache.expirations;
  Alcotest.(check int) "invalidations" 0 s.Map_cache.invalidations

(* A capacity victim whose TTL already lapsed died of old age, not of
   capacity pressure: it must be booked as an expiration and announced
   on the expire hook, even though the eviction path picked it. *)
let test_cache_expired_tail_attribution () =
  let c = Map_cache.create ~capacity:2 () in
  let expired = ref [] in
  let evicted = ref [] in
  Map_cache.set_evict_hook c
    (Some (fun m -> evicted := m.Mapping.eid_prefix :: !evicted));
  Map_cache.set_expire_hook c
    (Some (fun m -> expired := m.Mapping.eid_prefix :: !expired));
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.0/24" ~ttl:1.0 ());
  Map_cache.insert c ~now:0.5 (mapping ~prefix:"100.0.2.0/24" ~ttl:100.0 ());
  (* Touch the long-lived entry so the short-lived one is the LRU
     tail, then insert past its TTL: the capacity victim is already
     dead. *)
  ignore (Map_cache.lookup c ~now:0.6 (addr "100.0.2.1"));
  Map_cache.insert c ~now:2.0 (mapping ~prefix:"100.0.3.0/24" ());
  let s = Map_cache.stats c in
  Alcotest.(check int) "expired tail booked as expiration" 1
    s.Map_cache.expirations;
  Alcotest.(check int) "not booked as eviction" 0 s.Map_cache.evictions;
  Alcotest.(check (list string)) "expire hook saw it" [ "100.0.1.0/24" ]
    (List.map Ipv4.prefix_to_string !expired);
  Alcotest.(check int) "evict hook silent" 0 (List.length !evicted);
  (* A still-live tail keeps the old attribution. *)
  Map_cache.insert c ~now:2.0 (mapping ~prefix:"100.0.4.0/24" ());
  let s = Map_cache.stats c in
  Alcotest.(check int) "live victim is an eviction" 1 s.Map_cache.evictions;
  Alcotest.(check int) "evict hook fired" 1 (List.length !evicted)

let test_cache_lfu_evicts_least_frequent () =
  let c = Map_cache.create ~policy:Map_cache.Lfu ~capacity:3 () in
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.0/24" ());
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.2.0/24" ());
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.3.0/24" ());
  ignore (Map_cache.lookup c ~now:1.0 (addr "100.0.1.1"));
  ignore (Map_cache.lookup c ~now:1.0 (addr "100.0.1.1"));
  ignore (Map_cache.lookup c ~now:1.0 (addr "100.0.2.1"));
  Map_cache.insert c ~now:2.0 (mapping ~prefix:"100.0.4.0/24" ());
  Alcotest.(check bool) "never-hit entry evicted" false
    (Map_cache.contains c ~now:2.0 (addr "100.0.3.1"));
  Alcotest.(check bool) "hot entry survives" true
    (Map_cache.contains c ~now:2.0 (addr "100.0.1.1"));
  Alcotest.(check bool) "warm entry survives" true
    (Map_cache.contains c ~now:2.0 (addr "100.0.2.1"));
  (* Tie-break inside a frequency class is least-recently-used: the
     newcomer and 100.0.2.0/24 both sit in low classes; hit the
     newcomer so 100.0.2.0/24 is the coldest. *)
  ignore (Map_cache.lookup c ~now:3.0 (addr "100.0.4.1"));
  ignore (Map_cache.lookup c ~now:3.0 (addr "100.0.4.1"));
  Map_cache.insert c ~now:4.0 (mapping ~prefix:"100.0.5.0/24" ());
  Alcotest.(check bool) "lowest class loses" false
    (Map_cache.contains c ~now:4.0 (addr "100.0.2.1"))

let test_cache_ttl_hybrid_evicts_nearest_expiry () =
  let c = Map_cache.create ~policy:Map_cache.Ttl_hybrid ~capacity:2 () in
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.1.0/24" ~ttl:100.0 ());
  Map_cache.insert c ~now:0.0 (mapping ~prefix:"100.0.2.0/24" ~ttl:5.0 ());
  (* Recency must not matter: touch the short-lived entry, it is still
     the one reaped under capacity pressure. *)
  ignore (Map_cache.lookup c ~now:1.0 (addr "100.0.2.1"));
  Map_cache.insert c ~now:1.0 (mapping ~prefix:"100.0.3.0/24" ~ttl:50.0 ());
  Alcotest.(check bool) "nearest-expiry victim" false
    (Map_cache.contains c ~now:1.0 (addr "100.0.2.1"));
  Alcotest.(check bool) "long-lived survives" true
    (Map_cache.contains c ~now:1.0 (addr "100.0.1.1"));
  Alcotest.(check int) "live victim counts as eviction" 1
    (Map_cache.stats c).Map_cache.evictions

let test_cache_policy_of_string () =
  let check s expect =
    Alcotest.(check bool) s true (Map_cache.policy_of_string s = expect)
  in
  check "lru" (Some Map_cache.Lru);
  check "LFU" (Some Map_cache.Lfu);
  check "ttl-hybrid" (Some Map_cache.Ttl_hybrid);
  check "ttl_hybrid" (Some Map_cache.Ttl_hybrid);
  check "ttl" (Some Map_cache.Ttl_hybrid);
  check "random" None;
  Alcotest.(check string) "label roundtrip" "ttl-hybrid"
    (Map_cache.policy_label Map_cache.Ttl_hybrid)

(* Every entry that ever entered the cache is accounted for exactly
   once: still live, capacity-evicted, TTL-reaped, or explicitly
   removed.  With both death hooks installed, the hooks together
   witness exactly the non-live side of that ledger.  Runs under every
   eviction policy, with TTLs short enough that capacity victims are
   frequently already expired (the attribution this PR fixes). *)
let prop_cache_stats_balance policy =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "stats balance (%s): ins = live + evic + exp + inval"
         (Map_cache.policy_label policy))
    ~count:200
    QCheck.(
      pair (int_range 1 6)
        (list_of_size Gen.(1 -- 80)
           (triple (int_bound 3) (int_bound 12) (int_range 1 8))))
    (fun (capacity, ops) ->
      let c = Map_cache.create ~policy ~capacity () in
      let deaths = ref 0 in
      Map_cache.set_evict_hook c (Some (fun _ -> incr deaths));
      Map_cache.set_expire_hook c (Some (fun _ -> incr deaths));
      List.iteri
        (fun i (op, third, ttl) ->
          let now = float_of_int i in
          let prefix = Printf.sprintf "100.0.%d.0/24" third in
          match op with
          | 0 ->
              Map_cache.insert c ~now
                (mapping ~prefix ~ttl:(float_of_int ttl) ())
          | 1 -> ignore (Map_cache.lookup c ~now (addr (Printf.sprintf "100.0.%d.9" third)))
          | 2 -> Map_cache.remove c (pfx prefix)
          | _ -> ignore (Map_cache.remove_covered c (pfx "100.0.0.0/16")))
        ops;
      let s = Map_cache.stats c in
      s.Map_cache.insertions
      = Map_cache.length c + s.Map_cache.evictions + s.Map_cache.expirations
        + s.Map_cache.invalidations
      && !deaths
         = s.Map_cache.evictions + s.Map_cache.expirations
           + s.Map_cache.invalidations)

let prop_cache_never_exceeds_capacity =
  QCheck.Test.make ~name:"cache never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(1 -- 60) (int_bound 200)))
    (fun (capacity, inserts) ->
      let c = Map_cache.create ~capacity () in
      List.iteri
        (fun i third ->
          let prefix = Printf.sprintf "100.0.%d.0/24" (third mod 250) in
          Map_cache.insert c ~now:(float_of_int i) (mapping ~prefix ()))
        inserts;
      Map_cache.length c <= capacity)

(* Provenance only upgrades: a data-packet glean can never displace a
   nonce-checked reply or a registered push — the no-downgrade rule
   that keeps gleaning from being a poisoning primitive. *)
let test_cache_provenance_upgrade_only () =
  let c = Map_cache.create () in
  Map_cache.insert c ~now:0.0 ~provenance:Map_cache.Gleaned
    (mapping ~rloc_addr:"12.0.0.1" ());
  Alcotest.(check (option string)) "gleaned" (Some "gleaned")
    (Option.map Map_cache.provenance_label
       (Map_cache.provenance_of c (pfx "100.0.1.0/24")));
  Alcotest.(check int) "one gleaned entry" 1 (Map_cache.gleaned c);
  (* A verified reply takes the line over. *)
  Map_cache.insert c ~now:1.0 ~provenance:Map_cache.Verified
    (mapping ~rloc_addr:"13.0.0.1" ());
  Alcotest.(check (option string)) "upgraded" (Some "verified")
    (Option.map Map_cache.provenance_label
       (Map_cache.provenance_of c (pfx "100.0.1.0/24")));
  Alcotest.(check int) "no longer gleaned" 0 (Map_cache.gleaned c);
  (* A later glean (forged source field, say) is ignored outright: the
     verified RLOC stays. *)
  Map_cache.insert c ~now:2.0 ~provenance:Map_cache.Gleaned
    (mapping ~rloc_addr:"66.0.0.1" ());
  (match Map_cache.lookup c ~now:2.0 (addr "100.0.1.1") with
  | Some m ->
      Alcotest.(check string) "verified rloc kept" "13.0.0.1"
        (Ipv4.addr_to_string (List.hd m.Mapping.rlocs).Mapping.rloc_addr)
  | None -> Alcotest.fail "entry lost");
  Alcotest.(check (option string)) "still verified" (Some "verified")
    (Option.map Map_cache.provenance_label
       (Map_cache.provenance_of c (pfx "100.0.1.0/24")));
  (* Pushed over gleaned upgrades too. *)
  Map_cache.insert c ~now:3.0 ~provenance:Map_cache.Gleaned
    (mapping ~prefix:"100.0.2.0/24" ());
  Map_cache.insert c ~now:4.0 ~provenance:Map_cache.Pushed
    (mapping ~prefix:"100.0.2.0/24" ());
  Alcotest.(check (option string)) "pushed upgrade" (Some "pushed")
    (Option.map Map_cache.provenance_label
       (Map_cache.provenance_of c (pfx "100.0.2.0/24")))

let test_cache_glean_cap_rejects () =
  let c = Map_cache.create ~glean_cap:2 () in
  let rejected = ref 0 in
  Map_cache.set_reject_hook c (Some (fun _ -> incr rejected));
  Alcotest.(check (option int)) "cap recorded" (Some 2) (Map_cache.glean_cap c);
  Map_cache.insert c ~now:0.0 ~provenance:Map_cache.Gleaned
    (mapping ~prefix:"100.0.1.0/24" ());
  Map_cache.insert c ~now:0.0 ~provenance:Map_cache.Gleaned
    (mapping ~prefix:"100.0.2.0/24" ());
  (* Third brand-new glean bounces off the quota... *)
  Map_cache.insert c ~now:0.0 ~provenance:Map_cache.Gleaned
    (mapping ~prefix:"100.0.3.0/24" ());
  Alcotest.(check int) "bounced" 1 (Map_cache.stats c).Map_cache.glean_rejections;
  Alcotest.(check int) "hook saw it" 1 !rejected;
  Alcotest.(check int) "population bounded" 2 (Map_cache.gleaned c);
  Alcotest.(check bool) "never cached" false
    (Map_cache.contains c ~now:0.0 (addr "100.0.3.1"));
  (* ...but refreshing a live gleaned line is not an admission... *)
  Map_cache.insert c ~now:1.0 ~provenance:Map_cache.Gleaned
    (mapping ~prefix:"100.0.1.0/24" ());
  Alcotest.(check int) "refresh admitted" 1
    (Map_cache.stats c).Map_cache.glean_rejections;
  (* ...and the cap never binds verified/pushed entries. *)
  Map_cache.insert c ~now:1.0 (mapping ~prefix:"100.0.3.0/24" ());
  Alcotest.(check bool) "verified admitted" true
    (Map_cache.contains c ~now:1.0 (addr "100.0.3.1"));
  Alcotest.(check int) "three live entries" 3 (Map_cache.length c);
  (* Rejections are not part of the insertion balance: a refused
     mapping was never cached. *)
  let s = Map_cache.stats c in
  Alcotest.(check int) "balance holds" s.Map_cache.insertions
    (Map_cache.length c + s.Map_cache.evictions + s.Map_cache.expirations
    + s.Map_cache.invalidations)

(* The gleaned population never exceeds the cap, and the insertion
   ledger still balances with rejections kept out of it. *)
let prop_cache_glean_cap_bound =
  QCheck.Test.make ~name:"glean cap bounds gleaned population" ~count:200
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(1 -- 60) (pair bool (int_bound 12))))
    (fun (cap, ops) ->
      let c = Map_cache.create ~capacity:8 ~glean_cap:cap () in
      List.iteri
        (fun i (gleaned, third) ->
          let provenance =
            if gleaned then Map_cache.Gleaned else Map_cache.Verified
          in
          Map_cache.insert c ~now:(float_of_int i) ~provenance
            (mapping ~prefix:(Printf.sprintf "100.0.%d.0/24" third) ()))
        ops;
      let s = Map_cache.stats c in
      Map_cache.gleaned c <= cap
      && s.Map_cache.insertions
         = Map_cache.length c + s.Map_cache.evictions + s.Map_cache.expirations
           + s.Map_cache.invalidations)

(* ------------------------------------------------------------------ *)
(* Flow_table                                                          *)
(* ------------------------------------------------------------------ *)

let entry ?(src = "100.0.0.1") ?(dst = "100.0.1.1") ?(src_rloc = "10.0.0.1")
    ?(dst_rloc = "12.0.0.1") () =
  { Mapping.src_eid = addr src; dst_eid = addr dst; src_rloc = addr src_rloc;
    dst_rloc = addr dst_rloc }

let test_flow_table_roundtrip () =
  let t = Flow_table.create () in
  Flow_table.install t ~now:0.0 (entry ());
  (match
     Flow_table.lookup t ~now:1.0 ~src_eid:(addr "100.0.0.1")
       ~dst_eid:(addr "100.0.1.1")
   with
  | Some e ->
      Alcotest.(check string) "src rloc" "10.0.0.1"
        (Ipv4.addr_to_string e.Mapping.src_rloc)
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check bool) "exact match only" true
    (Flow_table.lookup t ~now:1.0 ~src_eid:(addr "100.0.0.2")
       ~dst_eid:(addr "100.0.1.1")
    = None)

let test_flow_table_expiry () =
  let t = Flow_table.create ~ttl:10.0 () in
  Flow_table.install t ~now:0.0 (entry ());
  Alcotest.(check bool) "live" true
    (Flow_table.lookup t ~now:9.0 ~src_eid:(addr "100.0.0.1")
       ~dst_eid:(addr "100.0.1.1")
    <> None);
  Alcotest.(check bool) "expired" true
    (Flow_table.lookup t ~now:11.0 ~src_eid:(addr "100.0.0.1")
       ~dst_eid:(addr "100.0.1.1")
    = None)

let test_flow_table_update_src_rloc () =
  let t = Flow_table.create () in
  Flow_table.install t ~now:0.0 (entry ());
  Alcotest.(check bool) "update succeeds" true
    (Flow_table.update_src_rloc t ~now:1.0 ~src_eid:(addr "100.0.0.1")
       ~dst_eid:(addr "100.0.1.1") ~rloc:(addr "11.0.0.1"));
  (match
     Flow_table.lookup t ~now:1.0 ~src_eid:(addr "100.0.0.1")
       ~dst_eid:(addr "100.0.1.1")
   with
  | Some e ->
      Alcotest.(check string) "rewritten" "11.0.0.1"
        (Ipv4.addr_to_string e.Mapping.src_rloc)
  | None -> Alcotest.fail "entry vanished");
  Alcotest.(check bool) "update of absent entry fails" false
    (Flow_table.update_src_rloc t ~now:1.0 ~src_eid:(addr "1.1.1.1")
       ~dst_eid:(addr "2.2.2.2") ~rloc:(addr "11.0.0.1"))

let test_flow_table_iter_live_only () =
  let t = Flow_table.create ~ttl:10.0 () in
  Flow_table.install t ~now:0.0 (entry ~src:"100.0.0.1" ());
  Flow_table.install t ~now:5.0 (entry ~src:"100.0.0.2" ());
  let seen = ref 0 in
  Flow_table.iter t ~now:12.0 ~f:(fun _ -> incr seen);
  Alcotest.(check int) "only the fresh entry" 1 !seen

(* Regression (issue 7): [length] and [iter] used to count slots that
   had expired but not yet been reaped, so router-state accounting
   drifted upward between lookups.  Both now reap expired slots as
   they walk. *)
let test_flow_table_length_reaps_expired () =
  let t = Flow_table.create ~ttl:10.0 () in
  for i = 1 to 8 do
    Flow_table.install t ~now:0.0 (entry ~src:(Printf.sprintf "100.0.0.%d" i) ())
  done;
  Flow_table.install t ~now:6.0 (entry ~src:"100.0.0.99" ());
  Alcotest.(check int) "all live before ttl" 9 (Flow_table.length t ~now:5.0);
  (* The first eight expired at t=10; only the late install survives. *)
  Alcotest.(check int) "expired slots not counted" 1
    (Flow_table.length t ~now:12.0);
  let visited = ref [] in
  Flow_table.iter t ~now:12.0 ~f:(fun e ->
      visited := Ipv4.addr_to_string e.Mapping.src_eid :: !visited);
  Alcotest.(check (list string)) "iter skips expired" [ "100.0.0.99" ] !visited;
  (* Reaped slots are really gone: the survivor is still found and the
     expired keys can be re-installed cleanly. *)
  Alcotest.(check bool) "survivor still resolvable" true
    (Flow_table.lookup t ~now:12.0 ~src_eid:(addr "100.0.0.99")
       ~dst_eid:(addr "100.0.1.1")
    <> None);
  Flow_table.install t ~now:12.0 (entry ~src:"100.0.0.1" ());
  Alcotest.(check int) "reinstall after reap" 2 (Flow_table.length t ~now:13.0)

(* ------------------------------------------------------------------ *)
(* Dataplane with a scripted control plane                             *)
(* ------------------------------------------------------------------ *)

type script = {
  mutable misses : (Ipv4.addr * string) list;
  mutable etr_notes : (Ipv4.addr option * int) list;
  mutable decision : Dataplane.miss_decision;
}

let make_world
    ?(decision = Dataplane.Miss_drop Netsim.Telemetry.Mapping_resolution_drop)
    () =
  let engine = Netsim.Engine.create () in
  let internet = Topology.Builder.figure1 () in
  let script = { misses = []; etr_notes = []; decision } in
  let control_plane =
    { Dataplane.cp_name = "scripted";
      cp_choose_egress =
        (fun ~src_domain flow ->
          src_domain.Topology.Domain.borders.(Flow.hash flow
                                              mod Array.length
                                                    src_domain
                                                      .Topology.Domain.borders));
      cp_handle_miss =
        (fun router packet ->
          script.misses <-
            (packet.Packet.flow.Flow.dst,
             router.Dataplane.router_domain.Topology.Domain.name)
            :: script.misses;
          script.decision);
      cp_note_etr_packet =
        (fun router ~outer_src _packet ->
          script.etr_notes <-
            (outer_src, router.Dataplane.router_domain.Topology.Domain.id)
            :: script.etr_notes) }
  in
  let dp = Dataplane.create ~engine ~internet ~control_plane () in
  (engine, internet, dp, script)

let flow_between internet =
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  Flow.create
    ~src:(Topology.Domain.host_eid as_s 0)
    ~dst:(Topology.Domain.host_eid as_d 0)
    ~src_port:1000 ()

let test_dataplane_miss_goes_to_cp () =
  let engine, internet, dp, script = make_world () in
  let flow = flow_between internet in
  let packet = Packet.make ~flow ~segment:Packet.Syn ~sent_at:0.0 in
  Dataplane.send_from_host dp packet;
  Netsim.Engine.run engine;
  Alcotest.(check int) "one miss" 1 (List.length script.misses);
  let counters = Dataplane.counters dp in
  Alcotest.(check int) "dropped" 1 counters.Dataplane.dropped;
  Alcotest.(check int) "not delivered" 0 counters.Dataplane.delivered;
  Alcotest.(check (list (pair string int))) "drop causes"
    [ ("mapping-resolution-drop", 1) ]
    (Dataplane.drop_causes dp)

let test_dataplane_mapping_delivery () =
  let engine, internet, dp, _script = make_world () in
  let as_d = internet.Topology.Builder.domains.(1) in
  let flow = flow_between internet in
  (* Install the destination mapping everywhere in AS_S. *)
  let m = Topology.Domain.advertised_mapping as_d ~ttl:60.0 in
  Dataplane.install_mapping_all dp internet.Topology.Builder.domains.(0) m;
  let received = ref [] in
  Dataplane.set_host_receiver dp flow.Flow.dst
    (Some (fun p -> received := p :: !received));
  let packet = Packet.make ~flow ~segment:Packet.Syn ~sent_at:0.0 in
  Dataplane.send_from_host dp packet;
  Netsim.Engine.run engine;
  Alcotest.(check int) "delivered to host" 1 (List.length !received);
  (match !received with
  | [ p ] ->
      Alcotest.(check bool) "decapsulated before delivery" false
        (Packet.is_encapsulated p)
  | _ -> ());
  let counters = Dataplane.counters dp in
  Alcotest.(check int) "one encap" 1 counters.Dataplane.encapsulated;
  Alcotest.(check int) "one decap" 1 counters.Dataplane.decapsulated;
  Alcotest.(check int) "no drops" 0 counters.Dataplane.dropped;
  Alcotest.(check bool) "delivery took network time" true
    (Netsim.Engine.now engine > 0.02)

let test_dataplane_flow_entry_overrides_src () =
  let engine, internet, dp, script = make_world () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let flow = flow_between internet in
  (* Flow entry directs reverse traffic through border 1 of AS_S even
     though any ITR may forward. *)
  let e =
    { Mapping.src_eid = flow.Flow.src; dst_eid = flow.Flow.dst;
      src_rloc = as_s.Topology.Domain.borders.(1).Topology.Domain.rloc;
      dst_rloc = as_d.Topology.Domain.borders.(1).Topology.Domain.rloc }
  in
  Dataplane.install_flow_entry_all dp as_s e;
  let packet = Packet.make ~flow ~segment:Packet.Syn ~sent_at:0.0 in
  Dataplane.send_from_host dp packet;
  Netsim.Engine.run engine;
  (* The ETR note must carry the overridden outer source. *)
  match script.etr_notes with
  | [ (Some outer_src, domain_id) ] ->
      Alcotest.(check int) "arrived in AS_D" 1 domain_id;
      Alcotest.(check string) "outer src is the flow entry's RLOC_S"
        (Ipv4.addr_to_string as_s.Topology.Domain.borders.(1).Topology.Domain.rloc)
        (Ipv4.addr_to_string outer_src)
  | _ -> Alcotest.fail "expected exactly one tunneled arrival"

let test_dataplane_intra_domain_bypasses_lisp () =
  let engine, internet, dp, script = make_world () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let flow =
    Flow.create
      ~src:(Topology.Domain.host_eid as_s 0)
      ~dst:(Topology.Domain.host_eid as_s 1)
      ()
  in
  let got = ref 0 in
  Dataplane.set_host_receiver dp flow.Flow.dst (Some (fun _ -> incr got));
  Dataplane.send_from_host dp (Packet.make ~flow ~segment:Packet.Syn ~sent_at:0.0);
  Netsim.Engine.run engine;
  Alcotest.(check int) "delivered locally" 1 !got;
  Alcotest.(check int) "no CP involvement" 0 (List.length script.misses);
  let counters = Dataplane.counters dp in
  Alcotest.(check int) "intra-domain counted" 1 counters.Dataplane.intra_domain;
  Alcotest.(check int) "no encapsulation" 0 counters.Dataplane.encapsulated

let test_dataplane_hold_and_retransmit () =
  let engine, internet, dp, script = make_world ~decision:Dataplane.Miss_hold () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let flow = flow_between internet in
  let received = ref 0 in
  Dataplane.set_host_receiver dp flow.Flow.dst (Some (fun _ -> incr received));
  let packet = Packet.make ~flow ~segment:Packet.Syn ~sent_at:0.0 in
  Dataplane.send_from_host dp packet;
  Netsim.Engine.run engine;
  Alcotest.(check int) "held, not dropped" 1 (Dataplane.counters dp).Dataplane.held;
  (* The control plane later installs the mapping and retransmits. *)
  let m = Topology.Domain.advertised_mapping as_d ~ttl:60.0 in
  let router =
    Dataplane.router_for_border dp
      (match script.misses with
      | [ _ ] ->
          (* Recover the ITR that reported the miss via egress choice. *)
          as_s.Topology.Domain.borders.(Flow.hash flow
                                        mod Array.length as_s.Topology.Domain.borders)
      | _ -> Alcotest.fail "expected one miss")
  in
  Dataplane.install_mapping dp router m;
  Dataplane.transmit_from_itr dp router packet;
  Netsim.Engine.run engine;
  Alcotest.(check int) "delivered after retransmit" 1 !received;
  Alcotest.(check int) "no drops" 0 (Dataplane.counters dp).Dataplane.dropped

let test_dataplane_post_resolution_miss_drops () =
  let engine, internet, dp, _script = make_world ~decision:Dataplane.Miss_hold () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let flow = flow_between internet in
  let packet = Packet.make ~flow ~segment:Packet.Syn ~sent_at:0.0 in
  let router = Dataplane.router_for_border dp as_s.Topology.Domain.borders.(0) in
  Dataplane.transmit_from_itr dp router packet;
  Netsim.Engine.run engine;
  Alcotest.(check (list (pair string int))) "post-resolution drop"
    [ ("post-resolution-miss", 1) ]
    (Dataplane.drop_causes dp)

let test_dataplane_deliver_via () =
  let engine, internet, dp, _script = make_world () in
  let as_d = internet.Topology.Builder.domains.(1) in
  let flow = flow_between internet in
  let received_at = ref None in
  Dataplane.set_host_receiver dp flow.Flow.dst
    (Some (fun _ -> received_at := Some (Netsim.Engine.now engine)));
  let packet = Packet.make ~flow ~segment:Packet.Syn ~sent_at:0.0 in
  let etr = Dataplane.router_for_border dp as_d.Topology.Domain.borders.(0) in
  Dataplane.deliver_via dp etr packet ~extra_delay:0.25;
  Netsim.Engine.run engine;
  match !received_at with
  | Some at -> Alcotest.(check bool) "detour delay applied" true (at >= 0.25)
  | None -> Alcotest.fail "packet never delivered"

let test_dataplane_uplink_accounting () =
  let engine, internet, dp, _script = make_world () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  let flow = flow_between internet in
  Dataplane.install_mapping_all dp as_s
    (Topology.Domain.advertised_mapping as_d ~ttl:60.0);
  Dataplane.set_host_receiver dp flow.Flow.dst (Some ignore);
  Dataplane.send_from_host dp
    (Packet.make ~flow ~segment:(Packet.Data 1000) ~sent_at:0.0);
  Netsim.Engine.run engine;
  (* Exactly one AS_S uplink carried the (encapsulated) bytes out. *)
  let out_bytes =
    Array.map
      (fun b ->
        Topology.Link.bytes_from b.Topology.Domain.uplink
          b.Topology.Domain.router)
      as_s.Topology.Domain.borders
  in
  let total = Array.fold_left ( + ) 0 out_bytes in
  Alcotest.(check int) "encapsulated size on the uplink" (40 + 1000 + 36) total

let () =
  Alcotest.run "lispdp"
    [
      ( "map_cache",
        [
          Alcotest.test_case "hit and miss" `Quick test_cache_hit_and_miss;
          Alcotest.test_case "ttl expiry" `Quick test_cache_ttl_expiry;
          Alcotest.test_case "reinsert refreshes" `Quick test_cache_reinsert_refreshes;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "longest prefix" `Quick test_cache_longest_prefix;
          Alcotest.test_case "remove and clear" `Quick test_cache_remove_and_clear;
          Alcotest.test_case "remove covered" `Quick test_cache_remove_covered;
          Alcotest.test_case "invalidation stats and hook" `Quick
            test_cache_invalidation_stats_and_hook;
          Alcotest.test_case "expire hook" `Quick test_cache_expire_hook;
          Alcotest.test_case "clear resets stats" `Quick
            test_cache_clear_resets_stats;
          Alcotest.test_case "expired tail attribution" `Quick
            test_cache_expired_tail_attribution;
          Alcotest.test_case "lfu evicts least frequent" `Quick
            test_cache_lfu_evicts_least_frequent;
          Alcotest.test_case "ttl-hybrid evicts nearest expiry" `Quick
            test_cache_ttl_hybrid_evicts_nearest_expiry;
          Alcotest.test_case "policy of string" `Quick
            test_cache_policy_of_string;
          Alcotest.test_case "provenance upgrade only" `Quick
            test_cache_provenance_upgrade_only;
          Alcotest.test_case "glean cap rejects" `Quick
            test_cache_glean_cap_rejects;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "roundtrip" `Quick test_flow_table_roundtrip;
          Alcotest.test_case "expiry" `Quick test_flow_table_expiry;
          Alcotest.test_case "update src rloc" `Quick test_flow_table_update_src_rloc;
          Alcotest.test_case "iter live only" `Quick test_flow_table_iter_live_only;
          Alcotest.test_case "length reaps expired" `Quick
            test_flow_table_length_reaps_expired;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "miss to cp" `Quick test_dataplane_miss_goes_to_cp;
          Alcotest.test_case "mapping delivery" `Quick test_dataplane_mapping_delivery;
          Alcotest.test_case "flow entry src override" `Quick test_dataplane_flow_entry_overrides_src;
          Alcotest.test_case "intra-domain" `Quick test_dataplane_intra_domain_bypasses_lisp;
          Alcotest.test_case "hold and retransmit" `Quick test_dataplane_hold_and_retransmit;
          Alcotest.test_case "post-resolution miss" `Quick test_dataplane_post_resolution_miss_drops;
          Alcotest.test_case "deliver via" `Quick test_dataplane_deliver_via;
          Alcotest.test_case "uplink accounting" `Quick test_dataplane_uplink_accounting;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cache_never_exceeds_capacity;
            prop_cache_glean_cap_bound;
            prop_cache_stats_balance Map_cache.Lru;
            prop_cache_stats_balance Map_cache.Lfu;
            prop_cache_stats_balance Map_cache.Ttl_hybrid ] );
    ]
