(* Tests for the baseline mapping systems: the ALT overlay model, the
   registry, and the pull / NERD / CONS control planes driven end-to-end
   through the data plane. *)

open Nettypes

(* ------------------------------------------------------------------ *)
(* Alt                                                                 *)
(* ------------------------------------------------------------------ *)

let test_alt_geometry () =
  let alt = Mapsys.Alt.create ~domains:8 ~fanout:2 ~hop_latency:0.02 () in
  Alcotest.(check int) "depth of 8 leaves" 3 (Mapsys.Alt.depth alt);
  Alcotest.(check int) "self" 0 (Mapsys.Alt.request_hops alt ~src:3 ~dst:3);
  Alcotest.(check int) "siblings" 2 (Mapsys.Alt.request_hops alt ~src:0 ~dst:1);
  Alcotest.(check int) "opposite halves" 6 (Mapsys.Alt.request_hops alt ~src:0 ~dst:7);
  Alcotest.(check (float 1e-9)) "latency scales with hops" 0.12
    (Mapsys.Alt.request_latency alt ~src:0 ~dst:7)

let test_alt_symmetry () =
  let alt = Mapsys.Alt.create ~domains:16 ~fanout:4 () in
  for i = 0 to 15 do
    for j = 0 to 15 do
      Alcotest.(check int) "symmetric hops"
        (Mapsys.Alt.request_hops alt ~src:i ~dst:j)
        (Mapsys.Alt.request_hops alt ~src:j ~dst:i)
    done
  done

let test_alt_nonpower_domains () =
  let alt = Mapsys.Alt.create ~domains:5 ~fanout:2 () in
  Alcotest.(check int) "depth covers 5 leaves" 3 (Mapsys.Alt.depth alt);
  Alcotest.(check bool) "mean latency positive" true
    (Mapsys.Alt.mean_request_latency alt > 0.0)

let test_alt_usage_counters () =
  let alt = Mapsys.Alt.create ~domains:4 () in
  Mapsys.Alt.note_request alt ~src:0 ~dst:3;
  Mapsys.Alt.note_request alt ~src:0 ~dst:1;
  let u = Mapsys.Alt.usage alt in
  Alcotest.(check int) "requests" 2 u.Mapsys.Alt.requests;
  Alcotest.(check int) "hops total" 6 u.Mapsys.Alt.hops_total

let test_alt_validation () =
  (match Mapsys.Alt.create ~domains:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains=0 accepted");
  let alt = Mapsys.Alt.create ~domains:4 () in
  match Mapsys.Alt.request_hops alt ~src:0 ~dst:9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range leaf accepted"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_lookup () =
  let internet = Topology.Builder.figure1 () in
  let registry = Mapsys.Registry.create ~internet ~ttl:60.0 in
  Alcotest.(check int) "one mapping per domain" 2 (Mapsys.Registry.size registry);
  let as_d = internet.Topology.Builder.domains.(1) in
  let eid = Topology.Domain.host_eid as_d 0 in
  (match Mapsys.Registry.mapping_for_eid registry eid with
  | Some m ->
      Alcotest.(check bool) "covers the eid" true (Mapping.covers m eid);
      Alcotest.(check int) "both borders advertised" 2 (List.length m.Mapping.rlocs)
  | None -> Alcotest.fail "mapping not found");
  Alcotest.(check bool) "unknown eid" true
    (Mapsys.Registry.mapping_for_eid registry (Ipv4.addr_of_string "9.9.9.9") = None)

let test_registry_update () =
  let internet = Topology.Builder.figure1 () in
  let registry = Mapsys.Registry.create ~internet ~ttl:60.0 in
  let as_d = internet.Topology.Builder.domains.(1) in
  let replacement =
    Mapping.create ~eid_prefix:as_d.Topology.Domain.eid_prefix
      ~rlocs:[ Mapping.rloc as_d.Topology.Domain.borders.(1).Topology.Domain.rloc ]
      ~ttl:60.0
  in
  Mapsys.Registry.update_mapping registry 1 replacement;
  match Mapsys.Registry.mapping_for_eid registry (Topology.Domain.host_eid as_d 0) with
  | Some m -> Alcotest.(check int) "replaced" 1 (List.length m.Mapping.rlocs)
  | None -> Alcotest.fail "mapping lost on update"

let test_registry_wire_bytes () =
  let internet = Topology.Builder.figure1 () in
  let registry = Mapsys.Registry.create ~internet ~ttl:60.0 in
  (* Database_push header (1 tag + 2 count) plus two mappings of
     (4 net + 1 len + 4 ttl + 1 count + 2 * 6 rloc) = 22 bytes each. *)
  Alcotest.(check int) "database bytes" 47 (Mapsys.Registry.total_wire_bytes registry);
  (* The accounting matches a real encoding. *)
  let mappings = [ Mapsys.Registry.mapping_of_domain registry 0;
                   Mapsys.Registry.mapping_of_domain registry 1 ] in
  Alcotest.(check int) "matches encode" 
    (Bytes.length (Wire.Codec.encode (Wire.Codec.Database_push { mappings })))
    (Mapsys.Registry.total_wire_bytes registry)

(* ------------------------------------------------------------------ *)
(* End-to-end harness over the real dataplane                          *)
(* ------------------------------------------------------------------ *)

type world = {
  engine : Netsim.Engine.t;
  internet : Topology.Builder.t;
  dataplane : Lispdp.Dataplane.t;
  stats : unit -> Mapsys.Cp_stats.t;
}

let make_pull_world ?(mode = Mapsys.Pull.Drop_while_pending) ?(hop_latency = 0.020)
    ?adversary ?auth ?nonce_rng () =
  let engine = Netsim.Engine.create () in
  let internet = Topology.Builder.figure1 () in
  let registry = Mapsys.Registry.create ~internet ~ttl:60.0 in
  let alt = Mapsys.Alt.create ~domains:2 ~hop_latency () in
  let pull =
    Mapsys.Pull.create ~engine ~internet ~registry ~alt ~mode ?adversary ?auth
      ?nonce_rng ()
  in
  let dataplane =
    Lispdp.Dataplane.create ~engine ~internet
      ~control_plane:(Mapsys.Pull.control_plane pull) ()
  in
  Mapsys.Pull.attach pull dataplane;
  { engine; internet; dataplane; stats = (fun () -> Mapsys.Pull.stats pull) }

let make_nerd_world () =
  let engine = Netsim.Engine.create () in
  let internet = Topology.Builder.figure1 () in
  let registry = Mapsys.Registry.create ~internet ~ttl:60.0 in
  let nerd = Mapsys.Nerd.create ~engine ~internet ~registry () in
  let dataplane =
    Lispdp.Dataplane.create ~engine ~internet
      ~control_plane:(Mapsys.Nerd.control_plane nerd) ()
  in
  Mapsys.Nerd.attach nerd dataplane;
  (nerd, { engine; internet; dataplane; stats = (fun () -> Mapsys.Nerd.stats nerd) })

let world_flow w ~port =
  let as_s = w.internet.Topology.Builder.domains.(0) in
  let as_d = w.internet.Topology.Builder.domains.(1) in
  Flow.create
    ~src:(Topology.Domain.host_eid as_s 0)
    ~dst:(Topology.Domain.host_eid as_d 0)
    ~src_port:port ()

let send w flow segment =
  Lispdp.Dataplane.send_from_host w.dataplane
    (Nettypes.Packet.make ~flow ~segment ~sent_at:(Netsim.Engine.now w.engine))

(* ------------------------------------------------------------------ *)
(* Pull                                                                *)
(* ------------------------------------------------------------------ *)

let test_pull_drop_first_packet () =
  let w = make_pull_world () in
  let flow = world_flow w ~port:1000 in
  let received = ref 0 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst
    (Some (fun _ -> incr received));
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "first packet dropped" 0 !received;
  Alcotest.(check int) "one map request" 1 (w.stats ()).Mapsys.Cp_stats.map_requests;
  Alcotest.(check int) "one map reply" 1 (w.stats ()).Mapsys.Cp_stats.map_replies;
  (* After the resolution, the mapping is cached: the next packet flows. *)
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "second packet delivered" 1 !received;
  Alcotest.(check int) "no extra request" 1 (w.stats ()).Mapsys.Cp_stats.map_requests

let test_pull_queue_releases () =
  let w = make_pull_world ~mode:(Mapsys.Pull.Queue_while_pending 8) () in
  let flow = world_flow w ~port:1001 in
  let received = ref 0 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst
    (Some (fun _ -> incr received));
  send w flow Packet.Syn;
  send w flow (Packet.Data 500);
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "both queued packets delivered" 2 !received;
  Alcotest.(check int) "no drops"
    0 (Lispdp.Dataplane.counters w.dataplane).Lispdp.Dataplane.dropped

let test_pull_queue_overflow () =
  let w = make_pull_world ~mode:(Mapsys.Pull.Queue_while_pending 2) () in
  let flow = world_flow w ~port:1002 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst (Some ignore);
  for _ = 1 to 5 do
    send w flow (Packet.Data 100)
  done;
  Netsim.Engine.run w.engine;
  let causes = Lispdp.Dataplane.drop_causes w.dataplane in
  Alcotest.(check (option int)) "overflow drops" (Some 3)
    (List.assoc_opt "resolution-queue-overflow" causes)

let test_pull_detour_delivers_slowly () =
  (* A deliberately slow overlay so the native path is clearly faster. *)
  let w = make_pull_world ~mode:Mapsys.Pull.Detour_via_cp ~hop_latency:0.1 () in
  let flow = world_flow w ~port:1003 in
  let received_at = ref [] in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst
    (Some (fun _ -> received_at := Netsim.Engine.now w.engine :: !received_at));
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "delivered via the overlay" 1 (List.length !received_at);
  Alcotest.(check int) "counted as detour" 1
    (w.stats ()).Mapsys.Cp_stats.detoured_packets;
  Alcotest.(check int) "no drops"
    0 (Lispdp.Dataplane.counters w.dataplane).Lispdp.Dataplane.dropped;
  (* A post-resolution packet goes natively and therefore faster. *)
  let t_first = List.hd !received_at in
  let before = Netsim.Engine.now w.engine in
  send w flow (Packet.Data 100);
  Netsim.Engine.run w.engine;
  (match !received_at with
  | [ t_second; _ ] ->
      Alcotest.(check bool) "native faster than overlay" true
        (t_second -. before < t_first)
  | _ -> Alcotest.fail "expected two deliveries");
  ignore t_first

let test_pull_pending_coalesced () =
  let w = make_pull_world () in
  let as_s = w.internet.Topology.Builder.domains.(0) in
  let as_d = w.internet.Topology.Builder.domains.(1) in
  (* Two flows from the same host to the same remote domain that hash to
     the same ITR must share one resolution. *)
  let base =
    Flow.create
      ~src:(Topology.Domain.host_eid as_s 0)
      ~dst:(Topology.Domain.host_eid as_d 0)
      ~src_port:0 ()
  in
  let same_itr_ports =
    let borders = Array.length as_s.Topology.Domain.borders in
    let target = Flow.hash base mod borders in
    List.filter
      (fun p -> Flow.hash { base with Flow.src_port = p } mod borders = target)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  (match same_itr_ports with
  | p1 :: p2 :: _ ->
      send w { base with Flow.src_port = p1 } Packet.Syn;
      send w { base with Flow.src_port = p2 } Packet.Syn
  | _ -> Alcotest.fail "could not find two flows on the same ITR");
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "single coalesced request" 1
    (w.stats ()).Mapsys.Cp_stats.map_requests

let test_pull_symmetric_return () =
  let w = make_pull_world ~mode:(Mapsys.Pull.Queue_while_pending 8) () in
  let flow = world_flow w ~port:1004 in
  let reverse = Flow.reverse flow in
  (* Forward packet establishes the glean; observe the reverse path. *)
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst (Some ignore);
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.src (Some ignore);
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  (* Reverse traffic must not trigger a resolution: glean covers it. *)
  let requests_before = (w.stats ()).Mapsys.Cp_stats.map_requests in
  Lispdp.Dataplane.send_from_host w.dataplane
    (Packet.make ~flow:reverse ~segment:Packet.Syn_ack
       ~sent_at:(Netsim.Engine.now w.engine));
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "no reverse resolution" requests_before
    (w.stats ()).Mapsys.Cp_stats.map_requests;
  Alcotest.(check int) "nothing dropped"
    0 (Lispdp.Dataplane.counters w.dataplane).Lispdp.Dataplane.dropped

(* ------------------------------------------------------------------ *)
(* NERD                                                                *)
(* ------------------------------------------------------------------ *)

let test_nerd_no_misses () =
  let nerd, w = make_nerd_world () in
  let flow = world_flow w ~port:2000 in
  let received = ref 0 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst
    (Some (fun _ -> incr received));
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "first packet delivered" 1 !received;
  Alcotest.(check int) "no drops"
    0 (Lispdp.Dataplane.counters w.dataplane).Lispdp.Dataplane.dropped;
  Alcotest.(check int) "full DB at each router" 2
    (Mapsys.Nerd.database_entries_per_router nerd)

let test_nerd_push_cost () =
  let nerd, w = make_nerd_world () in
  ignore w;
  let s = Mapsys.Nerd.stats nerd in
  (* 4 routers, one full-DB push each. *)
  Alcotest.(check int) "push messages" 4 s.Mapsys.Cp_stats.push_messages;
  Alcotest.(check int) "push bytes" (4 * 47) s.Mapsys.Cp_stats.control_bytes

let test_nerd_update_propagation () =
  let nerd, w = make_nerd_world () in
  let as_d = w.internet.Topology.Builder.domains.(1) in
  let flow = world_flow w ~port:2001 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst (Some ignore);
  (* Move AS_D entirely behind its second border. *)
  let updated =
    Mapping.create ~eid_prefix:as_d.Topology.Domain.eid_prefix
      ~rlocs:[ Mapping.rloc as_d.Topology.Domain.borders.(1).Topology.Domain.rloc ]
      ~ttl:60.0
  in
  Mapsys.Nerd.push_update nerd ~domain:1 updated;
  Netsim.Engine.run w.engine;
  (* After propagation every ITR tunnels to border 1 only. *)
  send w flow (Packet.Data 100);
  Netsim.Engine.run w.engine;
  let b1_bytes =
    Topology.Link.bytes_from as_d.Topology.Domain.borders.(1).Topology.Domain.uplink
      (Topology.Link.other_end
         as_d.Topology.Domain.borders.(1).Topology.Domain.uplink
         as_d.Topology.Domain.borders.(1).Topology.Domain.router)
  in
  Alcotest.(check bool) "traffic entered via the updated RLOC" true (b1_bytes > 0)

(* ------------------------------------------------------------------ *)
(* CONS                                                                *)
(* ------------------------------------------------------------------ *)

let test_cons_warm_cache_speedup () =
  let engine = Netsim.Engine.create () in
  let params =
    { Topology.Builder.default_params with domain_count = 8; provider_count = 4 }
  in
  let internet = Topology.Builder.generate (Netsim.Rng.create 5) params in
  let registry = Mapsys.Registry.create ~internet ~ttl:60.0 in
  let alt = Mapsys.Alt.create ~domains:8 () in
  let cons = Mapsys.Cons.create ~engine ~internet ~registry ~alt () in
  let dataplane =
    Lispdp.Dataplane.create ~engine ~internet
      ~control_plane:(Mapsys.Cons.control_plane cons) ()
  in
  Mapsys.Cons.attach cons dataplane;
  Alcotest.(check int) "nothing warm" 0 (Mapsys.Cons.warm_destinations cons);
  (* First resolution from domain 0 to domain 7. *)
  let flow d_src d_dst port =
    Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(d_src) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(d_dst) 0)
      ~src_port:port ()
  in
  Lispdp.Dataplane.set_host_receiver dataplane
    (Topology.Domain.host_eid internet.Topology.Builder.domains.(7) 0)
    (Some ignore);
  let t0 = Netsim.Engine.now engine in
  Lispdp.Dataplane.send_from_host dataplane
    (Packet.make ~flow:(flow 0 7 1) ~segment:Packet.Syn ~sent_at:t0);
  Netsim.Engine.run engine;
  let first_duration = Netsim.Engine.now engine -. t0 in
  Alcotest.(check int) "destination warm" 1 (Mapsys.Cons.warm_destinations cons);
  (* Second resolution from a different domain to the same destination
     finishes faster thanks to in-hierarchy caching. *)
  let t1 = Netsim.Engine.now engine in
  Lispdp.Dataplane.send_from_host dataplane
    (Packet.make ~flow:(flow 1 7 2) ~segment:Packet.Syn ~sent_at:t1);
  Netsim.Engine.run engine;
  let second_duration = Netsim.Engine.now engine -. t1 in
  Alcotest.(check bool) "warm resolution faster" true
    (second_duration < first_duration)

(* ------------------------------------------------------------------ *)
(* MS/MR                                                               *)
(* ------------------------------------------------------------------ *)

let make_msmr_world () =
  let engine = Netsim.Engine.create () in
  let internet = Topology.Builder.figure1 () in
  let registry = Mapsys.Registry.create ~internet ~ttl:60.0 in
  let alt = Mapsys.Alt.create ~domains:2 () in
  let msmr = Mapsys.Msmr.create ~engine ~internet ~registry ~alt () in
  let dataplane =
    Lispdp.Dataplane.create ~engine ~internet
      ~control_plane:(Mapsys.Msmr.control_plane msmr) ()
  in
  Mapsys.Msmr.attach msmr dataplane;
  (msmr, { engine; internet; dataplane; stats = (fun () -> Mapsys.Msmr.stats msmr) })

let test_msmr_registration_cost () =
  let msmr, w = make_msmr_world () in
  ignore w;
  let s = Mapsys.Msmr.stats msmr in
  (* Initial registration: one map-register per border router (4). *)
  Alcotest.(check int) "registers" 4 s.Mapsys.Cp_stats.push_messages;
  Alcotest.(check bool) "register bytes counted" true
    (s.Mapsys.Cp_stats.control_bytes > 0);
  Mapsys.Msmr.refresh_registrations msmr;
  Alcotest.(check int) "refresh adds another round" 8
    (Mapsys.Msmr.stats msmr).Mapsys.Cp_stats.push_messages

let test_msmr_drops_then_resolves () =
  let _, w = make_msmr_world () in
  let flow = world_flow w ~port:3000 in
  let received = ref 0 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst
    (Some (fun _ -> incr received));
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "first packet dropped (LISP-beta behaviour)" 0 !received;
  Alcotest.(check int) "one map request" 1 (w.stats ()).Mapsys.Cp_stats.map_requests;
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "delivered after the proxy reply" 1 !received

let test_msmr_resolution_slower_than_direct () =
  (* MS/MR resolution includes the DDT walk: slower than a direct ALT
     request on this tiny topology where the ALT overlay is short. *)
  let time_to_resolve make_world =
    let world = make_world () in
    let flow = world_flow world ~port:3001 in
    Lispdp.Dataplane.set_host_receiver world.dataplane flow.Flow.dst (Some ignore);
    send world flow Packet.Syn;
    Netsim.Engine.run world.engine;
    Netsim.Engine.now world.engine
  in
  let msmr_time = time_to_resolve (fun () -> snd (make_msmr_world ())) in
  Alcotest.(check bool) "resolution completes in bounded time" true
    (msmr_time > 0.0 && msmr_time < 1.0)

(* ------------------------------------------------------------------ *)
(* Glean                                                               *)
(* ------------------------------------------------------------------ *)

let test_glean_roundtrip () =
  let g = Mapsys.Glean.create () in
  let internet = Topology.Builder.figure1 () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let b0 = as_s.Topology.Domain.borders.(0) in
  let b1 = as_s.Topology.Domain.borders.(1) in
  let remote = Ipv4.addr_of_string "100.0.1.1" in
  Alcotest.(check bool) "empty" true
    (Mapsys.Glean.lookup g ~domain:0 ~remote_eid:remote = None);
  Mapsys.Glean.note g ~domain:0 ~remote_eid:remote ~border:b0;
  (match Mapsys.Glean.lookup g ~domain:0 ~remote_eid:remote with
  | Some b -> Alcotest.(check int) "recorded" b0.Topology.Domain.router b.Topology.Domain.router
  | None -> Alcotest.fail "missing glean");
  (* Later observation replaces the border. *)
  Mapsys.Glean.note g ~domain:0 ~remote_eid:remote ~border:b1;
  (match Mapsys.Glean.lookup g ~domain:0 ~remote_eid:remote with
  | Some b -> Alcotest.(check int) "replaced" b1.Topology.Domain.router b.Topology.Domain.router
  | None -> Alcotest.fail "missing glean");
  Alcotest.(check int) "one entry" 1 (Mapsys.Glean.entries g);
  (* Per-domain scoping. *)
  Alcotest.(check bool) "other domain unaffected" true
    (Mapsys.Glean.lookup g ~domain:1 ~remote_eid:remote = None);
  Mapsys.Glean.clear g;
  Alcotest.(check int) "cleared" 0 (Mapsys.Glean.entries g)

(* The admission cap bounds the table with oldest-first eviction — the
   graceful-degradation answer to an EID-scan flood growing it without
   bound. *)
let test_glean_cap_fifo () =
  let g = Mapsys.Glean.create ~cap:2 () in
  let internet = Topology.Builder.figure1 () in
  let as_s = internet.Topology.Builder.domains.(0) in
  let b0 = as_s.Topology.Domain.borders.(0) in
  let eid i = Ipv4.addr_of_string (Printf.sprintf "100.0.1.%d" i) in
  Alcotest.(check (option int)) "cap recorded" (Some 2) (Mapsys.Glean.cap g);
  Mapsys.Glean.note g ~domain:0 ~remote_eid:(eid 1) ~border:b0;
  Mapsys.Glean.note g ~domain:0 ~remote_eid:(eid 2) ~border:b0;
  Alcotest.(check int) "at cap, no eviction" 0 (Mapsys.Glean.evictions g);
  (* Re-noting a live key replaces in place: no eviction, same size. *)
  Mapsys.Glean.note g ~domain:0 ~remote_eid:(eid 1) ~border:b0;
  Alcotest.(check int) "re-note is not an admission" 0 (Mapsys.Glean.evictions g);
  Alcotest.(check int) "still two entries" 2 (Mapsys.Glean.entries g);
  (* A third distinct key pushes out the oldest-noted one (eid 1's age
     was fixed at its first note). *)
  Mapsys.Glean.note g ~domain:0 ~remote_eid:(eid 3) ~border:b0;
  Alcotest.(check int) "bounded" 2 (Mapsys.Glean.entries g);
  Alcotest.(check int) "one eviction" 1 (Mapsys.Glean.evictions g);
  Alcotest.(check bool) "oldest gone" true
    (Mapsys.Glean.lookup g ~domain:0 ~remote_eid:(eid 1) = None);
  Alcotest.(check bool) "newest live" true
    (Mapsys.Glean.lookup g ~domain:0 ~remote_eid:(eid 3) <> None)

(* ------------------------------------------------------------------ *)
(* Control-plane loss and retransmission                               *)
(* ------------------------------------------------------------------ *)

(* Like [make_pull_world], but exposes the pull instance and threads a
   fault model / retry policy through. *)
let make_faulty_pull_world ?faults ?retry ~mode () =
  let engine = Netsim.Engine.create () in
  let internet = Topology.Builder.figure1 () in
  let registry = Mapsys.Registry.create ~internet ~ttl:60.0 in
  let alt = Mapsys.Alt.create ~domains:2 ~hop_latency:0.020 () in
  let pull =
    Mapsys.Pull.create ~engine ~internet ~registry ~alt ~mode ?faults ?retry ()
  in
  let dataplane =
    Lispdp.Dataplane.create ~engine ~internet
      ~control_plane:(Mapsys.Pull.control_plane pull) ()
  in
  Mapsys.Pull.attach pull dataplane;
  (pull,
   { engine; internet; dataplane; stats = (fun () -> Mapsys.Pull.stats pull) })

(* Regression: an unreachable destination used to leave the resolution
   and its queued packets held forever, invisible to every counter.  Now
   the resolution is abandoned and the packets are counted drops. *)
let test_pull_partitioned_destination_counted () =
  let pull, w =
    make_faulty_pull_world ~mode:(Mapsys.Pull.Queue_while_pending 8) ()
  in
  let as_d = w.internet.Topology.Builder.domains.(1) in
  Array.iter
    (fun b ->
      Topology.Graph.set_link_up w.internet.Topology.Builder.graph
        b.Topology.Domain.uplink false)
    as_d.Topology.Domain.borders;
  let flow = world_flow w ~port:2000 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst (Some ignore);
  for _ = 1 to 3 do
    send w flow (Packet.Data 100)
  done;
  Netsim.Engine.run w.engine;
  Alcotest.(check (option int)) "abandoned drops counted" (Some 3)
    (List.assoc_opt "resolution-abandoned" (Lispdp.Dataplane.drop_causes w.dataplane));
  Alcotest.(check int) "total drop counter agrees" 3
    (Lispdp.Dataplane.counters w.dataplane).Lispdp.Dataplane.dropped;
  Alcotest.(check int) "no leaked resolution" 0
    (Mapsys.Pull.pending_resolutions pull)

(* Deterministic backoff schedule: with every request lost, attempts go
   out at t_miss, t_miss + rto, t_miss + rto(1 + backoff); the timeout
   fires one more backoff step later. *)
let test_pull_retry_deterministic_timing () =
  let faults =
    Netsim.Faults.create ~rng:(Netsim.Rng.create 5) ~loss:1.0 ()
  in
  let retry = Netsim.Faults.retry ~rto:0.5 ~backoff:2.0 ~budget:2 () in
  let pull, w =
    make_faulty_pull_world ~faults ~retry
      ~mode:(Mapsys.Pull.Queue_while_pending 8) ()
  in
  let flow = world_flow w ~port:2001 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst (Some ignore);
  send w flow Packet.Syn;
  send w flow (Packet.Data 100);
  Netsim.Engine.run w.engine;
  let s = w.stats () in
  Alcotest.(check int) "three transmissions" 3 s.Mapsys.Cp_stats.map_requests;
  Alcotest.(check int) "two retransmissions" 2 s.Mapsys.Cp_stats.retransmissions;
  Alcotest.(check int) "one timeout" 1 s.Mapsys.Cp_stats.timeouts;
  Alcotest.(check int) "no reply ever" 0 s.Mapsys.Cp_stats.map_replies;
  Alcotest.(check int) "all losses drawn" 3 (Netsim.Faults.losses faults);
  Alcotest.(check (option int)) "queued packets dropped at timeout" (Some 2)
    (List.assoc_opt "resolution-timeout" (Lispdp.Dataplane.drop_causes w.dataplane));
  Alcotest.(check int) "no leaked resolution" 0
    (Mapsys.Pull.pending_resolutions pull);
  (* Exact schedule: the miss happens when the first packet crosses the
     host-to-ITR wire; the timeout 0.5 + 1.0 + 2.0 seconds later is the
     final event of the run. *)
  let as_s = w.internet.Topology.Builder.domains.(0) in
  let borders = as_s.Topology.Domain.borders in
  let egress = borders.(Flow.hash flow mod Array.length borders) in
  let t_miss =
    Topology.Graph.latency_between w.internet.Topology.Builder.graph
      (Topology.Domain.host_of_eid as_s flow.Flow.src
      |> Option.get
      |> Array.get as_s.Topology.Domain.hosts)
      egress.Topology.Domain.router
  in
  Alcotest.(check (float 1e-9)) "timeout at t_miss + 3.5"
    (t_miss +. 3.5) (Netsim.Engine.now w.engine)

(* A retransmission sent after an outage window heals must succeed and
   release the held packets. *)
let test_pull_retransmit_after_heal () =
  let faults = Netsim.Faults.create ~rng:(Netsim.Rng.create 5) () in
  Netsim.Faults.add_window faults ~from_:0.0 ~until:0.3 Netsim.Faults.All;
  let retry = Netsim.Faults.retry ~rto:0.5 ~backoff:2.0 ~budget:3 () in
  let _pull, w =
    make_faulty_pull_world ~faults ~retry
      ~mode:(Mapsys.Pull.Queue_while_pending 8) ()
  in
  let flow = world_flow w ~port:2002 in
  let received = ref 0 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst
    (Some (fun _ -> incr received));
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  let s = w.stats () in
  Alcotest.(check int) "first attempt blocked by window" 1
    (Netsim.Faults.blocked faults);
  Alcotest.(check int) "one retransmission" 1 s.Mapsys.Cp_stats.retransmissions;
  Alcotest.(check int) "no timeout" 0 s.Mapsys.Cp_stats.timeouts;
  Alcotest.(check int) "resolved on retry" 1 s.Mapsys.Cp_stats.resolutions;
  Alcotest.(check int) "held packet delivered" 1 !received;
  Alcotest.(check int) "no drops" 0
    (Lispdp.Dataplane.counters w.dataplane).Lispdp.Dataplane.dropped

(* ------------------------------------------------------------------ *)
(* Cp_stats                                                            *)
(* ------------------------------------------------------------------ *)

let test_cp_stats_pp () =
  let a = Mapsys.Cp_stats.create () in
  a.Mapsys.Cp_stats.map_requests <- 2;
  let rendered = Format.asprintf "%a" Mapsys.Cp_stats.pp a in
  Alcotest.(check bool) "renders" true (String.length rendered > 10)

let test_cp_stats_merge () =
  let a = Mapsys.Cp_stats.create () in
  let b = Mapsys.Cp_stats.create () in
  a.Mapsys.Cp_stats.map_requests <- 3;
  b.Mapsys.Cp_stats.map_requests <- 4;
  a.Mapsys.Cp_stats.control_bytes <- 100;
  b.Mapsys.Cp_stats.push_messages <- 2;
  let m = Mapsys.Cp_stats.merge a b in
  Alcotest.(check int) "requests summed" 7 m.Mapsys.Cp_stats.map_requests;
  Alcotest.(check int) "bytes summed" 100 m.Mapsys.Cp_stats.control_bytes;
  Alcotest.(check int) "message total" 9 (Mapsys.Cp_stats.message_total m)

(* ------------------------------------------------------------------ *)
(* Nonces                                                              *)
(* ------------------------------------------------------------------ *)

(* Regression: map-request nonces used to be a monotonically increasing
   counter, so an off-path attacker could predict the next one and win
   every forgery race.  They must now be uniform 32-bit draws. *)
let test_nonce_unpredictable () =
  let n = Mapsys.Nonce.create () in
  let values = Array.init 64 (fun _ -> Mapsys.Nonce.fresh n) in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in [0, 2^32)" true (v >= 0 && v < 0x1_0000_0000))
    values;
  let sequential = ref 0 in
  for i = 0 to Array.length values - 2 do
    if values.(i + 1) = values.(i) + 1 then incr sequential
  done;
  Alcotest.(check int) "no sequential pairs" 0 !sequential;
  let distinct = List.sort_uniq compare (Array.to_list values) in
  Alcotest.(check bool) "draws spread over the space" true
    (List.length distinct > 60);
  (* The default stream is fixed-seed: deterministic across creations. *)
  let m = Mapsys.Nonce.create () in
  Alcotest.(check int) "deterministic default stream" values.(0)
    (Mapsys.Nonce.fresh m)

(* ------------------------------------------------------------------ *)
(* Adversary: forged and replayed map-replies vs the auth profile      *)
(* ------------------------------------------------------------------ *)

let spoofing_adversary () =
  Netsim.Adversary.create ~rng:(Netsim.Rng.create 7) ~spoof_rate:1.0 ()

let replaying_adversary () =
  Netsim.Adversary.create ~rng:(Netsim.Rng.create 7) ~replay_rate:1.0 ()

let armed_auth =
  { Mapsys.Pull.no_auth with Mapsys.Pull.nonce_check = true; signatures = true }

(* Without countermeasures the forged reply wins the race: the
   attacker's unroutable RLOC is installed, the held packet is
   encapsulated towards it and blackholes. *)
let test_spoof_accepted_without_auth () =
  let adversary = spoofing_adversary () in
  let w =
    make_pull_world ~mode:(Mapsys.Pull.Queue_while_pending 8) ~adversary ()
  in
  let flow = world_flow w ~port:4000 in
  let received = ref 0 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst
    (Some (fun _ -> incr received));
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "one forgery attempted" 1
    (Netsim.Adversary.forged_replies adversary);
  Alcotest.(check int) "forgery accepted" 1
    (w.stats ()).Mapsys.Cp_stats.spoofed_accepted;
  Alcotest.(check int) "held packet blackholed" 0 !received

(* The nonce echo plus signature verification refuse the blind forgery;
   the legitimate reply still resolves and releases the held packet. *)
let test_spoof_rejected_with_auth () =
  let adversary = spoofing_adversary () in
  let w =
    make_pull_world ~mode:(Mapsys.Pull.Queue_while_pending 8) ~adversary
      ~auth:armed_auth ()
  in
  let flow = world_flow w ~port:4001 in
  let received = ref 0 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst
    (Some (fun _ -> incr received));
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  let s = w.stats () in
  Alcotest.(check int) "forgery rejected" 1 s.Mapsys.Cp_stats.spoofed_rejected;
  Alcotest.(check int) "nothing accepted" 0 s.Mapsys.Cp_stats.spoofed_accepted;
  Alcotest.(check int) "resolved by the genuine reply" 1
    s.Mapsys.Cp_stats.resolutions;
  Alcotest.(check int) "held packet delivered" 1 !received

(* A replayed stale reply carries the genuine mapping, so acceptance is
   invisible to the dataplane — only the nonce echo can tell it apart. *)
let test_replay_accepted_without_auth () =
  let adversary = replaying_adversary () in
  let w =
    make_pull_world ~mode:(Mapsys.Pull.Queue_while_pending 8) ~adversary ()
  in
  let flow = world_flow w ~port:4002 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst (Some ignore);
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  Alcotest.(check int) "one replay attempted" 1
    (Netsim.Adversary.replayed_replies adversary);
  Alcotest.(check int) "replay accepted" 1
    (w.stats ()).Mapsys.Cp_stats.replayed_accepted

let test_replay_rejected_with_nonce () =
  let adversary = replaying_adversary () in
  let w =
    make_pull_world ~mode:(Mapsys.Pull.Queue_while_pending 8) ~adversary
      ~auth:{ Mapsys.Pull.no_auth with Mapsys.Pull.nonce_check = true }
      ()
  in
  let flow = world_flow w ~port:4003 in
  let received = ref 0 in
  Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst
    (Some (fun _ -> incr received));
  send w flow Packet.Syn;
  Netsim.Engine.run w.engine;
  let s = w.stats () in
  Alcotest.(check int) "replay rejected" 1 s.Mapsys.Cp_stats.replayed_rejected;
  Alcotest.(check int) "nothing accepted" 0 s.Mapsys.Cp_stats.replayed_accepted;
  Alcotest.(check int) "held packet delivered" 1 !received

(* An inert adversary (all rates zero) must perturb nothing: same
   counters and same final simulated time as no adversary at all. *)
let test_inert_adversary_invisible () =
  let run adversary =
    let w = make_pull_world ?adversary () in
    let flow = world_flow w ~port:4004 in
    Lispdp.Dataplane.set_host_receiver w.dataplane flow.Flow.dst (Some ignore);
    send w flow Packet.Syn;
    send w flow Packet.Syn;
    Netsim.Engine.run w.engine;
    (Netsim.Engine.now w.engine, w.stats ())
  in
  let t0, s0 = run None in
  let inert = Netsim.Adversary.create ~rng:(Netsim.Rng.create 7) () in
  let t1, s1 = run (Some inert) in
  Alcotest.(check (float 0.0)) "same final time" t0 t1;
  Alcotest.(check int) "same requests" s0.Mapsys.Cp_stats.map_requests
    s1.Mapsys.Cp_stats.map_requests;
  Alcotest.(check int) "same replies" s0.Mapsys.Cp_stats.map_replies
    s1.Mapsys.Cp_stats.map_replies;
  Alcotest.(check int) "no verdicts" 0
    (s1.Mapsys.Cp_stats.spoofed_accepted + s1.Mapsys.Cp_stats.spoofed_rejected
    + s1.Mapsys.Cp_stats.replayed_accepted
    + s1.Mapsys.Cp_stats.replayed_rejected)

let () =
  Alcotest.run "mapsys"
    [
      ( "alt",
        [
          Alcotest.test_case "geometry" `Quick test_alt_geometry;
          Alcotest.test_case "symmetry" `Quick test_alt_symmetry;
          Alcotest.test_case "non-power domains" `Quick test_alt_nonpower_domains;
          Alcotest.test_case "usage counters" `Quick test_alt_usage_counters;
          Alcotest.test_case "validation" `Quick test_alt_validation;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
          Alcotest.test_case "update" `Quick test_registry_update;
          Alcotest.test_case "wire bytes" `Quick test_registry_wire_bytes;
        ] );
      ( "pull",
        [
          Alcotest.test_case "drop first packet" `Quick test_pull_drop_first_packet;
          Alcotest.test_case "queue releases" `Quick test_pull_queue_releases;
          Alcotest.test_case "queue overflow" `Quick test_pull_queue_overflow;
          Alcotest.test_case "detour delivers" `Quick test_pull_detour_delivers_slowly;
          Alcotest.test_case "pending coalesced" `Quick test_pull_pending_coalesced;
          Alcotest.test_case "symmetric return" `Quick test_pull_symmetric_return;
        ] );
      ( "cp-faults",
        [
          Alcotest.test_case "partitioned destination counted" `Quick
            test_pull_partitioned_destination_counted;
          Alcotest.test_case "deterministic retry timing" `Quick
            test_pull_retry_deterministic_timing;
          Alcotest.test_case "retransmit after heal" `Quick
            test_pull_retransmit_after_heal;
        ] );
      ( "nerd",
        [
          Alcotest.test_case "no misses" `Quick test_nerd_no_misses;
          Alcotest.test_case "push cost" `Quick test_nerd_push_cost;
          Alcotest.test_case "update propagation" `Quick test_nerd_update_propagation;
        ] );
      ("cons", [ Alcotest.test_case "warm cache speedup" `Quick test_cons_warm_cache_speedup ]);
      ( "msmr",
        [
          Alcotest.test_case "registration cost" `Quick test_msmr_registration_cost;
          Alcotest.test_case "drop then resolve" `Quick test_msmr_drops_then_resolves;
          Alcotest.test_case "bounded resolution" `Quick test_msmr_resolution_slower_than_direct;
        ] );
      ( "glean",
        [
          Alcotest.test_case "roundtrip" `Quick test_glean_roundtrip;
          Alcotest.test_case "cap fifo eviction" `Quick test_glean_cap_fifo;
        ] );
      ("nonce", [ Alcotest.test_case "unpredictable" `Quick test_nonce_unpredictable ]);
      ( "adversary",
        [
          Alcotest.test_case "spoof accepted without auth" `Quick
            test_spoof_accepted_without_auth;
          Alcotest.test_case "spoof rejected with auth" `Quick
            test_spoof_rejected_with_auth;
          Alcotest.test_case "replay accepted without auth" `Quick
            test_replay_accepted_without_auth;
          Alcotest.test_case "replay rejected with nonce" `Quick
            test_replay_rejected_with_nonce;
          Alcotest.test_case "inert adversary invisible" `Quick
            test_inert_adversary_invisible;
        ] );
      ( "cp_stats",
        [
          Alcotest.test_case "merge" `Quick test_cp_stats_merge;
          Alcotest.test_case "pp" `Quick test_cp_stats_pp;
        ] );
    ]
