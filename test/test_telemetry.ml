(* The telemetry plane: window rotation, Space-Saving error bounds,
   drop-cause labels, TE-balance math, the disabled path's zero-cost
   contract, and enabled-vs-disabled simulation identity. *)

let config ?(window_s = 1.0) ?(slots = 4) ?(topk = 8) () =
  { Netsim.Telemetry.window_s; slots; topk }

let start ?window_s ?slots ?topk ?(now = 0.0) () =
  Netsim.Telemetry.start ~config:(config ?window_s ?slots ?topk ()) ~now ()

(* ------------------------------------------------------------------ *)
(* Sliding-window counters                                             *)
(* ------------------------------------------------------------------ *)

let test_window_rotation () =
  start ();
  let feed ~now ~bytes =
    Netsim.Telemetry.touch ~now;
    Netsim.Telemetry.on_link ~link:0 ~dir:0 ~bytes
  in
  (* One packet per second for 10 s; ring holds 4 slots. *)
  for second = 0 to 9 do
    feed ~now:(float_of_int second +. 0.5) ~bytes:100
  done;
  let s = Netsim.Telemetry.link_stat ~link:0 ~dir:0 in
  Alcotest.(check int) "cumulative packets" 10 s.Netsim.Telemetry.st_pkts;
  Alcotest.(check int) "cumulative bytes" 1000 s.Netsim.Telemetry.st_bytes;
  Alcotest.(check int) "window packets = ring size" 4
    s.Netsim.Telemetry.st_win_pkts;
  Alcotest.(check int) "window bytes" 400 s.Netsim.Telemetry.st_win_bytes;
  (* Advancing the clock without traffic empties the window but not the
     cumulative counters. *)
  Netsim.Telemetry.touch ~now:100.0;
  let s = Netsim.Telemetry.link_stat ~link:0 ~dir:0 in
  Alcotest.(check int) "idle window drains" 0 s.Netsim.Telemetry.st_win_pkts;
  Alcotest.(check int) "cumulative survives" 10 s.Netsim.Telemetry.st_pkts;
  Netsim.Telemetry.stop ()

let test_series_ascending () =
  start ();
  List.iter
    (fun now ->
      Netsim.Telemetry.touch ~now;
      Netsim.Telemetry.on_link ~link:1 ~dir:1 ~bytes:10)
    [ 0.1; 1.1; 1.2; 3.7 ];
  let series = Netsim.Telemetry.link_series ~link:1 ~dir:1 in
  let slots = List.map (fun s -> s.Netsim.Telemetry.sl_slot) series in
  Alcotest.(check (list int)) "retained slots ascending" [ 0; 1; 3 ] slots;
  let pkts = List.map (fun s -> s.Netsim.Telemetry.sl_pkts) series in
  Alcotest.(check (list int)) "per-slot packets" [ 1; 2; 1 ] pkts;
  List.iter
    (fun s ->
      Alcotest.(check (float 1e-9))
        "slot start = slot * window"
        (float_of_int s.Netsim.Telemetry.sl_slot)
        s.Netsim.Telemetry.sl_start)
    series;
  Netsim.Telemetry.stop ()

(* ------------------------------------------------------------------ *)
(* Space-Saving sketch                                                 *)
(* ------------------------------------------------------------------ *)

(* A skewed stream over more keys than the sketch holds: every key with
   true frequency > total/cap must be monitored, estimates must bound
   the truth from above, and (estimate - error) from below. *)
let test_sketch_error_bounds () =
  let cap = 8 in
  let sketch = Netsim.Telemetry.Sketch.create ~cap in
  let true_counts = Hashtbl.create 64 in
  let observe key =
    Netsim.Telemetry.Sketch.observe sketch key;
    Hashtbl.replace true_counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt true_counts key))
  in
  (* 4 heavy keys, 40 light ones, deterministically interleaved. *)
  for round = 1 to 100 do
    for heavy = 0 to 3 do
      observe heavy
    done;
    observe (4 + (round mod 40))
  done;
  let total = Netsim.Telemetry.Sketch.total sketch in
  Alcotest.(check int) "total preserved" 500 total;
  let entries = Netsim.Telemetry.Sketch.entries sketch in
  Alcotest.(check bool) "at most cap entries" true
    (List.length entries <= cap);
  let threshold = total / cap in
  Hashtbl.iter
    (fun key count ->
      if count > threshold then
        Alcotest.(check bool)
          (Printf.sprintf "heavy key %d monitored" key)
          true
          (List.exists (fun (k, _, _) -> k = key) entries))
    true_counts;
  List.iter
    (fun (key, est, err) ->
      let truth = Option.value ~default:0 (Hashtbl.find_opt true_counts key) in
      Alcotest.(check bool)
        (Printf.sprintf "key %d: estimate >= truth" key)
        true (est >= truth);
      Alcotest.(check bool)
        (Printf.sprintf "key %d: estimate - error <= truth" key)
        true (est - err <= truth);
      Alcotest.(check bool)
        (Printf.sprintf "key %d: error <= total/cap" key)
        true (err <= threshold))
    entries;
  (* Descending estimated count. *)
  let counts = List.map (fun (_, c, _) -> c) entries in
  Alcotest.(check (list int)) "entries sorted" (List.sort (fun a b -> compare b a) counts) counts

let test_sketch_exact_under_capacity () =
  let sketch = Netsim.Telemetry.Sketch.create ~cap:16 in
  List.iter
    (fun (key, n) ->
      for _ = 1 to n do
        Netsim.Telemetry.Sketch.observe sketch key
      done)
    [ (1, 5); (2, 3); (3, 1) ];
  Alcotest.(check (list (triple int int int)))
    "exact counts, zero error when under capacity"
    [ (1, 5, 0); (2, 3, 0); (3, 1, 0) ]
    (Netsim.Telemetry.Sketch.entries sketch)

(* ------------------------------------------------------------------ *)
(* Drop causes                                                         *)
(* ------------------------------------------------------------------ *)

let test_drop_label_round_trip () =
  List.iter
    (fun cause ->
      let label = Netsim.Telemetry.drop_label cause in
      match Netsim.Telemetry.drop_cause_of_label label with
      | Some back ->
          Alcotest.(check bool)
            (Printf.sprintf "%s round-trips" label)
            true (back = cause)
      | None -> Alcotest.failf "label %s does not parse back" label)
    Netsim.Telemetry.all_drop_causes;
  let labels =
    List.map Netsim.Telemetry.drop_label Netsim.Telemetry.all_drop_causes
  in
  Alcotest.(check int) "labels unique"
    (List.length labels)
    (List.length (List.sort_uniq compare labels));
  Alcotest.(check (option reject)) "unknown label rejected" None
    (Netsim.Telemetry.drop_cause_of_label "no-such-cause")

(* The labels are a wire format: traces, JSONL events, BENCH.json and
   the baseline differ use them, so they are pinned byte-for-byte.
   Growing the enum appends — it never renames or reorders. *)
let test_drop_labels_pinned () =
  Alcotest.(check (list string)) "stable label list"
    [ "no-route"; "no-such-eid"; "no-receiver"; "no-such-rloc";
      "rloc-unreachable"; "post-resolution-miss"; "mapping-resolution-drop";
      "resolution-abandoned"; "resolution-timeout";
      "resolution-queue-overflow"; "nerd-database-miss"; "no-such-eid-domain";
      "pce-no-mapping-forward"; "pce-no-mapping-reverse"; "cp-message-loss";
      "outage-failure"; "spoofed-reply-rejected"; "replayed-reply-rejected";
      "glean-admission-rejected" ]
    (List.map Netsim.Telemetry.drop_label Netsim.Telemetry.all_drop_causes)

let test_drop_attribution () =
  start ();
  Netsim.Telemetry.on_drop ~node:3 Netsim.Telemetry.No_route;
  Netsim.Telemetry.on_drop ~node:3 Netsim.Telemetry.No_route;
  Netsim.Telemetry.on_drop ~node:5 Netsim.Telemetry.Resolution_timeout;
  Netsim.Telemetry.on_drop ~node:(-1) Netsim.Telemetry.Cp_message_loss;
  Alcotest.(check int) "total drops" 4 (Netsim.Telemetry.dropped ());
  (match Netsim.Telemetry.drop_totals () with
  | (first_cause, 2) :: _ ->
      Alcotest.(check string) "heaviest cause first" "no-route"
        (Netsim.Telemetry.drop_label first_cause)
  | _ -> Alcotest.fail "expected no-route x2 first");
  let by_node = Netsim.Telemetry.drops_by_node () in
  Alcotest.(check (list int)) "nodes ascending, unattributed first"
    [ -1; 3; 5 ]
    (List.map fst by_node);
  Netsim.Telemetry.stop ()

(* ------------------------------------------------------------------ *)
(* TE balance                                                          *)
(* ------------------------------------------------------------------ *)

let test_balance_metrics () =
  start ();
  (* Two providers; links 10 and 11, egress a->b (dir 0). *)
  Netsim.Telemetry.register_uplink ~link:10 ~provider:0 ~egress_dir:0;
  Netsim.Telemetry.register_uplink ~link:11 ~provider:1 ~egress_dir:0;
  Netsim.Telemetry.touch ~now:0.5;
  (* Inbound (dir 1): 300 bytes via provider 0, 100 via provider 1. *)
  Netsim.Telemetry.on_link ~link:10 ~dir:1 ~bytes:300;
  Netsim.Telemetry.on_link ~link:11 ~dir:1 ~bytes:100;
  (* Outbound: perfectly balanced. *)
  Netsim.Telemetry.on_link ~link:10 ~dir:0 ~bytes:200;
  Netsim.Telemetry.on_link ~link:11 ~dir:0 ~bytes:200;
  let b = Netsim.Telemetry.balance ~window:false () in
  Alcotest.(check (float 1e-9)) "in share p0" 0.75 b.Netsim.Telemetry.bal_in_share.(0);
  Alcotest.(check (float 1e-9)) "in share p1" 0.25 b.Netsim.Telemetry.bal_in_share.(1);
  Alcotest.(check (float 1e-9)) "jain out = 1 (balanced)" 1.0
    b.Netsim.Telemetry.bal_jain_out;
  Alcotest.(check (float 1e-9)) "ratio in = 3" 3.0
    b.Netsim.Telemetry.bal_ratio_in;
  Alcotest.(check (float 1e-9)) "jain in"
    (Netsim.Stats.jain_index [| 300.0; 100.0 |])
    b.Netsim.Telemetry.bal_jain_in;
  let p0_in = Netsim.Telemetry.provider_stat ~provider:0 `In in
  Alcotest.(check int) "provider store fed" 300
    p0_in.Netsim.Telemetry.st_bytes;
  Netsim.Telemetry.stop ()

(* ------------------------------------------------------------------ *)
(* Disabled path                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_path_allocation_free () =
  Netsim.Telemetry.stop ();
  (* Constant [now]: boxing a fresh float in the test loop would be
     charged to the hooks. *)
  let cycle i =
    Netsim.Telemetry.touch ~now:42.0;
    Netsim.Telemetry.on_link ~link:3 ~dir:0 ~bytes:1400;
    Netsim.Telemetry.on_node_tx ~node:7 ~bytes:1400;
    Netsim.Telemetry.on_node_rx ~node:8 ~bytes:1400;
    Netsim.Telemetry.on_node_fwd ~node:9 ~bytes:1400;
    Netsim.Telemetry.on_flow_packet ~eid:i ~flow:i;
    Netsim.Telemetry.on_drop ~node:7 Netsim.Telemetry.No_route;
    Netsim.Telemetry.on_select ~provider:2 ~inbound:true
  in
  for i = 1 to 1_000 do cycle i done;
  let w0 = Gc.minor_words () in
  for i = 1 to 100_000 do cycle i done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "no allocation on the disabled path (%.0f words)" dw)
    true (dw = 0.0)

(* ------------------------------------------------------------------ *)
(* Enabled telemetry never changes the simulation                      *)
(* ------------------------------------------------------------------ *)

(* The plane observes simulated quantities against simulated time and
   never schedules events or draws randomness: a full scenario run must
   produce byte-identical output with it off and on. *)
let fingerprint ~seed ~telemetry =
  let s =
    Core.Scenario.build
      { Core.Scenario.default_config with
        Core.Scenario.seed;
        Core.Scenario.cp = Core.Scenario.Cp_pce Core.Pce_control.default_options;
        Core.Scenario.telemetry =
          (if telemetry then Some (config ~slots:8 ()) else None) }
  in
  Fun.protect ~finally:Netsim.Telemetry.stop @@ fun () ->
  let internet = Core.Scenario.internet s in
  let flow =
    Nettypes.Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~src_port:1 ()
  in
  let c = Core.Scenario.open_connection s ~flow ~data_packets:2 () in
  Core.Scenario.run s;
  let counters = Lispdp.Dataplane.counters (Core.Scenario.dataplane s) in
  Printf.sprintf "%.12g %.12g %d %d %s"
    (Option.value ~default:(-1.0) c.Core.Scenario.dns_time)
    (Option.value ~default:(-1.0) (Core.Scenario.total_setup_time c))
    counters.Lispdp.Dataplane.dropped counters.Lispdp.Dataplane.delivered
    (Format.asprintf "%a" Netsim.Trace.pp (Core.Scenario.trace s))

let prop_telemetry_preserves_output =
  QCheck.Test.make ~name:"telemetry on/off: identical simulation output"
    ~count:8
    QCheck.(int_range 1 1_000)
    (fun seed ->
      String.equal
        (fingerprint ~seed ~telemetry:false)
        (fingerprint ~seed ~telemetry:true))

(* The adversary layer follows the same opt-in contract: compiling it
   in with every rate at zero (and the all-off auth profile) must not
   shift a single event or RNG draw relative to no profile at all. *)
let fingerprint_pull ~seed ~armed =
  let s =
    Core.Scenario.build
      { Core.Scenario.default_config with
        Core.Scenario.seed;
        Core.Scenario.cp = Core.Scenario.Cp_pull_queue 8;
        Core.Scenario.attack =
          (if armed then Some Core.Scenario.default_attack else None);
        Core.Scenario.auth =
          (if armed then Some Core.Scenario.default_auth else None) }
  in
  let internet = Core.Scenario.internet s in
  let flow =
    Nettypes.Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~src_port:1 ()
  in
  let c = Core.Scenario.open_connection s ~flow ~data_packets:2 () in
  Core.Scenario.run s;
  let counters = Lispdp.Dataplane.counters (Core.Scenario.dataplane s) in
  Printf.sprintf "%.12g %.12g %d %d %s"
    (Option.value ~default:(-1.0) c.Core.Scenario.dns_time)
    (Option.value ~default:(-1.0) (Core.Scenario.total_setup_time c))
    counters.Lispdp.Dataplane.dropped counters.Lispdp.Dataplane.delivered
    (Format.asprintf "%a" Netsim.Trace.pp (Core.Scenario.trace s))

let prop_disarmed_adversary_preserves_output =
  QCheck.Test.make
    ~name:"zero-rate adversary profile: identical simulation output" ~count:8
    QCheck.(int_range 1 1_000)
    (fun seed ->
      String.equal
        (fingerprint_pull ~seed ~armed:false)
        (fingerprint_pull ~seed ~armed:true))

(* With telemetry on, the dataplane's drop bookkeeping and the typed
   per-(node,cause) counters must agree cause-for-cause. *)
let test_scenario_drop_agreement () =
  let s =
    Core.Scenario.build
      { Core.Scenario.default_config with
        Core.Scenario.cp = Core.Scenario.Cp_pull_drop;
        Core.Scenario.telemetry = Some (config ()) }
  in
  Fun.protect ~finally:Netsim.Telemetry.stop @@ fun () ->
  let internet = Core.Scenario.internet s in
  let flow =
    Nettypes.Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~src_port:1 ()
  in
  ignore (Core.Scenario.open_connection s ~flow ~data_packets:4 ());
  Core.Scenario.run s;
  let legacy = Lispdp.Dataplane.drop_causes (Core.Scenario.dataplane s) in
  let typed =
    List.map
      (fun (cause, n) -> (Netsim.Telemetry.drop_label cause, n))
      (Netsim.Telemetry.drop_totals ())
  in
  Alcotest.(check (list (pair string int)))
    "legacy string table and typed counters agree" legacy typed

(* ------------------------------------------------------------------ *)
(* Telemetry_record JSON round-trip                                    *)
(* ------------------------------------------------------------------ *)

let test_record_round_trip () =
  let rows =
    [ { Experiments.Telemetry_record.r_run = "pce/s21"; r_cp = "pce";
        r_providers = 4; r_in_share = [ 0.30; 0.23; 0.23; 0.24 ];
        r_jain_in = 0.986; r_jain_out = 0.805; r_ratio_in = Some 1.322;
        r_drops = 0; r_threshold = 0.8; r_ok = true };
      { Experiments.Telemetry_record.r_run = "symmetric/s21";
        r_cp = "symmetric"; r_providers = 4;
        r_in_share = [ 0.53; 0.15; 0.15; 0.17 ]; r_jain_in = 0.698;
        r_jain_out = 0.821; r_ratio_in = None; r_drops = 3;
        r_threshold = 0.0; r_ok = true } ]
  in
  let json = Experiments.Telemetry_record.json_of_rows rows in
  let text = Obs.Json.to_string json in
  match Obs.Json.of_string text with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok parsed -> (
      match Experiments.Telemetry_record.rows_of_json parsed with
      | Some back ->
          Alcotest.(check bool) "rows survive the JSON round-trip" true
            (rows = back)
      | None -> Alcotest.fail "rows_of_json rejected its own output")

let test_security_record_round_trip () =
  let rows =
    [ { Experiments.Security_record.r_run = "pull/s41"; r_cp = "pull-queue";
        r_attempted = 210; r_accepted = 210; r_success = 1.0; r_gleaned = 12;
        r_glean_rejected = 0; r_pollution = 0.25; r_setup_mean = 0.35129;
        r_gate = "success >= 0.90"; r_ok = true };
      { Experiments.Security_record.r_run = "flood-cap/s43"; r_cp = "pull-drop";
        r_attempted = 13075; r_accepted = 12; r_success = 0.0; r_gleaned = 16;
        r_glean_rejected = 15298; r_pollution = 0.353;
        r_setup_mean = 0.21993; r_gate = "-"; r_ok = true } ]
  in
  let json = Experiments.Security_record.json_of_rows rows in
  let text = Obs.Json.to_string json in
  match Obs.Json.of_string text with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok parsed -> (
      match Experiments.Security_record.rows_of_json parsed with
      | Some back ->
          Alcotest.(check bool) "rows survive the JSON round-trip" true
            (rows = back)
      | None -> Alcotest.fail "rows_of_json rejected its own output")

(* json_snapshot must always be printable and re-parseable, including
   the degenerate zero-traffic balance (infinite ratios become null). *)
let test_json_snapshot_well_formed () =
  start ();
  Netsim.Telemetry.register_uplink ~link:0 ~provider:0 ~egress_dir:0;
  Netsim.Telemetry.touch ~now:0.2;
  Netsim.Telemetry.on_link ~link:0 ~dir:1 ~bytes:100;
  Netsim.Telemetry.on_drop ~node:2 Netsim.Telemetry.No_receiver;
  let text = Obs.Json.to_string (Obs.Telemetry.json_snapshot ~series:true ()) in
  (match Obs.Json.of_string text with
  | Error msg -> Alcotest.failf "snapshot does not re-parse: %s" msg
  | Ok json ->
      Alcotest.(check (option int)) "drop count present" (Some 1)
        (Option.bind (Obs.Json.member "dropped" json) Obs.Json.to_int_opt));
  Netsim.Telemetry.stop ()

let () =
  Alcotest.run "telemetry"
    [
      ( "windows",
        [
          Alcotest.test_case "rotation" `Quick test_window_rotation;
          Alcotest.test_case "series ascending" `Quick test_series_ascending;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "error bounds" `Quick test_sketch_error_bounds;
          Alcotest.test_case "exact under capacity" `Quick
            test_sketch_exact_under_capacity;
        ] );
      ( "drops",
        [
          Alcotest.test_case "label round-trip" `Quick
            test_drop_label_round_trip;
          Alcotest.test_case "labels pinned" `Quick test_drop_labels_pinned;
          Alcotest.test_case "per-node attribution" `Quick
            test_drop_attribution;
          Alcotest.test_case "scenario agreement" `Quick
            test_scenario_drop_agreement;
        ] );
      ( "balance",
        [ Alcotest.test_case "TE metrics" `Quick test_balance_metrics ] );
      ( "runtime",
        [
          Alcotest.test_case "disabled path allocation-free" `Quick
            test_disabled_path_allocation_free;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "record round-trip" `Quick test_record_round_trip;
          Alcotest.test_case "security record round-trip" `Quick
            test_security_record_round_trip;
          Alcotest.test_case "snapshot well-formed" `Quick
            test_json_snapshot_well_formed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_telemetry_preserves_output;
            prop_disarmed_adversary_preserves_output ] );
    ]
