(* Node-lifecycle fault injection: window semantics, the PCE_D
   crash/bypass/degrade-to-pull path on the Figure-1 scenario, warm
   recovery, and determinism of crash runs. *)

open Core
open Nettypes

let addr = Ipv4.addr_of_string

(* ------------------------------------------------------------------ *)
(* Lifecycle model                                                     *)
(* ------------------------------------------------------------------ *)

let test_window_validation () =
  let lc = Netsim.Lifecycle.create () in
  Alcotest.check_raises "inverted window rejected"
    (Invalid_argument
       "Lifecycle.add_window: pce(0) window [3, 1) ends before it starts")
    (fun () ->
      Netsim.Lifecycle.add_window lc ~role:(Netsim.Lifecycle.Pce 0) ~from_:3.0
        ~until:1.0);
  Alcotest.check_raises "empty window rejected"
    (Invalid_argument
       "Lifecycle.add_window: pce(0) window [2, 2) ends before it starts")
    (fun () ->
      Netsim.Lifecycle.add_window lc ~role:(Netsim.Lifecycle.Pce 0) ~from_:2.0
        ~until:2.0);
  Alcotest.check_raises "negative start rejected"
    (Invalid_argument "Lifecycle.add_window: negative crash time")
    (fun () ->
      Netsim.Lifecycle.add_window lc ~role:(Netsim.Lifecycle.Pce 0)
        ~from_:(-1.0) ~until:1.0);
  Alcotest.(check int) "nothing recorded" 0 (Netsim.Lifecycle.window_count lc);
  (* [infinity] means "never restarts" and is legal. *)
  Netsim.Lifecycle.add_window lc ~role:Netsim.Lifecycle.Map_server ~from_:1.0
    ~until:infinity;
  Alcotest.(check bool) "down forever" true
    (Netsim.Lifecycle.is_down lc ~role:Netsim.Lifecycle.Map_server ~now:1e9)

let test_is_down_boundaries () =
  let lc = Netsim.Lifecycle.create () in
  let role = Netsim.Lifecycle.Pce 1 in
  Netsim.Lifecycle.add_window lc ~role ~from_:2.0 ~until:5.0;
  let down now = Netsim.Lifecycle.is_down lc ~role ~now in
  Alcotest.(check bool) "up before" false (down 1.999);
  Alcotest.(check bool) "crash instant is down" true (down 2.0);
  Alcotest.(check bool) "mid-window down" true (down 3.5);
  Alcotest.(check bool) "restart instant is up" false (down 5.0);
  (* Other roles are unaffected, including the same role kind for a
     different domain. *)
  Alcotest.(check bool) "other domain's PCE up" false
    (Netsim.Lifecycle.is_down lc ~role:(Netsim.Lifecycle.Pce 0) ~now:3.0);
  Alcotest.(check bool) "DNS server up" false
    (Netsim.Lifecycle.is_down lc ~role:(Netsim.Lifecycle.Dns_server 1) ~now:3.0);
  Alcotest.(check string) "pce label" "pce(1)"
    (Netsim.Lifecycle.role_label role);
  Alcotest.(check string) "dns label" "dns(0)"
    (Netsim.Lifecycle.role_label (Netsim.Lifecycle.Dns_server 0));
  Alcotest.(check string) "map-server label" "map-server"
    (Netsim.Lifecycle.role_label Netsim.Lifecycle.Map_server)

(* ------------------------------------------------------------------ *)
(* Crash/bypass/degradation on the Figure-1 scenario                   *)
(* ------------------------------------------------------------------ *)

let crash_config windows =
  { Scenario.default_config with
    Scenario.cp = Scenario.Cp_pce Pce_control.default_options;
    node_faults =
      Some { Scenario.default_node_faults with Scenario.node_windows = windows }
  }

let run_crash_connection ?(data_packets = 3) ~port config =
  let s = Scenario.build config in
  Obs.Hub.set_enabled (Scenario.obs s) true;
  let sink, events = Obs.Hub.memory_sink () in
  Obs.Hub.add_sink (Scenario.obs s) sink;
  let internet = Scenario.internet s in
  let flow =
    Flow.create
      ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
      ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
      ~src_port:port ()
  in
  let c = Scenario.open_connection s ~flow ~data_packets () in
  Scenario.run s;
  (s, c, events)

let has_kind events p = List.exists (fun e -> p e.Obs.Event.kind) events

(* The ISSUE's acceptance scenario: AS_D's PCE is down for the whole
   resolution.  The DNS server answers un-piggybacked after the
   watchdog, the ITR miss degrades to a pull resolution, and the flow
   still completes — paying T_map_resol the PCE path normally hides. *)
let test_pce_crash_bypass_and_degradation () =
  let s, c, events =
    run_crash_connection
      (crash_config [ (Netsim.Lifecycle.Pce 1, 0.0, 10.0) ])
      ~port:6500
  in
  (match c.Scenario.tcp with
  | Some conn ->
      Alcotest.(check bool) "flow established despite the crash" true
        (conn.Workload.Tcp.established_at <> None)
  | None -> Alcotest.fail "connection never started");
  Alcotest.(check int) "no packet ever dropped" 0
    (Lispdp.Dataplane.counters (Scenario.dataplane s)).Lispdp.Dataplane.dropped;
  let stats = Scenario.cp_stats s in
  Alcotest.(check bool) "DNS bypassed the dead tap" true
    (stats.Mapsys.Cp_stats.bypasses >= 1);
  (match Scenario.fallback_pull s with
  | Some pull ->
      Alcotest.(check bool) "miss resolved by the pull fallback" true
        ((Mapsys.Pull.stats pull).Mapsys.Cp_stats.resolutions >= 1);
      Alcotest.(check int) "no resolution left pending" 0
        (Mapsys.Pull.pending_resolutions pull)
  | None -> Alcotest.fail "node-fault profile should build a fallback pull");
  let events = events () in
  Alcotest.(check bool) "pce_bypass event emitted" true
    (has_kind events (function Obs.Event.Pce_bypass _ -> true | _ -> false));
  Alcotest.(check bool) "degraded_to_pull event emitted" true
    (has_kind events (function
      | Obs.Event.Degraded_to_pull _ -> true
      | _ -> false));
  (* The latency decomposition attributes the extra wait to
     T_map_resol, which a healthy PCE run keeps at zero. *)
  let lat = Obs.Latency.create () in
  List.iter (Obs.Latency.feed lat) events;
  Obs.Latency.close lat ~now:(Netsim.Engine.now (Scenario.engine s));
  let summary = Obs.Latency.summary lat in
  let metric name =
    match List.assoc_opt name summary with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing from latency summary" name
  in
  Alcotest.(check bool) "degradation counted" true
    (metric "degraded_to_pull" >= 1.0);
  Alcotest.(check bool) "T_map_resol became visible" true
    (metric "t_map_resol_mean" > 0.0)

let test_crash_and_restart_recovers () =
  let s, c, events =
    run_crash_connection
      (crash_config [ (Netsim.Lifecycle.Pce 1, 0.0, 10.0) ])
      ~port:6501
  in
  Alcotest.(check bool) "flow established" true
    (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None);
  let stats = Scenario.cp_stats s in
  Alcotest.(check int) "one warm recovery" 1 stats.Mapsys.Cp_stats.recoveries;
  let events = events () in
  let crash_role = ref None and restart_role = ref None in
  List.iter
    (fun e ->
      match e.Obs.Event.kind with
      | Obs.Event.Node_crash { role } -> crash_role := Some role
      | Obs.Event.Node_restart { role } -> restart_role := Some role
      | _ -> ())
    events;
  Alcotest.(check (option string)) "crash event names the role"
    (Some "pce(1)") !crash_role;
  Alcotest.(check (option string)) "restart event names the role"
    (Some "pce(1)") !restart_role

(* A window that never closes schedules no restart, so the run still
   drains (the engine would otherwise wait forever on a restart at
   [infinity]). *)
let test_infinite_window_drains () =
  let s, c, _ =
    run_crash_connection
      (crash_config [ (Netsim.Lifecycle.Pce 1, 0.0, infinity) ])
      ~port:6502
  in
  Alcotest.(check bool) "flow established via bypass + pull" true
    (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None);
  Alcotest.(check int) "no recovery without a restart" 0
    (Scenario.cp_stats s).Mapsys.Cp_stats.recoveries

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let crash_run_lines () =
  let _, c, events =
    run_crash_connection
      (crash_config
         [ (Netsim.Lifecycle.Pce 1, 0.0, 0.3);
           (Netsim.Lifecycle.Pce 0, 0.5, 1.0) ])
      ~port:6503
  in
  Alcotest.(check bool) "flow established" true
    (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None);
  List.map Obs.Export.event_line (events ())

let test_crash_run_deterministic () =
  let first = crash_run_lines () in
  let second = crash_run_lines () in
  Alcotest.(check bool) "crash run emitted events" true (first <> []);
  Alcotest.(check (list string))
    "identical seed + schedule give byte-identical JSONL" first second

(* Strict opt-in: a profile with zero crash windows emits exactly the
   event stream of a run with no profile at all. *)
let test_empty_profile_is_inert () =
  let run config port =
    let _, c, events = run_crash_connection config ~port in
    Alcotest.(check bool) "flow established" true
      (Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None);
    List.map Obs.Export.event_line (events ())
  in
  let without =
    run
      { Scenario.default_config with
        Scenario.cp = Scenario.Cp_pce Pce_control.default_options }
      6504
  in
  let with_empty = run (crash_config []) 6504 in
  Alcotest.(check (list string))
    "empty window list perturbs nothing" without with_empty

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Any crash schedule on an otherwise lossless run degrades gracefully:
   the engine drains, the connection establishes, no resolution is
   stranded in the fallback pull, and the control-plane ledger stays
   consistent. *)
let prop_crash_schedule_harmless =
  QCheck.Test.make ~name:"any PCE crash schedule degrades gracefully"
    ~count:25
    QCheck.(
      list_of_size Gen.(1 -- 3)
        (triple (int_bound 1) (int_bound 40) (int_range 1 60)))
    (fun specs ->
      (* Windows per domain must not overlap; stagger them instead of
         discarding, so every generated case exercises the layer. *)
      let next_free = Array.make 2 0.0 in
      let windows =
        List.map
          (fun (domain, from_tenths, dur_tenths) ->
            let from_ =
              Float.max
                (float_of_int from_tenths /. 10.0)
                next_free.(domain)
            in
            let until = from_ +. (float_of_int dur_tenths /. 10.0) in
            next_free.(domain) <- until;
            (Netsim.Lifecycle.Pce domain, from_, until))
          specs
      in
      let s = Scenario.build (crash_config windows) in
      let internet = Scenario.internet s in
      let flow =
        Flow.create
          ~src:(Topology.Domain.host_eid internet.Topology.Builder.domains.(0) 0)
          ~dst:(Topology.Domain.host_eid internet.Topology.Builder.domains.(1) 0)
          ~src_port:6600 ()
      in
      let c = Scenario.open_connection s ~flow ~data_packets:2 () in
      Scenario.run s;
      let established =
        Option.bind c.Scenario.tcp Workload.Tcp.handshake_time <> None
      in
      let stranded =
        match Scenario.fallback_pull s with
        | Some pull -> Mapsys.Pull.pending_resolutions pull
        | None -> 0
      in
      let stats = Scenario.cp_stats s in
      established && stranded = 0
      && stats.Mapsys.Cp_stats.bypasses >= 0
      && stats.Mapsys.Cp_stats.recoveries >= 0
      && stats.Mapsys.Cp_stats.map_replies <= stats.Mapsys.Cp_stats.map_requests
      && (Lispdp.Dataplane.counters (Scenario.dataplane s)).Lispdp.Dataplane
           .dropped
         = 0)

let () =
  ignore addr;
  Alcotest.run "lifecycle"
    [ ( "model",
        [ Alcotest.test_case "window validation" `Quick test_window_validation;
          Alcotest.test_case "is_down boundaries" `Quick test_is_down_boundaries;
        ] );
      ( "crash-recovery",
        [ Alcotest.test_case "bypass and degradation" `Quick
            test_pce_crash_bypass_and_degradation;
          Alcotest.test_case "crash and restart" `Quick
            test_crash_and_restart_recovers;
          Alcotest.test_case "infinite window drains" `Quick
            test_infinite_window_drains;
        ] );
      ( "determinism",
        [ Alcotest.test_case "byte-identical replay" `Quick
            test_crash_run_deterministic;
          Alcotest.test_case "empty profile inert" `Quick
            test_empty_profile_is_inert;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_crash_schedule_harmless ] );
    ]
