(* Tests for the workload library: TCP handshake/RTO behaviour over an
   always-mapped dataplane, arrival processes and traffic generation. *)

open Nettypes

(* A dataplane whose control plane never misses: NERD gives every router
   the full database, so TCP behaviour is isolated from mapping logic. *)
let make_world () =
  let engine = Netsim.Engine.create () in
  let internet = Topology.Builder.figure1 () in
  let registry = Mapsys.Registry.create ~internet ~ttl:60.0 in
  let nerd = Mapsys.Nerd.create ~engine ~internet ~registry () in
  let dataplane =
    Lispdp.Dataplane.create ~engine ~internet
      ~control_plane:(Mapsys.Nerd.control_plane nerd) ()
  in
  Mapsys.Nerd.attach nerd dataplane;
  (engine, internet, dataplane)

(* A dataplane that drops everything: for RTO behaviour. *)
let make_blackhole () =
  let engine = Netsim.Engine.create () in
  let internet = Topology.Builder.figure1 () in
  let control_plane =
    { Lispdp.Dataplane.cp_name = "blackhole";
      cp_choose_egress =
        (fun ~src_domain _flow -> src_domain.Topology.Domain.borders.(0));
      cp_handle_miss =
        (fun _ _ ->
          Lispdp.Dataplane.Miss_drop Netsim.Telemetry.Mapping_resolution_drop);
      cp_note_etr_packet = (fun _ ~outer_src:_ _ -> ()) }
  in
  let dataplane = Lispdp.Dataplane.create ~engine ~internet ~control_plane () in
  (engine, internet, dataplane)

let flow_of internet port =
  let as_s = internet.Topology.Builder.domains.(0) in
  let as_d = internet.Topology.Builder.domains.(1) in
  Flow.create
    ~src:(Topology.Domain.host_eid as_s 0)
    ~dst:(Topology.Domain.host_eid as_d 0)
    ~src_port:port ()

(* ------------------------------------------------------------------ *)
(* Tcp                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tcp_handshake_and_data () =
  let engine, internet, dataplane = make_world () in
  let tcp = Workload.Tcp.create ~engine ~dataplane () in
  let established = ref None in
  let completed = ref None in
  let conn =
    Workload.Tcp.start_connection tcp ~flow:(flow_of internet 4000)
      ~data_packets:5
      ~on_established:(fun c -> established := Workload.Tcp.handshake_time c)
      ~on_complete:(fun c -> completed := c.Workload.Tcp.completed_at)
      ()
  in
  Netsim.Engine.run engine;
  (match !established with
  | Some h ->
      (* Handshake = 2 one-way delays + small internals, well under an
         RTO and over a single OWD. *)
      Alcotest.(check bool) "handshake plausible" true (h > 0.05 && h < 0.5)
  | None -> Alcotest.fail "never established");
  Alcotest.(check bool) "completed" true (!completed <> None);
  Alcotest.(check int) "single SYN" 1 conn.Workload.Tcp.syn_transmissions;
  Alcotest.(check int) "all data arrived" 5 conn.Workload.Tcp.data_delivered;
  Alcotest.(check bool) "first syn arrival recorded" true
    (conn.Workload.Tcp.first_syn_arrival <> None)

let test_tcp_rto_exhaustion () =
  let engine, internet, dataplane = make_blackhole () in
  let tcp = Workload.Tcp.create ~engine ~dataplane ~max_syn_retries:3 () in
  let conn = Workload.Tcp.start_connection tcp ~flow:(flow_of internet 4001) () in
  Netsim.Engine.run engine;
  Alcotest.(check bool) "failed" true conn.Workload.Tcp.failed;
  Alcotest.(check int) "1 initial + 3 retries" 4 conn.Workload.Tcp.syn_transmissions;
  Alcotest.(check bool) "never established" true
    (conn.Workload.Tcp.established_at = None);
  (* RTO doubling: total wait 1 + 2 + 4 + 8 = 15 s. *)
  Alcotest.(check (float 1e-6)) "exponential backoff horizon" 15.0
    (Netsim.Engine.now engine)

let test_tcp_retry_after_transient_loss () =
  (* Drop the first SYN only, as a pull-based control plane would. *)
  let engine = Netsim.Engine.create () in
  let internet = Topology.Builder.figure1 () in
  let registry = Mapsys.Registry.create ~internet ~ttl:3600.0 in
  let first = ref true in
  let dataplane_ref = ref None in
  let control_plane =
    { Lispdp.Dataplane.cp_name = "drop-once";
      cp_choose_egress =
        (fun ~src_domain _flow -> src_domain.Topology.Domain.borders.(0));
      cp_handle_miss =
        (fun router packet ->
          if !first then begin
            first := false;
            (* Install the mapping for subsequent packets. *)
            let dp = Option.get !dataplane_ref in
            (match
               Mapsys.Registry.mapping_for_eid registry
                 packet.Packet.flow.Flow.dst
             with
            | Some m -> Lispdp.Dataplane.install_mapping dp router m
            | None -> ());
            Lispdp.Dataplane.Miss_drop
              Netsim.Telemetry.Mapping_resolution_drop
          end
          else Lispdp.Dataplane.Miss_drop Netsim.Telemetry.No_route)
      ;
      cp_note_etr_packet =
        (fun router ~outer_src packet ->
          (* Glean domain-wide so the reverse path never misses. *)
          match outer_src with
          | Some rloc ->
              let dp = Option.get !dataplane_ref in
              Lispdp.Dataplane.install_mapping_all dp
                router.Lispdp.Dataplane.router_domain
                (Mapping.create
                   ~eid_prefix:(Ipv4.prefix packet.Packet.flow.Flow.src 32)
                   ~rlocs:[ Mapping.rloc rloc ] ~ttl:60.0)
          | None -> ()) }
  in
  let dataplane = Lispdp.Dataplane.create ~engine ~internet ~control_plane () in
  dataplane_ref := Some dataplane;
  let tcp = Workload.Tcp.create ~engine ~dataplane () in
  let conn = Workload.Tcp.start_connection tcp ~flow:(flow_of internet 4002) ~data_packets:1 () in
  Netsim.Engine.run engine;
  Alcotest.(check int) "retransmitted once" 2 conn.Workload.Tcp.syn_transmissions;
  (match Workload.Tcp.handshake_time conn with
  | Some h -> Alcotest.(check bool) "handshake paid one RTO" true (h > 1.0 && h < 1.5)
  | None -> Alcotest.fail "never established");
  match conn.Workload.Tcp.first_syn_arrival with
  | Some at -> Alcotest.(check bool) "first syn arrived after RTO" true (at > 1.0)
  | None -> Alcotest.fail "no syn arrival"

let test_tcp_duplicate_flow_rejected () =
  let engine, internet, dataplane = make_world () in
  let tcp = Workload.Tcp.create ~engine ~dataplane () in
  let flow = flow_of internet 4003 in
  ignore (Workload.Tcp.start_connection tcp ~flow ());
  match Workload.Tcp.start_connection tcp ~flow () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate flow accepted"

let test_tcp_concurrent_connections () =
  let engine, internet, dataplane = make_world () in
  let tcp = Workload.Tcp.create ~engine ~dataplane () in
  for port = 5000 to 5009 do
    ignore (Workload.Tcp.start_connection tcp ~flow:(flow_of internet port) ~data_packets:2 ())
  done;
  Netsim.Engine.run engine;
  let established = ref 0 and failed = ref 0 and retransmissions = ref 0 in
  Workload.Tcp.summary tcp ~established ~failed ~retransmissions;
  Alcotest.(check int) "all established" 10 !established;
  Alcotest.(check int) "none failed" 0 !failed;
  Alcotest.(check int) "no retransmissions" 0 !retransmissions;
  Alcotest.(check int) "all tracked" 10 (List.length (Workload.Tcp.connections tcp))

(* ------------------------------------------------------------------ *)
(* Arrivals                                                            *)
(* ------------------------------------------------------------------ *)

let test_poisson_count_and_horizon () =
  let engine = Netsim.Engine.create () in
  let rng = Netsim.Rng.create 3 in
  let fired = ref 0 in
  let n =
    Workload.Arrivals.poisson ~engine ~rng ~rate:100.0 ~duration:10.0
      ~f:(fun _ -> incr fired)
  in
  Netsim.Engine.run engine;
  Alcotest.(check int) "all scheduled arrivals fired" n !fired;
  (* Poisson(1000) should be within 20%. *)
  Alcotest.(check bool) "count plausible" true (n > 800 && n < 1200);
  Alcotest.(check bool) "horizon respected" true (Netsim.Engine.now engine < 10.0)

let test_poisson_indices_ordered () =
  let engine = Netsim.Engine.create () in
  let rng = Netsim.Rng.create 4 in
  let seen = ref [] in
  ignore
    (Workload.Arrivals.poisson ~engine ~rng ~rate:50.0 ~duration:2.0
       ~f:(fun i -> seen := i :: !seen));
  Netsim.Engine.run engine;
  let ordered = List.rev !seen in
  Alcotest.(check (list int)) "indices in arrival order"
    (List.init (List.length ordered) Fun.id)
    ordered

let test_uniform_spread () =
  let engine = Netsim.Engine.create () in
  let times = ref [] in
  ignore
    (Workload.Arrivals.uniform_spread ~engine ~count:5 ~duration:10.0
       ~f:(fun _ -> times := Netsim.Engine.now engine :: !times));
  Netsim.Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "even spacing"
    [ 0.0; 2.0; 4.0; 6.0; 8.0 ] (List.rev !times)

let test_burst () =
  let engine = Netsim.Engine.create () in
  let fired = ref 0 in
  ignore (Workload.Arrivals.burst ~engine ~count:7 ~f:(fun _ -> incr fired));
  Netsim.Engine.run engine;
  Alcotest.(check int) "all at once" 7 !fired;
  Alcotest.(check (float 1e-9)) "at time zero" 0.0 (Netsim.Engine.now engine)

let test_poisson_stream_matches_eager () =
  (* The self-scheduling stream (O(1) pending events) must fire at
     exactly the instants the eager scheduler would, with the same
     indices: same RNG stream, same floating-point accumulation. *)
  let collect run =
    let engine = Netsim.Engine.create () in
    let fired = ref [] in
    run ~engine ~rng:(Netsim.Rng.create 5) ~rate:50.0 ~duration:2.0
      ~f:(fun i -> fired := (i, Netsim.Engine.now engine) :: !fired);
    Netsim.Engine.run engine;
    List.rev !fired
  in
  let eager =
    collect (fun ~engine ~rng ~rate ~duration ~f ->
        ignore (Workload.Arrivals.poisson ~engine ~rng ~rate ~duration ~f))
  in
  let streamed = collect Workload.Arrivals.poisson_stream in
  Alcotest.(check int) "same arrival count" (List.length eager)
    (List.length streamed);
  List.iter2
    (fun (i1, t1) (i2, t2) ->
      Alcotest.(check int) "same index" i1 i2;
      Alcotest.(check (float 0.0)) "bit-identical arrival time" t1 t2)
    eager streamed

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)
(* ------------------------------------------------------------------ *)

let make_traffic ?zipf_alpha ?hotspots seed =
  let internet =
    Topology.Builder.generate (Netsim.Rng.create 1)
      { Topology.Builder.default_params with domain_count = 10 }
  in
  ( internet,
    Workload.Traffic.create ~rng:(Netsim.Rng.create seed) ~internet ?zipf_alpha
      ?hotspots () )

let test_traffic_flows_valid () =
  let internet, traffic = make_traffic 7 in
  for _ = 1 to 200 do
    let flow = Workload.Traffic.random_flow traffic () in
    let src_dom = Topology.Builder.domain_of_eid internet flow.Flow.src in
    let dst_dom = Topology.Builder.domain_of_eid internet flow.Flow.dst in
    match (src_dom, dst_dom) with
    | Some s, Some d ->
        if s.Topology.Domain.id = d.Topology.Domain.id then
          Alcotest.fail "intra-domain flow generated"
    | _ -> Alcotest.fail "flow endpoints not in any domain"
  done

let test_traffic_unique_ports () =
  let _, traffic = make_traffic 8 in
  let ports =
    List.init 100 (fun _ -> (Workload.Traffic.random_flow traffic ()).Flow.src_port)
  in
  Alcotest.(check int) "all ports distinct" 100
    (List.length (List.sort_uniq compare ports))

let test_traffic_zipf_skew () =
  let _, traffic = make_traffic ~zipf_alpha:1.2 9 in
  let counts = Array.make 10 0 in
  for _ = 1 to 2000 do
    let flow = Workload.Traffic.random_flow traffic ~src_domain:5 () in
    match
      Topology.Builder.domain_of_eid
        (let internet, _ = make_traffic 1 in
         internet)
        flow.Flow.dst
    with
    | Some d -> counts.(d.Topology.Domain.id) <- counts.(d.Topology.Domain.id) + 1
    | None -> ()
  done;
  Alcotest.(check bool) "domain 0 is the hottest destination" true
    (counts.(0) > counts.(9))

let test_traffic_hotspots () =
  let _, traffic = make_traffic ~hotspots:[ (3, 1.0) ] 10 in
  for _ = 1 to 50 do
    let flow = Workload.Traffic.random_flow traffic ~src_domain:0 () in
    Alcotest.(check bool) "always the hotspot" true
      (Ipv4.prefix_mem
         (Ipv4.prefix_of_string "100.0.3.0/24")
         flow.Flow.dst)
  done

let test_traffic_fixed_endpoints () =
  let _, traffic = make_traffic 11 in
  let flow = Workload.Traffic.random_flow traffic ~src_domain:2 ~dst_domain:4 () in
  Alcotest.(check bool) "src in domain 2" true
    (Ipv4.prefix_mem (Ipv4.prefix_of_string "100.0.2.0/24") flow.Flow.src);
  Alcotest.(check bool) "dst in domain 4" true
    (Ipv4.prefix_mem (Ipv4.prefix_of_string "100.0.4.0/24") flow.Flow.dst)

let test_traffic_flow_sizes () =
  let _, traffic = make_traffic 12 in
  let total = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    let s = Workload.Traffic.flow_size_packets traffic () in
    if s < 1 then Alcotest.fail "flow size below 1";
    total := !total + s
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "heavy-tailed mean in a plausible band" true
    (mean > 4.0 && mean < 40.0)

let test_traffic_port_wraparound_70k () =
  (* Regression for the >64k-flow bug: the 64 512 ephemeral source ports
     run out before 70k flows, so the allocator must wrap back to 1024
     (never handing Wire an un-encodable port) while the stepped
     destination port keeps every (src, dst, ports) tuple distinct. *)
  let _, traffic = make_traffic 14 in
  let n = 70_000 in
  let seen = ref Flow.Set.empty in
  for _ = 1 to n do
    let flow = Workload.Traffic.random_flow traffic () in
    if flow.Flow.src_port < 1024 || flow.Flow.src_port > 65535 then
      Alcotest.failf "src port %d outside the ephemeral range"
        flow.Flow.src_port;
    seen := Flow.Set.add flow !seen
  done;
  Alcotest.(check int) "all flows distinct past the 64k wrap" n
    (Flow.Set.cardinal !seen)

let test_traffic_host_name () =
  let internet, traffic = make_traffic 13 in
  let flow = Workload.Traffic.random_flow traffic ~src_domain:0 ~dst_domain:3 () in
  let name = Workload.Traffic.host_name_of_flow traffic flow in
  Alcotest.(check bool) "name addresses as3" true
    (String.length name > 7 && String.sub name (String.length name - 9) 9 = ".as3.net.");
  ignore internet

let prop_flow_sizes_at_least_one =
  QCheck.Test.make ~name:"flow sizes are positive" ~count:100
    QCheck.(pair (int_range 1 1000) (int_range 1 100))
    (fun (seed, n) ->
      let _, traffic = make_traffic seed in
      let ok = ref true in
      for _ = 1 to n do
        if Workload.Traffic.flow_size_packets traffic () < 1 then ok := false
      done;
      !ok)

let prop_port_wrap_preserves_uniqueness =
  QCheck.Test.make ~name:"port wraparound preserves flow uniqueness" ~count:3
    QCheck.(pair (int_range 1 100) (int_range 65_000 68_000))
    (fun (seed, n) ->
      let _, traffic = make_traffic seed in
      let seen = ref Flow.Set.empty in
      let in_range = ref true in
      for _ = 1 to n do
        let flow = Workload.Traffic.random_flow traffic () in
        if flow.Flow.src_port < 1024 || flow.Flow.src_port > 65535 then
          in_range := false;
        seen := Flow.Set.add flow !seen
      done;
      !in_range && Flow.Set.cardinal !seen = n)

let prop_poisson_schedules_what_it_returns =
  QCheck.Test.make ~name:"poisson fires exactly its return count" ~count:50
    QCheck.(pair (int_range 1 1000) (int_range 1 50))
    (fun (seed, rate) ->
      let engine = Netsim.Engine.create () in
      let fired = ref 0 in
      let n =
        Workload.Arrivals.poisson ~engine ~rng:(Netsim.Rng.create seed)
          ~rate:(float_of_int rate) ~duration:2.0
          ~f:(fun _ -> incr fired)
      in
      Netsim.Engine.run engine;
      !fired = n)

(* ------------------------------------------------------------------ *)
(* Eid_universe                                                        *)
(* ------------------------------------------------------------------ *)

let test_universe_distinct_and_mixed () =
  let u = Workload.Eid_universe.generate ~rng:(Netsim.Rng.create 7) ~n:50_000 in
  Alcotest.(check int) "size" 50_000 (Workload.Eid_universe.size u);
  let seen = Hashtbl.create 50_000 in
  for rank = 0 to 49_999 do
    let p = Workload.Eid_universe.prefix u rank in
    Alcotest.(check bool) "distinct prefixes" false (Hashtbl.mem seen p);
    Hashtbl.replace seen p ()
  done;
  let counts = Workload.Eid_universe.length_counts u in
  Alcotest.(check bool) "/24 dominates" true
    (match List.assoc_opt 24 counts with
    | Some c -> c > 25_000
    | None -> false);
  Alcotest.(check bool) "short prefixes present" true
    (List.exists (fun (len, c) -> len <= 16 && c > 0) counts)

(* Non-overlap is the property the cache model rests on (one rank =
   one cache line): no prefix may subsume another.  Checked against a
   trie of the full universe — each prefix must cover exactly itself. *)
let test_universe_non_overlapping () =
  let n = 20_000 in
  let u = Workload.Eid_universe.generate ~rng:(Netsim.Rng.create 11) ~n in
  let t = Prefix_table.create () in
  for rank = 0 to n - 1 do
    Prefix_table.add t (Workload.Eid_universe.prefix u rank) ()
  done;
  Alcotest.(check int) "no duplicate networks" n (Prefix_table.length t);
  for rank = 0 to n - 1 do
    let p = Workload.Eid_universe.prefix u rank in
    let covered =
      Prefix_table.fold_covered t p ~init:0 ~f:(fun _ () acc -> acc + 1)
    in
    if covered <> 1 then
      Alcotest.failf "%s covers %d universe prefixes (want 1)"
        (Ipv4.prefix_to_string p) covered
  done

let test_universe_bounds () =
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Eid_universe.generate: n must be positive") (fun () ->
      ignore
        (Workload.Eid_universe.generate ~rng:(Netsim.Rng.create 1) ~n:0));
  Alcotest.(check bool) "capacity covers millions" true
    (Workload.Eid_universe.capacity > 9_000_000)

(* ------------------------------------------------------------------ *)
(* Cache_model                                                         *)
(* ------------------------------------------------------------------ *)

(* Uniform popularity solves in closed form: every mass is 1/n, so
   occupancy C pins the characteristic time and the miss rate is
   exactly (n - C) / n.  An analytic anchor for the Newton solver. *)
let test_cache_model_uniform_exact () =
  let n = 10_000 and capacity = 2_500 in
  let masses = Workload.Cache_model.zipf_masses ~n ~alpha:0.0 in
  let p = Workload.Cache_model.predict ~masses ~capacity in
  let expected = float_of_int (n - capacity) /. float_of_int n in
  Alcotest.(check (float 1e-6)) "uniform miss is (n-C)/n" expected
    p.Workload.Cache_model.miss_rate;
  Alcotest.(check bool) "hit + miss = 1" true
    (Float.abs
       (p.Workload.Cache_model.hit_rate +. p.Workload.Cache_model.miss_rate
      -. 1.0)
    < 1e-9)

let test_cache_model_degenerate_capacity () =
  let masses = Workload.Cache_model.zipf_masses ~n:100 ~alpha:0.9 in
  let p = Workload.Cache_model.predict ~masses ~capacity:100 in
  Alcotest.(check (float 0.0)) "everything fits: no misses" 0.0
    p.Workload.Cache_model.miss_rate;
  let p = Workload.Cache_model.predict ~masses ~capacity:1000 in
  Alcotest.(check (float 0.0)) "overprovisioned: no misses" 0.0
    p.Workload.Cache_model.miss_rate

(* End-to-end model agreement at test scale: an LRU cache driven by
   the Zipf sampler lands within a few percent of the Coras/Che
   prediction.  The M-series experiments gate the same comparison at a
   million prefixes; this keeps the mechanism pinned in the tier-1
   suite. *)
let test_cache_model_matches_measured_lru () =
  let n = 20_000 and capacity = 2_048 in
  let universe = Workload.Eid_universe.generate ~rng:(Netsim.Rng.create 13) ~n in
  let dist = Netsim.Rng.Zipf.create ~n ~alpha:0.9 in
  let masses =
    Array.init n (fun k -> Netsim.Rng.Zipf.probability dist k)
  in
  let prediction = Workload.Cache_model.predict ~masses ~capacity in
  let cache = Lispdp.Map_cache.create ~capacity () in
  let rng = Netsim.Rng.create 17 in
  let refs = 200_000 in
  let misses = ref 0 in
  let warmup = 3 * capacity in
  for i = 1 to warmup + refs do
    let rank = Netsim.Rng.Zipf.sample dist rng in
    match
      Lispdp.Map_cache.lookup cache ~now:0.0
        (Workload.Eid_universe.network universe rank)
    with
    | Some _ -> ()
    | None ->
        if i > warmup then incr misses;
        Lispdp.Map_cache.insert cache ~now:0.0
          (Mapping.create
             ~eid_prefix:(Workload.Eid_universe.prefix universe rank)
             ~rlocs:[ Mapping.rloc (Ipv4.addr_of_int 0x0A000001) ]
             ~ttl:1e9)
  done;
  let measured = float_of_int !misses /. float_of_int refs in
  let predicted = prediction.Workload.Cache_model.miss_rate in
  let rel_err = Float.abs (measured -. predicted) /. predicted in
  if rel_err > 0.05 then
    Alcotest.failf "measured %.4f vs predicted %.4f (rel err %.3f > 0.05)"
      measured predicted rel_err

let () =
  Alcotest.run "workload"
    [
      ( "tcp",
        [
          Alcotest.test_case "handshake and data" `Quick test_tcp_handshake_and_data;
          Alcotest.test_case "rto exhaustion" `Quick test_tcp_rto_exhaustion;
          Alcotest.test_case "retry after loss" `Quick test_tcp_retry_after_transient_loss;
          Alcotest.test_case "duplicate flow" `Quick test_tcp_duplicate_flow_rejected;
          Alcotest.test_case "concurrent" `Quick test_tcp_concurrent_connections;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "poisson" `Quick test_poisson_count_and_horizon;
          Alcotest.test_case "poisson order" `Quick test_poisson_indices_ordered;
          Alcotest.test_case "uniform spread" `Quick test_uniform_spread;
          Alcotest.test_case "burst" `Quick test_burst;
          Alcotest.test_case "stream matches eager" `Quick
            test_poisson_stream_matches_eager;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "flows valid" `Quick test_traffic_flows_valid;
          Alcotest.test_case "unique ports" `Quick test_traffic_unique_ports;
          Alcotest.test_case "zipf skew" `Quick test_traffic_zipf_skew;
          Alcotest.test_case "hotspots" `Quick test_traffic_hotspots;
          Alcotest.test_case "fixed endpoints" `Quick test_traffic_fixed_endpoints;
          Alcotest.test_case "flow sizes" `Quick test_traffic_flow_sizes;
          Alcotest.test_case "port wraparound at 70k" `Quick
            test_traffic_port_wraparound_70k;
          Alcotest.test_case "host name" `Quick test_traffic_host_name;
        ] );
      ( "eid_universe",
        [
          Alcotest.test_case "distinct and mixed" `Quick
            test_universe_distinct_and_mixed;
          Alcotest.test_case "non-overlapping" `Quick
            test_universe_non_overlapping;
          Alcotest.test_case "bounds" `Quick test_universe_bounds;
        ] );
      ( "cache_model",
        [
          Alcotest.test_case "uniform exact" `Quick
            test_cache_model_uniform_exact;
          Alcotest.test_case "degenerate capacity" `Quick
            test_cache_model_degenerate_capacity;
          Alcotest.test_case "matches measured lru" `Quick
            test_cache_model_matches_measured_lru;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_flow_sizes_at_least_one; prop_poisson_schedules_what_it_returns;
            prop_port_wrap_preserves_uniqueness ] );
    ]
