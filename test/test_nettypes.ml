(* Unit and property tests for nettypes: IPv4 parsing/prefix arithmetic,
   longest-prefix-match trie, mapping selection, packet encapsulation. *)

open Nettypes

let addr = Ipv4.addr_of_string
let pfx = Ipv4.prefix_of_string

(* ------------------------------------------------------------------ *)
(* Ipv4                                                                *)
(* ------------------------------------------------------------------ *)

let test_addr_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Ipv4.addr_to_string (addr s)))
    [ "0.0.0.0"; "10.1.2.3"; "255.255.255.255"; "192.168.0.1" ]

let test_addr_malformed () =
  List.iter
    (fun s ->
      match Ipv4.addr_of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted malformed %s" s)
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "-1.0.0.0"; "a.b.c.d"; "1..2.3" ]

let test_addr_ordering () =
  Alcotest.(check bool) "10/8 < 11/8" true
    (Ipv4.addr_compare (addr "10.0.0.0") (addr "11.0.0.0") < 0);
  Alcotest.(check int) "equal" 0 (Ipv4.addr_compare (addr "1.2.3.4") (addr "1.2.3.4"))

let test_addr_offset () =
  Alcotest.(check string) "offset" "10.0.1.0"
    (Ipv4.addr_to_string (Ipv4.addr_offset (addr "10.0.0.255") 1));
  Alcotest.check_raises "overflow"
    (Invalid_argument "Ipv4.addr_offset: out of range") (fun () ->
      ignore (Ipv4.addr_offset (addr "255.255.255.255") 1))

let test_prefix_canonical () =
  let p = Ipv4.prefix (addr "10.1.2.3") 8 in
  Alcotest.(check string) "host bits cleared" "10.0.0.0/8"
    (Ipv4.prefix_to_string p);
  Alcotest.(check bool) "equal to parsed" true
    (Ipv4.prefix_equal p (pfx "10.0.0.0/8"))

let test_prefix_mem () =
  let p = pfx "10.0.0.0/8" in
  Alcotest.(check bool) "inside" true (Ipv4.prefix_mem p (addr "10.200.3.4"));
  Alcotest.(check bool) "outside" false (Ipv4.prefix_mem p (addr "11.0.0.1"));
  let p0 = pfx "0.0.0.0/0" in
  Alcotest.(check bool) "default route matches all" true
    (Ipv4.prefix_mem p0 (addr "200.1.2.3"));
  let host = pfx "1.2.3.4/32" in
  Alcotest.(check bool) "host route exact" true (Ipv4.prefix_mem host (addr "1.2.3.4"));
  Alcotest.(check bool) "host route other" false (Ipv4.prefix_mem host (addr "1.2.3.5"))

let test_prefix_subsumes () =
  Alcotest.(check bool) "/8 subsumes /24" true
    (Ipv4.prefix_subsumes (pfx "10.0.0.0/8") (pfx "10.5.0.0/24"));
  Alcotest.(check bool) "/24 not subsumes /8" false
    (Ipv4.prefix_subsumes (pfx "10.5.0.0/24") (pfx "10.0.0.0/8"));
  Alcotest.(check bool) "disjoint" false
    (Ipv4.prefix_subsumes (pfx "10.0.0.0/8") (pfx "11.0.0.0/24"))

let test_prefix_nth () =
  Alcotest.(check string) "nth" "10.0.0.5"
    (Ipv4.addr_to_string (Ipv4.prefix_nth (pfx "10.0.0.0/24") 5));
  Alcotest.check_raises "outside"
    (Invalid_argument "Ipv4.prefix_nth: index outside prefix") (fun () ->
      ignore (Ipv4.prefix_nth (pfx "10.0.0.0/24") 256))

let test_addr_succ () =
  Alcotest.(check string) "succ" "10.0.0.2"
    (Ipv4.addr_to_string (Ipv4.addr_succ (addr "10.0.0.1")));
  Alcotest.check_raises "top of space"
    (Invalid_argument "Ipv4.addr_succ: address space exhausted") (fun () ->
      ignore (Ipv4.addr_succ (addr "255.255.255.255")))

let test_prefix_size_and_compare () =
  Alcotest.(check int) "/24 size" 256 (Ipv4.prefix_size (pfx "10.0.0.0/24"));
  Alcotest.(check int) "/32 size" 1 (Ipv4.prefix_size (pfx "10.0.0.0/32"));
  Alcotest.(check bool) "network order" true
    (Ipv4.prefix_compare (pfx "10.0.0.0/8") (pfx "11.0.0.0/8") < 0);
  Alcotest.(check bool) "length breaks ties" true
    (Ipv4.prefix_compare (pfx "10.0.0.0/8") (pfx "10.0.0.0/16") < 0);
  Alcotest.(check int) "equal" 0
    (Ipv4.prefix_compare (pfx "10.0.0.0/8") (pfx "10.3.0.0/8"))

(* ------------------------------------------------------------------ *)
(* Int_table                                                           *)
(* ------------------------------------------------------------------ *)

let test_int_table_roundtrip () =
  let t = Int_table.create ~dummy:(-1) () in
  for i = 0 to 99 do
    Int_table.add t (i * 7919) i
  done;
  Alcotest.(check int) "length" 100 (Int_table.length t);
  Alcotest.(check (option int)) "find" (Some 42) (Int_table.find t (42 * 7919));
  Alcotest.(check bool) "mem" true (Int_table.mem t (7 * 7919));
  Alcotest.(check (option int)) "absent" None (Int_table.find t 1);
  Int_table.add t (42 * 7919) 1042;
  Alcotest.(check int) "replace keeps length" 100 (Int_table.length t);
  Alcotest.(check (option int)) "replaced" (Some 1042)
    (Int_table.find t (42 * 7919));
  Int_table.remove t (42 * 7919);
  Alcotest.(check bool) "removed" false (Int_table.mem t (42 * 7919));
  Alcotest.(check int) "length after remove" 99 (Int_table.length t)

(* A bulk delete must trigger the in-place rehash from [remove]: the
   survivors stay findable through short probes instead of scanning a
   tombstone field, and the tombstone count collapses.  This pins the
   remove-side cleanup (before it, tombstones only ever accumulated). *)
let test_int_table_mass_remove_cleans_tombstones () =
  let t = Int_table.create ~dummy:(-1) () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Int_table.add t i i
  done;
  for i = 0 to n - 11 do
    Int_table.remove t i
  done;
  Alcotest.(check int) "survivors" 10 (Int_table.length t);
  Alcotest.(check bool) "tombstones bounded by live entries" true
    (Int_table.tombstones t <= Stdlib.max 1 (Int_table.length t));
  for i = n - 10 to n - 1 do
    Alcotest.(check (option int)) "survivor findable" (Some i)
      (Int_table.find t i);
    Alcotest.(check bool) "short probe" true (Int_table.probe_length t i <= 16)
  done

(* Fixed-size churn at a power-of-two working set — a cache evicting
   one entry per insert parks the table exactly at its load boundary.
   Probes must stay short and tombstones bounded; the thrashing mode
   (a full rehash per insertion to reclaim a single tombstone) would
   time this out long before the assertions fail. *)
let test_int_table_churn_keeps_probes_short () =
  let t = Int_table.create ~dummy:(-1) () in
  let window = 4096 in
  let total = 40_000 in
  for i = 0 to total - 1 do
    if i >= window then Int_table.remove t (i - window);
    Int_table.add t i i
  done;
  Alcotest.(check int) "window live" window (Int_table.length t);
  Alcotest.(check bool) "tombstones bounded by live entries" true
    (Int_table.tombstones t <= Stdlib.max 1 (Int_table.length t));
  let probes = ref 0 in
  for i = total - window to total - 1 do
    probes := !probes + Int_table.probe_length t i
  done;
  let mean = float_of_int !probes /. float_of_int window in
  if mean > 4.0 then
    Alcotest.failf "mean probe length %.2f after churn (want <= 4)" mean

(* ------------------------------------------------------------------ *)
(* Prefix_table                                                        *)
(* ------------------------------------------------------------------ *)

let test_trie_longest_match () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "10.0.0.0/8") "eight";
  Prefix_table.add t (pfx "10.1.0.0/16") "sixteen";
  Prefix_table.add t (pfx "10.1.2.0/24") "twentyfour";
  let lookup a =
    match Prefix_table.lookup t (addr a) with
    | Some (_, v) -> v
    | None -> "none"
  in
  Alcotest.(check string) "most specific" "twentyfour" (lookup "10.1.2.9");
  Alcotest.(check string) "middle" "sixteen" (lookup "10.1.3.9");
  Alcotest.(check string) "least" "eight" (lookup "10.9.9.9");
  Alcotest.(check string) "miss" "none" (lookup "11.0.0.1")

let test_trie_exact_and_remove () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "10.0.0.0/8") 1;
  Prefix_table.add t (pfx "10.0.0.0/16") 2;
  Alcotest.(check (option int)) "exact /8" (Some 1)
    (Prefix_table.find_exact t (pfx "10.0.0.0/8"));
  Alcotest.(check (option int)) "exact /16" (Some 2)
    (Prefix_table.find_exact t (pfx "10.0.0.0/16"));
  Alcotest.(check int) "length" 2 (Prefix_table.length t);
  Prefix_table.remove t (pfx "10.0.0.0/16");
  Alcotest.(check (option int)) "removed" None
    (Prefix_table.find_exact t (pfx "10.0.0.0/16"));
  Alcotest.(check int) "length after remove" 1 (Prefix_table.length t);
  Prefix_table.remove t (pfx "10.0.0.0/16");
  Alcotest.(check int) "idempotent remove" 1 (Prefix_table.length t)

let test_trie_replace () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "10.0.0.0/8") 1;
  Prefix_table.add t (pfx "10.0.0.0/8") 2;
  Alcotest.(check int) "size unchanged" 1 (Prefix_table.length t);
  Alcotest.(check (option int)) "replaced" (Some 2)
    (Prefix_table.find_exact t (pfx "10.0.0.0/8"))

let test_trie_default_route () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "0.0.0.0/0") "default";
  Prefix_table.add t (pfx "10.0.0.0/8") "ten";
  Alcotest.(check (option string)) "falls back to default" (Some "default")
    (Prefix_table.lookup_value t (addr "99.1.1.1"));
  Alcotest.(check (option string)) "specific wins" (Some "ten")
    (Prefix_table.lookup_value t (addr "10.1.1.1"))

let test_trie_covering () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "10.0.0.0/8") "eight";
  (match Prefix_table.covering t (pfx "10.1.0.0/16") with
  | Some (p, v) ->
      Alcotest.(check string) "covering value" "eight" v;
      Alcotest.(check string) "covering prefix" "10.0.0.0/8"
        (Ipv4.prefix_to_string p)
  | None -> Alcotest.fail "expected covering prefix");
  Alcotest.(check bool) "no covering" true
    (Prefix_table.covering t (pfx "11.0.0.0/16") = None)

let test_trie_to_list_sorted () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "11.0.0.0/8") 3;
  Prefix_table.add t (pfx "10.0.0.0/8") 1;
  Prefix_table.add t (pfx "10.128.0.0/9") 2;
  let listed = List.map (fun (p, _) -> Ipv4.prefix_to_string p) (Prefix_table.to_list t) in
  Alcotest.(check (list string)) "ascending order"
    [ "10.0.0.0/8"; "10.128.0.0/9"; "11.0.0.0/8" ] listed

let test_trie_fold_covered () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "10.0.0.0/8") "eight";
  Prefix_table.add t (pfx "10.1.0.0/16") "sixteen";
  Prefix_table.add t (pfx "10.1.2.0/24") "twentyfour";
  Prefix_table.add t (pfx "11.0.0.0/8") "sibling";
  let covered p =
    List.sort compare
      (Prefix_table.fold_covered t (pfx p) ~init:[] ~f:(fun q _ acc ->
           Ipv4.prefix_to_string q :: acc))
  in
  Alcotest.(check (list string)) "subtree incl. the prefix itself"
    [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ]
    (covered "10.0.0.0/8");
  Alcotest.(check (list string)) "inner subtree only"
    [ "10.1.0.0/16"; "10.1.2.0/24" ]
    (covered "10.1.0.0/16");
  Alcotest.(check (list string)) "covered with no binding at the root"
    [ "10.1.2.0/24" ] (covered "10.1.0.0/20");
  Alcotest.(check (list string)) "absent subtree" [] (covered "12.0.0.0/8")

(* fold_covered agrees with filtering the whole-table fold — the
   remove_covered fast path must not change what is covered. *)
let prop_trie_fold_covered_matches_filter =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (1 -- 30) (pair (int_bound 0xFFFFFF) (int_range 4 24)))
        (pair (int_bound 0xFFFFFF) (int_range 2 20)))
  in
  QCheck.Test.make ~name:"fold_covered = fold + subsumes filter" ~count:300
    (QCheck.make gen) (fun (entries, (qraw, qlen)) ->
      let t = Prefix_table.create () in
      List.iter
        (fun (raw, len) ->
          let p = Ipv4.prefix (Ipv4.addr_of_int (raw * 251 land 0xFFFFFFFF)) len in
          Prefix_table.add t p ())
        entries;
      let q = Ipv4.prefix (Ipv4.addr_of_int (qraw * 257 land 0xFFFFFFFF)) qlen in
      let fast =
        List.sort compare
          (Prefix_table.fold_covered t q ~init:[] ~f:(fun p () acc -> p :: acc))
      in
      let slow =
        List.sort compare
          (Prefix_table.fold t ~init:[] ~f:(fun p () acc ->
               if Ipv4.prefix_subsumes q p then p :: acc else acc))
      in
      fast = slow)

let prop_trie_matches_reference =
  (* The trie's longest-prefix match agrees with a brute-force scan. *)
  let gen =
    QCheck.Gen.(
      pair
        (list_size (1 -- 30)
           (pair (int_bound 0xFFFFFF) (int_range 4 24)))
        (int_bound 0xFFFFFF))
  in
  QCheck.Test.make ~name:"trie lookup = reference scan" ~count:300
    (QCheck.make gen) (fun (entries, probe_raw) ->
      let t = Prefix_table.create () in
      let prefixes =
        List.map
          (fun (raw, len) ->
            let p = Ipv4.prefix (Ipv4.addr_of_int (raw * 251 land 0xFFFFFFFF)) len in
            Prefix_table.add t p (Ipv4.prefix_to_string p);
            p)
          entries
      in
      let probe = Ipv4.addr_of_int (probe_raw * 257 land 0xFFFFFFFF) in
      let reference =
        List.fold_left
          (fun acc p ->
            if Ipv4.prefix_mem p probe then
              match acc with
              | Some best when Ipv4.prefix_length best >= Ipv4.prefix_length p -> acc
              | Some _ | None -> Some p
            else acc)
          None prefixes
      in
      match (Prefix_table.lookup t probe, reference) with
      | None, None -> true
      | Some (p, _), Some q -> Ipv4.prefix_length p = Ipv4.prefix_length q
      | Some _, None | None, Some _ -> false)

let test_trie_iter_and_clear () =
  let t = Prefix_table.create () in
  Prefix_table.add t (pfx "10.0.0.0/8") 1;
  Prefix_table.add t (pfx "11.0.0.0/8") 2;
  let sum = ref 0 in
  Prefix_table.iter t ~f:(fun _ v -> sum := !sum + v);
  Alcotest.(check int) "iter visits all" 3 !sum;
  Alcotest.(check int) "fold agrees" 3
    (Prefix_table.fold t ~init:0 ~f:(fun _ v acc -> acc + v));
  Prefix_table.clear t;
  Alcotest.(check bool) "empty after clear" true (Prefix_table.is_empty t);
  Alcotest.(check (option int)) "lookup after clear" None
    (Prefix_table.lookup_value t (addr "10.0.0.1"))

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let mk_mapping () =
  Mapping.create ~eid_prefix:(pfx "100.0.0.0/24")
    ~rlocs:
      [ Mapping.rloc ~priority:1 ~weight:75 (addr "10.0.0.1");
        Mapping.rloc ~priority:1 ~weight:25 (addr "11.0.0.1");
        Mapping.rloc ~priority:2 ~weight:100 (addr "12.0.0.1") ]
    ~ttl:60.0

let test_mapping_validation () =
  Alcotest.check_raises "empty rlocs" (Invalid_argument "Mapping.create: empty RLOC list")
    (fun () ->
      ignore (Mapping.create ~eid_prefix:(pfx "1.0.0.0/8") ~rlocs:[] ~ttl:1.0));
  Alcotest.check_raises "bad ttl" (Invalid_argument "Mapping.create: non-positive TTL")
    (fun () ->
      ignore
        (Mapping.create ~eid_prefix:(pfx "1.0.0.0/8")
           ~rlocs:[ Mapping.rloc (addr "10.0.0.1") ]
           ~ttl:0.0))

let test_mapping_best_rlocs () =
  let m = mk_mapping () in
  let best = Mapping.best_rlocs m in
  Alcotest.(check int) "two at priority 1" 2 (List.length best);
  List.iter
    (fun r -> Alcotest.(check int) "priority" 1 r.Mapping.priority)
    best

let test_mapping_select_deterministic () =
  let m = mk_mapping () in
  let a = Mapping.select_rloc m ~hash:12345 in
  let b = Mapping.select_rloc m ~hash:12345 in
  Alcotest.(check bool) "same hash, same rloc" true
    (Ipv4.addr_equal a.Mapping.rloc_addr b.Mapping.rloc_addr)

let test_mapping_select_never_low_priority () =
  let m = mk_mapping () in
  for h = 0 to 999 do
    let r = Mapping.select_rloc m ~hash:h in
    if r.Mapping.priority <> 1 then Alcotest.fail "selected backup rloc"
  done

let test_mapping_select_weight_share () =
  let m = mk_mapping () in
  let first = ref 0 in
  let n = 10_000 in
  for h = 0 to n - 1 do
    let r = Mapping.select_rloc m ~hash:(h * 2654435761) in
    if Ipv4.addr_equal r.Mapping.rloc_addr (addr "10.0.0.1") then incr first
  done;
  let share = float_of_int !first /. float_of_int n in
  if Float.abs (share -. 0.75) > 0.05 then
    Alcotest.failf "weight share %f far from 0.75" share

let test_mapping_covers () =
  let m = mk_mapping () in
  Alcotest.(check bool) "inside" true (Mapping.covers m (addr "100.0.0.77"));
  Alcotest.(check bool) "outside" false (Mapping.covers m (addr "100.0.1.1"))

let test_mapping_wire_size () =
  let m = mk_mapping () in
  (* 12-byte header + 12 per RLOC (the approximation the LISP record
     format suggests; the exact codec sizes live in the wire library). *)
  Alcotest.(check int) "legacy estimate" (12 + 36) (Mapping.wire_size m)

let test_mapping_pp_smoke () =
  let rendered = Format.asprintf "%a" Mapping.pp (mk_mapping ()) in
  Alcotest.(check bool) "prefix mentioned" true
    (String.length rendered > 0);
  let e =
    { Mapping.src_eid = addr "1.0.0.1"; dst_eid = addr "2.0.0.1";
      src_rloc = addr "10.0.0.1"; dst_rloc = addr "11.0.0.1" }
  in
  Alcotest.(check bool) "flow entry renders" true
    (String.length (Format.asprintf "%a" Mapping.pp_flow_entry e) > 0)

(* ------------------------------------------------------------------ *)
(* Flow and Packet                                                     *)
(* ------------------------------------------------------------------ *)

let test_flow_reverse () =
  let f =
    Flow.create ~src:(addr "100.0.0.1") ~dst:(addr "100.1.0.1") ~src_port:4242
      ~dst_port:80 ()
  in
  let r = Flow.reverse f in
  Alcotest.(check bool) "reverse swaps" true
    (Ipv4.addr_equal r.Flow.src (addr "100.1.0.1")
    && Ipv4.addr_equal r.Flow.dst (addr "100.0.0.1")
    && r.Flow.src_port = 80 && r.Flow.dst_port = 4242);
  Alcotest.(check bool) "double reverse is identity" true
    (Flow.equal f (Flow.reverse r))

let test_flow_hash_stable () =
  let f =
    Flow.create ~src:(addr "1.2.3.4") ~dst:(addr "5.6.7.8") ~src_port:1 ~dst_port:2 ()
  in
  Alcotest.(check int) "hash deterministic" (Flow.hash f) (Flow.hash f);
  let g = Flow.create ~src:(addr "1.2.3.4") ~dst:(addr "5.6.7.8") ~src_port:1 ~dst_port:3 () in
  Alcotest.(check bool) "port changes hash" true (Flow.hash f <> Flow.hash g)

let test_flow_map () =
  let f1 = Flow.create ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.1") () in
  let f2 = Flow.create ~src:(addr "1.0.0.2") ~dst:(addr "2.0.0.1") () in
  let m = Flow.Map.(add f1 "a" (add f2 "b" empty)) in
  Alcotest.(check (option string)) "find f1" (Some "a") (Flow.Map.find_opt f1 m);
  Alcotest.(check (option string)) "find f2" (Some "b") (Flow.Map.find_opt f2 m)

let test_packet_encap_cycle () =
  let f = Flow.create ~src:(addr "100.0.0.1") ~dst:(addr "100.1.0.1") () in
  let p = Packet.make ~flow:f ~segment:Packet.Syn ~sent_at:0.0 in
  Alcotest.(check bool) "fresh not encapsulated" false (Packet.is_encapsulated p);
  let base = Packet.size p in
  Alcotest.(check int) "syn is headers only" 40 base;
  let e = Packet.encapsulate p ~outer_src:(addr "10.0.0.1") ~outer_dst:(addr "12.0.0.1") in
  Alcotest.(check bool) "encapsulated" true (Packet.is_encapsulated e);
  Alcotest.(check int) "outer adds 36" (base + 36) (Packet.size e);
  let d = Packet.decapsulate e in
  Alcotest.(check int) "size restored" base (Packet.size d);
  Alcotest.(check int) "id preserved" p.Packet.id d.Packet.id

let test_packet_double_encap_rejected () =
  let f = Flow.create ~src:(addr "100.0.0.1") ~dst:(addr "100.1.0.1") () in
  let p = Packet.make ~flow:f ~segment:(Packet.Data 1000) ~sent_at:0.0 in
  let e = Packet.encapsulate p ~outer_src:(addr "10.0.0.1") ~outer_dst:(addr "12.0.0.1") in
  Alcotest.check_raises "double encap"
    (Invalid_argument "Packet.encapsulate: already encapsulated") (fun () ->
      ignore (Packet.encapsulate e ~outer_src:(addr "10.0.0.1") ~outer_dst:(addr "12.0.0.1")));
  Alcotest.check_raises "decap plain"
    (Invalid_argument "Packet.decapsulate: not encapsulated") (fun () ->
      ignore (Packet.decapsulate p))

let test_packet_ids_unique () =
  let f = Flow.create ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.1") () in
  let a = Packet.make ~flow:f ~segment:Packet.Syn ~sent_at:0.0 in
  let b = Packet.make ~flow:f ~segment:Packet.Syn ~sent_at:0.0 in
  Alcotest.(check bool) "distinct ids" true (a.Packet.id <> b.Packet.id)

let test_segment_bytes () =
  Alcotest.(check int) "syn" 0 (Packet.segment_bytes Packet.Syn);
  Alcotest.(check int) "data" 1200 (Packet.segment_bytes (Packet.Data 1200));
  Alcotest.(check int) "fin" 0 (Packet.segment_bytes Packet.Fin);
  let f = Flow.create ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.1") () in
  let p = Packet.make ~flow:f ~segment:(Packet.Data 1200) ~sent_at:1.5 in
  Alcotest.(check int) "size = headers + payload" 1240 (Packet.size p);
  Alcotest.(check (float 1e-9)) "sent_at preserved" 1.5 p.Packet.sent_at;
  Alcotest.(check bool) "pp renders" true
    (String.length (Format.asprintf "%a" Packet.pp p) > 0)

let test_flow_set () =
  let f1 = Flow.create ~src:(addr "1.0.0.1") ~dst:(addr "2.0.0.1") () in
  let f2 = Flow.reverse f1 in
  let s = Flow.Set.(add f1 (add f2 (add f1 empty))) in
  Alcotest.(check int) "set dedups" 2 (Flow.Set.cardinal s)

let prop_prefix_mem_network =
  QCheck.Test.make ~name:"prefix contains its own network address" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_range 0 32))
    (fun (raw, len) ->
      let p = Ipv4.prefix (Ipv4.addr_of_int (raw * 163 land 0xFFFFFFFF)) len in
      Ipv4.prefix_mem p (Ipv4.prefix_network p))

let prop_flow_hash_reverse_consistent =
  QCheck.Test.make ~name:"flow equal implies same hash" ~count:300
    QCheck.(quad (int_bound 1000) (int_bound 1000) (int_bound 65535) (int_bound 65535))
    (fun (s, d, sp, dp) ->
      let f1 = Flow.create ~src:(Ipv4.addr_of_int s) ~dst:(Ipv4.addr_of_int d) ~src_port:sp ~dst_port:dp () in
      let f2 = Flow.create ~src:(Ipv4.addr_of_int s) ~dst:(Ipv4.addr_of_int d) ~src_port:sp ~dst_port:dp () in
      Flow.equal f1 f2 && Flow.hash f1 = Flow.hash f2)

let () =
  Alcotest.run "nettypes"
    [
      ( "ipv4",
        [
          Alcotest.test_case "roundtrip" `Quick test_addr_roundtrip;
          Alcotest.test_case "malformed" `Quick test_addr_malformed;
          Alcotest.test_case "ordering" `Quick test_addr_ordering;
          Alcotest.test_case "offset" `Quick test_addr_offset;
          Alcotest.test_case "succ" `Quick test_addr_succ;
          Alcotest.test_case "prefix size/compare" `Quick test_prefix_size_and_compare;
          Alcotest.test_case "prefix canonical" `Quick test_prefix_canonical;
          Alcotest.test_case "prefix mem" `Quick test_prefix_mem;
          Alcotest.test_case "prefix subsumes" `Quick test_prefix_subsumes;
          Alcotest.test_case "prefix nth" `Quick test_prefix_nth;
        ] );
      ( "prefix_table",
        [
          Alcotest.test_case "longest match" `Quick test_trie_longest_match;
          Alcotest.test_case "exact and remove" `Quick test_trie_exact_and_remove;
          Alcotest.test_case "replace" `Quick test_trie_replace;
          Alcotest.test_case "default route" `Quick test_trie_default_route;
          Alcotest.test_case "covering" `Quick test_trie_covering;
          Alcotest.test_case "sorted listing" `Quick test_trie_to_list_sorted;
          Alcotest.test_case "iter and clear" `Quick test_trie_iter_and_clear;
          Alcotest.test_case "fold covered" `Quick test_trie_fold_covered;
        ] );
      ( "int_table",
        [
          Alcotest.test_case "roundtrip" `Quick test_int_table_roundtrip;
          Alcotest.test_case "mass remove cleans tombstones" `Quick
            test_int_table_mass_remove_cleans_tombstones;
          Alcotest.test_case "churn keeps probes short" `Quick
            test_int_table_churn_keeps_probes_short;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "validation" `Quick test_mapping_validation;
          Alcotest.test_case "best rlocs" `Quick test_mapping_best_rlocs;
          Alcotest.test_case "select deterministic" `Quick test_mapping_select_deterministic;
          Alcotest.test_case "select priority" `Quick test_mapping_select_never_low_priority;
          Alcotest.test_case "select weights" `Quick test_mapping_select_weight_share;
          Alcotest.test_case "covers" `Quick test_mapping_covers;
          Alcotest.test_case "wire size" `Quick test_mapping_wire_size;
          Alcotest.test_case "pp" `Quick test_mapping_pp_smoke;
        ] );
      ( "flow",
        [
          Alcotest.test_case "reverse" `Quick test_flow_reverse;
          Alcotest.test_case "hash stable" `Quick test_flow_hash_stable;
          Alcotest.test_case "map" `Quick test_flow_map;
          Alcotest.test_case "set" `Quick test_flow_set;
        ] );
      ( "packet",
        [
          Alcotest.test_case "encap cycle" `Quick test_packet_encap_cycle;
          Alcotest.test_case "double encap rejected" `Quick test_packet_double_encap_rejected;
          Alcotest.test_case "unique ids" `Quick test_packet_ids_unique;
          Alcotest.test_case "segment bytes" `Quick test_segment_bytes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_trie_matches_reference; prop_trie_fold_covered_matches_filter;
            prop_prefix_mem_network; prop_flow_hash_reverse_consistent ] );
    ]
