type sink = Event.t -> unit

type t = { mutable on : bool; mutable sinks : sink list }

let create ?(enabled = false) () = { on = enabled; sinks = [] }
let enabled t = t.on
let set_enabled t on = t.on <- on
let add_sink t sink = t.sinks <- t.sinks @ [ sink ]
let sink_count t = List.length t.sinks

let dispatch t event = List.iter (fun sink -> sink event) t.sinks

let emit t ~time ~actor ?flow kind =
  if t.on then dispatch t { Event.time; actor; flow; kind }

let memory_sink () =
  let buffered = ref [] in
  let sink event = buffered := event :: !buffered in
  let contents () = List.rev !buffered in
  (sink, contents)

let trace_sink trace event =
  Netsim.Trace.record trace ~time:event.Event.time ~actor:event.Event.actor
    (Event.describe event)
