type sink = Event.t -> unit

type t = { mutable on : bool; mutable sinks : sink list }

let create ?(enabled = false) () = { on = enabled; sinks = [] }
let enabled t = t.on
let set_enabled t on = t.on <- on
let add_sink t sink = t.sinks <- t.sinks @ [ sink ]
let sink_count t = List.length t.sinks

let ph_trace = Netsim.Prof.phase "trace"

let dispatch t event = List.iter (fun sink -> sink event) t.sinks

let emit t ~time ~actor ?flow kind =
  if t.on then begin
    (* Sink fan-out (JSONL rendering, span assembly, metrics) is trace
       emission from the profiler's point of view: charge it to the
       same phase as Netsim.Trace so "what does observability cost"
       reads off one line. *)
    Netsim.Prof.enter ph_trace;
    dispatch t { Event.time; actor; flow; kind };
    Netsim.Prof.leave ph_trace
  end

let memory_sink () =
  let buffered = ref [] in
  let sink event = buffered := event :: !buffered in
  let contents () = List.rev !buffered in
  (sink, contents)

let trace_sink trace event =
  Netsim.Trace.record trace ~time:event.Event.time ~actor:event.Event.actor
    (Event.describe event)
