include Netsim.Telemetry

(* ------------------------------------------------------------------ *)
(* Registry gauges                                                     *)
(* ------------------------------------------------------------------ *)

(* One collector family: sampled metric exports and the `telemetry`
   subcommand read the same snapshot code, so the numbers cannot
   drift apart. *)
let gauge_rows () =
  if not (enabled ()) then []
  else begin
    let fi = float_of_int in
    let b = balance ~window:true () in
    let per_provider =
      List.concat
        (List.mapi
           (fun i p ->
             let tag dir name =
               Printf.sprintf "provider.%d.%s.%s" p dir name
             in
             let stat_in = provider_stat ~provider:p `In in
             let stat_out = provider_stat ~provider:p `Out in
             [ (tag "in" "win_bytes", fi stat_in.st_win_bytes);
               (tag "in" "bytes", fi stat_in.st_bytes);
               (tag "in" "share", b.bal_in_share.(i));
               (tag "out" "win_bytes", fi stat_out.st_win_bytes);
               (tag "out" "bytes", fi stat_out.st_bytes);
               (tag "out" "share", b.bal_out_share.(i)) ])
           (Array.to_list b.bal_providers))
    in
    [ ("jain_in", b.bal_jain_in); ("jain_out", b.bal_jain_out);
      ("dropped", fi (dropped ()));
      ("flow_packets", fi (flow_packets_observed ())) ]
    @ (if Float.is_finite b.bal_ratio_in then
         [ ("ratio_in", b.bal_ratio_in) ]
       else [])
    @ (if Float.is_finite b.bal_ratio_out then
         [ ("ratio_out", b.bal_ratio_out) ]
       else [])
    @ per_provider
  end

let register_gauges registry =
  Registry.register_many registry "telemetry" gauge_rows

(* ------------------------------------------------------------------ *)
(* JSON snapshot                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_stat s =
  Json.Obj
    [ ("pkts", Json.Int s.st_pkts); ("bytes", Json.Int s.st_bytes);
      ("win_pkts", Json.Int s.st_win_pkts);
      ("win_bytes", Json.Int s.st_win_bytes) ]

let json_of_samples samples =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [ ("slot", Json.Int s.sl_slot); ("start", Json.Float s.sl_start);
             ("pkts", Json.Int s.sl_pkts); ("bytes", Json.Int s.sl_bytes) ])
       samples)

let finite_or_null f = if Float.is_finite f then Json.Float f else Json.Null

let json_of_balance b =
  Json.Obj
    [ ( "providers",
        Json.List
          (Array.to_list (Array.map (fun p -> Json.Int p) b.bal_providers)) );
      ( "in_share",
        Json.List
          (Array.to_list (Array.map (fun s -> Json.Float s) b.bal_in_share))
      );
      ( "out_share",
        Json.List
          (Array.to_list (Array.map (fun s -> Json.Float s) b.bal_out_share))
      );
      ("jain_in", Json.Float b.bal_jain_in);
      ("jain_out", Json.Float b.bal_jain_out);
      ("ratio_in", finite_or_null b.bal_ratio_in);
      ("ratio_out", finite_or_null b.bal_ratio_out) ]

let json_of_hitters hs =
  Json.List
    (List.map
       (fun h ->
         Json.Obj
           [ ("key", Json.Int h.hh_key); ("count", Json.Int h.hh_count);
             ("error", Json.Int h.hh_error) ])
       hs)

let node_name node =
  if node < 0 then "(unattributed)"
  else
    match node_label node with
    | Some l -> l
    | None -> Printf.sprintf "n%d" node

let json_snapshot ?(series = false) () =
  let c = config () in
  let provider_block p =
    Json.Obj
      ([ ("provider", Json.Int p);
         ("in", json_of_stat (provider_stat ~provider:p `In));
         ("out", json_of_stat (provider_stat ~provider:p `Out)) ]
      @
      if series then
        [ ("in_series", json_of_samples (provider_series ~provider:p `In));
          ("out_series", json_of_samples (provider_series ~provider:p `Out))
        ]
      else [])
  in
  let node_block n =
    Json.Obj
      [ ("node", Json.Int n); ("name", Json.String (node_name n));
        ("tx", json_of_stat (node_stat ~node:n `Tx));
        ("rx", json_of_stat (node_stat ~node:n `Rx));
        ("fwd", json_of_stat (node_stat ~node:n `Fwd)) ]
  in
  let link_block l =
    Json.Obj
      [ ("link", Json.Int l);
        ("ab", json_of_stat (link_stat ~link:l ~dir:0));
        ("ba", json_of_stat (link_stat ~link:l ~dir:1)) ]
  in
  let drop_block (node, causes) =
    Json.Obj
      [ ("node", Json.Int node); ("name", Json.String (node_name node));
        ( "causes",
          Json.Obj
            (List.map
               (fun (cause, n) -> (drop_label cause, Json.Int n))
               causes) ) ]
  in
  Json.Obj
    [ ("window_s", Json.Float c.window_s); ("slots", Json.Int c.slots);
      ("topk", Json.Int c.topk);
      ("current_slot", Json.Int (current_slot ()));
      ("balance_window", json_of_balance (balance ~window:true ()));
      ("balance_total", json_of_balance (balance ~window:false ()));
      ("providers", Json.List (List.map provider_block (providers ())));
      ("nodes", Json.List (List.map node_block (nodes ())));
      ("links", Json.List (List.map link_block (links ())));
      ("dropped", Json.Int (dropped ()));
      ( "drop_totals",
        Json.Obj
          (List.map
             (fun (cause, n) -> (drop_label cause, Json.Int n))
             (drop_totals ())) );
      ("drops_by_node", Json.List (List.map drop_block (drops_by_node ())));
      ("top_eids", json_of_hitters (top_eids ()));
      ("top_flows", json_of_hitters (top_flows ()));
      ("flow_packets", Json.Int (flow_packets_observed ()));
      ( "selections",
        Json.List
          (List.map
             (fun (p, out, inb) ->
               Json.Obj
                 [ ("provider", Json.Int p); ("out", Json.Int out);
                   ("in", Json.Int inb) ])
             (selections ())) ) ]

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let provider_table () =
  let b = balance ~window:true () in
  let bt = balance ~window:false () in
  let table =
    Metrics.Table.create ~title:"per-provider traffic (TE balance)"
      ~columns:
        [ "provider"; "in bytes"; "in share"; "out bytes"; "out share";
          "win in"; "win out" ]
  in
  Array.iteri
    (fun i p ->
      let stat_in = provider_stat ~provider:p `In in
      let stat_out = provider_stat ~provider:p `Out in
      Metrics.Table.add_row table
        [ Printf.sprintf "P%d" p;
          Metrics.Table.cell_bytes stat_in.st_bytes;
          Metrics.Table.cell_pct bt.bal_in_share.(i);
          Metrics.Table.cell_bytes stat_out.st_bytes;
          Metrics.Table.cell_pct bt.bal_out_share.(i);
          Metrics.Table.cell_bytes stat_in.st_win_bytes;
          Metrics.Table.cell_bytes stat_out.st_win_bytes ])
    b.bal_providers;
  let cell_ratio r =
    if Float.is_finite r then Metrics.Table.cell_float r else "inf"
  in
  Metrics.Table.add_row table
    [ "jain/ratio (win)"; Metrics.Table.cell_float b.bal_jain_in;
      cell_ratio b.bal_ratio_in; Metrics.Table.cell_float b.bal_jain_out;
      cell_ratio b.bal_ratio_out; "-"; "-" ];
  table

let node_table ?(limit = 20) () =
  let table =
    Metrics.Table.create ~title:"per-node traffic (top by total bytes)"
      ~columns:[ "node"; "tx"; "rx"; "fwd"; "tx bytes"; "rx bytes"; "fwd bytes" ]
  in
  let weight n =
    let s k = (node_stat ~node:n k).st_bytes in
    s `Tx + s `Rx + s `Fwd
  in
  let sorted =
    List.sort
      (fun a b ->
        let wa = weight a and wb = weight b in
        if wa <> wb then Int.compare wb wa else Int.compare a b)
      (nodes ())
  in
  List.iteri
    (fun i n ->
      if i < limit then begin
        let tx = node_stat ~node:n `Tx
        and rx = node_stat ~node:n `Rx
        and fwd = node_stat ~node:n `Fwd in
        Metrics.Table.add_row table
          [ node_name n; Metrics.Table.cell_int tx.st_pkts;
            Metrics.Table.cell_int rx.st_pkts;
            Metrics.Table.cell_int fwd.st_pkts;
            Metrics.Table.cell_bytes tx.st_bytes;
            Metrics.Table.cell_bytes rx.st_bytes;
            Metrics.Table.cell_bytes fwd.st_bytes ]
      end)
    sorted;
  table

let drop_table () =
  let total = dropped () in
  let table =
    Metrics.Table.create ~title:"drop attribution"
      ~columns:[ "node"; "cause"; "count"; "share" ]
  in
  List.iter
    (fun (node, causes) ->
      List.iter
        (fun (cause, n) ->
          Metrics.Table.add_row table
            [ node_name node; drop_label cause; Metrics.Table.cell_int n;
              Metrics.Table.cell_pct
                (if total = 0 then 0.0
                 else float_of_int n /. float_of_int total) ])
        causes)
    (drops_by_node ());
  table

let hitter_table ~title ~key_label fmt_key hitters =
  let table =
    Metrics.Table.create ~title
      ~columns:[ key_label; "count (est)"; "max err" ]
  in
  List.iter
    (fun h ->
      Metrics.Table.add_row table
        [ fmt_key h.hh_key; Metrics.Table.cell_int h.hh_count;
          Metrics.Table.cell_int h.hh_error ])
    hitters;
  table

let top_eid_table ?(limit = 10) () =
  let hitters = List.filteri (fun i _ -> i < limit) (top_eids ()) in
  hitter_table ~title:"top destination EIDs (Space-Saving)"
    ~key_label:"eid"
    (fun key -> Format.asprintf "%a" Nettypes.Ipv4.pp_addr
        (Nettypes.Ipv4.addr_of_int key))
    hitters

let top_flow_table ?(limit = 10) () =
  let hitters = List.filteri (fun i _ -> i < limit) (top_flows ()) in
  hitter_table ~title:"top flows (Space-Saving)" ~key_label:"flow"
    (fun key -> Printf.sprintf "%#x" key)
    hitters

let tables () =
  [ provider_table (); node_table (); drop_table (); top_eid_table ();
    top_flow_table () ]

(* ------------------------------------------------------------------ *)
(* Windowed series CSV                                                 *)
(* ------------------------------------------------------------------ *)

let series_csv () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "slot,start_s,provider,direction,pkts,bytes\n";
  List.iter
    (fun p ->
      List.iter
        (fun (dir, samples) ->
          List.iter
            (fun s ->
              Buffer.add_string buf
                (Printf.sprintf "%d,%.3f,%d,%s,%d,%d\n" s.sl_slot s.sl_start
                   p dir s.sl_pkts s.sl_bytes))
            samples)
        [ ("in", provider_series ~provider:p `In);
          ("out", provider_series ~provider:p `Out) ])
    (providers ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome-trace counter events                                         *)
(* ------------------------------------------------------------------ *)

(* "C"-phase counter events on the simulated-time axis: one counter
   track per provider and direction, one sample per retained window.
   Merge into a span trace (same pid) and Perfetto draws provider load
   under the causal spans. *)
let chrome_counter_events ?(pid = 1) () =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun (dir, samples) ->
          List.map
            (fun s ->
              Json.Obj
                [ ( "name",
                    Json.String (Printf.sprintf "provider%d-%s" p dir) );
                  ("cat", Json.String "telemetry");
                  ("ph", Json.String "C");
                  ("ts", Json.Float (s.sl_start *. 1e6));
                  ("pid", Json.Int pid);
                  ("tid", Json.Int 0);
                  ("args", Json.Obj [ ("bytes", Json.Int s.sl_bytes) ]) ])
            samples)
        [ ("in", provider_series ~provider:p `In);
          ("out", provider_series ~provider:p `Out) ])
    (providers ())

let write_chrome_trace ~file () =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Json.to_string
           (Json.Obj
              [ ("traceEvents", Json.List (chrome_counter_events ()));
                ("displayTimeUnit", Json.String "ms") ]));
      output_char oc '\n')
