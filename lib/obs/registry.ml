type counter = { mutable count : int }

type histogram = {
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type summary = {
  hist_count : int;
  hist_sum : float;
  hist_min : float;
  hist_max : float;
  hist_mean : float;
}

type metric =
  | M_counter of counter
  | M_gauge of (unit -> float)
  | M_histogram of histogram

type t = {
  metrics : (string, metric) Hashtbl.t;
  (* Dynamically-keyed families (e.g. per-cause drop counts): a prefix
     plus a collector returning the current (suffix, value) rows. *)
  mutable collectors : (string * (unit -> (string * float) list)) list;
}

let create () = { metrics = Hashtbl.create 32; collectors = [] }

let register t name metric =
  if Hashtbl.mem t.metrics name then
    invalid_arg (Printf.sprintf "Obs.Registry: duplicate metric %S" name);
  Hashtbl.replace t.metrics name metric

let counter t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Obs.Registry: %S is not a counter" name)
  | None ->
      let c = { count = 0 } in
      register t name (M_counter c);
      c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count

let register_gauge t name read = register t name (M_gauge read)

let register_many t prefix collect =
  t.collectors <- t.collectors @ [ (prefix, collect) ]

let histogram t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_histogram h) -> h
  | Some _ ->
      invalid_arg (Printf.sprintf "Obs.Registry: %S is not a histogram" name)
  | None ->
      let h = { n = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity } in
      register t name (M_histogram h);
      h

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let summarise h =
  { hist_count = h.n; hist_sum = h.sum;
    hist_min = (if h.n = 0 then 0.0 else h.min_v);
    hist_max = (if h.n = 0 then 0.0 else h.max_v);
    hist_mean = (if h.n = 0 then 0.0 else h.sum /. float_of_int h.n) }

type value = Counter of int | Gauge of float | Histogram of summary

(* The scalar a timeseries sample records for each metric. *)
let scalar = function
  | Counter n -> float_of_int n
  | Gauge v -> v
  | Histogram s -> float_of_int s.hist_count

let snapshot t =
  let rows =
    Hashtbl.fold
      (fun name metric acc ->
        let value =
          match metric with
          | M_counter c -> Counter c.count
          | M_gauge read -> Gauge (read ())
          | M_histogram h -> Histogram (summarise h)
        in
        (name, value) :: acc)
      t.metrics []
  in
  let dynamic =
    List.concat_map
      (fun (prefix, collect) ->
        List.map (fun (key, v) -> (prefix ^ "." ^ key, Gauge v)) (collect ()))
      t.collectors
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (rows @ dynamic)

let sample t = List.map (fun (name, value) -> (name, scalar value)) (snapshot t)

let size t = Hashtbl.length t.metrics
