(** Event hub: the recording side of the observability layer.

    Each scenario owns one hub; instrumented layers emit typed events
    into it and any number of sinks (JSONL writer, in-memory buffer,
    legacy string trace, metrics sampler ticks) consume them.

    The disabled path must be effectively free: {!emit} checks the flag
    before building the event record, and hot call sites are expected
    to guard payload construction with {!enabled} so a disabled run
    does not even allocate the [kind] variant. *)

type sink = Event.t -> unit

type t

val create : ?enabled:bool -> unit -> t
(** Hubs start disabled by default. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val add_sink : t -> sink -> unit
(** Sinks run in registration order on every emitted event. *)

val sink_count : t -> int

val emit :
  t -> time:float -> actor:string -> ?flow:int -> Event.kind -> unit
(** Record one event; a no-op when the hub is disabled. *)

val memory_sink : unit -> sink * (unit -> Event.t list)
(** A buffering sink and its accessor (events in emission order). *)

val trace_sink : Netsim.Trace.t -> sink
(** The string renderer: appends [Event.describe] text to a legacy
    {!Netsim.Trace} so walkthrough-style output keeps working. *)
