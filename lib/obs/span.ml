(* Causal span assembly over the flat hub event stream.

   The builder folds events into per-flow span trees:

     connection_setup
     |- dns_resolution
     |- handshake
        |- map_resolution
           |- first_packet_wait
              |- attempt-1, attempt-2, ...

   The phases nest (rather than forming the flat sibling list a reader
   might expect) because that is what actually matches the event
   timeline: the mapping resolves while the first packet waits at the
   ITR, and both happen while the initiator's SYN timer runs.  The
   resolution *encloses* the wait, not the other way around, because
   it can outlive it: in drop mode the unmapped packet dies instantly
   while the map-request/map-reply exchange carries on in the
   background to warm the cache.  Nesting is also what makes the spans
   render as a stacked flame in Perfetto.

   Open spans form a stack per flow (deepest first, root last).  A new
   child always goes under the current top; closing a span by name
   force-closes anything opened deeper.  Because simulated time is
   monotone within a run, this discipline yields the two invariants
   the tests check: children lie inside their parent and siblings do
   not overlap.

   Accounting: every fed event increments exactly one span's [events]
   counter or the builder's [unattributed] counter, never both and
   never twice, so [fed = assigned + unattributed] and the sum of
   [events] over all produced trees equals [assigned]. *)

type outcome = Ok | Lost | Timeout | Failed | Unfinished

let outcome_name = function
  | Ok -> "ok"
  | Lost -> "lost"
  | Timeout -> "timeout"
  | Failed -> "failed"
  | Unfinished -> "unfinished"

type t = {
  name : string;
  actor : string;
  flow : int option;
  t0 : float;
  mutable t1 : float;
  mutable outcome : outcome;
  mutable children_rev : t list;
  mutable events : int;
}

type conn = { root : t; mutable stack : t list (* deepest first *) }

type builder = {
  conns : (int, conn) Hashtbl.t;
  on_root_close : (t -> unit) option;
  mutable roots_rev : t list;  (* retained only without a callback *)
  mutable fed : int;
  mutable assigned : int;
  mutable unattributed : int;
}

let create_builder ?on_root_close () =
  { conns = Hashtbl.create 64; on_root_close; roots_rev = []; fed = 0;
    assigned = 0; unattributed = 0 }

let children s = List.rev s.children_rev
let duration s = s.t1 -. s.t0
let fed b = b.fed
let assigned b = b.assigned
let unattributed b = b.unattributed
let roots b = List.rev b.roots_rev

let rec iter f s =
  f s;
  List.iter (iter f) s.children_rev

let deliver b root =
  match b.on_root_close with
  | Some f -> f root
  | None -> b.roots_rev <- root :: b.roots_rev

(* Span bookkeeping: none of these touch the event counters — [feed]
   assigns each event to exactly one span afterwards. *)

let new_span ~name ~actor ~flow ~time =
  { name; actor; flow; t0 = time; t1 = time; outcome = Unfinished;
    children_rev = []; events = 0 }

let top conn = match conn.stack with s :: _ -> s | [] -> conn.root

(* The open span called [name], creating it under the current top when
   no such span is open. *)
let ensure_open conn ~name ~actor ~flow ~time =
  match List.find_opt (fun s -> s.name = name) conn.stack with
  | Some s -> s
  | None ->
      let parent = top conn in
      let s = new_span ~name ~actor ~flow ~time in
      parent.children_rev <- s :: parent.children_rev;
      conn.stack <- s :: conn.stack;
      s

(* Close the topmost open span satisfying [pred]; spans opened deeper
   are closed with [cascade].  Returns the target, or [None] when no
   open span matches (nothing is changed then). *)
let close_matching conn ~pred ~time ~outcome ~cascade =
  if List.exists pred conn.stack then begin
    let rec pop = function
      | s :: rest when not (pred s) ->
          s.t1 <- time;
          if s.outcome = Unfinished then s.outcome <- cascade;
          pop rest
      | s :: rest ->
          s.t1 <- time;
          s.outcome <- outcome;
          conn.stack <- rest;
          Some s
      | [] -> None
    in
    pop conn.stack
  end
  else None

let close_named conn ~name = close_matching conn ~pred:(fun s -> s.name = name)

let attempt_name n = Printf.sprintf "attempt-%d" n
let is_attempt s = String.length s.name > 8 && String.sub s.name 0 8 = "attempt-"

(* Drop causes that mean "the held/unmapped first packet died while the
   control plane worked" — the paper's weakness (i).  Other causes
   (queue policy, link faults) are not the mapping system's fault. *)
let is_wait_drop cause =
  let prefixed p =
    String.length cause >= String.length p && String.sub cause 0 (String.length p) = p
  in
  prefixed "resolution-" || cause = "mapping-resolution-drop"
  || cause = "nerd-database-miss" || prefixed "pce-no-mapping"

(* Among the wait drops, these mean no resolution is (or will be) in
   flight — the mapping simply does not exist — so the drop ends the
   whole map_resolution span, not just the packet's wait. *)
let is_no_resolution_drop cause =
  let prefixed p =
    String.length cause >= String.length p && String.sub cause 0 (String.length p) = p
  in
  cause = "nerd-database-miss" || prefixed "pce-no-mapping"

(* Close the whole connection (root included) and hand the tree off. *)
let close_conn b conn ~time ~outcome ~cascade =
  List.iter
    (fun s ->
      s.t1 <- time;
      if s.outcome = Unfinished then s.outcome <- cascade)
    conn.stack;
  conn.stack <- [];
  conn.root.t1 <- time;
  conn.root.outcome <- outcome;
  (match conn.root.flow with
  | Some id -> Hashtbl.remove b.conns id
  | None -> ());
  deliver b conn.root

let assign b span = b.assigned <- b.assigned + 1; span.events <- span.events + 1
let drop_event b = b.unattributed <- b.unattributed + 1

(* Control-plane activity with no flow context (PCE/NERD pushes) still
   deserves a lane in the trace: render it as an instant root span. *)
let instant b ~name ~actor ~time ~outcome =
  let s = new_span ~name ~actor ~flow:None ~time in
  s.outcome <- outcome;
  assign b s;
  deliver b s

let feed b (e : Event.t) =
  b.fed <- b.fed + 1;
  let time = e.Event.time and actor = e.Event.actor in
  match (e.Event.flow, e.Event.kind) with
  | None, Event.Cp_loss { message } ->
      instant b ~name:("cp_loss:" ^ message) ~actor ~time ~outcome:Lost
  | None, Event.Cp_retry { message; _ } ->
      instant b ~name:("cp_retry:" ^ message) ~actor ~time ~outcome:Ok
  | None, Event.Cp_timeout { message; _ } ->
      instant b ~name:("cp_timeout:" ^ message) ~actor ~time ~outcome:Timeout
  | None, Event.Node_crash { role } ->
      instant b ~name:("node_crash:" ^ role) ~actor ~time ~outcome:Lost
  | None, Event.Node_restart { role } ->
      instant b ~name:("node_restart:" ^ role) ~actor ~time ~outcome:Ok
  | None, Event.Pce_bypass _ ->
      instant b ~name:"pce_bypass" ~actor ~time ~outcome:Ok
  | None, _ -> drop_event b
  | Some id, kind -> (
      match (Hashtbl.find_opt b.conns id, kind) with
      | lingering, Event.Conn_open _ ->
          (* A flow id reappearing before its previous tree closed
             (id collision or an unfinished run): flush the old tree. *)
          (match lingering with
          | Some conn ->
              close_conn b conn ~time ~outcome:Unfinished ~cascade:Unfinished
          | None -> ());
          let root =
            new_span ~name:"connection_setup" ~actor ~flow:(Some id) ~time
          in
          Hashtbl.replace b.conns id { root; stack = [ root ] };
          assign b root
      | None, _ -> drop_event b  (* e.g. data-packet events after setup *)
      | Some conn, kind -> (
          let flow = Some id in
          match kind with
          | Event.Dns_query _ ->
              assign b (ensure_open conn ~name:"dns_resolution" ~actor ~flow ~time)
          | Event.Dns_reply { answered; _ } -> (
              let outcome = if answered then Ok else Failed in
              match
                close_named conn ~name:"dns_resolution" ~time ~outcome
                  ~cascade:Unfinished
              with
              | Some s -> assign b s
              | None -> assign b (top conn))
          | Event.Syn_sent _ ->
              assign b (ensure_open conn ~name:"handshake" ~actor ~flow ~time)
          | Event.Cache_miss _ ->
              ignore (ensure_open conn ~name:"map_resolution" ~actor ~flow ~time);
              assign b
                (ensure_open conn ~name:"first_packet_wait" ~actor ~flow ~time)
          | Event.Map_request _ ->
              ignore (ensure_open conn ~name:"map_resolution" ~actor ~flow ~time);
              assign b
                (ensure_open conn ~name:(attempt_name 1) ~actor ~flow ~time)
          | Event.Cp_retry { attempt; _ } ->
              ignore
                (close_matching conn ~pred:is_attempt ~time ~outcome:Lost
                   ~cascade:Unfinished);
              ignore (ensure_open conn ~name:"map_resolution" ~actor ~flow ~time);
              assign b
                (ensure_open conn ~name:(attempt_name (attempt + 1)) ~actor ~flow
                   ~time)
          | Event.Map_reply _ -> (
              match
                close_named conn ~name:"map_resolution" ~time ~outcome:Ok
                  ~cascade:Ok
              with
              | Some s -> assign b s
              | None -> assign b (top conn))
          | Event.Cp_timeout _ -> (
              match
                close_named conn ~name:"map_resolution" ~time ~outcome:Timeout
                  ~cascade:Timeout
              with
              | Some s -> assign b s
              | None -> assign b (top conn))
          | Event.Degraded_to_pull _ ->
              (* The PCE push path is gone; the pull resolution that
                 follows belongs to the same map_resolution phase. *)
              assign b
                (ensure_open conn ~name:"map_resolution" ~actor ~flow ~time)
          | Event.Packet_drop { cause } -> (
              match
                if is_no_resolution_drop cause then
                  close_named conn ~name:"map_resolution" ~time ~outcome:Lost
                    ~cascade:Lost
                else if is_wait_drop cause then
                  (* The packet died but the resolution carries on in
                     the background (drop mode warms the cache). *)
                  close_named conn ~name:"first_packet_wait" ~time
                    ~outcome:Lost ~cascade:Lost
                else None
              with
              | Some s -> assign b s
              | None -> assign b (top conn))
          | Event.Syn_received -> (
              match
                close_named conn ~name:"first_packet_wait" ~time ~outcome:Ok
                  ~cascade:Ok
              with
              | Some s -> assign b s
              | None -> assign b (top conn))
          | Event.Conn_established ->
              assign b conn.root;
              close_conn b conn ~time ~outcome:Ok ~cascade:Ok
          | Event.Conn_failed _ ->
              assign b conn.root;
              close_conn b conn ~time ~outcome:Failed ~cascade:Unfinished
          | _ -> assign b (top conn)))

let finish b ~now =
  let pending = Hashtbl.fold (fun _ conn acc -> conn :: acc) b.conns [] in
  (* Deterministic delivery order for the flush: oldest root first. *)
  let pending =
    List.sort (fun a c -> Float.compare a.root.t0 c.root.t0) pending
  in
  List.iter
    (fun conn ->
      close_conn b conn ~time:now ~outcome:Unfinished ~cascade:Unfinished)
    pending

(* ---- Chrome trace_event export ------------------------------------- *)

(* One "X" (complete) event per span; Perfetto stacks same-tid spans by
   containment, which our nesting guarantees.  Simulated seconds map to
   trace microseconds. *)

let us t = t *. 1e6

let span_trace_events ~pid ~tid root =
  let evs = ref [] in
  iter
    (fun s ->
      evs :=
        Json.Obj
          [ ("name", Json.String s.name); ("ph", Json.String "X");
            ("cat", Json.String "sim"); ("pid", Json.Int pid);
            ("tid", Json.Int tid); ("ts", Json.Float (us s.t0));
            ("dur", Json.Float (us (duration s)));
            ("args",
             Json.Obj
               [ ("actor", Json.String s.actor);
                 ("outcome", Json.String (outcome_name s.outcome));
                 ("events", Json.Int s.events) ]) ]
        :: !evs)
    root;
  List.rev !evs

let metadata ~pid ~tid ~name ~value =
  Json.Obj
    [ ("name", Json.String name); ("ph", Json.String "M");
      ("pid", Json.Int pid); ("tid", Json.Int tid); ("ts", Json.Float 0.0);
      ("args", Json.Obj [ ("name", Json.String value) ]) ]

let trace_json ?(pid = 1) ?(process_name = "lisp-pce-sim") roots =
  let control, flows = List.partition (fun r -> r.flow = None) roots in
  let evs = ref [ metadata ~pid ~tid:0 ~name:"process_name" ~value:process_name ] in
  let push e = evs := e :: !evs in
  if control <> [] then begin
    push (metadata ~pid ~tid:0 ~name:"thread_name" ~value:"control-plane");
    List.iter (fun r -> List.iter push (span_trace_events ~pid ~tid:0 r)) control
  end;
  List.iteri
    (fun i r ->
      let tid = i + 1 in
      let label =
        match r.flow with
        | Some id -> Printf.sprintf "flow %08x (%s)" (id land 0xFFFFFFFF) r.actor
        | None -> r.actor
      in
      push (metadata ~pid ~tid ~name:"thread_name" ~value:label);
      List.iter push (span_trace_events ~pid ~tid r))
    flows;
  List.rev !evs

let write_chrome_trace ~file segments =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let events =
        List.concat
          (List.mapi
             (fun i (label, roots) ->
               trace_json ~pid:(i + 1) ~process_name:label roots)
             segments)
      in
      output_string oc
        (Json.to_string
           (Json.Obj
              [ ("traceEvents", Json.List events);
                ("displayTimeUnit", Json.String "ms") ]));
      output_char oc '\n')
