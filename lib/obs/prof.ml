include Netsim.Prof

(* ------------------------------------------------------------------ *)
(* GC telemetry                                                        *)
(* ------------------------------------------------------------------ *)

(* Counter-like fields are reported as deltas across a run; size
   fields as absolute values.  Order is the report order. *)
let gc_counter_fields =
  [ "minor_collections"; "major_collections"; "compactions";
    "minor_words"; "promoted_words"; "major_words" ]

let gc_snapshot () =
  let s = Gc.quick_stat () in
  [
    ("minor_collections", float_of_int s.Gc.minor_collections);
    ("major_collections", float_of_int s.Gc.major_collections);
    ("compactions", float_of_int s.Gc.compactions);
    ("minor_words", s.Gc.minor_words);
    ("promoted_words", s.Gc.promoted_words);
    ("major_words", s.Gc.major_words);
    ("heap_words", float_of_int s.Gc.heap_words);
    ("top_heap_words", float_of_int s.Gc.top_heap_words);
  ]

let gc_since before =
  let now = gc_snapshot () in
  List.map
    (fun (name, v) ->
      if List.mem name gc_counter_fields then
        let v0 =
          match List.assoc_opt name before with Some x -> x | None -> 0.0
        in
        (name, v -. v0)
      else (name, v))
    now

let register_gc_gauges registry =
  List.iter
    (fun (name, _) ->
      Registry.register_gauge registry ("gc." ^ name) (fun () ->
          List.assoc name (gc_snapshot ())))
    (gc_snapshot ())

(* ------------------------------------------------------------------ *)
(* BENCH.json (lisp-pce-bench/4) serialisation                         *)
(* ------------------------------------------------------------------ *)

let json_of_report ?(gc = []) r =
  let share self = if r.r_wall_s > 0.0 then self /. r.r_wall_s else 0.0 in
  Json.Obj
    [
      ("wall_s", Json.Float r.r_wall_s);
      ("coverage", Json.Float (coverage r));
      ("unattributed_s", Json.Float r.r_unattributed_s);
      ("intervals_dropped", Json.Int r.r_intervals_dropped);
      ( "phases",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("name", Json.String p.ps_name);
                   ("self_s", Json.Float p.ps_self_s);
                   ("total_s", Json.Float p.ps_total_s);
                   ("calls", Json.Int p.ps_calls);
                   ("share", Json.Float (share p.ps_self_s));
                 ])
             r.r_phases) );
      ( "counters",
        Json.List
          (List.map
             (fun (name, n) ->
               Json.Obj
                 [ ("name", Json.String name); ("count", Json.Int n) ])
             r.r_counters) );
      ("gc", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) gc));
    ]

let report_of_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "prof block: bad or missing %S" name)
  in
  let* wall = field "wall_s" Json.to_float_opt in
  let* unattributed = field "unattributed_s" Json.to_float_opt in
  let* dropped = field "intervals_dropped" Json.to_int_opt in
  let* phase_list =
    field "phases" (function Json.List l -> Some l | _ -> None)
  in
  let* phases =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let get name conv =
          match Option.bind (Json.member name p) conv with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "phase entry: bad %S" name)
        in
        let* name = get "name" Json.to_string_opt in
        let* self = get "self_s" Json.to_float_opt in
        let* total = get "total_s" Json.to_float_opt in
        let* calls = get "calls" Json.to_int_opt in
        Ok
          ({ ps_name = name; ps_self_s = self; ps_total_s = total;
             ps_calls = calls }
          :: acc))
      (Ok []) phase_list
  in
  let* counter_list =
    field "counters" (function Json.List l -> Some l | _ -> None)
  in
  let* counters =
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        match
          ( Option.bind (Json.member "name" c) Json.to_string_opt,
            Option.bind (Json.member "count" c) Json.to_int_opt )
        with
        | Some name, Some count -> Ok ((name, count) :: acc)
        | _ -> Error "counter entry: bad name/count")
      (Ok []) counter_list
  in
  let gc =
    match Json.member "gc" json with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            Option.map (fun f -> (k, f)) (Json.to_float_opt v))
          fields
    | _ -> []
  in
  Ok
    ( {
        r_wall_s = wall;
        r_phases = List.rev phases;
        r_counters = List.rev counters;
        r_unattributed_s = unattributed;
        r_intervals_dropped = dropped;
      },
      gc )

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let breakdown_table ?(title = "simulator self-profile") r =
  let table =
    Metrics.Table.create ~title
      ~columns:[ "phase"; "self ms"; "share"; "total ms"; "calls" ]
  in
  let by_self =
    List.sort (fun a b -> compare b.ps_self_s a.ps_self_s) r.r_phases
  in
  List.iter
    (fun p ->
      Metrics.Table.add_row table
        [
          p.ps_name;
          Metrics.Table.cell_ms p.ps_self_s;
          Metrics.Table.cell_pct
            (if r.r_wall_s > 0.0 then p.ps_self_s /. r.r_wall_s else 0.0);
          Metrics.Table.cell_ms p.ps_total_s;
          Metrics.Table.cell_int p.ps_calls;
        ])
    by_self;
  Metrics.Table.add_row table
    [
      "(unattributed)";
      Metrics.Table.cell_ms r.r_unattributed_s;
      Metrics.Table.cell_pct
        (if r.r_wall_s > 0.0 then r.r_unattributed_s /. r.r_wall_s else 0.0);
      "-";
      "-";
    ];
  Metrics.Table.add_row table
    [ "wall"; Metrics.Table.cell_ms r.r_wall_s; "100.0"; "-"; "-" ];
  table

let pp_report ppf r =
  Metrics.Table.pp ppf (breakdown_table r);
  if r.r_counters <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, n) -> Format.fprintf ppf "  %-28s %d@." name n)
      r.r_counters
  end;
  if r.r_intervals_dropped > 0 then
    Format.fprintf ppf "(%d profile intervals dropped)@."
      r.r_intervals_dropped

(* ------------------------------------------------------------------ *)
(* Chrome-trace export                                                 *)
(* ------------------------------------------------------------------ *)

let chrome_events ?(pid = 1) ?process_name ivs =
  let metadata =
    match process_name with
    | None -> []
    | Some name ->
        [
          Json.Obj
            [
              ("name", Json.String "process_name");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("tid", Json.Int 0);
              ("args", Json.Obj [ ("name", Json.String name) ]);
            ];
        ]
  in
  metadata
  @ List.map
      (fun iv ->
        Json.Obj
          [
            ("name", Json.String iv.iv_name);
            ("cat", Json.String "prof");
            ("ph", Json.String "X");
            ("ts", Json.Float (iv.iv_start_s *. 1e6));
            ("dur", Json.Float (iv.iv_dur_s *. 1e6));
            ("pid", Json.Int pid);
            ("tid", Json.Int 0);
          ])
      ivs

let write_chrome_trace ~file labelled =
  let events =
    List.concat
      (List.mapi
         (fun i (label, ivs) ->
           chrome_events ~pid:(i + 1) ~process_name:label ivs)
         labelled)
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Json.to_string
           (Json.Obj
              [
                ("traceEvents", Json.List events);
                ("displayTimeUnit", Json.String "ms");
              ]));
      output_char oc '\n')
