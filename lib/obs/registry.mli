(** Central metrics registry: named counters, gauges and histograms
    with a snapshot operation.

    Gauges are callback-based so existing subsystem counters
    ([Lispdp.Dataplane.counters], [Mapsys.Cp_stats], map-cache stats,
    engine internals) can be exposed without double bookkeeping — a
    registered gauge costs nothing until a snapshot reads it. *)

type t

type counter
type histogram

type summary = {
  hist_count : int;
  hist_sum : float;
  hist_min : float;
  hist_max : float;
  hist_mean : float;
}

type value = Counter of int | Gauge of float | Histogram of summary

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create a named counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val register_gauge : t -> string -> (unit -> float) -> unit
(** Register a read-on-snapshot gauge.  Raises [Invalid_argument] on a
    duplicate name. *)

val register_many : t -> string -> (unit -> (string * float) list) -> unit
(** Register a dynamically-keyed gauge family: each [(key, v)] row the
    collector returns appears in snapshots as ["prefix.key"].  Used for
    per-cause drop counts whose key set is not known up front. *)

val histogram : t -> string -> histogram
(** Get-or-create a named histogram (count/sum/min/max/mean summary). *)

val observe : histogram -> float -> unit

val scalar : value -> float
(** Flatten a value to one scalar: counter count, gauge value,
    histogram observation count. *)

val snapshot : t -> (string * value) list
(** Current value of every metric, sorted by name. *)

val sample : t -> (string * float) list
(** Like {!snapshot} but flattened to one scalar per metric (counter
    count, gauge value, histogram observation count) — the shape the
    periodic sampler stores. *)

val size : t -> int
(** Number of statically-registered metrics (excludes collector rows). *)
