(** Aggregate latency decomposition in the paper's terms.

    Feeds the event stream through a {!Span} builder and folds each
    finished flow tree into the budget of the paper's formula
    [T_setup = T_DNS + T_map_resol + 2 OWD(S,D) + OWD(D,S)]: per-phase
    means and P² percentiles ([t_dns], [t_map_resol],
    [t_first_packet_wait], [t_handshake], [t_setup]) over established
    flows, plus wait-drop / retry / timeout counters over all flows.
    Memory is O(1) per finished flow. *)

type t

val create : unit -> t

val feed : t -> Event.t -> unit
(** Usable directly as a {!Hub} sink ([fun e -> feed t e]). *)

val close : t -> now:float -> unit
(** Flush still-open flows (counted [unfinished]).  Call once, after
    the run drained. *)

val summary : t -> (string * float) list
(** Metric pairs in a fixed, documented order: [flows], [established],
    [failed], [unfinished]; then [_mean]/[_p50]/[_p95] for [t_dns],
    [t_map_resol], [t_first_packet_wait], [t_handshake], [t_setup]
    (seconds, established flows only, absent phases count 0); then
    [wait_drops], [drops], [cp_retries], [cp_timeouts], [cp_losses],
    [pce_bypasses], [degraded_to_pull]. *)
