(** Minimal, dependency-free JSON for the observability exporters.

    Only the shapes the event and metrics exporters produce are
    supported well; this is not a general-purpose JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Render compactly (no whitespace), with string escaping. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; rejects trailing garbage. *)

val member : string -> t -> t option
(** Field of an object, [None] for other shapes or missing keys. *)

val to_float_opt : t -> float option
(** Numeric value as float (accepts [Int] and [Float]). *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
