(** Causal span trees assembled from the flat {!Hub} event stream.

    A builder folds flow-scoped events into one tree per connection:

    {v
    connection_setup
    |- dns_resolution
    |- handshake
       |- map_resolution
          |- first_packet_wait
             |- attempt-1, attempt-2, ...
    v}

    The phases nest instead of forming flat siblings: the first packet
    waits {e while} the mapping resolves (and the resolution can
    outlive the wait — in drop mode the packet dies instantly while
    the exchange continues to warm the cache), and both run while the
    initiator's SYN timer counts.  Open spans form a per-flow stack;
    because simulated time is monotone, children are contained in
    their parents and siblings never overlap.

    Control-plane events with no flow context (PCE/NERD push retries)
    become zero-duration root spans so they still appear in traces. *)

type outcome = Ok | Lost | Timeout | Failed | Unfinished

val outcome_name : outcome -> string

type t = {
  name : string;
  actor : string;  (** actor of the event that opened the span *)
  flow : int option;
  t0 : float;
  mutable t1 : float;
  mutable outcome : outcome;
  mutable children_rev : t list;  (** reverse order; use {!children} *)
  mutable events : int;  (** events attributed to this span (not children) *)
}

val children : t -> t list
(** Children in open order. *)

val duration : t -> float

val iter : (t -> unit) -> t -> unit
(** Pre-order traversal of a tree. *)

val is_wait_drop : string -> bool
(** Does this {!Event.Packet_drop} cause mean the flow's first packet
    died while the mapping system worked (the paper's weakness (i))? *)

(** {1 Building} *)

type builder

val create_builder : ?on_root_close:(t -> unit) -> unit -> builder
(** With [on_root_close], finished trees are handed to the callback
    and not retained (bounded memory for 100k-flow runs); without it
    they accumulate and {!roots} returns them. *)

val feed : builder -> Event.t -> unit
(** Fold one event in.  Event times must be non-decreasing. *)

val finish : builder -> now:float -> unit
(** Close every still-open tree as [Unfinished] at [now] and deliver
    it (oldest first). *)

val roots : builder -> t list
(** Completed trees in delivery order; empty when a callback was given. *)

(** {1 Accounting}

    Every fed event is attributed to exactly one span or counted
    unattributed, so [fed = assigned + unattributed] and the sum of
    [events] over all delivered trees equals [assigned]. *)

val fed : builder -> int
val assigned : builder -> int
val unattributed : builder -> int

(** {1 Chrome trace_event export} *)

val trace_json : ?pid:int -> ?process_name:string -> t list -> Json.t list
(** Trace-event objects ([ph:"X"] complete events plus [ph:"M"]
    metadata): one thread per flow tree, thread 0 for the non-flow
    control-plane lane.  Simulated seconds become trace microseconds. *)

val write_chrome_trace : file:string -> (string * t list) list -> unit
(** Write [{"traceEvents": [...], "displayTimeUnit": "ms"}] with one
    process per [(label, roots)] segment.  The file opens directly in
    Perfetto / chrome://tracing. *)
