open Nettypes

type kind =
  | Dns_query of { qname : string }
  | Dns_reply of { qname : string; answered : bool }
  | Map_request of { eid : Ipv4.addr }
  | Map_reply of { eid : Ipv4.addr }
  | Cache_hit of { eid : Ipv4.addr }
  | Cache_miss of { eid : Ipv4.addr }
  | Cache_evict of { prefix : Ipv4.prefix }
  | Mapping_push of { targets : int }
  | Packet_drop of { cause : string }
  | Encap of { outer_src : Ipv4.addr; outer_dst : Ipv4.addr }
  | Decap of { outer_src : Ipv4.addr }
  | Irc_decision of { rloc : Ipv4.addr }
  | Link_up of { rloc : Ipv4.addr }
  | Link_down of { rloc : Ipv4.addr }
  | Cp_loss of { message : string }
  | Cp_retry of { eid : Ipv4.addr; attempt : int; message : string }
  | Cp_timeout of { eid : Ipv4.addr; message : string }
  | Conn_open of { dst : Ipv4.addr }
  | Conn_established
  | Conn_failed of { reason : string }
  | Syn_sent of { attempt : int }
  | Syn_received
  | Run_start of { label : string }
  | Note of string
  | Node_crash of { role : string }
  | Node_restart of { role : string }
  | Pce_bypass of { qname : string }
  | Degraded_to_pull of { eid : Ipv4.addr }
  | Spoofed_reply of { eid : Ipv4.addr; accepted : bool }
  | Replayed_reply of { eid : Ipv4.addr; accepted : bool }
  | Poisoned_answer of { qname : string; accepted : bool }
  | Glean_rejected of { eid : Ipv4.addr }

type t = { time : float; actor : string; flow : int option; kind : kind }

(* Direction-insensitive flow identifier: the SYN and its SYN/ACK (a
   reversed 4-tuple) must correlate to the same id. *)
let flow_id (f : Flow.t) =
  let a = (Ipv4.addr_to_int f.Flow.src * 65536) + f.Flow.src_port in
  let b = (Ipv4.addr_to_int f.Flow.dst * 65536) + f.Flow.dst_port in
  let lo = Stdlib.min a b and hi = Stdlib.max a b in
  let mix acc x = (acc * 0x01000193) lxor x land max_int in
  List.fold_left mix 0x811C9DC5 [ lo; hi ]

let kind_name = function
  | Dns_query _ -> "dns_query"
  | Dns_reply _ -> "dns_reply"
  | Map_request _ -> "map_request"
  | Map_reply _ -> "map_reply"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Cache_evict _ -> "cache_evict"
  | Mapping_push _ -> "mapping_push"
  | Packet_drop _ -> "packet_drop"
  | Encap _ -> "encap"
  | Decap _ -> "decap"
  | Irc_decision _ -> "irc_decision"
  | Link_up _ -> "link_up"
  | Link_down _ -> "link_down"
  | Cp_loss _ -> "cp_loss"
  | Cp_retry _ -> "cp_retry"
  | Cp_timeout _ -> "cp_timeout"
  | Conn_open _ -> "conn_open"
  | Conn_established -> "conn_established"
  | Conn_failed _ -> "conn_failed"
  | Syn_sent _ -> "syn_sent"
  | Syn_received -> "syn_received"
  | Run_start _ -> "run_start"
  | Note _ -> "note"
  | Node_crash _ -> "node_crash"
  | Node_restart _ -> "node_restart"
  | Pce_bypass _ -> "pce_bypass"
  | Degraded_to_pull _ -> "degraded_to_pull"
  | Spoofed_reply _ -> "spoofed_reply"
  | Replayed_reply _ -> "replayed_reply"
  | Poisoned_answer _ -> "poisoned_answer"
  | Glean_rejected _ -> "glean_rejected"

let describe_kind = function
  | Dns_query { qname } -> Printf.sprintf "DNS query %s" qname
  | Dns_reply { qname; answered } ->
      Printf.sprintf "DNS reply %s (%s)" qname
        (if answered then "answered" else "failed")
  | Map_request { eid } ->
      Printf.sprintf "map-request for %s" (Ipv4.addr_to_string eid)
  | Map_reply { eid } ->
      Printf.sprintf "map-reply for %s" (Ipv4.addr_to_string eid)
  | Cache_hit { eid } ->
      Printf.sprintf "map-cache hit %s" (Ipv4.addr_to_string eid)
  | Cache_miss { eid } ->
      Printf.sprintf "map-cache miss %s" (Ipv4.addr_to_string eid)
  | Cache_evict { prefix } ->
      Printf.sprintf "map-cache evict %s" (Ipv4.prefix_to_string prefix)
  | Mapping_push { targets } ->
      Printf.sprintf "mapping push to %d target(s)" targets
  | Packet_drop { cause } -> Printf.sprintf "packet drop (%s)" cause
  | Encap { outer_src; outer_dst } ->
      Printf.sprintf "encap %s -> %s"
        (Ipv4.addr_to_string outer_src)
        (Ipv4.addr_to_string outer_dst)
  | Decap { outer_src } ->
      Printf.sprintf "decap from %s" (Ipv4.addr_to_string outer_src)
  | Irc_decision { rloc } ->
      Printf.sprintf "IRC egress decision: %s" (Ipv4.addr_to_string rloc)
  | Link_up { rloc } -> Printf.sprintf "link up (RLOC %s)" (Ipv4.addr_to_string rloc)
  | Link_down { rloc } ->
      Printf.sprintf "link down (RLOC %s)" (Ipv4.addr_to_string rloc)
  | Cp_loss { message } -> Printf.sprintf "control message lost (%s)" message
  | Cp_retry { eid; attempt; message } ->
      Printf.sprintf "retransmission %d of %s for %s" attempt message
        (Ipv4.addr_to_string eid)
  | Cp_timeout { eid; message } ->
      Printf.sprintf "%s timeout for %s" message (Ipv4.addr_to_string eid)
  | Conn_open { dst } ->
      Printf.sprintf "connection open to %s" (Ipv4.addr_to_string dst)
  | Conn_established -> "connection established"
  | Conn_failed { reason } -> Printf.sprintf "connection failed (%s)" reason
  | Syn_sent { attempt } -> Printf.sprintf "SYN sent (transmission %d)" attempt
  | Syn_received -> "first SYN reached the responder"
  | Run_start { label } -> Printf.sprintf "run start: %s" label
  | Note text -> text
  | Node_crash { role } -> Printf.sprintf "node crash: %s" role
  | Node_restart { role } -> Printf.sprintf "node restart: %s" role
  | Pce_bypass { qname } ->
      Printf.sprintf "DNS bypassed dead PCE for %s" qname
  | Degraded_to_pull { eid } ->
      Printf.sprintf "degraded to pull resolution for %s"
        (Ipv4.addr_to_string eid)
  | Spoofed_reply { eid; accepted } ->
      Printf.sprintf "forged map-reply for %s %s" (Ipv4.addr_to_string eid)
        (if accepted then "accepted" else "rejected")
  | Replayed_reply { eid; accepted } ->
      Printf.sprintf "replayed map-reply for %s %s" (Ipv4.addr_to_string eid)
        (if accepted then "accepted" else "rejected")
  | Poisoned_answer { qname; accepted } ->
      Printf.sprintf "poisoned DNS answer for %s %s" qname
        (if accepted then "accepted" else "rejected")
  | Glean_rejected { eid } ->
      Printf.sprintf "gleaned mapping for %s rejected by admission"
        (Ipv4.addr_to_string eid)

let describe e = describe_kind e.kind

let pp ppf e =
  Format.fprintf ppf "t=%.6fs %s%s %s" e.time e.actor
    (match e.flow with
    | Some id -> Printf.sprintf " flow=%d" id
    | None -> "")
    (describe e)

let to_json e =
  let addr a = Json.String (Ipv4.addr_to_string a) in
  let payload =
    match e.kind with
    | Dns_query { qname } -> [ ("qname", Json.String qname) ]
    | Dns_reply { qname; answered } ->
        [ ("qname", Json.String qname); ("answered", Json.Bool answered) ]
    | Map_request { eid } | Map_reply { eid } -> [ ("eid", addr eid) ]
    | Cache_hit { eid } | Cache_miss { eid } -> [ ("eid", addr eid) ]
    | Cache_evict { prefix } ->
        [ ("prefix", Json.String (Ipv4.prefix_to_string prefix)) ]
    | Mapping_push { targets } -> [ ("targets", Json.Int targets) ]
    | Packet_drop { cause } -> [ ("cause", Json.String cause) ]
    | Encap { outer_src; outer_dst } ->
        [ ("outer_src", addr outer_src); ("outer_dst", addr outer_dst) ]
    | Decap { outer_src } -> [ ("outer_src", addr outer_src) ]
    | Irc_decision { rloc } | Link_up { rloc } | Link_down { rloc } ->
        [ ("rloc", addr rloc) ]
    | Cp_loss { message } -> [ ("message", Json.String message) ]
    | Cp_retry { eid; attempt; message } ->
        [ ("eid", addr eid); ("attempt", Json.Int attempt);
          ("message", Json.String message) ]
    | Cp_timeout { eid; message } ->
        [ ("eid", addr eid); ("message", Json.String message) ]
    | Conn_open { dst } -> [ ("dst", addr dst) ]
    | Conn_established -> []
    | Conn_failed { reason } -> [ ("reason", Json.String reason) ]
    | Syn_sent { attempt } -> [ ("attempt", Json.Int attempt) ]
    | Syn_received -> []
    | Run_start { label } -> [ ("label", Json.String label) ]
    | Note text -> [ ("text", Json.String text) ]
    | Node_crash { role } | Node_restart { role } ->
        [ ("role", Json.String role) ]
    | Pce_bypass { qname } -> [ ("qname", Json.String qname) ]
    | Degraded_to_pull { eid } -> [ ("eid", addr eid) ]
    | Spoofed_reply { eid; accepted } | Replayed_reply { eid; accepted } ->
        [ ("eid", addr eid); ("accepted", Json.Bool accepted) ]
    | Poisoned_answer { qname; accepted } ->
        [ ("qname", Json.String qname); ("accepted", Json.Bool accepted) ]
    | Glean_rejected { eid } -> [ ("eid", addr eid) ]
  in
  Json.Obj
    ([ ("time", Json.Float e.time); ("actor", Json.String e.actor);
       ("kind", Json.String (kind_name e.kind)) ]
    @ (match e.flow with Some id -> [ ("flow", Json.Int id) ] | None -> [])
    @ payload)

let of_json json =
  let ( let* ) x f = match x with Some v -> f v | None -> Error "bad event" in
  let field name conv = Option.bind (Json.member name json) conv in
  let* time = field "time" Json.to_float_opt in
  let* actor = field "actor" Json.to_string_opt in
  let* kind_str = field "kind" Json.to_string_opt in
  let flow = field "flow" Json.to_int_opt in
  let str name = field name Json.to_string_opt in
  let addr name =
    match str name with
    | Some s -> (try Some (Ipv4.addr_of_string s) with _ -> None)
    | None -> None
  in
  let kind =
    match kind_str with
    | "dns_query" ->
        Option.map (fun qname -> Dns_query { qname }) (str "qname")
    | "dns_reply" -> (
        match (str "qname", field "answered" Json.to_bool_opt) with
        | Some qname, Some answered -> Some (Dns_reply { qname; answered })
        | _ -> None)
    | "map_request" -> Option.map (fun eid -> Map_request { eid }) (addr "eid")
    | "map_reply" -> Option.map (fun eid -> Map_reply { eid }) (addr "eid")
    | "cache_hit" -> Option.map (fun eid -> Cache_hit { eid }) (addr "eid")
    | "cache_miss" -> Option.map (fun eid -> Cache_miss { eid }) (addr "eid")
    | "cache_evict" -> (
        match str "prefix" with
        | Some s -> (
            try Some (Cache_evict { prefix = Ipv4.prefix_of_string s })
            with _ -> None)
        | None -> None)
    | "mapping_push" ->
        Option.map (fun targets -> Mapping_push { targets })
          (field "targets" Json.to_int_opt)
    | "packet_drop" ->
        Option.map (fun cause -> Packet_drop { cause }) (str "cause")
    | "encap" -> (
        match (addr "outer_src", addr "outer_dst") with
        | Some outer_src, Some outer_dst -> Some (Encap { outer_src; outer_dst })
        | _ -> None)
    | "decap" ->
        Option.map (fun outer_src -> Decap { outer_src }) (addr "outer_src")
    | "irc_decision" ->
        Option.map (fun rloc -> Irc_decision { rloc }) (addr "rloc")
    | "link_up" -> Option.map (fun rloc -> Link_up { rloc }) (addr "rloc")
    | "link_down" -> Option.map (fun rloc -> Link_down { rloc }) (addr "rloc")
    | "cp_loss" -> Option.map (fun message -> Cp_loss { message }) (str "message")
    | "cp_retry" -> (
        (* [message] is absent in pre-span JSONL streams: default it so
           old files keep parsing. *)
        let message = Option.value ~default:"map-request" (str "message") in
        match (addr "eid", field "attempt" Json.to_int_opt) with
        | Some eid, Some attempt -> Some (Cp_retry { eid; attempt; message })
        | _ -> None)
    | "cp_timeout" ->
        let message = Option.value ~default:"map-request" (str "message") in
        Option.map (fun eid -> Cp_timeout { eid; message }) (addr "eid")
    | "conn_open" -> Option.map (fun dst -> Conn_open { dst }) (addr "dst")
    | "conn_established" -> Some Conn_established
    | "conn_failed" ->
        Option.map (fun reason -> Conn_failed { reason }) (str "reason")
    | "syn_sent" ->
        Option.map (fun attempt -> Syn_sent { attempt })
          (field "attempt" Json.to_int_opt)
    | "syn_received" -> Some Syn_received
    | "run_start" -> Option.map (fun label -> Run_start { label }) (str "label")
    | "note" -> Option.map (fun text -> Note text) (str "text")
    | "node_crash" -> Option.map (fun role -> Node_crash { role }) (str "role")
    | "node_restart" ->
        Option.map (fun role -> Node_restart { role }) (str "role")
    | "pce_bypass" ->
        Option.map (fun qname -> Pce_bypass { qname }) (str "qname")
    | "degraded_to_pull" ->
        Option.map (fun eid -> Degraded_to_pull { eid }) (addr "eid")
    | "spoofed_reply" -> (
        match (addr "eid", field "accepted" Json.to_bool_opt) with
        | Some eid, Some accepted -> Some (Spoofed_reply { eid; accepted })
        | _ -> None)
    | "replayed_reply" -> (
        match (addr "eid", field "accepted" Json.to_bool_opt) with
        | Some eid, Some accepted -> Some (Replayed_reply { eid; accepted })
        | _ -> None)
    | "poisoned_answer" -> (
        match (str "qname", field "accepted" Json.to_bool_opt) with
        | Some qname, Some accepted -> Some (Poisoned_answer { qname; accepted })
        | _ -> None)
    | "glean_rejected" ->
        Option.map (fun eid -> Glean_rejected { eid }) (addr "eid")
    | _ -> None
  in
  match kind with
  | Some kind -> Ok { time; actor; flow; kind }
  | None -> Error (Printf.sprintf "bad or unknown event kind %S" kind_str)
