(* Process-wide export configuration.

   Experiments build their scenarios internally, so the CLI cannot hand
   an export target to each one.  Instead it installs a runtime before
   running; every scenario built while it is installed attaches its hub
   and registry here and gets the requested sinks (JSONL writer,
   metrics sampler).  [finalize] flushes everything and uninstalls. *)

type t = {
  trace_channel : out_channel option;
  metrics_file : string option;
  interval : float;
  latency : bool;
  mutable runs_rev : Export.run list;
  mutable latency_rev : (string * Latency.t) list;
  mutable run_seq : int;
}

(* Domain-safety audit (engine sharding): this ref is process-global
   but is only read/written during install/attach/finalize — the
   single-domain setup and teardown phases around a run.  Scenarios
   dispatched in parallel via [Netsim.Engine.Shards] must attach
   before and finalize after the parallel section; the sharded bench
   paths never touch the runtime, so no atomics are needed here
   (unlike [Netsim.Engine]'s process-wide event counter). *)
let current : t option ref = ref None

let install ?trace_out ?metrics_out ?(metrics_interval = 1.0)
    ?(latency = false) () =
  if !current <> None then invalid_arg "Obs.Runtime.install: already installed";
  if metrics_interval <= 0.0 then
    invalid_arg "Obs.Runtime.install: metrics interval must be positive";
  let t =
    { trace_channel = Option.map open_out trace_out;
      metrics_file = metrics_out; interval = metrics_interval; latency;
      runs_rev = []; latency_rev = []; run_seq = 0 }
  in
  current := Some t;
  t

let active () = !current <> None

let attach ?label ~hub ~registry () =
  match !current with
  | None -> ()
  | Some t ->
      Hub.set_enabled hub true;
      t.run_seq <- t.run_seq + 1;
      let run_label =
        match label with
        | Some l -> l
        | None -> Printf.sprintf "run-%d" t.run_seq
      in
      (match t.trace_channel with
      | Some oc ->
          Hub.add_sink hub (Export.jsonl_sink oc);
          (* Stream marker so a multi-run JSONL file can be split back
             into per-run segments by [repro_cli spans]. *)
          Hub.emit hub ~time:0.0 ~actor:"runtime"
            (Event.Run_start { label = run_label })
      | None -> ());
      if t.latency then begin
        let analyzer = Latency.create () in
        Hub.add_sink hub (fun e -> Latency.feed analyzer e);
        t.latency_rev <- (run_label, analyzer) :: t.latency_rev
      end;
      let sampler =
        match t.metrics_file with
        | None -> None
        | Some _ ->
            let sampler =
              Sampler.create ~interval:t.interval ~registry ()
            in
            Hub.add_sink hub (fun e -> Sampler.tick sampler ~now:e.Event.time);
            Some sampler
      in
      t.runs_rev <- { Export.run_label; registry; sampler } :: t.runs_rev

let finish_run ~now =
  match !current with
  | None -> ()
  | Some t ->
      (match t.runs_rev with
      | { Export.sampler = Some sampler; _ } :: _ ->
          Sampler.finalise sampler ~now
      | _ -> ());
      (match t.latency_rev with
      | (_, analyzer) :: _ -> Latency.close analyzer ~now
      | [] -> ())

let latency_reports () =
  match !current with
  | None -> []
  | Some t ->
      List.rev_map
        (fun (label, analyzer) -> (label, Latency.summary analyzer))
        t.latency_rev

let finalize () =
  match !current with
  | None -> ()
  | Some t ->
      current := None;
      (match t.trace_channel with
      | Some oc ->
          flush oc;
          close_out oc
      | None -> ());
      (match t.metrics_file with
      | Some file -> Export.write_metrics ~file (List.rev t.runs_rev)
      | None -> ())
