(* Per-flow latency decomposition, folded from span trees.

   The paper's connection-setup budget is

     T_setup = T_DNS + T_map_resol + 2 OWD(S,D) + OWD(D,S)

   and its two weaknesses are the T_map_resol term and first packets
   dying while the ITR waits on a mapping.  This analyzer reduces each
   finished span tree (via the builder's root-close callback, so
   memory stays O(1) per flow) into exactly those quantities: phase
   sums plus P2 percentiles for the means, and wait-drop counts.

   Only flows whose setup completed (root outcome Ok) feed the phase
   distributions — an abandoned flow has no meaningful "setup time".
   A flow with no map_resolution span contributes 0 to T_map_resol,
   which is what makes the PCE scenario's decomposition read ~0. *)

module P2 = Netsim.Stats.P2

type dist = { mutable sum : float; mutable n : int; p50 : P2.t; p95 : P2.t }

let new_dist () =
  { sum = 0.0; n = 0; p50 = P2.create ~p:50.0; p95 = P2.create ~p:95.0 }

let dist_add d v =
  d.sum <- d.sum +. v;
  d.n <- d.n + 1;
  P2.add d.p50 v;
  P2.add d.p95 v

let dist_mean d = if d.n = 0 then 0.0 else d.sum /. float_of_int d.n
let dist_p50 d = if d.n = 0 then 0.0 else P2.quantile d.p50
let dist_p95 d = if d.n = 0 then 0.0 else P2.quantile d.p95

type agg = {
  mutable flows : int;
  mutable established : int;
  mutable failed : int;
  mutable unfinished : int;
  mutable wait_drops : int;
  t_dns : dist;
  t_map : dist;
  t_wait : dist;
  t_handshake : dist;
  t_setup : dist;
  mutable drops : int;
  mutable cp_retries : int;
  mutable cp_timeouts : int;
  mutable cp_losses : int;
  mutable pce_bypasses : int;
  mutable degraded : int;
}

type t = { agg : agg; builder : Span.builder }

let observe_root agg (root : Span.t) =
  match root.Span.flow with
  | None -> ()  (* control-plane instant span; counted at event level *)
  | Some _ ->
      agg.flows <- agg.flows + 1;
      (match root.Span.outcome with
      | Span.Ok -> agg.established <- agg.established + 1
      | Span.Failed -> agg.failed <- agg.failed + 1
      | _ -> agg.unfinished <- agg.unfinished + 1);
      let dns = ref 0.0 and map = ref 0.0 and wait = ref 0.0 in
      let handshake = ref 0.0 in
      Span.iter
        (fun s ->
          match s.Span.name with
          | "dns_resolution" -> dns := !dns +. Span.duration s
          | "map_resolution" -> map := !map +. Span.duration s
          | "first_packet_wait" ->
              wait := !wait +. Span.duration s;
              (* Lost: dropped outright (drop mode, no-mapping).
                 Timeout: the held packet died when the resolution
                 timed out (queue mode).  Either way the flow's first
                 packet never came out of the wait. *)
              (match s.Span.outcome with
              | Span.Lost | Span.Timeout ->
                  agg.wait_drops <- agg.wait_drops + 1
              | _ -> ())
          | "handshake" -> handshake := !handshake +. Span.duration s
          | _ -> ())
        root;
      if root.Span.outcome = Span.Ok then begin
        dist_add agg.t_dns !dns;
        dist_add agg.t_map !map;
        dist_add agg.t_wait !wait;
        dist_add agg.t_handshake !handshake;
        dist_add agg.t_setup (Span.duration root)
      end

let create () =
  let agg =
    { flows = 0; established = 0; failed = 0; unfinished = 0; wait_drops = 0;
      t_dns = new_dist (); t_map = new_dist (); t_wait = new_dist ();
      t_handshake = new_dist (); t_setup = new_dist (); drops = 0;
      cp_retries = 0; cp_timeouts = 0; cp_losses = 0; pce_bypasses = 0;
      degraded = 0 }
  in
  { agg; builder = Span.create_builder ~on_root_close:(observe_root agg) () }

let feed t (e : Event.t) =
  (match e.Event.kind with
  | Event.Packet_drop _ -> t.agg.drops <- t.agg.drops + 1
  | Event.Cp_retry _ -> t.agg.cp_retries <- t.agg.cp_retries + 1
  | Event.Cp_timeout _ -> t.agg.cp_timeouts <- t.agg.cp_timeouts + 1
  | Event.Cp_loss _ -> t.agg.cp_losses <- t.agg.cp_losses + 1
  | Event.Pce_bypass _ -> t.agg.pce_bypasses <- t.agg.pce_bypasses + 1
  | Event.Degraded_to_pull _ -> t.agg.degraded <- t.agg.degraded + 1
  | _ -> ());
  Span.feed t.builder e

let close t ~now = Span.finish t.builder ~now

let summary t =
  let a = t.agg in
  let phase name d =
    [ (name ^ "_mean", dist_mean d); (name ^ "_p50", dist_p50 d);
      (name ^ "_p95", dist_p95 d) ]
  in
  [ ("flows", float_of_int a.flows);
    ("established", float_of_int a.established);
    ("failed", float_of_int a.failed);
    ("unfinished", float_of_int a.unfinished) ]
  @ phase "t_dns" a.t_dns
  @ phase "t_map_resol" a.t_map
  @ phase "t_first_packet_wait" a.t_wait
  @ phase "t_handshake" a.t_handshake
  @ phase "t_setup" a.t_setup
  @ [ ("wait_drops", float_of_int a.wait_drops);
      ("drops", float_of_int a.drops);
      ("cp_retries", float_of_int a.cp_retries);
      ("cp_timeouts", float_of_int a.cp_timeouts);
      ("cp_losses", float_of_int a.cp_losses);
      ("pce_bypasses", float_of_int a.pce_bypasses);
      ("degraded_to_pull", float_of_int a.degraded) ]
