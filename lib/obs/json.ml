(* Minimal JSON values: just enough to render and re-parse the flat
   objects the observability exporters emit.  Kept dependency-free on
   purpose — the container has no JSON library baked in and the event
   schema never needs more than scalars, objects and arrays. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.12g" v

let rec write buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float v -> Buffer.add_string buffer (float_repr v)
  | String s -> escape buffer s
  | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          write buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buffer ',';
          escape buffer key;
          Buffer.add_char buffer ':';
          write buffer value)
        fields;
      Buffer.add_char buffer '}'

let to_string v =
  let buffer = Buffer.create 128 in
  write buffer v;
  Buffer.contents buffer

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail cursor message =
  raise (Parse_error (Printf.sprintf "%s at offset %d" message cursor.pos))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some _ | None -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected '%s'" word)

let parse_string c =
  expect c '"';
  let buffer = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buffer '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buffer '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buffer '\r'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buffer '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buffer '\012'; loop ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char buffer c.text.[c.pos];
            advance c;
            loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.text then fail c "bad \\u escape";
            let code = int_of_string ("0x" ^ String.sub c.text c.pos 4) in
            c.pos <- c.pos + 4;
            (* Only BMP code points below 0x80 round-trip exactly; the
               exporters never emit anything else. *)
            if code < 0x80 then Buffer.add_char buffer (Char.chr code)
            else Buffer.add_string buffer (Printf.sprintf "\\u%04x" code);
            loop ()
        | Some _ | None -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buffer ch;
        loop ()
  in
  loop ();
  Buffer.contents buffer

let parse_number c =
  let start = c.pos in
  let is_number_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_number_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "malformed number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let value = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, value) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, value) :: acc)
          | Some _ | None -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (value :: acc)
          | Some ']' ->
              advance c;
              List.rev (value :: acc)
          | Some _ | None -> fail c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character '%c'" ch)

let of_string s =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | value ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage"
      else Ok value
  | exception Parse_error message -> Error message

(* Accessors for flat decoding. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
