let event_line event = Json.to_string (Event.to_json event)

let jsonl_sink oc event =
  output_string oc (event_line event);
  output_char oc '\n'

let parse_event line =
  match Json.of_string line with
  | Error message -> Error message
  | Ok json -> Event.of_json json

let read_jsonl file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      let errors = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match parse_event line with
             | Ok event -> events := event :: !events
             | Error message ->
                 errors := (!lineno, message) :: !errors
         done
       with End_of_file -> ());
      (List.rev !events, List.rev !errors))

(* ------------------------------------------------------------------ *)
(* Metrics snapshots                                                   *)
(* ------------------------------------------------------------------ *)

let value_json = function
  | Registry.Counter n -> Json.Int n
  | Registry.Gauge v -> Json.Float v
  | Registry.Histogram s ->
      Json.Obj
        [ ("count", Json.Int s.Registry.hist_count);
          ("sum", Json.Float s.Registry.hist_sum);
          ("min", Json.Float s.Registry.hist_min);
          ("max", Json.Float s.Registry.hist_max);
          ("mean", Json.Float s.Registry.hist_mean) ]

type run = { run_label : string; registry : Registry.t; sampler : Sampler.t option }

let run_json { run_label; registry; sampler } =
  let final =
    Json.Obj
      (List.map (fun (name, v) -> (name, value_json v)) (Registry.snapshot registry))
  in
  let series =
    match sampler with
    | None -> []
    | Some sampler ->
        [ ("interval", Json.Float (Sampler.interval sampler));
          ( "series",
            Json.List
              (List.map
                 (fun (row : Sampler.row) ->
                   Json.Obj
                     [ ("time", Json.Float row.Sampler.at);
                       ( "values",
                         Json.Obj
                           (List.map
                              (fun (name, v) -> (name, Json.Float v))
                              row.Sampler.values) ) ])
                 (Sampler.rows sampler)) ) ]
  in
  Json.Obj ([ ("label", Json.String run_label); ("final", final) ] @ series)

let metrics_json runs = Json.to_string (Json.Obj [ ("runs", Json.List (List.map run_json runs)) ])

(* CSV: long format, one (run, time, metric, value) per row; final
   snapshot rows carry time = "final". *)
let metrics_csv runs =
  let table =
    Metrics.Table.create ~title:"metrics"
      ~columns:[ "run"; "time"; "metric"; "value" ]
  in
  List.iter
    (fun { run_label; registry; sampler } ->
      (match sampler with
      | None -> ()
      | Some sampler ->
          List.iter
            (fun (row : Sampler.row) ->
              List.iter
                (fun (name, v) ->
                  Metrics.Table.add_row table
                    [ run_label; Printf.sprintf "%.6f" row.Sampler.at; name;
                      Printf.sprintf "%g" v ])
                row.Sampler.values)
            (Sampler.rows sampler));
      List.iter
        (fun (name, v) ->
          Metrics.Table.add_row table
            [ run_label; "final"; name;
              Printf.sprintf "%g" (Registry.scalar v) ])
        (Registry.snapshot registry))
    runs;
  Metrics.Table.to_csv table

let write_file file contents =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_metrics ~file runs =
  let contents =
    if Filename.check_suffix file ".csv" then metrics_csv runs
    else metrics_json runs
  in
  write_file file contents
