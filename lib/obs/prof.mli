(** Observability face of the self-profiler.

    The accounting core lives in {!Netsim.Prof} so the engine itself
    can be instrumented (obs depends on netsim, not the other way
    around); this module re-exports it and adds everything that needs
    the observability stack: GC telemetry, JSON round-trip for
    BENCH.json (schema [lisp-pce-bench/4]), the human-readable
    breakdown table, Chrome-trace export of the recorded intervals,
    and registry gauges. *)

include module type of struct
  include Netsim.Prof
end

(** {1 GC telemetry}

    Flat [(name, value)] lists derived from [Gc.quick_stat]: the
    counter-like fields ([minor_collections], [major_collections],
    [compactions], [minor_words], [promoted_words], [major_words]) and
    the size fields ([heap_words], [top_heap_words]). *)

val gc_snapshot : unit -> (string * float) list

val gc_since : (string * float) list -> (string * float) list
(** [gc_since before] reads the GC again and returns counter fields as
    deltas since [before] and size fields at their current (absolute)
    value — the shape worth putting in a per-experiment report. *)

val register_gc_gauges : Registry.t -> unit
(** Register the {!gc_snapshot} fields as [gc.*] gauges (read at
    snapshot time, so sampled timelines see GC progress). *)

(** {1 BENCH.json (v3) serialisation} *)

val json_of_report : ?gc:(string * float) list -> report -> Json.t
(** Object with [wall_s], [coverage], [unattributed_s],
    [intervals_dropped], [phases] (each with [name]/[self_s]/[total_s]/
    [calls]/[share] where share = self/wall), [counters], and [gc]. *)

val report_of_json :
  Json.t -> (report * (string * float) list, string) result
(** Inverse of {!json_of_report} (up to float formatting: values
    round-trip through the exporter's decimal rendering, so compare
    with a relative epsilon).  Returns the report and the [gc] list. *)

(** {1 Rendering} *)

val breakdown_table : ?title:string -> report -> Metrics.Table.t
(** Per-phase table sorted by self time (descending), with share
    percentages, calls and an unattributed row. *)

val pp_report : Format.formatter -> report -> unit
(** {!breakdown_table} plus counters, one per line. *)

(** {1 Chrome-trace self-profile} *)

val chrome_events :
  ?pid:int -> ?process_name:string -> interval list -> Json.t list
(** Complete ["X"]-phase event objects (timestamps in microseconds
    since the profiled origin) preceded by a [process_name] metadata
    record — ready to drop into a [traceEvents] array, alongside the
    span export from {!Span.write_chrome_trace}. *)

val write_chrome_trace :
  file:string -> (string * interval list) list -> unit
(** One Chrome-trace JSON file with one process per labelled interval
    set.  Open the result in [chrome://tracing] / Perfetto. *)
