(** Periodic metrics sampler: snapshots a {!Registry} into
    interval-spaced rows of simulated time.

    Drive it by calling {!tick} with the current simulated time — most
    conveniently by attaching [fun e -> tick s ~now:e.Event.time] as a
    hub sink — and call {!finalise} once at end of run.  A sampler
    never schedules engine events, so it cannot keep a scenario's event
    loop from draining. *)

type t

type row = { at : float; values : (string * float) list }

val create : ?max_rows:int -> interval:float -> registry:Registry.t -> unit -> t
(** [interval] is in simulated seconds and must be positive.
    [max_rows] (default 100k) bounds memory on runaway runs; rows past
    the cap are counted in {!dropped_rows} instead of stored. *)

val interval : t -> float

val tick : t -> now:float -> unit
(** Record a sample for every elapsed interval boundary up to [now].
    Values are read at tick time, so a sample's values may lag its
    nominal bucket time by up to one inter-event gap. *)

val finalise : t -> now:float -> unit
(** Record one closing sample at [now] if nothing was sampled there. *)

val rows : t -> row list
(** All samples in chronological order. *)

val row_count : t -> int
val dropped_rows : t -> int

val series : t -> string -> (float * float) list
(** One metric's [(time, value)] points across all rows. *)

val to_timeseries : t -> string -> Metrics.Timeseries.t option
(** One metric re-bucketed into a {!Metrics.Timeseries} with the
    sampler's interval as bucket width; [None] if no rows exist. *)
