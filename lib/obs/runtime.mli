(** Process-wide export wiring for the CLI.

    [repro_cli run --trace-out F --metrics-out F] installs a runtime;
    while one is installed, every scenario that calls {!attach} (done
    in [Scenario.build]) gets its hub enabled and connected to the
    requested exporters.  Without an installed runtime {!attach} is a
    no-op, so library users and tests are unaffected. *)

type t

val install :
  ?trace_out:string ->
  ?metrics_out:string ->
  ?metrics_interval:float ->
  ?latency:bool ->
  unit ->
  t
(** Install the runtime (opens [trace_out] immediately).  At most one
    runtime may be installed at a time.  With [~latency:true] every
    attached run also feeds a {!Latency} analyzer; read the results
    with {!latency_reports} before {!finalize}. *)

val active : unit -> bool

val attach : ?label:string -> hub:Hub.t -> registry:Registry.t -> unit -> unit
(** Called by scenario construction: enables [hub] and adds the JSONL
    sink and/or a metrics sampler according to the installed runtime.
    No-op when nothing is installed. *)

val finish_run : now:float -> unit
(** Record the closing metrics sample and flush the latency analyzer
    of the most recently attached run (call after the scenario's
    engine has drained). *)

val latency_reports : unit -> (string * (string * float) list) list
(** Per-run latency decompositions ([(run label, Latency.summary)]) in
    attach order; empty unless installed with [~latency:true]. *)

val finalize : unit -> unit
(** Flush and close the event stream, write the metrics file, and
    uninstall.  No-op when nothing is installed. *)
