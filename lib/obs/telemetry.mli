(** Observability surface over {!Netsim.Telemetry}.

    Re-exports the whole core telemetry plane (hooks, counters, balance
    metrics, drop attribution, heavy-hitter sketches) and adds the
    presentation layers the rest of the observability stack already has
    for {!Prof}: registry gauges, a JSON snapshot, rendered tables, a
    windowed-series CSV, and Chrome-trace counter events. *)

include module type of Netsim.Telemetry

val register_gauges : Registry.t -> unit
(** Register a ["telemetry"] gauge family: window/cumulative bytes and
    shares per provider and direction, Jain indexes, load ratios (only
    when finite), drop and sketch totals.  Rows are empty while
    telemetry is disabled. *)

val gauge_rows : unit -> (string * float) list
(** The rows {!register_gauges} exports, for callers that sample
    directly. *)

val json_snapshot : ?series:bool -> unit -> Json.t
(** Full structured snapshot: config, TE balance (window and total),
    per-provider / per-node / per-link stats, drop totals and
    per-node attributions, top EIDs/flows with error bounds, and IRC
    selection counts.  [series:true] additionally embeds the retained
    per-provider windowed series.  Non-finite load ratios serialise as
    [null]. *)

val node_name : int -> string
(** Label registered via {!set_node_label}, else ["n<id>"];
    ["(unattributed)"] for [-1]. *)

(** {1 Tables} *)

val provider_table : unit -> Metrics.Table.t
(** Per-provider in/out bytes and shares, with a trailing Jain/ratio
    summary row over the sliding window. *)

val node_table : ?limit:int -> unit -> Metrics.Table.t
(** Per-node tx/rx/fwd counters, heaviest nodes first (default top
    20). *)

val drop_table : unit -> Metrics.Table.t
(** Per-(node, cause) drop counts with share of all drops. *)

val top_eid_table : ?limit:int -> unit -> Metrics.Table.t
val top_flow_table : ?limit:int -> unit -> Metrics.Table.t

val tables : unit -> Metrics.Table.t list
(** All of the above, in report order. *)

(** {1 Series export} *)

val series_csv : unit -> string
(** Retained per-provider windowed series as CSV
    ([slot,start_s,provider,direction,pkts,bytes]). *)

(** {1 Chrome trace} *)

val chrome_counter_events : ?pid:int -> unit -> Json.t list
(** ["ph":"C"] counter events (one track per provider and direction,
    one sample per retained window) on the simulated-time axis, in
    microseconds — mergeable with {!Prof.chrome_events} output. *)

val write_chrome_trace : file:string -> unit -> unit
(** Write [{"traceEvents": [...]}] containing the counter events. *)
