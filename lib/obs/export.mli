(** Exporters: JSONL event streams and JSON/CSV metrics snapshots.

    Event stream: one JSON object per line, every line carrying [time],
    [actor] and [kind]; flow-scoped events add [flow]; kind-specific
    payload fields follow ({!Event.to_json}).

    Metrics: [{"runs": [{"label", "final", "interval", "series"}]}] in
    JSON, or long-format [run,time,metric,value] rows in CSV (chosen by
    the [.csv] file extension). *)

val event_line : Event.t -> string
(** One event as a single JSON line (no trailing newline). *)

val jsonl_sink : out_channel -> Hub.sink
(** A hub sink appending one JSON line per event to [oc]. *)

val parse_event : string -> (Event.t, string) result
(** Parse one JSONL line back into an event. *)

val read_jsonl : string -> Event.t list * (int * string) list
(** Read a whole exported file: parsed events in order, plus
    [(line-number, message)] for every unparseable line. *)

type run = {
  run_label : string;
  registry : Registry.t;
  sampler : Sampler.t option;
}

val metrics_json : run list -> string
val metrics_csv : run list -> string

val write_metrics : file:string -> run list -> unit
(** Write CSV when [file] ends in [.csv], JSON otherwise. *)
