(** Structured, flow-scoped simulation events.

    Every observable step of a run — DNS resolution, mapping
    resolution, cache behaviour, tunnelling, TE decisions, failures —
    is one typed event carrying the simulated time, the emitting actor
    and, when the step belongs to a flow, a direction-insensitive flow
    id.  Events reach the outside world through {!Hub} sinks. *)

open Nettypes

type kind =
  | Dns_query of { qname : string }
  | Dns_reply of { qname : string; answered : bool }
  | Map_request of { eid : Ipv4.addr }
  | Map_reply of { eid : Ipv4.addr }
  | Cache_hit of { eid : Ipv4.addr }
  | Cache_miss of { eid : Ipv4.addr }
  | Cache_evict of { prefix : Ipv4.prefix }
  | Mapping_push of { targets : int }
  | Packet_drop of { cause : string }
  | Encap of { outer_src : Ipv4.addr; outer_dst : Ipv4.addr }
  | Decap of { outer_src : Ipv4.addr }
  | Irc_decision of { rloc : Ipv4.addr }
  | Link_up of { rloc : Ipv4.addr }
  | Link_down of { rloc : Ipv4.addr }
  | Cp_loss of { message : string }
      (** a control message ("map-request", "map-reply", "pce-push",
          "nerd-push") was lost to the fault model *)
  | Cp_retry of { eid : Ipv4.addr; attempt : int; message : string }
      (** retry timer fired; [attempt] numbers the retransmission (1 =
          first retransmit) and [message] names the originating control
          message ("map-request", "pce-push", ...) *)
  | Cp_timeout of { eid : Ipv4.addr; message : string }
      (** retry budget exhausted; the resolution/push was abandoned *)
  | Conn_open of { dst : Ipv4.addr }
      (** a workload flow starts connection setup (DNS lookup begins) *)
  | Conn_established  (** three-way handshake completed at the initiator *)
  | Conn_failed of { reason : string }
      (** connection setup abandoned ("resolution-failed",
          "syn-retries-exhausted") *)
  | Syn_sent of { attempt : int }
      (** initiator (re)transmitted its SYN; [attempt] is 1-based *)
  | Syn_received  (** the first SYN copy reached the responder *)
  | Run_start of { label : string }
      (** stream marker separating runs in a multi-run JSONL trace *)
  | Note of string  (** free-form bridge for legacy trace text *)
  | Node_crash of { role : string }
      (** a node went down per the lifecycle schedule; [role] is
          {!Netsim.Lifecycle.role_label} output ("pce(1)", "dns(0)",
          "map-server") *)
  | Node_restart of { role : string }
      (** the node came back up (warm recovery begins for PCEs) *)
  | Pce_bypass of { qname : string }
      (** a DNS server's watchdog expired waiting on its dead PCE; the
          answer for [qname] was delivered un-piggybacked *)
  | Degraded_to_pull of { eid : Ipv4.addr }
      (** an ITR cache miss could not be served by PCE push and fell
          back to the pull mapping system *)
  | Spoofed_reply of { eid : Ipv4.addr; accepted : bool }
      (** an adversary's forged map-reply raced the resolution of [eid];
          [accepted] tells whether it beat the verification in force *)
  | Replayed_reply of { eid : Ipv4.addr; accepted : bool }
      (** a captured stale map-reply was replayed at a live resolution *)
  | Poisoned_answer of { qname : string; accepted : bool }
      (** the resolver-bound DNS answer for [qname] was raced by a
          forged one *)
  | Glean_rejected of { eid : Ipv4.addr }
      (** the cache admission policy refused a gleaned mapping *)

type t = { time : float; actor : string; flow : int option; kind : kind }

val flow_id : Flow.t -> int
(** Stable flow identifier; a flow and its reverse (the SYN/ACK
    direction) map to the same id so both tunnel directions correlate. *)

val kind_name : kind -> string
(** Snake-case tag, also the JSON ["kind"] field. *)

val describe : t -> string
(** Human-readable one-liner (the string-renderer sink uses this). *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** Flat object with [time], [actor], [kind], optional [flow], and
    kind-specific payload fields. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; [Error] on unknown kinds or missing fields. *)
