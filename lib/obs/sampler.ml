(* Periodic registry snapshots in simulated time.

   The sampler is driven by [tick ~now] rather than by engine events:
   a self-rescheduling engine event would keep the event loop from ever
   draining (scenarios run until their heap is empty).  Attaching the
   tick as a hub sink gives interval-spaced samples whenever the
   simulation is producing events, which is exactly when the metrics
   are changing. *)

type row = { at : float; values : (string * float) list }

type t = {
  interval : float;
  registry : Registry.t;
  max_rows : int;
  mutable tick_no : int;
  mutable rows_rev : row list;
  mutable row_count : int;
  mutable dropped : int;
}

let create ?(max_rows = 100_000) ~interval ~registry () =
  if interval <= 0.0 then
    invalid_arg "Obs.Sampler.create: interval must be positive";
  { interval; registry; max_rows; tick_no = 0; rows_rev = []; row_count = 0;
    dropped = 0 }

let interval t = t.interval

let record t ~at =
  if t.row_count >= t.max_rows then t.dropped <- t.dropped + 1
  else begin
    t.rows_rev <- { at; values = Registry.sample t.registry } :: t.rows_rev;
    t.row_count <- t.row_count + 1
  end

(* Tick boundaries are [n * interval], not [last + interval]: repeated
   float addition drifts (0.1 added 1000 times is 99.9999999999986, so
   a sample lands just before t=100 and workers' series desynchronise
   on long runs).  An integer tick counter keeps every boundary the
   nearest float to [n * interval]. *)
let boundary t n = float_of_int n *. t.interval

let tick t ~now =
  while boundary t t.tick_no <= now do
    record t ~at:(boundary t t.tick_no);
    t.tick_no <- t.tick_no + 1
  done

let finalise t ~now =
  (* One closing sample so end-of-run values always appear, even when
     the run ended mid-bucket. *)
  if
    (match t.rows_rev with
    | last :: _ -> last.at < now
    | [] -> true)
  then record t ~at:now

let rows t = List.rev t.rows_rev
let row_count t = t.row_count
let dropped_rows t = t.dropped

let series t name =
  List.filter_map
    (fun row ->
      Option.map (fun v -> (row.at, v)) (List.assoc_opt name row.values))
    (rows t)

let to_timeseries t name =
  match rows t with
  | [] -> None
  | all ->
      let horizon =
        match List.rev all with
        | last :: _ -> Float.max t.interval (last.at +. t.interval)
        | [] -> t.interval
      in
      let ts = Metrics.Timeseries.create ~bucket:t.interval ~horizon in
      List.iter
        (fun (at, v) -> Metrics.Timeseries.add ts ~at ~value:v ())
        (series t name);
      Some ts
