open Nettypes

type cache_entry =
  | Cached_address of Ipv4.addr * float (* expiry *)
  | Cached_referral of Name.t * Topology.Node.id * float

type resolver = {
  node : Topology.Node.id;
  cache : (Name.t, cache_entry) Hashtbl.t;
  mutable observer : (client_eid:Ipv4.addr -> qname:Name.t -> unit) option;
}

type tap_context = {
  tap_qname : Name.t;
  tap_answer : Ipv4.addr;
  tap_server : Topology.Node.id;
  tap_resolver : Topology.Node.id;
  tap_wire_latency : float;
  tap_complete : unit -> unit;
}

type counters = {
  mutable client_queries : int;
  mutable iterative_queries : int;
  mutable responses : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable wire_bytes : int;
  mutable tap_bypasses : int;
  mutable outage_failures : int;
  mutable poisoned_accepted : int;
  mutable poisoned_rejected : int;
}

(* Watchdog that lets a server answer around a crashed response tap
   (the PCE bypass path): while [guard_down] holds, the final answer
   is delivered un-tapped after [guard_watchdog] seconds. *)
type tap_guard = {
  guard_down : unit -> bool;
  guard_watchdog : float;
  guard_on_bypass : (qname:Name.t -> unit) option;
}

type t = {
  engine : Netsim.Engine.t;
  internet : Topology.Builder.t;
  zones : (Topology.Node.id, Zone.t) Hashtbl.t;
  resolvers : (Topology.Node.id, resolver) Hashtbl.t;
  taps : (Topology.Node.id, tap_context -> unit) Hashtbl.t;
  tap_guards : (Topology.Node.id, tap_guard) Hashtbl.t;
  outages : (Topology.Node.id, unit -> bool) Hashtbl.t;
  outage_timeout : float;
  server_processing : float;
  trace : Netsim.Trace.t option;
  obs : Obs.Hub.t option;
  counters : counters;
  (* Off-path answer forgery: consulted once per final address answer;
     [Some forged] races the genuine record for the resolver's cache.
     [authenticated] models DNSSEC-style origin authentication — the
     resolver detects and discards the forgery. *)
  mutable poisoner : (qname:Name.t -> Ipv4.addr option) option;
  mutable authenticated : bool;
}

let engine t = t.engine
let internet t = t.internet
let counters t = t.counters

let trace t ~actor fmt =
  match t.trace with
  | Some tr -> Netsim.Trace.recordf tr ~time:(Netsim.Engine.now t.engine) ~actor fmt
  | None -> Format.ikfprintf ignore Format.err_formatter fmt

let obs_on t =
  match t.obs with Some hub -> Obs.Hub.enabled hub | None -> false

let obs_emit t ~actor ?flow kind =
  match t.obs with
  | Some hub ->
      Obs.Hub.emit hub ~time:(Netsim.Engine.now t.engine) ~actor ?flow kind
  | None -> ()

let node_label t id = (Topology.Graph.node t.internet.Topology.Builder.graph id).Topology.Node.label

let populate t ~record_ttl =
  let internet = t.internet in
  let root_zone =
    Zone.create ~apex:Name.root ~server:internet.Topology.Builder.root_dns
      ~ttl:record_ttl
  in
  let net = Name.of_string "net." in
  Zone.delegate root_zone ~child_apex:net
    ~child_server:internet.Topology.Builder.tld_dns;
  Hashtbl.replace t.zones internet.Topology.Builder.root_dns root_zone;
  let tld_zone =
    Zone.create ~apex:net ~server:internet.Topology.Builder.tld_dns
      ~ttl:record_ttl
  in
  Hashtbl.replace t.zones internet.Topology.Builder.tld_dns tld_zone;
  Array.iter
    (fun domain ->
      let apex = Name.of_string (Topology.Domain.fqdn domain) in
      let dns = domain.Topology.Domain.dns in
      Zone.delegate tld_zone ~child_apex:apex ~child_server:dns;
      let zone = Zone.create ~apex ~server:dns ~ttl:record_ttl in
      Array.iteri
        (fun i _host ->
          Zone.add_a zone
            (Name.of_string (Topology.Domain.host_name domain i))
            (Topology.Domain.host_eid domain i))
        domain.Topology.Domain.hosts;
      Hashtbl.replace t.zones dns zone;
      Hashtbl.replace t.resolvers dns
        { node = dns; cache = Hashtbl.create 64; observer = None })
    internet.Topology.Builder.domains

let create ~engine ~internet ?(record_ttl = 3600.0) ?(server_processing = 0.0005)
    ?(outage_timeout = 2.0) ?trace ?obs () =
  let t =
    { engine; internet; zones = Hashtbl.create 16; resolvers = Hashtbl.create 16;
      taps = Hashtbl.create 4; tap_guards = Hashtbl.create 4;
      outages = Hashtbl.create 4; outage_timeout; server_processing; trace; obs;
      counters =
        { client_queries = 0; iterative_queries = 0; responses = 0;
          cache_hits = 0; cache_misses = 0; wire_bytes = 0; tap_bypasses = 0;
          outage_failures = 0; poisoned_accepted = 0; poisoned_rejected = 0 };
      poisoner = None; authenticated = false }
  in
  populate t ~record_ttl;
  t

let resolver_node _t domain = domain.Topology.Domain.dns

let set_response_tap t ~server tap =
  match tap with
  | Some f -> Hashtbl.replace t.taps server f
  | None -> Hashtbl.remove t.taps server

let set_tap_guard t ~server guard =
  match guard with
  | Some g -> Hashtbl.replace t.tap_guards server g
  | None -> Hashtbl.remove t.tap_guards server

let set_poisoner t p = t.poisoner <- p
let set_authenticated t b = t.authenticated <- b

let set_server_outage t ~server down =
  match down with
  | Some pred -> Hashtbl.replace t.outages server pred
  | None -> Hashtbl.remove t.outages server

let node_down t node =
  match Hashtbl.find_opt t.outages node with
  | Some pred -> pred ()
  | None -> false

let resolver_exn t node =
  match Hashtbl.find_opt t.resolvers node with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Dnssim.System: node %d is not a resolver" node)

let set_query_observer t ~resolver observer =
  (resolver_exn t resolver).observer <- observer

let flush_caches t =
  Hashtbl.iter (fun _ r -> Hashtbl.reset r.cache) t.resolvers

(* All asynchronous DNS work — wire hops, server processing, outage
   timers — runs under the "dns" profiler phase, so its share of the
   engine's dispatch time is visible in the self-profile. *)
let ph_dns = Netsim.Prof.phase "dns"

(* Transmit [bytes] from [src] to [dst]: accounts link bytes and invokes
   [k] after the shortest-path latency. *)
let send t ~src ~dst ~bytes k =
  let graph = t.internet.Topology.Builder.graph in
  t.counters.wire_bytes <- t.counters.wire_bytes + bytes;
  if src <> dst then Topology.Graph.account_path graph ~src ~dst ~bytes;
  let latency = Topology.Graph.latency_between graph src dst in
  ignore
    (Netsim.Engine.schedule t.engine ~delay:latency (Netsim.Prof.wrap ph_dns k))

let query_size qname = 12 + Name.wire_size qname + 4

let cache_lookup t resolver qname =
  let now = Netsim.Engine.now t.engine in
  match Hashtbl.find_opt resolver.cache qname with
  | Some (Cached_address (addr, expiry)) when expiry > now -> Some addr
  | Some (Cached_address _) ->
      Hashtbl.remove resolver.cache qname;
      None
  | Some (Cached_referral _) | None -> None

(* Deepest live cached referral applying to [qname], else the root. *)
let starting_server t resolver qname =
  let now = Netsim.Engine.now t.engine in
  let rec probe name best =
    let best =
      match Hashtbl.find_opt resolver.cache name with
      | Some (Cached_referral (apex, server, expiry)) when expiry > now -> (
          match best with
          | Some (prev_apex, _) when Name.label_count prev_apex >= Name.label_count apex ->
              best
          | Some _ | None -> Some (apex, server))
      | Some (Cached_referral _ | Cached_address _) | None -> best
    in
    match Name.parent name with None -> best | Some p -> probe p best
  in
  match probe qname None with
  | Some (_, server) -> server
  | None -> t.internet.Topology.Builder.root_dns

let resolve t ~resolver:resolver_id ~client ~client_eid ?flow qname ~callback =
  let resolver = resolver_exn t resolver_id in
  let graph = t.internet.Topology.Builder.graph in
  t.counters.client_queries <- t.counters.client_queries + 1;
  trace t ~actor:(node_label t client) "DNS query %s -> %s (step 1)"
    (Name.to_string qname) (node_label t resolver_id);
  if obs_on t then
    obs_emit t ~actor:(node_label t client) ?flow
      (Obs.Event.Dns_query { qname = Name.to_string qname });
  (* Reply travels resolver -> client once resolution finishes. *)
  let answer_client result =
    t.counters.responses <- t.counters.responses + 1;
    send t ~src:resolver_id ~dst:client ~bytes:(query_size qname + 16) (fun () ->
        trace t ~actor:(node_label t client) "DNS answer for %s received (step 8)"
          (Name.to_string qname);
        if obs_on t then
          obs_emit t ~actor:(node_label t client) ?flow
            (Obs.Event.Dns_reply
               { qname = Name.to_string qname; answered = result <> None });
        callback result)
  in
  (* Iterative resolution loop at the resolver. *)
  let rec iterate server steps_left =
    if steps_left = 0 then answer_client None
    else begin
      t.counters.iterative_queries <- t.counters.iterative_queries + 1;
      trace t ~actor:(node_label t resolver_id) "iterative query %s -> %s"
        (Name.to_string qname) (node_label t server);
      send t ~src:resolver_id ~dst:server ~bytes:(query_size qname) (fun () ->
          if node_down t server then begin
            (* Crashed authoritative server: the query dies and the
               resolver gives up on the whole resolution after its
               query timeout. *)
            t.counters.outage_failures <- t.counters.outage_failures + 1;
            if Netsim.Telemetry.enabled () then
              Netsim.Telemetry.on_drop ~node:server
                Netsim.Telemetry.Outage_failure;
            trace t ~actor:(node_label t server)
              "server down: query %s unanswered" (Name.to_string qname);
            ignore
              (Netsim.Engine.schedule t.engine ~delay:t.outage_timeout
                 (Netsim.Prof.wrap ph_dns (fun () -> answer_client None)))
          end
          else
          (* Server-side processing, then answer. *)
          ignore
            (Netsim.Engine.schedule t.engine ~delay:t.server_processing
               (Netsim.Prof.wrap ph_dns (fun () ->
                 let zone =
                   match Hashtbl.find_opt t.zones server with
                   | Some z -> z
                   | None -> assert false
                 in
                 let answer = Zone.answer zone qname in
                 let bytes = Zone.answer_wire_size qname answer in
                 let wire_latency =
                   Topology.Graph.latency_between graph server resolver_id
                 in
                 match answer with
                 | Zone.Address addr -> (
                     let complete () =
                       (* Off-path forgery races the genuine record as it
                          reaches the resolver; with [authenticated] the
                          resolver validates and keeps the real one. *)
                       let addr =
                         match t.poisoner with
                         | None -> addr
                         | Some p -> (
                             match p ~qname with
                             | None -> addr
                             | Some forged ->
                                 let accepted = not t.authenticated in
                                 if obs_on t then
                                   obs_emit t
                                     ~actor:(node_label t resolver_id) ?flow
                                     (Obs.Event.Poisoned_answer
                                        { qname = Name.to_string qname;
                                          accepted });
                                 if accepted then begin
                                   t.counters.poisoned_accepted <-
                                     t.counters.poisoned_accepted + 1;
                                   trace t ~actor:(node_label t resolver_id)
                                     "poisoned answer for %s accepted"
                                     (Name.to_string qname);
                                   forged
                                 end
                                 else begin
                                   t.counters.poisoned_rejected <-
                                     t.counters.poisoned_rejected + 1;
                                   trace t ~actor:(node_label t resolver_id)
                                     "poisoned answer for %s rejected \
                                      (authenticated)"
                                     (Name.to_string qname);
                                   addr
                                 end)
                       in
                       let expiry =
                         Netsim.Engine.now t.engine +. Zone.ttl zone
                       in
                       Hashtbl.replace resolver.cache qname
                         (Cached_address (addr, expiry));
                       trace t ~actor:(node_label t resolver_id)
                         "answer %s = %a" (Name.to_string qname) Ipv4.pp_addr
                         addr;
                       answer_client (Some addr)
                     in
                     match Hashtbl.find_opt t.taps server with
                     | Some tap -> (
                         match Hashtbl.find_opt t.tap_guards server with
                         | Some g when g.guard_down () ->
                             (* The tap's PCE is crashed: wait out the
                                watchdog, then answer past it,
                                un-piggybacked. *)
                             t.counters.tap_bypasses <-
                               t.counters.tap_bypasses + 1;
                             trace t ~actor:(node_label t server)
                               "tap dead for %s: bypass after %gs watchdog"
                               (Name.to_string qname) g.guard_watchdog;
                             (match g.guard_on_bypass with
                             | Some f -> f ~qname
                             | None -> ());
                             ignore
                               (Netsim.Engine.schedule t.engine
                                  ~delay:g.guard_watchdog (fun () ->
                                    send t ~src:server ~dst:resolver_id ~bytes
                                      complete))
                         | Some _ | None ->
                             trace t ~actor:(node_label t server)
                               "final answer for %s intercepted by tap (step 6)"
                               (Name.to_string qname);
                             t.counters.wire_bytes <-
                               t.counters.wire_bytes + bytes;
                             tap
                               { tap_qname = qname; tap_answer = addr;
                                 tap_server = server;
                                 tap_resolver = resolver_id;
                                 tap_wire_latency = wire_latency;
                                 tap_complete = complete })
                     | None -> send t ~src:server ~dst:resolver_id ~bytes complete)
                 | Zone.Referral (child_apex, child_server) ->
                     send t ~src:server ~dst:resolver_id ~bytes (fun () ->
                         let expiry =
                           Netsim.Engine.now t.engine +. Zone.ttl zone
                         in
                         Hashtbl.replace resolver.cache child_apex
                           (Cached_referral (child_apex, child_server, expiry));
                         iterate child_server (steps_left - 1))
                 | Zone.Name_error ->
                     send t ~src:server ~dst:resolver_id ~bytes (fun () ->
                         answer_client None)))))
    end
  in
  (* Client -> resolver wire, then observer + cache check. *)
  send t ~src:client ~dst:resolver_id ~bytes:(query_size qname) (fun () ->
      if node_down t resolver_id then begin
        (* Crashed resolver: the client's query is never answered; it
           observes a failed resolution after its own timeout. *)
        t.counters.outage_failures <- t.counters.outage_failures + 1;
        if Netsim.Telemetry.enabled () then
          Netsim.Telemetry.on_drop ~node:resolver_id
            Netsim.Telemetry.Outage_failure;
        trace t ~actor:(node_label t resolver_id)
          "resolver down: query %s unanswered" (Name.to_string qname);
        ignore
          (Netsim.Engine.schedule t.engine ~delay:t.outage_timeout
             (Netsim.Prof.wrap ph_dns (fun () ->
                  if obs_on t then
                    obs_emit t ~actor:(node_label t client) ?flow
                      (Obs.Event.Dns_reply
                         { qname = Name.to_string qname; answered = false });
                  callback None)))
      end
      else begin
      (match resolver.observer with
      | Some f -> f ~client_eid ~qname
      | None -> ());
      match cache_lookup t resolver qname with
      | Some addr ->
          t.counters.cache_hits <- t.counters.cache_hits + 1;
          trace t ~actor:(node_label t resolver_id) "cache hit %s"
            (Name.to_string qname);
          answer_client (Some addr)
      | None ->
          t.counters.cache_misses <- t.counters.cache_misses + 1;
          iterate (starting_server t resolver qname) 16
      end)
