(** The simulated DNS: servers, resolvers and the wire between them.

    [create] instantiates the full hierarchy for an internet built by
    {!Topology.Builder}: a root zone, the [net.] TLD zone, one
    authoritative zone per domain (served by the domain's local DNS
    node, which doubles as the domain's recursive resolver — the
    DNS_S / DNS_D of the paper), and host A records mapping
    ["h<i>.as<d>.net."] to host EIDs.

    Two hook points expose exactly what the paper's PCEs see:
    - a {e query observer} on a resolver fires when a local client's
      query reaches DNS_S (step 1: PCE_S learns E_S by IPC);
    - a {e response tap} on an authoritative server intercepts final
      address answers on the wire (step 6: PCE_D catches the reply
      carrying E_D and may deliver it through its own path).  The tap
      owns delivery: it must eventually call [tap_complete]. *)

type t

val create :
  engine:Netsim.Engine.t ->
  internet:Topology.Builder.t ->
  ?record_ttl:float ->
  ?server_processing:float ->
  ?outage_timeout:float ->
  ?trace:Netsim.Trace.t ->
  ?obs:Obs.Hub.t ->
  unit ->
  t
(** [record_ttl] defaults to 3600 s; [server_processing] (per query, at
    each server) to 0.5 ms; [outage_timeout] (how long a querier waits
    on a crashed node before giving up, see {!set_server_outage}) to
    2 s.  [obs] receives typed [Dns_query]/[Dns_reply] events when
    enabled. *)

val engine : t -> Netsim.Engine.t
val internet : t -> Topology.Builder.t

val resolver_node : t -> Topology.Domain.t -> Topology.Node.id
(** The resolver serving a domain (its [dns] node). *)

type tap_context = {
  tap_qname : Name.t;
  tap_answer : Nettypes.Ipv4.addr;  (** the address in the intercepted reply *)
  tap_server : Topology.Node.id;  (** authoritative server (DNS_D) *)
  tap_resolver : Topology.Node.id;  (** querying resolver (DNS_S) *)
  tap_wire_latency : float;  (** server->resolver latency the reply would take *)
  tap_complete : unit -> unit;
      (** deliver the answer into the resolver, to be called once, after
          any tap-added delays *)
}

val set_response_tap : t -> server:Topology.Node.id -> (tap_context -> unit) option -> unit
(** Install/remove the tap for final answers emitted by a server.
    Referrals and errors are never tapped. *)

type tap_guard = {
  guard_down : unit -> bool;
      (** is the tap's owner (the PCE) currently crashed? *)
  guard_watchdog : float;
      (** seconds the server waits on a dead tap before bypassing it *)
  guard_on_bypass : (qname:Name.t -> unit) option;
      (** notification hook fired (at watchdog expiry decision time)
          for each bypassed answer *)
}

val set_tap_guard : t -> server:Topology.Node.id -> tap_guard option -> unit
(** Guard the server's response tap with a liveness check: when
    [guard_down ()] holds at interception time, the answer is {e not}
    handed to the tap — after [guard_watchdog] seconds it is sent to
    the resolver on the ordinary wire path, un-piggybacked (the
    resolution completes; whatever the tap would have added does not
    happen).  Without a guard, tap behaviour is byte-identical to
    before.  [set_response_tap ... None] does not remove the guard. *)

val set_server_outage :
  t -> server:Topology.Node.id -> (unit -> bool) option -> unit
(** Declare a liveness predicate for a DNS node (authoritative server
    or resolver).  While the predicate holds, queries reaching the node
    die: the querier observes a failed resolution after
    [outage_timeout] seconds (counted in [outage_failures]).  Without a
    predicate the node is permanently up and behaviour is untouched. *)

val set_poisoner :
  t -> (qname:Name.t -> Nettypes.Ipv4.addr option) option -> unit
(** Install/remove the off-path answer forger: consulted once per final
    address answer at the instant it completes at the resolver (tapped,
    bypassed or direct); returning [Some forged] races the genuine
    record.  Unless {!set_authenticated} is on, the forged address wins
    — it is cached and answered to the client (counted in
    [poisoned_accepted], emitted as [Poisoned_answer]).  Referrals and
    name errors are never forged.  Without a poisoner, behaviour is
    byte-identical to before. *)

val set_authenticated : t -> bool -> unit
(** DNSSEC-style origin authentication: when on, forged answers are
    detected and discarded (counted in [poisoned_rejected]) and the
    genuine record proceeds.  Off by default. *)

val set_query_observer :
  t ->
  resolver:Topology.Node.id ->
  (client_eid:Nettypes.Ipv4.addr -> qname:Name.t -> unit) option ->
  unit

val resolve :
  t ->
  resolver:Topology.Node.id ->
  client:Topology.Node.id ->
  client_eid:Nettypes.Ipv4.addr ->
  ?flow:int ->
  Name.t ->
  callback:(Nettypes.Ipv4.addr option -> unit) ->
  unit
(** Full client-side resolution: client-to-resolver wire, cache lookup,
    iterative resolution from the deepest cached referral, wire back.
    [callback] fires at the simulated instant the client holds the
    answer ([None] on name error).  [flow] tags the emitted observability
    events with the id of the connection this resolution belongs to, so
    DNS events correlate with the flow's later packets. *)

val flush_caches : t -> unit
(** Empty every resolver cache — cold-start experiments. *)

type counters = {
  mutable client_queries : int;
  mutable iterative_queries : int;
  mutable responses : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable wire_bytes : int;
  mutable tap_bypasses : int;
      (** final answers delivered past a dead tap by a {!tap_guard} *)
  mutable outage_failures : int;
      (** resolutions failed because a crashed node never answered *)
  mutable poisoned_accepted : int;
      (** forged answers cached and delivered (see {!set_poisoner}) *)
  mutable poisoned_rejected : int;
      (** forged answers discarded by authentication *)
}

val counters : t -> counters
(** Live counters (mutated as the simulation runs). *)
