open Nettypes

type direction = Outbound | Inbound

(* Per-border monitoring state.  "Outbound" is the direction leaving the
   domain (router -> provider core), "inbound" the opposite. *)
type uplink_state = {
  border : Topology.Domain.border;
  mutable last_out_bytes : int;
  mutable last_in_bytes : int;
  mutable ewma_out : float;
  mutable ewma_in : float;
  (* Assignments made since the last observation, per direction.  They
     carry a small score penalty so a burst of arrivals between two load
     samples spreads over the uplinks instead of herding onto whichever
     one the stale estimate ranks best. *)
  mutable recent_out : int;
  mutable recent_in : int;
}

type sticky = { border_index : int; remote : Topology.Node.id option }

type t = {
  domain : Topology.Domain.t;
  graph : Topology.Graph.t;
  policy : Policy.t;
  ewma_alpha : float;
  hysteresis : float;
  assign_penalty : float;
  noise : float;
  rng : Netsim.Rng.t option;
  uplinks : uplink_state array;
  mutable last_observed : float option;
  mutable out_assign : sticky Flow.Map.t;
  mutable in_assign : sticky Flow.Map.t;
  mutable rr_out : int;
  mutable rr_in : int;
  mutable moved : int;
}

let create ~domain ~graph ~policy ?(ewma_alpha = 0.3) ?(hysteresis = 0.05)
    ?(assign_penalty = 0.02) ?(noise = 0.0) ?rng () =
  if noise > 0.0 && rng = None then
    invalid_arg "Selector.create: noise requires an rng";
  let uplinks =
    Array.map
      (fun border ->
        { border;
          last_out_bytes =
            Topology.Link.bytes_from border.Topology.Domain.uplink
              border.Topology.Domain.router;
          last_in_bytes =
            Topology.Link.bytes_from border.Topology.Domain.uplink
              (Topology.Link.other_end border.Topology.Domain.uplink
                 border.Topology.Domain.router);
          ewma_out = 0.0; ewma_in = 0.0; recent_out = 0; recent_in = 0 })
      domain.Topology.Domain.borders
  in
  { domain; graph; policy; ewma_alpha; hysteresis; assign_penalty; noise;
    rng; uplinks;
    last_observed = None; out_assign = Flow.Map.empty;
    in_assign = Flow.Map.empty; rr_out = 0; rr_in = 0; moved = 0 }

let domain t = t.domain
let policy t = t.policy
let moved_flows t = t.moved

let noisy t sample =
  if t.noise <= 0.0 then sample
  else
    match t.rng with
    | Some rng ->
        let factor = 1.0 +. (t.noise *. ((2.0 *. Netsim.Rng.float rng) -. 1.0)) in
        Float.max 0.0 (sample *. factor)
    | None -> sample

let observe t ~now =
  match t.last_observed with
  | None -> t.last_observed <- Some now
  | Some before when now > before ->
      let dt = now -. before in
      Array.iter
        (fun u ->
          let link = u.border.Topology.Domain.uplink in
          let router = u.border.Topology.Domain.router in
          let core = Topology.Link.other_end link router in
          let out_bytes = Topology.Link.bytes_from link router in
          let in_bytes = Topology.Link.bytes_from link core in
          let capacity = Topology.Link.capacity_bps link in
          let sample_of delta =
            noisy t (float_of_int delta *. 8.0 /. (capacity *. dt))
          in
          let out_sample = sample_of (out_bytes - u.last_out_bytes) in
          let in_sample = sample_of (in_bytes - u.last_in_bytes) in
          u.ewma_out <-
            (t.ewma_alpha *. out_sample) +. ((1.0 -. t.ewma_alpha) *. u.ewma_out);
          u.ewma_in <-
            (t.ewma_alpha *. in_sample) +. ((1.0 -. t.ewma_alpha) *. u.ewma_in);
          u.last_out_bytes <- out_bytes;
          u.last_in_bytes <- in_bytes;
          u.recent_out <- 0;
          u.recent_in <- 0)
        t.uplinks;
      t.last_observed <- Some now
  | Some _ -> ()

let uplink_index_of t border =
  let rec scan i =
    if i >= Array.length t.uplinks then
      invalid_arg "Selector: border not in this domain"
    else if t.uplinks.(i).border.Topology.Domain.router
            = border.Topology.Domain.router
    then i
    else scan (i + 1)
  in
  scan 0

let load_of t direction i =
  match direction with
  | Outbound -> t.uplinks.(i).ewma_out
  | Inbound -> t.uplinks.(i).ewma_in

let uplink_up t i =
  Topology.Link.is_up t.uplinks.(i).border.Topology.Domain.uplink

let scored_load t direction i =
  if not (uplink_up t i) then infinity
  else
    let recent =
      match direction with
      | Outbound -> t.uplinks.(i).recent_out
      | Inbound -> t.uplinks.(i).recent_in
    in
    load_of t direction i +. (t.assign_penalty *. float_of_int recent)

let note_assignment t direction i =
  (match direction with
  | Outbound -> t.uplinks.(i).recent_out <- t.uplinks.(i).recent_out + 1
  | Inbound -> t.uplinks.(i).recent_in <- t.uplinks.(i).recent_in + 1);
  if Netsim.Telemetry.enabled () then
    Netsim.Telemetry.on_select
      ~provider:t.uplinks.(i).border.Topology.Domain.provider
      ~inbound:(direction = Inbound)

let load_estimate t direction border = load_of t direction (uplink_index_of t border)

(* Latency of candidate [i] toward [remote]: from the border router to
   the remote node, or just to the provider core when the remote end is
   not known yet. *)
let candidate_latency t ~remote i =
  let border = t.uplinks.(i).border in
  match remote with
  | Some node -> (
      (* Link failures can make the remote end unreachable; an infinite
         latency keeps the candidate comparable instead of raising. *)
      match
        Topology.Graph.latency_between t.graph border.Topology.Domain.router
          node
      with
      | latency -> latency
      | exception Not_found -> infinity)
  | None -> Topology.Link.latency border.Topology.Domain.uplink

let candidate_scores t direction ~remote =
  let n = Array.length t.uplinks in
  let latencies = Array.init n (candidate_latency t ~remote) in
  let latency_scale = Array.fold_left Float.max 0.0 latencies in
  Array.init n (fun i ->
      Policy.score t.policy ~latency:latencies.(i)
        ~load:(scored_load t direction i) ~latency_scale)

let argmin scores =
  let best = ref 0 in
  Array.iteri (fun i s -> if s < scores.(!best) then best := i) scores;
  !best

(* Advance [start] to the next index whose uplink is alive (falling back
   to [start] if every uplink is down - the caller's packets will then
   be dropped by the data plane, which is the honest outcome). *)
let next_up t start =
  let n = Array.length t.uplinks in
  let rec probe i tries =
    if tries = n then start
    else if uplink_up t (i mod n) then i mod n
    else probe (i + 1) (tries + 1)
  in
  probe start 0

let pick_index t direction ~flow ~remote =
  match t.policy with
  | Policy.Flow_hash -> next_up t (Flow.hash flow mod Array.length t.uplinks)
  | Policy.Round_robin ->
      let n = Array.length t.uplinks in
      let i =
        match direction with
        | Outbound ->
            t.rr_out <- t.rr_out + 1;
            t.rr_out
        | Inbound ->
            t.rr_in <- t.rr_in + 1;
            t.rr_in
      in
      next_up t (i mod n)
  | Policy.Min_latency | Policy.Min_load | Policy.Weighted _ ->
      argmin (candidate_scores t direction ~remote)

let assignments t = function
  | Outbound -> t.out_assign
  | Inbound -> t.in_assign

let set_assignments t direction m =
  match direction with
  | Outbound -> t.out_assign <- m
  | Inbound -> t.in_assign <- m

let choose t direction ~flow ~remote =
  match Flow.Map.find_opt flow (assignments t direction) with
  | Some sticky when uplink_up t sticky.border_index ->
      t.uplinks.(sticky.border_index).border
  | Some _ | None ->
      (* No live assignment: pick one (a dead sticky assignment is
         overwritten - uplink failure voids stickiness). *)
      let i = pick_index t direction ~flow ~remote in
      note_assignment t direction i;
      set_assignments t direction
        (Flow.Map.add flow { border_index = i; remote } (assignments t direction));
      t.uplinks.(i).border

let choose_egress t ~flow ?remote () = choose t Outbound ~flow ~remote
let choose_ingress t ~flow ?remote () = choose t Inbound ~flow ~remote

let assignment t direction flow =
  Option.map
    (fun s -> t.uplinks.(s.border_index).border)
    (Flow.Map.find_opt flow (assignments t direction))

let rebalance_direction t direction =
  match t.policy with
  | Policy.Flow_hash | Policy.Round_robin -> ()
  | Policy.Min_latency | Policy.Min_load | Policy.Weighted _ ->
      let updated =
        Flow.Map.map
          (fun sticky ->
            (* Scores are recomputed per flow and each move notes an
               assignment, so one pass cannot herd every flow onto the
               momentarily-idle uplink. *)
            let scores = candidate_scores t direction ~remote:sticky.remote in
            let best = argmin scores in
            if
              best <> sticky.border_index
              && scores.(best) +. t.hysteresis < scores.(sticky.border_index)
            then begin
              t.moved <- t.moved + 1;
              note_assignment t direction best;
              { sticky with border_index = best }
            end
            else sticky)
          (assignments t direction)
      in
      set_assignments t direction updated

let rebalance t =
  rebalance_direction t Outbound;
  rebalance_direction t Inbound

let forget_flow t flow =
  t.out_assign <- Flow.Map.remove flow t.out_assign;
  t.in_assign <- Flow.Map.remove flow t.in_assign
