type workload = {
  flows : int;
  rate : float;
  zipf_alpha : float;
  data_packets : int;
  data_bytes : int;
  hotspot : int option;
}

type t = { config : Scenario.config; workload : workload }

let default =
  { config =
      { Scenario.default_config with
        Scenario.topology =
          `Random
            { Topology.Builder.default_params with
              Topology.Builder.domain_count = 16 } };
    workload =
      { flows = 500; rate = 50.0; zipf_alpha = 0.9; data_packets = 8;
        data_bytes = 1200; hotspot = None } }

(* Mutable accumulation state while parsing: topology parameters are
   combined at the end because they arrive as independent keys. *)
type state = {
  mutable seed : int;
  mutable figure1 : bool;
  mutable domains : int;
  mutable providers : int;
  mutable borders : int;
  mutable hosts : int;
  mutable tier1 : int option;
  mutable cp : Scenario.cp_kind;
  mutable mapping_ttl : float;
  mutable dns_ttl : float;
  mutable cache_capacity : int;
  mutable cache_policy : Lispdp.Map_cache.policy;
  mutable cp_faults : Scenario.cp_fault_profile option;
  mutable node_faults : Scenario.node_fault_profile option;
  mutable attack : Scenario.attack_profile option;
  mutable auth : Scenario.auth_profile option;
  (* pce-crash-at windows still waiting for their pce-recover-at, with
     the line the crash appeared on (for error reporting) *)
  mutable open_crashes : (int * float * int) list; (* domain, from, line *)
  mutable workload : workload;
}

let fresh_state () =
  { seed = 1; figure1 = false; domains = 16; providers = 4; borders = 2;
    hosts = 4; tier1 = None; cp = Scenario.Cp_pce Pce_control.default_options;
    mapping_ttl = 60.0; dns_ttl = 3600.0; cache_capacity = 10_000;
    cache_policy = Lispdp.Map_cache.Lru; cp_faults = None; node_faults = None;
    attack = None; auth = None; open_crashes = [];
    workload = default.workload }

let cp_of_string = function
  | "pce" -> Some (Scenario.Cp_pce Pce_control.default_options)
  | "pull-drop" -> Some Scenario.Cp_pull_drop
  | "pull-queue" -> Some (Scenario.Cp_pull_queue 32)
  | "pull-smr" -> Some (Scenario.Cp_pull_smr 32)
  | "pull-detour" -> Some Scenario.Cp_pull_detour
  | "cons" -> Some Scenario.Cp_cons
  | "msmr" -> Some Scenario.Cp_msmr
  | "nerd" -> Some Scenario.Cp_nerd
  | _ -> None

exception Bad_line of int * string

let fail line message = raise (Bad_line (line, message))

let int_field line key value ~min ~max =
  match int_of_string_opt value with
  | Some v when v >= min && v <= max -> v
  | Some _ -> fail line (Printf.sprintf "%s out of [%d, %d]" key min max)
  | None -> fail line (Printf.sprintf "%s expects an integer, got %S" key value)

let float_field line key value ~min =
  match float_of_string_opt value with
  | Some v when v >= min -> v
  | Some _ -> fail line (Printf.sprintf "%s must be at least %g" key min)
  | None -> fail line (Printf.sprintf "%s expects a number, got %S" key value)

let probability_field line key value =
  match float_of_string_opt value with
  | Some v when v >= 0.0 && v <= 1.0 -> v
  | Some _ -> fail line (Printf.sprintf "%s must be in [0, 1]" key)
  | None -> fail line (Printf.sprintf "%s expects a number, got %S" key value)

(* A fault-script value carries several space-separated numbers. *)
let fields_of value =
  String.split_on_char ' ' value |> List.filter (fun s -> s <> "")

(* cp-* keys accumulate into one fault profile, created on first use. *)
let fault_profile state =
  match state.cp_faults with
  | Some p -> p
  | None -> Scenario.default_cp_faults

(* pce-* node keys accumulate the same way. *)
let node_profile state =
  match state.node_faults with
  | Some p -> p
  | None -> Scenario.default_node_faults

(* attack-* and auth-* keys likewise. *)
let attack_profile state =
  match state.attack with
  | Some p -> p
  | None -> Scenario.default_attack

let auth_profile state =
  match state.auth with Some p -> p | None -> Scenario.default_auth

let bool_field line key value =
  match value with
  | "on" | "true" | "1" -> true
  | "off" | "false" | "0" -> false
  | _ -> fail line (Printf.sprintf "%s expects on/off, got %S" key value)

let apply state line key value =
  match key with
  | "seed" -> state.seed <- int_field line key value ~min:0 ~max:max_int
  | "topology" -> (
      match value with
      | "figure1" -> state.figure1 <- true
      | "random" -> state.figure1 <- false
      | other -> fail line (Printf.sprintf "unknown topology %S" other))
  | "domains" -> state.domains <- int_field line key value ~min:2 ~max:10_000
  | "providers" -> state.providers <- int_field line key value ~min:1 ~max:100
  | "borders" -> state.borders <- int_field line key value ~min:1 ~max:100
  | "hosts" -> state.hosts <- int_field line key value ~min:1 ~max:254
  | "tier1" -> state.tier1 <- Some (int_field line key value ~min:2 ~max:100)
  | "cp" -> (
      match cp_of_string value with
      | Some cp -> state.cp <- cp
      | None -> fail line (Printf.sprintf "unknown control plane %S" value))
  | "mapping-ttl" -> state.mapping_ttl <- float_field line key value ~min:0.001
  | "dns-ttl" -> state.dns_ttl <- float_field line key value ~min:0.001
  | "cache-capacity" ->
      state.cache_capacity <- int_field line key value ~min:1 ~max:1_000_000
  | "cache-policy" -> (
      match Lispdp.Map_cache.policy_of_string value with
      | Some p -> state.cache_policy <- p
      | None ->
          fail line
            (Printf.sprintf "unknown cache policy %S (lru, lfu, ttl-hybrid)"
               value))
  | "cp-loss" ->
      state.cp_faults <-
        Some
          { (fault_profile state) with
            Scenario.cp_loss = probability_field line key value }
  | "cp-jitter" ->
      state.cp_faults <-
        Some
          { (fault_profile state) with
            Scenario.cp_jitter = float_field line key value ~min:0.0 }
  | "cp-rto" ->
      state.cp_faults <-
        Some
          { (fault_profile state) with
            Scenario.cp_rto = float_field line key value ~min:0.001 }
  | "cp-backoff" ->
      state.cp_faults <-
        Some
          { (fault_profile state) with
            Scenario.cp_backoff = float_field line key value ~min:1.0 }
  | "cp-retries" ->
      state.cp_faults <-
        Some
          { (fault_profile state) with
            Scenario.cp_retries = int_field line key value ~min:0 ~max:100 }
  | "cp-flap" -> (
      (* cp-flap <domain> <at> <duration> *)
      match fields_of value with
      | [ d; at; duration ] ->
          let script =
            Scenario.Flap
              { at = float_field line key at ~min:0.0;
                duration = float_field line key duration ~min:0.0;
                domain = int_field line key d ~min:0 ~max:9_999 }
          in
          let p = fault_profile state in
          state.cp_faults <-
            Some { p with Scenario.cp_scripts = p.Scenario.cp_scripts @ [ script ] }
      | _ -> fail line "cp-flap expects '<domain> <at> <duration>'")
  | "cp-partition" -> (
      (* cp-partition <domain-a> <domain-b> <from> <until> *)
      match fields_of value with
      | [ a; b; from_; until ] ->
          let from_ = float_field line key from_ ~min:0.0 in
          let until = float_field line key until ~min:0.0 in
          if until < from_ then fail line "cp-partition window ends before it starts";
          let script =
            Scenario.Partition
              { from_; until; a = int_field line key a ~min:0 ~max:9_999;
                b = int_field line key b ~min:0 ~max:9_999 }
          in
          let p = fault_profile state in
          state.cp_faults <-
            Some { p with Scenario.cp_scripts = p.Scenario.cp_scripts @ [ script ] }
      | _ -> fail line "cp-partition expects '<domain-a> <domain-b> <from> <until>'")
  | "pce-crash-at" -> (
      (* pce-crash-at <domain> <time>: opens a crash window, closed by a
         later pce-recover-at for the same domain (or left open, i.e.
         the PCE never restarts). *)
      match fields_of value with
      | [ d; at ] ->
          let domain = int_field line key d ~min:0 ~max:9_999 in
          let at = float_field line key at ~min:0.0 in
          if List.exists (fun (od, _, _) -> od = domain) state.open_crashes
          then
            fail line
              (Printf.sprintf
                 "pce-crash-at: domain %d already has an open crash window"
                 domain);
          state.open_crashes <- (domain, at, line) :: state.open_crashes
      | _ -> fail line "pce-crash-at expects '<domain> <time>'")
  | "pce-recover-at" -> (
      (* pce-recover-at <domain> <time>: closes the open window. *)
      match fields_of value with
      | [ d; at ] ->
          let domain = int_field line key d ~min:0 ~max:9_999 in
          let until = float_field line key at ~min:0.0 in
          let opened, rest =
            List.partition (fun (od, _, _) -> od = domain) state.open_crashes
          in
          let from_ =
            match opened with
            | [ (_, from_, _) ] -> from_
            | _ ->
                fail line
                  (Printf.sprintf
                     "pce-recover-at: no pce-crash-at for domain %d" domain)
          in
          if until <= from_ then
            fail line
              (Printf.sprintf
                 "pce-recover-at: inverted window for domain %d \
                  (recovers at %g, crashed at %g)"
                 domain until from_);
          state.open_crashes <- rest;
          let p = node_profile state in
          state.node_faults <-
            Some
              { p with
                Scenario.node_windows =
                  p.Scenario.node_windows
                  @ [ (Netsim.Lifecycle.Pce domain, from_, until) ] }
      | _ -> fail line "pce-recover-at expects '<domain> <time>'")
  | "pce-watchdog" ->
      state.node_faults <-
        Some
          { (node_profile state) with
            Scenario.pce_watchdog = float_field line key value ~min:0.001 }
  | "attack-spoof" ->
      state.attack <-
        Some
          { (attack_profile state) with
            Scenario.atk_spoof = probability_field line key value }
  | "attack-spoof-head-start" ->
      state.attack <-
        Some
          { (attack_profile state) with
            Scenario.atk_spoof_head_start = float_field line key value ~min:0.0 }
  | "attack-replay" ->
      state.attack <-
        Some
          { (attack_profile state) with
            Scenario.atk_replay = probability_field line key value }
  | "attack-dns-poison" ->
      state.attack <-
        Some
          { (attack_profile state) with
            Scenario.atk_dns_poison = probability_field line key value }
  | "attack-flood" -> (
      (* attack-flood <rate> <eids> <from> <until> <victim-domain> *)
      match fields_of value with
      | [ rate; eids; from_; until; victim ] ->
          let from_ = float_field line key from_ ~min:0.0 in
          let until = float_field line key until ~min:0.0 in
          if until < from_ then
            fail line "attack-flood window ends before it starts";
          state.attack <-
            Some
              { (attack_profile state) with
                Scenario.atk_flood_rate = float_field line key rate ~min:0.0;
                atk_flood_eids = int_field line key eids ~min:1 ~max:1_000_000;
                atk_flood_from = from_; atk_flood_until = until;
                atk_flood_victim = int_field line key victim ~min:0 ~max:9_999 }
      | _ ->
          fail line
            "attack-flood expects '<rate> <eids> <from> <until> <victim-domain>'")
  | "auth-nonce" ->
      state.auth <-
        Some
          { (auth_profile state) with
            Scenario.auth_nonce = bool_field line key value }
  | "auth-sig" ->
      state.auth <-
        Some
          { (auth_profile state) with
            Scenario.auth_sig = bool_field line key value }
  | "auth-sig-cpu" ->
      state.auth <-
        Some
          { (auth_profile state) with
            Scenario.auth_sig_cpu = float_field line key value ~min:0.0 }
  | "auth-dnssec" ->
      state.auth <-
        Some
          { (auth_profile state) with
            Scenario.auth_dnssec = bool_field line key value }
  | "glean-cap" ->
      state.auth <-
        Some
          { (auth_profile state) with
            Scenario.auth_glean_cap =
              Some (int_field line key value ~min:1 ~max:1_000_000) }
  | "flows" ->
      state.workload <-
        { state.workload with flows = int_field line key value ~min:1 ~max:1_000_000 }
  | "rate" ->
      state.workload <- { state.workload with rate = float_field line key value ~min:0.001 }
  | "zipf" ->
      state.workload <-
        { state.workload with zipf_alpha = float_field line key value ~min:0.0 }
  | "data-packets" ->
      state.workload <-
        { state.workload with
          data_packets = int_field line key value ~min:0 ~max:1_000_000 }
  | "data-bytes" ->
      state.workload <-
        { state.workload with data_bytes = int_field line key value ~min:0 ~max:65_000 }
  | "hotspot" ->
      state.workload <-
        { state.workload with
          hotspot = Some (int_field line key value ~min:0 ~max:9_999) }
  | other -> fail line (Printf.sprintf "unknown key %S" other)

let finish state =
  let topology =
    if state.figure1 then `Figure1
    else
      `Random
        { Topology.Builder.default_params with
          Topology.Builder.domain_count = state.domains;
          provider_count = state.providers; borders_per_domain = state.borders;
          hosts_per_domain = state.hosts;
          core_shape =
            (match state.tier1 with
            | Some n -> Topology.Builder.Two_tier n
            | None -> Topology.Builder.Full_mesh) }
  in
  (match state.workload.hotspot with
  | Some d when (not state.figure1) && d >= state.domains ->
      fail 0 (Printf.sprintf "hotspot domain %d does not exist" d)
  | Some _ | None -> ());
  (* Unclosed crash windows mean the PCE never restarts. *)
  let node_faults =
    match (state.node_faults, state.open_crashes) with
    | profile, [] -> profile
    | profile, open_ ->
        let p =
          Option.value profile ~default:Scenario.default_node_faults
        in
        let extra =
          List.rev_map
            (fun (d, from_, _) -> (Netsim.Lifecycle.Pce d, from_, infinity))
            open_
        in
        Some
          { p with Scenario.node_windows = p.Scenario.node_windows @ extra }
  in
  (match node_faults with
  | Some p ->
      let domain_count = if state.figure1 then 2 else state.domains in
      List.iter
        (fun (role, _, _) ->
          match role with
          | Netsim.Lifecycle.Pce d when d >= domain_count ->
              fail 0
                (Printf.sprintf "pce-crash-at: domain %d does not exist" d)
          | _ -> ())
        p.Scenario.node_windows
  | None -> ());
  (match state.attack with
  | Some a ->
      let domain_count = if state.figure1 then 2 else state.domains in
      if a.Scenario.atk_flood_rate > 0.0
         && a.Scenario.atk_flood_victim >= domain_count
      then
        fail 0
          (Printf.sprintf "attack-flood: victim domain %d does not exist"
             a.Scenario.atk_flood_victim)
  | None -> ());
  { config =
      { Scenario.default_config with
        Scenario.seed = state.seed; topology; cp = state.cp;
        mapping_ttl = state.mapping_ttl; dns_record_ttl = state.dns_ttl;
        cache_capacity = state.cache_capacity;
        cache_policy = state.cache_policy; cp_faults = state.cp_faults;
        node_faults; attack = state.attack; auth = state.auth };
    workload = state.workload }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse contents =
  let state = fresh_state () in
  match
    String.split_on_char '\n' contents
    |> List.iteri (fun index raw ->
           let line = String.trim (strip_comment raw) in
           if line <> "" then begin
             match String.index_opt line ' ' with
             | None -> fail (index + 1) (Printf.sprintf "expected 'key value', got %S" line)
             | Some i ->
                 let key = String.sub line 0 i in
                 let value =
                   String.trim (String.sub line i (String.length line - i))
                 in
                 if value = "" then fail (index + 1) ("missing value for " ^ key);
                 apply state (index + 1) key value
           end)
  with
  | () -> ( try Ok (finish state) with Bad_line (_, m) -> Error m)
  | exception Bad_line (line, message) ->
      Error (Printf.sprintf "line %d: %s" line message)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error m -> Error m
