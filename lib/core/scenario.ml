open Nettypes

type cp_kind =
  | Cp_pull_drop
  | Cp_pull_queue of int
  | Cp_pull_smr of int
  | Cp_pull_detour
  | Cp_nerd
  | Cp_cons
  | Cp_msmr
  | Cp_pce of Pce_control.options

let cp_label = function
  | Cp_pull_drop -> "pull-drop"
  | Cp_pull_queue n -> Printf.sprintf "pull-queue(%d)" n
  | Cp_pull_smr n -> Printf.sprintf "pull-smr(%d)" n
  | Cp_pull_detour -> "pull-detour"
  | Cp_nerd -> "nerd-push"
  | Cp_cons -> "cons"
  | Cp_msmr -> "msmr"
  | Cp_pce _ -> "pce"

type fault_script =
  | Flap of { at : float; duration : float; domain : int }
  | Partition of { from_ : float; until : float; a : int; b : int }

type cp_fault_profile = {
  cp_loss : float;
  cp_jitter : float;
  cp_rto : float;
  cp_backoff : float;
  cp_retries : int;
  cp_scripts : fault_script list;
}

let default_cp_faults =
  { cp_loss = 0.0; cp_jitter = 0.0; cp_rto = 0.5; cp_backoff = 2.0;
    cp_retries = 3; cp_scripts = [] }

type node_fault_profile = {
  node_windows : (Netsim.Lifecycle.role * float * float) list;
  pce_watchdog : float;
  fallback_queue : int;
}

let default_node_faults =
  { node_windows = []; pce_watchdog = 0.25; fallback_queue = 32 }

type attack_profile = {
  atk_spoof : float;
  atk_spoof_head_start : float;
  atk_replay : float;
  atk_dns_poison : float;
  atk_flood_rate : float;
  atk_flood_eids : int;
  atk_flood_from : float;
  atk_flood_until : float;
  atk_flood_victim : int;
}

let default_attack =
  { atk_spoof = 0.0; atk_spoof_head_start = 0.002; atk_replay = 0.0;
    atk_dns_poison = 0.0; atk_flood_rate = 0.0; atk_flood_eids = 1024;
    atk_flood_from = 0.0; atk_flood_until = infinity; atk_flood_victim = 0 }

(* Forged source EID of the [idx]-th scan identity: unallocated space
   (no generated topology owns 200.0.0.0/8), so the gleaned host route
   is pure pollution.  Exposed so experiments can probe end-of-run
   caches for attacker-owned entries. *)
let flood_eid idx = Ipv4.addr_of_int (0xC800_0000 lor idx)

type auth_profile = {
  auth_nonce : bool;
  auth_sig : bool;
  auth_sig_cpu : float;
  auth_dnssec : bool;
  auth_glean_cap : int option;
}

let default_auth =
  { auth_nonce = false; auth_sig = false;
    auth_sig_cpu = Wire.Auth.default_sig_cpu_cost; auth_dnssec = false;
    auth_glean_cap = None }

type config = {
  seed : int;
  topology :
    [ `Figure1 | `Figure1_scaled of float | `Random of Topology.Builder.params ];
  cp : cp_kind;
  mapping_ttl : float;
  dns_record_ttl : float;
  cache_capacity : int;
  cache_policy : Lispdp.Map_cache.policy;
  alt_fanout : int;
  alt_hop_latency : float;
  initial_rto : float;
  data_gap : float;
  nerd_propagation : float;  (** NERD database-update propagation delay *)
  cp_faults : cp_fault_profile option;
      (** control-plane loss/retry model; [None] = lossless legacy *)
  node_faults : node_fault_profile option;
      (** node crash/restart schedule; [None] = every node always up *)
  telemetry : Netsim.Telemetry.config option;
      (** enable the telemetry plane with this window/sketch config;
          [None] = disabled (zero hot-path cost) *)
  attack : attack_profile option;
      (** adversarial injection; [None] = no adversary, byte-identical
          to pre-adversary behaviour *)
  auth : auth_profile option;
      (** countermeasures; [None] = none (legacy behaviour) *)
  run_label : string option;
      (** overrides the exporter run label (default: [cp_label]) so one
          sweep can report several differently-armed cells of the same
          control plane *)
}

let default_config =
  { seed = 1; topology = `Figure1; cp = Cp_pce Pce_control.default_options;
    mapping_ttl = 60.0; dns_record_ttl = 3600.0; cache_capacity = 10_000;
    cache_policy = Lispdp.Map_cache.Lru; alt_fanout = 2; alt_hop_latency = 0.020; initial_rto = 1.0;
    data_gap = 0.002; nerd_propagation = 30.0; cp_faults = None;
    node_faults = None; telemetry = None; attack = None; auth = None;
    run_label = None }

type connection = {
  flow : Flow.t;
  opened_at : float;
  mutable dns_time : float option;
  mutable resolution_failed : bool;
  mutable tcp : Workload.Tcp.conn option;
}

let total_setup_time connection =
  match (connection.dns_time, connection.tcp) with
  | Some dns, Some tcp_conn -> (
      match Workload.Tcp.handshake_time tcp_conn with
      | Some handshake -> Some (dns +. handshake)
      | None -> None)
  | _, _ -> None

type cp_instance =
  | Pull_instance of Mapsys.Pull.t
  | Nerd_instance of Mapsys.Nerd.t
  | Cons_instance of Mapsys.Cons.t
  | Msmr_instance of Mapsys.Msmr.t
  | Pce_instance of Pce_control.t

type t = {
  config : config;
  engine : Netsim.Engine.t;
  internet : Topology.Builder.t;
  dns : Dnssim.System.t;
  registry : Mapsys.Registry.t;
  dataplane : Lispdp.Dataplane.t;
  tcp : Workload.Tcp.t;
  cp : cp_instance;
  rng : Netsim.Rng.t;
  faults : Netsim.Faults.t option;
  lifecycle : Netsim.Lifecycle.t option;
  adversary : Netsim.Adversary.t option;
  fallback_pull : Mapsys.Pull.t option;
  trace : Netsim.Trace.t;
  obs : Obs.Hub.t;
  obs_registry : Obs.Registry.t;
  dns_time_hist : Obs.Registry.histogram;
  setup_time_hist : Obs.Registry.histogram;
  mutable connections_rev : connection list;
}

let engine t = t.engine
let internet t = t.internet
let dns t = t.dns
let dataplane t = t.dataplane
let tcp t = t.tcp
let registry t = t.registry
let rng t = t.rng
let faults t = t.faults
let lifecycle t = t.lifecycle
let adversary t = t.adversary
let fallback_pull t = t.fallback_pull
let config t = t.config
let trace t = t.trace
let obs t = t.obs
let obs_registry t = t.obs_registry
let connections t = List.rev t.connections_rev

let cp_stats t =
  match t.cp with
  | Pull_instance p -> Mapsys.Pull.stats p
  | Nerd_instance n -> Mapsys.Nerd.stats n
  | Cons_instance c -> Mapsys.Cons.stats c
  | Msmr_instance m -> Mapsys.Msmr.stats m
  | Pce_instance p -> Pce_control.stats p

let pce t =
  match t.cp with
  | Pce_instance p -> Some p
  | Pull_instance _ | Nerd_instance _ | Cons_instance _ | Msmr_instance _ ->
      None

(* Gauge row producers shared between the registry registration below
   and report code that samples directly: one computation, whichever
   surface ([obs] summary, [telemetry] subcommand, exporters) reads
   it. *)
let cache_gauge_rows dataplane =
  let fi = float_of_int in
  let s = Lispdp.Dataplane.cache_stats_totals dataplane in
  let lookups = s.Lispdp.Map_cache.hits + s.Lispdp.Map_cache.misses in
  [ ("hits", fi s.Lispdp.Map_cache.hits);
    ("misses", fi s.Lispdp.Map_cache.misses);
    ("insertions", fi s.Lispdp.Map_cache.insertions);
    ("evictions", fi s.Lispdp.Map_cache.evictions);
    ("expirations", fi s.Lispdp.Map_cache.expirations);
    ("invalidations", fi s.Lispdp.Map_cache.invalidations);
    ("entries", fi (Lispdp.Dataplane.cache_entries_total dataplane));
    ( "hit_ratio",
      if lookups = 0 then 0.0
      else fi s.Lispdp.Map_cache.hits /. fi lookups ) ]

let flow_gauge_rows dataplane =
  [ ("entries", float_of_int (Lispdp.Dataplane.flow_entries_total dataplane)) ]

(* Topology construction, zone setup and registration are one-off but
   not free at scale; the self-profile separates them from the run. *)
let ph_build = Netsim.Prof.phase "build"

let build config =
  Netsim.Prof.with_phase ph_build @@ fun () ->
  let rng = Netsim.Rng.create config.seed in
  let engine = Netsim.Engine.create () in
  let internet =
    match config.topology with
    | `Figure1 -> Topology.Builder.figure1 ()
    | `Figure1_scaled scale -> Topology.Builder.figure1 ~scale ()
    | `Random params -> Topology.Builder.generate (Netsim.Rng.split rng) params
  in
  let trace = Netsim.Trace.create () in
  (* Tracing costs formatting time; experiments enable it on demand. *)
  Netsim.Trace.set_enabled trace false;
  (* The telemetry plane anchors its window origin at simulated t=0 and
     learns the provider attachment of every access link up front, so
     per-provider aggregation is a flat array index on the hot path. *)
  (match config.telemetry with
  | None ->
      (* The plane is process-global: a previous telemetry-enabled
         scenario in this process must not bleed into an untelemetered
         one. *)
      Netsim.Telemetry.stop ()
  | Some tconfig ->
      Netsim.Telemetry.start ~config:tconfig ~now:0.0 ();
      Array.iter
        (fun provider ->
          Netsim.Telemetry.set_node_label provider.Topology.Builder.core
            provider.Topology.Builder.provider_name)
        internet.Topology.Builder.providers;
      Array.iter
        (fun domain ->
          let dname = domain.Topology.Domain.name in
          Netsim.Telemetry.set_node_label domain.Topology.Domain.hub
            (dname ^ ".hub");
          Netsim.Telemetry.set_node_label domain.Topology.Domain.dns
            (dname ^ ".dns");
          Array.iteri
            (fun i host ->
              Netsim.Telemetry.set_node_label host
                (Printf.sprintf "h%d.%s" i dname))
            domain.Topology.Domain.hosts;
          Array.iteri
            (fun i b ->
              Netsim.Telemetry.set_node_label b.Topology.Domain.router
                (Printf.sprintf "%s.br%d" dname i);
              let uplink = b.Topology.Domain.uplink in
              Netsim.Telemetry.register_uplink
                ~link:(Topology.Link.id uplink)
                ~provider:b.Topology.Domain.provider
                ~egress_dir:
                  (if Topology.Link.a uplink = b.Topology.Domain.router then 0
                   else 1))
            domain.Topology.Domain.borders)
        internet.Topology.Builder.domains);
  (* The hub starts disabled: instrumented call sites pay one boolean
     test until an exporter (or a test) enables it. *)
  let obs = Obs.Hub.create () in
  let dns =
    Dnssim.System.create ~engine ~internet ~record_ttl:config.dns_record_ttl
      ~trace ~obs ()
  in
  let registry = Mapsys.Registry.create ~internet ~ttl:config.mapping_ttl in
  let alt =
    Mapsys.Alt.create
      ~domains:(Array.length internet.Topology.Builder.domains)
      ~fanout:config.alt_fanout ~hop_latency:config.alt_hop_latency ()
  in
  let flow_ttl =
    match config.cp with
    | Cp_pce options -> options.Pce_control.flow_ttl
    | Cp_pull_drop | Cp_pull_queue _ | Cp_pull_smr _ | Cp_pull_detour
    | Cp_nerd | Cp_cons | Cp_msmr ->
        300.0
  in
  (* The adversary's stream, like the fault model's, is derived from the
     seed independently of the workload streams; without an attack
     profile no adversary exists and no hook takes any draw. *)
  let adversary =
    match config.attack with
    | None -> None
    | Some a ->
        Some
          (Netsim.Adversary.create
             ~rng:(Netsim.Rng.create (config.seed lxor 0xAD5A))
             ~spoof_rate:a.atk_spoof ~spoof_head_start:a.atk_spoof_head_start
             ~replay_rate:a.atk_replay ~dns_poison_rate:a.atk_dns_poison
             ~flood_rate:a.atk_flood_rate ~flood_eids:a.atk_flood_eids
             ~flood_from:a.atk_flood_from ~flood_until:a.atk_flood_until ())
  in
  (* Nonce stream: always created (nonce values feed no observable
     quantity except the adversary's guess comparison), dedicated so
     countermeasure toggles never perturb workload draws. *)
  let nonce_rng = Netsim.Rng.create (config.seed lxor 0x4E43) in
  let pull_auth =
    match config.auth with
    | None -> None
    | Some p ->
        Some
          { Mapsys.Pull.nonce_check = p.auth_nonce; signatures = p.auth_sig;
            sig_cpu_cost = p.auth_sig_cpu }
  in
  let glean_cap =
    match config.auth with Some p -> p.auth_glean_cap | None -> None
  in
  let make_dataplane control_plane =
    Lispdp.Dataplane.create ~engine ~internet ~control_plane
      ~cache_capacity:config.cache_capacity ~cache_policy:config.cache_policy
      ?glean_cap ~flow_ttl ~trace ~obs ()
  in
  (* Split unconditionally so every control plane leaves the scenario
     RNG in the same state — workloads drawn from later splits must be
     identical across control planes. *)
  let cp_rng = Netsim.Rng.split rng in
  (* The fault model's stream is derived from the seed, NOT split from
     the scenario RNG: a profile must never shift the workload streams,
     so loss-free and lossy runs stay comparable flow for flow. *)
  let faults, retry =
    match config.cp_faults with
    | None -> (None, None)
    | Some profile ->
        let f =
          Netsim.Faults.create
            ~rng:(Netsim.Rng.create (config.seed lxor 0xFA17))
            ~loss:profile.cp_loss ~jitter:profile.cp_jitter ()
        in
        List.iter
          (function
            | Flap { at; duration; domain } ->
                Netsim.Faults.flap f ~at ~duration ~domain
            | Partition { from_; until; a; b } ->
                Netsim.Faults.partition f ~from_ ~until ~a ~b)
          profile.cp_scripts;
        let r =
          Netsim.Faults.retry ~rto:profile.cp_rto ~backoff:profile.cp_backoff
            ~budget:profile.cp_retries ()
        in
        (Some f, Some r)
  in
  (* The node-lifecycle schedule, like the loss model, exists only
     under its opt-in profile: without it no lifecycle value is ever
     created and every hook keeps its pre-profile behaviour. *)
  let lifecycle =
    match config.node_faults with
    | None -> None
    | Some profile ->
        let lc = Netsim.Lifecycle.create () in
        List.iter
          (fun (role, from_, until) ->
            Netsim.Lifecycle.add_window lc ~role ~from_ ~until)
          profile.node_windows;
        Some lc
  in
  let fallback_pull = ref None in
  let cp, dataplane =
    match config.cp with
    | Cp_pull_drop | Cp_pull_queue _ | Cp_pull_smr _ | Cp_pull_detour ->
        let mode, smr =
          match config.cp with
          | Cp_pull_drop -> (Mapsys.Pull.Drop_while_pending, false)
          | Cp_pull_queue n -> (Mapsys.Pull.Queue_while_pending n, false)
          | Cp_pull_smr n -> (Mapsys.Pull.Queue_while_pending n, true)
          | Cp_pull_detour -> (Mapsys.Pull.Detour_via_cp, false)
          | Cp_nerd | Cp_cons | Cp_msmr | Cp_pce _ -> assert false
        in
        let name =
          match config.cp with Cp_pull_smr _ -> Some "pull-smr" | _ -> None
        in
        let pull =
          Mapsys.Pull.create ~engine ~internet ~registry ~alt ~mode ?name ~smr
            ?faults ?retry ?lifecycle ~nonce_rng ?adversary ?auth:pull_auth
            ?glean_cap ~obs ()
        in
        let dp = make_dataplane (Mapsys.Pull.control_plane pull) in
        Mapsys.Pull.attach pull dp;
        (Pull_instance pull, dp)
    | Cp_nerd ->
        let nerd =
          Mapsys.Nerd.create ~engine ~internet ~registry
            ~propagation_delay:config.nerd_propagation ?faults ~obs ()
        in
        let dp = make_dataplane (Mapsys.Nerd.control_plane nerd) in
        Mapsys.Nerd.attach nerd dp;
        (Nerd_instance nerd, dp)
    | Cp_cons ->
        let cons =
          Mapsys.Cons.create ~engine ~internet ~registry ~alt ?faults ?retry
            ~nonce_rng ?adversary ?auth:pull_auth ?glean_cap ~obs ()
        in
        let dp = make_dataplane (Mapsys.Cons.control_plane cons) in
        Mapsys.Cons.attach cons dp;
        (Cons_instance cons, dp)
    | Cp_msmr ->
        let msmr =
          Mapsys.Msmr.create ~engine ~internet ~registry ~alt ?faults ?retry
            ~nonce_rng ?adversary ?auth:pull_auth ?glean_cap ~obs ()
        in
        let dp = make_dataplane (Mapsys.Msmr.control_plane msmr) in
        Mapsys.Msmr.attach msmr dp;
        (Msmr_instance msmr, dp)
    | Cp_pce options ->
        (* Under the node-fault profile the PCE gets a pull fallback:
           cache misses the crashed control plane can no longer prevent
           resolve through the ordinary mapping system instead of
           dropping. *)
        let fallback, watchdog =
          match (lifecycle, config.node_faults) with
          | Some lc, Some profile ->
              ( Some
                  (Mapsys.Pull.create ~engine ~internet ~registry ~alt
                     ~mode:
                       (Mapsys.Pull.Queue_while_pending profile.fallback_queue)
                     ~name:"pce-pull-fallback" ?faults ?retry ~lifecycle:lc
                     ~nonce_rng ?adversary ?auth:pull_auth ?glean_cap ~obs ()),
                profile.pce_watchdog )
          | _ -> (None, 0.25)
        in
        fallback_pull := fallback;
        let pce_control =
          Pce_control.create ~engine ~internet ~dns ~options ~rng:cp_rng
            ?faults ?push_retry:retry ?lifecycle ?fallback ~watchdog ~registry
            ~trace ~obs ()
        in
        let dp = make_dataplane (Pce_control.control_plane pce_control) in
        Pce_control.attach pce_control dp;
        (match fallback with
        | Some pull -> Mapsys.Pull.attach pull dp
        | None -> ());
        Pce_control.schedule_lifecycle pce_control;
        (Pce_instance pce_control, dp)
  in
  let tcp =
    Workload.Tcp.create ~engine ~dataplane ~initial_rto:config.initial_rto
      ~data_gap:config.data_gap ~obs ()
  in
  (* DNSSEC-style validation is a resolver property, independent of
     whether an attacker is present. *)
  (match config.auth with
  | Some p when p.auth_dnssec -> Dnssim.System.set_authenticated dns true
  | Some _ | None -> ());
  (match (adversary, config.attack) with
  | Some adv, Some a ->
      (* Off-path DNS poisoning: each final answer is raced with a
         forged class-E address per the adversary's rate. *)
      if a.atk_dns_poison > 0.0 then
        Dnssim.System.set_poisoner dns
          (Some
             (fun ~qname:_ ->
               if Netsim.Adversary.poisons_answer adv then
                 Some (Ipv4.addr_of_int 0xF000_0024)
               else None));
      (* EID-scan flood: spoofed packets arriving at the victim domain's
         ETRs from forged source EIDs, driving gleaned-entry pollution
         through the control plane's [cp_note_etr_packet] hook. *)
      if Netsim.Adversary.flood_configured adv then begin
        let victim =
          if
            a.atk_flood_victim < 0
            || a.atk_flood_victim
               >= Array.length internet.Topology.Builder.domains
          then invalid_arg "Scenario.build: flood victim domain out of range"
          else internet.Topology.Builder.domains.(a.atk_flood_victim)
        in
        let routers = Lispdp.Dataplane.routers_of_domain dataplane victim in
        let victim_eid = Topology.Domain.host_eid victim 0 in
        let cp_hook = Lispdp.Dataplane.control_plane dataplane in
        let rec pump () =
          let now = Netsim.Engine.now engine in
          if Netsim.Adversary.flood_active adv ~now then begin
            let idx = Netsim.Adversary.flood_eid_index adv in
            (* Forged source EID ({!flood_eid}) with a matching forged
               outer-source RLOC: the gleaned host route is pure
               pollution. *)
            let src = flood_eid idx in
            let flow = Flow.create ~src ~dst:victim_eid () in
            let packet =
              Packet.make ~flow ~segment:Packet.Ack ~sent_at:now
            in
            let router = routers.(idx mod Array.length routers) in
            cp_hook.Lispdp.Dataplane.cp_note_etr_packet router
              ~outer_src:(Some (Ipv4.addr_of_int (0xF100_0000 lor idx)))
              packet
          end;
          if now < a.atk_flood_until then
            ignore
              (Netsim.Engine.schedule engine
                 ~delay:(Netsim.Adversary.flood_interarrival adv) pump)
        in
        ignore (Netsim.Engine.schedule_at engine ~time:a.atk_flood_from pump)
      end
  | _ -> ());
  (match lifecycle with
  | None -> ()
  | Some lc ->
      (* DNS-node outages: queries to a crashed server/resolver die and
         fail at the querier after the outage timeout. *)
      List.iter
        (fun (role, _, _) ->
          match role with
          | Netsim.Lifecycle.Dns_server d ->
              let node =
                internet.Topology.Builder.domains.(d).Topology.Domain.dns
              in
              Dnssim.System.set_server_outage dns ~server:node
                (Some
                   (fun () ->
                     Netsim.Lifecycle.is_down lc ~role
                       ~now:(Netsim.Engine.now engine)))
          | Netsim.Lifecycle.Pce _ | Netsim.Lifecycle.Map_server -> ())
        (Netsim.Lifecycle.windows lc);
      (* Crash/restart markers for non-PCE roles; PCE transitions (and
         their state-loss/recovery side effects) are scheduled by
         [Pce_control.schedule_lifecycle]. *)
      List.iter
        (fun (role, from_, until) ->
          match role with
          | Netsim.Lifecycle.Pce _ -> ()
          | Netsim.Lifecycle.Dns_server _ | Netsim.Lifecycle.Map_server ->
              let actor =
                match role with
                | Netsim.Lifecycle.Dns_server d ->
                    internet.Topology.Builder.domains.(d).Topology.Domain.name
                    ^ "-dns"
                | Netsim.Lifecycle.Map_server | Netsim.Lifecycle.Pce _ ->
                    "map-server"
              in
              let label = Netsim.Lifecycle.role_label role in
              let emit kind =
                if Obs.Hub.enabled obs then
                  Obs.Hub.emit obs ~time:(Netsim.Engine.now engine) ~actor kind
              in
              ignore
                (Netsim.Engine.schedule_at engine ~time:from_ (fun () ->
                     emit (Obs.Event.Node_crash { role = label })));
              if until < infinity then
                ignore
                  (Netsim.Engine.schedule_at engine ~time:until (fun () ->
                       emit (Obs.Event.Node_restart { role = label }))))
        (Netsim.Lifecycle.windows lc));
  (* Every layer's live counters, exposed as read-on-snapshot gauges so
     there is no double bookkeeping anywhere. *)
  let obs_registry = Obs.Registry.create () in
  let gauge name f = Obs.Registry.register_gauge obs_registry name f in
  let fi = float_of_int in
  gauge "engine.pending" (fun () -> fi (Netsim.Engine.pending engine));
  gauge "engine.pending_hwm" (fun () -> fi (Netsim.Engine.pending_hwm engine));
  gauge "engine.events_processed" (fun () ->
      fi (Netsim.Engine.events_processed engine));
  gauge "engine.compactions" (fun () ->
      fi (Netsim.Engine.compactions engine));
  (* Allocator pressure, read straight off Gc.quick_stat: a sampled
     timeline shows collections and heap high-water alongside the
     simulation counters. *)
  Obs.Prof.register_gc_gauges obs_registry;
  (* Wall-clock throughput between consecutive samples.  Only metered
     when the self-profiler is on: real-time rates would make metrics
     exports nondeterministic for ordinary runs. *)
  if Netsim.Prof.enabled () then begin
    let last_events = ref 0 and last_t = ref (Netsim.Prof.now_s ()) in
    gauge "engine.events_per_sec" (fun () ->
        let e = Netsim.Engine.events_processed engine in
        let t = Netsim.Prof.now_s () in
        let rate =
          if t > !last_t then fi (e - !last_events) /. (t -. !last_t) else 0.0
        in
        last_events := e;
        last_t := t;
        rate)
  end;
  let dpc = Lispdp.Dataplane.counters dataplane in
  gauge "dp.sent" (fun () -> fi dpc.Lispdp.Dataplane.sent);
  gauge "dp.delivered" (fun () -> fi dpc.Lispdp.Dataplane.delivered);
  gauge "dp.dropped" (fun () -> fi dpc.Lispdp.Dataplane.dropped);
  gauge "dp.held" (fun () -> fi dpc.Lispdp.Dataplane.held);
  gauge "dp.encapsulated" (fun () -> fi dpc.Lispdp.Dataplane.encapsulated);
  gauge "dp.decapsulated" (fun () -> fi dpc.Lispdp.Dataplane.decapsulated);
  gauge "dp.intra_domain" (fun () -> fi dpc.Lispdp.Dataplane.intra_domain);
  gauge "dp.delivered_bytes" (fun () -> fi dpc.Lispdp.Dataplane.delivered_bytes);
  Obs.Registry.register_many obs_registry "dp.drop" (fun () ->
      List.map
        (fun (cause, n) -> (cause, fi n))
        (Lispdp.Dataplane.drop_causes dataplane));
  Obs.Registry.register_many obs_registry "cache" (fun () ->
      cache_gauge_rows dataplane);
  (match config.telemetry with
  | None -> ()
  | Some _ ->
      (* Flow/cache occupancy travels through the same registry family
         the telemetry CLI renders, so `obs` and `telemetry` summaries
         read one source of truth. *)
      Obs.Registry.register_many obs_registry "flows" (fun () ->
          flow_gauge_rows dataplane);
      Obs.Telemetry.register_gauges obs_registry);
  let cps =
    match cp with
    | Pull_instance p -> Mapsys.Pull.stats p
    | Nerd_instance n -> Mapsys.Nerd.stats n
    | Cons_instance c -> Mapsys.Cons.stats c
    | Msmr_instance m -> Mapsys.Msmr.stats m
    | Pce_instance p -> Pce_control.stats p
  in
  gauge "cp.map_requests" (fun () -> fi cps.Mapsys.Cp_stats.map_requests);
  gauge "cp.map_replies" (fun () -> fi cps.Mapsys.Cp_stats.map_replies);
  gauge "cp.push_messages" (fun () -> fi cps.Mapsys.Cp_stats.push_messages);
  gauge "cp.control_bytes" (fun () -> fi cps.Mapsys.Cp_stats.control_bytes);
  gauge "cp.detoured_packets" (fun () ->
      fi cps.Mapsys.Cp_stats.detoured_packets);
  gauge "cp.resolutions" (fun () -> fi cps.Mapsys.Cp_stats.resolutions);
  gauge "cp.retransmissions" (fun () ->
      fi cps.Mapsys.Cp_stats.retransmissions);
  gauge "cp.timeouts" (fun () -> fi cps.Mapsys.Cp_stats.timeouts);
  (match faults with
  | None -> ()
  | Some f ->
      gauge "faults.losses" (fun () -> fi (Netsim.Faults.losses f));
      gauge "faults.blocked" (fun () -> fi (Netsim.Faults.blocked f)));
  let dnsc = Dnssim.System.counters dns in
  gauge "dns.client_queries" (fun () -> fi dnsc.Dnssim.System.client_queries);
  gauge "dns.iterative_queries" (fun () ->
      fi dnsc.Dnssim.System.iterative_queries);
  gauge "dns.responses" (fun () -> fi dnsc.Dnssim.System.responses);
  gauge "dns.cache_hits" (fun () -> fi dnsc.Dnssim.System.cache_hits);
  gauge "dns.cache_misses" (fun () -> fi dnsc.Dnssim.System.cache_misses);
  gauge "dns.wire_bytes" (fun () -> fi dnsc.Dnssim.System.wire_bytes);
  (match config.node_faults with
  | None -> ()
  | Some _ ->
      gauge "cp.bypasses" (fun () -> fi cps.Mapsys.Cp_stats.bypasses);
      gauge "cp.recoveries" (fun () -> fi cps.Mapsys.Cp_stats.recoveries);
      gauge "dns.tap_bypasses" (fun () ->
          fi dnsc.Dnssim.System.tap_bypasses);
      gauge "dns.outage_failures" (fun () ->
          fi dnsc.Dnssim.System.outage_failures);
      (match !fallback_pull with
      | None -> ()
      | Some pull ->
          let ps = Mapsys.Pull.stats pull in
          gauge "cp.fallback_resolutions" (fun () ->
              fi ps.Mapsys.Cp_stats.resolutions)));
  (match adversary with
  | None -> ()
  | Some adv ->
      gauge "adversary.forged_replies" (fun () ->
          fi (Netsim.Adversary.forged_replies adv));
      gauge "adversary.replayed_replies" (fun () ->
          fi (Netsim.Adversary.replayed_replies adv));
      gauge "adversary.poisoned_answers" (fun () ->
          fi (Netsim.Adversary.poisoned_answers adv));
      gauge "adversary.flood_packets" (fun () ->
          fi (Netsim.Adversary.flood_packets adv));
      gauge "cp.spoofed_accepted" (fun () ->
          fi cps.Mapsys.Cp_stats.spoofed_accepted);
      gauge "cp.spoofed_rejected" (fun () ->
          fi cps.Mapsys.Cp_stats.spoofed_rejected);
      gauge "cp.replayed_accepted" (fun () ->
          fi cps.Mapsys.Cp_stats.replayed_accepted);
      gauge "cp.replayed_rejected" (fun () ->
          fi cps.Mapsys.Cp_stats.replayed_rejected);
      gauge "dns.poisoned_accepted" (fun () ->
          fi dnsc.Dnssim.System.poisoned_accepted);
      gauge "dns.poisoned_rejected" (fun () ->
          fi dnsc.Dnssim.System.poisoned_rejected);
      gauge "cache.gleaned" (fun () ->
          fi (Lispdp.Dataplane.gleaned_total dataplane));
      gauge "cache.glean_rejections" (fun () ->
          fi
            (Lispdp.Dataplane.cache_stats_totals dataplane)
              .Lispdp.Map_cache.glean_rejections));
  let dns_time_hist = Obs.Registry.histogram obs_registry "conn.dns_time" in
  let setup_time_hist = Obs.Registry.histogram obs_registry "conn.setup_time" in
  (* Exporters installed by the CLI pick the scenario up here; without
     an installed runtime this is a no-op and the hub stays disabled. *)
  Obs.Runtime.attach
    ~label:(Option.value config.run_label ~default:(cp_label config.cp))
    ~hub:obs ~registry:obs_registry ();
  { config; engine; internet; dns; registry; dataplane; tcp; cp; rng; faults;
    lifecycle; adversary; fallback_pull = !fallback_pull; trace; obs;
    obs_registry; dns_time_hist; setup_time_hist; connections_rev = [] }

let open_connection t ~flow ?data_packets ?data_bytes ?on_established
    ?on_complete () =
  let src_domain =
    match Topology.Builder.domain_of_eid t.internet flow.Flow.src with
    | Some d -> d
    | None -> invalid_arg "Scenario.open_connection: unknown source EID"
  in
  let dst_domain =
    match Topology.Builder.domain_of_eid t.internet flow.Flow.dst with
    | Some d -> d
    | None -> invalid_arg "Scenario.open_connection: unknown destination EID"
  in
  let dst_host =
    match Topology.Domain.host_of_eid dst_domain flow.Flow.dst with
    | Some i -> i
    | None -> invalid_arg "Scenario.open_connection: destination is not a host"
  in
  let src_host =
    match Topology.Domain.host_of_eid src_domain flow.Flow.src with
    | Some i -> i
    | None -> invalid_arg "Scenario.open_connection: source is not a host"
  in
  let qname =
    Dnssim.Name.of_string (Topology.Domain.host_name dst_domain dst_host)
  in
  let connection =
    { flow; opened_at = Netsim.Engine.now t.engine; dns_time = None;
      resolution_failed = false; tcp = None }
  in
  t.connections_rev <- connection :: t.connections_rev;
  (* Root marker for the span layer: setup starts here, with the DNS
     lookup; the matching close is Conn_established / Conn_failed. *)
  if Obs.Hub.enabled t.obs then
    Obs.Hub.emit t.obs ~time:connection.opened_at
      ~actor:(src_domain.Topology.Domain.name ^ "-host")
      ~flow:(Obs.Event.flow_id flow)
      (Obs.Event.Conn_open { dst = flow.Flow.dst });
  let established _ =
    (match total_setup_time connection with
    | Some setup -> Obs.Registry.observe t.setup_time_hist setup
    | None -> ());
    match on_established with Some f -> f connection | None -> ()
  in
  Dnssim.System.resolve t.dns ~resolver:src_domain.Topology.Domain.dns
    ~client:src_domain.Topology.Domain.hosts.(src_host)
    ~client_eid:flow.Flow.src
    ?flow:
      (if Obs.Hub.enabled t.obs then Some (Obs.Event.flow_id flow) else None)
    qname
    ~callback:(fun answer ->
      let dns_time = Netsim.Engine.now t.engine -. connection.opened_at in
      connection.dns_time <- Some dns_time;
      Obs.Registry.observe t.dns_time_hist dns_time;
      match answer with
      | None ->
          connection.resolution_failed <- true;
          if Obs.Hub.enabled t.obs then
            Obs.Hub.emit t.obs ~time:(Netsim.Engine.now t.engine)
              ~actor:(src_domain.Topology.Domain.name ^ "-host")
              ~flow:(Obs.Event.flow_id flow)
              (Obs.Event.Conn_failed { reason = "resolution-failed" })
      | Some _addr ->
          let tcp_conn =
            Workload.Tcp.start_connection t.tcp ~flow ?data_packets
              ?data_bytes ~on_established:established
              ?on_complete:(Option.map (fun f _ -> f connection) on_complete)
              ()
          in
          connection.tcp <- Some tcp_conn);
  connection

let run ?until t =
  Netsim.Engine.run ?until t.engine;
  (* Closing metrics sample for an installed exporter (no-op otherwise). *)
  Obs.Runtime.finish_run ~now:(Netsim.Engine.now t.engine)

let uplink_utilisation (_ : t) domain ~direction ~duration =
  Array.map
    (fun border ->
      let link = border.Topology.Domain.uplink in
      let router = border.Topology.Domain.router in
      let node =
        match direction with
        | `Outbound -> router
        | `Inbound -> Topology.Link.other_end link router
      in
      Topology.Link.utilisation_from link node ~duration)
    domain.Topology.Domain.borders

let reset_uplink_counters t =
  List.iter Topology.Link.reset_counters
    (Topology.Graph.links t.internet.Topology.Builder.graph)

let reregister t ~domain mapping =
  Mapsys.Registry.update_mapping t.registry domain mapping;
  match t.cp with
  | Nerd_instance nerd -> Mapsys.Nerd.push_update nerd ~domain mapping
  | Pull_instance pull -> Mapsys.Pull.notify_mapping_change pull ~domain
  | Cons_instance _ | Msmr_instance _ | Pce_instance _ -> ()

let set_uplink t ~domain ~border up =
  let d = t.internet.Topology.Builder.domains.(domain) in
  let b = d.Topology.Domain.borders.(border) in
  Topology.Graph.set_link_up t.internet.Topology.Builder.graph
    b.Topology.Domain.uplink up;
  if Obs.Hub.enabled t.obs then
    Obs.Hub.emit t.obs ~time:(Netsim.Engine.now t.engine)
      ~actor:(d.Topology.Domain.name ^ "-border")
      (if up then Obs.Event.Link_up { rloc = b.Topology.Domain.rloc }
       else Obs.Event.Link_down { rloc = b.Topology.Domain.rloc });
  (* The domain re-registers its mapping without (or again with) the
     affected locator. *)
  reregister t ~domain (Topology.Domain.advertised_mapping d ~ttl:t.config.mapping_ttl)

let fail_uplink t ~domain ~border = set_uplink t ~domain ~border false
let restore_uplink t ~domain ~border = set_uplink t ~domain ~border true
