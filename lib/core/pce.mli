(** Per-domain Path Computation Element.

    Each domain runs one PCE sitting on its DNS server's wire.  The PCE
    plays two roles:

    - {b PCE_S} (source side): learns E_S when a local client queries
      the resolver (step 1), chooses the ingress locator RLOC_S for the
      flow's {e reverse} traffic with its IRC engine, and — when the
      encapsulated answer arrives from the remote PCE — pushes the
      per-flow tuple to the domain's ITRs (step 7b);
    - {b PCE_D} (destination side): keeps, per local EID, the
      currently-best ingress locator RLOC_D (refreshed in the background
      by the same IRC engine) so it can stamp mappings onto outgoing DNS
      answers at line rate (step 6).

    This module is the PCE's {e state}; the wiring into DNS taps and the
    data plane lives in {!Pce_control}. *)

type t

type pending = {
  client_eid : Nettypes.Ipv4.addr;  (** E_S *)
  ingress_rloc : Nettypes.Ipv4.addr;  (** RLOC_S chosen at step 1 *)
  query_time : float;  (** when step 1 happened *)
}

val create :
  domain:Topology.Domain.t ->
  graph:Topology.Graph.t ->
  policy:Irc.Policy.t ->
  ?ewma_alpha:float ->
  ?hysteresis:float ->
  ?noise:float ->
  ?rng:Netsim.Rng.t ->
  unit ->
  t

val domain : t -> Topology.Domain.t
val selector : t -> Irc.Selector.t

val reset : t -> unit
(** Crash state-loss: empty the pending-query table, the flow database,
    the learned-name cache and the advertisement bookkeeping, as if the
    PCE process restarted with a cold in-memory image.  The IRC
    selector's load estimate is kept (it is re-observed immediately on
    restart). *)

val note_client_query :
  t -> now:float -> client_eid:Nettypes.Ipv4.addr -> qname:Dnssim.Name.t -> unit
(** Step 1: record that [client_eid] asked for [qname] and pick RLOC_S
    for the reverse direction. *)

val take_pending : t -> qname:Dnssim.Name.t -> pending list
(** Step 7: consume every pending query for a name (oldest first).
    Subsequent calls return []. *)

val pending_count : t -> int

val ingress_rloc_for_eid :
  t -> eid:Nettypes.Ipv4.addr -> ?peer:Nettypes.Ipv4.addr -> unit ->
  Nettypes.Ipv4.addr
(** PCE_D role: the current-best ingress locator for a local EID.
    [peer] identifies the querying side (e.g. the remote resolver), so
    stickiness is per (EID, peer) pair and the background IRC engine can
    spread different peers' traffic over different uplinks. *)

val remember_entry : t -> Nettypes.Mapping.flow_entry -> unit
(** Keep a pushed tuple in the PCE database ("updates the PCE_D
    database" on reverse-mapping completion, and the PCE_S bookkeeping
    for egress decisions). *)

val find_entry :
  t -> src_eid:Nettypes.Ipv4.addr -> dst_eid:Nettypes.Ipv4.addr ->
  Nettypes.Mapping.flow_entry option

val entry_count : t -> int

val pair_flow :
  src_eid:Nettypes.Ipv4.addr -> dst_eid:Nettypes.Ipv4.addr -> Nettypes.Flow.t
(** The synthetic port-less flow the PCE keys its IRC decisions by —
    mappings are per EID pair, not per transport connection. *)

val learn_name_mapping :
  t -> qname:Dnssim.Name.t -> dst_eid:Nettypes.Ipv4.addr ->
  dst_rloc:Nettypes.Ipv4.addr -> now:float -> ttl:float -> unit
(** Remember what a name resolved to and which ingress locator the
    remote PCE advertised.  Required because the local resolver caches
    DNS answers: a cache-served query never reaches PCE_D, so PCE_S must
    be able to configure ITRs for new local clients from its own
    database (the "PCE_S learns the address of PCE_D / retrieves the
    mapping" bookkeeping of step 7). *)

val known_name :
  t -> qname:Dnssim.Name.t -> now:float ->
  (Nettypes.Ipv4.addr * Nettypes.Ipv4.addr) option
(** [(dst_eid, dst_rloc)] if the name's mapping is still fresh. *)

type advertisement = {
  adv_qname : Dnssim.Name.t;
  adv_eid : Nettypes.Ipv4.addr;  (** the local EID advertised *)
  adv_peer : Nettypes.Ipv4.addr;  (** the remote resolver we answered *)
  mutable adv_rloc : Nettypes.Ipv4.addr;  (** RLOC_D we handed out *)
}

val record_advertisement :
  t -> qname:Dnssim.Name.t -> eid:Nettypes.Ipv4.addr ->
  peer:Nettypes.Ipv4.addr -> rloc:Nettypes.Ipv4.addr -> unit
(** PCE_D bookkeeping of step 6: remember which ingress locator each
    peer was given for each local EID, so the locator can be
    re-advertised when its uplink fails. *)

val advertisements_via : t -> rloc:Nettypes.Ipv4.addr -> advertisement list
(** Advertisements currently pointing at the given locator. *)

val entries_toward : t -> dst_eid:Nettypes.Ipv4.addr -> Nettypes.Mapping.flow_entry list
(** Database entries whose destination is the given EID (the tuples a
    peer update must refresh). *)

val entries_with_src_rloc : t -> rloc:Nettypes.Ipv4.addr -> Nettypes.Mapping.flow_entry list
(** Database entries whose reverse locator (RLOC_S) is the given one —
    the tuples to re-home when a local uplink fails. *)
