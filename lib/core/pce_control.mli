(** The PCE-based control plane (the paper's proposal, steps 1–8).

    Wires one {!Pce} per domain into the DNS simulation and the LISP
    data plane:

    - a {e query observer} on every resolver implements step 1 (PCE_S
      learns E_S by IPC and picks RLOC_S for the reverse direction);
    - a {e response tap} on every authoritative server implements step 6
      (PCE_D catches the final answer carrying E_D, stamps the
      precomputed (E_D, RLOC_D) mapping on it and sends the encapsulated
      UDP message to the querying resolver's wire on port P);
    - on arrival, steps 7a/7b run: the answer is forwarded to DNS_S
      while the flow tuple [(E_S, E_D, RLOC_S, RLOC_D)] is configured
      into the ITRs;
    - the first tunneled packet reaching an ETR triggers the
      reverse-mapping multicast to the sibling ETRs and the PCE_D
      database update (the two-way completion of §2).

    Two knobs expose the paper's design choices for the ablation
    studies: {!push_scope} (push to all ITRs versus only the flow's
    egress ITR) and {!reverse_scope} (multicast to all ETRs versus only
    the receiving one). *)

type push_scope = Push_all_itrs | Push_egress_only
type reverse_scope = Reverse_multicast | Reverse_receiving_only

type options = {
  policy : Irc.Policy.t;  (** IRC objective for ingress/egress choices *)
  push_scope : push_scope;
  reverse_scope : reverse_scope;
  ipc_latency : float;  (** PCE <-> co-located DNS server (step 1/7a) *)
  config_latency : float;  (** PCE_S -> ITR mapping configuration (7b) *)
  multicast_latency : float;  (** ETR -> sibling ETRs reverse push *)
  flow_ttl : float;  (** lifetime of installed flow entries *)
}

val default_options : options
(** min-load policy, push-all, multicast, 0.1 ms IPC, 1 ms config,
    0.5 ms multicast, 300 s flow TTL. *)

type t

val create :
  engine:Netsim.Engine.t ->
  internet:Topology.Builder.t ->
  dns:Dnssim.System.t ->
  ?options:options ->
  ?rng:Netsim.Rng.t ->
  ?faults:Netsim.Faults.t ->
  ?push_retry:Netsim.Faults.retry ->
  ?lifecycle:Netsim.Lifecycle.t ->
  ?fallback:Mapsys.Pull.t ->
  ?watchdog:float ->
  ?registry:Mapsys.Registry.t ->
  ?trace:Netsim.Trace.t ->
  ?obs:Obs.Hub.t ->
  unit ->
  t
(** Installs the DNS observers and taps.  {!attach} must follow before
    any traffic flows.  [obs] receives typed [Mapping_push] events on
    every step-7b configuration and flow-scoped [Irc_decision] events
    each time the IRC engine picks an egress border.

    [faults] makes step-7b pushes unreliable: each per-target
    transmission draws against the loss model.  With [push_retry] the
    push is acknowledged — a lost configuration is retransmitted with
    exponential backoff up to the retry budget (counted in the stats as
    retransmissions/timeouts and visible as [Cp_loss]/[Cp_retry]/
    [Cp_timeout] events); without it a lost push is simply gone and the
    affected ITR misses until the flow entry is pushed again.

    [lifecycle] enables crash-recovery semantics (strictly opt-in;
    without it, or with an empty schedule, behaviour is byte-identical
    to before): while a domain's PCE is inside a crash window its
    step-1 observer is deaf, its response tap is bypassed by the DNS
    server after [watchdog] seconds (default 0.25 s, counted in
    [bypasses] and visible as [Pce_bypass] events), and an
    encapsulated answer arriving at a crashed PCE_S is likewise
    recovered by DNS_S after the watchdog — resolutions complete but
    no mapping is configured.  Call {!schedule_lifecycle} after
    [create] to arm the crash/restart transitions.

    [fallback] makes ITR cache misses degrade gracefully to the pull
    mapping system (emitting flow-scoped [Degraded_to_pull] events)
    instead of dropping; [registry] lets a restarting PCE re-register
    its domain mapping during warm recovery. *)

val control_plane : t -> Lispdp.Dataplane.control_plane
val attach : t -> Lispdp.Dataplane.t -> unit

val stats : t -> Mapsys.Cp_stats.t
val options : t -> options
val pce_of_domain : t -> int -> Pce.t

val run_monitoring : t -> interval:float -> until:float -> rebalance:bool -> unit
(** Schedule the background IRC loop of every PCE: sample uplink loads
    every [interval] seconds until [until], optionally running the TE
    {!Irc.Selector.rebalance} step after each observation.  The loop
    also performs edge-triggered uplink-failure detection, invoking
    {!handle_uplink_failure} when an access link goes down. *)

val handle_uplink_failure :
  t -> domain_id:int -> border:Topology.Domain.border -> unit
(** Repair every mapping that names the failed border's RLOC: affected
    peers receive a direct PCE-to-PCE update with a freshly chosen
    ingress locator and re-push the tuples to their ITRs; local tuples
    whose reverse locator died are re-homed.  Normally triggered by the
    monitoring loop; exposed for failure-injection tests. *)

val failovers : t -> int
(** Uplink failures handled so far. *)

val reroutes : t -> int
(** Flow assignments moved by TE rebalancing across all domains. *)

val handle_node_crash : t -> domain_id:int -> unit
(** The domain's PCE process dies: its pending-query table, flow
    database, learned names and advertisement bookkeeping are lost
    ({!Pce.reset}); a [Node_crash] event is emitted.  While the
    lifecycle window is open the hooks stay silent via the window
    check, so this only performs the state loss. *)

val handle_node_restart : t -> domain_id:int -> unit
(** Warm recovery: re-query the domain's ITR flow tables (one
    map-request per ITR, [itr_config_size] bytes per recovered entry),
    repopulate the PCE database, and re-register the domain mapping
    with the pull registry when one was given.  Counted in
    [recoveries]; emits [Node_restart] plus a summary [Note]. *)

val schedule_lifecycle : t -> unit
(** Schedule {!handle_node_crash}/{!handle_node_restart} engine events
    for every [Pce] window of the lifecycle passed to [create] (windows
    ending at [infinity] never restart).  No-op without a lifecycle. *)
