open Nettypes

type pending = {
  client_eid : Ipv4.addr;
  ingress_rloc : Ipv4.addr;
  query_time : float;
}

type t = {
  domain : Topology.Domain.t;
  selector : Irc.Selector.t;
  pending : (Dnssim.Name.t, pending list) Hashtbl.t; (* newest first *)
  entries : (int * int, Mapping.flow_entry) Hashtbl.t;
  names : (Dnssim.Name.t, Ipv4.addr * Ipv4.addr * float) Hashtbl.t;
      (* qname -> (E_D, RLOC_D, expiry) *)
  advertised : (int * int, advertisement) Hashtbl.t; (* (eid, peer) *)
}

and advertisement = {
  adv_qname : Dnssim.Name.t;
  adv_eid : Ipv4.addr;
  adv_peer : Ipv4.addr;
  mutable adv_rloc : Ipv4.addr;
}

let create ~domain ~graph ~policy ?ewma_alpha ?hysteresis ?noise ?rng () =
  { domain;
    selector =
      Irc.Selector.create ~domain ~graph ~policy ?ewma_alpha ?hysteresis
        ?noise ?rng ();
    pending = Hashtbl.create 32; entries = Hashtbl.create 64;
    names = Hashtbl.create 64; advertised = Hashtbl.create 64 }

let domain t = t.domain
let selector t = t.selector

(* A crash loses everything held in memory: pending observations, the
   flow database, learned names, advertisement bookkeeping.  The IRC
   selector's EWMA load state survives only because the restarted PCE
   immediately re-observes load; resetting it too would be equally
   defensible but would perturb TE decisions for flows the crash never
   touched. *)
let reset t =
  Hashtbl.reset t.pending;
  Hashtbl.reset t.entries;
  Hashtbl.reset t.names;
  Hashtbl.reset t.advertised

let pair_flow ~src_eid ~dst_eid =
  Flow.create ~src:src_eid ~dst:dst_eid ~src_port:0 ~dst_port:0 ()

let note_client_query t ~now ~client_eid ~qname =
  (* RLOC_S for the reverse direction, chosen by IRC on inbound load.
     The remote end is unknown at step 1, exactly as in the paper. *)
  let flow = pair_flow ~src_eid:client_eid ~dst_eid:client_eid in
  let border = Irc.Selector.choose_ingress t.selector ~flow () in
  let entry =
    { client_eid; ingress_rloc = border.Topology.Domain.rloc; query_time = now }
  in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.pending qname) in
  Hashtbl.replace t.pending qname (entry :: existing)

let take_pending t ~qname =
  match Hashtbl.find_opt t.pending qname with
  | Some entries ->
      Hashtbl.remove t.pending qname;
      List.rev entries
  | None -> []

let pending_count t =
  Hashtbl.fold (fun _ l acc -> acc + List.length l) t.pending 0

let ingress_rloc_for_eid t ~eid ?peer () =
  let dst_eid = Option.value peer ~default:eid in
  let flow = pair_flow ~src_eid:eid ~dst_eid in
  let border = Irc.Selector.choose_ingress t.selector ~flow () in
  border.Topology.Domain.rloc

let key ~src_eid ~dst_eid = (Ipv4.addr_to_int src_eid, Ipv4.addr_to_int dst_eid)

let remember_entry t entry =
  Hashtbl.replace t.entries
    (key ~src_eid:entry.Mapping.src_eid ~dst_eid:entry.Mapping.dst_eid)
    entry

let find_entry t ~src_eid ~dst_eid = Hashtbl.find_opt t.entries (key ~src_eid ~dst_eid)
let entry_count t = Hashtbl.length t.entries

let learn_name_mapping t ~qname ~dst_eid ~dst_rloc ~now ~ttl =
  Hashtbl.replace t.names qname (dst_eid, dst_rloc, now +. ttl)

let record_advertisement t ~qname ~eid ~peer ~rloc =
  let key = (Ipv4.addr_to_int eid, Ipv4.addr_to_int peer) in
  match Hashtbl.find_opt t.advertised key with
  | Some adv -> adv.adv_rloc <- rloc
  | None ->
      Hashtbl.replace t.advertised key
        { adv_qname = qname; adv_eid = eid; adv_peer = peer; adv_rloc = rloc }

let advertisements_via t ~rloc =
  Hashtbl.fold
    (fun _ adv acc ->
      if Ipv4.addr_equal adv.adv_rloc rloc then adv :: acc else acc)
    t.advertised []

let entries_toward t ~dst_eid =
  Hashtbl.fold
    (fun _ e acc ->
      if Ipv4.addr_equal e.Mapping.dst_eid dst_eid then e :: acc else acc)
    t.entries []

let entries_with_src_rloc t ~rloc =
  Hashtbl.fold
    (fun _ e acc ->
      if Ipv4.addr_equal e.Mapping.src_rloc rloc then e :: acc else acc)
    t.entries []

let known_name t ~qname ~now =
  match Hashtbl.find_opt t.names qname with
  | Some (dst_eid, dst_rloc, expiry) when expiry > now -> Some (dst_eid, dst_rloc)
  | Some _ ->
      Hashtbl.remove t.names qname;
      None
  | None -> None
