(** Scenario description files.

    A small line-oriented format so experiments can be run from the CLI
    without recompiling:

    {v
    # two-domain quick look
    seed        7
    topology    random        # or: figure1
    domains     16
    providers   4
    borders     2
    hosts       4
    cp          pce           # pull-drop | pull-queue | pull-detour |
                              # cons | msmr | nerd | pce
    mapping-ttl 60
    flows       500
    rate        50
    zipf        0.9
    data-packets 8
    data-bytes  1200
    hotspot     0             # optional: aim all traffic at one domain
    v}

    Control-plane faults ([cp-loss], [cp-jitter], [cp-rto],
    [cp-backoff], [cp-retries], [cp-flap], [cp-partition]) and node
    failures ([pce-crash-at <domain> <t>], [pce-recover-at <domain>
    <t>], [pce-watchdog <s>]) are documented in [doc/protocol.md]; a
    crash with no matching recovery means the PCE never restarts, and
    windows must close after they open.

    Adversarial injection ([attack-spoof <p>], [attack-spoof-head-start
    <s>], [attack-replay <p>], [attack-dns-poison <p>], [attack-flood
    <rate> <eids> <from> <until> <victim-domain>]) and countermeasures
    ([auth-nonce on|off], [auth-sig on|off], [auth-sig-cpu <s>],
    [auth-dnssec on|off], [glean-cap <n>]) are documented in
    [doc/security.md]; without any attack-*/auth-* key the run is
    byte-identical to pre-adversary builds.

    Unknown keys, malformed values and out-of-range numbers are
    reported with their line number.  Omitted keys take the defaults
    above ({!default}). *)

type workload = {
  flows : int;
  rate : float;
  zipf_alpha : float;
  data_packets : int;
  data_bytes : int;
  hotspot : int option;
}

type t = { config : Scenario.config; workload : workload }

val default : t

val parse : string -> (t, string) result
(** Parse file contents. *)

val load : string -> (t, string) result
(** Read and parse a file; IO errors become [Error]. *)
