open Nettypes

type push_scope = Push_all_itrs | Push_egress_only
type reverse_scope = Reverse_multicast | Reverse_receiving_only

type options = {
  policy : Irc.Policy.t;
  push_scope : push_scope;
  reverse_scope : reverse_scope;
  ipc_latency : float;
  config_latency : float;
  multicast_latency : float;
  flow_ttl : float;
}

let default_options =
  { policy = Irc.Policy.Min_load; push_scope = Push_all_itrs;
    reverse_scope = Reverse_multicast; ipc_latency = 0.0001;
    config_latency = 0.001; multicast_latency = 0.0005; flow_ttl = 300.0 }

type t = {
  engine : Netsim.Engine.t;
  internet : Topology.Builder.t;
  options : options;
  pces : Pce.t array; (* indexed by domain id *)
  resolver_domains : (Topology.Node.id, int) Hashtbl.t;
  stats : Mapsys.Cp_stats.t;
  faults : Netsim.Faults.t option;
  push_retry : Netsim.Faults.retry option;
  lifecycle : Netsim.Lifecycle.t option;
  fallback : Mapsys.Pull.t option;
  watchdog : float;
  registry : Mapsys.Registry.t option;
  trace : Netsim.Trace.t option;
  obs : Obs.Hub.t option;
  mutable dataplane : Lispdp.Dataplane.t option;
  mutable failovers : int;
}

let itr_config_size entry = Wire.Codec.size (Wire.Codec.Itr_config { entry })
let reverse_push_size entry = Wire.Codec.size (Wire.Codec.Reverse_push { entry })

let stats t = t.stats
let options t = t.options
let pce_of_domain t id = t.pces.(id)

let tracef t ~actor fmt =
  match t.trace with
  | Some tr ->
      Netsim.Trace.recordf tr ~time:(Netsim.Engine.now t.engine) ~actor fmt
  | None -> Format.ikfprintf ignore Format.err_formatter fmt

let obs_on t =
  match t.obs with Some hub -> Obs.Hub.enabled hub | None -> false

let obs_emit t ~actor ?flow kind =
  match t.obs with
  | Some hub ->
      Obs.Hub.emit hub ~time:(Netsim.Engine.now t.engine) ~actor ?flow kind
  | None -> ()

let dataplane_exn t =
  match t.dataplane with
  | Some dp -> dp
  | None -> invalid_arg "Pce_control: used before attach"

let graph t = t.internet.Topology.Builder.graph

(* PCE control work — answer interception/decapsulation, tuple pushes
   and their retries, failover re-pushes, reverse-mapping multicast,
   monitoring ticks — runs under the "pce_push" profiler phase. *)
let ph_pce = Netsim.Prof.phase "pce_push"

(* Is the domain's PCE inside one of its scheduled crash windows?
   Always false without a lifecycle, so the zero-profile run never
   takes this branch. *)
let pce_down t id =
  match t.lifecycle with
  | Some lc ->
      Netsim.Lifecycle.is_down lc ~role:(Netsim.Lifecycle.Pce id)
        ~now:(Netsim.Engine.now t.engine)
  | None -> false

(* Resolve a remote locator to its border-router node, for latency-aware
   egress decisions. *)
let node_of_rloc t rloc =
  Option.map
    (fun (_, border) -> border.Topology.Domain.router)
    (Topology.Builder.border_of_rloc t.internet rloc)

(* Egress border for the EID pair, as the PCE's IRC engine sees it. *)
let egress_border t pce ~src_eid ~dst_eid =
  let flow = Pce.pair_flow ~src_eid ~dst_eid in
  let remote =
    match Pce.find_entry pce ~src_eid ~dst_eid with
    | Some entry -> node_of_rloc t entry.Mapping.dst_rloc
    | None -> None
  in
  match remote with
  | Some node -> Irc.Selector.choose_egress (Pce.selector pce) ~flow ~remote:node ()
  | None -> Irc.Selector.choose_egress (Pce.selector pce) ~flow ()

(* Step 7b: configure the tuple into the ITRs of [pce]'s domain.

   With a fault model the push is acknowledged per target: each
   transmission draws against the loss model, a lost configuration is
   detected by the missing ack when the retry timer fires and is
   re-sent (with exponential backoff) up to the retry budget, after
   which the target is given up on.  Acks themselves ride the
   intra-domain management network and are assumed reliable. *)
let push_entry t pce entry =
  let dp = dataplane_exn t in
  let domain = Pce.domain pce in
  Pce.remember_entry pce entry;
  let actor = domain.Topology.Domain.name ^ "-pce" in
  let account_send () =
    t.stats.Mapsys.Cp_stats.push_messages <-
      t.stats.Mapsys.Cp_stats.push_messages + 1;
    t.stats.Mapsys.Cp_stats.control_bytes <-
      t.stats.Mapsys.Cp_stats.control_bytes + itr_config_size entry
  in
  let install router =
    ignore
      (Netsim.Engine.schedule t.engine ~delay:t.options.config_latency
         (Netsim.Prof.wrap ph_pce (fun () ->
              Lispdp.Dataplane.install_flow_entry dp router entry)))
  in
  let routers = Lispdp.Dataplane.routers_of_domain dp domain in
  let targets =
    match t.options.push_scope with
    | Push_all_itrs -> Array.to_list routers
    | Push_egress_only ->
        let border =
          egress_border t pce ~src_eid:entry.Mapping.src_eid
            ~dst_eid:entry.Mapping.dst_eid
        in
        [ Lispdp.Dataplane.router_for_border dp border ]
  in
  (match t.faults with
  | None -> List.iter (fun router -> account_send (); install router) targets
  | Some faults ->
      let id = domain.Topology.Domain.id in
      let rec send router ~attempt =
        account_send ();
        let now = Netsim.Engine.now t.engine in
        if Netsim.Faults.drops_message faults ~now ~src:id ~dst:id then begin
          if obs_on t then
            obs_emit t ~actor (Obs.Event.Cp_loss { message = "pce-push" });
          match t.push_retry with
          | Some retry when attempt <= retry.Netsim.Faults.budget ->
              t.stats.Mapsys.Cp_stats.retransmissions <-
                t.stats.Mapsys.Cp_stats.retransmissions + 1;
              if obs_on t then
                obs_emit t ~actor
                  (Obs.Event.Cp_retry
                     { eid = entry.Mapping.dst_eid; attempt;
                       message = "pce-push" });
              ignore
                (Netsim.Engine.schedule t.engine
                   ~delay:(Netsim.Faults.retry_delay retry ~attempt)
                   (Netsim.Prof.wrap ph_pce (fun () ->
                        send router ~attempt:(attempt + 1))))
          | Some _ | None ->
              t.stats.Mapsys.Cp_stats.timeouts <-
                t.stats.Mapsys.Cp_stats.timeouts + 1;
              if obs_on t then
                obs_emit t ~actor
                  (Obs.Event.Cp_timeout
                     { eid = entry.Mapping.dst_eid; message = "pce-push" })
        end
        else
          ignore
            (Netsim.Engine.schedule t.engine
               ~delay:
                 (t.options.config_latency +. Netsim.Faults.extra_delay faults)
               (Netsim.Prof.wrap ph_pce (fun () ->
                    Lispdp.Dataplane.install_flow_entry dp router entry)))
      in
      List.iter (fun router -> send router ~attempt:1) targets);
  tracef t ~actor "step 7b: push %a to %d ITR(s)" Mapping.pp_flow_entry entry
    (List.length targets);
  if obs_on t then
    obs_emit t ~actor (Obs.Event.Mapping_push { targets = List.length targets })

(* Step 6 handler: PCE_D intercepted the authoritative answer. *)
let on_intercept t ~dst_pce ctx =
  Netsim.Prof.with_phase ph_pce @@ fun () ->
  let e_d = ctx.Dnssim.System.tap_answer in
  (* Ingress stickiness is per (EID, querying resolver): different
     source domains may be steered through different uplinks. *)
  let peer = Ipv4.addr_of_int ctx.Dnssim.System.tap_resolver in
  let rloc_d = Pce.ingress_rloc_for_eid dst_pce ~eid:e_d ~peer () in
  Pce.record_advertisement dst_pce ~qname:ctx.Dnssim.System.tap_qname ~eid:e_d
    ~peer ~rloc:rloc_d;
  (* The port-P message really is encoded here and decoded at PCE_S, so
     its size (and well-formedness) is exercised on every resolution. *)
  let pce_d_node = (Pce.domain dst_pce).Topology.Domain.pce in
  let encoded =
    Wire.Codec.encode
      (Wire.Codec.Encapsulated_answer
         { qname = Dnssim.Name.to_string ctx.Dnssim.System.tap_qname;
           eid = e_d; rloc = rloc_d; pce = Ipv4.addr_of_int pce_d_node })
  in
  t.stats.Mapsys.Cp_stats.map_replies <- t.stats.Mapsys.Cp_stats.map_replies + 1;
  t.stats.Mapsys.Cp_stats.control_bytes <-
    t.stats.Mapsys.Cp_stats.control_bytes + Bytes.length encoded;
  tracef t ~actor:((Pce.domain dst_pce).Topology.Domain.name ^ "-pce")
    "step 6: encapsulate DNS answer for %s with mapping %a -> %a"
    (Dnssim.Name.to_string ctx.Dnssim.System.tap_qname)
    Ipv4.pp_addr e_d Ipv4.pp_addr rloc_d;
  (* The encapsulated UDP message travels PCE_D -> DNS_S wire, where
     PCE_S picks it off (port P). *)
  let transit =
    t.options.ipc_latency
    +. Topology.Graph.latency_between (graph t) pce_d_node
         ctx.Dnssim.System.tap_resolver
  in
  ignore
    (Netsim.Engine.schedule t.engine ~delay:transit
       (Netsim.Prof.wrap ph_pce (fun () ->
         match Hashtbl.find_opt t.resolver_domains ctx.Dnssim.System.tap_resolver with
         | None -> ctx.Dnssim.System.tap_complete ()
         | Some src_domain_id when pce_down t src_domain_id ->
             (* PCE_S is crashed: nobody listens on port P, so the
                encapsulated answer is never decapsulated and no tuples
                are configured.  DNS_S's watchdog recovers the inner
                answer after the timeout; the mapping is simply lost
                (the ITR will degrade to pull on the miss). *)
             let actor =
               t.internet.Topology.Builder.domains.(src_domain_id)
                 .Topology.Domain.name ^ "-dns"
             in
             t.stats.Mapsys.Cp_stats.bypasses <-
               t.stats.Mapsys.Cp_stats.bypasses + 1;
             tracef t ~actor
               "PCE_S down: answer for %s recovered after %gs watchdog"
               (Dnssim.Name.to_string ctx.Dnssim.System.tap_qname) t.watchdog;
             if obs_on t then
               obs_emit t ~actor
                 (Obs.Event.Pce_bypass
                    { qname =
                        Dnssim.Name.to_string ctx.Dnssim.System.tap_qname });
             ignore
               (Netsim.Engine.schedule t.engine ~delay:t.watchdog
                  ctx.Dnssim.System.tap_complete)
         | Some src_domain_id ->
             (* Step 7: PCE_S decapsulates the port-P message. *)
             let qname, e_d, rloc_d =
               match Wire.Codec.decode encoded with
               | Ok (Wire.Codec.Encapsulated_answer { qname; eid; rloc; pce = _ }) ->
                   (Dnssim.Name.of_string qname, eid, rloc)
               | Ok _ | Error _ ->
                   (* An undecodable answer would fall back to plain DNS
                      semantics; with our own encoder this is a bug. *)
                   assert false
             in
             let src_pce = t.pces.(src_domain_id) in
             (* The local resolver will cache this answer; remember the
                mapping so later cache-served queries from other local
                clients can be configured without a remote exchange. *)
             Pce.learn_name_mapping src_pce ~qname ~dst_eid:e_d
               ~dst_rloc:rloc_d ~now:(Netsim.Engine.now t.engine)
               ~ttl:t.options.flow_ttl;
             let pendings = Pce.take_pending src_pce ~qname in
             tracef t
               ~actor:((Pce.domain src_pce).Topology.Domain.name ^ "-pce")
               "step 7: decapsulate answer for %s; %d pending client(s)"
               (Dnssim.Name.to_string qname)
               (List.length pendings);
             List.iter
               (fun p ->
                 let entry =
                   { Mapping.src_eid = p.Pce.client_eid; dst_eid = e_d;
                     src_rloc = p.Pce.ingress_rloc; dst_rloc = rloc_d }
                 in
                 t.stats.Mapsys.Cp_stats.resolutions <-
                   t.stats.Mapsys.Cp_stats.resolutions + 1;
                 push_entry t src_pce entry)
               pendings;
             (* Step 7a: hand the original answer to DNS_S. *)
             ignore
               (Netsim.Engine.schedule t.engine ~delay:t.options.ipc_latency
                  ctx.Dnssim.System.tap_complete))))

let create ~engine ~internet ~dns ?(options = default_options) ?rng ?faults
    ?push_retry ?lifecycle ?fallback ?(watchdog = 0.25) ?registry ?trace ?obs
    () =
  let domains = internet.Topology.Builder.domains in
  let pces =
    Array.map
      (fun domain ->
        let rng = Option.map Netsim.Rng.split rng in
        Pce.create ~domain ~graph:internet.Topology.Builder.graph
          ~policy:options.policy ?rng ())
      domains
  in
  let resolver_domains = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      Hashtbl.replace resolver_domains d.Topology.Domain.dns d.Topology.Domain.id)
    domains;
  let t =
    { engine; internet; options; pces; resolver_domains;
      stats = Mapsys.Cp_stats.create (); faults; push_retry; lifecycle;
      fallback; watchdog; registry; trace; obs; dataplane = None;
      failovers = 0 }
  in
  Array.iter
    (fun domain ->
      let id = domain.Topology.Domain.id in
      (* Step 1: PCE_S sees local client queries by IPC with DNS_S. *)
      Dnssim.System.set_query_observer dns ~resolver:domain.Topology.Domain.dns
        (Some
           (fun ~client_eid ~qname ->
             if not (pce_down t id) then begin
             tracef t ~actor:(domain.Topology.Domain.name ^ "-pce")
               "step 1: IPC reveals query %s from %a"
               (Dnssim.Name.to_string qname) Ipv4.pp_addr client_eid;
             let pce = t.pces.(id) in
             let now = Netsim.Engine.now engine in
             Pce.note_client_query pce ~now ~client_eid ~qname;
             (* If the name's mapping is already in the PCE database,
                configure the ITRs right away: the resolver may answer
                this query from its cache, in which case no reply will
                ever cross PCE_D. *)
             match Pce.known_name pce ~qname ~now with
             | Some (dst_eid, dst_rloc) ->
                 List.iter
                   (fun p ->
                     let entry =
                       { Mapping.src_eid = p.Pce.client_eid; dst_eid;
                         src_rloc = p.Pce.ingress_rloc; dst_rloc }
                     in
                     t.stats.Mapsys.Cp_stats.resolutions <-
                       t.stats.Mapsys.Cp_stats.resolutions + 1;
                     push_entry t pce entry)
                   (Pce.take_pending pce ~qname)
             | None -> ()
             end));
      (* Step 6: PCE_D sits on the authoritative server's wire. *)
      Dnssim.System.set_response_tap dns ~server:domain.Topology.Domain.dns
        (Some (fun ctx -> on_intercept t ~dst_pce:t.pces.(id) ctx));
      (* With a lifecycle, guard the tap: while PCE_D is crashed the
         DNS server bypasses it after the watchdog and the answer goes
         out un-piggybacked. *)
      match t.lifecycle with
      | None -> ()
      | Some _ ->
          Dnssim.System.set_tap_guard dns ~server:domain.Topology.Domain.dns
            (Some
               { Dnssim.System.guard_down = (fun () -> pce_down t id);
                 guard_watchdog = watchdog;
                 guard_on_bypass =
                   Some
                     (fun ~qname ->
                       let actor = domain.Topology.Domain.name ^ "-dns" in
                       t.stats.Mapsys.Cp_stats.bypasses <-
                         t.stats.Mapsys.Cp_stats.bypasses + 1;
                       if obs_on t then
                         obs_emit t ~actor
                           (Obs.Event.Pce_bypass
                              { qname = Dnssim.Name.to_string qname })) }))
    domains;
  t

let attach t dataplane =
  match t.dataplane with
  | Some _ -> invalid_arg "Pce_control.attach: already attached"
  | None -> t.dataplane <- Some dataplane

(* A tunneled packet reached an ETR whose flow table has no live reverse
   entry for the pair: learn the reverse mapping, multicast it to the
   sibling ETRs, update the PCE database.  Keying on the live entry
   (rather than a seen-set) re-learns the mapping after TTL expiry. *)
let note_etr_packet t router ~outer_src packet =
  match outer_src with
  | None -> ()
  | Some rloc_s ->
      let e_s = packet.Packet.flow.Flow.src in
      let e_d = packet.Packet.flow.Flow.dst in
      let fresh =
        match
          Lispdp.Flow_table.lookup router.Lispdp.Dataplane.flows
            ~now:(Netsim.Engine.now t.engine) ~src_eid:e_d ~dst_eid:e_s
        with
        | None -> true
        | Some entry ->
            (* The remote side moved its ingress (e.g. after an uplink
               failure): relearn so replies chase the new locator. *)
            not (Ipv4.addr_equal entry.Mapping.dst_rloc rloc_s)
      in
      if fresh then begin
        let dp = dataplane_exn t in
        let domain = router.Lispdp.Dataplane.router_domain in
        let pce = t.pces.(domain.Topology.Domain.id) in
        let reverse =
          { Mapping.src_eid = e_d; dst_eid = e_s;
            src_rloc = router.Lispdp.Dataplane.border.Topology.Domain.rloc;
            dst_rloc = rloc_s }
        in
        (* The receiving ETR installs immediately... *)
        Lispdp.Dataplane.install_flow_entry dp router reverse;
        Pce.remember_entry pce reverse;
        tracef t ~actor:(domain.Topology.Domain.name ^ "-etr")
          "reverse mapping %a learned at ETR %a" Mapping.pp_flow_entry reverse
          Ipv4.pp_addr router.Lispdp.Dataplane.border.Topology.Domain.rloc;
        match t.options.reverse_scope with
        | Reverse_receiving_only -> ()
        | Reverse_multicast ->
            let siblings =
              Array.to_list (Lispdp.Dataplane.routers_of_domain dp domain)
              |> List.filter (fun r ->
                     r.Lispdp.Dataplane.border.Topology.Domain.router
                     <> router.Lispdp.Dataplane.border.Topology.Domain.router)
            in
            t.stats.Mapsys.Cp_stats.push_messages <-
              t.stats.Mapsys.Cp_stats.push_messages + List.length siblings;
            t.stats.Mapsys.Cp_stats.control_bytes <-
              t.stats.Mapsys.Cp_stats.control_bytes
              + (List.length siblings * reverse_push_size reverse);
            List.iter
              (fun sibling ->
                ignore
                  (Netsim.Engine.schedule t.engine
                     ~delay:t.options.multicast_latency
                     (Netsim.Prof.wrap ph_pce (fun () ->
                          Lispdp.Dataplane.install_flow_entry dp sibling
                            reverse))))
              siblings
      end

let choose_egress t ~src_domain flow =
  let pce = t.pces.(src_domain.Topology.Domain.id) in
  let border = egress_border t pce ~src_eid:flow.Flow.src ~dst_eid:flow.Flow.dst in
  if obs_on t then
    obs_emit t
      ~actor:(src_domain.Topology.Domain.name ^ "-pce")
      ~flow:(Obs.Event.flow_id flow)
      (Obs.Event.Irc_decision { rloc = border.Topology.Domain.rloc });
  border

(* Misses are labelled by direction: the responder's SYN/ACK travels the
   reverse tunnel, everything else the forward one, so the ablation
   experiments can attribute losses to the push-scope (forward) or the
   reverse-multicast (reverse) design choice. *)
let miss_cause packet =
  match packet.Packet.segment with
  | Packet.Syn_ack -> Netsim.Telemetry.Pce_no_mapping_reverse
  | Packet.Syn | Packet.Ack | Packet.Data _ | Packet.Fin ->
      Netsim.Telemetry.Pce_no_mapping_forward

(* A miss under the pure paper model is a drop (the push should have
   beaten the first packet).  With a pull fallback configured (the
   crash-recovery profile), the ITR degrades gracefully instead: the
   mapping is fetched from the pull mapping system, at the cost of the
   T_map_resol the PCE path was designed to avoid. *)
let handle_miss t router packet =
  match t.fallback with
  | None -> Lispdp.Dataplane.Miss_drop (miss_cause packet)
  | Some pull ->
      let domain = router.Lispdp.Dataplane.router_domain in
      let actor = domain.Topology.Domain.name ^ "-itr" in
      tracef t ~actor "miss for %a: degrading to pull resolution"
        Ipv4.pp_addr packet.Packet.flow.Flow.dst;
      if obs_on t then
        obs_emit t ~actor
          ~flow:(Obs.Event.flow_id packet.Packet.flow)
          (Obs.Event.Degraded_to_pull { eid = packet.Packet.flow.Flow.dst });
      Mapsys.Pull.handle_miss pull router packet

let control_plane t =
  { Lispdp.Dataplane.cp_name = "pce";
    cp_choose_egress = (fun ~src_domain flow -> choose_egress t ~src_domain flow);
    cp_handle_miss = (fun router packet -> handle_miss t router packet);
    cp_note_etr_packet =
      (fun router ~outer_src packet -> note_etr_packet t router ~outer_src packet) }

(* -------------------------------------------------------------------
   Uplink failover.

   When a border's access link dies, every mapping that names its RLOC
   is stale.  The PCE repairs both directions from its databases:

   - {e advertised ingress} (PCE_D role): each peer that was handed the
     dead RLOC_D receives a direct PCE-to-PCE update (the peers learned
     each other's addresses in steps 6-7) carrying a freshly chosen
     ingress locator; the peer updates its name database and re-pushes
     the affected tuples to its ITRs.
   - {e own reverse locators} (PCE_S role): local tuples whose RLOC_S
     died are re-homed and re-pushed locally; the remote ETRs relearn
     the new locator from the changed outer source of the next forward
     packet.

   Detection happens in the background monitoring loop, so the blackout
   is bounded by the monitoring interval plus one peer RTT. *)

let handle_uplink_failure t ~domain_id ~border =
  let pce = t.pces.(domain_id) in
  let dead = border.Topology.Domain.rloc in
  tracef t ~actor:((Pce.domain pce).Topology.Domain.name ^ "-pce")
    "uplink failure detected: RLOC %a" Ipv4.pp_addr dead;
  t.failovers <- t.failovers + 1;
  (* Re-advertise a live ingress locator to every affected peer. *)
  List.iter
    (fun adv ->
      let fresh =
        Pce.ingress_rloc_for_eid pce ~eid:adv.Pce.adv_eid
          ~peer:adv.Pce.adv_peer ()
      in
      if not (Ipv4.addr_equal fresh dead) then begin
        Pce.record_advertisement pce ~qname:adv.Pce.adv_qname
          ~eid:adv.Pce.adv_eid ~peer:adv.Pce.adv_peer ~rloc:fresh;
        let peer_node = Ipv4.addr_to_int adv.Pce.adv_peer in
        match Hashtbl.find_opt t.resolver_domains peer_node with
        | None -> ()
        | Some peer_domain_id -> (
            t.stats.Mapsys.Cp_stats.push_messages <-
              t.stats.Mapsys.Cp_stats.push_messages + 1;
            t.stats.Mapsys.Cp_stats.control_bytes <-
              t.stats.Mapsys.Cp_stats.control_bytes
              + Wire.Codec.size
                  (Wire.Codec.Failover_update
                     { qname = Dnssim.Name.to_string adv.Pce.adv_qname;
                       eid = adv.Pce.adv_eid; rloc = fresh });
            let pce_node = (Pce.domain pce).Topology.Domain.pce in
            match
              Topology.Graph.latency_between (graph t) pce_node peer_node
            with
            | transit ->
                ignore
                  (Netsim.Engine.schedule t.engine
                     ~delay:(transit +. t.options.ipc_latency)
                     (Netsim.Prof.wrap ph_pce (fun () ->
                       let peer_pce = t.pces.(peer_domain_id) in
                       Pce.learn_name_mapping peer_pce
                         ~qname:adv.Pce.adv_qname ~dst_eid:adv.Pce.adv_eid
                         ~dst_rloc:fresh
                         ~now:(Netsim.Engine.now t.engine)
                         ~ttl:t.options.flow_ttl;
                       List.iter
                         (fun entry ->
                           push_entry t peer_pce
                             { entry with Mapping.dst_rloc = fresh })
                         (Pce.entries_toward peer_pce
                            ~dst_eid:adv.Pce.adv_eid))))
            | exception Not_found -> ())
      end)
    (Pce.advertisements_via pce ~rloc:dead);
  (* Re-home local tuples whose reverse locator died. *)
  List.iter
    (fun entry ->
      let flow =
        Pce.pair_flow ~src_eid:entry.Mapping.src_eid
          ~dst_eid:entry.Mapping.dst_eid
      in
      let fresh =
        Irc.Selector.choose_ingress (Pce.selector pce) ~flow ()
      in
      if not (Ipv4.addr_equal fresh.Topology.Domain.rloc dead) then
        push_entry t pce
          { entry with Mapping.src_rloc = fresh.Topology.Domain.rloc })
    (Pce.entries_with_src_rloc pce ~rloc:dead)

let run_monitoring t ~interval ~until ~rebalance =
  if interval <= 0.0 then invalid_arg "Pce_control.run_monitoring: bad interval";
  (* Last known uplink state, per domain and border, for edge-triggered
     failure detection. *)
  let states =
    Array.map
      (fun domain ->
        Array.map
          (fun b -> ref (Topology.Link.is_up b.Topology.Domain.uplink))
          domain.Topology.Domain.borders)
      t.internet.Topology.Builder.domains
  in
  let rec tick () =
    let now = Netsim.Engine.now t.engine in
    Array.iter
      (fun pce ->
        let domain = Pce.domain pce in
        let id = domain.Topology.Domain.id in
        Array.iteri
          (fun i b ->
            let up_now = Topology.Link.is_up b.Topology.Domain.uplink in
            let known = states.(id).(i) in
            if !known && not up_now then
              handle_uplink_failure t ~domain_id:id ~border:b;
            known := up_now)
          domain.Topology.Domain.borders;
        Irc.Selector.observe (Pce.selector pce) ~now;
        if rebalance then Irc.Selector.rebalance (Pce.selector pce))
      t.pces;
    if now +. interval <= until then
      ignore
        (Netsim.Engine.schedule t.engine ~delay:interval
           (Netsim.Prof.wrap ph_pce tick))
  in
  ignore
    (Netsim.Engine.schedule t.engine ~delay:interval
       (Netsim.Prof.wrap ph_pce tick))

let failovers t = t.failovers

let reroutes t =
  Array.fold_left
    (fun acc pce -> acc + Irc.Selector.moved_flows (Pce.selector pce))
    0 t.pces

(* -------------------------------------------------------------------
   Crash-recovery (node lifecycle).

   A crash is pure state loss: the PCE's in-memory databases vanish
   and, for the duration of its window, the step-1 observer, the
   step-6/7 tap path and the port-P listener all fall silent (guarded
   by [pce_down] at each hook).  Restart is a warm recovery: the
   process comes back with an empty flow database and resynchronizes
   from ground truth it can still reach — the flow tables of its own
   domain's ITRs — then re-registers the domain mapping with the pull
   registry so the fallback path keeps answering for it. *)

let handle_node_crash t ~domain_id =
  let pce = t.pces.(domain_id) in
  let actor = (Pce.domain pce).Topology.Domain.name ^ "-pce" in
  let role = Netsim.Lifecycle.role_label (Netsim.Lifecycle.Pce domain_id) in
  tracef t ~actor "crash: in-memory state lost (%d flow entries)"
    (Pce.entry_count pce);
  Pce.reset pce;
  if obs_on t then obs_emit t ~actor (Obs.Event.Node_crash { role })

let handle_node_restart t ~domain_id =
  let pce = t.pces.(domain_id) in
  let domain = Pce.domain pce in
  let actor = domain.Topology.Domain.name ^ "-pce" in
  let role = Netsim.Lifecycle.role_label (Netsim.Lifecycle.Pce domain_id) in
  if obs_on t then obs_emit t ~actor (Obs.Event.Node_restart { role });
  t.stats.Mapsys.Cp_stats.recoveries <-
    t.stats.Mapsys.Cp_stats.recoveries + 1;
  (* Resync: one query per local ITR, answered with its live flow
     entries; every recovered tuple goes back into the PCE database. *)
  let recovered = ref 0 in
  (match t.dataplane with
  | None -> ()
  | Some dp ->
      let now = Netsim.Engine.now t.engine in
      Array.iter
        (fun router ->
          t.stats.Mapsys.Cp_stats.map_requests <-
            t.stats.Mapsys.Cp_stats.map_requests + 1;
          Lispdp.Flow_table.iter router.Lispdp.Dataplane.flows ~now
            ~f:(fun entry ->
              incr recovered;
              t.stats.Mapsys.Cp_stats.control_bytes <-
                t.stats.Mapsys.Cp_stats.control_bytes
                + itr_config_size entry;
              Pce.remember_entry pce entry))
        (Lispdp.Dataplane.routers_of_domain dp domain));
  (* Re-register with the mapping registry (data no-op: the registry
     survived, but a real PCE cannot know that). *)
  (match t.registry with
  | None -> ()
  | Some registry ->
      let mapping = Mapsys.Registry.mapping_of_domain registry domain_id in
      t.stats.Mapsys.Cp_stats.push_messages <-
        t.stats.Mapsys.Cp_stats.push_messages + 1;
      t.stats.Mapsys.Cp_stats.control_bytes <-
        t.stats.Mapsys.Cp_stats.control_bytes
        + Wire.Codec.size (Wire.Codec.Database_push { mappings = [ mapping ] });
      Mapsys.Registry.update_mapping registry domain_id mapping);
  tracef t ~actor "warm recovery: %d flow entries resynced from ITRs"
    !recovered;
  if obs_on t then
    obs_emit t ~actor
      (Obs.Event.Note
         (Printf.sprintf "warm recovery: %d flow entries resynced" !recovered))

let schedule_lifecycle t =
  match t.lifecycle with
  | None -> ()
  | Some lc ->
      List.iter
        (fun (role, from_, until) ->
          match role with
          | Netsim.Lifecycle.Pce id ->
              ignore
                (Netsim.Engine.schedule_at t.engine ~time:from_ (fun () ->
                     handle_node_crash t ~domain_id:id));
              (* Never schedule the restart of a window that ends at
                 infinity: the engine drains its whole queue, so an
                 event at t=inf would run the simulation forever. *)
              if until < infinity then
                ignore
                  (Netsim.Engine.schedule_at t.engine ~time:until (fun () ->
                       handle_node_restart t ~domain_id:id))
          | Netsim.Lifecycle.Dns_server _ | Netsim.Lifecycle.Map_server ->
              (* Not this control plane's nodes: the scenario layer
                 owns their transitions. *)
              ())
        (Netsim.Lifecycle.windows lc)
