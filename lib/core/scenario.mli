(** End-to-end experiment scenarios.

    A scenario assembles one complete simulated world — internet
    topology, DNS hierarchy, a chosen control plane, the LISP data plane
    and the TCP host model — and exposes the operation every experiment
    is built from: {!open_connection}, which performs the paper's full
    client behaviour (resolve the destination's name, then connect),
    measuring T_DNS and the TCP handshake separately.

    The same scenario code runs all six control planes, so every
    reported difference comes from the control plane alone. *)

type cp_kind =
  | Cp_pull_drop  (** map-request over ALT, drop while pending *)
  | Cp_pull_queue of int  (** buffer up to N packets per resolution *)
  | Cp_pull_smr of int
      (** like [Cp_pull_queue], plus Solicit-Map-Request: mapping changes
          actively evict stale remote cache entries *)
  | Cp_pull_detour  (** data over the mapping overlay while pending *)
  | Cp_nerd  (** full-database push *)
  | Cp_cons  (** hierarchical resolution with in-tree caching *)
  | Cp_msmr  (** map-server/map-resolver front end with proxy replies *)
  | Cp_pce of Pce_control.options  (** the paper's control plane *)

val cp_label : cp_kind -> string

type config = {
  seed : int;
  topology :
    [ `Figure1 | `Figure1_scaled of float | `Random of Topology.Builder.params ];
  cp : cp_kind;
  mapping_ttl : float;  (** TTL of registry mappings (map-cache life) *)
  dns_record_ttl : float;
  cache_capacity : int;  (** map-cache entries per border router *)
  alt_fanout : int;
  alt_hop_latency : float;
  initial_rto : float;
  data_gap : float;
  nerd_propagation : float;  (** NERD database-update propagation delay *)
}

val default_config : config
(** Figure-1 topology, PCE control plane with default options, 60 s
    mapping TTL, 3600 s DNS TTL, ALT fanout 2 at 20 ms/hop, 1 s RTO,
    30 s NERD propagation. *)

type connection = {
  flow : Nettypes.Flow.t;
  opened_at : float;  (** when the client issued the DNS query *)
  mutable dns_time : float option;  (** measured T_DNS *)
  mutable resolution_failed : bool;
  mutable tcp : Workload.Tcp.conn option;  (** set once the DNS answer arrives *)
}

val total_setup_time : connection -> float option
(** DNS resolution plus TCP handshake — the paper's
    [T_DNS + T_map + 2·OWD + OWD] quantity.  [None] until established. *)

type t

val build : config -> t

val engine : t -> Netsim.Engine.t
val internet : t -> Topology.Builder.t
val dns : t -> Dnssim.System.t
val dataplane : t -> Lispdp.Dataplane.t
val tcp : t -> Workload.Tcp.t
val registry : t -> Mapsys.Registry.t
val rng : t -> Netsim.Rng.t
val config : t -> config
val trace : t -> Netsim.Trace.t

val obs : t -> Obs.Hub.t
(** The scenario's event hub, threaded through every layer (DNS, map
    systems, PCE, data plane).  Disabled by default; enable it and add
    sinks ({!Obs.Hub.add_sink}) to observe the run.  When an
    {!Obs.Runtime} is installed (CLI export flags) the hub arrives
    already enabled and wired. *)

val obs_registry : t -> Obs.Registry.t
(** The scenario's metrics registry.  Pre-registered at build time:
    [engine.*] internals, [dp.*] dataplane counters and [dp.drop.*]
    per-cause drops, [cache.*] aggregate map-cache statistics,
    [cp.*] control-plane statistics, [dns.*] resolver counters, and the
    [conn.dns_time] / [conn.setup_time] histograms. *)

val cp_stats : t -> Mapsys.Cp_stats.t

val pce : t -> Pce_control.t option
(** The PCE control plane, when [config.cp] is [Cp_pce]. *)

val open_connection :
  t ->
  flow:Nettypes.Flow.t ->
  ?data_packets:int ->
  ?data_bytes:int ->
  ?on_established:(connection -> unit) ->
  ?on_complete:(connection -> unit) ->
  unit ->
  connection
(** Schedule the client behaviour at the current simulated instant:
    resolve the destination host's name through the local resolver, then
    open the TCP connection the moment the answer arrives. *)

val connections : t -> connection list
(** All connections opened so far, oldest first. *)

val run : ?until:float -> t -> unit
(** Drive the engine (see {!Netsim.Engine.run}). *)

val uplink_utilisation :
  t -> Topology.Domain.t -> direction:[ `Inbound | `Outbound ] ->
  duration:float -> float array
(** Average utilisation of each border uplink of a domain over
    [duration], in border order — the quantity experiment T4 balances. *)

val reset_uplink_counters : t -> unit
(** Zero every link byte counter (e.g. after a warm-up phase). *)

val reregister : t -> domain:int -> Nettypes.Mapping.t -> unit
(** Replace a domain's registered mapping and propagate the change the
    way the active control plane would: NERD pushes the update (with
    its propagation delay), SMR-enabled pull solicits every remote ITR
    holding the old mapping.  TE churn experiments drive this
    directly. *)

val fail_uplink : t -> domain:int -> border:int -> unit
(** Failure injection: take the given border's access link down, have
    the domain re-register its mapping without the dead locator, and —
    for the NERD control plane — push the update (with its propagation
    delay).  The pull control planes recover when cached mappings expire
    and are re-fetched; the PCE control plane recovers through its
    monitoring loop and PCE-to-PCE updates. *)

val restore_uplink : t -> domain:int -> border:int -> unit
(** Bring a failed access link back and re-register the full mapping. *)
