(** End-to-end experiment scenarios.

    A scenario assembles one complete simulated world — internet
    topology, DNS hierarchy, a chosen control plane, the LISP data plane
    and the TCP host model — and exposes the operation every experiment
    is built from: {!open_connection}, which performs the paper's full
    client behaviour (resolve the destination's name, then connect),
    measuring T_DNS and the TCP handshake separately.

    The same scenario code runs all six control planes, so every
    reported difference comes from the control plane alone. *)

type cp_kind =
  | Cp_pull_drop  (** map-request over ALT, drop while pending *)
  | Cp_pull_queue of int  (** buffer up to N packets per resolution *)
  | Cp_pull_smr of int
      (** like [Cp_pull_queue], plus Solicit-Map-Request: mapping changes
          actively evict stale remote cache entries *)
  | Cp_pull_detour  (** data over the mapping overlay while pending *)
  | Cp_nerd  (** full-database push *)
  | Cp_cons  (** hierarchical resolution with in-tree caching *)
  | Cp_msmr  (** map-server/map-resolver front end with proxy replies *)
  | Cp_pce of Pce_control.options  (** the paper's control plane *)

val cp_label : cp_kind -> string

(** Scheduled control-plane outages, applied to the scenario's
    {!Netsim.Faults} model (endpoints are domain ids). *)
type fault_script =
  | Flap of { at : float; duration : float; domain : int }
      (** the domain's control-plane reachability drops for [duration]
          seconds starting at [at] *)
  | Partition of { from_ : float; until : float; a : int; b : int }
      (** control messages between the two domains are cut for the
          window *)

(** Control-plane robustness model.  When a profile is present, control
    messages (map-requests/replies, PCE pushes, NERD updates) are
    subject to Bernoulli loss [cp_loss] and delay jitter [cp_jitter],
    retransmission runs with initial RTO [cp_rto], exponential backoff
    [cp_backoff] and at most [cp_retries] retransmissions, and
    [cp_scripts] schedules deterministic outages.  The fault RNG is
    derived from the config seed independently of the workload streams,
    so enabling faults never changes which flows arrive when. *)
type cp_fault_profile = {
  cp_loss : float;
  cp_jitter : float;
  cp_rto : float;
  cp_backoff : float;
  cp_retries : int;
  cp_scripts : fault_script list;
}

val default_cp_faults : cp_fault_profile
(** No loss, no jitter, 0.5 s RTO, factor-2 backoff, 3 retransmissions,
    no scripts — a starting point for [{ default_cp_faults with ... }]. *)

type node_fault_profile = {
  node_windows : (Netsim.Lifecycle.role * float * float) list;
      (** crash windows [(role, from, until)]; [until] may be [infinity] *)
  pce_watchdog : float;
      (** seconds a DNS server waits on a dead PCE before bypassing it *)
  fallback_queue : int;
      (** held-packet queue depth of the PCE's pull fallback *)
}

val default_node_faults : node_fault_profile
(** No windows, 0.25 s watchdog, 32-packet fallback queue — a starting
    point for [{ default_node_faults with ... }]. *)

(** Adversarial-injection profile (see {!Netsim.Adversary}).  Rates are
    probabilities per opportunity: [atk_spoof]/[atk_replay] per
    map-request transmission, [atk_dns_poison] per final DNS answer.
    [atk_flood_rate] > 0 schedules an EID-scan flood — spoofed packets
    at that rate (per simulated second, Poisson) claiming
    [atk_flood_eids] distinct forged source EIDs, arriving at the
    borders of domain [atk_flood_victim] during
    [atk_flood_from, atk_flood_until).  The adversary draws from its own
    seed-derived stream, so an all-zero profile is byte-identical to no
    profile at all. *)
type attack_profile = {
  atk_spoof : float;
  atk_spoof_head_start : float;
      (** seconds by which a forged reply beats the legitimate one *)
  atk_replay : float;
  atk_dns_poison : float;
  atk_flood_rate : float;
  atk_flood_eids : int;
  atk_flood_from : float;
  atk_flood_until : float;
  atk_flood_victim : int;  (** domain id whose ETRs the flood hits *)
}

val default_attack : attack_profile
(** All rates zero, 2 ms head start, 1024 flood EIDs, unbounded window,
    victim domain 0 — a starting point for
    [{ default_attack with ... }]. *)

val flood_eid : int -> Nettypes.Ipv4.addr
(** Forged source EID of the [idx]-th scan identity (unallocated
    200.0.0.0/8 space) — lets experiments probe end-of-run caches for
    attacker-owned entries. *)

(** Countermeasure profile.  [auth_nonce] turns on the map-reply nonce
    echo, [auth_sig] requires signed replies (each legitimate reply then
    pays [auth_sig_cpu] seconds of verification, visible in
    T_map_resol, plus {!Wire.Auth.signature_bytes} on the wire),
    [auth_dnssec] validates DNS answers, and [auth_glean_cap] bounds
    both the per-router gleaned map-cache population and the pull
    control planes' glean tables. *)
type auth_profile = {
  auth_nonce : bool;
  auth_sig : bool;
  auth_sig_cpu : float;
  auth_dnssec : bool;
  auth_glean_cap : int option;
}

val default_auth : auth_profile
(** Everything off, [auth_sig_cpu = Wire.Auth.default_sig_cpu_cost],
    no glean cap. *)

type config = {
  seed : int;
  topology :
    [ `Figure1 | `Figure1_scaled of float | `Random of Topology.Builder.params ];
  cp : cp_kind;
  mapping_ttl : float;  (** TTL of registry mappings (map-cache life) *)
  dns_record_ttl : float;
  cache_capacity : int;  (** map-cache entries per border router *)
  cache_policy : Lispdp.Map_cache.policy;
      (** map-cache eviction policy (default LRU) *)
  alt_fanout : int;
  alt_hop_latency : float;
  initial_rto : float;
  data_gap : float;
  nerd_propagation : float;  (** NERD database-update propagation delay *)
  cp_faults : cp_fault_profile option;
      (** control-plane loss/retry model; [None] (the default) keeps the
          control plane lossless and bit-identical to the legacy
          behaviour *)
  node_faults : node_fault_profile option;
      (** node crash/restart schedule; [None] (the default) keeps every
          node permanently up and behaviour bit-identical to the legacy
          runs.  With a profile, a [Cp_pce] scenario additionally gets a
          pull fallback for degraded misses and the bypass watchdog on
          every DNS tap, and crash/restart transitions are scheduled as
          engine events. *)
  telemetry : Netsim.Telemetry.config option;
      (** enable the {!Netsim.Telemetry} plane: {!build} starts it,
          registers every domain's provider access links and human
          labels for all nodes, and exports the [telemetry.*] and
          [flows.*] gauge families through the scenario registry.
          [None] (the default) leaves the plane disabled — one boolean
          test per hook. *)
  attack : attack_profile option;
      (** adversarial control-plane injection; [None] (the default)
          creates no adversary and keeps every run byte-identical to the
          pre-adversary behaviour *)
  auth : auth_profile option;
      (** mapping/DNS authentication countermeasures; [None] (the
          default) keeps the legacy unauthenticated behaviour *)
  run_label : string option;
      (** exporter run label override (default {!cp_label}); lets one
          sweep report several differently-armed cells of the same
          control plane under distinct latency labels *)
}

val default_config : config
(** Figure-1 topology, PCE control plane with default options, 60 s
    mapping TTL, 3600 s DNS TTL, ALT fanout 2 at 20 ms/hop, 1 s RTO,
    30 s NERD propagation, no control-plane faults. *)

type connection = {
  flow : Nettypes.Flow.t;
  opened_at : float;  (** when the client issued the DNS query *)
  mutable dns_time : float option;  (** measured T_DNS *)
  mutable resolution_failed : bool;
  mutable tcp : Workload.Tcp.conn option;  (** set once the DNS answer arrives *)
}

val total_setup_time : connection -> float option
(** DNS resolution plus TCP handshake — the paper's
    [T_DNS + T_map + 2·OWD + OWD] quantity.  [None] until established. *)

type t

val build : config -> t

val engine : t -> Netsim.Engine.t
val internet : t -> Topology.Builder.t
val dns : t -> Dnssim.System.t
val dataplane : t -> Lispdp.Dataplane.t
val tcp : t -> Workload.Tcp.t
val registry : t -> Mapsys.Registry.t
val rng : t -> Netsim.Rng.t

val faults : t -> Netsim.Faults.t option
(** The scenario's control-plane fault model, when [config.cp_faults]
    is set — exposes the loss/blocked counters and allows experiments to
    script additional windows or change the loss rate mid-run. *)

val lifecycle : t -> Netsim.Lifecycle.t option
(** The node-lifecycle schedule, when [config.node_faults] is set. *)

val adversary : t -> Netsim.Adversary.t option
(** The attack-injection layer, when [config.attack] is set — exposes
    the attacker-side attempt counters (forged/replayed/poisoned/flood)
    the security experiments divide acceptance counts by. *)

val fallback_pull : t -> Mapsys.Pull.t option
(** The PCE scenario's pull fallback (its stats count the degraded
    resolutions), when [config.node_faults] is set and [config.cp] is
    [Cp_pce]. *)

val config : t -> config
val trace : t -> Netsim.Trace.t

val obs : t -> Obs.Hub.t
(** The scenario's event hub, threaded through every layer (DNS, map
    systems, PCE, data plane).  Disabled by default; enable it and add
    sinks ({!Obs.Hub.add_sink}) to observe the run.  When an
    {!Obs.Runtime} is installed (CLI export flags) the hub arrives
    already enabled and wired. *)

val obs_registry : t -> Obs.Registry.t
(** The scenario's metrics registry.  Pre-registered at build time:
    [engine.*] internals, [dp.*] dataplane counters and [dp.drop.*]
    per-cause drops, [cache.*] aggregate map-cache statistics
    (including [cache.invalidations] and [cache.entries]), [cp.*]
    control-plane statistics (including [cp.retransmissions] /
    [cp.timeouts]), [dns.*] resolver counters, the [conn.dns_time] /
    [conn.setup_time] histograms, and — when a fault profile is
    configured — [faults.losses] / [faults.blocked].  With
    [config.telemetry] set, additionally the [telemetry.*] family
    ({!Obs.Telemetry.register_gauges}) and [flows.*] flow-table
    occupancy. *)

val cache_gauge_rows : Lispdp.Dataplane.t -> (string * float) list
(** The rows behind the [cache.*] gauge family — exposed so report code
    samples the same computation the registry exports. *)

val flow_gauge_rows : Lispdp.Dataplane.t -> (string * float) list
(** Likewise for [flows.*] (live flow-table entries). *)

val cp_stats : t -> Mapsys.Cp_stats.t

val pce : t -> Pce_control.t option
(** The PCE control plane, when [config.cp] is [Cp_pce]. *)

val open_connection :
  t ->
  flow:Nettypes.Flow.t ->
  ?data_packets:int ->
  ?data_bytes:int ->
  ?on_established:(connection -> unit) ->
  ?on_complete:(connection -> unit) ->
  unit ->
  connection
(** Schedule the client behaviour at the current simulated instant:
    resolve the destination host's name through the local resolver, then
    open the TCP connection the moment the answer arrives. *)

val connections : t -> connection list
(** All connections opened so far, oldest first. *)

val run : ?until:float -> t -> unit
(** Drive the engine (see {!Netsim.Engine.run}). *)

val uplink_utilisation :
  t -> Topology.Domain.t -> direction:[ `Inbound | `Outbound ] ->
  duration:float -> float array
(** Average utilisation of each border uplink of a domain over
    [duration], in border order — the quantity experiment T4 balances. *)

val reset_uplink_counters : t -> unit
(** Zero every link byte counter (e.g. after a warm-up phase). *)

val reregister : t -> domain:int -> Nettypes.Mapping.t -> unit
(** Replace a domain's registered mapping and propagate the change the
    way the active control plane would: NERD pushes the update (with
    its propagation delay), SMR-enabled pull solicits every remote ITR
    holding the old mapping.  TE churn experiments drive this
    directly. *)

val fail_uplink : t -> domain:int -> border:int -> unit
(** Failure injection: take the given border's access link down, have
    the domain re-register its mapping without the dead locator, and —
    for the NERD control plane — push the update (with its propagation
    delay).  The pull control planes recover when cached mappings expire
    and are re-fetched; the PCE control plane recovers through its
    monitoring loop and PCE-to-PCE updates. *)

val restore_uplink : t -> domain:int -> border:int -> unit
(** Bring a failed access link back and re-register the full mapping. *)
