(** Control-plane cost accounting, shared by every mapping-system
    implementation so experiment T5 can compare them on equal terms. *)

type t = {
  mutable map_requests : int;
  mutable map_replies : int;
  mutable push_messages : int;  (** database/flow-entry push messages *)
  mutable control_bytes : int;  (** bytes of all control messages *)
  mutable detoured_packets : int;  (** data packets carried over the CP *)
  mutable resolutions : int;  (** completed EID-to-RLOC resolutions *)
  mutable retransmissions : int;
      (** control messages re-sent after a retry timer fired *)
  mutable timeouts : int;
      (** resolutions/pushes abandoned after the retry budget ran out *)
  mutable bypasses : int;
      (** DNS answers delivered past a crashed PCE (un-piggybacked) *)
  mutable recoveries : int;
      (** warm recoveries performed by restarting PCEs *)
  mutable spoofed_accepted : int;
      (** forged map-replies that beat verification and were installed *)
  mutable spoofed_rejected : int;
      (** forged map-replies refused by nonce/signature checks *)
  mutable replayed_accepted : int;
      (** replayed stale replies accepted (no nonce echo in force) *)
  mutable replayed_rejected : int;
      (** replayed stale replies refused by the nonce echo *)
}

val create : unit -> t

val message_total : t -> int
(** Requests + replies + pushes. *)

val merge : t -> t -> t
(** Pointwise sum (fresh record). *)

val pp : Format.formatter -> t -> unit
