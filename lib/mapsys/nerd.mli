(** NERD-style push control plane.

    NERD distributes the complete EID-to-RLOC database to every LISP
    router ahead of time, so lookups never miss — at the cost of pushing
    and storing the whole table everywhere and re-pushing on every
    change.  {!attach} performs the initial full push (counted in the
    stats); {!push_update} models incremental churn with a propagation
    delay during which routers hold the stale mapping. *)

type t

val create :
  engine:Netsim.Engine.t ->
  internet:Topology.Builder.t ->
  registry:Registry.t ->
  ?propagation_delay:float ->
  ?faults:Netsim.Faults.t ->
  ?obs:Obs.Hub.t ->
  unit ->
  t
(** [propagation_delay] (default 30 s) is how long a database update
    takes to reach all routers.  [obs] receives a [Mapping_push] event
    (targets = router count) per full push or incremental update.
    [faults] applies to incremental updates only: each destination
    domain draws once per update, and a lost update leaves that domain's
    routers on the stale mapping (the initial full transfer at
    {!attach} is treated as a reliable bootstrap). *)

val control_plane : t -> Lispdp.Dataplane.control_plane

val attach : t -> Lispdp.Dataplane.t -> unit
(** Installs the full database in every border router of every domain
    and accounts the push cost. *)

val push_update : t -> domain:int -> Nettypes.Mapping.t -> unit
(** Replace one domain's mapping: the registry changes now; routers
    receive the new version after the propagation delay. *)

val stats : t -> Cp_stats.t

val database_entries_per_router : t -> int
(** State burden: mappings each router must hold (the full registry). *)
