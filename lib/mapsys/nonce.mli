(** Unpredictable map-request nonces.

    Each outstanding map-request carries a fresh 32-bit nonce the reply
    must echo; drawing them from an RNG stream (instead of the previous
    monotonically increasing counter) is what makes the echo an
    effective anti-spoofing check — an off-path attacker has a 2^-32
    chance per forged reply of guessing right. *)

type t

val create : ?rng:Netsim.Rng.t -> unit -> t
(** Uses the given stream, or a private fixed-seed stream when none is
    supplied (unit tests; scenarios always pass a seed-derived one). *)

val fresh : t -> int
(** A uniform draw in [0, 2^32). *)
