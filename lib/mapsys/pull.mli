(** Pull-based LISP control planes (map-request / map-reply).

    On a map-cache miss the ITR issues a map-request that travels the
    ALT overlay to the destination's authoritative ETR; the map-reply
    returns directly over the underlay and is installed in the
    requesting ITR's cache.  What happens to data packets while the
    resolution is in flight is the {!mode}:

    - {!Drop_while_pending} — the base LISP behaviour the paper's
      weakness (i) describes;
    - {!Queue_while_pending} — buffer up to [limit] packets per pending
      resolution and release them on the reply;
    - {!Detour_via_cp} — forward data packets over the mapping overlay
      itself (the "undesirable" palliative of mixing control and data
      planes).

    Reverse traffic is symmetric: ETRs glean host mappings from the
    tunnel headers and the reverse flow exits through the border that
    received the forward traffic.

    With [~smr:true] the control plane additionally implements
    Solicit-Map-Request: ETRs remember which remote ITRs hold their
    domain's mapping (from the tunnel headers), and
    {!notify_mapping_change} pokes each of them to drop the stale entry
    and re-resolve — LISP's reactive answer to mapping churn. *)

type mode =
  | Drop_while_pending
  | Queue_while_pending of int  (** per-resolution packet limit *)
  | Detour_via_cp

val mode_name : mode -> string

type t

val create :
  engine:Netsim.Engine.t ->
  internet:Topology.Builder.t ->
  registry:Registry.t ->
  alt:Alt.t ->
  mode:mode ->
  ?name:string ->
  ?latency_of:(src:int -> dst:int -> float) ->
  ?resolution_latency:
    (router:Lispdp.Dataplane.router -> dst_domain:Topology.Domain.t -> float) ->
  ?glean_ttl:float ->
  ?server_processing:float ->
  ?smr:bool ->
  ?faults:Netsim.Faults.t ->
  ?retry:Netsim.Faults.retry ->
  ?lifecycle:Netsim.Lifecycle.t ->
  ?obs:Obs.Hub.t ->
  unit ->
  t
(** [latency_of] overrides the map-request transport latency between two
    domain ids (default: the ALT model); [resolution_latency], when
    given, replaces the whole request+reply timing computation (used by
    the MS/MR front end, whose reply is proxied rather than sent by the
    authoritative ETR); [glean_ttl] defaults to 60 s;
    [server_processing] (at the authoritative ETR) to 0.5 ms.  [obs]
    receives typed [Map_request]/[Map_reply] events when enabled,
    flow-scoped with the id of the packet that triggered the miss.

    [faults], when given, is consulted once per request leg and once per
    reply leg of every transmission; lost messages never produce a
    reply.  [retry] enables map-request retransmission: after each
    transmission an RTO timer ({!Netsim.Faults.retry_delay}) is armed;
    when it fires with the resolution still pending the request is
    retransmitted (recomputing the path, so requests succeed once a
    partition heals) up to [budget] times, after which the resolution
    times out and any queued packets are dropped under cause
    ["resolution-timeout"].  Without [retry], an unreachable destination
    abandons the resolution immediately and queued packets drop under
    ["resolution-abandoned"].  With neither option the behaviour (and
    event-for-event timing) of the lossless control plane is
    unchanged.

    [lifecycle], when given, is consulted (before any fault draw, so an
    empty schedule perturbs nothing) for the {!Netsim.Lifecycle.Map_server}
    role at each transmission: while the map-server is down the attempt
    is lost outright (emitted as [Cp_loss "map-server-down"]) and the
    normal retry machinery carries the resolution across the outage. *)

val control_plane : t -> Lispdp.Dataplane.control_plane

val handle_miss :
  t -> Lispdp.Dataplane.router -> Nettypes.Packet.t -> Lispdp.Dataplane.miss_decision
(** The miss path of {!control_plane}, exposed so a degraded PCE
    control plane can delegate unresolvable misses to a pull
    fallback. *)

val attach : t -> Lispdp.Dataplane.t -> unit
(** Must be called once, with the dataplane built over
    {!control_plane}. *)

val stats : t -> Cp_stats.t

val pending_resolutions : t -> int
(** Resolutions currently in flight. *)

val notify_mapping_change : t -> domain:int -> unit
(** The domain's registered mapping changed (failover, TE re-homing):
    when SMR is enabled, send a solicit to every remote ITR known to
    cache it, which evicts the stale entry so the next packet
    re-resolves against the updated registry.  No-op without [~smr]. *)
