(** Pull-based LISP control planes (map-request / map-reply).

    On a map-cache miss the ITR issues a map-request that travels the
    ALT overlay to the destination's authoritative ETR; the map-reply
    returns directly over the underlay and is installed in the
    requesting ITR's cache.  What happens to data packets while the
    resolution is in flight is the {!mode}:

    - {!Drop_while_pending} — the base LISP behaviour the paper's
      weakness (i) describes;
    - {!Queue_while_pending} — buffer up to [limit] packets per pending
      resolution and release them on the reply;
    - {!Detour_via_cp} — forward data packets over the mapping overlay
      itself (the "undesirable" palliative of mixing control and data
      planes).

    Reverse traffic is symmetric: ETRs glean host mappings from the
    tunnel headers and the reverse flow exits through the border that
    received the forward traffic.

    With [~smr:true] the control plane additionally implements
    Solicit-Map-Request: ETRs remember which remote ITRs hold their
    domain's mapping (from the tunnel headers), and
    {!notify_mapping_change} pokes each of them to drop the stale entry
    and re-resolve — LISP's reactive answer to mapping churn. *)

type mode =
  | Drop_while_pending
  | Queue_while_pending of int  (** per-resolution packet limit *)
  | Detour_via_cp

val mode_name : mode -> string

type auth = {
  nonce_check : bool;
      (** accept a reply only if it echoes the request's nonce — defeats
          blind off-path forgery and replay of stale replies *)
  signatures : bool;
      (** require a valid signature on replies — defeats forgery outright
          (the attacker holds no key) at a per-reply CPU and byte cost *)
  sig_cpu_cost : float;
      (** seconds of verifier CPU per signed reply (only charged when
          [signatures]); flows into the map-resolution latency *)
}
(** Countermeasure profile for the map-reply channel. *)

val no_auth : auth
(** Everything off; [sig_cpu_cost = Wire.Auth.default_sig_cpu_cost]. *)

type t

val create :
  engine:Netsim.Engine.t ->
  internet:Topology.Builder.t ->
  registry:Registry.t ->
  alt:Alt.t ->
  mode:mode ->
  ?name:string ->
  ?latency_of:(src:int -> dst:int -> float) ->
  ?resolution_latency:
    (router:Lispdp.Dataplane.router -> dst_domain:Topology.Domain.t -> float) ->
  ?glean_ttl:float ->
  ?server_processing:float ->
  ?smr:bool ->
  ?faults:Netsim.Faults.t ->
  ?retry:Netsim.Faults.retry ->
  ?lifecycle:Netsim.Lifecycle.t ->
  ?nonce_rng:Netsim.Rng.t ->
  ?adversary:Netsim.Adversary.t ->
  ?auth:auth ->
  ?glean_cap:int ->
  ?obs:Obs.Hub.t ->
  unit ->
  t
(** [latency_of] overrides the map-request transport latency between two
    domain ids (default: the ALT model); [resolution_latency], when
    given, replaces the whole request+reply timing computation (used by
    the MS/MR front end, whose reply is proxied rather than sent by the
    authoritative ETR); [glean_ttl] defaults to 60 s;
    [server_processing] (at the authoritative ETR) to 0.5 ms.  [obs]
    receives typed [Map_request]/[Map_reply] events when enabled,
    flow-scoped with the id of the packet that triggered the miss.

    [faults], when given, is consulted once per request leg and once per
    reply leg of every transmission; lost messages never produce a
    reply.  [retry] enables map-request retransmission: after each
    transmission an RTO timer ({!Netsim.Faults.retry_delay}) is armed;
    when it fires with the resolution still pending the request is
    retransmitted (recomputing the path, so requests succeed once a
    partition heals) up to [budget] times, after which the resolution
    times out and any queued packets are dropped under cause
    ["resolution-timeout"].  Without [retry], an unreachable destination
    abandons the resolution immediately and queued packets drop under
    ["resolution-abandoned"].  With neither option the behaviour (and
    event-for-event timing) of the lossless control plane is
    unchanged.

    [lifecycle], when given, is consulted (before any fault draw, so an
    empty schedule perturbs nothing) for the {!Netsim.Lifecycle.Map_server}
    role at each transmission: while the map-server is down the attempt
    is lost outright (emitted as [Cp_loss "map-server-down"]) and the
    normal retry machinery carries the resolution across the outage.

    [nonce_rng] is the stream map-request nonces are drawn from
    (scenarios derive it from the seed; defaults to a private
    fixed-seed stream).  [adversary], when given, races each
    transmission with forged and/or replayed replies per its rates:
    a forged reply carries an unroutable attacker RLOC and a guessed
    nonce; a replayed one carries the genuine mapping under a stale
    nonce.  [auth] decides whether they are accepted — acceptance
    installs the attacker's mapping (and completes the resolution),
    rejection counts in {!Cp_stats} and under the
    [spoofed-reply-rejected]/[replayed-reply-rejected] telemetry drop
    causes.  With [auth.signatures] every {e legitimate} reply also
    pays [auth.sig_cpu_cost] seconds of verification (visible in
    T_map_resol) and [Wire.Auth.signature_bytes] extra control bytes.
    [glean_cap] bounds the symmetric-return glean table
    ({!Glean.create}). *)

val control_plane : t -> Lispdp.Dataplane.control_plane

val handle_miss :
  t -> Lispdp.Dataplane.router -> Nettypes.Packet.t -> Lispdp.Dataplane.miss_decision
(** The miss path of {!control_plane}, exposed so a degraded PCE
    control plane can delegate unresolvable misses to a pull
    fallback. *)

val attach : t -> Lispdp.Dataplane.t -> unit
(** Must be called once, with the dataplane built over
    {!control_plane}. *)

val stats : t -> Cp_stats.t

val pending_resolutions : t -> int
(** Resolutions currently in flight. *)

val notify_mapping_change : t -> domain:int -> unit
(** The domain's registered mapping changed (failover, TE re-homing):
    when SMR is enabled, send a solicit to every remote ITR known to
    cache it, which evicts the stale entry so the next packet
    re-resolves against the updated registry.  No-op without [~smr]. *)
