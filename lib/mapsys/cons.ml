type t = { pull : Pull.t; warm : (int, unit) Hashtbl.t }

let create ~engine ~internet ~registry ~alt ?(cache_speedup = 0.5) ?faults
    ?retry ?nonce_rng ?adversary ?auth ?glean_cap ?obs () =
  if cache_speedup <= 0.0 || cache_speedup > 1.0 then
    invalid_arg "Cons.create: cache_speedup out of (0, 1]";
  let warm = Hashtbl.create 64 in
  let latency_of ~src ~dst =
    let base = Alt.request_latency alt ~src ~dst in
    if Hashtbl.mem warm dst then base *. cache_speedup
    else begin
      Hashtbl.replace warm dst ();
      base
    end
  in
  let pull =
    Pull.create ~engine ~internet ~registry ~alt ~mode:Pull.Drop_while_pending
      ~name:"cons" ~latency_of ?faults ?retry ?nonce_rng ?adversary ?auth
      ?glean_cap ?obs ()
  in
  { pull; warm }

let control_plane t = Pull.control_plane t.pull
let attach t dataplane = Pull.attach t.pull dataplane
let stats t = Pull.stats t.pull
let warm_destinations t = Hashtbl.length t.warm
