(** Map-Server / Map-Resolver front end (draft-ietf-lisp-ms style).

    The mapping-system interface that eventually became LISP's standard:
    ITRs send map-requests to a nearby {e map-resolver}; the resolver
    finds the {e map-server} the destination site registered with
    (modelled as a DDT-style delegation walk of [Alt.depth] hops) and
    the map-server proxy-replies directly to the ITR.  Data packets are
    dropped while the resolution is pending, as on the LISP beta
    network.

    Sites must register: {!attach} performs the initial map-register
    from every border router (counted in the stats), and
    {!refresh_registrations} models the periodic re-registration cost.

    Implemented as a {!Pull} instance with a proxied-reply timing model,
    so data-plane behaviour and statistics remain directly comparable
    with the other pull variants. *)

type t

val create :
  engine:Netsim.Engine.t ->
  internet:Topology.Builder.t ->
  registry:Registry.t ->
  alt:Alt.t ->
  ?mode:Pull.mode ->
  ?mr_provider:int ->
  ?ddt_hop_latency:float ->
  ?faults:Netsim.Faults.t ->
  ?retry:Netsim.Faults.retry ->
  ?nonce_rng:Netsim.Rng.t ->
  ?adversary:Netsim.Adversary.t ->
  ?auth:Pull.auth ->
  ?glean_cap:int ->
  ?obs:Obs.Hub.t ->
  unit ->
  t
(** [mode] defaults to [Drop_while_pending]; [mr_provider] (default 0)
    is the provider whose core hosts the MR/MS complex;
    [ddt_hop_latency] (default 10 ms) is the per-delegation-hop lookup
    cost inside the mapping system.  [faults]/[retry]/[nonce_rng]/
    [adversary]/[auth]/[glean_cap] behave as in {!Pull.create} (the MR
    front end inherits the same loss, retransmission and attack
    model). *)

val control_plane : t -> Lispdp.Dataplane.control_plane

val attach : t -> Lispdp.Dataplane.t -> unit
(** Attaches the data plane and performs the initial site
    registrations. *)

val stats : t -> Cp_stats.t

val refresh_registrations : t -> unit
(** One round of map-registers from every border router (cost
    accounting only; registration state is implicit in the registry). *)

val resolver_node : t -> Topology.Node.id
(** Where the MR/MS complex lives. *)
