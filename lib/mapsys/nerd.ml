open Nettypes

type t = {
  engine : Netsim.Engine.t;
  internet : Topology.Builder.t;
  registry : Registry.t;
  propagation_delay : float;
  stats : Cp_stats.t;
  faults : Netsim.Faults.t option;
  mutable dataplane : Lispdp.Dataplane.t option;
  obs : Obs.Hub.t option;
}

(* Database entries are permanent until replaced; give them an expiry far
   beyond any simulation horizon. *)
let database_ttl = 1e12

let create ~engine ~internet ~registry ?(propagation_delay = 30.0) ?faults ?obs
    () =
  { engine; internet; registry; propagation_delay; stats = Cp_stats.create ();
    faults; dataplane = None; obs }

(* NERD distribution is mapping-system work: charge the deferred
   install fan-out to the shared "map_resolution" phase. *)
let ph_map = Netsim.Prof.phase "map_resolution"

let obs_on t =
  match t.obs with Some hub -> Obs.Hub.enabled hub | None -> false

let obs_emit t ~actor kind =
  match t.obs with
  | Some hub -> Obs.Hub.emit hub ~time:(Netsim.Engine.now t.engine) ~actor kind
  | None -> ()

let stats t = t.stats
let database_entries_per_router t = Registry.size t.registry

let dataplane_exn t =
  match t.dataplane with
  | Some dp -> dp
  | None -> invalid_arg "Nerd: control plane used before attach"

let eternal mapping = { mapping with Mapping.ttl = database_ttl }

let router_count t =
  Array.fold_left
    (fun acc d -> acc + Array.length d.Topology.Domain.borders)
    0 t.internet.Topology.Builder.domains

let install_everywhere t mapping =
  let dp = dataplane_exn t in
  Array.iter
    (fun domain -> Lispdp.Dataplane.install_mapping_all dp domain (eternal mapping))
    t.internet.Topology.Builder.domains

let attach t dataplane =
  (match t.dataplane with
  | Some _ -> invalid_arg "Nerd.attach: already attached"
  | None -> t.dataplane <- Some dataplane);
  Registry.iter t.registry ~f:(fun _ mapping -> install_everywhere t mapping);
  let routers = router_count t in
  t.stats.Cp_stats.push_messages <- t.stats.Cp_stats.push_messages + routers;
  (* One full-database transfer per router, at its real encoded size. *)
  t.stats.Cp_stats.control_bytes <-
    t.stats.Cp_stats.control_bytes
    + (routers * Registry.total_wire_bytes t.registry);
  if obs_on t then
    obs_emit t ~actor:"nerd" (Obs.Event.Mapping_push { targets = routers })

let push_update t ~domain mapping =
  Registry.update_mapping t.registry domain mapping;
  let routers = router_count t in
  let update_bytes =
    Wire.Codec.size (Wire.Codec.Database_push { mappings = [ mapping ] })
  in
  t.stats.Cp_stats.push_messages <- t.stats.Cp_stats.push_messages + routers;
  t.stats.Cp_stats.control_bytes <-
    t.stats.Cp_stats.control_bytes + (routers * update_bytes);
  if obs_on t then
    obs_emit t ~actor:"nerd" (Obs.Event.Mapping_push { targets = routers });
  ignore
    (Netsim.Engine.schedule t.engine ~delay:t.propagation_delay
       (Netsim.Prof.wrap ph_map (fun () ->
         match t.faults with
         | None -> install_everywhere t mapping
         | Some faults ->
             (* Per-domain delivery: a domain that loses the update keeps
                serving the stale mapping (NERD distribution has no
                acknowledgement; the next full refresh repairs it). *)
             let dp = dataplane_exn t in
             let now = Netsim.Engine.now t.engine in
             Array.iter
               (fun d ->
                 let id = d.Topology.Domain.id in
                 if
                   id <> domain
                   && Netsim.Faults.drops_message faults ~now ~src:domain
                        ~dst:id
                 then begin
                   if obs_on t then
                     obs_emit t ~actor:"nerd"
                       (Obs.Event.Cp_loss { message = "nerd-push" })
                 end
                 else
                   Lispdp.Dataplane.install_mapping_all dp d (eternal mapping))
               t.internet.Topology.Builder.domains)))

let choose_egress ~src_domain flow =
  let borders = src_domain.Topology.Domain.borders in
  borders.(Flow.hash flow mod Array.length borders)

let control_plane (_ : t) =
  { Lispdp.Dataplane.cp_name = "nerd-push";
    cp_choose_egress = (fun ~src_domain flow -> choose_egress ~src_domain flow);
    cp_handle_miss =
      (fun _router _packet ->
        Lispdp.Dataplane.Miss_drop Netsim.Telemetry.Nerd_database_miss);
    cp_note_etr_packet = (fun _router ~outer_src:_ _packet -> ()) }
