type t = {
  table : (int * int, Topology.Domain.border) Hashtbl.t;
  cap : int option;
  order : (int * int) Queue.t;  (* FIFO of keys, only maintained when capped *)
  mutable evictions : int;
}

let create ?cap () =
  (match cap with
  | Some c when c <= 0 -> invalid_arg "Glean.create: cap must be positive"
  | _ -> ());
  { table = Hashtbl.create 256; cap; order = Queue.create (); evictions = 0 }

let note t ~domain ~remote_eid ~border =
  let key = (domain, Nettypes.Ipv4.addr_to_int remote_eid) in
  match t.cap with
  | None -> Hashtbl.replace t.table key border
  | Some cap ->
      if Hashtbl.mem t.table key then Hashtbl.replace t.table key border
      else begin
        if Hashtbl.length t.table >= cap then begin
          (* Oldest-first eviction; queue entries always reference live
             keys because replacement never touches the queue. *)
          let victim = Queue.pop t.order in
          Hashtbl.remove t.table victim;
          t.evictions <- t.evictions + 1
        end;
        Hashtbl.replace t.table key border;
        Queue.push key t.order
      end

let lookup t ~domain ~remote_eid =
  Hashtbl.find_opt t.table (domain, Nettypes.Ipv4.addr_to_int remote_eid)

let entries t = Hashtbl.length t.table
let cap t = t.cap
let evictions t = t.evictions

let clear t =
  Hashtbl.reset t.table;
  Queue.clear t.order;
  t.evictions <- 0
