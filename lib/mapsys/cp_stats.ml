(* Domain-safety audit (engine sharding): plain mutable fields, not
   atomics, deliberately — a [t] is per-control-plane-instance state,
   and every instance belongs to exactly one scenario, hence to one
   shard's engine.  Cross-shard aggregation goes through [merge] after
   the parallel section joins.  Sharing one [t] across shards would
   race; don't. *)
type t = {
  mutable map_requests : int;
  mutable map_replies : int;
  mutable push_messages : int;
  mutable control_bytes : int;
  mutable detoured_packets : int;
  mutable resolutions : int;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable bypasses : int;
  mutable recoveries : int;
  mutable spoofed_accepted : int;
  mutable spoofed_rejected : int;
  mutable replayed_accepted : int;
  mutable replayed_rejected : int;
}

let create () =
  { map_requests = 0; map_replies = 0; push_messages = 0; control_bytes = 0;
    detoured_packets = 0; resolutions = 0; retransmissions = 0; timeouts = 0;
    bypasses = 0; recoveries = 0; spoofed_accepted = 0; spoofed_rejected = 0;
    replayed_accepted = 0; replayed_rejected = 0 }

let message_total t = t.map_requests + t.map_replies + t.push_messages

let merge a b =
  { map_requests = a.map_requests + b.map_requests;
    map_replies = a.map_replies + b.map_replies;
    push_messages = a.push_messages + b.push_messages;
    control_bytes = a.control_bytes + b.control_bytes;
    detoured_packets = a.detoured_packets + b.detoured_packets;
    resolutions = a.resolutions + b.resolutions;
    retransmissions = a.retransmissions + b.retransmissions;
    timeouts = a.timeouts + b.timeouts;
    bypasses = a.bypasses + b.bypasses;
    recoveries = a.recoveries + b.recoveries;
    spoofed_accepted = a.spoofed_accepted + b.spoofed_accepted;
    spoofed_rejected = a.spoofed_rejected + b.spoofed_rejected;
    replayed_accepted = a.replayed_accepted + b.replayed_accepted;
    replayed_rejected = a.replayed_rejected + b.replayed_rejected }

let pp ppf t =
  Format.fprintf ppf
    "req=%d rep=%d push=%d bytes=%d detour=%d resolved=%d retx=%d timeout=%d \
     bypass=%d recover=%d"
    t.map_requests t.map_replies t.push_messages t.control_bytes
    t.detoured_packets t.resolutions t.retransmissions t.timeouts t.bypasses
    t.recoveries;
  (* Adversary verdicts only appear when an attack actually ran, so
     attack-free summaries stay byte-identical to pre-adversary output. *)
  if
    t.spoofed_accepted + t.spoofed_rejected + t.replayed_accepted
    + t.replayed_rejected
    > 0
  then
    Format.fprintf ppf " spoof=%d/%d replay=%d/%d" t.spoofed_accepted
      (t.spoofed_accepted + t.spoofed_rejected)
      t.replayed_accepted
      (t.replayed_accepted + t.replayed_rejected)
